//===-- examples/scad_roundtrip.cpp - OpenSCAD in, OpenSCAD out -----------===//
//
// The evaluation workflow of the paper's Sec. 6 in one binary: take an
// OpenSCAD design (from a file, or a built-in pin-header demo), flatten it
// to loop-free CSG (what a Thingiverse "flat" model looks like), run
// ShrinkRay to rediscover the latent loops, and emit OpenSCAD again — the
// output contains real `for` loops even though the input to the synthesizer
// had none.
//
// Run: build/examples/scad_roundtrip [input.scad]
//
//===----------------------------------------------------------------------===//

#include "cad/Eval.h"
#include "cad/Sexp.h"
#include "geom/Sample.h"
#include "scad/ScadEmitter.h"
#include "scad/ScadParser.h"
#include "synth/Synthesizer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace shrinkray;

static const char *DemoSource = R"(
// A 2 x 6 pin header: the kind of design shared flat on model sites.
base_w = 40;
difference() {
  cube([base_w, 14, 6]);
  for (i = [0 : 5])
    for (j = [0 : 1])
      translate([4 + 6 * i, 4 + 6 * j, 2])
        cube([2, 2, 6]);
}
)";

int main(int Argc, char **Argv) {
  std::string Source = DemoSource;
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Argv[1]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  std::printf("== OpenSCAD input ==\n%s\n", Source.c_str());

  // 1. Flatten (the paper's translator: loops unroll, variables fold).
  scad::ScadResult Flat = scad::parseScad(Source);
  if (!Flat) {
    std::fprintf(stderr, "parse error: %s\n", Flat.Error.c_str());
    return 1;
  }
  std::printf("== flattened: %llu CSG nodes, %llu primitives ==\n\n",
              static_cast<unsigned long long>(termSize(Flat.Value)),
              static_cast<unsigned long long>(termPrimitives(Flat.Value)));

  // 2. Synthesize.
  SynthesisResult Result = Synthesizer().synthesize(Flat.Value);
  if (Result.Programs.empty()) {
    std::fprintf(stderr, "error: synthesis produced no programs\n");
    return 1;
  }
  LoopSummary Loops = describeLoops(Result.best());
  std::printf("== synthesized (%.2fs): %llu nodes, loops: %s ==\n%s\n\n",
              Result.Stats.Seconds,
              static_cast<unsigned long long>(termSize(Result.best())),
              Loops.HasLoops ? Loops.Notation.c_str() : "(none)",
              prettyPrint(Result.best()).c_str());

  // 3. Validate and re-emit OpenSCAD.
  EvalResult Reflattened = evalToFlatCsg(Result.best());
  if (!Reflattened ||
      !geom::sampleEquivalent(Flat.Value, Reflattened.Value)) {
    std::fprintf(stderr, "error: output is not geometry-equivalent\n");
    return 1;
  }
  std::optional<std::string> Out = scad::emitScad(Result.best());
  if (!Out) {
    std::fprintf(stderr, "note: best program uses constructs without an "
                         "OpenSCAD spelling; emitting the flat form\n");
    Out = scad::emitScad(Reflattened.Value);
  }
  std::printf("== OpenSCAD output ==\n%s\n", Out ? Out->c_str() : "(none)");
  return 0;
}
