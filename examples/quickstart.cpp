//===-- examples/quickstart.cpp - First steps with ShrinkRay --------------===//
//
// The paper's running example (Figure 2): a flat CSG of five unit cubes
// translated along x is lifted to a parameterized LambdaCAD program with a
// Mapi inside a Fold. Demonstrates the core public API:
//
//   build a flat model  ->  Synthesizer::synthesize  ->  top-k programs
//                                                    ->  validate by
//                                                        flatten + sampling
//
// Run: build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "cad/Eval.h"
#include "cad/Sexp.h"
#include "geom/Sample.h"
#include "synth/Synthesizer.h"

#include <cstdio>

using namespace shrinkray;

int main() {
  // --- 1. The flat input: Union(Trans(2,0,0,Unit), ..., Trans(10,0,0,Unit))
  std::vector<TermPtr> Cubes;
  for (int I = 1; I <= 5; ++I)
    Cubes.push_back(tTranslate(2.0 * I, 0, 0, tUnit()));
  TermPtr FlatCsg = tUnionAll(Cubes);

  std::printf("== Input: flat CSG (%llu nodes) ==\n%s\n\n",
              static_cast<unsigned long long>(termSize(FlatCsg)),
              prettyPrint(FlatCsg).c_str());

  // --- 2. Synthesize the top-k LambdaCAD programs.
  SynthesisOptions Options; // defaults: AST-size cost, k = 5
  SynthesisResult Result = Synthesizer(Options).synthesize(FlatCsg);

  std::printf("== Synthesis: %zu programs in %.2fs (%zu e-nodes) ==\n\n",
              Result.Programs.size(), Result.Stats.Seconds,
              Result.Stats.ENodes);
  for (size_t I = 0; I < Result.Programs.size(); ++I) {
    const RankedTerm &P = Result.Programs[I];
    LoopSummary Loops = describeLoops(P.T);
    std::printf("-- rank %zu (size %llu%s%s) --\n%s\n\n", I + 1,
                static_cast<unsigned long long>(termSize(P.T)),
                Loops.HasLoops ? ", loops " : "",
                Loops.HasLoops ? Loops.Notation.c_str() : "",
                prettyPrint(P.T).c_str());
  }

  // --- 3. Validate: flatten the best program and compare geometries.
  EvalResult Flat = evalToFlatCsg(Result.best());
  if (!Flat) {
    std::fprintf(stderr, "error: flattening failed: %s\n",
                 Flat.Error.c_str());
    return 1;
  }
  geom::SampleReport Report = geom::compareBySampling(FlatCsg, Flat.Value);
  std::printf("== Validation: %zu sample points, %zu mismatches -> %s ==\n",
              Report.Points, Report.Mismatches,
              Report.Equivalent ? "EQUIVALENT" : "DIFFERENT");
  return Report.Equivalent ? 0 : 1;
}
