; The duplicate-element pathology reproducer: a flattened Repeat(x, 3) —
; three byte-identical translated cubes under Union. Pre-pipeline, the
; union-idem rewrite merged Union(x, x) into x's own e-class and the
; fold-list rules then grew list classes without bound (~90 s, multi-GB
; RSS). Stage-0 input canonicalization collapses the duplicates before the
; e-graph sees them; solver_pipeline_test and bench_solver gate this model.
(Union
  (Translate (Vec3 1 2 3) Unit)
  (Union
    (Translate (Vec3 1 2 3) Unit)
    (Translate (Vec3 1 2 3) Unit)))
