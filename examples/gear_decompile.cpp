//===-- examples/gear_decompile.cpp - The Figure 1 gear, end to end -------===//
//
// The paper's headline example: a gear whose flat CSG hides the tooth count
// in 60 repeated rotate/translate towers. ShrinkRay recovers the loop — the
// tooth count becomes a single editable constant — and this example then
// re-emits the program as OpenSCAD (with a real `for` loop) and writes an
// STL rendering of the model, exercising the whole toolchain:
//
//   models::gearModel -> Synthesizer -> scad::emitScad -> geom::writeStlAscii
//
// Run: build/examples/gear_decompile [tooth-count] [out.scad] [out.stl]
//
//===----------------------------------------------------------------------===//

#include "cad/Eval.h"
#include "cad/Sexp.h"
#include "geom/Mesh.h"
#include "geom/Sample.h"
#include "models/Models.h"
#include "scad/ScadEmitter.h"
#include "synth/Synthesizer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace shrinkray;

int main(int Argc, char **Argv) {
  int Teeth = Argc > 1 ? std::atoi(Argv[1]) : 60;
  if (Teeth < 3 || Teeth > 720) {
    std::fprintf(stderr, "usage: %s [tooth-count 3..720]\n", Argv[0]);
    return 1;
  }

  TermPtr Gear = models::gearModel(Teeth);
  std::printf("gear with %d teeth: %llu AST nodes, %llu primitives, "
              "depth %llu\n",
              Teeth, static_cast<unsigned long long>(termSize(Gear)),
              static_cast<unsigned long long>(termPrimitives(Gear)),
              static_cast<unsigned long long>(termDepth(Gear)));

  SynthesisResult Result = Synthesizer().synthesize(Gear);
  if (Result.Programs.empty()) {
    std::fprintf(stderr, "error: synthesis produced no programs\n");
    return 1;
  }
  const TermPtr &Best = Result.best();
  LoopSummary Loops = describeLoops(Best);
  std::printf("synthesized in %.2fs: %llu nodes (%.1f%% reduction), "
              "loops %s\n\n",
              Result.Stats.Seconds,
              static_cast<unsigned long long>(termSize(Best)),
              100.0 * (1.0 - static_cast<double>(termSize(Best)) /
                                 static_cast<double>(termSize(Gear))),
              Loops.HasLoops ? Loops.Notation.c_str() : "(none)");
  std::printf("%s\n\n", prettyPrint(Best).c_str());

  // Translation validation (paper Sec. 7).
  EvalResult Flat = evalToFlatCsg(Best);
  if (!Flat || !geom::sampleEquivalent(Gear, Flat.Value)) {
    std::fprintf(stderr, "error: synthesized gear is not equivalent!\n");
    return 1;
  }
  std::printf("validation: synthesized program is geometry-equivalent\n");

  // Emit editable OpenSCAD: the tooth count is now one number in a loop.
  if (std::optional<std::string> Scad = scad::emitScad(Best)) {
    const char *Path = Argc > 2 ? Argv[2] : "gear.scad";
    std::ofstream(Path) << *Scad;
    std::printf("wrote OpenSCAD with loops to %s\n", Path);
  }

  // Render the flat model to STL (the reverse of the paper's pipeline).
  geom::Mesh M = geom::tessellate(Flat.Value);
  const char *StlPath = Argc > 3 ? Argv[3] : "gear.stl";
  std::ofstream(StlPath) << geom::writeStlAscii(M, "shrinkray_gear");
  std::printf("wrote %zu-triangle STL to %s\n", M.numTriangles(), StlPath);
  return 0;
}
