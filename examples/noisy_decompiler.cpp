//===-- examples/noisy_decompiler.cpp - Structure from noisy inputs -------===//
//
// Mesh decompilers emit flat CSG whose constants carry floating-point
// roundoff (paper Sec. 6.4, Figure 16). This example runs ShrinkRay on
//   (a) the paper's verbatim Figure 16 input (three hexagonal prisms whose
//       translate/scale constants are noisy), and
//   (b) a clean model pushed through the noise injector that simulates a
//       mesh-decompile round trip,
// showing that the epsilon-banded solvers still recover loops and snap the
// coefficients back to editable values.
//
// Run: build/examples/noisy_decompiler
//
//===----------------------------------------------------------------------===//

#include "cad/Eval.h"
#include "cad/Sexp.h"
#include "geom/Sample.h"
#include "models/Models.h"
#include "synth/Synthesizer.h"

#include <cstdio>

using namespace shrinkray;

static int runCase(const char *Title, const TermPtr &Input,
                   double Tolerance) {
  std::printf("== %s ==\n", Title);
  std::printf("input (%llu nodes):\n%s\n\n",
              static_cast<unsigned long long>(termSize(Input)),
              prettyPrint(Input).c_str());

  SynthesisResult Result = Synthesizer().synthesize(Input);
  if (Result.Programs.empty()) {
    std::fprintf(stderr, "error: no programs synthesized\n");
    return 1;
  }
  const TermPtr &Best = Result.best();
  LoopSummary Loops = describeLoops(Best);
  std::printf("best (%llu nodes, %.2fs%s%s):\n%s\n\n",
              static_cast<unsigned long long>(termSize(Best)),
              Result.Stats.Seconds, Loops.HasLoops ? ", loops " : "",
              Loops.HasLoops ? Loops.Notation.c_str() : "",
              prettyPrint(Best).c_str());

  // The solver intentionally snapped constants within the epsilon band, so
  // the comparison allows a matching sliver of volume mismatch.
  EvalResult Flat = evalToFlatCsg(Best);
  if (!Flat) {
    std::fprintf(stderr, "error: %s\n", Flat.Error.c_str());
    return 1;
  }
  geom::SampleOptions Opts;
  Opts.MismatchTolerance = Tolerance;
  geom::SampleReport Report =
      geom::compareBySampling(Input, Flat.Value, Opts);
  std::printf("validation: mismatch ratio %.5f (tolerance %.3f) -> %s\n\n",
              Report.mismatchRatio(), Tolerance,
              Report.Equivalent ? "OK" : "FAILED");
  return Report.Equivalent ? 0 : 1;
}

int main() {
  // (a) Figure 16 verbatim.
  int Rc = runCase("Figure 16: decompiled hexagonal prisms",
                   models::noisyHexagonsModel(), 0.02);

  // (b) A clean 8-cube row, noised like a decompiled mesh.
  std::vector<TermPtr> Cubes;
  for (int I = 0; I < 8; ++I)
    Cubes.push_back(tTranslate(3.0 * I + 1.0, 0, 0, tUnit()));
  TermPtr Noisy =
      models::injectNoise(tUnionAll(Cubes), /*Magnitude=*/8e-4, /*Seed=*/99);
  Rc |= runCase("simulated decompiler roundoff on an 8-cube row", Noisy,
                0.02);
  return Rc;
}
