// A row of four unit cubes, 2 units apart — the smallest input whose
// synthesized program exposes a counted loop (Mapi over Repeat).
// Drive it through the batch front end:
//   shrinkray_batch -j 2 examples/scad
for (i = [0:3])
  translate([i * 2, 0, 0])
    cube(1);
