// Six cylinders on a ring: the rotation angle is an affine function of
// the loop index, so the synthesizer recovers the trig closed form.
for (a = [0 : 60 : 300])
  rotate([0, 0, a])
    translate([8, 0, 0])
      cylinder(h = 3, r = 1);
