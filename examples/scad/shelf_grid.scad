// A 3x2 grid of boxes — two nested loops, one affine function per axis.
for (x = [0 : 2])
  for (z = [0 : 1])
    translate([x * 5, 0, z * 4])
      cube([4, 3, 3]);
