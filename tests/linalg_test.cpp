//===-- tests/linalg_test.cpp - Vec3/Mat3/least-squares tests -------------===//

#include "linalg/Matrix.h"
#include "linalg/Vec3.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace shrinkray;

namespace {

void expectVecNear(Vec3 A, Vec3 B, double Eps = 1e-9) {
  EXPECT_NEAR(A.X, B.X, Eps);
  EXPECT_NEAR(A.Y, B.Y, Eps);
  EXPECT_NEAR(A.Z, B.Z, Eps);
}

} // namespace

TEST(Vec3Test, ComponentwiseArithmetic) {
  Vec3 A{1, 2, 3}, B{4, 5, 6};
  expectVecNear(A + B, {5, 7, 9});
  expectVecNear(B - A, {3, 3, 3});
  expectVecNear(2.0 * A, {2, 4, 6});
  expectVecNear(A * B, {4, 10, 18});
  expectVecNear(B / A, {4, 2.5, 2});
}

TEST(Vec3Test, NormAndDistance) {
  Vec3 A{3, 4, 0};
  EXPECT_DOUBLE_EQ(A.norm(), 5.0);
  EXPECT_DOUBLE_EQ(A.distance({3, 4, 12}), 12.0);
}

TEST(Vec3Test, ApproxEquals) {
  Vec3 A{1, 2, 3};
  EXPECT_TRUE(A.approxEquals({1.0005, 2, 3}, 1e-3));
  EXPECT_FALSE(A.approxEquals({1.01, 2, 3}, 1e-3));
}

TEST(Mat3Test, RotZQuarterTurn) {
  Vec3 V = Mat3::rotZ(90) * Vec3{1, 0, 0};
  expectVecNear(V, {0, 1, 0});
}

TEST(Mat3Test, RotXQuarterTurn) {
  Vec3 V = Mat3::rotX(90) * Vec3{0, 1, 0};
  expectVecNear(V, {0, 0, 1});
}

TEST(Mat3Test, RotYQuarterTurn) {
  Vec3 V = Mat3::rotY(90) * Vec3{0, 0, 1};
  expectVecNear(V, {1, 0, 0});
}

TEST(Mat3Test, RotXyzMatchesOpenScadOrder) {
  // rotate([90, 0, 90]) in OpenSCAD applies Rx first, then Rz.
  Vec3 V = Mat3::rotXyz({90, 0, 90}) * Vec3{0, 1, 0};
  // Rx(90): (0,1,0) -> (0,0,1); Rz(90): unchanged for the z axis.
  expectVecNear(V, {0, 0, 1});
}

TEST(Mat3Test, TransposeIsInverseForRotations) {
  Mat3 R = Mat3::rotXyz({30, 40, 50});
  Vec3 P{0.3, -1.2, 2.5};
  expectVecNear(R.transpose() * (R * P), P);
}

TEST(Mat3Test, ScaleMatrix) {
  expectVecNear(Mat3::scale({2, 3, 4}) * Vec3{1, 1, 1}, {2, 3, 4});
}

TEST(MatrixTest, LeastSquaresExactLine) {
  // y = 3x + 1 through 4 points: exact recovery.
  Matrix A(4, 2);
  std::vector<double> B(4);
  for (int I = 0; I < 4; ++I) {
    A.at(I, 0) = 1.0;
    A.at(I, 1) = I;
    B[I] = 3.0 * I + 1.0;
  }
  auto X = leastSquares(A, B);
  ASSERT_TRUE(X.has_value());
  EXPECT_NEAR((*X)[0], 1.0, 1e-9);
  EXPECT_NEAR((*X)[1], 3.0, 1e-9);
}

TEST(MatrixTest, LeastSquaresOverdeterminedNoisy) {
  // y = 2x with symmetric noise: slope estimate stays near 2.
  Matrix A(5, 2);
  std::vector<double> B = {0.01, 2.0, 3.99, 6.01, 8.0};
  for (int I = 0; I < 5; ++I) {
    A.at(I, 0) = 1.0;
    A.at(I, 1) = I;
  }
  auto X = leastSquares(A, B);
  ASSERT_TRUE(X.has_value());
  EXPECT_NEAR((*X)[1], 2.0, 0.01);
}

TEST(MatrixTest, LeastSquaresDetectsRankDeficiency) {
  Matrix A(3, 2); // second column all zero
  std::vector<double> B = {1, 2, 3};
  for (int I = 0; I < 3; ++I)
    A.at(I, 0) = 1.0;
  EXPECT_FALSE(leastSquares(A, B).has_value());
}

TEST(MatrixTest, SolveLinear3x3) {
  Matrix A(3, 3);
  double Rows[3][3] = {{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 3; ++J)
      A.at(I, J) = Rows[I][J];
  auto X = solveLinear(A, {8, -11, -3});
  ASSERT_TRUE(X.has_value());
  EXPECT_NEAR((*X)[0], 2.0, 1e-9);
  EXPECT_NEAR((*X)[1], 3.0, 1e-9);
  EXPECT_NEAR((*X)[2], -1.0, 1e-9);
}

TEST(MatrixTest, SolveLinearSingular) {
  Matrix A(2, 2);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(1, 0) = 2;
  A.at(1, 1) = 4;
  EXPECT_FALSE(solveLinear(A, {1, 2}).has_value());
}

TEST(MatrixTest, RSquaredPerfectFit) {
  std::vector<double> Y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(rSquared(Y, Y), 1.0);
}

TEST(MatrixTest, RSquaredMeanFitIsZero) {
  std::vector<double> Y = {1, 2, 3, 4};
  std::vector<double> Fit(4, 2.5);
  EXPECT_NEAR(rSquared(Y, Fit), 0.0, 1e-12);
}

TEST(MatrixTest, RSquaredConstantData) {
  std::vector<double> Y = {5, 5, 5};
  EXPECT_DOUBLE_EQ(rSquared(Y, {5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(rSquared(Y, {5, 6, 5}), 0.0);
}
