//===-- tests/rewrite_test.cpp - Rule-database soundness tests ------------===//
//
// Every rewrite in the database is semantics-preserving (paper Sec. 3.2;
// the authors checked theirs with a computer algebra system). Here each rule
// is validated operationally: apply it to generator terms that match its
// left-hand side, extract any other representative of the root class, and
// check geometric equivalence with the sampling oracle.
//
//===----------------------------------------------------------------------===//

#include "cad/Eval.h"
#include "cad/Sexp.h"
#include "egraph/Extract.h"
#include "egraph/Runner.h"
#include "geom/Sample.h"
#include "rewrites/Rules.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace shrinkray;
using namespace shrinkray::geom;

namespace {

/// Generates a random flat CSG term of bounded depth.
TermPtr randomFlatCsg(Rng &R, int Depth) {
  if (Depth <= 0 || R.nextBelow(4) == 0) {
    switch (R.nextBelow(4)) {
    case 0:
      return tUnit();
    case 1:
      return tSphere();
    case 2:
      return tCylinder();
    default:
      return tHexagon();
    }
  }
  switch (R.nextBelow(6)) {
  case 0:
    return tTranslate(R.nextDouble(-4, 4), R.nextDouble(-4, 4),
                      R.nextDouble(-4, 4), randomFlatCsg(R, Depth - 1));
  case 1: {
    auto nz = [&] {
      double S = R.nextDouble(0.3, 2.5);
      return R.nextBelow(2) ? S : -S;
    };
    return tScale(nz(), nz(), nz(), randomFlatCsg(R, Depth - 1));
  }
  case 2: {
    // Axis-aligned rotations keep collapse rules applicable.
    double Angle = static_cast<double>(R.nextBelow(8)) * 45.0;
    switch (R.nextBelow(3)) {
    case 0:
      return tRotate(Angle, 0, 0, randomFlatCsg(R, Depth - 1));
    case 1:
      return tRotate(0, Angle, 0, randomFlatCsg(R, Depth - 1));
    default:
      return tRotate(0, 0, Angle, randomFlatCsg(R, Depth - 1));
    }
  }
  case 3:
    return tUnion(randomFlatCsg(R, Depth - 1), randomFlatCsg(R, Depth - 1));
  case 4:
    return tDiff(randomFlatCsg(R, Depth - 1), randomFlatCsg(R, Depth - 1));
  default:
    return tInter(randomFlatCsg(R, Depth - 1), randomFlatCsg(R, Depth - 1));
  }
}

/// Checks that running \p Rules over \p Input preserves geometry for every
/// extractable alternative of the root class.
void expectRulesSound(const std::vector<Rewrite> &Rules, const TermPtr &Input,
                      const char *Tag) {
  ASSERT_TRUE(isFlatCsg(Input)) << Tag;
  EGraph G;
  EClassId Root = G.addTerm(Input);
  Runner R(RunnerLimits{.IterLimit = 4, .NodeLimit = 20000});
  R.run(G, Rules);

  AstSizeCost Cost;
  KBestExtractor Ex(G, Cost, 4);
  auto Ranked = Ex.extract(Root);
  ASSERT_FALSE(Ranked.empty()) << Tag;
  SampleOptions Opts;
  Opts.NumPoints = 4000;
  for (const RankedTerm &Alt : Ranked) {
    EvalResult Flat = evalToFlatCsg(Alt.T);
    ASSERT_TRUE(Flat) << Tag << ": " << Flat.Error;
    SampleReport Rep = compareBySampling(Input, Flat.Value, Opts);
    EXPECT_TRUE(Rep.Equivalent)
        << Tag << ": mismatch ratio " << Rep.mismatchRatio() << "\n  alt "
        << printSexp(Alt.T);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Directed rule-by-rule checks
//===----------------------------------------------------------------------===//

TEST(RuleSoundness, LiftTranslateOverUnion) {
  TermPtr T = tUnion(tTranslate(1, 2, 3, tUnit()),
                     tTranslate(1, 2, 3, tSphere()));
  expectRulesSound(liftingRules(), T, "lift-translate-union");
  // And the lift actually fires: the lifted form is represented.
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, liftingRules());
  EXPECT_TRUE(G.representsTerm(
      Root, tTranslate(1, 2, 3, tUnion(tUnit(), tSphere()))));
}

TEST(RuleSoundness, LiftRotateOverDiff) {
  TermPtr T = tDiff(tRotate(0, 0, 30, tUnit()), tRotate(0, 0, 30, tSphere()));
  expectRulesSound(liftingRules(), T, "lift-rotate-diff");
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, liftingRules());
  EXPECT_TRUE(G.representsTerm(
      Root, tRotate(0, 0, 30, tDiff(tUnit(), tSphere()))));
}

TEST(RuleSoundness, LiftScaleOverInter) {
  TermPtr T = tInter(tScale(2, 3, 4, tUnit()), tScale(2, 3, 4, tSphere()));
  expectRulesSound(liftingRules(), T, "lift-scale-inter");
}

TEST(RuleSoundness, CollapseTranslateTranslate) {
  TermPtr T = tTranslate(1, 2, 3, tTranslate(4, 5, 6, tUnit()));
  expectRulesSound(collapseRules(), T, "collapse-trans-trans");
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, collapseRules());
  EXPECT_TRUE(G.representsTermApprox(Root, tTranslate(5, 7, 9, tUnit()), 1e-9));
}

TEST(RuleSoundness, CollapseScaleScale) {
  TermPtr T = tScale(2, 2, 2, tScale(3, 1, 0.5, tSphere()));
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, collapseRules());
  EXPECT_TRUE(G.representsTermApprox(Root, tScale(6, 2, 1, tSphere()), 1e-9));
  expectRulesSound(collapseRules(), T, "collapse-scale-scale");
}

TEST(RuleSoundness, CollapseRotateSameAxis) {
  TermPtr T = tRotate(0, 0, 30, tRotate(0, 0, 60, tUnit()));
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, collapseRules());
  EXPECT_TRUE(G.representsTermApprox(Root, tRotate(0, 0, 90, tUnit()), 1e-9));
  expectRulesSound(collapseRules(), T, "collapse-rot-z");
}

TEST(RuleSoundness, CollapseRotateMixedAxesDoesNotFire) {
  TermPtr T = tRotate(30, 0, 0, tRotate(0, 0, 60, tUnit()));
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, collapseRules());
  // Euler angles about different axes must NOT be added together.
  EXPECT_FALSE(G.representsTermApprox(Root, tRotate(30, 0, 60, tUnit()), 1e-9));
}

TEST(RuleSoundness, ReorderScaleTranslate) {
  TermPtr T = tScale(2, 3, 4, tTranslate(1, 1, 2, tUnit()));
  expectRulesSound(reorderRules(), T, "reorder-scale-translate");
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, reorderRules());
  EXPECT_TRUE(G.representsTermApprox(
      Root, tTranslate(2, 3, 8, tScale(2, 3, 4, tUnit())), 1e-9));
}

TEST(RuleSoundness, ReorderTranslateScaleNeedsNonzero) {
  TermPtr T = tTranslate(2, 4, 6, tScale(2, 4, 0, tUnit()));
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, reorderRules());
  // Zero scale: the division rule must not fire.
  for (const ENode &N : G.eclass(Root).Nodes)
    EXPECT_NE(N.kind(), OpKind::Scale);
}

TEST(RuleSoundness, ReorderRotateTranslateGeneralAngles) {
  TermPtr T = tRotate(20, 40, 60, tTranslate(1, 2, 3, tUnit()));
  expectRulesSound(reorderRules(), T, "reorder-rotate-translate");
}

TEST(RuleSoundness, ReorderTranslateRotateRoundTrips) {
  TermPtr T = tTranslate(3, -1, 2, tRotate(0, 0, 45, tSphere()));
  expectRulesSound(reorderRules(), T, "reorder-translate-rotate");
}

TEST(RuleSoundness, ReorderUniformScaleRotate) {
  TermPtr T = tScale(2, 2, 2, tRotate(10, 20, 30, tUnit()));
  expectRulesSound(reorderRules(), T, "reorder-uniform-scale-rot");
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, reorderRules());
  EXPECT_TRUE(G.representsTerm(
      Root, tRotate(10, 20, 30, tScale(2, 2, 2, tUnit()))));
}

TEST(RuleSoundness, NonUniformScaleRotateDoesNotCommute) {
  TermPtr T = tScale(2, 1, 1, tRotate(0, 0, 90, tUnit()));
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, reorderRules());
  EXPECT_FALSE(G.representsTerm(
      Root, tRotate(0, 0, 90, tScale(2, 1, 1, tUnit()))));
}

TEST(RuleSoundness, FoldIntroAndExtension) {
  TermPtr A = tTranslate(2, 0, 0, tUnit());
  TermPtr B = tTranslate(4, 0, 0, tUnit());
  TermPtr C = tTranslate(6, 0, 0, tUnit());
  TermPtr T = tUnion(A, tUnion(B, C));
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, foldRules());
  // The full fold over [A; B; C] must be represented.
  TermPtr Folded =
      tFold(tOpRef(OpKind::Union), tEmpty(), tList({A, B, C}));
  EXPECT_TRUE(G.representsTerm(Root, Folded));
}

TEST(RuleSoundness, FoldHandlesLeftNestedUnions) {
  TermPtr A = tTranslate(2, 0, 0, tUnit());
  TermPtr B = tTranslate(4, 0, 0, tUnit());
  TermPtr C = tTranslate(6, 0, 0, tUnit());
  TermPtr T = tUnion(tUnion(A, B), C); // left-nested
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, foldRules());
  TermPtr Folded =
      tFold(tOpRef(OpKind::Union), tEmpty(), tList({C, A, B}));
  EXPECT_TRUE(G.representsTerm(Root, Folded));
}

TEST(RuleSoundness, FoldConcatNormalizesMixedShapes) {
  // Union of two unions: fold-fold-concat plus concat normalization must
  // produce a single fold over a flat 4-element spine.
  TermPtr Xs[4];
  for (int I = 0; I < 4; ++I)
    Xs[I] = tTranslate(2.0 * I, 0, 0, tUnit());
  TermPtr T = tUnion(tUnion(Xs[0], Xs[1]), tUnion(Xs[2], Xs[3]));
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner(RunnerLimits{.IterLimit = 8}).run(G, foldRules());

  // Some 4-element ordering must be represented as a pure Cons spine.
  bool Found = false;
  std::vector<std::vector<int>> Orders = {
      {0, 1, 2, 3}, {2, 3, 0, 1}, {3, 0, 1, 2}, {2, 0, 1, 3}, {3, 2, 0, 1}};
  for (const auto &Order : Orders) {
    std::vector<TermPtr> L;
    for (int I : Order)
      L.push_back(Xs[I]);
    Found |= G.representsTerm(
        Root, tFold(tOpRef(OpKind::Union), tEmpty(), tList(L)));
  }
  EXPECT_TRUE(Found);
}

TEST(RuleSoundness, BooleanLaws) {
  TermPtr T = tUnion(tUnit(), tUnit());
  EGraph G;
  EClassId Root = G.addTerm(T);
  Runner().run(G, booleanRules());
  EXPECT_TRUE(G.representsTerm(Root, tUnit())); // idempotence

  TermPtr T2 = tDiff(tDiff(tSphere(), tUnit()), tCylinder());
  EGraph G2;
  EClassId Root2 = G2.addTerm(T2);
  Runner().run(G2, booleanRules());
  EXPECT_TRUE(G2.representsTerm(
      Root2, tDiff(tSphere(), tUnion(tUnit(), tCylinder()))));
}

TEST(RuleSoundness, IdentityElimination) {
  EGraph G;
  EClassId Root = G.addTerm(
      tTranslate(0, 0, 0, tScale(1, 1, 1, tRotate(0, 0, 0, tSphere()))));
  Runner().run(G, identityRules());
  EXPECT_TRUE(G.representsTerm(Root, tSphere()));
}

//===----------------------------------------------------------------------===//
// Property test: the whole database on random models
//===----------------------------------------------------------------------===//

class RuleFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RuleFuzzTest, AllRulesPreserveGeometryOnRandomModels) {
  Rng R(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  TermPtr Input = randomFlatCsg(R, 3);
  expectRulesSound(allRewrites(), Input, "fuzz");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleFuzzTest, ::testing::Range(0, 24));

TEST(RuleDatabase, HasPaperScaleRuleCount) {
  // The paper reports 40 rewrites across its four categories; our database
  // (including the boolean laws the paper bundles in plus the LambdaCAD
  // list algebra) is the same order of magnitude and at least as strong.
  EXPECT_GE(allRewrites().size(), 40u);
  EXPECT_LE(allRewrites().size(), 55u);
}

TEST(RuleSoundness, ListAlgebra) {
  // Fold over a singleton collapses; Repeat grows out of literal spines.
  EGraph G;
  TermPtr X = tTranslate(1, 2, 3, tUnit());
  EClassId Root = G.addTerm(
      tFold(tOpRef(OpKind::Union), tEmpty(), tCons(X, tNil())));
  EClassId XId = G.addTerm(X);
  Runner().run(G, listAlgebraRules());
  EXPECT_EQ(G.find(Root), G.find(XId));

  EGraph G2;
  EClassId Spine = G2.addTerm(tCons(X, tCons(X, tCons(X, tNil()))));
  Runner().run(G2, listAlgebraRules());
  EXPECT_TRUE(G2.representsTerm(Spine, tRepeat(X, tInt(3))));

  EGraph G3;
  EClassId Zero = G3.addTerm(tRepeat(X, tInt(0)));
  EClassId Nil = G3.addTerm(tNil());
  Runner().run(G3, listAlgebraRules());
  EXPECT_EQ(G3.find(Zero), G3.find(Nil));
}

TEST(RuleDatabase, NamesAreUnique) {
  std::vector<Rewrite> Rules = allRewrites();
  for (size_t I = 0; I < Rules.size(); ++I)
    for (size_t J = I + 1; J < Rules.size(); ++J)
      EXPECT_NE(Rules[I].name(), Rules[J].name());
}
