//===-- tests/extract_test.cpp - Extraction and top-k tests ---------------===//

#include "egraph/Extract.h"
#include "egraph/Rewrite.h"
#include "egraph/Runner.h"

#include <gtest/gtest.h>

using namespace shrinkray;

TEST(ExtractTest, SingleTermRoundTrips) {
  EGraph G;
  TermPtr T = tUnion(tTranslate(1, 2, 3, tUnit()), tSphere());
  EClassId Root = G.addTerm(T);
  G.rebuild();
  AstSizeCost Cost;
  Extractor Ex(G, Cost);
  ASSERT_TRUE(Ex.bestCost(Root).has_value());
  EXPECT_NEAR(*Ex.bestCost(Root), static_cast<double>(termSize(T)), 1e-6);
  // Numeric literals may extract as Int where the input spelled Float.
  EXPECT_TRUE(termApproxEquals(Ex.extract(Root), T, 0.0));
}

TEST(ExtractTest, PicksCheaperAlternative) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tUnit()));
  EClassId UnitId = G.addTerm(tUnit());
  G.merge(Root, UnitId);
  G.rebuild();
  AstSizeCost Cost;
  Extractor Ex(G, Cost);
  EXPECT_DOUBLE_EQ(*Ex.bestCost(Root), 1.0);
  EXPECT_EQ(Ex.extract(Root)->kind(), OpKind::Unit);
}

TEST(ExtractTest, HandlesCyclesGracefully) {
  // Build a cyclic class: c = Union(c, Unit) merged with Unit. Extraction
  // must still terminate and pick the leaf.
  EGraph G;
  EClassId UnitId = G.addTerm(tUnit());
  EClassId Cyc = G.add(ENode(Op(OpKind::Union), {UnitId, UnitId}));
  G.merge(Cyc, UnitId);
  G.rebuild();
  AstSizeCost Cost;
  Extractor Ex(G, Cost);
  EXPECT_EQ(Ex.extract(Cyc)->kind(), OpKind::Unit);
}

TEST(ExtractTest, ConstantFoldingShrinksExtraction) {
  EGraph G;
  EClassId Root = G.addTerm(tAdd(tFloat(1.5), tFloat(2.5)));
  G.rebuild();
  AstSizeCost Cost;
  Extractor Ex(G, Cost);
  // The materialized literal (1 node) beats Add(_, _) (3 nodes).
  EXPECT_DOUBLE_EQ(*Ex.bestCost(Root), 1.0);
  EXPECT_DOUBLE_EQ(Ex.extract(Root)->op().numericValue(), 4.0);
}

TEST(ExtractTest, SharedSubtreesExtractConsistently) {
  EGraph G;
  TermPtr Shared = tTranslate(1, 2, 3, tUnit());
  EClassId Root = G.addTerm(tUnion(Shared, Shared));
  G.rebuild();
  AstSizeCost Cost;
  Extractor Ex(G, Cost);
  TermPtr Out = Ex.extract(Root);
  EXPECT_TRUE(termEquals(Out->child(0), Out->child(1)));
}

namespace {

/// A cost function that charges extra for Union to force reranking.
class AntiUnionCost : public CostFn {
public:
  double cost(const Op &O, const std::vector<double> &Kids) const final {
    double Sum = O.kind() == OpKind::Union ? 100.0 : 1.0;
    for (double C : Kids)
      Sum += C;
    return Sum;
  }
};

} // namespace

TEST(ExtractTest, CostFunctionChangesChoice) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tUnit()));
  EClassId Inter = G.addTerm(tInter(tUnit(), tUnit()));
  G.merge(Root, Inter);
  G.rebuild();
  AntiUnionCost Cost;
  Extractor Ex(G, Cost);
  EXPECT_EQ(Ex.extract(Root)->kind(), OpKind::Inter);
}

TEST(KBestTest, SingleCandidateGraph) {
  EGraph G;
  TermPtr T = tTranslate(1, 2, 3, tUnit());
  EClassId Root = G.addTerm(T);
  G.rebuild();
  AstSizeCost Cost;
  KBestExtractor Ex(G, Cost, 5);
  auto Ranked = Ex.extract(Root);
  ASSERT_EQ(Ranked.size(), 1u);
  EXPECT_TRUE(termApproxEquals(Ranked[0].T, T, 0.0));
}

TEST(KBestTest, ReturnsDistinctAlternativesInCostOrder) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tSphere()));
  G.rebuild();
  Rewrite Comm("comm", "(Union ?a ?b)", "(Union ?b ?a)");
  Comm.run(G);
  AstSizeCost Cost;
  KBestExtractor Ex(G, Cost, 5);
  auto Ranked = Ex.extract(Root);
  ASSERT_EQ(Ranked.size(), 2u);
  EXPECT_DOUBLE_EQ(Ranked[0].Cost, 3.0);
  EXPECT_DOUBLE_EQ(Ranked[1].Cost, 3.0);
  EXPECT_FALSE(termEquals(Ranked[0].T, Ranked[1].T));
}

TEST(KBestTest, FirstCandidateMatchesOneBest) {
  EGraph G;
  EClassId Root =
      G.addTerm(tUnion(tUnit(), tUnion(tSphere(), tCylinder())));
  G.rebuild();
  std::vector<Rewrite> Rules;
  Rules.emplace_back("comm", "(Union ?a ?b)", "(Union ?b ?a)");
  Rules.emplace_back("idem-intro", "(Union ?a ?b)", "(Union ?a (Union ?b ?b))");
  Runner R(RunnerLimits{.IterLimit = 3});
  R.run(G, Rules);
  AstSizeCost Cost;
  Extractor One(G, Cost);
  KBestExtractor Many(G, Cost, 4);
  auto Ranked = Many.extract(Root);
  ASSERT_FALSE(Ranked.empty());
  EXPECT_DOUBLE_EQ(Ranked[0].Cost, *One.bestCost(Root));
}

TEST(KBestTest, CandidatesAreDistinctAndSorted) {
  EGraph G;
  EClassId Root =
      G.addTerm(tUnion(tUnit(), tUnion(tSphere(), tCylinder())));
  G.rebuild();
  std::vector<Rewrite> Rules;
  Rules.emplace_back("comm", "(Union ?a ?b)", "(Union ?b ?a)");
  Runner R(RunnerLimits{.IterLimit = 4});
  R.run(G, Rules);
  AstSizeCost Cost;
  KBestExtractor Ex(G, Cost, 8);
  auto Ranked = Ex.extract(Root);
  ASSERT_GE(Ranked.size(), 4u);
  for (size_t I = 1; I < Ranked.size(); ++I) {
    EXPECT_LE(Ranked[I - 1].Cost, Ranked[I].Cost);
    for (size_t J = 0; J < I; ++J)
      EXPECT_FALSE(termEquals(Ranked[I].T, Ranked[J].T));
  }
}

TEST(RunnerTest, SaturatesOnFixpoint) {
  EGraph G;
  G.addTerm(tUnion(tUnit(), tSphere()));
  G.rebuild();
  std::vector<Rewrite> Rules;
  Rules.emplace_back("comm", "(Union ?a ?b)", "(Union ?b ?a)");
  Runner R;
  RunnerReport Report = R.run(G, Rules);
  EXPECT_EQ(Report.Stop, StopReason::Saturated);
  EXPECT_LE(Report.numIterations(), 3u);
}

namespace {

/// A rule that genuinely never saturates: each firing mints a fresh
/// constant, so hash-consing can never close the loop.
Rewrite divergingRule() {
  return Rewrite("diverge", "(Translate (Vec3 ?x ?y ?z) ?c)",
                 "(Translate (Vec3 (Add ?x 1.0) ?y ?z) "
                 "(Translate (Vec3 (Sub ?x (Add ?x 1.0)) ?y ?z) ?c))");
}

} // namespace

TEST(RunnerTest, IterLimitStops) {
  EGraph G;
  G.addTerm(tTranslate(1, 2, 3, tUnit()));
  G.rebuild();
  std::vector<Rewrite> Rules;
  Rules.push_back(divergingRule());
  Runner R(RunnerLimits{.IterLimit = 2, .NodeLimit = 1000000000});
  RunnerReport Report = R.run(G, Rules);
  EXPECT_EQ(Report.Stop, StopReason::IterLimit);
  EXPECT_EQ(Report.numIterations(), 2u);
}

TEST(RunnerTest, NodeLimitStops) {
  EGraph G;
  G.addTerm(tTranslate(1, 2, 3, tUnit()));
  G.rebuild();
  std::vector<Rewrite> Rules;
  Rules.push_back(divergingRule());
  Runner R(RunnerLimits{.IterLimit = 500, .NodeLimit = 64});
  RunnerReport Report = R.run(G, Rules);
  EXPECT_EQ(Report.Stop, StopReason::NodeLimit);
}

TEST(RunnerTest, ReportsIterationStatistics) {
  EGraph G;
  G.addTerm(tUnion(tUnit(), tSphere()));
  G.rebuild();
  std::vector<Rewrite> Rules;
  Rules.emplace_back("comm", "(Union ?a ?b)", "(Union ?b ?a)");
  Runner R;
  RunnerReport Report = R.run(G, Rules);
  ASSERT_FALSE(Report.Iterations.empty());
  EXPECT_GT(Report.Iterations[0].Matches, 0u);
  EXPECT_GT(Report.Iterations[0].Nodes, 0u);
  EXPECT_GE(Report.Seconds, 0.0);
}
