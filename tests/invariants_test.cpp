//===-- tests/invariants_test.cpp - Invariants, depth cost, volume --------===//

#include "cad/Sexp.h"
#include "egraph/Extract.h"
#include "egraph/Runner.h"
#include "geom/Sample.h"
#include "rewrites/Rules.h"
#include "scad/ScadParser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace shrinkray;

//===----------------------------------------------------------------------===//
// E-graph invariant checker
//===----------------------------------------------------------------------===//

TEST(InvariantTest, FreshGraphIsClean) {
  EGraph G;
  G.addTerm(tUnion(tTranslate(1, 2, 3, tUnit()), tSphere()));
  G.rebuild();
  EXPECT_EQ(G.checkInvariants(), "");
}

TEST(InvariantTest, DirtyGraphIsReported) {
  EGraph G;
  EClassId A = G.addTerm(tUnit());
  EClassId B = G.addTerm(tSphere());
  G.merge(A, B);
  EXPECT_NE(G.checkInvariants(), "");
  G.rebuild();
  EXPECT_EQ(G.checkInvariants(), "");
}

TEST(InvariantTest, HoldsAfterSaturation) {
  std::vector<TermPtr> Cubes;
  for (int I = 1; I <= 6; ++I)
    Cubes.push_back(tTranslate(3.0 * I, 0, 0, tUnit()));
  EGraph G;
  G.addTerm(tUnionAll(Cubes));
  Runner R(RunnerLimits{.IterLimit = 20});
  R.run(G, pipelineRules());
  EXPECT_EQ(G.checkInvariants(), "");
}

class RandomMergeInvariants : public ::testing::TestWithParam<int> {};

TEST_P(RandomMergeInvariants, HoldAfterRandomMergeSequences) {
  // Build a pool of structurally related terms, merge random pairs, and
  // verify the invariants after every rebuild. This is the e-graph
  // engine's core stress property.
  Rng R(static_cast<uint64_t>(GetParam()) * 613 + 7);
  EGraph G;
  std::vector<EClassId> Pool;
  for (int I = 0; I < 24; ++I) {
    TermPtr Leaf = I % 2 ? tUnit() : tSphere();
    TermPtr T = tTranslate(static_cast<double>(I % 6), 0, 0, Leaf);
    if (I % 3 == 0)
      T = tScale(2, 2, 2, T);
    if (I % 4 == 0)
      T = tUnion(T, tCylinder());
    Pool.push_back(G.addTerm(T));
  }
  G.rebuild();
  ASSERT_EQ(G.checkInvariants(), "");

  for (int Step = 0; Step < 12; ++Step) {
    EClassId A = Pool[R.nextBelow(Pool.size())];
    EClassId B = Pool[R.nextBelow(Pool.size())];
    // Avoid merging numeric classes with mismatched constants (that is a
    // semantic error the analysis asserts on); the pool holds only solids.
    G.merge(A, B);
    G.rebuild();
    ASSERT_EQ(G.checkInvariants(), "") << "after step " << Step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMergeInvariants,
                         ::testing::Range(0, 10));

//===----------------------------------------------------------------------===//
// Depth cost
//===----------------------------------------------------------------------===//

TEST(DepthCostTest, ComputesAstDepth) {
  EGraph G;
  TermPtr T = tUnion(tTranslate(1, 2, 3, tUnit()), tSphere());
  EClassId Root = G.addTerm(T);
  G.rebuild();
  AstDepthCost Cost;
  Extractor Ex(G, Cost);
  EXPECT_DOUBLE_EQ(*Ex.bestCost(Root), static_cast<double>(termDepth(T)));
}

TEST(DepthCostTest, PicksShallowerAlternative) {
  EGraph G;
  // Same solid, two spellings of different depth.
  EClassId Deep = G.addTerm(
      tTranslate(1, 0, 0, tTranslate(1, 0, 0, tTranslate(1, 0, 0, tUnit()))));
  EClassId Shallow = G.addTerm(tTranslate(3, 0, 0, tUnit()));
  G.merge(Deep, Shallow);
  G.rebuild();
  AstDepthCost Cost;
  Extractor Ex(G, Cost);
  TermPtr Out = Ex.extract(Deep);
  EXPECT_EQ(termDepth(Out), termDepth(tTranslate(3, 0, 0, tUnit())));
}

//===----------------------------------------------------------------------===//
// Volume estimation
//===----------------------------------------------------------------------===//

TEST(VolumeTest, UnitCube) {
  EXPECT_NEAR(geom::estimateVolume(tUnit(), 50000, 1), 1.0, 0.02);
}

TEST(VolumeTest, ScaledBox) {
  EXPECT_NEAR(geom::estimateVolume(tScale(2, 3, 4, tUnit()), 50000, 2),
              24.0, 0.5);
}

TEST(VolumeTest, SphereMatchesFormula) {
  // 4/3 pi r^3 with r = 1.
  EXPECT_NEAR(geom::estimateVolume(tSphere(), 100000, 3), 4.18879, 0.1);
}

TEST(VolumeTest, DiffSubtracts) {
  TermPtr T = tDiff(tScale(2, 2, 2, tUnit()),
                    tTranslate(0.5, 0.5, 0.5, tUnit()));
  EXPECT_NEAR(geom::estimateVolume(T, 100000, 4), 7.0, 0.2);
}

TEST(VolumeTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(geom::estimateVolume(tEmpty(), 1000, 5), 0.0);
}

TEST(VolumeTest, VolumePreservedBySynthesisOutputs) {
  // Volume is an independent oracle from membership agreement.
  std::vector<TermPtr> Cubes;
  for (int I = 0; I < 5; ++I)
    Cubes.push_back(tTranslate(3.0 * I, 0, 0, tUnit()));
  TermPtr In = tUnionAll(Cubes);
  EXPECT_NEAR(geom::estimateVolume(In, 100000, 6), 5.0, 0.15);
}

//===----------------------------------------------------------------------===//
// OpenSCAD hull/mirror preprocessing (paper Sec. 6.1)
//===----------------------------------------------------------------------===//

TEST(ScadExternalTest, HullBecomesExternal) {
  scad::ScadResult R = scad::parseScad(
      "union() { hull() { sphere(1); translate([4,0,0]) sphere(1); } "
      "cube(2); }");
  ASSERT_TRUE(R) << R.Error;
  std::string Sexp = printSexp(R.Value);
  EXPECT_NE(Sexp.find("(External hull_1)"), std::string::npos) << Sexp;
  EXPECT_TRUE(isFlatCsg(R.Value));
}

TEST(ScadExternalTest, MirrorBecomesExternal) {
  scad::ScadResult R =
      scad::parseScad("mirror([1,0,0]) cube(3); cylinder(h=2, r=1);");
  ASSERT_TRUE(R) << R.Error;
  EXPECT_NE(printSexp(R.Value).find("(External mirror_1)"),
            std::string::npos);
}

TEST(ScadExternalTest, ExternalsAreNumberedDistinctly) {
  scad::ScadResult R = scad::parseScad(
      "hull() sphere(1); hull() cube(1); minkowski() { cube(1); }");
  ASSERT_TRUE(R) << R.Error;
  std::string Sexp = printSexp(R.Value);
  EXPECT_NE(Sexp.find("hull_1"), std::string::npos);
  EXPECT_NE(Sexp.find("hull_2"), std::string::npos);
  EXPECT_NE(Sexp.find("minkowski_3"), std::string::npos);
}

TEST(ScadExternalTest, RepeatedExternalsStillParameterize) {
  // The paper: "Both models have repetitive structure where the External
  // expression appears several times. ShrinkRay successfully parameterizes
  // over this repetition."  A row of identical hull parts folds into one
  // loop even though each part is opaque.
  scad::ScadResult R = scad::parseScad(
      "for (i = [0 : 4]) translate([6 * i, 0, 0]) hull() sphere(1);");
  ASSERT_TRUE(R) << R.Error;
  // Each loop iteration re-parses the body, so the Externals get distinct
  // names; rewrite them to one shared part as the paper's preprocessing
  // does. (Here: all iterations are the same part.)
  EXPECT_EQ(termPrimitives(R.Value), 5u);
}
