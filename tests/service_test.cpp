//===-- tests/service_test.cpp - Synthesis service layer ------------------===//
//
// Coverage for the service layer (scheduler + cancellation + result
// cache):
//
//  * scheduler determinism: N concurrent jobs produce outputs
//    byte-identical to the same jobs run on one worker;
//  * deadline-cancelled jobs come back promptly with partial-result
//    status and the pool keeps serving later jobs (no deadlock);
//  * queued-job cancellation completes without running;
//  * the content-addressed cache: repeat submissions hit, option changes
//    miss, entries persist across cache instances through the disk
//    directory, and corrupt files degrade to misses;
//  * cancellation-token semantics (inert default, deadline latch).
//
//===----------------------------------------------------------------------===//

#include "cad/Sexp.h"
#include "models/Models.h"
#include "rewrites/Rules.h"
#include "service/SynthesisService.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

using namespace shrinkray;
using namespace shrinkray::service;

namespace {

/// Byte-exact transcript of a job's programs (what "identical outputs"
/// means throughout this suite).
std::string transcript(const JobOutcome &Out) {
  std::string S;
  for (const RankedTerm &P : Out.Result.Programs)
    S += printSexp(P.T) + "\n";
  return S;
}

/// Runs the whole bench corpus through a service with \p Workers workers
/// and returns one transcript per model, submission order.
std::vector<std::string> runCorpus(size_t Workers, bool EnableCache) {
  ServiceConfig Cfg;
  Cfg.NumWorkers = Workers;
  Cfg.EnableCache = EnableCache;
  SynthesisService Service(Cfg);
  std::vector<SynthesisService::JobId> Ids;
  for (const models::BenchmarkModel &M : models::allModels()) {
    JobSpec Spec;
    Spec.Name = M.Name;
    Spec.Input = M.FlatCsg;
    Ids.push_back(Service.submit(std::move(Spec)));
  }
  std::vector<std::string> Out;
  for (SynthesisService::JobId Id : Ids) {
    const JobOutcome &O = Service.wait(Id);
    EXPECT_EQ(O.St, JobOutcome::Status::Succeeded);
    Out.push_back(transcript(O));
  }
  return Out;
}

std::string tempDir(const char *Name) {
  std::string Dir = testing::TempDir() + "/" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

} // namespace

//===----------------------------------------------------------------------===//
// Cancellation tokens
//===----------------------------------------------------------------------===//

TEST(CancelToken, InertDefaultNeverCancels) {
  CancelToken T;
  EXPECT_FALSE(T.valid());
  EXPECT_FALSE(T.cancelled());
  T.cancel(); // no-op, no crash
  EXPECT_FALSE(T.cancelled());
}

TEST(CancelToken, CancelIsSharedAcrossCopies) {
  CancelToken A = CancelToken::make();
  CancelToken B = A;
  EXPECT_FALSE(B.cancelled());
  A.cancel();
  EXPECT_TRUE(B.cancelled());
}

TEST(CancelToken, DeadlineLatches) {
  CancelToken T = CancelToken::withDeadline(0.005);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(T.cancelled());
  EXPECT_TRUE(T.cancelled()); // latched, still true
}

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

TEST(SynthesisServiceTest, ConcurrentJobsMatchSequentialByteForByte) {
  std::vector<std::string> Sequential = runCorpus(1, /*EnableCache=*/false);
  std::vector<std::string> Concurrent = runCorpus(4, /*EnableCache=*/false);
  ASSERT_EQ(Sequential.size(), Concurrent.size());
  std::vector<models::BenchmarkModel> Corpus = models::allModels();
  for (size_t I = 0; I < Sequential.size(); ++I) {
    EXPECT_EQ(Sequential[I], Concurrent[I]) << Corpus[I].Name;
    EXPECT_FALSE(Sequential[I].empty()) << Corpus[I].Name;
  }
}

TEST(SynthesisServiceTest, DeadlineReturnsPartialResultWithoutDeadlock) {
  ServiceConfig Cfg;
  Cfg.NumWorkers = 2;
  Cfg.EnableCache = false;
  SynthesisService Service(Cfg);

  // An impossible budget on the corpus's slowest model: the job must
  // come back Cancelled — with whatever programs the graph held — and
  // the pool must keep serving.
  JobSpec Slow;
  Slow.Name = "slow";
  Slow.Input = models::modelByName("3432939:nintendo-slot").FlatCsg;
  Slow.DeadlineSec = 0.005;
  SynthesisService::JobId SlowId = Service.submit(std::move(Slow));

  const JobOutcome &SlowOut = Service.wait(SlowId);
  EXPECT_EQ(SlowOut.St, JobOutcome::Status::Cancelled);
  EXPECT_TRUE(SlowOut.Result.Stats.Cancelled);
  // Partial result: extraction still returned the input respelling (or
  // better) from the partially saturated graph.
  EXPECT_FALSE(SlowOut.Result.Programs.empty());

  // The pool is alive: a quick follow-up job completes normally.
  JobSpec Quick;
  Quick.Name = "quick";
  Quick.Source = "(Union Unit (Translate (Vec3 2 0 0) Unit))";
  const JobOutcome &QuickOut = Service.wait(Service.submit(std::move(Quick)));
  EXPECT_EQ(QuickOut.St, JobOutcome::Status::Succeeded);
  EXPECT_FALSE(QuickOut.Result.Programs.empty());
}

TEST(SynthesisServiceTest, DeadlineSweepLandsMidPipelineAndStaysPartial) {
  // Deadlines at several magnitudes land at different pipeline points —
  // during saturation, mid-solve (the solver pipeline polls the token
  // between stages and inside the trig frequency scan), or after
  // completion. Whichever fires, the job must come back promptly as either
  // a full success or a Cancelled outcome whose partial result is still
  // well-formed, and the pool must survive the whole sweep.
  ServiceConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.EnableCache = false;
  SynthesisService Service(Cfg);

  const TermPtr Input = models::modelByName("3432939:nintendo-slot").FlatCsg;
  for (double DeadlineSec : {0.002, 0.01, 0.05, 0.25}) {
    JobSpec Spec;
    Spec.Name = "sweep";
    Spec.Input = Input;
    Spec.DeadlineSec = DeadlineSec;
    const JobOutcome &Out = Service.wait(Service.submit(std::move(Spec)));
    if (Out.St == JobOutcome::Status::Cancelled) {
      EXPECT_TRUE(Out.Result.Stats.Cancelled);
      EXPECT_FALSE(Out.Result.Programs.empty());
    } else {
      EXPECT_EQ(Out.St, JobOutcome::Status::Succeeded);
      EXPECT_FALSE(Out.Result.Stats.Cancelled);
      EXPECT_FALSE(Out.Result.Programs.empty());
    }
  }

  // The worker is still serving after repeated mid-pipeline cancellations.
  JobSpec Quick;
  Quick.Name = "after-sweep";
  Quick.Source = "(Union Unit (Translate (Vec3 2 0 0) Unit))";
  const JobOutcome &QuickOut = Service.wait(Service.submit(std::move(Quick)));
  EXPECT_EQ(QuickOut.St, JobOutcome::Status::Succeeded);
}

TEST(SynthesisServiceTest, CancelQueuedJobCompletesWithoutRunning) {
  ServiceConfig Cfg;
  Cfg.NumWorkers = 1; // one worker: the second submission must queue
  Cfg.EnableCache = false;
  SynthesisService Service(Cfg);

  JobSpec Slow;
  Slow.Name = "head";
  Slow.Input = models::modelByName("3432939:nintendo-slot").FlatCsg;
  SynthesisService::JobId Head = Service.submit(std::move(Slow));

  JobSpec Queued;
  Queued.Name = "queued";
  Queued.Input = models::modelByName("3362402:gear").FlatCsg;
  SynthesisService::JobId Victim = Service.submit(std::move(Queued));
  EXPECT_TRUE(Service.cancel(Victim));

  const JobOutcome &VictimOut = Service.wait(Victim);
  EXPECT_EQ(VictimOut.St, JobOutcome::Status::Cancelled);
  EXPECT_TRUE(VictimOut.Result.Programs.empty()); // never ran
  EXPECT_EQ(VictimOut.RunSec, 0.0);

  const JobOutcome &HeadOut = Service.wait(Head);
  EXPECT_EQ(HeadOut.St, JobOutcome::Status::Succeeded);
  EXPECT_FALSE(Service.cancel(Victim)); // already done
}

TEST(SynthesisServiceTest, DestructorCompletesQueuedJobsWithoutHanging) {
  // Destroying a service with work still queued must cancel the running
  // job cooperatively and complete the queued ones as Cancelled —
  // reaching the end of this scope (no deadlocked worker join, no
  // abandoned Pending job) is the assertion.
  ServiceConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.EnableCache = false;
  {
    SynthesisService Service(Cfg);
    JobSpec Spec;
    Spec.Input = models::modelByName("3362402:gear").FlatCsg;
    Service.submit(Spec);
    Service.submit(Spec);
    Service.submit(Spec);
  }
  SUCCEED();
}

TEST(SynthesisServiceTest, ScadSourceJobsAndParseFailures) {
  SynthesisService Service;

  JobSpec Scad;
  Scad.Name = "scad";
  Scad.Source = "for (i = [0:3]) translate([i*2, 0, 0]) cube(1);\n";
  Scad.SourceIsScad = true;
  const JobOutcome &ScadOut = Service.wait(Service.submit(std::move(Scad)));
  EXPECT_EQ(ScadOut.St, JobOutcome::Status::Succeeded);
  EXPECT_FALSE(ScadOut.Result.Programs.empty());

  JobSpec Bad;
  Bad.Name = "bad";
  Bad.Source = "(Union Unit"; // unbalanced
  const JobOutcome &BadOut = Service.wait(Service.submit(std::move(Bad)));
  EXPECT_EQ(BadOut.St, JobOutcome::Status::Failed);
  EXPECT_FALSE(BadOut.Error.empty());

  JobSpec NotFlat;
  NotFlat.Name = "loops-input";
  // Loopy input is flattened first, then synthesized.
  NotFlat.Source = "(Fold Union Empty (Cons (Translate (Vec3 2 0 0) Unit) "
                   "(Cons (Translate (Vec3 4 0 0) Unit) Nil)))";
  const JobOutcome &FlatOut =
      Service.wait(Service.submit(std::move(NotFlat)));
  EXPECT_EQ(FlatOut.St, JobOutcome::Status::Succeeded);
}

//===----------------------------------------------------------------------===//
// Result cache
//===----------------------------------------------------------------------===//

TEST(SynthesisServiceTest, RepeatSubmissionHitsCache) {
  SynthesisService Service; // default config: memory cache enabled
  JobSpec First;
  First.Input = models::modelByName("3148599:box-tray").FlatCsg;
  const JobOutcome &Cold = Service.wait(Service.submit(First));
  ASSERT_EQ(Cold.St, JobOutcome::Status::Succeeded);

  const JobOutcome &Warm = Service.wait(Service.submit(First));
  EXPECT_EQ(Warm.St, JobOutcome::Status::CacheHit);
  EXPECT_EQ(transcript(Warm), transcript(Cold));

  // A different option set is a different key: no false hit.
  JobSpec OtherK = First;
  OtherK.Options.TopK = 2;
  const JobOutcome &Other = Service.wait(Service.submit(OtherK));
  EXPECT_EQ(Other.St, JobOutcome::Status::Succeeded);
}

TEST(ResultCacheTest, FingerprintsSeparateResultRelevantOptions) {
  SynthesisOptions A;
  SynthesisOptions B = A;
  EXPECT_EQ(optionsFingerprint(A), optionsFingerprint(B));
  B.TopK = 3;
  EXPECT_NE(optionsFingerprint(A), optionsFingerprint(B));
  B = A;
  B.Cost = CostKind::RewardLoops;
  EXPECT_NE(optionsFingerprint(A), optionsFingerprint(B));
  B = A;
  B.Solver.Epsilon = 0.5;
  EXPECT_NE(optionsFingerprint(A), optionsFingerprint(B));
  // Thread count cannot change results (bit-identical saturation) and
  // must not fragment the cache.
  B = A;
  B.Limits.NumThreads = 7;
  EXPECT_EQ(optionsFingerprint(A), optionsFingerprint(B));
}

TEST(ResultCacheTest, InputKeyIsValueLevel) {
  // Int/Float respellings of the same model address the same entry.
  TermPtr IntSpelling =
      parseSexp("(Translate (Vec3 1 2 3) Unit)").Value;
  TermPtr FloatSpelling =
      parseSexp("(Translate (Vec3 1.0 2.0 3.0) Unit)").Value;
  ASSERT_TRUE(IntSpelling && FloatSpelling);
  SynthesisOptions Opts;
  EXPECT_EQ(makeCacheKey(IntSpelling, 42, Opts).hex(),
            makeCacheKey(FloatSpelling, 42, Opts).hex());
}

TEST(ResultCacheTest, DiskEntriesPersistAcrossInstances) {
  const std::string Dir = tempDir("srcache_persist");
  CacheKey Key = makeCacheKey(parseSexp("(Union Unit Sphere)").Value, 7,
                              SynthesisOptions());
  std::vector<RankedTerm> Programs;
  Programs.push_back({parseSexp("(Union Unit Sphere)").Value, 3.0});
  Programs.push_back({parseSexp("(Union Sphere Unit)").Value, 3.5});

  {
    ResultCache Writer(Dir);
    Writer.store(Key, Programs);
  }
  ResultCache Reader(Dir); // fresh instance: memory empty, disk warm
  std::optional<std::vector<RankedTerm>> Hit = Reader.lookup(Key);
  ASSERT_TRUE(Hit.has_value());
  ASSERT_EQ(Hit->size(), 2u);
  EXPECT_TRUE(termEquals((*Hit)[0].T, Programs[0].T));
  EXPECT_TRUE(termEquals((*Hit)[1].T, Programs[1].T));
  EXPECT_EQ((*Hit)[0].Cost, 3.0);
  EXPECT_EQ(Reader.stats().DiskHits, 1u);

  // Second lookup is served from memory.
  ASSERT_TRUE(Reader.lookup(Key).has_value());
  EXPECT_EQ(Reader.stats().DiskHits, 1u);
  EXPECT_EQ(Reader.stats().Hits, 2u);
}

TEST(ResultCacheTest, CorruptDiskEntriesDegradeToMisses) {
  const std::string Dir = tempDir("srcache_corrupt");
  CacheKey Key = makeCacheKey(parseSexp("(Union Unit Sphere)").Value, 7,
                              SynthesisOptions());
  {
    ResultCache Writer(Dir);
    Writer.store(Key, {{parseSexp("Unit").Value, 1.0}});
  }
  // Truncate the entry file mid-way.
  const std::string Path = Dir + "/" + Key.hex() + ".srres";
  ASSERT_TRUE(std::filesystem::exists(Path));
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "shrinkray-result-cache v1\nkey " << Key.hex() << "\nprograms 2\n";
  }
  ResultCache Reader(Dir);
  EXPECT_FALSE(Reader.lookup(Key).has_value());
  EXPECT_EQ(Reader.stats().Misses, 1u);

  // A key whose file never existed is a plain miss.
  CacheKey Other = Key;
  Other.InputHash ^= 1;
  EXPECT_FALSE(Reader.lookup(Other).has_value());
}

namespace {

/// N distinct cache keys (distinct input fingerprints, shared options).
CacheKey numberedKey(uint64_t N) {
  CacheKey Key = makeCacheKey(parseSexp("(Union Unit Sphere)").Value, 7,
                              SynthesisOptions());
  Key.InputHash = N;
  return Key;
}

std::vector<RankedTerm> oneProgram() {
  return {{parseSexp("Unit").Value, 1.0}};
}

} // namespace

TEST(ResultCacheTest, MemoryLruCapEvictsLeastRecentlyUsed) {
  ResultCache C("", ResultCache::Limits{/*MaxMemEntries=*/2, 0, 0.0});
  C.store(numberedKey(1), oneProgram());
  C.store(numberedKey(2), oneProgram());
  ASSERT_TRUE(C.lookup(numberedKey(1)).has_value()); // 1 becomes MRU
  C.store(numberedKey(3), oneProgram());             // evicts 2, not 1
  EXPECT_EQ(C.stats().MemEvictions, 1u);
  EXPECT_TRUE(C.lookup(numberedKey(1)).has_value());
  EXPECT_FALSE(C.lookup(numberedKey(2)).has_value());
  EXPECT_TRUE(C.lookup(numberedKey(3)).has_value());

  // Re-storing a resident key refreshes it in place: no eviction.
  C.store(numberedKey(3), oneProgram());
  EXPECT_EQ(C.stats().MemEvictions, 1u);
}

TEST(ResultCacheTest, DiskSweepTrimsOldestTowardsByteBudget) {
  const std::string Dir = tempDir("srcache_sweep_bytes");
  // Budget of one entry's worth: each file is ~90 bytes, so 128 bytes
  // forces every sweep to keep only the newest file.
  ResultCache C(Dir, ResultCache::Limits{0, /*MaxDiskBytes=*/128, 0.0});
  namespace fs = std::filesystem;
  const auto Now = fs::file_time_type::clock::now();
  for (uint64_t I = 1; I <= 3; ++I) {
    C.store(numberedKey(I), oneProgram());
    // Sub-second mtime granularity is not guaranteed everywhere; stamp
    // strictly increasing ages so "oldest-first" is well defined.
    fs::last_write_time(Dir + "/" + numberedKey(I).hex() + ".srres",
                        Now - std::chrono::seconds(10 - I));
  }
  C.sweepDisk();
  EXPECT_GE(C.stats().DiskEvictions, 2u);
  EXPECT_FALSE(fs::exists(Dir + "/" + numberedKey(1).hex() + ".srres"));
  EXPECT_FALSE(fs::exists(Dir + "/" + numberedKey(2).hex() + ".srres"));
  EXPECT_TRUE(fs::exists(Dir + "/" + numberedKey(3).hex() + ".srres"));

  // The memory tier is unaffected: evicted disk entries still hit.
  EXPECT_TRUE(C.lookup(numberedKey(1)).has_value());
  // ...but a fresh instance (cold memory) now misses them.
  ResultCache Reader(Dir);
  EXPECT_FALSE(Reader.lookup(numberedKey(1)).has_value());
  EXPECT_TRUE(Reader.lookup(numberedKey(3)).has_value());
}

TEST(ResultCacheTest, DiskSweepExpiresByAgeAndReapsTmpOrphans) {
  const std::string Dir = tempDir("srcache_sweep_age");
  ResultCache C(Dir, ResultCache::Limits{0, 0, /*MaxAgeSec=*/3600.0});
  namespace fs = std::filesystem;
  C.store(numberedKey(1), oneProgram());
  C.store(numberedKey(2), oneProgram());
  const std::string Old = Dir + "/" + numberedKey(1).hex() + ".srres";
  fs::last_write_time(Old,
                      fs::file_time_type::clock::now() -
                          std::chrono::seconds(7200));
  // An orphaned tmp from a crashed writer, past the age limit — reaped;
  // a fresh tmp (a writer mid-store) must survive the sweep.
  const std::string OldTmp = Dir + "/x.srres.tmp.1.2";
  const std::string FreshTmp = Dir + "/y.srres.tmp.3.4";
  std::ofstream(OldTmp) << "partial";
  std::ofstream(FreshTmp) << "partial";
  fs::last_write_time(OldTmp,
                      fs::file_time_type::clock::now() -
                          std::chrono::seconds(7200));
  C.sweepDisk();
  EXPECT_EQ(C.stats().DiskEvictions, 1u); // tmp reaps are not entry evictions
  EXPECT_FALSE(fs::exists(Old));
  EXPECT_FALSE(fs::exists(OldTmp));
  EXPECT_TRUE(fs::exists(FreshTmp));
  EXPECT_TRUE(
      fs::exists(Dir + "/" + numberedKey(2).hex() + ".srres"));
}

// Regression: `.srsnap` files must count against the disk byte budget
// and age limit exactly like `.srres` files. Before the sweep learned
// about the snapshot tier, a snapshot-only workload never advanced the
// amortized sweep counter and sweeps skipped the extension entirely, so
// megabyte-scale snapshot entries grew the cache directory without
// bound.
TEST(ResultCacheTest, SnapshotOnlyStoresHonorDiskBudget) {
  const std::string Dir = tempDir("srcache_snap_budget");
  ResultCache C(Dir, ResultCache::Limits{0, /*MaxDiskBytes=*/512, 0.0});
  namespace fs = std::filesystem;
  const auto Now = fs::file_time_type::clock::now();
  SnapshotEntry E;
  E.InputSexp = "(Union Unit Sphere)";
  E.Graph = std::string(400, 'g'); // every entry alone exceeds half the budget
  for (uint64_t I = 1; I <= 3; ++I) {
    E.InputHash = I;
    C.storeSnapshot(numberedKey(I), E);
    fs::last_write_time(Dir + "/" + numberedKey(I).hex() + ".srsnap",
                        Now - std::chrono::seconds(10 - I));
  }
  C.sweepDisk();
  EXPECT_GE(C.stats().SnapshotDiskEvictions, 2u);
  EXPECT_EQ(C.stats().DiskEvictions, 0u); // split counters: no .srres swept
  EXPECT_FALSE(fs::exists(Dir + "/" + numberedKey(1).hex() + ".srsnap"));
  EXPECT_FALSE(fs::exists(Dir + "/" + numberedKey(2).hex() + ".srsnap"));
  EXPECT_TRUE(fs::exists(Dir + "/" + numberedKey(3).hex() + ".srsnap"));

  // Crashed snapshot writers leave `.srsnap.tmp.<pid>.<n>` orphans; the
  // age sweep must reap them alongside result tmps.
  const std::string AgeDir = tempDir("srcache_snap_age");
  ResultCache A(AgeDir, ResultCache::Limits{0, 0, /*MaxAgeSec=*/3600.0});
  E.InputHash = 9;
  A.storeSnapshot(numberedKey(9), E);
  const std::string OldTmp = AgeDir + "/z.srsnap.tmp.1.2";
  std::ofstream(OldTmp) << "partial";
  fs::last_write_time(OldTmp, Now - std::chrono::seconds(7200));
  A.sweepDisk();
  EXPECT_FALSE(fs::exists(OldTmp));
  EXPECT_TRUE(fs::exists(AgeDir + "/" + numberedKey(9).hex() + ".srsnap"));
  EXPECT_EQ(A.stats().SnapshotDiskEvictions, 0u); // tmp reaps are not evictions
}

//===----------------------------------------------------------------------===//
// Query APIs: tryWait / waitFor / poll / trySubmit / drain / stats
//===----------------------------------------------------------------------===//

TEST(ServiceQueryTest, TryWaitUnknownIdReportsInsteadOfAborting) {
  SynthesisService Service;
  WaitResult R = Service.tryWait(424242);
  EXPECT_EQ(R.St, WaitResult::Status::Unknown);
  EXPECT_EQ(R.Outcome, nullptr);
  EXPECT_EQ(Service.poll(424242), JobPhase::Unknown);
  EXPECT_EQ(Service.waitFor(424242, 0.0).St, WaitResult::Status::Unknown);
}

TEST(ServiceQueryTest, WaitIsStillLoudOnCallerBugs) {
  // The blocking wait() keeps its abort contract for embedders — only
  // the query APIs are tolerant. (Documented, not death-tested: a death
  // test would fork the worker pool.)
  SynthesisService Service;
  JobSpec Spec;
  Spec.Name = "known";
  Spec.Source = "(Union Unit (Translate (Vec3 2 0 0) Unit))";
  SynthesisService::JobId Id = Service.submit(std::move(Spec));
  WaitResult R = Service.tryWait(Id);
  ASSERT_EQ(R.St, WaitResult::Status::Done);
  ASSERT_NE(R.Outcome, nullptr);
  EXPECT_EQ(R.Outcome->St, JobOutcome::Status::Succeeded);
  // tryWait and wait return the same outcome object.
  EXPECT_EQ(R.Outcome, &Service.wait(Id));
}

TEST(ServiceQueryTest, WaitForTimesOutOnBusyJobThenCompletes) {
  ServiceConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.EnableCache = false;
  SynthesisService Service(Cfg);

  JobSpec Slow;
  Slow.Name = "slow";
  Slow.Input = models::modelByName("3432939:nintendo-slot").FlatCsg;
  SynthesisService::JobId Id = Service.submit(std::move(Slow));

  // A zero-timeout poll-style wait and a short one both time out while
  // the job runs (spurious wakeups must not return early: waitFor
  // re-checks completion under the lock before reporting).
  EXPECT_EQ(Service.waitFor(Id, 0.0).St, WaitResult::Status::Timeout);
  WaitResult Short = Service.waitFor(Id, 0.01);
  EXPECT_EQ(Short.St, WaitResult::Status::Timeout);
  EXPECT_EQ(Short.Outcome, nullptr);
  JobPhase Phase = Service.poll(Id);
  EXPECT_TRUE(Phase == JobPhase::Pending || Phase == JobPhase::Running);

  // A generous timeout observes completion, and the completion-vs-
  // deadline race resolves to Done (the predicate re-runs at expiry).
  WaitResult Full = Service.waitFor(Id, 600.0);
  ASSERT_EQ(Full.St, WaitResult::Status::Done);
  ASSERT_NE(Full.Outcome, nullptr);
  EXPECT_EQ(Full.Outcome->St, JobOutcome::Status::Succeeded);
  EXPECT_EQ(Service.poll(Id), JobPhase::Done);

  // After completion every further timed wait is an immediate Done, even
  // with a zero timeout.
  EXPECT_EQ(Service.waitFor(Id, 0.0).St, WaitResult::Status::Done);
}

TEST(ServiceQueryTest, WaitForRacingCompletionNeverMisreportsTimeout) {
  // Hammer the completion-vs-timeout race: many tiny jobs, each awaited
  // with a timeout in the same order of magnitude as the job itself.
  // Whichever way each race lands, a Done report must carry the outcome
  // and a Timeout report must be followed by an eventually-Done wait.
  ServiceConfig Cfg;
  Cfg.NumWorkers = 2;
  Cfg.EnableCache = false;
  SynthesisService Service(Cfg);
  for (int I = 0; I < 20; ++I) {
    JobSpec Spec;
    Spec.Name = "race-" + std::to_string(I);
    Spec.Source = "(Union Unit (Translate (Vec3 2 0 0) Unit))";
    SynthesisService::JobId Id = Service.submit(std::move(Spec));
    WaitResult R = Service.waitFor(Id, 0.002);
    if (R.St == WaitResult::Status::Done) {
      ASSERT_NE(R.Outcome, nullptr);
      EXPECT_EQ(R.Outcome->St, JobOutcome::Status::Succeeded);
    } else {
      ASSERT_EQ(R.St, WaitResult::Status::Timeout);
      WaitResult Final = Service.waitFor(Id, 600.0);
      ASSERT_EQ(Final.St, WaitResult::Status::Done);
      EXPECT_EQ(Final.Outcome->St, JobOutcome::Status::Succeeded);
    }
  }
}

TEST(ServiceQueryTest, TrySubmitEnforcesTheQueueBound) {
  ServiceConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.EnableCache = false;
  Cfg.MaxQueueDepth = 1;
  SynthesisService Service(Cfg);

  JobSpec Slow;
  Slow.Name = "head";
  Slow.Input = models::modelByName("3432939:nintendo-slot").FlatCsg;
  std::optional<SynthesisService::JobId> Head =
      Service.trySubmit(std::move(Slow));
  ASSERT_TRUE(Head.has_value());

  // Fill the queue (racing the worker pickup: retry until one sticks),
  // then the next trySubmit must bounce.
  JobSpec Fill;
  Fill.Name = "fill";
  Fill.Source = "(Union Unit (Translate (Vec3 2 0 0) Unit))";
  bool SawReject = false;
  std::vector<SynthesisService::JobId> Accepted{*Head};
  for (int I = 0; I < 200 && !SawReject; ++I) {
    std::optional<SynthesisService::JobId> Id = Service.trySubmit(Fill);
    if (Id)
      Accepted.push_back(*Id);
    else
      SawReject = true;
  }
  EXPECT_TRUE(SawReject);
  EXPECT_GE(Service.stats().Rejected, 1u);

  // submit() deliberately ignores the bound (in-process callers own
  // their backlog).
  JobSpec Extra;
  Extra.Name = "unbounded";
  Extra.Source = "(Union Unit (Translate (Vec3 2 0 0) Unit))";
  SynthesisService::JobId Unbounded = Service.submit(std::move(Extra));
  Accepted.push_back(Unbounded);

  Service.cancel(*Head);
  for (SynthesisService::JobId Id : Accepted)
    EXPECT_EQ(Service.tryWait(Id).St, WaitResult::Status::Done);
}

TEST(ServiceQueryTest, DrainStopsTrySubmitKeepsSubmitAndReachesIdle) {
  ServiceConfig Cfg;
  Cfg.NumWorkers = 2;
  Cfg.EnableCache = false;
  SynthesisService Service(Cfg);

  JobSpec Spec;
  Spec.Name = "inflight";
  Spec.Source = "(Union Unit (Translate (Vec3 2 0 0) Unit))";
  SynthesisService::JobId Id = Service.submit(Spec);

  Service.beginDrain();
  EXPECT_FALSE(Service.trySubmit(Spec).has_value());
  EXPECT_TRUE(Service.stats().Draining);
  // submit() still honors the in-process contract during drain.
  SynthesisService::JobId Late = Service.submit(Spec);

  EXPECT_TRUE(Service.awaitIdle(600.0));
  EXPECT_EQ(Service.poll(Id), JobPhase::Done);
  EXPECT_EQ(Service.poll(Late), JobPhase::Done);
  ServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.QueueDepth, 0u);
  EXPECT_EQ(Stats.Running, 0u);
}

TEST(ServiceQueryTest, AwaitIdleTimesOutWhileWorkRemains) {
  ServiceConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.EnableCache = false;
  SynthesisService Service(Cfg);
  JobSpec Slow;
  Slow.Name = "busy";
  Slow.Input = models::modelByName("3432939:nintendo-slot").FlatCsg;
  SynthesisService::JobId Id = Service.submit(std::move(Slow));
  EXPECT_FALSE(Service.awaitIdle(0.01));
  Service.cancel(Id);
  EXPECT_TRUE(Service.awaitIdle(600.0));
}

TEST(ServiceQueryTest, StatsCountEveryOutcomeClass) {
  ServiceConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.EnableCache = true;
  SynthesisService Service(Cfg);

  JobSpec Ok;
  Ok.Name = "ok";
  Ok.Source = "(Union Unit (Translate (Vec3 2 0 0) Unit))";
  Service.wait(Service.submit(Ok));
  Service.wait(Service.submit(Ok)); // identical: cache hit
  JobSpec Bad;
  Bad.Name = "bad";
  Bad.Source = "(Union Unit"; // parse failure
  Service.wait(Service.submit(std::move(Bad)));

  ServiceStats Stats = Service.stats();
  EXPECT_EQ(Stats.Submitted, 3u);
  EXPECT_EQ(Stats.Completed, 3u);
  EXPECT_EQ(Stats.Succeeded, 1u);
  EXPECT_EQ(Stats.CacheHits, 1u);
  EXPECT_EQ(Stats.Failed, 1u);
  EXPECT_EQ(Stats.Cancelled, 0u);
  EXPECT_EQ(Stats.Rejected, 0u);
  EXPECT_FALSE(Stats.Draining);
}
