//===-- tests/server_protocol_test.cpp - JSONL RPC codec ------------------===//
//
// Coverage for the wire layer of the synthesis server, below any socket:
//
//  * the JSON codec: parse/write round-trips for every value kind,
//    canonical number spelling, escape handling (including surrogate
//    pairs), and the hard "never throws" contract on malformed input —
//    truncations, garbage, nest bombs, trailing bytes;
//  * the request codec: parseRequest(encodeRequest(R)) reproduces R
//    field-for-field for every op; every validation rule (missing
//    source, out-of-range top_k, fractional job ids, oversized frames,
//    unknown ops) degrades to an error value;
//  * response builders emit parseable frames with the documented fields;
//  * a deterministic-LCG mutation fuzz sweep (the snapshot envelope
//    fuzzer's discipline): thousands of corrupted frames through
//    parseJson and parseRequest, asserting error-or-value, never a
//    throw, and writer/parser agreement whenever a mutant still parses.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

using namespace shrinkray;
using namespace shrinkray::server;

namespace {

JsonValue parseOk(const std::string &Text) {
  JsonParseResult R = parseJson(Text);
  EXPECT_TRUE(R) << Text << " => " << R.Error;
  return std::move(R.Value);
}

std::string parseErr(const std::string &Text) {
  JsonParseResult R = parseJson(Text);
  EXPECT_FALSE(R) << Text << " unexpectedly parsed";
  return R.Error;
}

/// The PR 8 fuzzer's deterministic LCG (MMIX constants): reproducible
/// across platforms, no <random> seeding variance.
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 11;
  }
  size_t below(size_t N) { return static_cast<size_t>(next() % N); }
};

/// One mutation: flip/insert/delete/truncate, chosen by the LCG.
std::string mutate(std::string Frame, Lcg &Rng) {
  if (Frame.empty())
    return Frame;
  switch (Rng.below(4)) {
  case 0: // flip a byte
    Frame[Rng.below(Frame.size())] =
        static_cast<char>(static_cast<unsigned char>(Rng.next() & 0xff));
    break;
  case 1: // insert a byte
    Frame.insert(Frame.begin() + static_cast<long>(Rng.below(Frame.size())),
                 static_cast<char>(static_cast<unsigned char>(Rng.next() &
                                                              0xff)));
    break;
  case 2: // delete a byte
    Frame.erase(Frame.begin() + static_cast<long>(Rng.below(Frame.size())));
    break;
  default: // truncate
    Frame.resize(Rng.below(Frame.size()));
    break;
  }
  return Frame;
}

} // namespace

//===----------------------------------------------------------------------===//
// JSON value round-trips
//===----------------------------------------------------------------------===//

TEST(JsonCodec, ScalarsRoundTrip) {
  EXPECT_EQ(writeJson(parseOk("null")), "null");
  EXPECT_EQ(writeJson(parseOk("true")), "true");
  EXPECT_EQ(writeJson(parseOk("false")), "false");
  EXPECT_EQ(writeJson(parseOk("0")), "0");
  EXPECT_EQ(writeJson(parseOk("-7")), "-7");
  EXPECT_EQ(writeJson(parseOk("42.5")), "42.5");
  EXPECT_EQ(writeJson(parseOk("1e3")), "1000");
  EXPECT_EQ(writeJson(parseOk("\"hi\"")), "\"hi\"");
  EXPECT_EQ(writeJson(parseOk("[]")), "[]");
  EXPECT_EQ(writeJson(parseOk("{}")), "{}");
}

TEST(JsonCodec, NumbersRoundTripBitForBit) {
  for (double D : {0.0, -0.0, 1.0, -1.5, 3.141592653589793,
                   6.3169999999999998e-06, 1e308, 5e-324,
                   9007199254740991.0, 9007199254740993.0}) {
    JsonValue V = JsonValue::number(D);
    JsonParseResult R = parseJson(writeJson(V));
    ASSERT_TRUE(R) << writeJson(V);
    EXPECT_EQ(R.Value.asNumber(), D) << writeJson(V);
  }
}

TEST(JsonCodec, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(writeJson(JsonValue::number(std::nan(""))), "null");
  EXPECT_EQ(writeJson(JsonValue::number(HUGE_VAL)), "null");
  EXPECT_EQ(writeJson(JsonValue::number(-HUGE_VAL)), "null");
}

TEST(JsonCodec, StringsEscapeAndUnescape) {
  JsonValue V = parseOk("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  EXPECT_EQ(V.asString(), "a\"b\\c\n\tA\xc3\xa9");
  // Control characters come back escaped; the escape spelling is stable.
  std::string Out = writeJson(JsonValue::string(std::string("x\x01y\n", 4)));
  EXPECT_EQ(Out, "\"x\\u0001y\\n\"");
  EXPECT_EQ(parseOk(Out).asString(), std::string("x\x01y\n", 4));
}

TEST(JsonCodec, SurrogatePairsDecodeToUtf8) {
  // U+1F600 as \ud83d\ude00 => F0 9F 98 80.
  JsonValue V = parseOk("\"\\ud83d\\ude00\"");
  EXPECT_EQ(V.asString(), "\xf0\x9f\x98\x80");
  // A lone high surrogate is malformed.
  parseErr("\"\\ud83d\"");
}

TEST(JsonCodec, NestedStructuresRoundTrip) {
  const std::string Text =
      "{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":[true,false]},\"e\":\"\"}";
  EXPECT_EQ(writeJson(parseOk(Text)), Text);
}

TEST(JsonCodec, ObjectsPreserveInsertionOrder) {
  JsonValue V = JsonValue::object();
  V.set("z", JsonValue::number(1));
  V.set("a", JsonValue::number(2));
  EXPECT_EQ(writeJson(V), "{\"z\":1,\"a\":2}");
}

TEST(JsonCodec, AccessorsOnWrongKindReturnZeroValues) {
  JsonValue V = JsonValue::string("not a number");
  EXPECT_EQ(V.asNumber(), 0.0);
  EXPECT_FALSE(V.asBool());
  EXPECT_EQ(JsonValue::number(3).asString(), "");
  EXPECT_EQ(JsonValue::null().size(), 0u);
  EXPECT_EQ(JsonValue::number(3).get("x"), nullptr);
}

//===----------------------------------------------------------------------===//
// JSON malformed input
//===----------------------------------------------------------------------===//

TEST(JsonCodec, MalformedInputsDegradeToErrors) {
  parseErr("");
  parseErr("   ");
  parseErr("nul");
  parseErr("truex");
  parseErr("\"unterminated");
  parseErr("\"bad \\q escape\"");
  parseErr("\"bad \\u00 escape\"");
  parseErr("[1,2");
  parseErr("[1,,2]");
  parseErr("{\"a\":}");
  parseErr("{\"a\" 1}");
  parseErr("{a:1}");
  parseErr("{\"a\":1} trailing");
  parseErr("01");     // leading zero
  parseErr("1.");     // digits required after the point
  parseErr("+1");     // no leading plus
  parseErr("1e");     // exponent needs digits
  parseErr("-");      // sign alone
  parseErr("NaN");    // not JSON
  parseErr("Infinity");
}

TEST(JsonCodec, NestBombIsBoundedNotFatal) {
  std::string Deep(kMaxJsonDepth + 8, '[');
  std::string Error = parseErr(Deep);
  EXPECT_NE(Error.find("nesting"), std::string::npos) << Error;
  // Exactly at the limit still parses.
  std::string AtLimit;
  for (size_t I = 0; I < kMaxJsonDepth; ++I)
    AtLimit += "[";
  for (size_t I = 0; I < kMaxJsonDepth; ++I)
    AtLimit += "]";
  EXPECT_TRUE(parseJson(AtLimit)) << AtLimit;
}

TEST(JsonCodec, EmbeddedNulBytesAreData) {
  // A NUL inside the input must not truncate parsing (string_view carries
  // the length; the parser must not fall back to C strings).
  std::string Text = "\"a\\u0000b\"";
  JsonValue V = parseOk(Text);
  EXPECT_EQ(V.asString(), std::string("a\0b", 3));
  std::string Raw("[1,2]\0garbage", 13);
  parseErr(Raw); // trailing bytes, even after a NUL, are an error
}

//===----------------------------------------------------------------------===//
// Request codec round-trips
//===----------------------------------------------------------------------===//

namespace {

ParsedRequest reparse(const Request &R) {
  ParsedRequest P = parseRequest(encodeRequest(R));
  EXPECT_TRUE(P.Ok) << encodeRequest(R) << " => " << P.Error;
  return P;
}

} // namespace

TEST(RequestCodec, HelloRoundTrips) {
  Request R;
  R.K = Request::Kind::Hello;
  R.Client = "bench:worker/3";
  R.Proto = kProtocolVersion;
  ParsedRequest P = reparse(R);
  EXPECT_EQ(P.Req.K, Request::Kind::Hello);
  EXPECT_EQ(P.Req.Client, "bench:worker/3");
  EXPECT_EQ(P.Req.Proto, kProtocolVersion);
  EXPECT_EQ(P.Op, "hello");
}

TEST(RequestCodec, SubmitRoundTripsEveryField) {
  Request R;
  R.K = Request::Kind::Submit;
  R.Name = "gear";
  R.Source = "(Union Unit (Translate (Vec3 2 0 0) Unit))";
  R.SourceIsScad = true;
  R.TopK = 17;
  R.Cost = CostKind::RewardLoops;
  R.DeadlineSec = 2.5;
  ParsedRequest P = reparse(R);
  EXPECT_EQ(P.Req.K, Request::Kind::Submit);
  EXPECT_EQ(P.Req.Name, "gear");
  EXPECT_EQ(P.Req.Source, R.Source);
  EXPECT_TRUE(P.Req.SourceIsScad);
  EXPECT_EQ(P.Req.TopK, 17u);
  EXPECT_EQ(P.Req.Cost, CostKind::RewardLoops);
  EXPECT_EQ(P.Req.DeadlineSec, 2.5);
}

TEST(RequestCodec, SubmitDefaultsSurvive) {
  Request R;
  R.K = Request::Kind::Submit;
  R.Source = "(Union Unit Unit)";
  ParsedRequest P = reparse(R);
  EXPECT_EQ(P.Req.TopK, 5u);
  EXPECT_EQ(P.Req.Cost, CostKind::AstSize);
  EXPECT_FALSE(P.Req.SourceIsScad);
  EXPECT_EQ(P.Req.DeadlineSec, 0.0);
}

TEST(RequestCodec, WaitPollCancelStatsRoundTrip) {
  for (Request::Kind K : {Request::Kind::Wait, Request::Kind::Poll,
                          Request::Kind::Cancel}) {
    Request R;
    R.K = K;
    R.Job = 123456789ULL;
    if (K == Request::Kind::Wait)
      R.TimeoutSec = 1.25;
    ParsedRequest P = reparse(R);
    EXPECT_EQ(P.Req.K, K);
    EXPECT_EQ(P.Req.Job, 123456789ULL);
    if (K == Request::Kind::Wait) {
      EXPECT_EQ(P.Req.TimeoutSec, 1.25);
    }
  }
  Request R;
  R.K = Request::Kind::Stats;
  EXPECT_EQ(reparse(R).Req.K, Request::Kind::Stats);
}

TEST(RequestCodec, SourceWithEveryEscapeClassRoundTrips) {
  Request R;
  R.K = Request::Kind::Submit;
  R.Source = "line1\nline2\t\"quoted\" back\\slash \xc3\xa9 \x01";
  ParsedRequest P = reparse(R);
  EXPECT_EQ(P.Req.Source, R.Source);
}

//===----------------------------------------------------------------------===//
// Request validation
//===----------------------------------------------------------------------===//

namespace {

std::string rejects(const std::string &Frame) {
  ParsedRequest P = parseRequest(Frame);
  EXPECT_FALSE(P.Ok) << Frame << " unexpectedly accepted";
  EXPECT_FALSE(P.Error.empty()) << Frame;
  return P.Error;
}

} // namespace

TEST(RequestCodec, StructurallyInvalidFramesAreErrors) {
  rejects("");
  rejects("not json");
  rejects("[]");                    // not an object
  rejects("42");
  rejects("{}");                    // no op
  rejects("{\"op\":7}");            // op not a string
  rejects("{\"op\":\"teleport\"}"); // unknown op
  // The op echo survives for error responses when recoverable.
  EXPECT_EQ(parseRequest("{\"op\":\"teleport\"}").Op, "teleport");
}

TEST(RequestCodec, SubmitValidationRules) {
  rejects("{\"op\":\"submit\"}");                       // source required
  rejects("{\"op\":\"submit\",\"source\":\"\"}");       // source non-empty
  rejects("{\"op\":\"submit\",\"source\":42}");         // wrong type
  rejects("{\"op\":\"submit\",\"source\":\"(U)\",\"top_k\":0}");
  rejects("{\"op\":\"submit\",\"source\":\"(U)\",\"top_k\":" +
          std::to_string(kMaxTopK + 1) + "}");
  rejects("{\"op\":\"submit\",\"source\":\"(U)\",\"top_k\":2.5}");
  rejects("{\"op\":\"submit\",\"source\":\"(U)\",\"top_k\":-1}");
  rejects("{\"op\":\"submit\",\"source\":\"(U)\",\"cost\":\"karma\"}");
  rejects("{\"op\":\"submit\",\"source\":\"(U)\",\"deadline_sec\":-1}");
  rejects("{\"op\":\"submit\",\"source\":\"(U)\",\"scad\":\"yes\"}");
  EXPECT_TRUE(
      parseRequest("{\"op\":\"submit\",\"source\":\"(U)\",\"top_k\":" +
                   std::to_string(kMaxTopK) + "}")
          .Ok);
}

TEST(RequestCodec, JobIdValidationRules) {
  rejects("{\"op\":\"wait\"}");                   // job required
  rejects("{\"op\":\"wait\",\"job\":-1}");
  rejects("{\"op\":\"wait\",\"job\":1.5}");
  rejects("{\"op\":\"wait\",\"job\":\"1\"}");
  rejects("{\"op\":\"wait\",\"job\":1e300}");     // past 2^53, not exact
  rejects("{\"op\":\"cancel\",\"job\":null}");
  rejects("{\"op\":\"wait\",\"job\":1,\"timeout_sec\":\"soon\"}");
  EXPECT_TRUE(parseRequest("{\"op\":\"poll\",\"job\":0}").Ok);
}

TEST(RequestCodec, OversizedFramesAreRejectedBeforeParsing) {
  std::string Big = "{\"op\":\"submit\",\"source\":\"";
  Big += std::string(kMaxFrameBytes, 'x');
  Big += "\"}";
  std::string Error = rejects(Big);
  EXPECT_NE(Error.find("frame"), std::string::npos) << Error;
}

TEST(RequestCodec, UnknownFieldsAreIgnoredForForwardCompat) {
  ParsedRequest P = parseRequest(
      "{\"op\":\"poll\",\"job\":3,\"future_field\":{\"x\":[1,2]}}");
  EXPECT_TRUE(P.Ok) << P.Error;
  EXPECT_EQ(P.Req.Job, 3u);
}

//===----------------------------------------------------------------------===//
// Response builders
//===----------------------------------------------------------------------===//

TEST(ResponseBuilders, EmitParseableDocumentedFields) {
  JsonValue E = parseOk(errorResponse("wait", "unknown job id"));
  EXPECT_FALSE(E.get("ok")->asBool());
  EXPECT_EQ(E.get("op")->asString(), "wait");
  EXPECT_EQ(E.get("error")->asString(), "unknown job id");

  JsonValue R = parseOk(rejectedResponse("submit", "quota", 1.5));
  EXPECT_FALSE(R.get("ok")->asBool());
  EXPECT_EQ(R.get("rejected")->asString(), "quota");
  EXPECT_EQ(R.get("retry_after_sec")->asNumber(), 1.5);

  JsonValue H = parseOk(helloResponse("cli", kProtocolVersion));
  EXPECT_TRUE(H.get("ok")->asBool());
  EXPECT_EQ(H.get("client")->asString(), "cli");
  EXPECT_EQ(H.get("proto")->asNumber(), kProtocolVersion);

  JsonValue S = parseOk(submittedResponse(42));
  EXPECT_TRUE(S.get("ok")->asBool());
  EXPECT_EQ(S.get("job")->asNumber(), 42.0);

  JsonValue T = parseOk(waitTimeoutResponse(42));
  EXPECT_TRUE(T.get("ok")->asBool());
  EXPECT_FALSE(T.get("done")->asBool());

  JsonValue PollResp =
      parseOk(pollResponse(7, service::JobPhase::Running));
  EXPECT_EQ(PollResp.get("phase")->asString(), "running");
  EXPECT_FALSE(PollResp.get("done")->asBool());

  JsonValue C = parseOk(cancelResponse(7, true));
  EXPECT_TRUE(C.get("cancelled")->asBool());
}

TEST(ResponseBuilders, OutcomeResponseCarriesPrograms) {
  service::JobOutcome Out;
  Out.St = service::JobOutcome::Status::Succeeded;
  Out.QueueSec = 0.25;
  Out.RunSec = 1.5;
  JsonValue V = parseOk(outcomeResponse("wait", 9, Out));
  EXPECT_TRUE(V.get("ok")->asBool());
  EXPECT_TRUE(V.get("done")->asBool());
  EXPECT_EQ(V.get("status")->asString(), "ok");
  EXPECT_EQ(V.get("job")->asNumber(), 9.0);
  EXPECT_EQ(V.get("queue_sec")->asNumber(), 0.25);
  EXPECT_EQ(V.get("run_sec")->asNumber(), 1.5);
  ASSERT_NE(V.get("programs"), nullptr);
  EXPECT_TRUE(V.get("programs")->isArray());
}

TEST(ResponseBuilders, StatusAndPhaseNamesAreStable) {
  EXPECT_STREQ(jobStatusName(service::JobOutcome::Status::CacheHit),
               "cache-hit");
  EXPECT_STREQ(jobStatusName(service::JobOutcome::Status::Succeeded), "ok");
  EXPECT_STREQ(jobStatusName(service::JobOutcome::Status::Cancelled),
               "cancelled");
  EXPECT_STREQ(jobStatusName(service::JobOutcome::Status::Failed), "failed");
  EXPECT_STREQ(jobPhaseName(service::JobPhase::Unknown), "unknown");
  EXPECT_STREQ(jobPhaseName(service::JobPhase::Pending), "pending");
  EXPECT_STREQ(jobPhaseName(service::JobPhase::Running), "running");
  EXPECT_STREQ(jobPhaseName(service::JobPhase::Done), "done");
}

//===----------------------------------------------------------------------===//
// Mutation fuzz sweep
//===----------------------------------------------------------------------===//

TEST(ProtocolFuzz, MutatedFramesNeverThrowAndStayConsistent) {
  // Seed corpus: one canonical frame per op plus a deep-ish stats shape.
  std::vector<std::string> Corpus;
  {
    Request R;
    R.K = Request::Kind::Hello;
    R.Client = "fuzz";
    Corpus.push_back(encodeRequest(R));
  }
  {
    Request R;
    R.K = Request::Kind::Submit;
    R.Name = "m";
    R.Source = "(Union Unit (Translate (Vec3 2 0 0) Unit))";
    R.TopK = 3;
    R.DeadlineSec = 0.5;
    Corpus.push_back(encodeRequest(R));
  }
  for (Request::Kind K : {Request::Kind::Wait, Request::Kind::Poll,
                          Request::Kind::Cancel, Request::Kind::Stats}) {
    Request R;
    R.K = K;
    R.Job = 17;
    Corpus.push_back(encodeRequest(R));
  }
  Corpus.push_back(
      "{\"a\":[1,[2,[3,[4]]]],\"b\":{\"c\":{\"d\":\"\\u00e9\"}},\"n\":-1.5e-3}");

  Lcg Rng(0x5eed5eedULL);
  size_t StillValid = 0;
  for (size_t Round = 0; Round < 4000; ++Round) {
    std::string Frame = Corpus[Rng.below(Corpus.size())];
    size_t Mutations = 1 + Rng.below(6);
    for (size_t I = 0; I < Mutations; ++I)
      Frame = mutate(std::move(Frame), Rng);

    // Contract 1: the JSON layer returns a value or a diagnostic.
    JsonParseResult J = parseJson(Frame);
    if (J) {
      ++StillValid;
      // Contract 2: anything that parses re-serializes and re-parses to
      // the same spelling (writer/parser agreement).
      std::string Out = writeJson(J.Value);
      JsonParseResult Back = parseJson(Out);
      ASSERT_TRUE(Back) << "writer emitted unparseable: " << Out;
      EXPECT_EQ(writeJson(Back.Value), Out);
    } else {
      EXPECT_FALSE(J.Error.empty());
    }

    // Contract 3: the request layer accepts or rejects, never throws.
    ParsedRequest P = parseRequest(Frame);
    if (!P.Ok) {
      EXPECT_FALSE(P.Error.empty());
    }
  }
  // The sweep must exercise both paths, not collapse into all-garbage.
  EXPECT_GT(StillValid, 0u);
  EXPECT_LT(StillValid, 4000u);
}

TEST(ProtocolFuzz, RandomBytesNeverCrashTheParsers) {
  Lcg Rng(0xbadc0deULL);
  for (size_t Round = 0; Round < 1000; ++Round) {
    std::string Junk;
    size_t Len = Rng.below(64);
    for (size_t I = 0; I < Len; ++I)
      Junk.push_back(
          static_cast<char>(static_cast<unsigned char>(Rng.next() & 0xff)));
    parseJson(Junk);
    parseRequest(Junk); // reaching the next round is the assertion
  }
  SUCCEED();
}
