//===-- tests/snapshot_test.cpp - E-graph snapshot/restore ----------------===//
//
// Coverage for EGraph::serialize / EGraph::deserialize:
//
//  * byte-level round trip: restore reproduces the dump, the invariants,
//    the counters, and the dirty-cursor state (generation, log, floor);
//  * the warm-start contract on all 16 bench models: saturate partway,
//    snapshot, restore, continue — the continued run is bit-identical
//    (dump and report fingerprint) to the same two-phase run without the
//    snapshot in between;
//  * restored graphs serve incremental extraction and further queries
//    exactly like the original;
//  * corrupt input: bad magic, truncation at every structural boundary,
//    bit flips (checksum), and non-fresh targets are rejected with a
//    diagnostic, never an assert or a partially-restored graph.
//
//===----------------------------------------------------------------------===//

#include "cad/Sexp.h"
#include "egraph/Extract.h"
#include "egraph/Runner.h"
#include "egraph/SnapshotCodec.h"
#include "models/Models.h"
#include "rewrites/Rules.h"
#include "service/ResultCache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace shrinkray;

namespace {

TermPtr parse(const std::string &Sexp) {
  ParseResult R = parseSexp(Sexp);
  EXPECT_TRUE(R) << R.Error << " in " << Sexp;
  return R.Value;
}

std::string snapshotOf(const EGraph &G) {
  std::ostringstream Os;
  G.serialize(Os);
  return Os.str();
}

/// Restores \p Bytes into \p Out; returns the diagnostic ("" = success).
std::string restore(const std::string &Bytes, EGraph &Out) {
  std::istringstream Is(Bytes);
  return Out.deserialize(Is);
}

/// Non-timing fingerprint of a saturation report (same spirit as the
/// ruleset suite's): stop reason, per-iteration match/apply/node counts,
/// and per-rule counters.
std::string reportFingerprint(const RunnerReport &Rep) {
  std::ostringstream Os;
  Os << static_cast<int>(Rep.Stop) << ";";
  for (const IterationStats &It : Rep.Iterations)
    Os << It.Matches << "," << It.Applied << "," << It.Nodes << ","
       << It.Classes << ";";
  for (const RuleStats &RS : Rep.Rules)
    Os << RS.Name << "=" << RS.Matches << "," << RS.Applied << ","
       << RS.FullSearches << "," << RS.IncrementalSearches << "," << RS.Bans
       << ";";
  return Os.str();
}

} // namespace

TEST(Snapshot, RoundTripSmallGraph) {
  EGraph G;
  EClassId Root = G.addTerm(parse(
      "(Union (Translate (Vec3 1 2 3) Unit) (Scale (Vec3 2 2 2) Sphere))"));
  G.addTerm(parse("(Add 2 3)")); // exercises analysis constants
  G.rebuild();

  EGraph R;
  ASSERT_EQ(restore(snapshotOf(G), R), "");
  EXPECT_EQ(R.dump(), G.dump());
  EXPECT_EQ(R.checkInvariants(), "");
  EXPECT_EQ(R.numClasses(), G.numClasses());
  EXPECT_EQ(R.numNodes(), G.numNodes());
  EXPECT_EQ(R.generation(), G.generation());
  EXPECT_EQ(R.dirtyLogSize(), G.dirtyLogSize());
  EXPECT_EQ(R.find(Root), G.find(Root));
  // The analysis data came through: the folded constant is queryable.
  EClassId Five = *R.lookup(ENode(Op::makeInt(5), {}));
  ASSERT_TRUE(R.data(Five).NumConst.has_value());
  EXPECT_EQ(*R.data(Five).NumConst, 5.0);
}

TEST(Snapshot, RoundTripEmptyGraph) {
  EGraph G;
  EGraph R;
  ASSERT_EQ(restore(snapshotOf(G), R), "");
  EXPECT_EQ(R.numClasses(), 0u);
  EXPECT_EQ(R.dump(), G.dump());
}

TEST(Snapshot, RoundTripPayloadOps) {
  // Every payload-carrying operator kind round-trips by value (symbols
  // re-intern by spelling; intern ids are process-local).
  EGraph G;
  G.addTerm(parse("(Fold Union Empty (Cons (External part7) Nil))"));
  G.addTerm(parse("(Mul (Var i) 2.5)"));
  G.rebuild();
  EGraph R;
  ASSERT_EQ(restore(snapshotOf(G), R), "");
  EXPECT_EQ(R.dump(), G.dump());
  EXPECT_EQ(R.checkInvariants(), "");
}

TEST(Snapshot, RestoreThenContinueIsBitIdenticalOnAllBenchModels) {
  // The warm-start contract: partial saturation, snapshot, restore,
  // continue == the identical two-phase run without the snapshot. Both
  // sides run the same Runner sequence, so the only difference is the
  // serialize/deserialize round trip in the middle.
  const std::vector<Rewrite> Rules = pipelineRules();
  const RuleSet DB(Rules);
  RunnerLimits Phase1;
  Phase1.IterLimit = 2;
  const RunnerLimits Phase2; // defaults: run to saturation

  for (const models::BenchmarkModel &M : models::allModels()) {
    SCOPED_TRACE(M.Name);

    // Uninterrupted reference: phase 1 then phase 2 on one graph.
    EGraph A;
    A.addTerm(M.FlatCsg);
    A.rebuild();
    Runner(Phase1).run(A, DB);
    RunnerReport RepA = Runner(Phase2).run(A, DB);

    // Snapshotted: phase 1, round trip, phase 2 on the restored graph.
    EGraph B;
    B.addTerm(M.FlatCsg);
    B.rebuild();
    Runner(Phase1).run(B, DB);
    EGraph C;
    ASSERT_EQ(restore(snapshotOf(B), C), "");
    ASSERT_EQ(C.dump(), B.dump());
    ASSERT_EQ(C.checkInvariants(), "");
    RunnerReport RepC = Runner(Phase2).run(C, DB);

    EXPECT_EQ(C.dump(), A.dump());
    EXPECT_EQ(reportFingerprint(RepC), reportFingerprint(RepA));
    EXPECT_EQ(C.numNodes(), A.numNodes());
    EXPECT_EQ(C.numClasses(), A.numClasses());
  }
}

TEST(Snapshot, RestoredGraphServesIncrementalExtraction) {
  // The serialized dirty-cursor state (generation counter + log) lets a
  // restored graph drive the incremental engines exactly like the
  // original: derive, mutate, refresh.
  models::BenchmarkModel M = models::modelByName("3362402:gear");
  EGraph G;
  EClassId Root = G.addTerm(M.FlatCsg);
  G.rebuild();
  RunnerLimits L;
  L.IterLimit = 3;
  Runner(L).run(G, pipelineRules());

  EGraph R;
  ASSERT_EQ(restore(snapshotOf(G), R), "");
  EClassId RootR = R.find(Root); // ids are preserved verbatim

  AstSizeCost Cost;
  Extractor EngG(G, Cost), EngR(R, Cost);
  ASSERT_TRUE(EngG.bestCost(G.find(Root)).has_value());
  EXPECT_EQ(*EngG.bestCost(G.find(Root)), *EngR.bestCost(RootR));
  EXPECT_TRUE(termEquals(EngG.extract(G.find(Root)), EngR.extract(RootR)));

  // Mutate both the same way; incremental refresh must agree too.
  G.addTerm(parse("(Union Unit (Translate (Vec3 7 7 7) Sphere))"));
  R.addTerm(parse("(Union Unit (Translate (Vec3 7 7 7) Sphere))"));
  G.rebuild();
  R.rebuild();
  EngG.refresh();
  EngR.refresh();
  EXPECT_EQ(*EngG.bestCost(G.find(Root)), *EngR.bestCost(RootR));
  EXPECT_EQ(G.dump(), R.dump());
}

TEST(Snapshot, TakeDirtySinceAgreesAfterRestore) {
  EGraph G;
  G.addTerm(parse("(Union (Translate (Vec3 1 0 0) Unit) Sphere)"));
  G.rebuild();
  uint64_t Mid = G.generation();
  G.addTerm(parse("(Scale (Vec3 2 2 2) Hexagon)"));
  G.rebuild();

  EGraph R;
  ASSERT_EQ(restore(snapshotOf(G), R), "");
  EXPECT_EQ(R.generation(), G.generation());
  EXPECT_EQ(R.takeDirtySince(Mid), G.takeDirtySince(Mid));
  EXPECT_EQ(R.takeDirtySince(0), G.takeDirtySince(0));
}

TEST(Snapshot, RejectsCorruptAndTruncatedInput) {
  EGraph G;
  G.addTerm(parse("(Union (Translate (Vec3 1 2 3) Unit) Sphere)"));
  G.rebuild();
  const std::string Bytes = snapshotOf(G);

  {
    // Bad magic.
    std::string Bad = Bytes;
    Bad[0] ^= 0x40;
    EGraph R;
    EXPECT_NE(restore(Bad, R), "");
    EXPECT_EQ(R.numClasses(), 0u); // target left untouched
  }
  {
    // Truncations at every prefix length: header, payload, or mid-field —
    // all must fail cleanly (and never assert or crash).
    EGraph R0;
    EXPECT_NE(restore(std::string(), R0), "");
    for (size_t Len : {size_t(4), size_t(12), size_t(23), Bytes.size() / 2,
                       Bytes.size() - 1}) {
      std::string Bad = Bytes.substr(0, Len);
      EGraph R;
      EXPECT_NE(restore(Bad, R), "") << "accepted truncation at " << Len;
      EXPECT_EQ(R.numClasses(), 0u);
    }
  }
  {
    // Payload bit flips: caught by the checksum regardless of position.
    for (size_t Pos = 24; Pos < Bytes.size(); Pos += 37) {
      std::string Bad = Bytes;
      Bad[Pos] ^= 0x01;
      EGraph R;
      EXPECT_NE(restore(Bad, R), "") << "accepted bit flip at " << Pos;
    }
  }
  {
    // A non-fresh target graph is refused outright.
    EGraph R;
    R.addTerm(parse("Unit"));
    R.rebuild();
    EXPECT_NE(restore(Bytes, R), "");
  }
}

TEST(Snapshot, RejectsHugeCountsWithValidChecksum) {
  // A corrupt count field whose payload still checksums (here: forged,
  // with the header hash recomputed) must fail with a diagnostic, not
  // attempt a multi-gigabyte allocation (std::bad_alloc would escape
  // deserialize() and kill a batch process loading a warm-start file).
  EGraph G;
  G.addTerm(parse("(Union Unit Sphere)"));
  G.rebuild();
  std::string Bytes = snapshotOf(G);

  // Payload starts at byte 24; its first u32 is the id count.
  for (size_t B = 0; B < 4; ++B)
    Bytes[24 + B] = static_cast<char>(0xff);
  // Recompute the FNV-1a header checksum over the tampered payload.
  uint64_t H = 1469598103934665603ull;
  for (size_t I = 24; I < Bytes.size(); ++I) {
    H ^= static_cast<unsigned char>(Bytes[I]);
    H *= 1099511628211ull;
  }
  std::memcpy(&Bytes[16], &H, sizeof H);

  EGraph R;
  EXPECT_EQ(restore(Bytes, R), "id count exceeds payload");
  EXPECT_EQ(R.numClasses(), 0u);
}

TEST(Snapshot, ChecksummedHeaderDetectsLengthTampering) {
  EGraph G;
  G.addTerm(parse("(Union Unit Sphere)"));
  G.rebuild();
  std::string Bytes = snapshotOf(G);
  // Grow the declared payload length: the read runs past the real bytes.
  Bytes[8] = static_cast<char>(Bytes[8] + 1);
  EGraph R;
  EXPECT_NE(restore(Bytes, R), "");
}

TEST(Snapshot, FileRoundTrip) {
  EGraph G;
  G.addTerm(models::modelByName("3148599:box-tray").FlatCsg);
  G.rebuild();
  Runner().run(G, pipelineRules());

  const std::string Path =
      testing::TempDir() + "/shrinkray_snapshot_test.egraph";
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(Out.good());
    G.serialize(Out);
    ASSERT_TRUE(Out.good());
  }
  EGraph R;
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good());
  EXPECT_EQ(R.deserialize(In), "");
  EXPECT_EQ(R.dump(), G.dump());
  EXPECT_EQ(R.checkInvariants(), "");
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Snapshot-entry corruption fuzzing (the service warm-start envelope)
//===----------------------------------------------------------------------===//

namespace {

/// A realistic encoded snapshot entry: real graph bytes, real cursors,
/// real extraction-engine state, sealed behind the entry envelope — the
/// exact artifact a `.srsnap` file holds.
std::string realEntryBlob(service::SnapshotEntry *Plain = nullptr) {
  EGraph G;
  G.addTerm(models::modelByName("3148599:box-tray").FlatCsg);
  G.rebuild();
  RunnerCursors Cursors;
  RunnerLimits Lim;
  Lim.IterLimit = 3;
  Runner(Lim).run(G, RuleSet(pipelineRules()), Cursors);
  static const AstSizeCost Cost;
  KBestExtractor Engine(G, Cost, 3, 1);

  service::SnapshotEntry E;
  E.InputHash = 0x1234;
  E.InputSexp = "(Union Unit Sphere)";
  E.Cost = CostKind::AstSize;
  E.TopK = 3;
  E.Stop = Cursors.Stop;
  E.IterationsDone = Cursors.IterationsDone;
  E.Cursors = serializeRunnerCursors(Cursors);
  E.Extract = Engine.saveState();
  {
    std::ostringstream Os;
    G.serialize(Os);
    E.Graph = std::move(Os).str();
  }
  if (Plain)
    *Plain = E;
  return service::encodeSnapshotEntry(E);
}

/// Deterministic 64-bit LCG (Knuth MMIX constants): the sweep must be
/// reproducible run to run, so no std::random_device / seeds from time.
struct Lcg {
  uint64_t X = 0x9e3779b97f4a7c15ull;
  uint64_t next() {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    return X >> 16; // low bits of an LCG are weak
  }
};

} // namespace

// Every single-bit flip anywhere in an encoded snapshot entry must
// degrade to a diagnostic decode failure — the service treats that as a
// cache miss and runs cold — and must never crash, assert, or hand back
// a successfully-decoded entry. One envelope checksum covers the whole
// payload, so this holds no matter which inner blob the flip lands in.
TEST(SnapshotEntryFuzz, BitFlipSweepAlwaysDegradesToDecodeFailure) {
  const std::string Blob = realEntryBlob();
  Lcg Rng;
  // The header (magic, version, length, checksum) is swept exhaustively;
  // the payload is sampled — every byte is under the same checksum, so
  // position cannot matter, but the sweep proves it.
  for (size_t Pos = 0; Pos < 24; ++Pos)
    for (int Bit = 0; Bit < 8; ++Bit) {
      std::string Bad = Blob;
      Bad[Pos] ^= char(1u << Bit);
      service::SnapshotEntry Out;
      EXPECT_NE(service::decodeSnapshotEntry(Bad, Out), "")
          << "accepted header flip at byte " << Pos << " bit " << Bit;
    }
  for (int I = 0; I < 512; ++I) {
    const size_t Pos = 24 + Rng.next() % (Blob.size() - 24);
    const int Bit = int(Rng.next() % 8);
    std::string Bad = Blob;
    Bad[Pos] ^= char(1u << Bit);
    service::SnapshotEntry Out;
    EXPECT_NE(service::decodeSnapshotEntry(Bad, Out), "")
        << "accepted payload flip at byte " << Pos << " bit " << Bit;
  }
}

// Same contract for truncation at any length: header boundaries
// exhaustively, payload lengths sampled.
TEST(SnapshotEntryFuzz, TruncationSweepAlwaysDegradesToDecodeFailure) {
  const std::string Blob = realEntryBlob();
  Lcg Rng;
  std::vector<size_t> Lengths;
  for (size_t L = 0; L <= 32; ++L)
    Lengths.push_back(L);
  for (int I = 0; I < 256; ++I)
    Lengths.push_back(Rng.next() % (Blob.size() - 1));
  Lengths.push_back(Blob.size() - 1);
  for (size_t L : Lengths) {
    service::SnapshotEntry Out;
    EXPECT_NE(service::decodeSnapshotEntry(Blob.substr(0, L), Out), "")
        << "accepted truncation at " << L;
  }
  // Trailing garbage is also malformed (the length field pins the size).
  service::SnapshotEntry Out;
  EXPECT_NE(service::decodeSnapshotEntry(Blob + "x", Out), "");
}

// Mutations that survive the envelope (because the attacker — or a
// damaged disk sector plus a colliding checksum — re-seals it) land in
// the inner blobs, each of which carries its own checksum: a re-sealed
// flip inside the graph bytes must be rejected by EGraph::deserialize
// with a diagnostic, never a crash or a half-restored graph.
TEST(SnapshotEntryFuzz, ResealedGraphMutationsRejectedByInnerDecoder) {
  service::SnapshotEntry Plain;
  realEntryBlob(&Plain);
  Lcg Rng;
  for (int I = 0; I < 64; ++I) {
    service::SnapshotEntry Mut = Plain;
    // Flip past the graph header so the graph's own checksum (not its
    // magic check) does the rejecting on most iterations.
    const size_t Pos = Rng.next() % Mut.Graph.size();
    Mut.Graph[Pos] ^= char(1u << (Rng.next() % 8));
    const std::string Resealed = service::encodeSnapshotEntry(Mut);

    service::SnapshotEntry Out;
    ASSERT_EQ(service::decodeSnapshotEntry(Resealed, Out), "");
    EGraph R;
    std::istringstream Is(Out.Graph);
    EXPECT_NE(R.deserialize(Is), "") << "graph flip at " << Pos;
    EXPECT_EQ(R.numClasses(), 0u);
  }
}

// The k-best extract state encodes candidate structures as a pool of
// back-referencing nodes: children strictly before parents, so one
// forward pass re-interns every row and acyclicity is a decode-time
// invariant rather than a runtime check. This forger walks the real
// blob's pool, then rewrites every back-reference field to each boundary
// it must not cross — the node itself (a cycle), one past the pool, and
// the maximum encodable index — and every arity field to a huge count.
// Each forgery must be rejected with its structural diagnostic, never a
// crash, hang, or wild allocation. (Bit-flip sweeps cannot pin this
// down: a flipped reference that still points backwards decodes into a
// *different valid* pool, which is exactly why the field-aware sweep
// exists.)
TEST(SnapshotEntryFuzz, ForgedPoolBackReferencesRejected) {
  service::SnapshotEntry Plain;
  realEntryBlob(&Plain);
  EGraph G;
  {
    std::istringstream Is(Plain.Graph);
    ASSERT_EQ(G.deserialize(Is), "");
  }
  static const AstSizeCost Cost;
  std::string Err;
  ASSERT_NE(KBestExtractor::restore(G, Cost, 3, 1, Plain.Extract, Err),
            nullptr)
      << Err;

  // Walk the blob to the structure pool, recording the byte offset
  // (within the whole blob) of every arity and child-reference field.
  snapcodec::Reader R{Plain.Extract};
  R.u32();                            // format version
  R.u64();                            // k
  R.str();                            // one-best sub-blob
  R.u64();                            // generation
  const uint32_t NumPool = R.u32();
  const size_t PoolStart = R.pos() + 4; // str(): u32 length, then bytes
  const std::string PoolBytes = R.str();
  ASSERT_TRUE(R.ok());
  ASSERT_GT(NumPool, 1u); // candidates are nested, so back-refs exist

  snapcodec::Reader PR{PoolBytes};
  std::vector<size_t> ArityOffsets;
  std::vector<std::pair<size_t, uint32_t>> RefFields; // offset, entry idx
  std::string OpErr;
  for (uint32_t I = 0; I < NumPool; ++I) {
    ASSERT_TRUE(PR.op(OpErr).has_value()) << OpErr;
    ArityOffsets.push_back(PoolStart + PR.pos());
    const uint32_t Arity = PR.u32();
    for (uint32_t A = 0; A < Arity; ++A) {
      RefFields.emplace_back(PoolStart + PR.pos(), I);
      PR.u32();
    }
    ASSERT_TRUE(PR.ok());
  }
  ASSERT_FALSE(RefFields.empty());

  auto Patched = [&](size_t Offset, uint32_t V) {
    std::string Bad = Plain.Extract;
    std::memcpy(&Bad[Offset], &V, sizeof V);
    return Bad;
  };
  for (const auto &[Offset, Entry] : RefFields)
    for (const uint32_t Forged : {Entry, NumPool, 0xffffffffu}) {
      std::string E2;
      EXPECT_EQ(KBestExtractor::restore(G, Cost, 3, 1,
                                        Patched(Offset, Forged), E2),
                nullptr)
          << "accepted forged ref " << Forged << " at byte " << Offset;
      EXPECT_EQ(E2, "k-best pool child reference out of range");
    }
  for (const size_t Offset : ArityOffsets) {
    std::string E2;
    EXPECT_EQ(KBestExtractor::restore(G, Cost, 3, 1,
                                      Patched(Offset, 0xffffffffu), E2),
              nullptr)
        << "accepted forged arity at byte " << Offset;
    EXPECT_EQ(E2, "k-best pool arity out of range");
  }
}

// Mutated `.srsnap` files on disk are misses, not errors: the cache
// counts them and the caller falls back to a cold run.
TEST(SnapshotEntryFuzz, CorruptDiskEntriesDegradeToMisses) {
  const std::string Blob = realEntryBlob();
  const std::string Dir = testing::TempDir() + "/srsnap_fuzz";
  std::filesystem::remove_all(Dir);

  service::CacheKey Key = service::makeSnapshotKey(
      parse("(Union Unit Sphere)"), 7, SynthesisOptions());
  service::ResultCache C(Dir);
  Lcg Rng;
  for (int I = 0; I < 16; ++I) {
    std::string Bad = Blob;
    Bad[Rng.next() % Bad.size()] ^= char(1u << (Rng.next() % 8));
    {
      std::ofstream Out(Dir + "/" + Key.hex() + ".srsnap",
                        std::ios::binary | std::ios::trunc);
      Out << Bad;
    }
    EXPECT_FALSE(C.lookupSnapshot(Key).has_value()) << "round " << I;
  }
  EXPECT_EQ(C.stats().SnapshotMisses, 16u);
  EXPECT_EQ(C.stats().SnapshotHits, 0u);
}

// Format-version bumps are refused up front with the "unsupported"
// family of diagnostics (distinct from corruption): a newer writer's
// files must not be half-read by an older reader.
TEST(SnapshotEntryFuzz, FormatVersionBumpsAreUnsupportedNotCorrupt) {
  // The entry envelope's version byte ("SRAYSNE1" -> "SRAYSNE2").
  std::string Blob = realEntryBlob();
  ASSERT_EQ(Blob.substr(0, 8), "SRAYSNE1");
  Blob[7] = '2';
  service::SnapshotEntry Out;
  EXPECT_EQ(service::decodeSnapshotEntry(Blob, Out),
            "unsupported snapshot entry format version");

  // The graph blob's version byte ("SRAYEGR2" -> "SRAYEGR1"): an entry
  // that re-seals over a downgraded graph decodes, but the graph decoder
  // refuses it before reading any further.
  service::SnapshotEntry Plain;
  realEntryBlob(&Plain);
  ASSERT_EQ(Plain.Graph.substr(0, 8), "SRAYEGR2");
  Plain.Graph[7] = '1';
  const std::string Resealed = service::encodeSnapshotEntry(Plain);
  ASSERT_EQ(service::decodeSnapshotEntry(Resealed, Out), "");
  EGraph R;
  std::istringstream Is(Out.Graph);
  EXPECT_EQ(R.deserialize(Is), "unsupported e-graph snapshot format version");
  EXPECT_EQ(R.numClasses(), 0u);
}
