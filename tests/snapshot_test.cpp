//===-- tests/snapshot_test.cpp - E-graph snapshot/restore ----------------===//
//
// Coverage for EGraph::serialize / EGraph::deserialize:
//
//  * byte-level round trip: restore reproduces the dump, the invariants,
//    the counters, and the dirty-cursor state (generation, log, floor);
//  * the warm-start contract on all 16 bench models: saturate partway,
//    snapshot, restore, continue — the continued run is bit-identical
//    (dump and report fingerprint) to the same two-phase run without the
//    snapshot in between;
//  * restored graphs serve incremental extraction and further queries
//    exactly like the original;
//  * corrupt input: bad magic, truncation at every structural boundary,
//    bit flips (checksum), and non-fresh targets are rejected with a
//    diagnostic, never an assert or a partially-restored graph.
//
//===----------------------------------------------------------------------===//

#include "cad/Sexp.h"
#include "egraph/Extract.h"
#include "egraph/Runner.h"
#include "models/Models.h"
#include "rewrites/Rules.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace shrinkray;

namespace {

TermPtr parse(const std::string &Sexp) {
  ParseResult R = parseSexp(Sexp);
  EXPECT_TRUE(R) << R.Error << " in " << Sexp;
  return R.Value;
}

std::string snapshotOf(const EGraph &G) {
  std::ostringstream Os;
  G.serialize(Os);
  return Os.str();
}

/// Restores \p Bytes into \p Out; returns the diagnostic ("" = success).
std::string restore(const std::string &Bytes, EGraph &Out) {
  std::istringstream Is(Bytes);
  return Out.deserialize(Is);
}

/// Non-timing fingerprint of a saturation report (same spirit as the
/// ruleset suite's): stop reason, per-iteration match/apply/node counts,
/// and per-rule counters.
std::string reportFingerprint(const RunnerReport &Rep) {
  std::ostringstream Os;
  Os << static_cast<int>(Rep.Stop) << ";";
  for (const IterationStats &It : Rep.Iterations)
    Os << It.Matches << "," << It.Applied << "," << It.Nodes << ","
       << It.Classes << ";";
  for (const RuleStats &RS : Rep.Rules)
    Os << RS.Name << "=" << RS.Matches << "," << RS.Applied << ","
       << RS.FullSearches << "," << RS.IncrementalSearches << "," << RS.Bans
       << ";";
  return Os.str();
}

} // namespace

TEST(Snapshot, RoundTripSmallGraph) {
  EGraph G;
  EClassId Root = G.addTerm(parse(
      "(Union (Translate (Vec3 1 2 3) Unit) (Scale (Vec3 2 2 2) Sphere))"));
  G.addTerm(parse("(Add 2 3)")); // exercises analysis constants
  G.rebuild();

  EGraph R;
  ASSERT_EQ(restore(snapshotOf(G), R), "");
  EXPECT_EQ(R.dump(), G.dump());
  EXPECT_EQ(R.checkInvariants(), "");
  EXPECT_EQ(R.numClasses(), G.numClasses());
  EXPECT_EQ(R.numNodes(), G.numNodes());
  EXPECT_EQ(R.generation(), G.generation());
  EXPECT_EQ(R.dirtyLogSize(), G.dirtyLogSize());
  EXPECT_EQ(R.find(Root), G.find(Root));
  // The analysis data came through: the folded constant is queryable.
  EClassId Five = *R.lookup(ENode(Op::makeInt(5), {}));
  ASSERT_TRUE(R.data(Five).NumConst.has_value());
  EXPECT_EQ(*R.data(Five).NumConst, 5.0);
}

TEST(Snapshot, RoundTripEmptyGraph) {
  EGraph G;
  EGraph R;
  ASSERT_EQ(restore(snapshotOf(G), R), "");
  EXPECT_EQ(R.numClasses(), 0u);
  EXPECT_EQ(R.dump(), G.dump());
}

TEST(Snapshot, RoundTripPayloadOps) {
  // Every payload-carrying operator kind round-trips by value (symbols
  // re-intern by spelling; intern ids are process-local).
  EGraph G;
  G.addTerm(parse("(Fold Union Empty (Cons (External part7) Nil))"));
  G.addTerm(parse("(Mul (Var i) 2.5)"));
  G.rebuild();
  EGraph R;
  ASSERT_EQ(restore(snapshotOf(G), R), "");
  EXPECT_EQ(R.dump(), G.dump());
  EXPECT_EQ(R.checkInvariants(), "");
}

TEST(Snapshot, RestoreThenContinueIsBitIdenticalOnAllBenchModels) {
  // The warm-start contract: partial saturation, snapshot, restore,
  // continue == the identical two-phase run without the snapshot. Both
  // sides run the same Runner sequence, so the only difference is the
  // serialize/deserialize round trip in the middle.
  const std::vector<Rewrite> Rules = pipelineRules();
  const RuleSet DB(Rules);
  RunnerLimits Phase1;
  Phase1.IterLimit = 2;
  const RunnerLimits Phase2; // defaults: run to saturation

  for (const models::BenchmarkModel &M : models::allModels()) {
    SCOPED_TRACE(M.Name);

    // Uninterrupted reference: phase 1 then phase 2 on one graph.
    EGraph A;
    A.addTerm(M.FlatCsg);
    A.rebuild();
    Runner(Phase1).run(A, DB);
    RunnerReport RepA = Runner(Phase2).run(A, DB);

    // Snapshotted: phase 1, round trip, phase 2 on the restored graph.
    EGraph B;
    B.addTerm(M.FlatCsg);
    B.rebuild();
    Runner(Phase1).run(B, DB);
    EGraph C;
    ASSERT_EQ(restore(snapshotOf(B), C), "");
    ASSERT_EQ(C.dump(), B.dump());
    ASSERT_EQ(C.checkInvariants(), "");
    RunnerReport RepC = Runner(Phase2).run(C, DB);

    EXPECT_EQ(C.dump(), A.dump());
    EXPECT_EQ(reportFingerprint(RepC), reportFingerprint(RepA));
    EXPECT_EQ(C.numNodes(), A.numNodes());
    EXPECT_EQ(C.numClasses(), A.numClasses());
  }
}

TEST(Snapshot, RestoredGraphServesIncrementalExtraction) {
  // The serialized dirty-cursor state (generation counter + log) lets a
  // restored graph drive the incremental engines exactly like the
  // original: derive, mutate, refresh.
  models::BenchmarkModel M = models::modelByName("3362402:gear");
  EGraph G;
  EClassId Root = G.addTerm(M.FlatCsg);
  G.rebuild();
  RunnerLimits L;
  L.IterLimit = 3;
  Runner(L).run(G, pipelineRules());

  EGraph R;
  ASSERT_EQ(restore(snapshotOf(G), R), "");
  EClassId RootR = R.find(Root); // ids are preserved verbatim

  AstSizeCost Cost;
  Extractor EngG(G, Cost), EngR(R, Cost);
  ASSERT_TRUE(EngG.bestCost(G.find(Root)).has_value());
  EXPECT_EQ(*EngG.bestCost(G.find(Root)), *EngR.bestCost(RootR));
  EXPECT_TRUE(termEquals(EngG.extract(G.find(Root)), EngR.extract(RootR)));

  // Mutate both the same way; incremental refresh must agree too.
  G.addTerm(parse("(Union Unit (Translate (Vec3 7 7 7) Sphere))"));
  R.addTerm(parse("(Union Unit (Translate (Vec3 7 7 7) Sphere))"));
  G.rebuild();
  R.rebuild();
  EngG.refresh();
  EngR.refresh();
  EXPECT_EQ(*EngG.bestCost(G.find(Root)), *EngR.bestCost(RootR));
  EXPECT_EQ(G.dump(), R.dump());
}

TEST(Snapshot, TakeDirtySinceAgreesAfterRestore) {
  EGraph G;
  G.addTerm(parse("(Union (Translate (Vec3 1 0 0) Unit) Sphere)"));
  G.rebuild();
  uint64_t Mid = G.generation();
  G.addTerm(parse("(Scale (Vec3 2 2 2) Hexagon)"));
  G.rebuild();

  EGraph R;
  ASSERT_EQ(restore(snapshotOf(G), R), "");
  EXPECT_EQ(R.generation(), G.generation());
  EXPECT_EQ(R.takeDirtySince(Mid), G.takeDirtySince(Mid));
  EXPECT_EQ(R.takeDirtySince(0), G.takeDirtySince(0));
}

TEST(Snapshot, RejectsCorruptAndTruncatedInput) {
  EGraph G;
  G.addTerm(parse("(Union (Translate (Vec3 1 2 3) Unit) Sphere)"));
  G.rebuild();
  const std::string Bytes = snapshotOf(G);

  {
    // Bad magic.
    std::string Bad = Bytes;
    Bad[0] ^= 0x40;
    EGraph R;
    EXPECT_NE(restore(Bad, R), "");
    EXPECT_EQ(R.numClasses(), 0u); // target left untouched
  }
  {
    // Truncations at every prefix length: header, payload, or mid-field —
    // all must fail cleanly (and never assert or crash).
    EGraph R0;
    EXPECT_NE(restore(std::string(), R0), "");
    for (size_t Len : {size_t(4), size_t(12), size_t(23), Bytes.size() / 2,
                       Bytes.size() - 1}) {
      std::string Bad = Bytes.substr(0, Len);
      EGraph R;
      EXPECT_NE(restore(Bad, R), "") << "accepted truncation at " << Len;
      EXPECT_EQ(R.numClasses(), 0u);
    }
  }
  {
    // Payload bit flips: caught by the checksum regardless of position.
    for (size_t Pos = 24; Pos < Bytes.size(); Pos += 37) {
      std::string Bad = Bytes;
      Bad[Pos] ^= 0x01;
      EGraph R;
      EXPECT_NE(restore(Bad, R), "") << "accepted bit flip at " << Pos;
    }
  }
  {
    // A non-fresh target graph is refused outright.
    EGraph R;
    R.addTerm(parse("Unit"));
    R.rebuild();
    EXPECT_NE(restore(Bytes, R), "");
  }
}

TEST(Snapshot, RejectsHugeCountsWithValidChecksum) {
  // A corrupt count field whose payload still checksums (here: forged,
  // with the header hash recomputed) must fail with a diagnostic, not
  // attempt a multi-gigabyte allocation (std::bad_alloc would escape
  // deserialize() and kill a batch process loading a warm-start file).
  EGraph G;
  G.addTerm(parse("(Union Unit Sphere)"));
  G.rebuild();
  std::string Bytes = snapshotOf(G);

  // Payload starts at byte 24; its first u32 is the id count.
  for (size_t B = 0; B < 4; ++B)
    Bytes[24 + B] = static_cast<char>(0xff);
  // Recompute the FNV-1a header checksum over the tampered payload.
  uint64_t H = 1469598103934665603ull;
  for (size_t I = 24; I < Bytes.size(); ++I) {
    H ^= static_cast<unsigned char>(Bytes[I]);
    H *= 1099511628211ull;
  }
  std::memcpy(&Bytes[16], &H, sizeof H);

  EGraph R;
  EXPECT_EQ(restore(Bytes, R), "id count exceeds payload");
  EXPECT_EQ(R.numClasses(), 0u);
}

TEST(Snapshot, ChecksummedHeaderDetectsLengthTampering) {
  EGraph G;
  G.addTerm(parse("(Union Unit Sphere)"));
  G.rebuild();
  std::string Bytes = snapshotOf(G);
  // Grow the declared payload length: the read runs past the real bytes.
  Bytes[8] = static_cast<char>(Bytes[8] + 1);
  EGraph R;
  EXPECT_NE(restore(Bytes, R), "");
}

TEST(Snapshot, FileRoundTrip) {
  EGraph G;
  G.addTerm(models::modelByName("3148599:box-tray").FlatCsg);
  G.rebuild();
  Runner().run(G, pipelineRules());

  const std::string Path =
      testing::TempDir() + "/shrinkray_snapshot_test.egraph";
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(Out.good());
    G.serialize(Out);
    ASSERT_TRUE(Out.good());
  }
  EGraph R;
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good());
  EXPECT_EQ(R.deserialize(In), "");
  EXPECT_EQ(R.dump(), G.dump());
  EXPECT_EQ(R.checkInvariants(), "");
  std::remove(Path.c_str());
}
