//===-- tests/warmstart_test.cpp - Warm == cold differential suite --------===//
//
// The snapshot-backed warm-start contract is byte-identity: a warm run —
// restored graph, resumed saturation, refreshed extraction engine — must
// produce exactly the programs, costs, and ranks a cold run of the same
// request produces, and for same-input requests the same final e-graph
// dump byte for byte. This suite checks that contract across the full
// Table 1 model corpus, all three near-miss kinds (deeper fuel, cost
// swap, localized numeric edit), and 1/2/4 runner threads, both at the
// Synthesizer level (manual WarmStart plumbing) and end-to-end through
// SynthesisService's snapshot tier.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "cad/Sexp.h"
#include "models/Models.h"
#include "service/SynthesisService.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

using namespace shrinkray;

namespace {

// Sanitizer builds run the instrumented pipeline ~10x slower, so they
// sweep a 4-model cross-section (both provenances, the Figure 1 gear,
// and the largest regular-grid model) instead of all 16. The plain
// build — the one the acceptance bar names — always runs the full corpus.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SHRINKRAY_WARMSTART_REDUCED_CORPUS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SHRINKRAY_WARMSTART_REDUCED_CORPUS 1
#endif
#endif

std::vector<models::BenchmarkModel> corpus() {
#ifdef SHRINKRAY_WARMSTART_REDUCED_CORPUS
  return {models::modelByName("3362402:gear"),
          models::modelByName("3148599:box-tray"),
          models::modelByName("3094201:dice"),
          models::modelByName("64847:sd-rack")};
#else
  return models::allModels();
#endif
}

/// Byte-stable transcript of a result's observable output: every program's
/// canonical s-expression, its cost's raw IEEE bits, and the structure
/// rank. Two results with equal transcripts are indistinguishable to any
/// consumer of the pipeline.
std::string transcript(const SynthesisResult &R) {
  std::string Out;
  for (const RankedTerm &P : R.Programs) {
    uint64_t Bits = 0;
    static_assert(sizeof(Bits) == sizeof(P.Cost), "cost must be a double");
    std::memcpy(&Bits, &P.Cost, sizeof(Bits));
    Out += printSexp(P.T);
    Out += " # cost-bits ";
    Out += std::to_string(Bits);
    Out += "\n";
  }
  Out += "rank ";
  Out += std::to_string(R.structureRank());
  Out += "\n";
  return Out;
}

/// Packages a capture run's snapshot as the WarmStart seed a later request
/// would receive from the service tier.
WarmStart toWarmStart(const SynthesisResult &Captured, bool SameInput,
                      bool ExtractUsable) {
  EXPECT_TRUE(Captured.Snapshot.Present);
  WarmStart W;
  W.Graph = Captured.Snapshot.Graph;
  W.Cursors = Captured.Snapshot.Cursors;
  W.Extract = Captured.Snapshot.Extract;
  W.ExtractUsable = ExtractUsable && !W.Extract.empty();
  W.SameInput = SameInput;
  return W;
}

/// Rebuilds \p T with its first (preorder) numeric leaf nudged by an
/// exactly-representable delta — the one-parameter model edit the warm
/// path is built for. Keeps the leaf's Int/Float spelling.
TermPtr editFirstNumericLeaf(const TermPtr &T, bool &Edited) {
  if (Edited)
    return T;
  OpKind K = T->kind();
  if (K == OpKind::Int) {
    Edited = true;
    return tInt(static_cast<int64_t>(T->op().numericValue()) + 1);
  }
  if (K == OpKind::Float) {
    Edited = true;
    return tFloat(T->op().numericValue() + 0.03125);
  }
  std::vector<TermPtr> Kids;
  Kids.reserve(T->numChildren());
  bool Changed = false;
  for (const TermPtr &Kid : T->children()) {
    TermPtr NewKid = editFirstNumericLeaf(Kid, Edited);
    Changed |= NewKid != Kid;
    Kids.push_back(std::move(NewKid));
  }
  return Changed ? makeTerm(T->op(), std::move(Kids)) : T;
}

TermPtr editedModel(const models::BenchmarkModel &M) {
  bool Edited = false;
  TermPtr E = editFirstNumericLeaf(M.FlatCsg, Edited);
  EXPECT_TRUE(Edited) << M.Name << " has no numeric leaf to edit";
  return E;
}

SynthesisOptions baseOptions(size_t Threads) {
  SynthesisOptions Opts;
  Opts.Limits.NumThreads = Threads;
  return Opts;
}

/// Near-miss kind 1: the capture ran out of iteration fuel one short of
/// the request; the warm run must resume saturation from the cursors and
/// land on the cold run's graph byte for byte.
void checkDeeperFuel(size_t Threads) {
  for (const models::BenchmarkModel &M : corpus()) {
    SynthesisOptions ColdOpts = baseOptions(Threads);
    ColdOpts.KeepGraphDump = true;
    SynthesisResult Cold = Synthesizer(ColdOpts).synthesize(M.FlatCsg);
    size_t ColdIters = Cold.Stats.Rewriting.numIterations();

    // Capture a run starved of its last iteration(s). Models that
    // saturate in one iteration cannot be starved; they exercise the
    // skip-the-replay path instead (stored Saturated, nothing to resume).
    SynthesisOptions CapOpts = baseOptions(Threads);
    CapOpts.CaptureSnapshot = true;
    if (ColdIters >= 2)
      CapOpts.Limits.IterLimit = ColdIters - 1;
    SynthesisResult Captured = Synthesizer(CapOpts).synthesize(M.FlatCsg);
    ASSERT_TRUE(Captured.Snapshot.Present) << M.Name;

    SynthesisOptions WarmOpts = baseOptions(Threads);
    WarmOpts.KeepGraphDump = true;
    SynthesisResult Warm = Synthesizer(WarmOpts).synthesizeWarm(
        M.FlatCsg, toWarmStart(Captured, /*SameInput=*/true,
                               /*ExtractUsable=*/true));

    EXPECT_TRUE(Warm.Stats.WarmStart) << M.Name;
    EXPECT_FALSE(Warm.Stats.WarmStartAborted) << M.Name;
    EXPECT_FALSE(Warm.Stats.WarmStartEdit) << M.Name;
    if (ColdIters >= 2) {
      EXPECT_GE(Warm.Stats.WarmResumedIters, 1u) << M.Name;
      EXPECT_EQ(Warm.Stats.WarmSkippedIters, ColdIters - 1) << M.Name;
    }
    EXPECT_EQ(transcript(Cold), transcript(Warm)) << M.Name;
    EXPECT_EQ(Cold.GraphDump, Warm.GraphDump) << M.Name;
  }
}

/// Near-miss kind 2: same input, different cost function. The captured
/// extraction engine is unusable (wrong cost), so the warm run re-derives
/// one over the restored graph; saturation itself is skipped entirely.
void checkCostSwap(size_t Threads) {
  for (const models::BenchmarkModel &M : corpus()) {
    SynthesisOptions ColdOpts = baseOptions(Threads);
    ColdOpts.Cost = CostKind::RewardLoops;
    ColdOpts.KeepGraphDump = true;
    SynthesisResult Cold = Synthesizer(ColdOpts).synthesize(M.FlatCsg);

    SynthesisOptions CapOpts = baseOptions(Threads);
    CapOpts.CaptureSnapshot = true; // CostKind::AstSize — the other cost
    SynthesisResult Captured = Synthesizer(CapOpts).synthesize(M.FlatCsg);
    ASSERT_TRUE(Captured.Snapshot.Present) << M.Name;
    size_t CapturedIters = Captured.Stats.Rewriting.numIterations();

    SynthesisOptions WarmOpts = baseOptions(Threads);
    WarmOpts.Cost = CostKind::RewardLoops;
    WarmOpts.KeepGraphDump = true;
    SynthesisResult Warm = Synthesizer(WarmOpts).synthesizeWarm(
        M.FlatCsg, toWarmStart(Captured, /*SameInput=*/true,
                               /*ExtractUsable=*/false));

    EXPECT_TRUE(Warm.Stats.WarmStart) << M.Name;
    EXPECT_FALSE(Warm.Stats.WarmStartAborted) << M.Name;
    EXPECT_EQ(Warm.Stats.WarmResumedIters, 0u) << M.Name;
    EXPECT_EQ(Warm.Stats.WarmSkippedIters, CapturedIters) << M.Name;
    EXPECT_EQ(transcript(Cold), transcript(Warm)) << M.Name;
    EXPECT_EQ(Cold.GraphDump, Warm.GraphDump) << M.Name;
  }
}

/// Near-miss kind 3: one numeric leaf edited. The warm run re-seeds the
/// edited term into the captured graph and resumes saturation until it
/// closes over the new subterm. The warm graph is a superset of the cold
/// one (it still holds the original parameter's classes), so only the
/// observable output — programs, costs, ranks — is compared, not dumps.
void checkEdit(size_t Threads) {
  for (const models::BenchmarkModel &M : corpus()) {
    TermPtr Edited = editedModel(M);

    SynthesisOptions CapOpts = baseOptions(Threads);
    CapOpts.CaptureSnapshot = true;
    SynthesisResult Captured = Synthesizer(CapOpts).synthesize(M.FlatCsg);
    ASSERT_TRUE(Captured.Snapshot.Present) << M.Name;
    const bool Saturated = Captured.Snapshot.Stop == StopReason::Saturated;

    // Saturated captures support an edit resume at the capture's own
    // budget. Iteration-limited captures qualify only with fuel to spare
    // (the resumed run must end on a quiescent tail), so those get a
    // deeper budget — and the cold reference must run at the same budget
    // for the differential to be meaningful.
    SynthesisOptions RunOpts = baseOptions(Threads);
    if (!Saturated)
      RunOpts.Limits.IterLimit = Captured.Snapshot.IterationsDone + 64;

    SynthesisResult Cold = Synthesizer(RunOpts).synthesize(Edited);
    SynthesisResult Warm = Synthesizer(RunOpts).synthesizeWarm(
        Edited, toWarmStart(Captured, /*SameInput=*/false,
                            /*ExtractUsable=*/true));

    if (Saturated) {
      EXPECT_TRUE(Warm.Stats.WarmStart) << M.Name;
      EXPECT_FALSE(Warm.Stats.WarmStartAborted) << M.Name;
      EXPECT_TRUE(Warm.Stats.WarmStartEdit) << M.Name;
    } else {
      // Two sound outcomes: the resumed run ends quiescent (frozen
      // frontier, the fuel-bounded fixpoint — e.g. nintendo-slot) and
      // counts as a warm start, or growth is detected and the pipeline
      // falls back to cold (e.g. gear mid-saturation). Either way the
      // output must be the cold output, byte for byte.
      EXPECT_TRUE(Warm.Stats.WarmStart || Warm.Stats.WarmStartAborted)
          << M.Name;
    }
    EXPECT_EQ(transcript(Cold), transcript(Warm)) << M.Name;
  }
}

} // namespace

TEST(WarmStartTest, DeeperFuelMatchesColdOneThread) { checkDeeperFuel(1); }
TEST(WarmStartTest, DeeperFuelMatchesColdTwoThreads) { checkDeeperFuel(2); }
TEST(WarmStartTest, DeeperFuelMatchesColdFourThreads) { checkDeeperFuel(4); }

TEST(WarmStartTest, CostSwapMatchesColdOneThread) { checkCostSwap(1); }
TEST(WarmStartTest, CostSwapMatchesColdTwoThreads) { checkCostSwap(2); }
TEST(WarmStartTest, CostSwapMatchesColdFourThreads) { checkCostSwap(4); }

TEST(WarmStartTest, EditMatchesColdOneThread) { checkEdit(1); }
TEST(WarmStartTest, EditMatchesColdTwoThreads) { checkEdit(2); }
TEST(WarmStartTest, EditMatchesColdFourThreads) { checkEdit(4); }

// Saturation is bit-identical at any thread count, so a snapshot captured
// single-threaded must restore and resume under a different thread count
// with the same byte-identity guarantees.
TEST(WarmStartTest, CaptureAtOneThreadRestoresAtFour) {
  models::BenchmarkModel M = models::modelByName("3362402:gear");

  SynthesisOptions ColdOpts = baseOptions(4);
  ColdOpts.KeepGraphDump = true;
  SynthesisResult Cold = Synthesizer(ColdOpts).synthesize(M.FlatCsg);
  size_t ColdIters = Cold.Stats.Rewriting.numIterations();
  ASSERT_GE(ColdIters, 2u) << "gear must take >1 iteration to saturate";

  SynthesisOptions CapOpts = baseOptions(1);
  CapOpts.CaptureSnapshot = true;
  CapOpts.Limits.IterLimit = ColdIters - 1;
  SynthesisResult Captured = Synthesizer(CapOpts).synthesize(M.FlatCsg);
  ASSERT_TRUE(Captured.Snapshot.Present);

  SynthesisOptions WarmOpts = baseOptions(4);
  WarmOpts.KeepGraphDump = true;
  SynthesisResult Warm = Synthesizer(WarmOpts).synthesizeWarm(
      M.FlatCsg,
      toWarmStart(Captured, /*SameInput=*/true, /*ExtractUsable=*/true));

  EXPECT_TRUE(Warm.Stats.WarmStart);
  EXPECT_FALSE(Warm.Stats.WarmStartAborted);
  EXPECT_EQ(transcript(Cold), transcript(Warm));
  EXPECT_EQ(Cold.GraphDump, Warm.GraphDump);
}

// A corrupted WarmStart must abort to the cold pipeline and still return
// the cold result, flagged.
TEST(WarmStartTest, CorruptWarmStartFallsBackToCold) {
  models::BenchmarkModel M = models::modelByName("3148599:box-tray");

  SynthesisOptions CapOpts = baseOptions(1);
  CapOpts.CaptureSnapshot = true;
  SynthesisResult Captured = Synthesizer(CapOpts).synthesize(M.FlatCsg);
  ASSERT_TRUE(Captured.Snapshot.Present);

  SynthesisResult Cold = Synthesizer(baseOptions(1)).synthesize(M.FlatCsg);

  WarmStart W =
      toWarmStart(Captured, /*SameInput=*/true, /*ExtractUsable=*/true);
  W.Graph[W.Graph.size() / 2] ^= 0x40; // payload bit flip -> checksum fail

  SynthesisResult Warm =
      Synthesizer(baseOptions(1)).synthesizeWarm(M.FlatCsg, W);
  EXPECT_TRUE(Warm.Stats.WarmStartAborted);
  EXPECT_FALSE(Warm.Stats.WarmStart);
  EXPECT_EQ(transcript(Cold), transcript(Warm));
}

//===----------------------------------------------------------------------===//
// End-to-end through the service snapshot tier.
//===----------------------------------------------------------------------===//

namespace {

std::string tempDir(const std::string &Name) {
  std::string Dir = testing::TempDir() + "/" + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

service::JobSpec jobFor(const TermPtr &Input, SynthesisOptions Opts = {}) {
  service::JobSpec Spec;
  Spec.Name = "warmstart";
  Spec.Input = Input;
  Spec.Options = Opts;
  return Spec;
}

} // namespace

TEST(WarmStartServiceTest, SecondDeeperRequestWarmStarts) {
  models::BenchmarkModel M = models::modelByName("3362402:gear");

  service::ServiceConfig Cold;
  Cold.NumWorkers = 1;
  Cold.EnableWarmStart = false;
  service::SynthesisService ColdSvc(Cold);
  const service::JobOutcome &Ref =
      ColdSvc.wait(ColdSvc.submit(jobFor(M.FlatCsg)));
  ASSERT_EQ(Ref.St, service::JobOutcome::Status::Succeeded);

  service::ServiceConfig Warm;
  Warm.NumWorkers = 1;
  service::SynthesisService Svc(Warm);

  SynthesisOptions Starved;
  Starved.Limits.IterLimit = 2;
  const service::JobOutcome &First =
      Svc.wait(Svc.submit(jobFor(M.FlatCsg, Starved)));
  ASSERT_EQ(First.St, service::JobOutcome::Status::Succeeded);
  EXPECT_EQ(Svc.cache().stats().SnapshotStores, 1u);

  // Same input, full fuel: a different result-cache key, but a snapshot
  // hit — the run resumes from iteration 2 instead of starting over.
  const service::JobOutcome &Second =
      Svc.wait(Svc.submit(jobFor(M.FlatCsg)));
  ASSERT_EQ(Second.St, service::JobOutcome::Status::Succeeded);
  EXPECT_TRUE(Second.Result.Stats.WarmStart);
  EXPECT_FALSE(Second.Result.Stats.WarmStartAborted);
  EXPECT_GE(Second.Result.Stats.WarmSkippedIters, 2u);
  EXPECT_EQ(Svc.cache().stats().SnapshotHits, 1u);

  EXPECT_EQ(transcript(Ref.Result), transcript(Second.Result));
}

TEST(WarmStartServiceTest, EditedRequestWarmStartsAcrossProcessRestart) {
  models::BenchmarkModel M = models::modelByName("3148599:box-tray");
  TermPtr Edited = editedModel(M);
  std::string Dir = tempDir("warmstart_svc_edit");

  service::ServiceConfig ColdCfg;
  ColdCfg.NumWorkers = 1;
  ColdCfg.EnableWarmStart = false;
  service::SynthesisService ColdSvc(ColdCfg);
  const service::JobOutcome &Ref =
      ColdSvc.wait(ColdSvc.submit(jobFor(Edited)));
  ASSERT_EQ(Ref.St, service::JobOutcome::Status::Succeeded);

  // First process: capture the unedited model's snapshot to disk.
  {
    service::ServiceConfig Cfg;
    Cfg.NumWorkers = 1;
    Cfg.CacheDir = Dir;
    service::SynthesisService Svc(Cfg);
    const service::JobOutcome &Out = Svc.wait(Svc.submit(jobFor(M.FlatCsg)));
    ASSERT_EQ(Out.St, service::JobOutcome::Status::Succeeded);
    EXPECT_EQ(Svc.cache().stats().SnapshotStores, 1u);
  }

  // Second process: the edited model misses the result cache (different
  // exact input) but lands on the captured structure snapshot.
  service::ServiceConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.CacheDir = Dir;
  service::SynthesisService Svc(Cfg);
  const service::JobOutcome &Out = Svc.wait(Svc.submit(jobFor(Edited)));
  ASSERT_EQ(Out.St, service::JobOutcome::Status::Succeeded);
  EXPECT_TRUE(Out.Result.Stats.WarmStart);
  EXPECT_TRUE(Out.Result.Stats.WarmStartEdit);
  EXPECT_FALSE(Out.Result.Stats.WarmStartAborted);
  EXPECT_EQ(Svc.cache().stats().SnapshotHits, 1u);

  EXPECT_EQ(transcript(Ref.Result), transcript(Out.Result));
  std::filesystem::remove_all(Dir);
}

TEST(WarmStartServiceTest, LargeEditRunsCold) {
  // Edit more leaves than WarmMaxEditedLeaves allows: the snapshot is
  // found but judged unusable, and the job runs cold without aborting.
  models::BenchmarkModel M = models::modelByName("3094201:dice");
  TermPtr Edited = models::injectNoise(M.FlatCsg, 0.001, 7);

  service::ServiceConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.WarmMaxEditedLeaves = 2;
  service::SynthesisService Svc(Cfg);
  const service::JobOutcome &First = Svc.wait(Svc.submit(jobFor(M.FlatCsg)));
  ASSERT_EQ(First.St, service::JobOutcome::Status::Succeeded);

  const service::JobOutcome &Out = Svc.wait(Svc.submit(jobFor(Edited)));
  ASSERT_EQ(Out.St, service::JobOutcome::Status::Succeeded);
  EXPECT_FALSE(Out.Result.Stats.WarmStart);
  EXPECT_FALSE(Out.Result.Stats.WarmStartAborted);
}

TEST(WarmStartServiceTest, MultiRoundJobsBypassSnapshotTier) {
  models::BenchmarkModel M = models::modelByName("3148599:box-tray");
  SynthesisOptions Opts;
  Opts.MainLoopIters = 2;

  service::ServiceConfig Cfg;
  Cfg.NumWorkers = 1;
  service::SynthesisService Svc(Cfg);
  const service::JobOutcome &Out = Svc.wait(Svc.submit(jobFor(M.FlatCsg, Opts)));
  ASSERT_EQ(Out.St, service::JobOutcome::Status::Succeeded);
  service::ResultCache::Stats St = Svc.cache().stats();
  EXPECT_EQ(St.SnapshotStores, 0u);
  EXPECT_EQ(St.SnapshotHits, 0u);
  EXPECT_EQ(St.SnapshotMisses, 0u);
}
