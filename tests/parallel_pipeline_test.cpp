//===-- tests/parallel_pipeline_test.cpp - Multicore pipeline phase 2 -----===//
//
// Differential and adversarial coverage for the multicore pipeline's second
// phase: the conflict-partitioned apply scheduler and the wave-scheduled
// k-best extraction. The contract under test is the one docs/ARCHITECTURE.md
// states for the whole engine: the thread count is a pure performance knob —
// saturated e-graph dumps, runner statistics, extracted top-k programs, and
// end-to-end synthesis results must be byte-identical at every NumThreads.
//
//  * partitionMatches unit tests on adversarial closure sets (transitive
//    overlap, self-referential/duplicate classes, empty closures, scrambled
//    input order);
//  * saturation differential: NumThreads 1/2/4/8 over every bench model;
//  * extraction differential: scratch builds and warm refresh() at every
//    thread count over saturated bench graphs;
//  * end-to-end synthesis differential and rerun determinism;
//  * extraction-table compaction under long merge churn.
//
//===----------------------------------------------------------------------===//

#include "cad/Sexp.h"
#include "egraph/ApplyPlan.h"
#include "egraph/Extract.h"
#include "egraph/Runner.h"
#include "models/Models.h"
#include "rewrites/Rules.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace shrinkray;

namespace {

const size_t ThreadCounts[] = {1, 2, 4, 8};

RunnerLimits testLimits(size_t Threads, size_t Iters = 8) {
  return RunnerLimits{.IterLimit = Iters,
                      .NodeLimit = 60000,
                      .TimeLimitSec = 30.0,
                      .NumThreads = Threads};
}

/// Serializes everything a saturation run determines: the full graph dump
/// plus the scheduler-visible statistics (which are themselves contractually
/// a pure function of the graph, not of the thread count).
std::string saturationFingerprint(const TermPtr &T, size_t Threads,
                                  size_t Iters = 8) {
  EGraph G;
  G.addTerm(T);
  G.rebuild();
  Runner R(testLimits(Threads, Iters));
  RunnerReport Rep = R.run(G, pipelineRules());
  std::ostringstream Os;
  Os << G.dump();
  Os << "stop=" << static_cast<int>(Rep.Stop)
     << " iters=" << Rep.numIterations() << "\n";
  for (const IterationStats &S : Rep.Iterations)
    Os << S.Applied << ' ' << S.Matches << ' ' << S.Nodes << ' ' << S.Classes
       << ' ' << S.ApplyPartitions << ' ' << S.ParallelMatches << ' '
       << S.SerialMatches << "\n";
  return Os.str();
}

/// Serializes the complete top-k table of \p E over every class of \p G.
std::string extractionFingerprint(const EGraph &G, const KBestExtractor &E) {
  std::ostringstream Os;
  for (EClassId Id : G.classIds()) {
    Os << Id << ":";
    for (const RankedTerm &R : E.extract(Id))
      Os << ' ' << R.Cost << ' ' << printSexp(R.T);
    Os << "\n";
  }
  return Os.str();
}

std::vector<uint32_t> partitionOf(const std::vector<ApplyPartition> &Parts,
                                  size_t I) {
  return Parts.at(I).Matches;
}

} // namespace

//===----------------------------------------------------------------------===//
// Conflict partitioner
//===----------------------------------------------------------------------===//

TEST(ApplyPartitionTest, DisjointClosuresStaySeparate) {
  std::vector<MatchClosure> Cs = {
      {0, {1, 2}}, {1, {3, 4}}, {2, {5}}};
  std::vector<ApplyPartition> Parts = partitionMatches(Cs);
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(partitionOf(Parts, 0), (std::vector<uint32_t>{0}));
  EXPECT_EQ(partitionOf(Parts, 1), (std::vector<uint32_t>{1}));
  EXPECT_EQ(partitionOf(Parts, 2), (std::vector<uint32_t>{2}));
}

TEST(ApplyPartitionTest, OverlapMergesTransitively) {
  // 0 and 2 never share a class, but both overlap 1: one partition. The
  // chain is exactly the case a naive pairwise check would split unsoundly.
  std::vector<MatchClosure> Cs = {
      {0, {1, 2}}, {1, {2, 3}}, {2, {3, 4}}, {3, {9}}};
  std::vector<ApplyPartition> Parts = partitionMatches(Cs);
  ASSERT_EQ(Parts.size(), 2u);
  EXPECT_EQ(partitionOf(Parts, 0), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(partitionOf(Parts, 1), (std::vector<uint32_t>{3}));
}

TEST(ApplyPartitionTest, SelfReferentialClosuresNeedNoSpecialCase) {
  // Duplicated classes inside one closure (self-referential matches,
  // nonlinear bindings) must neither crash nor split the component.
  std::vector<MatchClosure> Cs = {
      {0, {7, 7, 7}}, {1, {7}}, {2, {8, 8}}};
  std::vector<ApplyPartition> Parts = partitionMatches(Cs);
  ASSERT_EQ(Parts.size(), 2u);
  EXPECT_EQ(partitionOf(Parts, 0), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(partitionOf(Parts, 1), (std::vector<uint32_t>{2}));
}

TEST(ApplyPartitionTest, EmptyClosuresFormSingletons) {
  std::vector<MatchClosure> Cs = {{0, {}}, {1, {}}, {2, {5}}, {3, {5}}};
  std::vector<ApplyPartition> Parts = partitionMatches(Cs);
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(partitionOf(Parts, 0), (std::vector<uint32_t>{0}));
  EXPECT_EQ(partitionOf(Parts, 1), (std::vector<uint32_t>{1}));
  EXPECT_EQ(partitionOf(Parts, 2), (std::vector<uint32_t>{2, 3}));
}

TEST(ApplyPartitionTest, OutputNormalizedRegardlessOfInputOrder) {
  // Closures arrive with scrambled MatchIdx payloads; partitions must come
  // out ordered by smallest member index, members ascending.
  std::vector<MatchClosure> Cs = {
      {5, {100}}, {2, {200, 201}}, {9, {100}}, {0, {201}}};
  std::vector<ApplyPartition> Parts = partitionMatches(Cs);
  ASSERT_EQ(Parts.size(), 2u);
  EXPECT_EQ(partitionOf(Parts, 0), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(partitionOf(Parts, 1), (std::vector<uint32_t>{5, 9}));
}

TEST(ApplyPartitionTest, LargeAdversarialChainCollapsesToOnePartition) {
  // 256 matches, each sharing one class with its successor: a single
  // transitive component no matter how the unions interleave.
  std::vector<MatchClosure> Cs;
  for (uint32_t I = 0; I < 256; ++I)
    Cs.push_back({I, {I, I + 1}});
  std::vector<ApplyPartition> Parts = partitionMatches(Cs);
  ASSERT_EQ(Parts.size(), 1u);
  ASSERT_EQ(Parts[0].Matches.size(), 256u);
  for (uint32_t I = 0; I < 256; ++I)
    EXPECT_EQ(Parts[0].Matches[I], I);
}

//===----------------------------------------------------------------------===//
// Saturation differential: every bench model, thread counts 1/2/4/8
//===----------------------------------------------------------------------===//

TEST(ParallelApplyDifferentialTest, SaturationIdenticalOnAllBenchModels) {
  for (const models::BenchmarkModel &M : models::allModels()) {
    const std::string Baseline = saturationFingerprint(M.FlatCsg, 1);
    for (size_t Threads : ThreadCounts) {
      if (Threads == 1)
        continue;
      ASSERT_EQ(saturationFingerprint(M.FlatCsg, Threads), Baseline)
          << M.Name << " diverges at NumThreads=" << Threads;
    }
  }
}

TEST(ParallelApplyDifferentialTest, RerunAtFixedThreadCountIsDeterministic) {
  const TermPtr &T = models::modelByName("3362402:gear").FlatCsg;
  const std::string First = saturationFingerprint(T, 4);
  ASSERT_EQ(saturationFingerprint(T, 4), First);
}

//===----------------------------------------------------------------------===//
// Extraction differential: scratch and warm refresh at every thread count
//===----------------------------------------------------------------------===//

TEST(ParallelExtractDifferentialTest, ScratchTopKIdenticalOnAllBenchModels) {
  AstSizeCost Cost;
  for (const models::BenchmarkModel &M : models::allModels()) {
    EGraph G;
    G.addTerm(M.FlatCsg);
    G.rebuild();
    Runner(testLimits(1)).run(G, pipelineRules());
    std::string Baseline;
    for (size_t Threads : ThreadCounts) {
      KBestExtractor E(G, Cost, 5, Threads);
      std::string Fp = extractionFingerprint(G, E);
      if (Threads == 1)
        Baseline = std::move(Fp);
      else
        ASSERT_EQ(Fp, Baseline)
            << M.Name << " diverges at NumThreads=" << Threads;
    }
  }
}

TEST(ParallelExtractDifferentialTest, WarmRefreshIdenticalAcrossThreads) {
  // The production path: the engine comes up on a part-saturated graph and
  // refresh() folds in later rounds through the dirty log. Each thread
  // count gets its own graph (engines hold dirty-log leases), all built by
  // the same deterministic recipe.
  AstSizeCost Cost;
  for (const char *Name : {"3432939:nintendo-slot", "3362402:gear"}) {
    const TermPtr &T = models::modelByName(Name).FlatCsg;
    std::string Baseline;
    for (size_t Threads : ThreadCounts) {
      EGraph G;
      G.addTerm(T);
      G.rebuild();
      Runner(testLimits(1, /*Iters=*/3)).run(G, pipelineRules());
      KBestExtractor E(G, Cost, 5, Threads);
      Runner(testLimits(1, /*Iters=*/6)).run(G, pipelineRules());
      G.rebuild();
      E.refresh();
      std::string Fp = extractionFingerprint(G, E);
      if (Threads == 1)
        Baseline = std::move(Fp);
      else
        ASSERT_EQ(Fp, Baseline)
            << Name << " warm refresh diverges at NumThreads=" << Threads;
    }
  }
}

//===----------------------------------------------------------------------===//
// End-to-end synthesis differential
//===----------------------------------------------------------------------===//

TEST(ParallelPipelineDifferentialTest, SynthesisIdenticalAcrossThreads) {
  const TermPtr &T = models::modelByName("3362402:gear").FlatCsg;
  std::string Baseline;
  for (size_t Threads : ThreadCounts) {
    SynthesisOptions Opts;
    Opts.Limits.NumThreads = Threads;
    SynthesisResult R = Synthesizer(Opts).synthesize(T);
    std::ostringstream Os;
    for (const RankedTerm &P : R.Programs)
      Os << P.Cost << ' ' << printSexp(P.T) << "\n";
    if (Threads == 1)
      Baseline = Os.str();
    else
      ASSERT_EQ(Os.str(), Baseline)
          << "synthesis diverges at NumThreads=" << Threads;
  }
}

//===----------------------------------------------------------------------===//
// Extraction-table compaction
//===----------------------------------------------------------------------===//

TEST(ExtractTableCompactionTest, StaleRowsAreSweptUnderMergeChurn) {
  // 200 distinct Var leaves merged down to one class, one merge per
  // refresh: each merge strands the loser's candidate row under a
  // superseded key. Without compaction the tables would keep all ~200
  // rows while only one class stays live.
  EGraph G;
  std::vector<EClassId> Leaves;
  for (int I = 0; I < 200; ++I)
    Leaves.push_back(
        G.addTerm(parseSexp("(Var a" + std::to_string(I) + ")").Value));
  G.rebuild();
  AstSizeCost Cost;
  Extractor One(G, Cost);
  KBestExtractor E(G, Cost, 3);
  for (size_t I = 1; I < Leaves.size(); ++I) {
    G.merge(Leaves[0], Leaves[I]);
    G.rebuild();
    One.refresh();
    E.refresh();
    EXPECT_LE(One.tableEntries(), 2 * G.numClasses())
        << "one-best table unbounded after merge " << I;
    EXPECT_LE(E.tableEntries(), 2 * G.numClasses())
        << "k-best table unbounded after merge " << I;
  }
  EXPECT_EQ(G.numClasses(), 1u);
  // The survivor still extracts correctly after every sweep.
  std::vector<RankedTerm> Progs = E.extract(Leaves[0]);
  ASSERT_EQ(Progs.size(), 3u);
  EXPECT_EQ(printSexp(Progs[0].T), "(Var a0)");
}
