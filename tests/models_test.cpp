//===-- tests/models_test.cpp - Benchmark corpus tests --------------------===//

#include "models/Models.h"

#include "cad/Eval.h"
#include "cad/Sexp.h"
#include "geom/Sample.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

#include <set>

using namespace shrinkray;
using namespace shrinkray::models;

TEST(ModelsTest, CorpusHasSixteenModels) {
  EXPECT_EQ(allModels().size(), 16u);
}

TEST(ModelsTest, NamesAreUniqueAndProvenanceTagged) {
  std::set<std::string> Names;
  for (const BenchmarkModel &M : allModels()) {
    EXPECT_TRUE(Names.insert(M.Name).second) << M.Name;
    EXPECT_TRUE(M.Provenance == 'T' || M.Provenance == 'I');
    EXPECT_FALSE(M.Description.empty());
  }
}

TEST(ModelsTest, AllModelsAreFlatCsg) {
  for (const BenchmarkModel &M : allModels()) {
    EXPECT_TRUE(isFlatCsg(M.FlatCsg)) << M.Name;
    EXPECT_FALSE(containsLoop(M.FlatCsg)) << M.Name;
  }
}

TEST(ModelsTest, PaperRowsArePopulated) {
  for (const BenchmarkModel &M : allModels()) {
    EXPECT_GT(M.Paper.InputNodes, 0) << M.Name;
    EXPECT_GT(M.Paper.TimeSec, 0.0) << M.Name;
    EXPECT_FALSE(M.Paper.Loops.empty()) << M.Name;
  }
}

TEST(ModelsTest, ModelSizesAreSubstantial) {
  // The corpus must exercise real scale: tens to hundreds of nodes, matching
  // the paper's #i-ns spread (31 .. 621).
  uint64_t MinSize = UINT64_MAX, MaxSize = 0;
  for (const BenchmarkModel &M : allModels()) {
    uint64_t S = termSize(M.FlatCsg);
    MinSize = std::min(MinSize, S);
    MaxSize = std::max(MaxSize, S);
  }
  EXPECT_LE(MinSize, 60u);
  EXPECT_GE(MaxSize, 600u);
}

TEST(ModelsTest, LookupByName) {
  BenchmarkModel M = modelByName("3362402:gear");
  EXPECT_EQ(M.Provenance, 'I');
  EXPECT_TRUE(M.ExpectStructure);
}

TEST(ModelsTest, GearScalesWithTeeth) {
  TermPtr G12 = gearModel(12);
  TermPtr G60 = gearModel(60);
  EXPECT_LT(termSize(G12), termSize(G60));
  EXPECT_EQ(termPrimitives(G60), 63u); // 60 teeth + 3 cylinders
  EXPECT_TRUE(isFlatCsg(G60));
}

TEST(ModelsTest, GearGeometryIsSane) {
  TermPtr G = gearModel(12);
  // A point inside the hub ring but outside the bore.
  EXPECT_TRUE(geom::contains(G, {50, 0, 25}));
  // Inside the bore: removed.
  EXPECT_FALSE(geom::contains(G, {0, 0, 25}));
  // Inside a tooth at angle 30 degrees (tooth 1 at 360/12 * 1).
  EXPECT_TRUE(geom::contains(G, {127.0 * std::cos(degToRad(30.0)),
                                 127.0 * std::sin(degToRad(30.0)), 10.0}));
}

TEST(ModelsTest, NoisyHexagonsMatchFigure16) {
  TermPtr T = noisyHexagonsModel();
  EXPECT_TRUE(isFlatCsg(T));
  EXPECT_EQ(termPrimitives(T), 3u);
  // The noisy constants from the figure are present verbatim.
  std::string S = printSexp(T);
  EXPECT_NE(S.find("1.4999996667"), std::string::npos);
  EXPECT_NE(S.find("0.866"), std::string::npos);
}

TEST(ModelsTest, InjectNoisePerturbsWithinBound) {
  TermPtr Clean = tTranslate(10, 20, 30, tUnit());
  TermPtr Noisy = injectNoise(Clean, 1e-3, 42);
  EXPECT_TRUE(termApproxEquals(Clean, Noisy, 1e-3));
  EXPECT_FALSE(termEquals(Clean, Noisy));
  // Deterministic.
  EXPECT_TRUE(termEquals(Noisy, injectNoise(Clean, 1e-3, 42)));
  // Different seed, different noise.
  EXPECT_FALSE(termEquals(Noisy, injectNoise(Clean, 1e-3, 43)));
}

TEST(ModelsTest, InjectNoiseKeepsGeometryClose) {
  TermPtr Clean = modelByName("3171605:card-org").FlatCsg;
  TermPtr Noisy = injectNoise(Clean, 1e-4, 7);
  geom::SampleOptions Opts;
  Opts.MismatchTolerance = 0.01;
  EXPECT_TRUE(geom::sampleEquivalent(Clean, Noisy, Opts));
}

//===----------------------------------------------------------------------===//
// End-to-end: every structured model must expose structure in top-k, and
// every synthesized program must preserve geometry. (The full Table 1
// regeneration lives in bench/bench_table1; this is the correctness gate.)
//===----------------------------------------------------------------------===//

namespace {

class ModelPipelineTest : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(ModelPipelineTest, SynthesisIsSoundAndFindsStructure) {
  BenchmarkModel M = allModels()[static_cast<size_t>(GetParam())];
  SynthesisOptions Opts;
  Opts.TopK = 5;
  SynthesisResult R = Synthesizer(Opts).synthesize(M.FlatCsg);
  ASSERT_FALSE(R.Programs.empty()) << M.Name;

  // Soundness: flattening the best program reproduces the input geometry.
  // Models with External parts are compared structurally via flattening
  // only (External is geometrically opaque).
  EvalResult Flat = evalToFlatCsg(R.best());
  ASSERT_TRUE(Flat) << M.Name << ": " << Flat.Error;
  geom::SampleOptions SampleOpts;
  SampleOpts.NumPoints = 4000;
  EXPECT_TRUE(geom::sampleEquivalent(M.FlatCsg, Flat.Value, SampleOpts))
      << M.Name;

  // Size: never worse than the input under the size cost.
  EXPECT_LE(termSize(R.best()), termSize(M.FlatCsg)) << M.Name;

  // Structure: models the paper parameterized must expose loops within
  // top-5 under at least one of the two shipped cost functions. (Our
  // rewrite set simplifies flat forms harder than the paper's, so models
  // with very small repetition counts need the reward-loops cost — the
  // same knob the paper reached for on 510849:wardrobe.)
  if (!M.ExpectStructure)
    return;
  if (R.structureRank() > 0)
    return;
  SynthesisOptions LoopOpts = Opts;
  LoopOpts.Cost = CostKind::RewardLoops;
  SynthesisResult R2 = Synthesizer(LoopOpts).synthesize(M.FlatCsg);
  EXPECT_GT(R2.structureRank(), 0u) << M.Name;
  // And the reward-loops winner must still be sound.
  EvalResult Flat2 = evalToFlatCsg(R2.best());
  ASSERT_TRUE(Flat2) << M.Name << ": " << Flat2.Error;
  EXPECT_TRUE(geom::sampleEquivalent(M.FlatCsg, Flat2.Value, SampleOpts))
      << M.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelPipelineTest, ::testing::Range(0, 16),
    [](const ::testing::TestParamInfo<int> &Info) {
      std::string Name = allModels()[static_cast<size_t>(Info.param)].Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
