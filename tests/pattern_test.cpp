//===-- tests/pattern_test.cpp - E-matching tests -------------------------===//

#include "egraph/Pattern.h"
#include "egraph/Rewrite.h"

#include <gtest/gtest.h>

using namespace shrinkray;

TEST(PatternTest, CollectsVarsInOrder) {
  Pattern P = Pattern::parse("(Union (Translate ?v ?a) (Translate ?v ?b))");
  ASSERT_EQ(P.vars().size(), 3u);
  EXPECT_EQ(P.vars()[0].str(), "v");
  EXPECT_EQ(P.vars()[1].str(), "a");
  EXPECT_EQ(P.vars()[2].str(), "b");
}

TEST(PatternTest, GroundPatternMatchesItself) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tSphere()));
  G.rebuild();
  Pattern P = Pattern::parse("(Union Unit Sphere)");
  EXPECT_EQ(P.matchClass(G, Root).size(), 1u);
}

TEST(PatternTest, VariableBindsClass) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tSphere()));
  EClassId UnitId = G.addTerm(tUnit());
  G.rebuild();
  Pattern P = Pattern::parse("(Union ?x ?y)");
  auto Matches = P.matchClass(G, Root);
  ASSERT_EQ(Matches.size(), 1u);
  EXPECT_EQ(G.find(Matches[0][Symbol("x")]), G.find(UnitId));
}

TEST(PatternTest, NonlinearVariableRequiresEquality) {
  EGraph G;
  EClassId Same = G.addTerm(tUnion(tUnit(), tUnit()));
  EClassId Diff = G.addTerm(tUnion(tUnit(), tSphere()));
  G.rebuild();
  Pattern P = Pattern::parse("(Union ?x ?x)");
  EXPECT_EQ(P.matchClass(G, Same).size(), 1u);
  EXPECT_EQ(P.matchClass(G, Diff).size(), 0u);
}

TEST(PatternTest, NonlinearMatchesAfterMerge) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tSphere()));
  G.rebuild();
  Pattern P = Pattern::parse("(Union ?x ?x)");
  EXPECT_EQ(P.matchClass(G, Root).size(), 0u);
  G.merge(G.addTerm(tUnit()), G.addTerm(tSphere()));
  G.rebuild();
  EXPECT_EQ(P.matchClass(G, Root).size(), 1u);
}

TEST(PatternTest, MultipleNodesGiveMultipleMatches) {
  EGraph G;
  EClassId A = G.addTerm(tUnion(tUnit(), tSphere()));
  EClassId B = G.addTerm(tUnion(tSphere(), tUnit()));
  G.merge(A, B);
  G.rebuild();
  Pattern P = Pattern::parse("(Union ?x ?y)");
  // The class now holds two Union nodes; both match.
  EXPECT_EQ(P.matchClass(G, A).size(), 2u);
}

TEST(PatternTest, SearchScansWholeGraph) {
  EGraph G;
  G.addTerm(tUnion(tUnit(), tUnion(tSphere(), tCylinder())));
  G.rebuild();
  Pattern P = Pattern::parse("(Union ?x ?y)");
  EXPECT_EQ(P.search(G).size(), 2u);
}

TEST(PatternTest, MatchesThroughDeepStructure) {
  EGraph G;
  EClassId Root = G.addTerm(
      tUnion(tTranslate(1, 2, 3, tUnit()), tTranslate(1, 2, 3, tSphere())));
  G.rebuild();
  Pattern P = Pattern::parse("(Union (Translate ?v ?a) (Translate ?v ?b))");
  auto Matches = P.matchClass(G, Root);
  ASSERT_EQ(Matches.size(), 1u);
  // ?v bound to the shared (hash-consed) vector class.
  EClassId V = Matches[0][Symbol("v")];
  EXPECT_TRUE(G.representsTerm(V, tVec3(1, 2, 3)));
}

TEST(PatternTest, RejectsWhenVectorsDiffer) {
  EGraph G;
  EClassId Root = G.addTerm(
      tUnion(tTranslate(1, 2, 3, tUnit()), tTranslate(9, 9, 9, tSphere())));
  G.rebuild();
  Pattern P = Pattern::parse("(Union (Translate ?v ?a) (Translate ?v ?b))");
  EXPECT_EQ(P.matchClass(G, Root).size(), 0u);
}

TEST(PatternTest, InstantiateBuildsTerm) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tSphere()));
  G.rebuild();
  Pattern Lhs = Pattern::parse("(Union ?x ?y)");
  Pattern Rhs = Pattern::parse("(Inter ?y ?x)");
  auto Matches = Lhs.matchClass(G, Root);
  ASSERT_EQ(Matches.size(), 1u);
  EClassId New = Rhs.instantiate(G, Matches[0]);
  G.rebuild();
  EXPECT_TRUE(G.representsTerm(New, tInter(tSphere(), tUnit())));
}

TEST(RewriteTest, SimpleRuleMergesClasses) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tSphere()));
  G.rebuild();
  Rewrite Comm("comm", "(Union ?a ?b)", "(Union ?b ?a)");
  EXPECT_EQ(Comm.run(G), 1u);
  EXPECT_TRUE(G.representsTerm(Root, tUnion(tSphere(), tUnit())));
  // Second run: the swapped node already exists; idempotent.
  EXPECT_EQ(Comm.run(G), 0u);
}

TEST(RewriteTest, VarOnlyRhsMergesWithChild) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tUnit()));
  EClassId UnitId = G.addTerm(tUnit());
  G.rebuild();
  Rewrite Idem("idem", "(Union ?a ?a)", "?a");
  EXPECT_EQ(Idem.run(G), 1u);
  EXPECT_EQ(G.find(Root), G.find(UnitId));
}

TEST(RewriteTest, GuardBlocksApplication) {
  EGraph G;
  G.addTerm(tTranslate(tVec3(tVar("x"), tFloat(0), tFloat(0)), tUnit()));
  G.rebuild();
  Rewrite R("needs-const", "(Translate (Vec3 ?x ?y ?z) ?c)", "?c",
            areConst({"x", "y", "z"}));
  EXPECT_EQ(R.search(G).size(), 0u);
}

TEST(RewriteTest, GuardAdmitsConstants) {
  EGraph G;
  G.addTerm(tTranslate(0, 0, 0, tUnit()));
  G.rebuild();
  Rewrite R("needs-const", "(Translate (Vec3 ?x ?y ?z) ?c)", "?c",
            areConst({"x", "y", "z"}));
  EXPECT_EQ(R.search(G).size(), 1u);
}

TEST(RewriteTest, ApplierComputesRhs) {
  // A rule that replaces Add(?a, ?b) of constants with the folded literal
  // (mirrors what analysis does, but through the applier path).
  EGraph G;
  EClassId Root = G.addTerm(tAdd(tFloat(2.0), tFloat(2.5)));
  G.rebuild();
  Rewrite R("fold-add", "(Add ?a ?b)",
            [](EGraph &G2, EClassId, const Subst &S) -> std::optional<EClassId> {
              if (!G2.data(S[Symbol("a")]).NumConst ||
                  !G2.data(S[Symbol("b")]).NumConst)
                return std::nullopt;
              double V = *G2.data(S[Symbol("a")]).NumConst +
                         *G2.data(S[Symbol("b")]).NumConst;
              return G2.add(ENode(Op::makeFloat(V), {}));
            });
  R.run(G);
  EXPECT_TRUE(G.representsTerm(Root, tFloat(4.5)));
}

TEST(RewriteTest, ConstValueHelper) {
  EGraph G;
  G.addTerm(tTranslate(1, 2, 3, tUnit()));
  G.rebuild();
  Pattern P = Pattern::parse("(Translate (Vec3 ?x ?y ?z) ?c)");
  auto Matches = P.search(G);
  ASSERT_EQ(Matches.size(), 1u);
  EXPECT_DOUBLE_EQ(constValue(G, Matches[0].second, "y"), 2.0);
}
