//===-- tests/solver_pipeline_test.cpp - Staged solver pipeline -----------===//
//
// Coverage for the staged solver pipeline (Pipeline.h) and the stage-0
// input canonicalization:
//
//  * the duplicate-element pathology: a Union of three identical cubes
//    must synthesize in well under a second with a bounded e-graph (the
//    pre-pipeline behavior was an unbounded fold-list blowup);
//  * dedupeUnionOperands unit behavior: pointer identity on duplicate-free
//    inputs, per-spine multiset collapse, boolean contexts kept separate;
//  * sequence profiling and the stage-1 interval-pruning bounds, including
//    near-band-edge sequences that must NOT be pruned;
//  * pruning soundness differentials: solveAll with pruning on vs. off is
//    bit-identical on adversarial and random sequences, and end-to-end
//    synthesis with pruning disabled reproduces the exact programs on the
//    whole bench corpus (per-module vs. monolithic equivalence);
//  * cancellation: a fired token short-circuits the pipeline between
//    stages and inside the trig frequency scan, and a cancelled synthesis
//    still returns a well-formed partial result;
//  * per-fold-site extraction refresh: incremental refresh after each of a
//    sequence of graph mutations stays bit-identical to the from-scratch
//    fixed-point oracle;
//  * dedup-aware determinization (UniqueElements) and solver-module
//    attribution (InferenceRecord::Modules).
//
//===----------------------------------------------------------------------===//

#include "cad/Sexp.h"
#include "egraph/Extract.h"
#include "egraph/Runner.h"
#include "models/Models.h"
#include "rewrites/Rules.h"
#include "solvers/FunctionSolver.h"
#include "solvers/PolyModule.h"
#include "solvers/Prune.h"
#include "solvers/TrigModule.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

using namespace shrinkray;

// Sanitizer instrumentation slows wall-clock bounds far past the Release
// numbers the pathology gate targets; scale them rather than skip.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SHRINKRAY_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SHRINKRAY_SANITIZED 1
#endif
#endif
#ifdef SHRINKRAY_SANITIZED
static constexpr double TimeBoundScale = 20.0;
#else
static constexpr double TimeBoundScale = 1.0;
#endif

namespace {

constexpr double kPi = 3.14159265358979323846;

double wallSeconds(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

TermPtr identicalCube() {
  // Int literals, matching both the committed sexp reproducer and the Int
  // spelling extraction prefers.
  return tTranslate(tVec3(tInt(1), tInt(2), tInt(3)), tUnit());
}

TermPtr threeIdenticalCubes() {
  return tUnionAll({identicalCube(), identicalCube(), identicalCube()});
}

/// Byte-exact fingerprint of a solve result (what "pruning never changes
/// results" means: same forms, same coefficients, same order, same module).
std::string fingerprint(const std::vector<ClosedForm> &Forms) {
  std::ostringstream S;
  for (const ClosedForm &F : Forms)
    S << static_cast<int>(F.Kind) << "|" << F.A << "|" << F.B << "|" << F.C
      << "|" << F.D << "|" << F.R2 << "|" << F.Module << "\n";
  return S.str();
}

/// Byte-exact transcript of a synthesis result (program sexps and costs).
std::string transcript(const SynthesisResult &R) {
  std::ostringstream S;
  for (const RankedTerm &P : R.Programs)
    S << printSexp(P.T) << " @" << P.Cost << "\n";
  return S.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// The duplicate-element pathology
//===----------------------------------------------------------------------===//

TEST(SolverPathology, ThreeIdenticalCubesSynthesizeFastAndBounded) {
  auto Start = std::chrono::steady_clock::now();
  SynthesisResult R = Synthesizer().synthesize(threeIdenticalCubes());
  double Elapsed = wallSeconds(Start);

  // The recorded pathology took ~90 s / unbounded memory; post-dedup the
  // model is a single cube and must be near-instant with a tiny graph.
  EXPECT_LT(Elapsed, 1.0 * TimeBoundScale);
  EXPECT_LT(R.Stats.ENodes, 2000u);
  EXPECT_EQ(R.Stats.DedupedPrimitives, 2u);

  ASSERT_FALSE(R.Programs.empty());
  // Value-level comparison: extraction prefers Int spellings while the
  // in-code reproducer uses Float literals; printSexp renders both alike.
  EXPECT_EQ(printSexp(R.best()), printSexp(identicalCube()));
  EXPECT_EQ(termPrimitives(R.best()), 1u);
}

TEST(SolverPathology, CommittedExampleMatchesReproducer) {
  // examples/sexp/three_identical_cubes.sexp is the CLI-facing spelling of
  // the same reproducer; keep the two in sync.
  std::ifstream In(std::string(SHRINKRAY_EXAMPLES_SEXP_DIR) +
                   "/three_identical_cubes.sexp");
  ASSERT_TRUE(In.good());
  std::string Text, Line;
  while (std::getline(In, Line))
    if (Line.empty() || Line[0] != ';')
      Text += Line + "\n";
  ParseResult P = parseSexp(Text);
  ASSERT_TRUE(P) << P.Error;
  EXPECT_EQ(printSexp(P.Value), printSexp(threeIdenticalCubes()));
}

//===----------------------------------------------------------------------===//
// Stage 0: input canonicalization (dedupeUnionOperands)
//===----------------------------------------------------------------------===//

TEST(SolverPreprocess, DedupeIsPointerIdentityWithoutDuplicates) {
  TermPtr Clean = tUnion(tTranslate(1, 0, 0, tUnit()), tUnit());
  EXPECT_EQ(dedupeUnionOperands(Clean).get(), Clean.get());

  // Every bench model is duplicate-free: canonicalization must be the
  // identity on the whole corpus (so their synthesis cannot change).
  for (const models::BenchmarkModel &M : models::allModels())
    EXPECT_EQ(dedupeUnionOperands(M.FlatCsg).get(), M.FlatCsg.get())
        << M.Name;
}

TEST(SolverPreprocess, DedupeCollapsesNestedSpines) {
  TermPtr Deduped = dedupeUnionOperands(threeIdenticalCubes());
  EXPECT_TRUE(termEquals(Deduped, identicalCube()));

  // Duplicates interleaved with distinct operands: only the repeats drop,
  // order of first occurrences is preserved.
  TermPtr A = tTranslate(1, 0, 0, tUnit());
  TermPtr B = tTranslate(2, 0, 0, tUnit());
  TermPtr C = tTranslate(3, 0, 0, tUnit());
  TermPtr Mixed = tUnion(A, tUnion(B, tUnion(A, tUnion(C, B))));
  TermPtr Out = dedupeUnionOperands(Mixed);
  EXPECT_EQ(termPrimitives(Out), 3u);
  EXPECT_TRUE(termEquals(Out, tUnion(A, tUnion(B, C)))) << printSexp(Out);
}

TEST(SolverPreprocess, DedupeKeepsBooleanContextsSeparate) {
  TermPtr A = tTranslate(1, 0, 0, tUnit());
  // Each Union spine under the Diff is its own multiset; dedup must not
  // merge across the Diff (only union itself is idempotent).
  TermPtr T = tDiff(tUnion(A, A), tUnion(A, A));
  TermPtr Out = dedupeUnionOperands(T);
  EXPECT_TRUE(termEquals(Out, tDiff(A, A))) << printSexp(Out);

  // A repeated subterm in *different* spines is not a duplicate.
  TermPtr NoDup = tDiff(tUnion(A, tTranslate(2, 0, 0, tUnit())), A);
  EXPECT_EQ(dedupeUnionOperands(NoDup).get(), NoDup.get());
}

TEST(SolverPreprocess, SequenceProfileStatistics) {
  SequenceProfile P = sequenceProfile({1, 2, 4, 8});
  EXPECT_EQ(P.N, 4u);
  EXPECT_EQ(P.Min, 1.0);
  EXPECT_EQ(P.Max, 8.0);
  EXPECT_EQ(P.MaxAbs, 8.0);
  EXPECT_EQ(P.MaxAbsD2, 2.0); // |8 - 2*4 + 2| = 2
  EXPECT_EQ(P.MaxAbsD3, 1.0); // |8 - 3*4 + 3*2 - 1| = 1
  EXPECT_EQ(P.UniqueValues, 4u);

  SequenceProfile Dup = sequenceProfile({5, 5, 5});
  EXPECT_EQ(Dup.UniqueValues, 1u);
  EXPECT_EQ(Dup.range(), 0.0);
  EXPECT_EQ(Dup.MaxAbsD2, 0.0);
}

//===----------------------------------------------------------------------===//
// Stage 1: interval pruning
//===----------------------------------------------------------------------===//

TEST(SolverPrune, AdmissibleFamiliesFollowTheBounds) {
  SolverOptions Opts;

  // Constant data: every family's necessary condition holds (trig needs
  // at least 4 samples, so with 3 it is excluded).
  {
    std::vector<double> Ys = {5, 5, 5};
    unsigned Mask = admissibleFamilies(sequenceProfile(Ys), Opts);
    EXPECT_EQ(Mask & FamConstant, FamConstant);
    EXPECT_EQ(Mask & FamTrig, 0u);
  }
  // A real line: constant pruned (range >> 2*Band), poly families stay.
  {
    std::vector<double> Ys = {0, 2, 4, 6};
    unsigned Mask = admissibleFamilies(sequenceProfile(Ys), Opts);
    EXPECT_EQ(Mask & FamConstant, 0u);
    EXPECT_EQ(Mask & FamPoly1, FamPoly1);
    EXPECT_EQ(Mask & FamPoly2, FamPoly2);
    EXPECT_EQ(Mask & FamTrig, FamTrig);
  }
  // A real quadratic: second differences are 2, so Poly1 is pruned; third
  // differences vanish, so Poly2 stays.
  {
    std::vector<double> Ys = {0, 1, 4, 9, 16};
    unsigned Mask = admissibleFamilies(sequenceProfile(Ys), Opts);
    EXPECT_EQ(Mask & FamPoly1, 0u);
    EXPECT_EQ(Mask & FamPoly2, FamPoly2);
  }
  // Cubic growth: every polynomial family fails its bound.
  {
    std::vector<double> Ys = {0, 1, 8, 27, 64};
    unsigned Mask = admissibleFamilies(sequenceProfile(Ys), Opts);
    EXPECT_EQ(Mask & (FamConstant | FamPoly1 | FamPoly2), 0u);
  }
  // Pruning disabled: everything is admissible regardless of the data.
  {
    SolverOptions Off;
    Off.EnablePruning = false;
    EXPECT_EQ(admissibleFamilies(sequenceProfile({0, 1, 8, 27, 64}), Off),
              FamAll);
  }
}

TEST(SolverPrune, NearBandEdgeSequencesAreNotPruned) {
  SolverOptions Opts; // Epsilon = 1e-3
  // Range exactly 2*epsilon: c = midpoint verifies with |residual| = eps,
  // sitting on the band boundary. The necessary condition must keep it.
  std::vector<double> Ys = {0.0, 0.002, 0.0, 0.002};
  unsigned Mask = admissibleFamilies(sequenceProfile(Ys), Opts);
  EXPECT_EQ(Mask & FamConstant, FamConstant);
  std::optional<ClosedForm> Fit = fitPolyForm(Ys, 0, Opts);
  ASSERT_TRUE(Fit.has_value());
  EXPECT_EQ(Fit->Kind, FormKind::Constant);

  // Just past the boundary the family is gone — and the fit agrees.
  std::vector<double> Beyond = {0.0, 0.0021, 0.0, 0.0021};
  EXPECT_EQ(admissibleFamilies(sequenceProfile(Beyond), Opts) & FamConstant,
            0u);
  EXPECT_FALSE(fitPolyForm(Beyond, 0, Opts).has_value());
}

TEST(SolverPrune, TrigPeriodFeasibility) {
  SolverOptions Opts;
  std::vector<double> Ys = {0, 1, 0, -1, 0, 1, 0, -1}; // period 4
  SequenceProfile P = sequenceProfile(Ys);
  EXPECT_TRUE(trigPeriodFeasible(Ys, 4, P, Opts));
  EXPECT_FALSE(trigPeriodFeasible(Ys, 2, P, Opts)); // |y1 - y3| = 2
  // Period 0 (non-repeating frequency) and periods beyond the sample
  // range carry no constraint.
  EXPECT_TRUE(trigPeriodFeasible(Ys, 0, P, Opts));
  EXPECT_TRUE(trigPeriodFeasible(Ys, Ys.size(), P, Opts));
}

//===----------------------------------------------------------------------===//
// Stage 2: modules, preference order, attribution
//===----------------------------------------------------------------------===//

TEST(SolverPipeline, ConstantSubsumesEverything) {
  FunctionSolver S;
  std::vector<ClosedForm> All = S.solveAll({7, 7, 7, 7, 7, 7});
  ASSERT_EQ(All.size(), 1u);
  EXPECT_EQ(All[0].Kind, FormKind::Constant);
  EXPECT_EQ(std::string(All[0].Module), "poly");
  std::optional<ClosedForm> First = S.solveSequence({7, 7, 7, 7, 7, 7});
  ASSERT_TRUE(First.has_value());
  EXPECT_EQ(First->Kind, FormKind::Constant);
}

TEST(SolverPipeline, ModuleAttribution) {
  FunctionSolver S;
  std::optional<ClosedForm> Line = S.solveSequence({3, 5, 7, 9, 11});
  ASSERT_TRUE(Line.has_value());
  EXPECT_EQ(Line->Kind, FormKind::Poly1);
  EXPECT_EQ(std::string(Line->Module), "poly");

  std::vector<double> Sine;
  for (int I = 0; I < 12; ++I)
    Sine.push_back(10.0 * std::sin(30.0 * I * kPi / 180.0));
  std::vector<ClosedForm> All = S.solveAll(Sine);
  bool SawTrig = false;
  for (const ClosedForm &F : All)
    if (F.Kind == FormKind::Trig) {
      SawTrig = true;
      EXPECT_EQ(std::string(F.Module), "trig");
    }
  EXPECT_TRUE(SawTrig);
}

TEST(SolverPipeline, BreakdownCountsStages) {
  FunctionSolver S;
  (void)S.solveAll({0, 1, 8, 27, 64}); // cubic: all poly families pruned
  (void)S.solveAll({5, 5, 5, 5, 5});   // constant: one fit, rest subsumed
  const SolveBreakdown &B = S.breakdown();
  EXPECT_EQ(B.Sequences, 2u);
  EXPECT_GE(B.FamiliesPruned, 3u); // cubic loses constant/poly1/poly2
  EXPECT_GE(B.FamiliesFitted, 1u);
  EXPECT_EQ(B.CancelledSolves, 0u);
}

//===----------------------------------------------------------------------===//
// Pruning soundness differentials (per-module pipeline vs. unpruned)
//===----------------------------------------------------------------------===//

TEST(SolverPipeline, PruningDifferentialOnAdversarialSequences) {
  std::vector<std::vector<double>> Sequences = {
      {},                                  // empty
      {42},                                // single sample
      {5, 5, 5, 5, 5, 5, 5, 5},            // constant
      {5, 5, 5, 5, 5, 5, 5, 5.002},        // near-band-edge constant
      {0, 2, 4, 6, 8, 10},                 // line
      {1, 2, 5, 10, 17, 26},               // quadratic
      {0, 1, 8, 27, 64, 125},              // cubic (nothing fits)
      {0.001, -0.001, 0.001, -0.001},      // inside-band oscillation
  };
  // Duplicate-heavy: many repeats of two values.
  Sequences.push_back({3, 3, 3, 9, 3, 3, 3, 9, 3, 3, 3, 9});
  // Mixed poly/trig: an offset sinusoid (Figure 19's shape) keeps both the
  // poly and trig candidates alive until stage 2 decides.
  {
    std::vector<double> Mixed;
    for (int I = 0; I < 10; ++I)
      Mixed.push_back(10 + 7 * std::sin((45.0 * I) * kPi / 180.0));
    Sequences.push_back(std::move(Mixed));
  }
  // Deterministic pseudo-random sequences (LCG; no libc rand state).
  uint64_t State = 0x2545F4914F6CDD1DULL;
  for (int Seq = 0; Seq < 8; ++Seq) {
    std::vector<double> Ys;
    for (int I = 0; I < 12; ++I) {
      State = State * 6364136223846793005ULL + 1442695040888963407ULL;
      Ys.push_back(static_cast<double>((State >> 33) % 2000) / 10.0 - 100.0);
    }
    Sequences.push_back(std::move(Ys));
  }

  SolverOptions On;
  SolverOptions Off;
  Off.EnablePruning = false;
  FunctionSolver Pruned(On), Unpruned(Off);
  for (size_t I = 0; I < Sequences.size(); ++I) {
    EXPECT_EQ(fingerprint(Pruned.solveAll(Sequences[I])),
              fingerprint(Unpruned.solveAll(Sequences[I])))
        << "sequence " << I;
    // And the first-only variant agrees too.
    std::optional<ClosedForm> A = Pruned.solveSequence(Sequences[I]);
    std::optional<ClosedForm> B = Unpruned.solveSequence(Sequences[I]);
    EXPECT_EQ(A.has_value(), B.has_value()) << "sequence " << I;
    if (A && B) {
      EXPECT_EQ(fingerprint({*A}), fingerprint({*B})) << "sequence " << I;
    }
  }
  // Pruning did real work on these sequences (else the differential is
  // vacuous).
  EXPECT_GT(Pruned.breakdown().FamiliesPruned, 0u);
  EXPECT_EQ(Unpruned.breakdown().FamiliesPruned, 0u);
}

TEST(SolverPipeline, PruningDifferentialOnBenchCorpus) {
  // End-to-end: synthesis with stage-1 pruning disabled must reproduce the
  // exact programs (sexp and cost) on every bench model.
  for (const models::BenchmarkModel &M : models::allModels()) {
    SynthesisOptions On;
    SynthesisOptions Off;
    Off.Solver.EnablePruning = false;
    SynthesisResult ROn = Synthesizer(On).synthesize(M.FlatCsg);
    SynthesisResult ROff = Synthesizer(Off).synthesize(M.FlatCsg);
    EXPECT_EQ(transcript(ROn), transcript(ROff)) << M.Name;
    EXPECT_EQ(ROn.structureRank(), ROff.structureRank()) << M.Name;
  }
}

//===----------------------------------------------------------------------===//
// Cancellation
//===----------------------------------------------------------------------===//

TEST(SolverPipeline, PreCancelledTokenShortCircuitsSolves) {
  SolverOptions Opts;
  Opts.Cancel = CancelToken::make();
  Opts.Cancel.cancel();
  FunctionSolver S(Opts);
  EXPECT_TRUE(S.solveAll({0, 2, 4, 6, 8}).empty());
  EXPECT_FALSE(S.solveSequence({0, 2, 4, 6, 8}).has_value());
  EXPECT_GE(S.breakdown().CancelledSolves, 2u);
}

TEST(SolverPipeline, CancelStopsTrigScanWithPartialResult) {
  std::vector<double> Sine;
  for (int I = 0; I < 16; ++I)
    Sine.push_back(10.0 * std::sin(30.0 * I * kPi / 180.0));

  SolverOptions Live;
  ASSERT_TRUE(fitTrigForm(Sine, Live).has_value());

  // A fired token stops the frequency scan at its next poll; with no
  // candidate accepted yet, the scan reports nothing rather than hanging.
  SolverOptions Fired;
  Fired.Cancel = CancelToken::make();
  Fired.Cancel.cancel();
  EXPECT_FALSE(fitTrigForm(Sine, Fired).has_value());
}

TEST(SolverPipeline, CancelledSynthesisReturnsPartialResult) {
  // Deterministic mid-pipeline deadline: a pre-fired token makes every
  // stage (saturation rounds, solver modules, trig scan) bail at its next
  // check, and the pipeline must still return a well-formed respelling of
  // the input rather than nothing.
  SynthesisOptions Opts;
  Opts.Limits.Cancel = CancelToken::make();
  Opts.Limits.Cancel.cancel();
  SynthesisResult R =
      Synthesizer(Opts).synthesize(models::modelByName("3362402:gear").FlatCsg);
  EXPECT_TRUE(R.Stats.Cancelled);
  ASSERT_FALSE(R.Programs.empty());
  EXPECT_NE(R.best(), nullptr);
}

//===----------------------------------------------------------------------===//
// Per-fold-site extraction refresh vs. the fixed-point oracle
//===----------------------------------------------------------------------===//

namespace {

void expectKBestMatchesOracle(const EGraph &G, const KBestExtractor &Engine,
                              size_t K, const std::string &Tag) {
  static const AstSizeCost Cost;
  ReferenceKBestExtractor Ref(G, Cost, K);
  for (EClassId Id : G.classIds()) {
    std::vector<RankedTerm> A = Engine.extract(Id);
    std::vector<RankedTerm> B = Ref.extract(Id);
    ASSERT_EQ(A.size(), B.size()) << Tag << " class " << Id;
    for (size_t I = 0; I < A.size(); ++I) {
      EXPECT_EQ(A[I].Cost, B[I].Cost) << Tag << " class " << Id;
      EXPECT_EQ(printSexp(A[I].T), printSexp(B[I].T)) << Tag << " class "
                                                      << Id;
    }
  }
}

} // namespace

TEST(ExtractRefresh, PerSiteRefreshMatchesOracleAcrossMutations) {
  // The synthesizer now refreshes the k-best engine after *every* fold
  // site's insertion instead of once per round; replay that access
  // pattern — create early, mutate, refresh, extract — against the
  // fixed-point oracle after each step.
  EGraph G;
  const TermPtr Model = models::modelByName("3452260:relay-box").FlatCsg;
  EClassId Root = G.addTerm(Model);
  G.rebuild();
  Runner R(RunnerLimits{.IterLimit = 8, .NodeLimit = 60000,
                        .TimeLimitSec = 30.0});
  R.run(G, pipelineRules());

  static const AstSizeCost Cost;
  KBestExtractor Engine(G, Cost, 5);
  expectKBestMatchesOracle(G, Engine, 5, "post-saturation");

  // Simulated fold-site insertions: new equivalent spellings merged into
  // existing classes, one refresh per site.
  std::vector<TermPtr> Sites = {
      tTranslate(0, 0, 0, Model),
      tUnion(tEmpty(), Model),
      tTranslate(0, 0, 0, tUnion(tEmpty(), Model)),
  };
  for (size_t I = 0; I < Sites.size(); ++I) {
    EClassId New = G.addTerm(Sites[I]);
    G.merge(Root, New);
    G.rebuild();
    Engine.refresh();
    expectKBestMatchesOracle(G, Engine, 5, "site " + std::to_string(I));
  }
}

//===----------------------------------------------------------------------===//
// Dedup-aware determinization and module reporting
//===----------------------------------------------------------------------===//

TEST(SolverPipeline, DeterminizeReportsUniqueElements) {
  EGraph G;
  TermPtr Elem = identicalCube();
  EClassId DupList = G.addTerm(tList({Elem, Elem, Elem}));
  EClassId DistinctList = G.addTerm(tList({tTranslate(1, 0, 0, tUnit()),
                                           tTranslate(2, 0, 0, tUnit()),
                                           tTranslate(3, 0, 0, tUnit())}));
  G.rebuild();

  std::vector<ChainDecomposition> Dup = determinize(G, DupList);
  ASSERT_FALSE(Dup.empty());
  EXPECT_EQ(Dup[0].numElements(), 3u);
  EXPECT_EQ(Dup[0].UniqueElements, 1u);

  std::vector<ChainDecomposition> Distinct = determinize(G, DistinctList);
  ASSERT_FALSE(Distinct.empty());
  EXPECT_EQ(Distinct[0].numElements(), 3u);
  EXPECT_EQ(Distinct[0].UniqueElements, 3u);
}

TEST(SolverPipeline, InferenceRecordsCarryModuleAttribution) {
  SynthesisResult R = Synthesizer().synthesize(
      models::modelByName("3362402:gear").FlatCsg);
  ASSERT_FALSE(R.Stats.Records.empty());
  bool SawAny = false;
  for (const InferenceRecord &Rec : R.Stats.Records) {
    for (const std::string &M : Rec.Modules) {
      SawAny = true;
      EXPECT_TRUE(M == "poly" || M == "trig" || M == "linear") << M;
    }
  }
  EXPECT_TRUE(SawAny);
}
