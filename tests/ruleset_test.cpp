//===-- tests/ruleset_test.cpp - Compiled rule database + parallel runner -===//
//
// Coverage for the compiled rule database (RuleSet) and the Runner work
// that rides on it:
//
//  * differential: compiled-group search returns exactly the per-rule
//    searchIn() results — same roots, same substitutions, same order —
//    on every rule database the pipeline uses and on adversarial
//    shared-prefix rule sets over hand-built graphs;
//  * trie shape: shared Bind/Compare prefixes are actually merged;
//  * determinism: serial and parallel saturation produce identical
//    e-graphs and identical (non-timing) reports, run to run;
//  * match-limit window: explosive rules are banned even when incremental
//    search keeps their per-search counts small (the dodge), while rules
//    that merely re-find standing matches are not (the over-trigger);
//  * dirty-log compaction: bounded growth across long sessions, the
//    conservative fallback below the compaction floor, and lease
//    protection for incremental extraction engines.
//
//===----------------------------------------------------------------------===//

#include "cad/Sexp.h"
#include "egraph/Extract.h"
#include "egraph/RuleSet.h"
#include "egraph/Runner.h"
#include "models/Models.h"
#include "rewrites/Rules.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

using namespace shrinkray;

namespace {

TermPtr parse(const std::string &Sexp) {
  ParseResult R = parseSexp(Sexp);
  EXPECT_TRUE(R) << R.Error << " in " << Sexp;
  return R.Value;
}

/// A distinct solid leaf per index.
EClassId addLeaf(EGraph &G, int I) {
  std::ostringstream Os;
  Os << "(Translate (Vec3 " << I << " 0 0) Unit)";
  return G.addTerm(parse(Os.str()));
}

/// Canonical string key for one match: root class plus each variable's
/// binding in the pattern's variable order.
std::string matchKey(const EGraph &G, const std::vector<Symbol> &Vars,
                     EClassId Root, const Subst &S) {
  std::ostringstream Os;
  Os << G.find(Root);
  for (Symbol V : Vars)
    Os << "|" << V.str() << "=" << G.find(S[V]);
  return Os.str();
}

/// Per-rule match-key sequences from the compiled group search, driven
/// over the full op-index candidates with every rule active.
std::vector<std::vector<std::string>> groupedSearch(const EGraph &G,
                                                    const RuleSet &DB) {
  std::vector<std::vector<std::pair<EClassId, Subst>>> Out(DB.numRules());
  for (size_t GI = 0; GI < DB.numGroups(); ++GI) {
    const std::vector<EClassId> &Bucket = G.classesWithOp(DB.groupOp(GI));
    RuleSet::RuleMask Mask =
        RuleSet::RuleMask::firstN(DB.groupRules(GI).size());
    std::vector<RuleSet::Candidate> Cands;
    Cands.reserve(Bucket.size());
    for (EClassId Id : Bucket)
      Cands.push_back({Id, Mask});
    DB.searchGroup(GI, G, Cands, Out);
  }
  std::vector<std::vector<std::string>> Keys(DB.numRules());
  for (size_t R = 0; R < DB.numRules(); ++R)
    for (const auto &[Root, S] : Out[R])
      Keys[R].push_back(matchKey(G, DB.rules()[R].lhs().vars(), Root, S));
  return Keys;
}

/// The same sequences from the pre-existing one-rule-at-a-time engine.
std::vector<std::vector<std::string>>
perRuleSearch(const EGraph &G, const std::vector<Rewrite> &Rules) {
  std::vector<std::vector<std::string>> Keys(Rules.size());
  for (size_t R = 0; R < Rules.size(); ++R) {
    const std::vector<EClassId> &Bucket =
        G.classesWithOp(Rules[R].lhs().rootOp());
    for (const auto &[Root, S] : Rules[R].searchIn(G, Bucket))
      Keys[R].push_back(matchKey(G, Rules[R].lhs().vars(), Root, S));
  }
  return Keys;
}

void expectSameMatches(const EGraph &G, const std::vector<Rewrite> &Rules,
                       const char *Where) {
  RuleSet DB(Rules);
  std::vector<std::vector<std::string>> Grouped = groupedSearch(G, DB);
  std::vector<std::vector<std::string>> PerRule = perRuleSearch(G, Rules);
  for (size_t R = 0; R < Rules.size(); ++R)
    EXPECT_EQ(Grouped[R], PerRule[R])
        << Where << ": rule " << Rules[R].name();
}

/// Saturates a model's graph partway so the differential runs against a
/// graph with real merge history, not just the freshly added term.
EClassId loadModel(EGraph &G, const std::string &Name, size_t Iters) {
  EClassId Root = G.addTerm(models::modelByName(Name).FlatCsg);
  G.rebuild();
  if (Iters > 0) {
    RunnerLimits L;
    L.IterLimit = Iters;
    Runner(L).run(G, pipelineRules());
  }
  return Root;
}

//===----------------------------------------------------------------------===//
// Differential: grouped search == per-rule search
//===----------------------------------------------------------------------===//

TEST(RuleSetDifferential, PipelineRulesOnModels) {
  for (const char *Name : {"3244600:cnc-end-mill", "3171605:card-org",
                           "3148599:box-tray", "3094201:dice"}) {
    for (size_t Iters : {size_t(0), size_t(4)}) {
      EGraph G;
      loadModel(G, Name, Iters);
      expectSameMatches(G, pipelineRules(), Name);
    }
  }
}

TEST(RuleSetDifferential, EveryRuleFamily) {
  EGraph G;
  loadModel(G, "3148599:box-tray", 3);
  expectSameMatches(G, liftingRules(), "lifting");
  expectSameMatches(G, reorderRules(), "reorder");
  expectSameMatches(G, collapseRules(), "collapse");
  expectSameMatches(G, foldRules(), "fold");
  expectSameMatches(G, booleanRules(true, true), "boolean");
  expectSameMatches(G, identityRules(), "identity");
  expectSameMatches(G, listAlgebraRules(), "list-algebra");
  expectSameMatches(G, allRewrites(), "allRewrites");
}

TEST(RuleSetDifferential, AdversarialSharedPrefixes) {
  // Rules chosen so that: one leaf sits on an interior trie node (the
  // plain (Union ?x ?y) program is a strict prefix of three others), a
  // Compare branch (nonlinear ?x ?x) shares the root Bind, two deeper
  // Binds diverge on different operators at the same registers, and a
  // guard sits at one leaf.
  std::vector<Rewrite> Rules;
  Rules.emplace_back("comm", "(Union ?x ?y)", "(Union ?y ?x)");
  Rules.emplace_back("idem", "(Union ?x ?x)", "?x");
  Rules.emplace_back("assoc", "(Union (Union ?a ?b) ?c)",
                     "(Union ?a (Union ?b ?c))");
  Rules.emplace_back("cons-right", "(Union ?x (Fold Union ?y ?zs))",
                     "(Fold Union ?y (Cons ?x ?zs))");
  Rules.emplace_back("cons-left", "(Union (Fold Union ?y ?zs) ?x)",
                     "(Fold Union ?y (Cons ?x ?zs))");
  Rules.emplace_back("guarded", "(Union ?x ?y)", "?x", isConst("x"));

  RuleSet DB(Rules);
  ASSERT_EQ(DB.numGroups(), 1u);
  // The six programs share one root Bind (and comm/idem/guarded share
  // everything): the trie must be strictly smaller than the sum.
  EXPECT_LT(DB.numTrieNodes(0), DB.numUnmergedInstrs(0));

  // A graph exercising every branch: nested unions, a fold with a cons
  // spine, a numeric class (for the guard, in both guard-passing and
  // guard-failing positions), a class holding several Union nodes (via
  // merges), and a self-referential class.
  EGraph G;
  EClassId N5 = G.addTerm(parse("5"));
  EClassId A = addLeaf(G, 1);
  EClassId B = G.addTerm(parse("Sphere"));
  EClassId AB = G.add(ENode(Op(OpKind::Union), {A, B}));
  EClassId ABC = G.add(ENode(Op(OpKind::Union), {AB, N5}));
  G.add(ENode(Op(OpKind::Union), {N5, A})); // guard passes: ?x is const
  G.addTerm(
      parse("(Union Sphere (Fold Union Empty (Cons Sphere Nil)))"));
  // Multi-node class: AB also spelled Union(B, A).
  EClassId BA = G.add(ENode(Op(OpKind::Union), {B, A}));
  G.merge(AB, BA);
  // Self-referential class: C = Union(C, A).
  EClassId Self = G.add(ENode(Op(OpKind::Union), {ABC, A}));
  G.merge(Self, ABC);
  G.rebuild();
  ASSERT_EQ(G.checkInvariants(), "");

  expectSameMatches(G, Rules, "adversarial");
}

TEST(RuleSetTrie, PipelineGroupsShareSpines) {
  std::vector<Rewrite> Rules = pipelineRules();
  RuleSet DB(Rules);
  // Every rule lands in exactly one group.
  size_t Covered = 0;
  for (size_t GI = 0; GI < DB.numGroups(); ++GI) {
    Covered += DB.groupRules(GI).size();
    EXPECT_LE(DB.numTrieNodes(GI), DB.numUnmergedInstrs(GI));
    for (uint32_t R : DB.groupRules(GI))
      EXPECT_EQ(DB.groupOfRule(R), GI);
  }
  EXPECT_EQ(Covered, Rules.size());
  // The Union group holds the fold/lift/boolean rules and must actually
  // share its root Bind.
  bool FoundUnion = false;
  for (size_t GI = 0; GI < DB.numGroups(); ++GI)
    if (DB.groupOp(GI) == Op(OpKind::Union)) {
      FoundUnion = true;
      EXPECT_GT(DB.groupRules(GI).size(), 5u);
      EXPECT_LT(DB.numTrieNodes(GI), DB.numUnmergedInstrs(GI));
    }
  EXPECT_TRUE(FoundUnion);
}

//===----------------------------------------------------------------------===//
// Determinism: serial == parallel, run to run
//===----------------------------------------------------------------------===//

std::string nonTimingFingerprint(const RunnerReport &Rep) {
  std::ostringstream Os;
  Os << static_cast<int>(Rep.Stop) << ";";
  for (const IterationStats &It : Rep.Iterations)
    Os << It.Applied << "," << It.Matches << "," << It.Nodes << ","
       << It.Classes << ";";
  for (const RuleStats &RS : Rep.Rules)
    Os << RS.Name << "," << RS.Matches << "," << RS.Applied << ","
       << RS.FullSearches << "," << RS.IncrementalSearches << "," << RS.Bans
       << ";";
  return Os.str();
}

TEST(RunnerParallel, SerialAndParallelAreBitIdentical) {
  auto runWith = [&](size_t Threads, std::string &Dump) {
    EGraph G;
    G.addTerm(models::modelByName("3148599:box-tray").FlatCsg);
    G.rebuild();
    RunnerLimits L;
    L.NumThreads = Threads;
    RunnerReport Rep = Runner(L).run(G, pipelineRules());
    EXPECT_EQ(G.checkInvariants(), "");
    Dump = G.dump();
    return nonTimingFingerprint(Rep);
  };
  std::string D1, D4a, D4b;
  std::string F1 = runWith(1, D1);
  std::string F4a = runWith(4, D4a);
  std::string F4b = runWith(4, D4b);
  EXPECT_EQ(F1, F4a);
  EXPECT_EQ(F4a, F4b);
  EXPECT_EQ(D1, D4a);
  EXPECT_EQ(D4a, D4b);
}

TEST(RunnerParallel, CompiledAndUncompiledOverloadsAgree) {
  std::vector<Rewrite> Rules = pipelineRules();
  RuleSet DB(Rules);
  EGraph G1, G2;
  G1.addTerm(models::modelByName("3171605:card-org").FlatCsg);
  G2.addTerm(models::modelByName("3171605:card-org").FlatCsg);
  G1.rebuild();
  G2.rebuild();
  RunnerReport R1 = Runner().run(G1, Rules);
  RunnerReport R2 = Runner().run(G2, DB);
  EXPECT_EQ(nonTimingFingerprint(R1), nonTimingFingerprint(R2));
  EXPECT_EQ(G1.dump(), G2.dump());
}

//===----------------------------------------------------------------------===//
// Match-limit semantics under incremental search
//===----------------------------------------------------------------------===//

TEST(MatchLimitWindow, ExplosiveRuleIsBannedUnderIncrementalSearch) {
  // The dodge scenario: cons-repeat-grow walks outward along a literal
  // 80-element spine of one repeated solid, merging one level per
  // iteration. Incremental search keeps every per-search match count at
  // 1-2 (old levels leave the dirty closure, so nothing is re-found),
  // but the rule's distinct-merge window accumulates past the limit —
  // under the old per-search-count semantics it would never be banned.
  EGraph G;
  EClassId X = addLeaf(G, 7);
  EClassId Spine = G.addTerm(parse("Nil"));
  for (int I = 0; I < 80; ++I)
    Spine = G.add(ENode(Op(OpKind::Cons), {X, Spine}));
  for (int I = 0; I < 4000; ++I) // keep the dirty closure below the
    G.add(ENode(Op::makeInt(I + 1000), {})); // full-search fallback
  G.rebuild();
  RunnerLimits L;
  L.MatchLimit = 50;
  L.IterLimit = 200;
  RunnerReport Rep = Runner(L).run(G, listAlgebraRules());
  size_t GrowBans = 0;
  for (const RuleStats &RS : Rep.Rules)
    if (RS.Name == "cons-repeat-grow")
      GrowBans = RS.Bans;
  EXPECT_GE(GrowBans, 1u);
  // Proof the ban came from the window: no iteration found more matches
  // (across ALL rules) than a fraction of the limit, so the per-search
  // trigger cannot have fired.
  for (const IterationStats &It : Rep.Iterations)
    EXPECT_LE(It.Matches, L.MatchLimit / 2);
  EXPECT_EQ(G.checkInvariants(), "");
}

TEST(MatchLimitWindow, RefoundStandingMatchesDoNotOverTrigger) {
  // Ten disjoint unions: commutativity merges each once (10 distinct
  // merges), then only re-finds the same standing matches. Total found
  // across the run far exceeds the limit; the distinct-merge window stays
  // at 10 and the per-search count at ~20, so nothing may be banned.
  EGraph G;
  for (int I = 1; I <= 10; ++I)
    G.add(ENode(Op(OpKind::Union),
                {addLeaf(G, I), addLeaf(G, 100 + I)}));
  G.rebuild();
  RunnerLimits L;
  L.MatchLimit = 25;
  L.IterLimit = 12;
  RunnerReport Rep = Runner(L).run(
      G, booleanRules(/*IncludeAssociativity=*/false,
                      /*IncludeCommutativity=*/true));
  size_t TotalFound = 0;
  for (const RuleStats &RS : Rep.Rules) {
    TotalFound += RS.Matches;
    EXPECT_EQ(RS.Bans, 0u) << RS.Name;
  }
  EXPECT_GT(TotalFound, L.MatchLimit); // the old accumulate-everything
                                       // semantics would have banned
}

//===----------------------------------------------------------------------===//
// Dirty-log compaction
//===----------------------------------------------------------------------===//

TEST(DirtyLogCompaction, CompactionDropsDeadPrefixAndFallsBackSoundly) {
  EGraph G;
  G.addTerm(models::modelByName("3171605:card-org").FlatCsg);
  G.rebuild();
  ASSERT_GT(G.dirtyLogSize(), 0u);
  uint64_t Mid = G.generation() / 2;
  G.compactDirtyLog(Mid);
  // Cursors at or above the floor stay exact...
  EXPECT_TRUE(G.takeDirtySince(G.generation()).empty());
  // ...and a cursor behind the floor degrades to every class (sound).
  EXPECT_EQ(G.takeDirtySince(0), G.classIds());
  G.compactDirtyLog(G.generation());
  EXPECT_EQ(G.dirtyLogSize(), 0u);
}

TEST(DirtyLogCompaction, LongSessionGrowthIsBounded) {
  // Many saturation runs against one graph, each adding fresh structure:
  // without compaction the log grows with total session mutations; with
  // it, the log at rest holds at most the entries the *last* run's
  // cursors still straddle.
  EGraph G;
  std::vector<Rewrite> Rules = pipelineRules();
  RuleSet DB(Rules);
  Runner R;
  size_t MaxLogAtRest = 0;
  for (int Round = 0; Round < 6; ++Round) {
    std::ostringstream Os;
    Os << "(Union (Translate (Vec3 " << Round + 1
       << " 0 0) Unit) (Translate (Vec3 0 0 " << Round + 1
       << ") Sphere))";
    G.addTerm(parse(Os.str()));
    G.rebuild();
    R.run(G, DB);
    MaxLogAtRest = std::max(MaxLogAtRest, G.dirtyLogSize());
  }
  // The generation counter records every mutation of the session; the
  // compacted log must stay well below it.
  EXPECT_GT(G.generation(), 8u * MaxLogAtRest);
  EXPECT_EQ(G.checkInvariants(), "");
}

TEST(DirtyLogCompaction, LeaseProtectsIncrementalExtraction) {
  EGraph G;
  EClassId Root = G.addTerm(
      models::modelByName("3244600:cnc-end-mill").FlatCsg);
  G.rebuild();
  AstSizeCost Cost;
  Extractor Eng(G, Cost); // acquires a lease at the current generation
  // A saturation run that compacts the log each iteration. The lease
  // must keep the suffix the engine's refresh() will ask for.
  Runner().run(G, pipelineRules());
  ASSERT_GT(G.dirtyLogSize(), 0u) << "lease did not hold the log suffix";
  Eng.refresh();
  ReferenceExtractor Oracle(G, Cost);
  ASSERT_TRUE(Eng.bestCost(Root).has_value());
  EXPECT_EQ(*Eng.bestCost(Root), *Oracle.bestCost(Root));
  EXPECT_TRUE(termEquals(Eng.extract(Root), Oracle.extract(Root)));
}

TEST(MatchLimitWindow, MidApplyBanCapsStreakNearLimit) {
  // Six staggered spine walks (cons-repeat-grow advances one level per
  // spine per iteration) accumulate 6 distinct merges per incremental
  // iteration. With MatchLimit = 30 the streak crosses the limit partway
  // through an iteration; the mid-apply trigger must ban the rule at
  // exactly limit+1 cumulative merges — discarding the iteration's
  // remaining matches and rolling the cursor back — rather than letting
  // the whole iteration through and banning at the next one (the old
  // policy, which overshoots by up to one iteration's merges).
  auto build = [](EGraph &G) {
    // Pre-seed every Int literal the walk will materialize, so both the
    // banned and the unlimited runs allocate identical class ids and the
    // final dumps are comparable bit for bit.
    for (int K = 1; K <= 16; ++K)
      G.addTerm(parse(std::to_string(K)));
    for (int S = 0; S < 6; ++S) {
      EClassId X = addLeaf(G, 500 + S);
      EClassId One = G.addTerm(parse("1"));
      EClassId Level = G.add(ENode(Op(OpKind::Repeat), {X, One}));
      for (int L = 0; L < 12; ++L)
        Level = G.add(ENode(Op(OpKind::Cons), {X, Level}));
    }
    for (int I = 0; I < 2000; ++I) // keep dirty closures below the
      G.add(ENode(Op::makeInt(I + 5000), {})); // full-search fallback
    G.rebuild();
  };

  std::vector<Rewrite> Rules;
  for (Rewrite &R : listAlgebraRules())
    if (R.name() == "cons-repeat-grow")
      Rules.push_back(std::move(R));
  ASSERT_EQ(Rules.size(), 1u);

  EGraph G;
  build(G);
  RunnerLimits L;
  L.MatchLimit = 30;
  L.IterLimit = 80;
  RunnerReport Rep = Runner(L).run(G, Rules);
  EXPECT_GE(Rep.Rules[0].Bans, 1u);
  // The window trigger, not the per-search one: every search stayed
  // under the limit.
  for (const IterationStats &It : Rep.Iterations)
    EXPECT_LE(It.Matches, L.MatchLimit);
  // The streak was cut at exactly limit+1 cumulative merges: some
  // iteration prefix sums to 31. The old next-iteration trigger would
  // jump from 30 straight to 36.
  std::vector<size_t> Prefix;
  size_t Sum = 0;
  for (const IterationStats &It : Rep.Iterations)
    Prefix.push_back(Sum += It.Applied);
  EXPECT_NE(std::find(Prefix.begin(), Prefix.end(), L.MatchLimit + 1),
            Prefix.end())
      << "streak not capped at MatchLimit + 1";
  EXPECT_EQ(G.checkInvariants(), "");

  // Rollback soundness: the discarded matches are re-found after the ban,
  // and the run converges to the identical graph an unlimited run builds.
  EGraph Unlimited;
  build(Unlimited);
  RunnerLimits UL;
  UL.IterLimit = 80;
  RunnerReport URep = Runner(UL).run(Unlimited, Rules);
  EXPECT_EQ(URep.Stop, StopReason::Saturated);
  EXPECT_EQ(Rep.Stop, StopReason::Saturated);
  EXPECT_EQ(G.dump(), Unlimited.dump());
  EXPECT_EQ(Rep.Rules[0].Applied, URep.Rules[0].Applied);
}

//===----------------------------------------------------------------------===//
// Wide groups (masks past 64 rules)
//===----------------------------------------------------------------------===//

TEST(RuleSetWideGroup, GroupsPast64RulesKeepExactMasks) {
  // 70 rules rooted at Union exceed one 64-bit mask word. The compiled
  // group must keep exact per-candidate rule selection for every member
  // — the former single-word mask would silently drop rules 64..69.
  std::vector<Rewrite> Rules;
  for (int I = 0; I < 70; ++I) {
    std::string Name = "wide-" + std::to_string(I);
    if (I % 2 == 0)
      Rules.emplace_back(Name, "(Union ?a ?b)", "(Union ?b ?a)");
    else
      Rules.emplace_back(Name, "(Union (Translate ?v ?x) ?b)",
                         "(Union ?b (Translate ?v ?x))");
  }

  EGraph G;
  for (int I = 0; I < 5; ++I)
    G.add(ENode(Op(OpKind::Union), {addLeaf(G, I), addLeaf(G, 50 + I)}));
  G.rebuild();

  RuleSet DB(Rules);
  ASSERT_EQ(DB.numGroups(), 1u);
  ASSERT_EQ(DB.groupRules(0).size(), 70u);

  // Full differential: grouped search == per-rule search for all 70.
  expectSameMatches(G, Rules, "wide group");

  // Mask bits above 63 select exactly their rule: a candidate list that
  // enables only local rule 69 must fill only Out[69].
  const std::vector<EClassId> &Bucket =
      G.classesWithOp(DB.groupOp(0));
  RuleSet::RuleMask Only69;
  Only69.set(69);
  std::vector<RuleSet::Candidate> Cands;
  for (EClassId Id : Bucket)
    Cands.push_back({Id, Only69});
  std::vector<std::vector<std::pair<EClassId, Subst>>> Out(DB.numRules());
  DB.searchGroup(0, G, Cands, Out);
  for (size_t R = 0; R < Out.size(); ++R) {
    if (R == 69)
      EXPECT_FALSE(Out[R].empty());
    else
      EXPECT_TRUE(Out[R].empty()) << "rule " << R;
  }

  // End to end: the Runner drives the wide group to saturation with the
  // masks flowing through scheduling, and the result is sound.
  RunnerLimits L;
  L.IterLimit = 8;
  Runner(L).run(G, DB);
  EXPECT_EQ(G.checkInvariants(), "");
}

TEST(DirtyLogCompaction, ReleasedLeaseUnblocksCompaction) {
  EGraph G;
  G.addTerm(parse("(Union Unit Sphere)"));
  G.rebuild();
  {
    AstSizeCost Cost;
    Extractor Eng(G, Cost);
    G.addTerm(parse("(Translate (Vec3 9 9 9) Sphere)"));
    G.rebuild();
    G.compactDirtyLog(G.generation());
    EXPECT_GT(G.dirtyLogSize(), 0u); // lease pins the suffix
  }
  G.compactDirtyLog(G.generation()); // lease released: everything dead
  EXPECT_EQ(G.dirtyLogSize(), 0u);
}

} // namespace
