//===-- tests/solver_test.cpp - Function solver tests ---------------------===//

#include "solvers/FunctionSolver.h"

#include "cad/Sexp.h"
#include "linalg/Vec3.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace shrinkray;

namespace {

std::vector<double> sample(FormKind Kind, double A, double B, double C,
                           size_t N) {
  ClosedForm F;
  F.Kind = Kind;
  F.A = A;
  F.B = B;
  F.C = C;
  std::vector<double> Out(N);
  for (size_t I = 0; I < N; ++I)
    Out[I] = F.evaluate(static_cast<double>(I));
  return Out;
}

} // namespace

TEST(ClosedFormTest, EvaluateAllKinds) {
  ClosedForm Constant{FormKind::Constant, 0, 0, 5.0};
  EXPECT_DOUBLE_EQ(Constant.evaluate(10), 5.0);
  ClosedForm Line{FormKind::Poly1, 0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(Line.evaluate(3), 7.0);
  ClosedForm Quad{FormKind::Poly2, 1.0, 0.0, -4.0};
  EXPECT_DOUBLE_EQ(Quad.evaluate(3), 5.0);
  ClosedForm Trig{FormKind::Trig, 2.0, 90.0, 0.0};
  EXPECT_NEAR(Trig.evaluate(1), 2.0, 1e-12);
}

TEST(ClosedFormTest, ToTermLineRendersCompactly) {
  ClosedForm Line{FormKind::Poly1, 0, 2.0, 2.0};
  TermPtr T = Line.toTerm(tVar("i"));
  EXPECT_EQ(printSexp(T), "(Add (Mul 2 (Var i)) 2)");
}

TEST(ClosedFormTest, ToTermElidesZeroAndOne) {
  ClosedForm Id{FormKind::Poly1, 0, 1.0, 0.0};
  EXPECT_EQ(printSexp(Id.toTerm(tVar("i"))), "(Var i)");
  ClosedForm NegConst{FormKind::Poly1, 0, 2.0, -1.0};
  EXPECT_EQ(printSexp(NegConst.toTerm(tVar("i"))),
            "(Sub (Mul 2 (Var i)) 1)");
}

TEST(ClosedFormTest, ToTermRotationHeuristic) {
  // Gear teeth: y = 6*(i+1); rendered as 360 * (i+1) / 60.
  ClosedForm Rot{FormKind::Poly1, 0, 6.0, 6.0};
  TermPtr T = Rot.toTerm(tVar("i"), /*RotationPeriod=*/60);
  EXPECT_EQ(printSexp(T),
            "(Div (Mul 360 (Add (Var i) 1)) 60)");
}

TEST(ClosedFormTest, ToTermRotationWithZeroPhase) {
  ClosedForm Rot{FormKind::Poly1, 0, 6.0, 0.0};
  TermPtr T = Rot.toTerm(tVar("i"), /*RotationPeriod=*/60);
  EXPECT_EQ(printSexp(T), "(Div (Mul 360 (Var i)) 60)");
}

TEST(ClosedFormTest, TableClassification) {
  EXPECT_EQ((ClosedForm{FormKind::Poly1, 0, 1, 0}).tableClass(), "d1");
  EXPECT_EQ((ClosedForm{FormKind::Poly2, 1, 1, 0}).tableClass(), "d2");
  EXPECT_EQ((ClosedForm{FormKind::Trig, 1, 90, 0}).tableClass(), "theta");
}

TEST(SolverTest, ExactLine) {
  FunctionSolver S;
  auto F = S.solveSequence(sample(FormKind::Poly1, 0, 2.0, 2.0, 5));
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Kind, FormKind::Poly1);
  EXPECT_DOUBLE_EQ(F->B, 2.0);
  EXPECT_DOUBLE_EQ(F->C, 2.0);
}

TEST(SolverTest, ConstantSequencePrefersConstant) {
  FunctionSolver S;
  auto F = S.solveSequence({125.0, 125.0, 125.0, 125.0});
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Kind, FormKind::Constant);
  EXPECT_DOUBLE_EQ(F->C, 125.0);
}

TEST(SolverTest, PaperNoisyExample) {
  // Sec. 4.1: [5.001, 10.00001, 14.9998, 20.0] with eps = 0.001 must yield
  // 5*(i+1), i.e. slope 5, intercept 5.
  FunctionSolver S;
  auto F = S.solveSequence({5.001, 10.00001, 14.9998, 20.0});
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Kind, FormKind::Poly1);
  EXPECT_DOUBLE_EQ(F->B, 5.0);
  EXPECT_DOUBLE_EQ(F->C, 5.0);
}

TEST(SolverTest, NoiseBeyondEpsilonRejectsLine) {
  FunctionSolver S;
  // 0.1 of noise >> eps: no polynomial should verify...
  auto F = S.fitPoly({5.1, 10.0, 14.9, 20.0}, 1);
  EXPECT_FALSE(F.has_value());
}

TEST(SolverTest, QuadraticSequence) {
  FunctionSolver S;
  auto F = S.solveSequence(sample(FormKind::Poly2, 1.5, -2.0, 3.0, 6));
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Kind, FormKind::Poly2);
  EXPECT_DOUBLE_EQ(F->A, 1.5);
  EXPECT_DOUBLE_EQ(F->B, -2.0);
  EXPECT_DOUBLE_EQ(F->C, 3.0);
}

TEST(SolverTest, LinePreferredOverQuadratic) {
  // A line is also a degenerate quadratic; the simpler class must win.
  FunctionSolver S;
  auto F = S.solveSequence(sample(FormKind::Poly1, 0, 3.0, 1.0, 6));
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Kind, FormKind::Poly1);
}

TEST(SolverTest, TrigSequenceQuarterTurns) {
  // Paper example: x components [-1, -1, 1, 1] == sqrt2*sin(90 i + 225)...
  // our solver finds an equivalent sinusoid within the band.
  FunctionSolver S;
  std::vector<double> Ys = {-1.0, -1.0, 1.0, 1.0};
  auto F = S.fitTrig(Ys);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Kind, FormKind::Trig);
  for (size_t I = 0; I < Ys.size(); ++I)
    EXPECT_NEAR(F->evaluate(static_cast<double>(I)), Ys[I], 1e-3);
}

TEST(SolverTest, TrigHexFlowerPattern) {
  // Figure 19: 7.07 * sin(90 i + 315). With only 4 samples a quadratic
  // aliases the sinusoid, so solveAll must report BOTH forms (this is what
  // powers the paper's diversity result, Sec. 6.3).
  FunctionSolver S;
  std::vector<double> Ys = sample(FormKind::Trig, 7.07, 90.0, 315.0, 4);
  std::vector<ClosedForm> Forms = S.solveAll(Ys);
  bool HasTrig = false;
  for (const ClosedForm &F : Forms) {
    if (F.Kind != FormKind::Trig)
      continue;
    HasTrig = true;
    for (int I = 0; I < 4; ++I)
      EXPECT_NEAR(F.evaluate(I), 7.07 * std::sin(degToRad(90.0 * I + 315.0)),
                  1e-3);
  }
  EXPECT_TRUE(HasTrig);
}

TEST(SolverTest, SolveAllReportsPolyAndTrigWhenAliased) {
  FunctionSolver S;
  std::vector<ClosedForm> Forms =
      S.solveAll(sample(FormKind::Trig, 5.0, 90.0, 315.0, 4));
  ASSERT_GE(Forms.size(), 2u);
  EXPECT_NE(Forms[0].Kind, FormKind::Trig); // simplest (poly) first
  EXPECT_EQ(Forms.back().Kind, FormKind::Trig);
}

TEST(SolverTest, SolveAllConstantSubsumes) {
  FunctionSolver S;
  std::vector<ClosedForm> Forms = S.solveAll({3.0, 3.0, 3.0, 3.0});
  ASSERT_EQ(Forms.size(), 1u);
  EXPECT_EQ(Forms[0].Kind, FormKind::Constant);
}

TEST(SolverTest, TrigRejectsAperiodicData) {
  FunctionSolver S;
  // Monotone data cannot be a pure sinusoid within eps.
  EXPECT_FALSE(S.fitTrig({0.0, 10.0, 25.0, 70.0, 300.0}).has_value());
}

TEST(SolverTest, SolveSequenceFallsBackToTrig) {
  FunctionSolver S;
  auto F = S.solveSequence(sample(FormKind::Trig, 2.0, 120.0, 30.0, 6));
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Kind, FormKind::Trig);
}

TEST(SolverTest, EmptySequenceFails) {
  FunctionSolver S;
  EXPECT_FALSE(S.solveSequence({}).has_value());
}

TEST(SolverTest, SingletonIsConstant) {
  FunctionSolver S;
  auto F = S.solveSequence({42.0});
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Kind, FormKind::Constant);
  EXPECT_DOUBLE_EQ(F->C, 42.0);
}

TEST(SolverTest, NicingSnapsToSimpleRationals) {
  FunctionSolver S;
  // Slope 0.5 with slight noise: snapped to exactly 1/2.
  std::vector<double> Ys;
  for (int I = 0; I < 8; ++I)
    Ys.push_back(0.5 * I + 0.25 + (I % 2 ? 4e-4 : -4e-4));
  auto F = S.fitPoly(Ys, 1);
  ASSERT_TRUE(F.has_value());
  EXPECT_DOUBLE_EQ(F->B, 0.5);
  EXPECT_DOUBLE_EQ(F->C, 0.25);
}

TEST(SolverTest, VerifyRespectsEpsilon) {
  FunctionSolver S;
  ClosedForm Line{FormKind::Poly1, 0, 2.0, 0.0};
  EXPECT_TRUE(S.verify(Line, {0.0005, 2.0, 3.9995}));
  EXPECT_FALSE(S.verify(Line, {0.002, 2.0, 4.0}));
}

TEST(SolverTest, RotationPeriodDetection) {
  ClosedForm Gear{FormKind::Poly1, 0, 6.0, 6.0};
  EXPECT_EQ(rotationPeriod(Gear), 60);
  ClosedForm Slots{FormKind::Poly1, 0, 30.0, 0.0};
  EXPECT_EQ(rotationPeriod(Slots), 12);
  ClosedForm NonDivisor{FormKind::Poly1, 0, 7.0, 0.0};
  EXPECT_EQ(rotationPeriod(NonDivisor), 0);
  ClosedForm Flat{FormKind::Poly1, 0, 0.0, 3.0};
  EXPECT_EQ(rotationPeriod(Flat), 0);
}

TEST(SolverTest, Linear2RegularGrid) {
  // Figure 14: x = 24 i - 12 over a 2x2 grid.
  FunctionSolver S;
  std::vector<std::pair<double, double>> Idx = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<double> Xs = {-12, -12, 12, 12};
  auto F = S.fitLinear2(Idx, Xs);
  ASSERT_TRUE(F.has_value());
  EXPECT_DOUBLE_EQ(F->A, 24.0);
  EXPECT_DOUBLE_EQ(F->B, 0.0);
  EXPECT_DOUBLE_EQ(F->C, -12.0);
}

TEST(SolverTest, Linear2BothIndices) {
  FunctionSolver S;
  std::vector<std::pair<double, double>> Idx;
  std::vector<double> Ys;
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 4; ++J) {
      Idx.emplace_back(I, J);
      Ys.push_back(3.0 * I - 2.0 * J + 7.0);
    }
  auto F = S.fitLinear2(Idx, Ys);
  ASSERT_TRUE(F.has_value());
  EXPECT_DOUBLE_EQ(F->A, 3.0);
  EXPECT_DOUBLE_EQ(F->B, -2.0);
  EXPECT_DOUBLE_EQ(F->C, 7.0);
}

TEST(SolverTest, Linear2DegenerateColumn) {
  // j never varies: rank-deficient; solver falls back to a 1D fit.
  FunctionSolver S;
  std::vector<std::pair<double, double>> Idx = {{0, 0}, {1, 0}, {2, 0}};
  std::vector<double> Ys = {1.0, 3.0, 5.0};
  auto F = S.fitLinear2(Idx, Ys);
  ASSERT_TRUE(F.has_value());
  EXPECT_DOUBLE_EQ(F->A, 2.0);
  EXPECT_DOUBLE_EQ(F->C, 1.0);
}

TEST(SolverTest, Linear2RejectsNonPlanarData) {
  FunctionSolver S;
  std::vector<std::pair<double, double>> Idx = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<double> Ys = {0.0, 1.0, 2.0, 50.0};
  EXPECT_FALSE(S.fitLinear2(Idx, Ys).has_value());
}

TEST(SolverTest, CustomEpsilonWidensBand) {
  SolverOptions Opts;
  Opts.Epsilon = 0.2;
  FunctionSolver S(Opts);
  auto F = S.fitPoly({5.1, 10.0, 14.9, 20.0}, 1);
  ASSERT_TRUE(F.has_value());
  EXPECT_DOUBLE_EQ(F->B, 5.0);
}
