//===-- tests/extract_engine_test.cpp - Worklist extraction engine --------===//
//
// Differential and adversarial coverage for the worklist-driven, incremental
// extraction engine:
//
//  * parent-index (canonicalParents) consistency under merges and repair;
//  * worklist one-best vs the fixed-point ReferenceExtractor: bit-identical
//    costs, choice nodes, and extracted terms for every class of every
//    bench model's saturated e-graph;
//  * k-best worklist vs ReferenceKBestExtractor: bit-identical candidate
//    lists, plus the distinctness/ordering properties the paper's top-k
//    contract requires;
//  * incremental refresh() equivalence: refreshing across extra saturation
//    rounds and adversarial merge sequences must land on exactly the state
//    a from-scratch derivation computes;
//  * value-level deduplication: Int/Float respellings never masquerade as
//    program diversity.
//
//===----------------------------------------------------------------------===//

#include "egraph/Extract.h"
#include "egraph/Runner.h"
#include "models/Models.h"
#include "rewrites/Rules.h"
#include "support/Rng.h"
#include "synth/Cost.h"

#include <gtest/gtest.h>

#include <memory>

using namespace shrinkray;

namespace {

/// Saturates \p T's e-graph with the pipeline rules under test-sized fuel.
EClassId saturate(EGraph &G, const TermPtr &T, size_t Iters = 24) {
  EClassId Root = G.addTerm(T);
  G.rebuild();
  Runner R(RunnerLimits{.IterLimit = Iters,
                        .NodeLimit = 60000,
                        .TimeLimitSec = 30.0});
  R.run(G, pipelineRules());
  return Root;
}

/// Asserts the worklist one-best engine agrees bit-for-bit with the
/// fixed-point oracle on every class: same finiteness, same exact cost,
/// same canonical choice node, same extracted term.
void expectOneBestIdentical(const EGraph &G, const Extractor &Engine,
                            const ReferenceExtractor &Oracle,
                            const std::string &Tag) {
  for (EClassId Id : G.classIds()) {
    std::optional<double> A = Engine.bestCost(Id);
    std::optional<double> B = Oracle.bestCost(Id);
    ASSERT_EQ(A.has_value(), B.has_value())
        << Tag << ": extractability differs at class " << Id;
    if (!A)
      continue;
    ASSERT_EQ(*A, *B) << Tag << ": cost differs at class " << Id;
    const ENode *CA = Engine.choiceNode(Id);
    const ENode *CB = Oracle.choiceNode(Id);
    ASSERT_NE(CA, nullptr) << Tag << ": class " << Id;
    ASSERT_NE(CB, nullptr) << Tag << ": class " << Id;
    ASSERT_TRUE(G.canonicalize(*CA) == G.canonicalize(*CB))
        << Tag << ": choice node differs at class " << Id << " ("
        << CA->Operator.str() << " vs " << CB->Operator.str() << ")";
    ASSERT_TRUE(termEquals(Engine.extract(Id), Oracle.extract(Id)))
        << Tag << ": extracted term differs at class " << Id;
  }
}

/// Asserts two k-best extractions agree bit-for-bit on every class.
template <typename EngineT, typename OracleT>
void expectKBestIdentical(const EGraph &G, const EngineT &Engine,
                          const OracleT &Oracle, const std::string &Tag) {
  for (EClassId Id : G.classIds()) {
    std::vector<RankedTerm> A = Engine.extract(Id);
    std::vector<RankedTerm> B = Oracle.extract(Id);
    ASSERT_EQ(A.size(), B.size())
        << Tag << ": candidate count differs at class " << Id;
    for (size_t I = 0; I < A.size(); ++I) {
      ASSERT_EQ(A[I].Cost, B[I].Cost)
          << Tag << ": cost of candidate " << I << " differs at class " << Id;
      ASSERT_TRUE(termEquals(A[I].T, B[I].T))
          << Tag << ": candidate " << I << " differs at class " << Id;
    }
  }
}

/// A merge-rich pool graph whose roots carry no constant-folding analysis
/// (so arbitrary pool merges never violate the merged-constants invariant).
std::vector<EClassId> buildMergePool(EGraph &G) {
  std::vector<EClassId> Pool;
  for (int I = 0; I < 20; ++I) {
    TermPtr Leaf = I % 2 ? tUnit() : tSphere();
    TermPtr T = tTranslate(static_cast<double>(I % 5), 0, 0, Leaf);
    if (I % 3 == 0)
      T = tUnion(T, tEmpty());
    if (I % 4 == 0)
      T = tScale(2, 2, 2, T);
    Pool.push_back(G.addTerm(T));
  }
  G.rebuild();
  return Pool;
}

} // namespace

//===----------------------------------------------------------------------===//
// Parent index
//===----------------------------------------------------------------------===//

TEST(ParentIndexTest, LeafClassListsItsReferencingNodes) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tTranslate(1, 2, 3, tUnit()), tUnit()));
  EClassId Unit = G.addTerm(tUnit());
  G.rebuild();

  const auto &Parents = G.canonicalParents(Unit);
  // Unit is referenced by the Translate node and by the Union root.
  ASSERT_EQ(Parents.size(), 2u);
  for (const auto &[Node, Class] : Parents) {
    bool IsTranslate = Node.kind() == OpKind::Translate;
    bool IsUnion = Node.kind() == OpKind::Union;
    EXPECT_TRUE(IsTranslate || IsUnion);
    if (IsUnion) {
      EXPECT_EQ(G.find(Class), G.find(Root));
    }
  }
}

TEST(ParentIndexTest, MergeUnionsParentSetsAndCompactsDuplicates) {
  EGraph G;
  EClassId U = G.addTerm(tUnion(tUnit(), tSphere()));
  EClassId D = G.addTerm(tDiff(tSphere(), tUnit()));
  EClassId Unit = G.addTerm(tUnit());
  EClassId Sphere = G.addTerm(tSphere());
  (void)U;
  (void)D;
  G.merge(Unit, Sphere); // Union(a,a) and Diff(a,a): parents become congruent
  G.rebuild();
  ASSERT_EQ(G.checkInvariants(), "");

  const auto &Parents = G.canonicalParents(Unit);
  // After compaction each canonical parent node appears exactly once.
  ASSERT_EQ(Parents.size(), 2u);
  for (const auto &[Node, Class] : Parents) {
    ENode Canon = G.canonicalize(Node);
    bool Refers = false;
    for (EClassId Kid : Canon.Children)
      Refers |= G.find(Kid) == G.find(Unit);
    EXPECT_TRUE(Refers);
    EXPECT_EQ(G.lookup(Canon), std::optional<EClassId>(G.find(Class)));
  }
}

TEST(ParentIndexTest, SelfReferentialClassIsItsOwnParent) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tEmpty()));
  EClassId Unit = G.addTerm(tUnit());
  G.merge(Root, Unit);
  G.rebuild();
  ASSERT_EQ(G.checkInvariants(), "");

  bool SelfLoop = false;
  for (const auto &[Node, Class] : G.canonicalParents(Root)) {
    (void)Node;
    SelfLoop |= G.find(Class) == G.find(Root);
  }
  EXPECT_TRUE(SelfLoop);
}

TEST(ParentIndexTest, InvariantHoldsUnderAdversarialMerges) {
  for (int Seed = 0; Seed < 6; ++Seed) {
    Rng R(static_cast<uint64_t>(Seed) * 601 + 7);
    EGraph G;
    std::vector<EClassId> Pool = buildMergePool(G);
    for (int Step = 0; Step < 15; ++Step) {
      G.merge(Pool[R.nextBelow(Pool.size())], Pool[R.nextBelow(Pool.size())]);
      if (Step % 3 == 0)
        G.rebuild();
      if (!G.isDirty()) {
        // Exercise compaction mid-sequence, then re-validate everything.
        for (EClassId Id : G.classIds())
          (void)G.canonicalParents(Id);
        ASSERT_EQ(G.checkInvariants(), "")
            << "seed " << Seed << " step " << Step;
      }
    }
    G.rebuild();
    ASSERT_EQ(G.checkInvariants(), "") << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Differential: worklist engines vs fixed-point oracles, every bench model
//===----------------------------------------------------------------------===//

TEST(ExtractDifferentialTest, OneBestMatchesOracleOnAllBenchModels) {
  AstSizeCost Cost;
  for (const models::BenchmarkModel &M : models::allModels()) {
    EGraph G;
    saturate(G, M.FlatCsg);
    Extractor Engine(G, Cost);
    ReferenceExtractor Oracle(G, Cost);
    expectOneBestIdentical(G, Engine, Oracle, M.Name);
  }
}

TEST(ExtractDifferentialTest, KBestMatchesOracleOnAllBenchModels) {
  AstSizeCost Cost;
  for (const models::BenchmarkModel &M : models::allModels()) {
    EGraph G;
    saturate(G, M.FlatCsg);
    KBestExtractor Engine(G, Cost, 5);
    ReferenceKBestExtractor Oracle(G, Cost, 5);
    expectKBestIdentical(G, Engine, Oracle, M.Name);
  }
}

TEST(ExtractDifferentialTest, RewardLoopsCostAgreesOnTailModel) {
  // The reward-loops cost reweights exactly the operators loop synthesis
  // inserts; run the differential on one structure-rich model with it.
  RewardLoopsCost Cost;
  EGraph G;
  saturate(G, models::modelByName("3432939:nintendo-slot").FlatCsg);
  Extractor Engine(G, Cost);
  ReferenceExtractor Oracle(G, Cost);
  expectOneBestIdentical(G, Engine, Oracle, "nintendo-slot/reward-loops");
  KBestExtractor KEngine(G, Cost, 5);
  ReferenceKBestExtractor KOracle(G, Cost, 5);
  expectKBestIdentical(G, KEngine, KOracle, "nintendo-slot/reward-loops");
}

TEST(ExtractDifferentialTest, DepthCostAgreesOnCyclicGraph) {
  // AstDepthCost produces frequent exact ties (max + 1), stressing the
  // deterministic tie-break; include a self-referential class.
  AstDepthCost Cost;
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tUnion(tSphere(), tEmpty())));
  EClassId Unit = G.addTerm(tUnit());
  G.merge(Root, Unit);
  G.rebuild();
  Extractor Engine(G, Cost);
  ReferenceExtractor Oracle(G, Cost);
  expectOneBestIdentical(G, Engine, Oracle, "depth/cyclic");
  EXPECT_EQ(Engine.extract(Root)->kind(), OpKind::Unit);
}

//===----------------------------------------------------------------------===//
// K-best contract: ordering, distinctness, head
//===----------------------------------------------------------------------===//

TEST(KBestContractTest, CandidatesSortedDistinctAndHeadedByOneBest) {
  AstSizeCost Cost;
  for (const char *Name : {"3362402:gear", "3432939:nintendo-slot"}) {
    EGraph G;
    EClassId Root = saturate(G, models::modelByName(Name).FlatCsg);
    KBestExtractor Engine(G, Cost, 5);
    Extractor OneBest(G, Cost);

    std::vector<RankedTerm> Ranked = Engine.extract(Root);
    ASSERT_FALSE(Ranked.empty()) << Name;
    EXPECT_EQ(Ranked[0].Cost, *OneBest.bestCost(Root)) << Name;
    for (size_t I = 1; I < Ranked.size(); ++I) {
      EXPECT_LE(Ranked[I - 1].Cost, Ranked[I].Cost) << Name;
      for (size_t J = 0; J < I; ++J)
        EXPECT_FALSE(termApproxEquals(Ranked[I].T, Ranked[J].T, 0.0))
            << Name << ": candidates " << J << " and " << I
            << " are value-equal respellings";
    }
  }
}

TEST(KBestContractTest, IntFloatRespellingsAreNotDiversity) {
  // A numeric class holds both the Float(5.0) spelling and the analysis-
  // materialized Int(5) leaf; k-best must collapse them to one program.
  EGraph G;
  EClassId Num = G.addTerm(tFloat(5.0));
  G.rebuild();
  ASSERT_GE(G.eclass(Num).Nodes.size(), 2u); // Float + materialized Int
  AstSizeCost Cost;
  KBestExtractor Engine(G, Cost, 5);
  std::vector<RankedTerm> Ranked = Engine.extract(Num);
  ASSERT_EQ(Ranked.size(), 1u);
  EXPECT_EQ(Ranked[0].T->kind(), OpKind::Int); // integer spelling is cheaper
}

TEST(KBestContractTest, ValueHashAgreesWithApproxEquality) {
  TermPtr IntSpelling = tTranslate(tVec3(tInt(5), tInt(0), tInt(2)), tUnit());
  TermPtr FloatSpelling =
      tTranslate(tVec3(tFloat(5.0), tInt(0), tFloat(2.0)), tUnit());
  ASSERT_TRUE(termApproxEquals(IntSpelling, FloatSpelling, 0.0));
  EXPECT_EQ(termValueHash(IntSpelling), termValueHash(FloatSpelling));
  EXPECT_NE(termHash(IntSpelling), termHash(FloatSpelling));
}

//===----------------------------------------------------------------------===//
// Incremental refresh
//===----------------------------------------------------------------------===//

TEST(IncrementalExtractTest, RefreshAfterSaturationRoundsMatchesScratch) {
  AstSizeCost Cost;
  for (const char *Name : {"3362402:gear", "3432939:nintendo-slot"}) {
    EGraph G;
    EClassId Root = G.addTerm(models::modelByName(Name).FlatCsg);
    G.rebuild();

    // Round 1: a few iterations, then derive from scratch.
    Runner R1(RunnerLimits{.IterLimit = 4});
    R1.run(G, pipelineRules());
    Extractor Engine(G, Cost);
    KBestExtractor KEngine(G, Cost, 5);

    // Round 2: keep saturating, then refresh incrementally.
    Runner R2(RunnerLimits{.IterLimit = 20,
                           .NodeLimit = 60000,
                           .TimeLimitSec = 30.0});
    R2.run(G, pipelineRules());
    Engine.refresh();
    KEngine.refresh();

    ReferenceExtractor Oracle(G, Cost);
    expectOneBestIdentical(G, Engine, Oracle, std::string(Name) + "/refresh");
    ReferenceKBestExtractor KOracle(G, Cost, 5);
    expectKBestIdentical(G, KEngine, KOracle,
                         std::string(Name) + "/refresh");
    EXPECT_TRUE(termEquals(Engine.extract(Root), Oracle.extract(Root)));
  }
}

TEST(IncrementalExtractTest, RefreshAfterAdversarialMergesMatchesScratch) {
  AstSizeCost Cost;
  for (int Seed = 0; Seed < 6; ++Seed) {
    Rng R(static_cast<uint64_t>(Seed) * 131 + 29);
    EGraph G;
    std::vector<EClassId> Pool = buildMergePool(G);
    auto Engine = std::make_unique<Extractor>(G, Cost);
    auto KEngine = std::make_unique<KBestExtractor>(G, Cost, 4);

    for (int Step = 0; Step < 12; ++Step) {
      G.merge(Pool[R.nextBelow(Pool.size())], Pool[R.nextBelow(Pool.size())]);
      if (Step % 2 == 0) { // batch some merges before rebuilding
        G.rebuild();
        Engine->refresh();
        KEngine->refresh();
        ReferenceExtractor Oracle(G, Cost);
        expectOneBestIdentical(G, *Engine, Oracle,
                               "merge seed " + std::to_string(Seed) +
                                   " step " + std::to_string(Step));
        ReferenceKBestExtractor KOracle(G, Cost, 4);
        expectKBestIdentical(G, *KEngine, KOracle,
                             "merge seed " + std::to_string(Seed) + " step " +
                                 std::to_string(Step));
      }
    }
  }
}

TEST(IncrementalExtractTest, RefreshSeesNewClassesAndFoldedConstants) {
  AstSizeCost Cost;
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tSphere()));
  G.rebuild();
  Extractor Engine(G, Cost);
  KBestExtractor KEngine(G, Cost, 3);
  ASSERT_EQ(*Engine.bestCost(Root), 3.0);

  // Grow the graph: a constant-folding class, and a cheaper alternative
  // merged into the root.
  EClassId Sum = G.addTerm(tAdd(tFloat(1.5), tFloat(2.5)));
  EClassId Unit = G.addTerm(tUnit());
  G.merge(Root, Unit);
  G.rebuild();
  Engine.refresh();
  KEngine.refresh();

  EXPECT_EQ(*Engine.bestCost(Root), 1.0);
  EXPECT_EQ(Engine.extract(Root)->kind(), OpKind::Unit);
  EXPECT_EQ(*Engine.bestCost(Sum), 1.0); // the materialized literal
  EXPECT_EQ(Engine.extract(Sum)->op().numericValue(), 4.0);

  ReferenceExtractor Oracle(G, Cost);
  expectOneBestIdentical(G, Engine, Oracle, "grown graph");
  ReferenceKBestExtractor KOracle(G, Cost, 3);
  expectKBestIdentical(G, KEngine, KOracle, "grown graph");
}

TEST(IncrementalExtractTest, NoOpRefreshIsStable) {
  AstSizeCost Cost;
  EGraph G;
  EClassId Root = saturate(G, models::modelByName("3362402:gear").FlatCsg, 6);
  KBestExtractor Engine(G, Cost, 5);
  std::vector<RankedTerm> Before = Engine.extract(Root);
  Engine.refresh(); // generation unchanged: must be a no-op
  std::vector<RankedTerm> After = Engine.extract(Root);
  ASSERT_EQ(Before.size(), After.size());
  for (size_t I = 0; I < Before.size(); ++I) {
    EXPECT_EQ(Before[I].Cost, After[I].Cost);
    EXPECT_TRUE(termEquals(Before[I].T, After[I].T));
  }
}
