//===-- tests/eval_test.cpp - LambdaCAD evaluator tests -------------------===//

#include "cad/Eval.h"
#include "cad/Sexp.h"

#include <gtest/gtest.h>

using namespace shrinkray;

namespace {

TermPtr evalOk(const TermPtr &T) {
  EvalResult R = evalToFlatCsg(T);
  if (!R) {
    ADD_FAILURE() << "evaluation failed: " << R.Error;
    return tEmpty();
  }
  return R.Value;
}

TermPtr evalOk(std::string_view Sexp) {
  ParseResult P = parseSexp(Sexp);
  if (!P) {
    ADD_FAILURE() << "parse failed: " << P.Error;
    return tEmpty();
  }
  return evalOk(P.Value);
}

} // namespace

TEST(EvalTest, PrimitivePassesThrough) {
  EXPECT_EQ(evalOk(tUnit())->kind(), OpKind::Unit);
}

TEST(EvalTest, FlatCsgIsFixedPoint) {
  TermPtr T = tDiff(tScale(2, 3, 4, tCylinder()),
                    tTranslate(1, 0, 0, tUnit()));
  EXPECT_TRUE(termApproxEquals(T, evalOk(T), 1e-12));
}

TEST(EvalTest, ArithmeticInVectors) {
  TermPtr Out = evalOk("(Translate (Vec3 (Add 1.0 2.0) (Mul 2.0 3.0) "
                       "(Sub 5.0 1.0)) Unit)");
  TermPtr Expect = tTranslate(3, 6, 4, tUnit());
  EXPECT_TRUE(termApproxEquals(Out, Expect, 1e-12));
}

TEST(EvalTest, TrigDegreesSemantics) {
  TermPtr Out = evalOk("(Translate (Vec3 (Sin 90.0) (Cos 180.0) "
                       "(Arctan 1.0 1.0)) Unit)");
  TermPtr Expect = tTranslate(1.0, -1.0, 45.0, tUnit());
  EXPECT_TRUE(termApproxEquals(Out, Expect, 1e-9));
}

TEST(EvalTest, DivisionByZeroFails) {
  ParseResult P = parseSexp("(Translate (Vec3 (Div 1.0 0.0) 0.0 0.0) Unit)");
  ASSERT_TRUE(P);
  EvalResult R = evalToFlatCsg(P.Value);
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("division"), std::string::npos);
}

TEST(EvalTest, FoldUnionOverConsList) {
  TermPtr Out = evalOk("(Fold Union Empty (Cons Unit (Cons Sphere Nil)))");
  // Fold(Union, Empty, [a; b]) == Union(a, b) (Empty elided).
  EXPECT_TRUE(termEquals(Out, tUnion(tUnit(), tSphere())));
}

TEST(EvalTest, FoldDiffIsRightFold) {
  TermPtr Out = evalOk("(Fold Diff Unit (Cons Sphere (Cons Cylinder Nil)))");
  // fold(diff, unit, [s; c]) = diff(s, diff(c, unit))
  EXPECT_TRUE(
      termEquals(Out, tDiff(tSphere(), tDiff(tCylinder(), tUnit()))));
}

TEST(EvalTest, RepeatBuildsNCopies) {
  TermPtr Out = evalOk("(Fold Union Empty (Repeat Unit 3))");
  EXPECT_TRUE(termEquals(Out, tUnion(tUnit(), tUnion(tUnit(), tUnit()))));
}

TEST(EvalTest, RepeatRejectsNegativeCount) {
  EXPECT_FALSE(evalToFlatCsg(parseSexp("(Fold Union Empty "
                                       "(Repeat Unit -1))").Value));
}

TEST(EvalTest, MapiPassesIndexAndElement) {
  // Mapi (i, c) -> Translate(2*(i+1), 0, 0, c) over Repeat(Unit, 3)
  TermPtr Out = evalOk(
      "(Fold Union Empty (Mapi (Fun (Var i) (Var c) (Translate "
      "(Vec3 (Mul 2.0 (Add (Var i) 1)) 0.0 0.0) (Var c))) (Repeat Unit 3)))");
  TermPtr Expect = tUnionAll({tTranslate(2, 0, 0, tUnit()),
                              tTranslate(4, 0, 0, tUnit()),
                              tTranslate(6, 0, 0, tUnit())});
  EXPECT_TRUE(termApproxEquals(Out, Expect, 1e-9));
}

TEST(EvalTest, PaperFigure2FiveCubes) {
  // The running example: 5 cubes at x = 2, 4, 6, 8, 10.
  TermPtr Out = evalOk(
      "(Fold Union Empty (Mapi (Fun (Var i) (Var c) (Translate "
      "(Vec3 (Mul 2.0 (Add (Var i) 1)) 0.0 0.0) (Var c))) (Repeat Unit 5)))");
  std::vector<TermPtr> Cubes;
  for (int I = 1; I <= 5; ++I)
    Cubes.push_back(tTranslate(2.0 * I, 0, 0, tUnit()));
  EXPECT_TRUE(termApproxEquals(Out, tUnionAll(Cubes), 1e-9));
}

TEST(EvalTest, NestedMapiComposesTransforms) {
  // Figure 10 shape: Mapi translate over Mapi scale.
  TermPtr Out = evalOk(
      "(Fold Union Empty (Mapi (Fun (Var i) (Var a) (Translate (Vec3 "
      "(Add (Mul 2.0 (Var i)) 2.0) 0.0 0.0) (Var a))) (Mapi (Fun (Var i) "
      "(Var a) (Scale (Vec3 (Add (Mul 2.0 (Var i)) 1.0) 1.0 1.0) (Var a))) "
      "(Repeat Unit 2))))");
  TermPtr Expect = tUnion(tTranslate(2, 0, 0, tScale(1, 1, 1, tUnit())),
                          tTranslate(4, 0, 0, tScale(3, 1, 1, tUnit())));
  EXPECT_TRUE(termApproxEquals(Out, Expect, 1e-9));
}

TEST(EvalTest, FoldAsFlatMapBuildsNestedLoops) {
  // Figure 14 shape: Fold (Fun i -> Fold (Fun j -> cad, Nil, [0;1]),
  //                        Nil, [0;1]) flat-maps into a 4-element list.
  TermPtr Out = evalOk(
      "(Fold Union Empty (Fold (Fun (Var i) (Fold (Fun (Var j) (Translate "
      "(Vec3 (Sub (Mul 24.0 (Var i)) 12.0) (Sub (Mul 24.0 (Var j)) 12.0) "
      "0.0) Unit)) Nil (Cons 0 (Cons 1 Nil)))) Nil (Cons 0 (Cons 1 Nil))))");
  TermPtr Expect = tUnionAll({tTranslate(-12, -12, 0, tUnit()),
                              tTranslate(-12, 12, 0, tUnit()),
                              tTranslate(12, -12, 0, tUnit()),
                              tTranslate(12, 12, 0, tUnit())});
  EXPECT_TRUE(termApproxEquals(Out, Expect, 1e-9));
}

TEST(EvalTest, ExternalIsOpaqueButPreserved) {
  TermPtr Out = evalOk("(Union (External mirror-part) Unit)");
  ASSERT_EQ(Out->kind(), OpKind::Union);
  EXPECT_EQ(Out->child(0)->kind(), OpKind::External);
  EXPECT_EQ(Out->child(0)->op().symbol().str(), "mirror-part");
}

TEST(EvalTest, UnboundVariableFails) {
  EvalResult R = evalToFlatCsg(parseSexp("(Translate (Vec3 (Var i) 0.0 0.0) "
                                         "Unit)").Value);
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("unbound"), std::string::npos);
}

TEST(EvalTest, FuelBoundsRunawayPrograms) {
  // Huge Repeat exhausts fuel instead of hanging.
  ParseResult P = parseSexp("(Fold Union Empty (Repeat Unit 9000000))");
  ASSERT_TRUE(P);
  EvalResult R = evalToFlatCsg(P.Value, /*FuelLimit=*/1000);
  EXPECT_FALSE(R);
}

TEST(EvalTest, LexicalScopingOfClosures) {
  // Map (fun c -> translate(x-from-outer, c)) where the closure captures
  // the outer Mapi's index: inner function sees the right i.
  TermPtr Out = evalOk(
      "(Fold Union Empty (Mapi (Fun (Var i) (Var c) (App (Fun (Var k) "
      "(Translate (Vec3 (Mul 3.0 (Var i)) (Var k) 0.0) (Var c))) 7.0)) "
      "(Repeat Unit 2)))");
  TermPtr Expect = tUnion(tTranslate(0, 7, 0, tUnit()),
                          tTranslate(3, 7, 0, tUnit()));
  EXPECT_TRUE(termApproxEquals(Out, Expect, 1e-9));
}

TEST(EvalTest, ResultIsAlwaysFlat) {
  TermPtr Out = evalOk("(Fold Union Empty (Mapi (Fun (Var i) (Var c) "
                       "(Rotate (Vec3 0.0 0.0 (Mul 60.0 (Var i))) (Var c))) "
                       "(Repeat (Translate (Vec3 2.0 0.0 0.0) Unit) 6)))");
  EXPECT_TRUE(isFlatCsg(Out));
  EXPECT_EQ(termPrimitives(Out), 6u);
}
