//===-- tests/scad_test.cpp - OpenSCAD frontend/backend tests -------------===//

#include "scad/ScadEmitter.h"
#include "scad/ScadParser.h"

#include "cad/Eval.h"
#include "cad/Sexp.h"
#include "geom/Sample.h"

#include <gtest/gtest.h>

using namespace shrinkray;
using namespace shrinkray::scad;

namespace {

TermPtr parseOk(std::string_view Src) {
  ScadResult R = parseScad(Src);
  EXPECT_TRUE(R) << R.Error;
  return R.Value ? R.Value : tEmpty();
}

} // namespace

TEST(ScadParseTest, CubeVariants) {
  EXPECT_TRUE(termApproxEquals(parseOk("cube(2);"),
                               tScale(2, 2, 2, tUnit()), 1e-12));
  EXPECT_TRUE(termApproxEquals(parseOk("cube([1, 2, 3]);"),
                               tScale(1, 2, 3, tUnit()), 1e-12));
  EXPECT_TRUE(termApproxEquals(
      parseOk("cube([2, 2, 2], center=true);"),
      tTranslate(-1, -1, -1, tScale(2, 2, 2, tUnit())), 1e-12));
}

TEST(ScadParseTest, CylinderAndSphere) {
  EXPECT_TRUE(termApproxEquals(parseOk("cylinder(h=10, r=3);"),
                               tScale(3, 3, 10, tCylinder()), 1e-12));
  EXPECT_TRUE(termApproxEquals(parseOk("sphere(r=4);"),
                               tScale(4, 4, 4, tSphere()), 1e-12));
  EXPECT_TRUE(termApproxEquals(parseOk("sphere(4);"),
                               tScale(4, 4, 4, tSphere()), 1e-12));
}

TEST(ScadParseTest, HexagonalPrismIdiom) {
  // cylinder($fn=6) is the OpenSCAD idiom for hexagonal prisms.
  EXPECT_TRUE(termApproxEquals(parseOk("cylinder(h=2, r=5, $fn=6);"),
                               tScale(5, 5, 2, tHexagon()), 1e-12));
}

TEST(ScadParseTest, Transforms) {
  TermPtr T = parseOk("translate([1, 2, 3]) cube(1);");
  EXPECT_TRUE(termApproxEquals(
      T, tTranslate(1, 2, 3, tScale(1, 1, 1, tUnit())), 1e-12));
  TermPtr R = parseOk("rotate([0, 0, 45]) sphere(1);");
  ASSERT_EQ(R->kind(), OpKind::Rotate);
  TermPtr RScalar = parseOk("rotate(45) sphere(1);");
  // rotate(45) is rotation about z.
  EXPECT_TRUE(termApproxEquals(R, RScalar, 1e-12));
}

TEST(ScadParseTest, BooleansWithBlocks) {
  TermPtr T = parseOk("difference() { cube(10); sphere(3); cylinder(h=1, "
                      "r=1); }");
  ASSERT_EQ(T->kind(), OpKind::Diff);
  // difference(a, b, c) == Diff(a, Union(b, c)).
  EXPECT_EQ(T->child(1)->kind(), OpKind::Union);
  TermPtr I = parseOk("intersection() { cube(4); sphere(3); }");
  EXPECT_EQ(I->kind(), OpKind::Inter);
}

TEST(ScadParseTest, TopLevelStatementsUnion) {
  TermPtr T = parseOk("cube(1); sphere(2);");
  EXPECT_EQ(T->kind(), OpKind::Union);
}

TEST(ScadParseTest, Assignments) {
  TermPtr T = parseOk("w = 4; h = w * 2 + 1; cube([w, w, h]);");
  EXPECT_TRUE(termApproxEquals(T, tScale(4, 4, 9, tUnit()), 1e-12));
}

TEST(ScadParseTest, ForLoopUnrolls) {
  // The paper's flattening translator: loops become repeated children.
  TermPtr T = parseOk("for (i = [0 : 4]) translate([2 * (i + 1), 0, 0]) "
                      "cube(1);");
  std::vector<TermPtr> Cubes;
  for (int I = 1; I <= 5; ++I)
    Cubes.push_back(tTranslate(2.0 * I, 0, 0, tScale(1, 1, 1, tUnit())));
  EXPECT_TRUE(termApproxEquals(T, tUnionAll(Cubes), 1e-9));
}

TEST(ScadParseTest, ForLoopWithStep) {
  TermPtr T = parseOk("for (a = [0 : 90 : 270]) rotate([0, 0, a]) cube(2);");
  EXPECT_EQ(termPrimitives(T), 4u);
}

TEST(ScadParseTest, ForOverVector) {
  TermPtr T = parseOk("for (x = [1, 4, 9]) translate([x, 0, 0]) sphere(1);");
  EXPECT_EQ(termPrimitives(T), 3u);
}

TEST(ScadParseTest, NestedForLoops) {
  TermPtr T = parseOk("for (i = [0 : 1]) for (j = [0 : 2]) "
                      "translate([10 * i, 7 * j, 0]) cube(1);");
  EXPECT_EQ(termPrimitives(T), 6u);
}

TEST(ScadParseTest, CommentsAndTrig) {
  TermPtr T = parseOk("// top\nr = 2; /* block */\n"
                      "translate([r * sin(90), r * cos(0), 0]) cube(1);");
  ASSERT_EQ(T->kind(), OpKind::Translate);
  EXPECT_NEAR(T->child(0)->child(0)->op().numericValue(), 2.0, 1e-12);
}

TEST(ScadParseTest, Errors) {
  EXPECT_FALSE(parseScad("frobnicate(1);"));
  EXPECT_FALSE(parseScad("cube(1)"));        // missing semicolon
  EXPECT_FALSE(parseScad("cube(unknown);")); // unknown variable
  EXPECT_FALSE(parseScad("translate([1,2]) cube(1);")); // bad vector
  EXPECT_FALSE(parseScad("x = 1 / 0; cube(x);"));       // div by zero
  EXPECT_FALSE(parseScad("union() { cube(1); "));       // unterminated
}

TEST(ScadParseTest, GearProgramFlattens) {
  // An OpenSCAD gear rim like the Thingiverse models the paper flattened.
  const char *Src = R"(
    teeth = 12;
    difference() {
      cylinder(h = 10, r = 40);
      cylinder(h = 12, r = 10);
    }
    for (i = [0 : 11])
      rotate([0, 0, 360 * i / teeth])
        translate([42, 0, 0])
          cube([6, 4, 10], center=true);
  )";
  TermPtr T = parseOk(Src);
  EXPECT_TRUE(isFlatCsg(T));
  EXPECT_EQ(termPrimitives(T), 14u);
}

TEST(ScadEmitTest, PrimitivesRoundTripThroughParser) {
  TermPtr Models[] = {
      tUnion(tScale(2, 2, 2, tUnit()), tScale(3, 3, 3, tSphere())),
      tDiff(tScale(10, 10, 4, tCylinder()),
            tTranslate(0, 0, -1, tScale(3, 3, 6, tCylinder()))),
      tTranslate(1, 2, 3, tRotate(0, 0, 30, tScale(4, 4, 4, tHexagon()))),
  };
  for (const TermPtr &M : Models) {
    std::optional<std::string> Src = emitScad(M);
    ASSERT_TRUE(Src.has_value());
    ScadResult Back = parseScad(*Src);
    ASSERT_TRUE(Back) << Back.Error << "\n" << *Src;
    EXPECT_TRUE(geom::sampleEquivalent(M, Back.Value)) << *Src;
  }
}

TEST(ScadEmitTest, MapiBecomesForLoop) {
  // The synthesized gear shape: loops survive the translation.
  ParseResult P = parseSexp(
      "(Fold Union Empty (Mapi (Fun (Var i) (Var c) (Rotate (Vec3 0.0 0.0 "
      "(Mul 30 (Var i))) (Var c))) (Repeat (Scale (Vec3 2.0 2.0 2.0) Unit) "
      "12)))");
  ASSERT_TRUE(P) << P.Error;
  std::optional<std::string> Src = emitScad(P.Value);
  ASSERT_TRUE(Src.has_value());
  EXPECT_NE(Src->find("for (i = [0 : 11])"), std::string::npos) << *Src;
  // And the loop form is geometrically equivalent to the flattening.
  ScadResult Back = parseScad(*Src);
  ASSERT_TRUE(Back) << Back.Error << "\n" << *Src;
  EvalResult Flat = evalToFlatCsg(P.Value);
  ASSERT_TRUE(Flat);
  EXPECT_TRUE(geom::sampleEquivalent(Flat.Value, Back.Value));
}

TEST(ScadEmitTest, NestedMapiFusesIntoOneLoop) {
  ParseResult P = parseSexp(
      "(Fold Union Empty (Mapi (Fun (Var i) (Var c) (Translate (Vec3 "
      "(Mul 5 (Var i)) 0.0 0.0) (Var c))) (Mapi (Fun (Var i) (Var c) "
      "(Scale (Vec3 2.0 2.0 2.0) (Var c))) (Repeat Unit 3))))");
  ASSERT_TRUE(P) << P.Error;
  std::optional<std::string> Src = emitScad(P.Value);
  ASSERT_TRUE(Src.has_value());
  ScadResult Back = parseScad(*Src);
  ASSERT_TRUE(Back) << Back.Error << "\n" << *Src;
  EvalResult Flat = evalToFlatCsg(P.Value);
  ASSERT_TRUE(Flat);
  EXPECT_TRUE(geom::sampleEquivalent(Flat.Value, Back.Value)) << *Src;
}

TEST(ScadEmitTest, ExternalBecomesModuleCall) {
  std::optional<std::string> Src =
      emitScad(tUnion(tExternal("hull_grip"), tUnit()));
  ASSERT_TRUE(Src.has_value());
  EXPECT_NE(Src->find("hull_grip();"), std::string::npos);
}

TEST(ScadEmitTest, CountedFoldBecomesForLoop) {
  // Nested-loop output shape (Figure 14).
  ParseResult P = parseSexp(
      "(Fold Union Empty (Fold (Fun (Var i) (Translate (Vec3 (Mul 4 (Var "
      "i)) 0.0 0.0) Unit)) Nil (Cons 0 (Cons 1 (Cons 2 Nil)))))");
  ASSERT_TRUE(P) << P.Error;
  std::optional<std::string> Src = emitScad(P.Value);
  ASSERT_TRUE(Src.has_value());
  EXPECT_NE(Src->find("for (i = [0 : 2])"), std::string::npos) << *Src;
  ScadResult Back = parseScad(*Src);
  ASSERT_TRUE(Back) << Back.Error;
  EvalResult Flat = evalToFlatCsg(P.Value);
  ASSERT_TRUE(Flat);
  EXPECT_TRUE(geom::sampleEquivalent(Flat.Value, Back.Value));
}
