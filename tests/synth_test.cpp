//===-- tests/synth_test.cpp - End-to-end pipeline tests ------------------===//

#include "synth/Synthesizer.h"

#include "cad/Eval.h"
#include "cad/Sexp.h"
#include "geom/Sample.h"

#include <gtest/gtest.h>

using namespace shrinkray;

namespace {

/// Synthesizes and checks that the best program is geometry-preserving.
SynthesisResult synthesizeChecked(const TermPtr &Input,
                                  SynthesisOptions Opts = {}) {
  Synthesizer Synth(Opts);
  SynthesisResult R = Synth.synthesize(Input);
  EXPECT_FALSE(R.Programs.empty());
  geom::SampleOptions SampleOpts;
  SampleOpts.NumPoints = 6000;
  for (const RankedTerm &P : R.Programs) {
    EvalResult Flat = evalToFlatCsg(P.T);
    EXPECT_TRUE(Flat) << Flat.Error << "\n" << printSexp(P.T);
    if (Flat) {
      EXPECT_TRUE(geom::sampleEquivalent(Input, Flat.Value, SampleOpts))
          << prettyPrint(P.T);
    }
  }
  return R;
}

/// The Figure 2 running example: n unit cubes translated along x by 2(i+1).
TermPtr translatedCubes(int N) {
  std::vector<TermPtr> Cubes;
  for (int I = 1; I <= N; ++I)
    Cubes.push_back(tTranslate(2.0 * I, 0, 0, tUnit()));
  return tUnionAll(Cubes);
}

} // namespace

TEST(SynthTest, FiveCubesBecomeMapi) {
  SynthesisResult R = synthesizeChecked(translatedCubes(5));
  // The best program must expose the loop: Fold + Mapi + Repeat 5.
  const TermPtr &Best = R.best();
  EXPECT_TRUE(containsLoop(Best)) << prettyPrint(Best);
  LoopSummary Loops = describeLoops(Best);
  EXPECT_EQ(Loops.Notation, "n1,5");
  EXPECT_EQ(Loops.Forms, "d1");
  // And it must be much smaller than the input.
  EXPECT_LT(termSize(Best), termSize(translatedCubes(5)));
}

TEST(SynthTest, FiveCubesBestIsWithinTopK) {
  SynthesisResult R = synthesizeChecked(translatedCubes(5));
  EXPECT_GE(R.Programs.size(), 2u);
  EXPECT_EQ(R.structureRank(), 1u);
  // Costs are sorted ascending.
  for (size_t I = 1; I < R.Programs.size(); ++I)
    EXPECT_LE(R.Programs[I - 1].Cost, R.Programs[I].Cost);
}

TEST(SynthTest, TwoCubesStayCompact) {
  // With only two elements a Mapi is *possible* but more costly; the best
  // program should simply be small, and all alternatives sound.
  SynthesisResult R = synthesizeChecked(translatedCubes(2));
  EXPECT_LE(termSize(R.best()), termSize(translatedCubes(2)));
}

TEST(SynthTest, GearTeethExposeRotationLoop) {
  // A 12-tooth gear rim (scaled-down Figure 1): rotated translated teeth.
  std::vector<TermPtr> Teeth;
  TermPtr Tooth = tScale(4, 2, 10, tUnit());
  for (int I = 1; I <= 12; ++I)
    Teeth.push_back(
        tRotate(0, 0, 30.0 * I, tTranslate(20, 0, 0, Tooth)));
  TermPtr Rim = tUnionAll(Teeth);

  SynthesisResult R = synthesizeChecked(Rim);
  const TermPtr &Best = R.best();
  EXPECT_TRUE(containsLoop(Best)) << prettyPrint(Best);
  LoopSummary Loops = describeLoops(Best);
  EXPECT_EQ(Loops.Notation, "n1,12");
  // The rotation heuristic renders the angle as 360 * _ / 12.
  std::string Text = printSexp(Best);
  EXPECT_NE(Text.find("(Div (Mul 360"), std::string::npos) << Text;
  EXPECT_NE(Text.find("12)"), std::string::npos) << Text;
}

TEST(SynthTest, NestedAffineLayersGetNestedMapi) {
  // Figure 10 shape (6 towers so the loop also wins on plain size):
  // cubes under translate+rotate+scale towers with linear parameters.
  std::vector<TermPtr> Items;
  for (int I = 0; I < 6; ++I)
    Items.push_back(tTranslate(
        2.0 * I + 2, 2.0 * I + 4, 2.0 * I + 6,
        tRotate(30.0 + 15.0 * I, 0, 0,
                tScale(2.0 * I + 1, 2.0 * I + 3, 2.0 * I + 5, tUnit()))));
  SynthesisResult R = synthesizeChecked(tUnionAll(Items));
  const TermPtr &Best = R.best();
  EXPECT_TRUE(containsLoop(Best)) << prettyPrint(Best);
  // All three affine layers fold into one loop over the six elements.
  LoopSummary Loops = describeLoops(Best);
  EXPECT_EQ(Loops.Notation, "n1,6");
}

TEST(SynthTest, ThreeTowersLoopIsRepresentedButFlatWins) {
  // With only three elements the Mapi program is *larger*, so plain size
  // keeps the flat model first -- but reward-loops surfaces the loop.
  std::vector<TermPtr> Items;
  for (int I = 0; I < 3; ++I)
    Items.push_back(tTranslate(
        2.0 * I + 2, 2.0 * I + 4, 2.0 * I + 6,
        tRotate(30.0 + 15.0 * I, 0, 0,
                tScale(2.0 * I + 1, 2.0 * I + 3, 2.0 * I + 5, tUnit()))));
  SynthesisOptions Opts;
  Opts.Cost = CostKind::RewardLoops;
  SynthesisResult R = Synthesizer(Opts).synthesize(tUnionAll(Items));
  ASSERT_FALSE(R.Programs.empty());
  EXPECT_TRUE(containsLoop(R.best())) << prettyPrint(R.best());
}

TEST(SynthTest, GridBecomesNestedLoop) {
  // Figure 14: a 2 x 2 grid of cubes at (+-12, +-12).
  std::vector<TermPtr> Items;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      Items.push_back(
          tTranslate(24.0 * I - 12, 24.0 * J - 12, 0, tUnit()));
  // Partial-fold hybrids crowd the first ranks (the paper notes the same:
  // below-top-5 programs still carry partial structure), so look a little
  // deeper than the default k for the fully nested loop.
  SynthesisOptions Opts;
  Opts.TopK = 16;
  SynthesisResult R = synthesizeChecked(tUnionAll(Items), Opts);
  bool FoundNested = false;
  for (const RankedTerm &P : R.Programs)
    FoundNested |= describeLoops(P.T).Notation.find("n2,2,2") !=
                   std::string::npos;
  EXPECT_TRUE(FoundNested);
}

TEST(SynthTest, DicePipsNestedLoop) {
  // Figure 17: the "6" face, a 2 x 3 grid of spheres.
  std::vector<TermPtr> Items;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 3; ++J)
      Items.push_back(tTranslate(
          -5, 2.0 - 4.0 * I, 2.0 - 2.0 * J,
          tScale(0.75, 0.75, 0.75, tSphere())));
  SynthesisResult R = synthesizeChecked(tUnionAll(Items));
  bool FoundNested = false;
  for (const RankedTerm &P : R.Programs) {
    std::string N = describeLoops(P.T).Notation;
    FoundNested |= N.find("n2,2,3") != std::string::npos ||
                   N.find("n2,3,2") != std::string::npos;
  }
  EXPECT_TRUE(FoundNested);
}

TEST(SynthTest, UnsortedInputIsSortedThenSolved) {
  // Elements in scrambled order: list manipulation must sort them before
  // the solver can find 2(i+1).
  std::vector<TermPtr> Cubes;
  for (int X : {6, 2, 10, 4, 8})
    Cubes.push_back(tTranslate(X, 0, 0, tUnit()));
  SynthesisResult R = synthesizeChecked(tUnionAll(Cubes));
  EXPECT_TRUE(containsLoop(R.best())) << prettyPrint(R.best());
  EXPECT_EQ(describeLoops(R.best()).Notation, "n1,5");
}

TEST(SynthTest, NoisyInputWithinEpsilonStillSolved) {
  // Decompiler-style roundoff within the paper's epsilon.
  std::vector<TermPtr> Cubes;
  double Noise[] = {0.0004, -0.0007, 0.0002, 0.0009, -0.0003};
  for (int I = 0; I < 5; ++I)
    Cubes.push_back(tTranslate(2.0 * (I + 1) + Noise[I], 0, 0, tUnit()));
  Synthesizer Synth;
  SynthesisResult R = Synth.synthesize(tUnionAll(Cubes));
  ASSERT_FALSE(R.Programs.empty());
  EXPECT_TRUE(containsLoop(R.best())) << prettyPrint(R.best());
  // The snapped program is *approximately* the input's geometry.
  EvalResult Flat = evalToFlatCsg(R.best());
  ASSERT_TRUE(Flat) << Flat.Error;
  geom::SampleOptions Opts;
  Opts.MismatchTolerance = 0.01;
  EXPECT_TRUE(geom::sampleEquivalent(tUnionAll(Cubes), Flat.Value, Opts));
}

TEST(SynthTest, NoStructureMeansNoLoops) {
  // Four unrelated primitives: nothing to parameterize; output stays flat
  // and no bigger than the input (sd-rack / compose behaviour).
  TermPtr Input = tUnionAll({tUnit(), tTranslate(3, 1, 4, tSphere()),
                             tScale(2, 5, 1, tCylinder()),
                             tTranslate(-7, 2, 0.5, tHexagon())});
  SynthesisResult R = synthesizeChecked(Input);
  EXPECT_LE(termSize(R.best()), termSize(Input));
}

TEST(SynthTest, DiffBaseWithRepeatedHoles) {
  // Diff(plate, union of 4 evenly spaced holes): the holes fold, the Diff
  // survives (box-tray shape).
  std::vector<TermPtr> Holes;
  for (int I = 0; I < 4; ++I)
    Holes.push_back(tTranslate(3.0 * I + 1, 1, -0.5,
                               tScale(0.8, 0.8, 2, tCylinder())));
  TermPtr Input = tDiff(tScale(14, 3, 1, tUnit()), tUnionAll(Holes));
  SynthesisResult R = synthesizeChecked(Input);
  EXPECT_TRUE(containsLoop(R.best())) << prettyPrint(R.best());
  EXPECT_EQ(describeLoops(R.best()).Notation, "n1,4");
}

TEST(SynthTest, RewardLoopsCostPrefersStructure) {
  // A 3-element pattern where the Mapi program is *larger* than the flat
  // spine: reward-loops must still surface it first.
  std::vector<TermPtr> Items;
  for (int I = 0; I < 3; ++I)
    Items.push_back(tTranslate(5.0 * I + 3, 2.0 * I + 1, 7.0 * I + 2,
                               tUnit()));
  TermPtr Input = tUnionAll(Items);

  SynthesisOptions SizeOpts;
  SizeOpts.Cost = CostKind::AstSize;
  SynthesisOptions LoopOpts;
  LoopOpts.Cost = CostKind::RewardLoops;
  SynthesisResult ByLoops = Synthesizer(LoopOpts).synthesize(Input);
  ASSERT_FALSE(ByLoops.Programs.empty());
  EXPECT_TRUE(containsLoop(ByLoops.best())) << prettyPrint(ByLoops.best());
}

TEST(SynthTest, StatsArepopulated) {
  SynthesisResult R = Synthesizer().synthesize(translatedCubes(4));
  EXPECT_GT(R.Stats.FoldSites, 0u);
  EXPECT_GT(R.Stats.Decompositions, 0u);
  EXPECT_FALSE(R.Stats.Records.empty());
  EXPECT_GT(R.Stats.ENodes, 0u);
  EXPECT_GT(R.Stats.Seconds, 0.0);
}

TEST(SynthTest, InferenceRecordNotation) {
  InferenceRecord Mapi;
  Mapi.K = InferenceRecord::Kind::Mapi;
  Mapi.Bounds = {60};
  Mapi.Forms = {FormKind::Poly1, FormKind::Constant};
  EXPECT_EQ(Mapi.loopNotation(), "n1,60");
  EXPECT_EQ(Mapi.formNotation(), "d1");

  InferenceRecord Nested;
  Nested.K = InferenceRecord::Kind::NestedFold;
  Nested.Bounds = {3, 5};
  Nested.Forms = {FormKind::Poly1};
  EXPECT_EQ(Nested.loopNotation(), "n2,3,5");

  InferenceRecord Trig;
  Trig.K = InferenceRecord::Kind::Mapi;
  Trig.Bounds = {4};
  Trig.Forms = {FormKind::Trig};
  EXPECT_EQ(Trig.formNotation(), "theta");
}

TEST(SynthTest, DescribeLoopsOnHandWrittenPrograms) {
  // Mapi tower over Repeat: one loop.
  ParseResult P = parseSexp(
      "(Fold Union Empty (Mapi (Fun (Var i) (Var c) (Translate (Vec3 "
      "(Mul 2 (Var i)) 0.0 0.0) (Var c))) (Repeat Unit 7)))");
  ASSERT_TRUE(P) << P.Error;
  LoopSummary S = describeLoops(P.Value);
  EXPECT_TRUE(S.HasLoops);
  EXPECT_EQ(S.Notation, "n1,7");
  EXPECT_EQ(S.Forms, "d1");

  // Nested flat-map folds: n2.
  ParseResult Q = parseSexp(
      "(Fold Union Empty (Fold (Fun (Var i) (Fold (Fun (Var j) (Translate "
      "(Vec3 (Var i) (Var j) 0.0) Unit)) Nil (Cons 0 (Cons 1 (Cons 2 "
      "Nil))))) Nil (Cons 0 (Cons 1 Nil))))");
  ASSERT_TRUE(Q) << Q.Error;
  LoopSummary S2 = describeLoops(Q.Value);
  EXPECT_EQ(S2.Notation, "n2,2,3");

  // Flat CSG: no loops.
  LoopSummary S3 = describeLoops(tUnion(tUnit(), tSphere()));
  EXPECT_FALSE(S3.HasLoops);
  EXPECT_EQ(S3.Notation, "");
}

TEST(SynthTest, TrigDiversityForSquarePattern) {
  // Four cubes at the corners of a square: representable as a 2x2 nested
  // loop AND as a trigonometric Mapi. Both should be somewhere in top-k
  // (with a k large enough to hold them).
  std::vector<TermPtr> Items;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      Items.push_back(tTranslate(2.0 * I - 1, 2.0 * J - 1, 0, tUnit()));
  SynthesisOptions Opts;
  Opts.TopK = 10;
  SynthesisResult R = Synthesizer(Opts).synthesize(tUnionAll(Items));
  ASSERT_FALSE(R.Programs.empty());
  bool SawTrig = false, SawLoop = false;
  for (const RankedTerm &P : R.Programs) {
    std::string Text = printSexp(P.T);
    SawTrig |= Text.find("Sin") != std::string::npos;
    SawLoop |= describeLoops(P.T).HasLoops;
  }
  EXPECT_TRUE(SawLoop);
  EXPECT_TRUE(SawTrig);
}
