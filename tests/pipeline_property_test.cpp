//===-- tests/pipeline_property_test.cpp - End-to-end property tests ------===//
//
// Property-based validation of the whole system:
//
//  * Inverse property: a random *structured* LambdaCAD program, flattened,
//    then synthesized, must yield programs that flatten back to the same
//    geometry (round-trip through the pipeline).
//  * Recovery property: when the structured generator used a loop with
//    enough repetitions, the synthesizer exposes a loop again.
//  * Human-model property: every human-written corpus counterpart flattens
//    to exactly the corpus' flat model (models::humanModels()).
//  * Noise property: flattening is invariant under epsilon-scale noise up
//    to geometric tolerance.
//
//===----------------------------------------------------------------------===//

#include "cad/Eval.h"
#include "cad/Sexp.h"
#include "geom/Sample.h"
#include "models/HumanModels.h"
#include "models/Models.h"
#include "support/Rng.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

using namespace shrinkray;

namespace {

/// Generates a random structured program: a base assembly plus one or two
/// loops over a repeated feature with linear (occasionally quadratic)
/// per-index transforms.
TermPtr randomStructured(Rng &R, int &LoopCountOut) {
  auto randPrim = [&]() -> TermPtr {
    switch (R.nextBelow(3)) {
    case 0:
      return tScale(R.nextDouble(1, 4), R.nextDouble(1, 4),
                    R.nextDouble(1, 4), tUnit());
    case 1:
      return tScale(R.nextDouble(1, 3), R.nextDouble(1, 3),
                    R.nextDouble(1, 4), tCylinder());
    default:
      return tScale(R.nextDouble(1, 3), R.nextDouble(1, 3),
                    R.nextDouble(1, 3), tSphere());
    }
  };

  auto randLoop = [&]() -> TermPtr {
    int N = 4 + static_cast<int>(R.nextBelow(5)); // 4..8 repetitions
    double Step = 2.0 + static_cast<double>(R.nextBelow(5));
    double Base = R.nextDouble(-4, 4);
    int Axis = static_cast<int>(R.nextBelow(3));
    TermPtr Expr = tAdd(tMul(tFloat(Step), tVar("i")), tFloat(Base));
    TermPtr Vec =
        Axis == 0   ? tVec3(Expr, tFloat(0), tFloat(0))
        : Axis == 1 ? tVec3(tFloat(0), Expr, tFloat(0))
                    : tVec3(tFloat(0), tFloat(0), Expr);
    TermPtr Body = tTranslate(Vec, tVar("c"));
    return tFold(tOpRef(OpKind::Union), tEmpty(),
                 tMapi(tFun({tVar("i"), tVar("c"), Body}),
                       tRepeat(randPrim(), tInt(N))));
  };

  int Loops = 1 + static_cast<int>(R.nextBelow(2));
  LoopCountOut = Loops;
  TermPtr Out = tTranslate(R.nextDouble(-10, 10), R.nextDouble(-10, 10), 0,
                           randLoop());
  for (int I = 1; I < Loops; ++I)
    Out = tUnion(Out, tTranslate(R.nextDouble(10, 25),
                                 R.nextDouble(-10, 10), 0, randLoop()));
  if (R.nextBelow(2) == 0)
    Out = tUnion(Out, tTranslate(-12, -12, 0, randPrim()));
  return Out;
}

} // namespace

class PipelineRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PipelineRoundTrip, FlattenSynthesizeFlattenPreservesGeometry) {
  Rng R(static_cast<uint64_t>(GetParam()) * 1337 + 5);
  int Loops = 0;
  TermPtr Structured = randomStructured(R, Loops);

  EvalResult Flat = evalToFlatCsg(Structured);
  ASSERT_TRUE(Flat) << Flat.Error;
  ASSERT_TRUE(isFlatCsg(Flat.Value));

  SynthesisResult Result = Synthesizer().synthesize(Flat.Value);
  ASSERT_FALSE(Result.Programs.empty());

  geom::SampleOptions Opts;
  Opts.NumPoints = 4000;
  for (const RankedTerm &P : Result.Programs) {
    EvalResult Back = evalToFlatCsg(P.T);
    ASSERT_TRUE(Back) << printSexp(P.T) << "\n" << Back.Error;
    EXPECT_TRUE(geom::sampleEquivalent(Flat.Value, Back.Value, Opts))
        << prettyPrint(P.T);
  }

  // Recovery: the generator used loops of >= 4 repetitions, which beat the
  // flat spelling under AST size, so the best program must have loops.
  EXPECT_TRUE(containsLoop(Result.best())) << prettyPrint(Result.best());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineRoundTrip, ::testing::Range(0, 12));

//===----------------------------------------------------------------------===//
// Human-written counterparts
//===----------------------------------------------------------------------===//

TEST(HumanModelsTest, EveryHumanModelFlattensToItsCorpusEntry) {
  for (const models::HumanModel &H : models::humanModels()) {
    models::BenchmarkModel M = models::modelByName(H.Name);
    EvalResult Flat = evalToFlatCsg(H.Structured);
    ASSERT_TRUE(Flat) << H.Name << ": " << Flat.Error;
    EXPECT_TRUE(termApproxEquals(Flat.Value, M.FlatCsg, 1e-9)) << H.Name;
  }
}

TEST(HumanModelsTest, HumanModelsAreStructured) {
  for (const models::HumanModel &H : models::humanModels()) {
    EXPECT_TRUE(containsLoop(H.Structured)) << H.Name;
    EXPECT_FALSE(H.LoopShape.empty()) << H.Name;
  }
}

TEST(HumanModelsTest, CoversAllStructuredCorpusEntriesButDice) {
  // Every ExpectStructure model except the dice (whose human-written
  // original was flat — paper Sec. 6.2) has a human counterpart.
  std::set<std::string> Human;
  for (const models::HumanModel &H : models::humanModels())
    Human.insert(H.Name);
  for (const models::BenchmarkModel &M : models::allModels()) {
    if (!M.ExpectStructure || M.Name == "3094201:dice")
      continue;
    EXPECT_TRUE(Human.count(M.Name)) << M.Name;
  }
}

//===----------------------------------------------------------------------===//
// Noise properties
//===----------------------------------------------------------------------===//

class NoiseProperty : public ::testing::TestWithParam<int> {};

TEST_P(NoiseProperty, EpsilonNoiseDoesNotBreakRecovery) {
  Rng R(static_cast<uint64_t>(GetParam()) * 99991 + 3);
  std::vector<TermPtr> Cubes;
  int N = 5 + static_cast<int>(R.nextBelow(4));
  double Step = 2.0 + static_cast<double>(R.nextBelow(4));
  for (int I = 0; I < N; ++I)
    Cubes.push_back(tTranslate(Step * I + 1.0, 0, 0, tUnit()));
  TermPtr Clean = tUnionAll(Cubes);
  TermPtr Noisy =
      models::injectNoise(Clean, 5e-4, 7000 + GetParam());

  SynthesisResult Result = Synthesizer().synthesize(Noisy);
  ASSERT_FALSE(Result.Programs.empty());
  EXPECT_TRUE(containsLoop(Result.best())) << prettyPrint(Result.best());

  // The snapped output stays within a small geometric tolerance of the
  // noisy input (and hence of the clean model).
  EvalResult Flat = evalToFlatCsg(Result.best());
  ASSERT_TRUE(Flat) << Flat.Error;
  geom::SampleOptions Opts;
  Opts.MismatchTolerance = 0.01;
  EXPECT_TRUE(geom::sampleEquivalent(Clean, Flat.Value, Opts));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoiseProperty, ::testing::Range(0, 8));

//===----------------------------------------------------------------------===//
// Sexp/eval round-trip properties on structured programs
//===----------------------------------------------------------------------===//

class SexpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SexpRoundTrip, PrintParseEvalAgree) {
  Rng R(static_cast<uint64_t>(GetParam()) * 31 + 17);
  int Loops = 0;
  TermPtr Structured = randomStructured(R, Loops);

  // print -> parse is the identity.
  ParseResult Back = parseSexp(printSexp(Structured));
  ASSERT_TRUE(Back) << Back.Error;
  EXPECT_TRUE(termEquals(Structured, Back.Value));

  // ...and evaluating either gives the same flat model.
  EvalResult A = evalToFlatCsg(Structured);
  EvalResult B = evalToFlatCsg(Back.Value);
  ASSERT_TRUE(A);
  ASSERT_TRUE(B);
  EXPECT_TRUE(termEquals(A.Value, B.Value));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SexpRoundTrip, ::testing::Range(0, 16));
