//===-- tests/term_test.cpp - Term construction and metrics ---------------===//

#include "cad/Term.h"

#include <gtest/gtest.h>

using namespace shrinkray;

TEST(OpTest, PayloadEquality) {
  EXPECT_EQ(Op::makeFloat(2.5), Op::makeFloat(2.5));
  EXPECT_NE(Op::makeFloat(2.5), Op::makeFloat(2.6));
  EXPECT_EQ(Op::makeInt(3), Op::makeInt(3));
  EXPECT_NE(Op::makeInt(3), Op::makeFloat(3.0)); // Int and Float differ
  EXPECT_EQ(Op::makeVar(Symbol("i")), Op::makeVar(Symbol("i")));
  EXPECT_NE(Op::makeVar(Symbol("i")), Op::makeVar(Symbol("j")));
}

TEST(OpTest, NegativeZeroCanonicalized) {
  EXPECT_EQ(Op::makeFloat(-0.0), Op::makeFloat(0.0));
  EXPECT_EQ(Op::makeFloat(-0.0).hash(), Op::makeFloat(0.0).hash());
}

TEST(OpTest, ArityTable) {
  EXPECT_EQ(opArity(OpKind::Unit), 0);
  EXPECT_EQ(opArity(OpKind::Sin), 1);
  EXPECT_EQ(opArity(OpKind::Union), 2);
  EXPECT_EQ(opArity(OpKind::Fold), 3);
  EXPECT_EQ(opArity(OpKind::Vec3Ctor), 3);
  EXPECT_EQ(opArity(OpKind::Fun), -1);
  EXPECT_EQ(opArity(OpKind::App), -1);
}

TEST(OpTest, NameRoundTrip) {
  for (unsigned I = 0; I < NumOpKinds; ++I) {
    OpKind K = static_cast<OpKind>(I);
    OpKind Back;
    ASSERT_TRUE(opKindFromName(opName(K), Back)) << opName(K);
    EXPECT_EQ(K, Back);
  }
}

TEST(OpTest, OpRefReferences) {
  EXPECT_EQ(Op::makeOpRef(OpKind::Union).referencedOp(), OpKind::Union);
  EXPECT_EQ(Op::makeOpRef(OpKind::Diff).referencedOp(), OpKind::Diff);
}

TEST(TermTest, SizeCountsUnrolledNodes) {
  // Translate(Vec3(f,f,f), Unit): 1 + (1+3) + 1 = 6 nodes.
  TermPtr T = tTranslate(1, 2, 3, tUnit());
  EXPECT_EQ(termSize(T), 6u);
}

TEST(TermTest, SizeUnrollsSharedSubtrees) {
  TermPtr Shared = tTranslate(1, 2, 3, tUnit());
  TermPtr U = tUnion(Shared, Shared);
  EXPECT_EQ(termSize(U), 1 + 2 * termSize(Shared));
}

TEST(TermTest, DepthOfLeafIsOne) { EXPECT_EQ(termDepth(tUnit()), 1u); }

TEST(TermTest, DepthOfNested) {
  TermPtr T = tUnion(tTranslate(1, 2, 3, tUnit()), tUnit());
  // Union -> Translate -> Unit gives 3; the Vec3 branch gives Union ->
  // Translate -> Vec3 -> Float = 4.
  EXPECT_EQ(termDepth(T), 4u);
}

TEST(TermTest, PrimitiveCount) {
  TermPtr T = tUnion(tUnit(), tDiff(tSphere(), tCylinder()));
  EXPECT_EQ(termPrimitives(T), 3u);
  EXPECT_EQ(termPrimitives(tEmpty()), 0u);
  EXPECT_EQ(termPrimitives(tExternal("Hull1")), 1u);
}

TEST(TermTest, StructuralEquality) {
  TermPtr A = tTranslate(1, 2, 3, tUnit());
  TermPtr B = tTranslate(1, 2, 3, tUnit());
  TermPtr C = tTranslate(1, 2, 4, tUnit());
  EXPECT_TRUE(termEquals(A, B));
  EXPECT_FALSE(termEquals(A, C));
  EXPECT_EQ(termHash(A), termHash(B));
}

TEST(TermTest, ApproxEquality) {
  TermPtr A = tTranslate(1, 2, 3, tUnit());
  TermPtr B = tTranslate(1.0005, 2, 3, tUnit());
  EXPECT_TRUE(termApproxEquals(A, B, 1e-3));
  EXPECT_FALSE(termApproxEquals(A, B, 1e-6));
}

TEST(TermTest, ApproxEqualityCrossesIntFloat) {
  EXPECT_TRUE(termApproxEquals(tInt(3), tFloat(3.0), 1e-9));
}

TEST(TermTest, IsFlatCsgAcceptsFlatModels) {
  TermPtr T = tDiff(tScale(2, 2, 1, tCylinder()),
                    tTranslate(0, 0, -1, tUnit()));
  EXPECT_TRUE(isFlatCsg(T));
}

TEST(TermTest, IsFlatCsgRejectsLoops) {
  TermPtr T = tFold(tOpRef(OpKind::Union), tEmpty(),
                    tRepeat(tUnit(), tInt(3)));
  EXPECT_FALSE(isFlatCsg(T));
}

TEST(TermTest, IsFlatCsgRejectsSymbolicVectors) {
  TermPtr T = tTranslate(tVec3(tVar("i"), tFloat(0), tFloat(0)), tUnit());
  EXPECT_FALSE(isFlatCsg(T));
}

TEST(TermTest, ContainsLoopDetectsCombinators) {
  EXPECT_TRUE(containsLoop(tRepeat(tUnit(), tInt(2))));
  EXPECT_TRUE(containsLoop(
      tMapi(tFun({tVar("i"), tVar("c"), tVar("c")}), tNil())));
  EXPECT_FALSE(containsLoop(tUnion(tUnit(), tSphere())));
}

TEST(TermTest, UnionAllBuildsRightNest) {
  std::vector<TermPtr> Items = {tUnit(), tSphere(), tCylinder()};
  TermPtr U = tUnionAll(Items);
  ASSERT_EQ(U->kind(), OpKind::Union);
  EXPECT_EQ(U->child(0)->kind(), OpKind::Unit);
  ASSERT_EQ(U->child(1)->kind(), OpKind::Union);
  EXPECT_EQ(U->child(1)->child(1)->kind(), OpKind::Cylinder);
}

TEST(TermTest, UnionAllOfEmptyListIsEmpty) {
  EXPECT_EQ(tUnionAll({})->kind(), OpKind::Empty);
}

TEST(TermTest, UnionAllOfSingletonIsElement) {
  EXPECT_EQ(tUnionAll({tSphere()})->kind(), OpKind::Sphere);
}

TEST(TermTest, ListBuildsConsSpine) {
  TermPtr L = tList({tInt(1), tInt(2)});
  ASSERT_EQ(L->kind(), OpKind::Cons);
  EXPECT_EQ(L->child(0)->op().intValue(), 1);
  ASSERT_EQ(L->child(1)->kind(), OpKind::Cons);
  EXPECT_EQ(L->child(1)->child(1)->kind(), OpKind::Nil);
}

TEST(TermTest, IndexList) {
  TermPtr L = tIndexList(3);
  ASSERT_EQ(L->kind(), OpKind::Cons);
  EXPECT_EQ(L->child(0)->op().intValue(), 0);
  EXPECT_EQ(L->child(1)->child(0)->op().intValue(), 1);
  EXPECT_EQ(L->child(1)->child(1)->child(0)->op().intValue(), 2);
  EXPECT_EQ(tIndexList(0)->kind(), OpKind::Nil);
}
