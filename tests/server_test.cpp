//===-- tests/server_test.cpp - RPC server semantics ----------------------===//
//
// Coverage for the server layer above the codec and below the sockets:
//
//  * TokenBucket math on a synthetic clock: burst drain, refill,
//    retry-after hints, the capacity-0 "quotas off" mode;
//  * AdmissionController: per-client isolation, queue-full
//    reclassification, and the LRU bound on the client table;
//  * Server::handleFrame — the full request semantics driven without a
//    socket: handshake, submit/wait/poll/cancel round trips, quota and
//    queue-full rejections, unknown-id safety, oversized and malformed
//    frames, drain behavior, and a mutation fuzz sweep asserting no
//    network bytes can take the process down;
//  * TCP end to end: a real client against a real listener, including
//    graceful drain with a job in flight.
//
//===----------------------------------------------------------------------===//

#include "cad/Sexp.h"
#include "models/Models.h"
#include "server/Client.h"
#include "server/Server.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

using namespace shrinkray;
using namespace shrinkray::server;

namespace {

/// A tiny model every submit in this suite uses: fast to synthesize, so
/// tests measure server behavior, not pipeline time.
const char *kQuickModel = "(Union Unit (Translate (Vec3 2 0 0) Unit))";

ServerConfig quickConfig() {
  ServerConfig Cfg;
  Cfg.Service.NumWorkers = 2;
  Cfg.Service.EnableCache = false;
  Cfg.Service.MaxQueueDepth = 64;
  return Cfg;
}

JsonValue parsed(const std::string &Line) {
  JsonParseResult R = parseJson(Line);
  EXPECT_TRUE(R) << Line << " => " << R.Error;
  EXPECT_TRUE(R.Value.isObject()) << Line;
  return std::move(R.Value);
}

bool okOf(const JsonValue &V) {
  const JsonValue *Ok = V.get("ok");
  return Ok && Ok->asBool();
}

std::string submitFrame(const std::string &Name,
                        const std::string &Source = kQuickModel) {
  Request R;
  R.K = Request::Kind::Submit;
  R.Name = Name;
  R.Source = Source;
  R.TopK = 3;
  return encodeRequest(R);
}

std::string waitFrame(uint64_t Job, double TimeoutSec = -1.0) {
  Request R;
  R.K = Request::Kind::Wait;
  R.Job = Job;
  R.TimeoutSec = TimeoutSec;
  return encodeRequest(R);
}

/// Submits kQuickModel and waits it to completion through handleFrame,
/// returning the wait response.
JsonValue submitAndWaitFrame(Server &S, Server::Session &Sess,
                             const std::string &Name) {
  JsonValue Submitted = parsed(S.handleFrame(Sess, submitFrame(Name)));
  EXPECT_TRUE(okOf(Submitted)) << writeJson(Submitted);
  uint64_t Job = static_cast<uint64_t>(Submitted.get("job")->asNumber());
  JsonValue Done = parsed(S.handleFrame(Sess, waitFrame(Job)));
  EXPECT_TRUE(okOf(Done)) << writeJson(Done);
  return Done;
}

} // namespace

//===----------------------------------------------------------------------===//
// TokenBucket (synthetic clock)
//===----------------------------------------------------------------------===//

TEST(TokenBucketTest, BurstDrainsThenRefills) {
  QuotaConfig Q;
  Q.Capacity = 3;
  Q.RefillPerSec = 2; // one token each 0.5 s
  TokenBucket B(Q, /*NowSec=*/0.0);

  EXPECT_TRUE(B.tryTake(0.0));
  EXPECT_TRUE(B.tryTake(0.0));
  EXPECT_TRUE(B.tryTake(0.0));
  EXPECT_FALSE(B.tryTake(0.0)); // burst spent
  EXPECT_DOUBLE_EQ(B.retryAfterSec(0.0), 0.5);

  EXPECT_FALSE(B.tryTake(0.4)); // 0.8 tokens back, still under 1
  EXPECT_TRUE(B.tryTake(0.5));  // exactly one token refilled
  EXPECT_FALSE(B.tryTake(0.5));
}

TEST(TokenBucketTest, RefillClampsAtCapacity) {
  QuotaConfig Q;
  Q.Capacity = 2;
  Q.RefillPerSec = 100;
  TokenBucket B(Q, 0.0);
  EXPECT_DOUBLE_EQ(B.tokens(1000.0), 2.0); // hours idle != unbounded burst
  EXPECT_TRUE(B.tryTake(1000.0));
  EXPECT_TRUE(B.tryTake(1000.0));
  EXPECT_FALSE(B.tryTake(1000.0));
}

TEST(TokenBucketTest, TimeGoingBackwardsIsHarmless) {
  QuotaConfig Q;
  Q.Capacity = 1;
  Q.RefillPerSec = 1;
  TokenBucket B(Q, 10.0);
  EXPECT_TRUE(B.tryTake(10.0));
  // A clock regression must not mint tokens (or crash the math).
  EXPECT_FALSE(B.tryTake(5.0));
  EXPECT_TRUE(B.tryTake(11.0));
}

TEST(TokenBucketTest, ZeroCapacityMeansUnlimited) {
  QuotaConfig Q; // Capacity 0
  TokenBucket B(Q, 0.0);
  for (int I = 0; I < 1000; ++I)
    EXPECT_TRUE(B.tryTake(0.0));
  EXPECT_DOUBLE_EQ(B.retryAfterSec(0.0), 0.0);
}

TEST(TokenBucketTest, NoRefillRateMeansNoRetryHint) {
  QuotaConfig Q;
  Q.Capacity = 1;
  Q.RefillPerSec = 0; // burst-only quota
  TokenBucket B(Q, 0.0);
  EXPECT_TRUE(B.tryTake(0.0));
  EXPECT_FALSE(B.tryTake(100.0));
  EXPECT_DOUBLE_EQ(B.retryAfterSec(100.0), 0.0);
}

//===----------------------------------------------------------------------===//
// AdmissionController
//===----------------------------------------------------------------------===//

TEST(AdmissionControllerTest, ClientsHaveIndependentBuckets) {
  QuotaConfig Q;
  Q.Capacity = 1;
  Q.RefillPerSec = 1;
  AdmissionController A(Q);

  EXPECT_TRUE(A.admitSubmit("alice", 0.0).Admitted);
  AdmissionController::Decision D = A.admitSubmit("alice", 0.0);
  EXPECT_FALSE(D.Admitted);
  EXPECT_GT(D.RetryAfterSec, 0.0);
  EXPECT_TRUE(A.admitSubmit("bob", 0.0).Admitted); // alice's spend != bob's

  std::vector<ClientStats> Stats = A.clientStats();
  ASSERT_EQ(Stats.size(), 2u);
  EXPECT_EQ(Stats[0].Client, "bob"); // most recently seen first
  EXPECT_EQ(Stats[1].Client, "alice");
  EXPECT_EQ(Stats[1].Submitted, 1u);
  EXPECT_EQ(Stats[1].RejectedQuota, 1u);
}

TEST(AdmissionControllerTest, QueueFullReclassifiesTheAttempt) {
  AdmissionController A(QuotaConfig{}); // quotas off
  EXPECT_TRUE(A.admitSubmit("c", 0.0).Admitted);
  A.noteQueueFull("c", 0.0);
  std::vector<ClientStats> Stats = A.clientStats();
  ASSERT_EQ(Stats.size(), 1u);
  EXPECT_EQ(Stats[0].Submitted, 0u); // the admit was taken back...
  EXPECT_EQ(Stats[0].RejectedQueueFull, 1u); // ...and recorded as refusal
}

TEST(AdmissionControllerTest, ClientTableIsLruBounded) {
  AdmissionController A(QuotaConfig{}, /*MaxClients=*/4);
  for (int I = 0; I < 100; ++I)
    A.admitSubmit("client-" + std::to_string(I), 0.0);
  EXPECT_EQ(A.numClients(), 4u);
  std::vector<ClientStats> Stats = A.clientStats();
  ASSERT_EQ(Stats.size(), 4u);
  EXPECT_EQ(Stats[0].Client, "client-99"); // survivors are the newest
  EXPECT_EQ(Stats[3].Client, "client-96");
}

TEST(AdmissionControllerTest, EvictionForgetsTheBucketState) {
  QuotaConfig Q;
  Q.Capacity = 1;
  Q.RefillPerSec = 0;
  AdmissionController A(Q, /*MaxClients=*/1);
  EXPECT_TRUE(A.admitSubmit("a", 0.0).Admitted);
  EXPECT_FALSE(A.admitSubmit("a", 0.0).Admitted); // bucket empty
  A.admitSubmit("b", 0.0);                        // evicts a
  // Re-arriving after eviction, "a" gets a fresh (full) bucket — the
  // documented cost of bounding the table.
  EXPECT_TRUE(A.admitSubmit("a", 0.0).Admitted);
}

//===----------------------------------------------------------------------===//
// handleFrame: handshake and round trips (no sockets)
//===----------------------------------------------------------------------===//

TEST(ServerFrameTest, HelloNegotiatesAndSetsIdentity) {
  Server S(quickConfig());
  Server::Session Sess;
  JsonValue V = parsed(S.handleFrame(
      Sess, "{\"op\":\"hello\",\"client\":\"t1\",\"proto\":1}"));
  EXPECT_TRUE(okOf(V));
  EXPECT_EQ(V.get("client")->asString(), "t1");
  EXPECT_EQ(Sess.Client, "t1");
  EXPECT_TRUE(Sess.SaidHello);
}

TEST(ServerFrameTest, ProtoMismatchNamesTheServerVersion) {
  Server S(quickConfig());
  Server::Session Sess;
  JsonValue V = parsed(
      S.handleFrame(Sess, "{\"op\":\"hello\",\"client\":\"t\",\"proto\":99}"));
  EXPECT_FALSE(okOf(V));
  EXPECT_NE(V.get("error")->asString().find("1"), std::string::npos);
  EXPECT_FALSE(Sess.SaidHello);
}

TEST(ServerFrameTest, SubmitWaitPollCancelRoundTrip) {
  Server S(quickConfig());
  Server::Session Sess;
  JsonValue Done = submitAndWaitFrame(S, Sess, "roundtrip");
  EXPECT_TRUE(Done.get("done")->asBool());
  EXPECT_EQ(Done.get("status")->asString(), "ok");
  const JsonValue *Programs = Done.get("programs");
  ASSERT_NE(Programs, nullptr);
  EXPECT_GT(Programs->size(), 0u);
  EXPECT_FALSE(Programs->at(0).get("sexp")->asString().empty());

  uint64_t Job = static_cast<uint64_t>(Done.get("job")->asNumber());
  JsonValue Poll = parsed(S.handleFrame(
      Sess, "{\"op\":\"poll\",\"job\":" + std::to_string(Job) + "}"));
  EXPECT_TRUE(okOf(Poll));
  EXPECT_TRUE(Poll.get("done")->asBool());

  // Cancelling a finished job reports false, not an error.
  JsonValue Cancel = parsed(S.handleFrame(
      Sess, "{\"op\":\"cancel\",\"job\":" + std::to_string(Job) + "}"));
  EXPECT_TRUE(okOf(Cancel));
  EXPECT_FALSE(Cancel.get("cancelled")->asBool());
}

TEST(ServerFrameTest, UnknownJobIdsAreErrorsNotAborts) {
  Server S(quickConfig());
  Server::Session Sess;
  for (const char *Frame :
       {"{\"op\":\"wait\",\"job\":424242}", "{\"op\":\"poll\",\"job\":424242}",
        "{\"op\":\"cancel\",\"job\":424242}"}) {
    JsonValue V = parsed(S.handleFrame(Sess, Frame));
    if (std::string(Frame).find("cancel") != std::string::npos) {
      // cancel answers ok with cancelled:false (idempotent cancel).
      EXPECT_TRUE(okOf(V)) << Frame;
      EXPECT_FALSE(V.get("cancelled")->asBool());
    } else {
      EXPECT_FALSE(okOf(V)) << Frame;
      EXPECT_FALSE(V.get("error")->asString().empty());
    }
  }
  // The server still serves afterwards.
  submitAndWaitFrame(S, Sess, "after-unknown");
}

TEST(ServerFrameTest, MalformedFramesGetErrorResponses) {
  Server S(quickConfig());
  Server::Session Sess;
  for (const char *Frame :
       {"", "garbage", "[]", "{\"op\":\"warp\"}", "{\"op\":\"submit\"}",
        "{\"op\":\"wait\"}", "{\"op\":\"submit\",\"source\":\"\"}"}) {
    JsonValue V = parsed(S.handleFrame(Sess, Frame));
    EXPECT_FALSE(okOf(V)) << Frame;
    EXPECT_FALSE(V.get("error")->asString().empty()) << Frame;
  }
  submitAndWaitFrame(S, Sess, "after-malformed");
}

TEST(ServerFrameTest, OversizedFrameIsRefused) {
  ServerConfig Cfg = quickConfig();
  Cfg.MaxFrameBytes = 256;
  Server S(Cfg);
  Server::Session Sess;
  JsonValue V =
      parsed(S.handleFrame(Sess, submitFrame("big", std::string(1024, 'x'))));
  EXPECT_FALSE(okOf(V));
  EXPECT_NE(V.get("error")->asString().find("frame"), std::string::npos);
}

TEST(ServerFrameTest, SubmitWithBadSourceFailsTheJobNotTheServer) {
  Server S(quickConfig());
  Server::Session Sess;
  JsonValue Submitted =
      parsed(S.handleFrame(Sess, submitFrame("bad", "(Union Unit")));
  ASSERT_TRUE(okOf(Submitted)); // admission accepts; the pipeline fails it
  uint64_t Job = static_cast<uint64_t>(Submitted.get("job")->asNumber());
  JsonValue Done = parsed(S.handleFrame(Sess, waitFrame(Job)));
  EXPECT_TRUE(okOf(Done));
  EXPECT_EQ(Done.get("status")->asString(), "failed");
  EXPECT_FALSE(Done.get("error")->asString().empty());
  submitAndWaitFrame(S, Sess, "after-bad-source");
}

//===----------------------------------------------------------------------===//
// handleFrame: admission control
//===----------------------------------------------------------------------===//

TEST(ServerFrameTest, QuotaRejectionCarriesRetryAfter) {
  ServerConfig Cfg = quickConfig();
  Cfg.Quota.Capacity = 2;
  Cfg.Quota.RefillPerSec = 0.001; // glacial refill: rejections stay put
  Server S(Cfg);
  Server::Session Sess;
  Sess.Client = "greedy";

  EXPECT_TRUE(okOf(parsed(S.handleFrame(Sess, submitFrame("q1")))));
  EXPECT_TRUE(okOf(parsed(S.handleFrame(Sess, submitFrame("q2")))));
  JsonValue Rej = parsed(S.handleFrame(Sess, submitFrame("q3")));
  EXPECT_FALSE(okOf(Rej));
  EXPECT_EQ(Rej.get("rejected")->asString(), "quota");
  EXPECT_GT(Rej.get("retry_after_sec")->asNumber(), 0.0);

  // Another identity is unaffected.
  Server::Session Other;
  Other.Client = "modest";
  EXPECT_TRUE(okOf(parsed(S.handleFrame(Other, submitFrame("q4")))));
}

TEST(ServerFrameTest, FullQueueRejectsWhileInFlightJobsComplete) {
  ServerConfig Cfg = quickConfig();
  Cfg.Service.NumWorkers = 1;
  Cfg.Service.MaxQueueDepth = 1;
  Server S(Cfg);
  Server::Session Sess;

  // Park the single worker on the corpus's slowest model (seconds of
  // work; cancelled below once the rejection landed), then fill the
  // 1-deep queue behind it.
  Request Slow;
  Slow.K = Request::Kind::Submit;
  Slow.Name = "slow";
  Slow.Source = printSexp(models::modelByName("3432939:nintendo-slot").FlatCsg);
  JsonValue First = parsed(S.handleFrame(Sess, encodeRequest(Slow)));
  ASSERT_TRUE(okOf(First));
  uint64_t SlowJob = static_cast<uint64_t>(First.get("job")->asNumber());

  // Saturate: keep submitting until one fill job is pending and the next
  // bounces. The loop tolerates the races (worker pickup timing) by
  // re-filling; with the worker parked it converges in two iterations.
  bool SawQueueFull = false;
  std::vector<uint64_t> Accepted{SlowJob};
  for (int I = 0; I < 200 && !SawQueueFull; ++I) {
    JsonValue V = parsed(S.handleFrame(Sess, submitFrame("fill")));
    if (okOf(V)) {
      Accepted.push_back(
          static_cast<uint64_t>(V.get("job")->asNumber()));
      continue;
    }
    EXPECT_EQ(V.get("rejected")->asString(), "queue_full");
    EXPECT_GT(V.get("retry_after_sec")->asNumber(), 0.0);
    SawQueueFull = true;
  }
  EXPECT_TRUE(SawQueueFull);

  // Unpark the worker; cancellation is cooperative, so the slow job
  // still completes (with a partial result), as does everything queued.
  JsonValue Cancel = parsed(S.handleFrame(
      Sess, "{\"op\":\"cancel\",\"job\":" + std::to_string(SlowJob) + "}"));
  EXPECT_TRUE(okOf(Cancel));

  // Backpressure, not load shedding: every accepted job still completes.
  for (uint64_t Job : Accepted) {
    JsonValue Done = parsed(S.handleFrame(Sess, waitFrame(Job)));
    EXPECT_TRUE(okOf(Done)) << writeJson(Done);
    EXPECT_TRUE(Done.get("done")->asBool());
  }
}

TEST(ServerFrameTest, DrainingServerRejectsSubmitsServesWaits) {
  Server S(quickConfig());
  Server::Session Sess;
  JsonValue Submitted = parsed(S.handleFrame(Sess, submitFrame("pre-drain")));
  ASSERT_TRUE(okOf(Submitted));
  uint64_t Job = static_cast<uint64_t>(Submitted.get("job")->asNumber());

  S.requestStop();
  JsonValue Rej = parsed(S.handleFrame(Sess, submitFrame("post-drain")));
  EXPECT_FALSE(okOf(Rej));
  EXPECT_EQ(Rej.get("rejected")->asString(), "draining");

  // The in-flight job is still served to completion.
  JsonValue Done = parsed(S.handleFrame(Sess, waitFrame(Job)));
  EXPECT_TRUE(okOf(Done));
  EXPECT_TRUE(Done.get("done")->asBool());

  // Stats still answers during drain.
  EXPECT_TRUE(okOf(parsed(S.handleFrame(Sess, "{\"op\":\"stats\"}"))));
}

TEST(ServerFrameTest, StatsReportsCountersAndClients) {
  Server S(quickConfig());
  Server::Session Sess;
  Sess.Client = "counter";
  submitAndWaitFrame(S, Sess, "counted");
  JsonValue V = parsed(S.handleFrame(Sess, "{\"op\":\"stats\"}"));
  ASSERT_TRUE(okOf(V));
  const JsonValue *Stats = V.get("stats");
  ASSERT_NE(Stats, nullptr);
  const JsonValue *Svc = Stats->get("service");
  ASSERT_NE(Svc, nullptr);
  EXPECT_EQ(Svc->get("submitted")->asNumber(), 1.0);
  EXPECT_EQ(Svc->get("completed")->asNumber(), 1.0);
  const JsonValue *Clients = Stats->get("clients");
  ASSERT_NE(Clients, nullptr);
  ASSERT_EQ(Clients->size(), 1u);
  EXPECT_EQ(Clients->at(0).get("client")->asString(), "counter");
}

//===----------------------------------------------------------------------===//
// handleFrame: fuzz (no byte sequence crashes the server)
//===----------------------------------------------------------------------===//

namespace {

struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 11;
  }
  size_t below(size_t N) { return static_cast<size_t>(next() % N); }
};

} // namespace

TEST(ServerFuzzTest, MutatedAndRandomFramesNeverKillTheServer) {
  Server S(quickConfig());
  Server::Session Sess;
  std::vector<std::string> Seeds = {
      "{\"op\":\"hello\",\"client\":\"fuzz\",\"proto\":1}",
      submitFrame("fuzz"),
      waitFrame(1, 0.0),
      "{\"op\":\"poll\",\"job\":1}",
      "{\"op\":\"cancel\",\"job\":1}",
      "{\"op\":\"stats\"}",
  };
  Lcg Rng(0xf00dULL);
  for (size_t Round = 0; Round < 2000; ++Round) {
    std::string Frame = Seeds[Rng.below(Seeds.size())];
    for (size_t M = 1 + Rng.below(4); M > 0 && !Frame.empty(); --M) {
      switch (Rng.below(3)) {
      case 0:
        Frame[Rng.below(Frame.size())] =
            static_cast<char>(static_cast<unsigned char>(Rng.next() & 0xff));
        break;
      case 1:
        Frame.insert(Frame.begin() + static_cast<long>(Rng.below(Frame.size())),
                     static_cast<char>(
                         static_cast<unsigned char>(Rng.next() & 0xff)));
        break;
      default:
        Frame.resize(Rng.below(Frame.size()));
        break;
      }
    }
    std::string Response = S.handleFrame(Sess, Frame);
    // Whatever went in, exactly one parseable response object comes out.
    JsonParseResult R = parseJson(Response);
    ASSERT_TRUE(R) << "unparseable response '" << Response << "' for frame '"
                   << Frame << "'";
    ASSERT_TRUE(R.Value.isObject());
    ASSERT_NE(R.Value.get("ok"), nullptr);
  }
  // And the server still works.
  submitAndWaitFrame(S, Sess, "after-fuzz");
}

//===----------------------------------------------------------------------===//
// TCP end to end
//===----------------------------------------------------------------------===//

TEST(ServerTcpTest, ClientRoundTripAndGracefulDrain) {
  ServerConfig Cfg = quickConfig();
  Cfg.DrainGraceSec = 10.0;
  Server S(Cfg);
  uint16_t Port = 0;
  std::thread ServerThread([&] { S.runTcp(0, &Port); });
  // runTcp publishes the bound port before accepting; spin briefly.
  for (int I = 0; I < 200 && Port == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_NE(Port, 0) << "server never bound";

  ClientConnection Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect("127.0.0.1", Port, Error)) << Error;
  ASSERT_TRUE(Conn.hello("tcp-test", Error)) << Error;

  Request Submit;
  Submit.K = Request::Kind::Submit;
  Submit.Name = "tcp-job";
  Submit.Source = kQuickModel;
  std::optional<RemoteOutcome> Out = Conn.submitAndWait(Submit, Error);
  ASSERT_TRUE(Out) << Error;
  EXPECT_EQ(Out->Status, "ok");
  ASSERT_FALSE(Out->Programs.empty());
  EXPECT_FALSE(Out->Programs.front().Sexp.empty());

  // Drain with the connection open: the server must exit its accept
  // loop, finish the drain, and join — not hang on the live client.
  S.requestStop();
  ServerThread.join();
  SUCCEED();
}
