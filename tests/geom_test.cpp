//===-- tests/geom_test.cpp - Geometric semantics tests -------------------===//

#include "geom/Mesh.h"
#include "geom/Sample.h"
#include "geom/Solid.h"

#include <gtest/gtest.h>

using namespace shrinkray;
using namespace shrinkray::geom;

TEST(SolidTest, UnitCubeMembership) {
  TermPtr T = tUnit();
  EXPECT_TRUE(contains(T, {0.5, 0.5, 0.5}));
  EXPECT_TRUE(contains(T, {0, 0, 0}));
  EXPECT_FALSE(contains(T, {1.5, 0.5, 0.5}));
  EXPECT_FALSE(contains(T, {-0.1, 0.5, 0.5}));
}

TEST(SolidTest, CylinderMembership) {
  TermPtr T = tCylinder();
  EXPECT_TRUE(contains(T, {0, 0, 0.5}));
  EXPECT_TRUE(contains(T, {0.9, 0, 0.1}));
  EXPECT_FALSE(contains(T, {0.9, 0.9, 0.5})); // outside radius
  EXPECT_FALSE(contains(T, {0, 0, 1.5}));     // above cap
  EXPECT_FALSE(contains(T, {0, 0, -0.1}));    // below base
}

TEST(SolidTest, SphereMembership) {
  TermPtr T = tSphere();
  EXPECT_TRUE(contains(T, {0, 0, 0}));
  EXPECT_TRUE(contains(T, {0.5, 0.5, 0.5}));
  EXPECT_FALSE(contains(T, {0.8, 0.8, 0.0}));
}

TEST(SolidTest, HexagonMembership) {
  TermPtr T = tHexagon();
  EXPECT_TRUE(contains(T, {0, 0, 0.5}));
  EXPECT_TRUE(contains(T, {0.99, 0, 0.5}));   // near the +x vertex
  EXPECT_FALSE(contains(T, {0, 0.9, 0.5}));   // beyond the apothem
  EXPECT_TRUE(contains(T, {0, 0.86, 0.5}));   // just inside the apothem
  EXPECT_FALSE(contains(T, {0.9, 0.5, 0.5})); // outside the slanted edge
  EXPECT_FALSE(contains(T, {0, 0, 1.1}));
}

TEST(SolidTest, EmptyContainsNothing) {
  EXPECT_FALSE(contains(tEmpty(), {0, 0, 0}));
}

TEST(SolidTest, TranslateShiftsMembership) {
  TermPtr T = tTranslate(10, 0, 0, tUnit());
  EXPECT_TRUE(contains(T, {10.5, 0.5, 0.5}));
  EXPECT_FALSE(contains(T, {0.5, 0.5, 0.5}));
}

TEST(SolidTest, ScaleStretchesMembership) {
  TermPtr T = tScale(80, 80, 100, tCylinder());
  EXPECT_TRUE(contains(T, {79, 0, 50}));
  EXPECT_FALSE(contains(T, {81, 0, 50}));
  EXPECT_FALSE(contains(T, {0, 0, 101}));
}

TEST(SolidTest, ZeroScaleIsDegenerate) {
  TermPtr T = tScale(0, 1, 1, tUnit());
  EXPECT_FALSE(contains(T, {0, 0.5, 0.5}));
}

TEST(SolidTest, RotateMatchesOpenScadConvention) {
  // Rotating the unit cube 90 degrees about z maps [0,1]^2 to
  // [-1,0] x [0,1] in the xy plane.
  TermPtr T = tRotate(0, 0, 90, tUnit());
  EXPECT_TRUE(contains(T, {-0.5, 0.5, 0.5}));
  EXPECT_FALSE(contains(T, {0.5, 0.5, 0.5}));
}

TEST(SolidTest, BooleanSemantics) {
  TermPtr A = tUnit();
  TermPtr B = tTranslate(0.5, 0, 0, tUnit());
  Vec3 OnlyA{0.25, 0.5, 0.5}, Both{0.75, 0.5, 0.5}, OnlyB{1.25, 0.5, 0.5};
  EXPECT_TRUE(contains(tUnion(A, B), OnlyA));
  EXPECT_TRUE(contains(tUnion(A, B), OnlyB));
  EXPECT_TRUE(contains(tInter(A, B), Both));
  EXPECT_FALSE(contains(tInter(A, B), OnlyA));
  EXPECT_TRUE(contains(tDiff(A, B), OnlyA));
  EXPECT_FALSE(contains(tDiff(A, B), Both));
}

TEST(SolidTest, BoundingBoxSimple) {
  Aabb Box = boundingBox(tTranslate(5, 5, 5, tUnit()));
  EXPECT_NEAR(Box.Lo.X, 5.0, 1e-12);
  EXPECT_NEAR(Box.Hi.Z, 6.0, 1e-12);
}

TEST(SolidTest, BoundingBoxOfUnionCoversBoth) {
  Aabb Box = boundingBox(tUnion(tUnit(), tTranslate(10, 0, 0, tUnit())));
  EXPECT_NEAR(Box.Lo.X, 0.0, 1e-12);
  EXPECT_NEAR(Box.Hi.X, 11.0, 1e-12);
}

TEST(SolidTest, BoundingBoxNegativeScaleFlips) {
  Aabb Box = boundingBox(tScale(-2, 1, 1, tUnit()));
  EXPECT_NEAR(Box.Lo.X, -2.0, 1e-12);
  EXPECT_NEAR(Box.Hi.X, 0.0, 1e-12);
}

TEST(SolidTest, BoundingBoxRotationIsConservative) {
  TermPtr T = tRotate(0, 0, 45, tUnit());
  Aabb Box = boundingBox(T);
  // Must cover the rotated cube.
  EXPECT_LE(Box.Lo.X, -0.70);
  EXPECT_GE(Box.Hi.Y, 1.41);
}

TEST(SampleTest, IdenticalModelsAreEquivalent) {
  TermPtr T = tUnion(tScale(2, 2, 1, tCylinder()),
                     tTranslate(0, 0, 1, tSphere()));
  SampleReport R = compareBySampling(T, T);
  EXPECT_TRUE(R.Equivalent);
  EXPECT_EQ(R.Mismatches, 0u);
}

TEST(SampleTest, CommutedUnionIsEquivalent) {
  TermPtr A = tUnion(tUnit(), tTranslate(3, 0, 0, tSphere()));
  TermPtr B = tUnion(tTranslate(3, 0, 0, tSphere()), tUnit());
  EXPECT_TRUE(sampleEquivalent(A, B));
}

TEST(SampleTest, DetectsMissingPart) {
  TermPtr A = tUnion(tUnit(), tTranslate(5, 0, 0, tUnit()));
  TermPtr B = tUnit();
  SampleReport R = compareBySampling(A, B);
  EXPECT_FALSE(R.Equivalent);
  EXPECT_GT(R.Mismatches, 100u);
}

TEST(SampleTest, DetectsSmallOffset) {
  TermPtr A = tUnit();
  TermPtr B = tTranslate(0.2, 0, 0, tUnit());
  EXPECT_FALSE(sampleEquivalent(A, B));
}

TEST(SampleTest, ToleranceAdmitsNoise) {
  TermPtr A = tScale(10, 10, 10, tUnit());
  TermPtr B = tScale(10.001, 10, 10, tUnit());
  SampleOptions Strict;
  SampleOptions Loose;
  Loose.MismatchTolerance = 0.01;
  EXPECT_TRUE(sampleEquivalent(A, B, Loose));
  // With zero tolerance the 0.001 sliver may or may not be hit; only check
  // the loose direction (the strict comparison is allowed to pass).
  SampleReport R = compareBySampling(A, B, Strict);
  EXPECT_LE(R.mismatchRatio(), 0.001);
}

TEST(SampleTest, BothEmptyAreEquivalent) {
  EXPECT_TRUE(sampleEquivalent(tEmpty(), tDiff(tUnit(), tUnit())));
}

TEST(MeshTest, CubeHasTwelveTriangles) {
  Mesh M = tessellate(tUnit());
  EXPECT_EQ(M.numTriangles(), 12u);
  EXPECT_FALSE(M.Approximate);
}

TEST(MeshTest, CylinderTriangleCountMatchesSegments) {
  TessellationOptions Opts;
  Opts.CircleSegments = 16;
  Mesh M = tessellate(tCylinder(), Opts);
  // Per segment: 2 wall + 2 cap triangles.
  EXPECT_EQ(M.numTriangles(), 16u * 4);
}

TEST(MeshTest, UnionConcatenates) {
  Mesh M = tessellate(tUnion(tUnit(), tTranslate(2, 0, 0, tUnit())));
  EXPECT_EQ(M.numTriangles(), 24u);
  EXPECT_FALSE(M.Approximate);
}

TEST(MeshTest, DiffIsMarkedApproximate) {
  Mesh M = tessellate(tDiff(tUnit(), tSphere()));
  EXPECT_TRUE(M.Approximate);
}

TEST(MeshTest, TransformsMoveVertices) {
  Mesh M = tessellate(tTranslate(10, 20, 30, tUnit()));
  for (const Vec3 &V : M.Vertices) {
    EXPECT_GE(V.X, 10.0 - 1e-9);
    EXPECT_LE(V.X, 11.0 + 1e-9);
    EXPECT_GE(V.Z, 30.0 - 1e-9);
  }
}

TEST(MeshTest, StlOutputWellFormed) {
  std::string Stl = writeStlAscii(tessellate(tUnit()), "unit_cube");
  EXPECT_EQ(Stl.find("solid unit_cube"), 0u);
  EXPECT_NE(Stl.find("facet normal"), std::string::npos);
  EXPECT_NE(Stl.find("endsolid unit_cube"), std::string::npos);
  // 12 facets for a cube.
  size_t Count = 0, Pos = 0;
  while ((Pos = Stl.find("endfacet", Pos)) != std::string::npos) {
    ++Count;
    Pos += 8;
  }
  EXPECT_EQ(Count, 12u);
}

TEST(MeshTest, SurfaceSamplesLieOnCube) {
  Mesh M = tessellate(tUnit());
  std::vector<Vec3> Points = sampleSurface(M, 500, 123);
  ASSERT_EQ(Points.size(), 500u);
  for (const Vec3 &P : Points) {
    // On the surface, at least one coordinate is 0 or 1.
    bool OnFace = false;
    for (double C : {P.X, P.Y, P.Z})
      OnFace |= std::fabs(C) < 1e-9 || std::fabs(C - 1.0) < 1e-9;
    EXPECT_TRUE(OnFace);
  }
}

TEST(MeshTest, HausdorffOfIdenticalCloudsIsZero) {
  Mesh M = tessellate(tUnit());
  std::vector<Vec3> A = sampleSurface(M, 200, 1);
  EXPECT_DOUBLE_EQ(hausdorffDistance(A, A), 0.0);
}

TEST(MeshTest, HausdorffSeesTranslation) {
  Mesh M1 = tessellate(tUnit());
  Mesh M2 = tessellate(tTranslate(5, 0, 0, tUnit()));
  std::vector<Vec3> A = sampleSurface(M1, 300, 1);
  std::vector<Vec3> B = sampleSurface(M2, 300, 2);
  double D = hausdorffDistance(A, B);
  EXPECT_GT(D, 3.5);
  EXPECT_LT(D, 6.5);
}

TEST(MeshTest, HausdorffOfDenseSamplesIsSmall) {
  Mesh M = tessellate(tSphere());
  std::vector<Vec3> A = sampleSurface(M, 2000, 1);
  std::vector<Vec3> B = sampleSurface(M, 2000, 99);
  EXPECT_LT(hausdorffDistance(A, B), 0.35);
}
