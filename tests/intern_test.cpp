//===-- tests/intern_test.cpp - Hashconsed term interner ------------------===//
//
// Coverage for the term interner behind makeTerm:
//
//  * pointer identity <=> structural equality, differentially against the
//    pre-interning recursive walker on every distinct subterm of the
//    16-model corpus (printer round-trips and bottom-up rebuilds must
//    land on the very same node);
//  * adversarial respellings: Int 5 vs Float 5.0 are distinct nodes that
//    share a value hash, and Float -0.0 *is* Float 0.0;
//  * the metadata precomputed at construction (hash / valueHash / size /
//    depth / primitives / containsLoop) against freshly recomputed
//    walker oracles, on the corpus and on loopy programs;
//  * a multi-threaded intern storm: concurrent builders of one term
//    family all receive pointer-identical nodes while unrelated
//    transient terms are created and retired (the suite runs under both
//    ASan and TSan in CI, so this doubles as the deleter race check).
//
//===----------------------------------------------------------------------===//

#include "cad/Sexp.h"
#include "models/Models.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>

using namespace shrinkray;

namespace {

//===----------------------------------------------------------------------===//
// Walker oracles: the pre-interning recursive definitions, kept here so
// the O(1) precomputed answers are checked against first principles.
//===----------------------------------------------------------------------===//

bool walkerEquals(const TermPtr &A, const TermPtr &B) {
  if (A->op() != B->op() || A->numChildren() != B->numChildren())
    return false;
  for (size_t I = 0; I < A->numChildren(); ++I)
    if (!walkerEquals(A->child(I), B->child(I)))
      return false;
  return true;
}

size_t walkerHash(const TermPtr &T) {
  size_t H = T->op().hash();
  for (const TermPtr &Kid : T->children())
    hashCombine(H, walkerHash(Kid));
  // makeTerm avalanches the combined hash before storing it (the intern
  // shards probe with the low bits and shard by the high bits, so
  // near-sequential leaf hashes must be scattered first).
  return static_cast<size_t>(mix64(H));
}

size_t walkerValueHash(const TermPtr &T) {
  std::vector<size_t> KidHashes;
  KidHashes.reserve(T->numChildren());
  for (const TermPtr &Kid : T->children())
    KidHashes.push_back(walkerValueHash(Kid));
  return termValueHashNode(T->op(), KidHashes);
}

uint64_t walkerSize(const TermPtr &T) {
  uint64_t N = 1;
  for (const TermPtr &Kid : T->children())
    N += walkerSize(Kid);
  return N;
}

uint64_t walkerDepth(const TermPtr &T) {
  uint64_t D = 0;
  for (const TermPtr &Kid : T->children())
    D = std::max(D, walkerDepth(Kid));
  return D + 1;
}

uint64_t walkerPrimitives(const TermPtr &T) {
  OpKind K = T->kind();
  uint64_t N = ((isPrimitiveOp(K) && K != OpKind::Empty) ||
                K == OpKind::External)
                   ? 1
                   : 0;
  for (const TermPtr &Kid : T->children())
    N += walkerPrimitives(Kid);
  return N;
}

bool walkerContainsLoop(const TermPtr &T) {
  OpKind K = T->kind();
  if (K == OpKind::Fold || K == OpKind::Map || K == OpKind::Mapi ||
      K == OpKind::Repeat || K == OpKind::Fun)
    return true;
  for (const TermPtr &Kid : T->children())
    if (walkerContainsLoop(Kid))
      return true;
  return false;
}

/// Every distinct subterm of \p T, keyed by node address (with interning,
/// distinct address == distinct structure; the tests verify exactly that).
void collectSubterms(const TermPtr &T,
                     std::unordered_map<const Term *, TermPtr> &Seen) {
  if (!Seen.emplace(T.get(), T).second)
    return;
  for (const TermPtr &Kid : T->children())
    collectSubterms(Kid, Seen);
}

std::vector<TermPtr> corpusSubterms() {
  std::unordered_map<const Term *, TermPtr> Seen;
  for (const models::BenchmarkModel &M : models::allModels())
    collectSubterms(M.FlatCsg, Seen);
  std::vector<TermPtr> Out;
  Out.reserve(Seen.size());
  for (auto &[Raw, T] : Seen)
    Out.push_back(T);
  return Out;
}

/// Rebuilds \p T bottom-up through makeTerm — with interning this must
/// return the identical node, having taken the intern-hit path at every
/// level.
TermPtr rebuild(const TermPtr &T) {
  std::vector<TermPtr> Kids;
  Kids.reserve(T->numChildren());
  for (const TermPtr &Kid : T->children())
    Kids.push_back(rebuild(Kid));
  return makeTerm(T->op(), std::move(Kids));
}

} // namespace

//===----------------------------------------------------------------------===//
// Pointer identity <=> structural equality
//===----------------------------------------------------------------------===//

TEST(InternTest, CorpusRoundTripsLandOnTheSameNode) {
  for (const models::BenchmarkModel &M : models::allModels()) {
    const std::string S = printSexp(M.FlatCsg);
    ParseResult A = parseSexp(S);
    ParseResult B = parseSexp(S);
    ASSERT_TRUE(A && B) << M.Name;
    EXPECT_EQ(A.Value.get(), M.FlatCsg.get()) << M.Name;
    EXPECT_EQ(A.Value.get(), B.Value.get()) << M.Name;
    EXPECT_TRUE(termEquals(A.Value, M.FlatCsg)) << M.Name;
  }
}

TEST(InternTest, PointerIdentityMatchesTheStructuralWalker) {
  const std::vector<TermPtr> Subs = corpusSubterms();
  ASSERT_FALSE(Subs.empty());

  // Distinct nodes must be walker-unequal. Checking full cross products
  // is quadratic in thousands of nodes, so check where a broken interner
  // would actually hide: nodes sharing a structural-hash bucket.
  std::unordered_map<size_t, std::vector<TermPtr>> ByHash;
  for (const TermPtr &T : Subs)
    ByHash[T->hash()].push_back(T);
  for (const auto &[H, Bucket] : ByHash)
    for (size_t I = 0; I < Bucket.size(); ++I)
      for (size_t J = I + 1; J < Bucket.size(); ++J)
        EXPECT_FALSE(walkerEquals(Bucket[I], Bucket[J]))
            << printSexp(Bucket[I]);

  // And every bottom-up rebuild is walker-equal *and* pointer-equal.
  for (const TermPtr &T : Subs) {
    TermPtr Copy = rebuild(T);
    EXPECT_TRUE(walkerEquals(Copy, T));
    EXPECT_EQ(Copy.get(), T.get()) << printSexp(T);
  }
}

TEST(InternTest, AdversarialRespellingsShareValueHashOnly) {
  // Int 5 and Float 5.0 are structurally different programs...
  TermPtr I5 = tInt(5);
  TermPtr F5 = tFloat(5.0);
  EXPECT_NE(I5.get(), F5.get());
  EXPECT_FALSE(termEquals(I5, F5));
  EXPECT_FALSE(walkerEquals(I5, F5));
  // ...but one value: they share the value hash and compare approx-equal
  // even at epsilon 0.
  EXPECT_EQ(termValueHash(I5), termValueHash(F5));
  EXPECT_TRUE(termApproxEquals(I5, F5, 0.0));

  // -0.0 and +0.0 are the *same* Float operator (exact == on the
  // payload), so the interner must land both spellings on one node, and
  // the value hash folds the zeros across the Int divide too.
  EXPECT_EQ(tFloat(-0.0).get(), tFloat(0.0).get());
  EXPECT_EQ(termValueHash(tFloat(-0.0)), termValueHash(tInt(0)));

  // Whole-tree respelling, through the parser like real inputs.
  ParseResult IntSpelling = parseSexp("(Translate (Vec3 1 2 3) Unit)");
  ParseResult FloatSpelling =
      parseSexp("(Translate (Vec3 1.0 2.0 3.0) Unit)");
  ASSERT_TRUE(IntSpelling && FloatSpelling);
  EXPECT_NE(IntSpelling.Value.get(), FloatSpelling.Value.get());
  EXPECT_FALSE(walkerEquals(IntSpelling.Value, FloatSpelling.Value));
  EXPECT_EQ(termValueHash(IntSpelling.Value),
            termValueHash(FloatSpelling.Value));
  EXPECT_TRUE(termApproxEquals(IntSpelling.Value, FloatSpelling.Value, 0.0));
}

//===----------------------------------------------------------------------===//
// Precomputed metadata
//===----------------------------------------------------------------------===//

TEST(InternTest, PrecomputedMetadataMatchesRecomputedOracles) {
  std::vector<TermPtr> Subs = corpusSubterms();
  // The flat corpus never exercises the loop combinators; add a looped
  // program so containsLoop and the loop-aware metrics get real coverage.
  ParseResult Loopy = parseSexp(
      "(Fold Union Empty (Cons (Translate (Vec3 2 0 0) Unit) "
      "(Cons (Translate (Vec3 4 0 0) Unit) Nil)))");
  ASSERT_TRUE(Loopy);
  std::unordered_map<const Term *, TermPtr> Seen;
  collectSubterms(Loopy.Value, Seen);
  for (auto &[Raw, T] : Seen)
    Subs.push_back(T);

  for (const TermPtr &T : Subs) {
    EXPECT_EQ(T->hash(), walkerHash(T)) << printSexp(T);
    EXPECT_EQ(T->valueHash(), walkerValueHash(T)) << printSexp(T);
    EXPECT_EQ(T->size(), walkerSize(T)) << printSexp(T);
    EXPECT_EQ(T->depth(), walkerDepth(T)) << printSexp(T);
    EXPECT_EQ(T->primitives(), walkerPrimitives(T)) << printSexp(T);
    EXPECT_EQ(T->containsLoop(), walkerContainsLoop(T)) << printSexp(T);
  }
}

TEST(InternTest, StatsCountHitsAndLiveNodes) {
  const TermInternStats Before = termInternStats();
  TermPtr A = tTranslate(12345.0, 678.0, 9.0, tUnit());
  TermPtr B = tTranslate(12345.0, 678.0, 9.0, tUnit());
  const TermInternStats After = termInternStats();
  EXPECT_EQ(A.get(), B.get());
  EXPECT_GT(After.Hits, Before.Hits);
  EXPECT_GE(After.Unique, Before.Unique);
  EXPECT_GT(After.Live, 0u);
  EXPECT_GE(After.hitRate(), 0.0);
  EXPECT_LE(After.hitRate(), 1.0);

  // Dropping the only handles retires the chain (Translate, Vec3, the
  // distinctive floats) from the table.
  A.reset();
  B.reset();
  EXPECT_LT(termInternStats().Live, After.Live);
}

//===----------------------------------------------------------------------===//
// Concurrency
//===----------------------------------------------------------------------===//

TEST(InternTest, InternStormManyThreadsAgree) {
  constexpr size_t Threads = 8, N = 400;
  // Every thread builds the same deterministic family while also creating
  // and immediately dropping thread-unique transients — lookups, inserts,
  // and deleter erases all race on the same shards.
  std::vector<std::vector<TermPtr>> Built(Threads);
  {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (size_t T = 0; T < Threads; ++T)
      Pool.emplace_back([&Built, T] {
        std::vector<TermPtr> Keep;
        Keep.reserve(N);
        for (size_t I = 0; I < N; ++I) {
          Keep.push_back(tUnion(
              tTranslate(static_cast<double>(I % 40), 0.0, 0.0, tUnit()),
              tInt(static_cast<int64_t>(I % 7))));
          // Transient: unique to (thread, iteration), dies immediately.
          tTranslate(static_cast<double>(I) + 0.5,
                     static_cast<double>(T) + 0.25, 0.0, tUnit());
        }
        Built[T] = std::move(Keep);
      });
    for (std::thread &Th : Pool)
      Th.join();
  }
  for (size_t T = 1; T < Threads; ++T) {
    ASSERT_EQ(Built[T].size(), Built[0].size());
    for (size_t I = 0; I < Built[T].size(); ++I)
      EXPECT_EQ(Built[T][I].get(), Built[0][I].get());
  }
}
