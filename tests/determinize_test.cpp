//===-- tests/determinize_test.cpp - Determinizer & list-manip tests ------===//

#include "synth/Determinize.h"
#include "synth/Inference.h"
#include "synth/ListManip.h"

#include "egraph/Runner.h"
#include "rewrites/Rules.h"

#include <gtest/gtest.h>

using namespace shrinkray;

namespace {

/// Builds an e-graph containing a Fold over the given elements and returns
/// (graph is an out-param) the fold and list class ids.
struct FoldFixture {
  EGraph G;
  EClassId FoldClass = 0, ListClass = 0;

  explicit FoldFixture(const std::vector<TermPtr> &Elements) {
    TermPtr List = tList(Elements);
    TermPtr Fold = tFold(tOpRef(OpKind::Union), tEmpty(), List);
    FoldClass = G.addTerm(Fold);
    ListClass = G.addTerm(List);
    G.rebuild();
  }
};

} // namespace

TEST(SpineTest, WalksConsSpine) {
  FoldFixture F({tUnit(), tSphere(), tCylinder()});
  auto Elems = spineElements(F.G, F.ListClass);
  ASSERT_TRUE(Elems.has_value());
  ASSERT_EQ(Elems->size(), 3u);
  EXPECT_TRUE(F.G.representsTerm((*Elems)[0], tUnit()));
  EXPECT_TRUE(F.G.representsTerm((*Elems)[2], tCylinder()));
}

TEST(SpineTest, EmptyListIsEmptySpine) {
  EGraph G;
  EClassId Nil = G.addTerm(tNil());
  G.rebuild();
  auto Elems = spineElements(G, Nil);
  ASSERT_TRUE(Elems.has_value());
  EXPECT_TRUE(Elems->empty());
}

TEST(SpineTest, NonSpineReturnsNullopt) {
  EGraph G;
  EClassId NotAList = G.addTerm(tUnit());
  G.rebuild();
  EXPECT_FALSE(spineElements(G, NotAList).has_value());
}

TEST(ChainTest, EnumeratesLayersDeepestFirst) {
  EGraph G;
  EClassId Elem = G.addTerm(
      tTranslate(1, 2, 3, tRotate(30, 0, 0, tScale(2, 2, 2, tUnit()))));
  G.rebuild();
  std::vector<AffineChain> Chains = enumerateChains(G, Elem);
  ASSERT_FALSE(Chains.empty());
  // Deepest decomposition first: Translate/Rotate/Scale over Unit.
  ASSERT_EQ(Chains[0].Layers.size(), 3u);
  EXPECT_EQ(Chains[0].Layers[0].Kind, OpKind::Translate);
  EXPECT_EQ(Chains[0].Layers[1].Kind, OpKind::Rotate);
  EXPECT_EQ(Chains[0].Layers[2].Kind, OpKind::Scale);
  EXPECT_TRUE(Chains[0].Layers[0].V.approxEquals({1, 2, 3}, 1e-12));
  EXPECT_TRUE(G.representsTerm(Chains[0].Base, tUnit()));
  // The trivial zero-layer chain is also present.
  EXPECT_EQ(Chains.back().Layers.size(), 0u);
}

TEST(ChainTest, SymbolicVectorsAreNotChains) {
  EGraph G;
  EClassId Elem = G.addTerm(
      tTranslate(tVec3(tVar("x"), tFloat(0), tFloat(0)), tUnit()));
  G.rebuild();
  std::vector<AffineChain> Chains = enumerateChains(G, Elem);
  // Only the stop-here chain: the vector is not constant.
  ASSERT_EQ(Chains.size(), 1u);
  EXPECT_TRUE(Chains[0].Layers.empty());
}

TEST(DeterminizeTest, UniformListDecomposes) {
  std::vector<TermPtr> Elems;
  for (int I = 0; I < 4; ++I)
    Elems.push_back(tTranslate(2.0 * I, 0, 0, tUnit()));
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  const ChainDecomposition &D = Ds[0];
  ASSERT_EQ(D.numLayers(), 1u);
  EXPECT_EQ(D.LayerKinds[0], OpKind::Translate);
  ASSERT_EQ(D.numElements(), 4u);
  EXPECT_TRUE(F.G.representsTerm(D.Base, tUnit()));
  for (int I = 0; I < 4; ++I)
    EXPECT_DOUBLE_EQ(D.Vectors[0][I].X, 2.0 * I);
}

TEST(DeterminizeTest, MixedKindsFail) {
  // Translate vs Scale elements share no common decomposition.
  FoldFixture F({tTranslate(1, 0, 0, tUnit()), tScale(2, 2, 2, tUnit())});
  EXPECT_TRUE(determinize(F.G, F.ListClass).empty());
}

TEST(DeterminizeTest, DifferentBasesFail) {
  FoldFixture F({tTranslate(1, 0, 0, tUnit()),
                 tTranslate(2, 0, 0, tSphere())});
  EXPECT_TRUE(determinize(F.G, F.ListClass).empty());
}

TEST(DeterminizeTest, ConsistentOrderAcrossRewrittenElements) {
  // After reorder rewrites each element has several equivalent towers; the
  // determinizer must pick ONE kind-sequence consistent across elements.
  std::vector<TermPtr> Elems;
  for (int I = 1; I <= 3; ++I)
    Elems.push_back(tTranslate(2.0 * I, 4.0 * I, 0,
                               tScale(2, 2, 2, tUnit())));
  FoldFixture F(Elems);
  Runner R(RunnerLimits{.IterLimit = 6});
  R.run(F.G, reorderRules());
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  for (const ChainDecomposition &D : Ds) {
    // Every element has data for every layer: rectangular decomposition.
    for (size_t L = 0; L < D.numLayers(); ++L)
      EXPECT_EQ(D.Vectors[L].size(), D.numElements());
  }
}

TEST(ListManipTest, SortedOrderIsLexicographic) {
  std::vector<TermPtr> Elems = {tTranslate(6, 0, 0, tUnit()),
                                tTranslate(2, 0, 0, tUnit()),
                                tTranslate(4, 0, 0, tUnit())};
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  std::vector<size_t> Order = sortedOrder(Ds[0]);
  EXPECT_EQ(Order, (std::vector<size_t>{1, 2, 0}));
}

TEST(ListManipTest, AlreadySortedReturnsNullopt) {
  std::vector<TermPtr> Elems = {tTranslate(2, 0, 0, tUnit()),
                                tTranslate(4, 0, 0, tUnit())};
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  EXPECT_FALSE(sortFoldList(F.G, F.FoldClass, Ds[0]).has_value());
}

TEST(ListManipTest, SortMergesNewFoldIntoFoldClass) {
  std::vector<TermPtr> Elems = {tTranslate(6, 0, 0, tUnit()),
                                tTranslate(2, 0, 0, tUnit()),
                                tTranslate(4, 0, 0, tUnit())};
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  std::optional<SortedList> Sorted = sortFoldList(F.G, F.FoldClass, Ds[0]);
  ASSERT_TRUE(Sorted.has_value());
  F.G.rebuild();

  // The fold class now also represents the fold over the sorted list...
  TermPtr SortedFold = tFold(tOpRef(OpKind::Union), tEmpty(),
                             tList({tTranslate(2, 0, 0, tUnit()),
                                    tTranslate(4, 0, 0, tUnit()),
                                    tTranslate(6, 0, 0, tUnit())}));
  EXPECT_TRUE(F.G.representsTerm(F.FoldClass, SortedFold));
  // ...but the LIST classes stay distinct (lists are order-sensitive).
  EXPECT_NE(F.G.find(Sorted->ListClass), F.G.find(F.ListClass));
  // The returned decomposition is permuted accordingly.
  EXPECT_DOUBLE_EQ(Sorted->Decomposition.Vectors[0][0].X, 2.0);
  EXPECT_DOUBLE_EQ(Sorted->Decomposition.Vectors[0][2].X, 6.0);
}

TEST(InferenceTest, MapiInsertedAndRepresentsList) {
  std::vector<TermPtr> Elems;
  for (int I = 0; I < 5; ++I)
    Elems.push_back(tTranslate(2.0 * (I + 1), 0, 0, tUnit()));
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  FunctionSolver Solver;
  std::vector<InferenceRecord> Recs =
      inferFunctions(F.G, F.ListClass, Ds[0], Solver);
  F.G.rebuild();
  ASSERT_FALSE(Recs.empty());
  EXPECT_EQ(Recs[0].loopNotation(), "n1,5");
  EXPECT_EQ(Recs[0].formNotation(), "d1");

  // The list class now contains a Mapi node.
  bool HasMapi = false;
  for (const ENode &N : F.G.eclass(F.ListClass).Nodes)
    HasMapi |= N.kind() == OpKind::Mapi;
  EXPECT_TRUE(HasMapi);
}

TEST(InferenceTest, NoFormMeansNoInsertion) {
  // Random-ish offsets: no closed form within epsilon.
  std::vector<TermPtr> Elems = {tTranslate(1, 0, 0, tUnit()),
                                tTranslate(2.37, 0, 0, tUnit()),
                                tTranslate(3.01, 0, 0, tUnit()),
                                tTranslate(9.94, 0, 0, tUnit()),
                                tTranslate(11.2, 0, 0, tUnit())};
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  FunctionSolver Solver;
  EXPECT_TRUE(inferFunctions(F.G, F.ListClass, Ds[0], Solver).empty());
}

TEST(InferenceTest, SingletonListIsNotALoop) {
  FoldFixture F({tTranslate(1, 0, 0, tUnit())});
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  if (Ds.empty())
    return; // also acceptable
  FunctionSolver Solver;
  EXPECT_TRUE(inferFunctions(F.G, F.ListClass, Ds[0], Solver).empty());
}

TEST(InferenceTest, LoopInferenceFindsGridFactorization) {
  std::vector<TermPtr> Elems;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 3; ++J)
      Elems.push_back(tTranslate(10.0 * I, 7.0 * J, 0, tUnit()));
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  FunctionSolver Solver;
  std::vector<InferenceRecord> Recs =
      inferLoops(F.G, F.ListClass, Ds[0], Solver);
  F.G.rebuild();
  ASSERT_FALSE(Recs.empty());
  bool Found23 = false;
  for (const InferenceRecord &R : Recs)
    Found23 |= R.loopNotation() == "n2,2,3";
  EXPECT_TRUE(Found23);
}

TEST(InferenceTest, LoopInferenceTriple) {
  // A 2x2x2 cube of cubes: m = 3 factorization.
  std::vector<TermPtr> Elems;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      for (int K = 0; K < 2; ++K)
        Elems.push_back(
            tTranslate(10.0 * I, 7.0 * J, 4.0 * K, tUnit()));
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  FunctionSolver Solver;
  std::vector<InferenceRecord> Recs =
      inferLoops(F.G, F.ListClass, Ds[0], Solver);
  bool Found222 = false;
  for (const InferenceRecord &R : Recs)
    Found222 |= R.loopNotation() == "n3,2,2,2";
  EXPECT_TRUE(Found222);
}

TEST(InferenceTest, LoopInferenceRequiresSharedChild) {
  // Same vectors, different children: must refuse.
  std::vector<TermPtr> Elems;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      Elems.push_back(tTranslate(10.0 * I, 7.0 * J, 0,
                                 (I + J) % 2 ? tUnit() : tSphere()));
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  FunctionSolver Solver;
  for (const ChainDecomposition &D : Ds)
    EXPECT_TRUE(inferLoops(F.G, F.ListClass, D, Solver).empty());
}

TEST(InferenceTest, IrregularGroupsBySharedCoordinate) {
  // Two columns of different heights: x = 0 has 3 cells, x = 10 has 2.
  std::vector<TermPtr> Elems;
  for (int J = 0; J < 3; ++J)
    Elems.push_back(tTranslate(0, 5.0 * J, 0, tUnit()));
  for (int J = 0; J < 2; ++J)
    Elems.push_back(tTranslate(10, 5.0 * J, 0, tUnit()));
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  FunctionSolver Solver;
  std::vector<InferenceRecord> Recs =
      inferIrregular(F.G, F.ListClass, Ds[0], Solver);
  F.G.rebuild();
  ASSERT_EQ(Recs.size(), 1u);
  EXPECT_EQ(Recs[0].K, InferenceRecord::Kind::IrregularFold);
  EXPECT_EQ(Recs[0].Bounds, (std::vector<int64_t>{3, 2}));
}

TEST(InferenceTest, IrregularRejectsRegularGrids) {
  // A regular 2x2 grid is not "irregular": the regular path covers it.
  std::vector<TermPtr> Elems;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      Elems.push_back(tTranslate(10.0 * I, 5.0 * J, 0, tUnit()));
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  FunctionSolver Solver;
  EXPECT_TRUE(inferIrregular(F.G, F.ListClass, Ds[0], Solver).empty());
}

TEST(InferenceTest, TrigVariantInsertedForPeriodicData) {
  // Ring of 6 cubes: rotation layer admits d1 *and* positions admit trig
  // under a translate decomposition; at minimum the d1 Mapi must appear,
  // and solveAll-driven variants must not corrupt the graph.
  std::vector<TermPtr> Elems;
  for (int I = 0; I < 6; ++I)
    Elems.push_back(
        tRotate(0, 0, 60.0 * I, tTranslate(10, 0, 0, tUnit())));
  FoldFixture F(Elems);
  std::vector<ChainDecomposition> Ds = determinize(F.G, F.ListClass);
  ASSERT_FALSE(Ds.empty());
  FunctionSolver Solver;
  std::vector<InferenceRecord> Recs =
      inferFunctions(F.G, F.ListClass, Ds[0], Solver);
  F.G.rebuild();
  ASSERT_FALSE(Recs.empty());
  EXPECT_EQ(Recs[0].loopNotation(), "n1,6");
}
