//===-- tests/support_test.cpp - Symbol, hashing, RNG tests ---------------===//

#include "support/Hashing.h"
#include "support/Rng.h"
#include "support/Symbol.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

using namespace shrinkray;

TEST(SymbolTest, InterningGivesEqualIds) {
  Symbol A("translate");
  Symbol B("translate");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.id(), B.id());
}

TEST(SymbolTest, DistinctSpellingsDiffer) {
  Symbol A("x");
  Symbol B("y");
  EXPECT_NE(A, B);
}

TEST(SymbolTest, RoundTripsSpelling) {
  Symbol A("some-long-name_42");
  EXPECT_EQ(A.str(), "some-long-name_42");
}

TEST(SymbolTest, DefaultIsEmpty) {
  Symbol S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.str(), "");
  EXPECT_EQ(S, Symbol(""));
}

TEST(SymbolTest, SpellingViewStaysValidAfterManyInterns) {
  Symbol First("stable-spelling");
  std::string_view View = First.str();
  for (int I = 0; I < 1000; ++I)
    Symbol S(std::string("filler") + std::to_string(I));
  EXPECT_EQ(View, "stable-spelling");
}

TEST(SymbolTest, UsableAsHashKey) {
  std::unordered_set<Symbol> Set;
  Set.insert(Symbol("a"));
  Set.insert(Symbol("b"));
  Set.insert(Symbol("a"));
  EXPECT_EQ(Set.size(), 2u);
}

TEST(HashingTest, HashDoubleFoldsNegativeZero) {
  EXPECT_EQ(hashDouble(0.0), hashDouble(-0.0));
}

TEST(HashingTest, HashDoubleDistinguishesValues) {
  EXPECT_NE(hashDouble(1.0), hashDouble(2.0));
}

TEST(HashingTest, HashAllOrderSensitive) {
  EXPECT_NE(hashAll(1, 2), hashAll(2, 1));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 16; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RngTest, RangedDoublesRespectBounds) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble(-3.0, 5.0);
    EXPECT_GE(D, -3.0);
    EXPECT_LT(D, 5.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextBelow(10);
    EXPECT_LT(V, 10u);
    Seen.insert(V);
  }
  // All residues should appear over 1000 draws.
  EXPECT_EQ(Seen.size(), 10u);
}
