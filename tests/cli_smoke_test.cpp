//===-- tests/cli_smoke_test.cpp - End-to-end CLI smoke test --------------===//
//
// Drives the built `shrinkray` binary the way a user would: pipe a small
// flat-CSG s-expression through stdin, ask for the best program as an
// s-expression, and prove the round trip by re-parsing the output with
// parseSexp. The binary's path is baked in at configure time
// (SHRINKRAY_CLI_PATH) and can be overridden with $SHRINKRAY_CLI.
//
//===----------------------------------------------------------------------===//

#include "cad/Sexp.h"
#include "cad/Term.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace shrinkray;

namespace {

std::string cliPath() {
  if (const char *Env = std::getenv("SHRINKRAY_CLI"))
    return Env;
  return SHRINKRAY_CLI_PATH;
}

/// Runs `Cmd` under the shell, captures stdout, and returns the process
/// exit status (-1 if the pipe could not be opened).
int runCommand(const std::string &Cmd, std::string &Stdout) {
  std::FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe)
    return -1;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Stdout.append(Buf, N);
  int Status = pclose(Pipe);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

constexpr const char *FiveCubes =
    "(Union (Translate (Vec3 2 0 0) Unit)"
    " (Union (Translate (Vec3 4 0 0) Unit)"
    " (Union (Translate (Vec3 6 0 0) Unit)"
    " (Union (Translate (Vec3 8 0 0) Unit)"
    " (Translate (Vec3 10 0 0) Unit)))))";

} // namespace

TEST(CliSmokeTest, SexpRoundTripsThroughBinary) {
  std::string Out;
  std::string Cmd = std::string("printf '%s' '") + FiveCubes + "' | '" +
                    cliPath() + "' -k 1 -format sexp -quiet 2>/dev/null";
  int Exit = runCommand(Cmd, Out);
  ASSERT_EQ(Exit, 0) << "command: " << Cmd << "\nstdout: " << Out;
  ASSERT_FALSE(Out.empty());

  ParseResult Parsed = parseSexp(Out);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << "unparseable CLI output:\n"
                                         << Out << "\nerror: " << Parsed.Error;
  EXPECT_GT(termSize(Parsed.Value), 0u);
}

TEST(CliSmokeTest, BadFlagExitsNonZeroWithUsage) {
  std::string Out;
  std::string Cmd = std::string("'") + cliPath() +
                    "' -definitely-not-a-flag </dev/null 2>/dev/null";
  EXPECT_NE(runCommand(Cmd, Out), 0);
}

TEST(CliSmokeTest, MalformedInputExitsNonZero) {
  std::string Out;
  std::string Cmd = std::string("printf '%s' '(Union (Oops' | '") +
                    cliPath() + "' -k 1 -quiet 2>/dev/null";
  EXPECT_NE(runCommand(Cmd, Out), 0);
}
