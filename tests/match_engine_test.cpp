//===-- tests/match_engine_test.cpp - Indexed incremental e-matching ------===//
//
// Differential and adversarial coverage for the indexed, incremental
// e-matching engine:
//
//  * operator-head index consistency under adversarial merge/rebuild
//    sequences, including the self-referential-node repair path;
//  * compiled-VM vs reference-matcher equivalence on every rule in the
//    pipeline database;
//  * dirty-set completeness: a rule searching only the dirty closure never
//    misses a match a full search finds;
//  * the O(1) class/node counters and the memoized representsTerm.
//
//===----------------------------------------------------------------------===//

#include "egraph/Runner.h"
#include "models/Models.h"
#include "rewrites/Rules.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

using namespace shrinkray;

namespace {

/// Canonical string key for a match: root class plus each variable's
/// binding (in the pattern's variable order), all canonicalized under the
/// current union-find so keys from different generations are comparable.
std::string matchKey(const EGraph &G, const std::vector<Symbol> &Vars,
                     EClassId Root, const Subst &S) {
  std::ostringstream Os;
  Os << G.find(Root);
  for (Symbol V : Vars)
    Os << "|" << V.str() << "=" << G.find(S[V]);
  return Os.str();
}

/// All (class, subst) pairs of \p P over the whole graph using the
/// reference CPS matcher and a full class scan — the unindexed oracle.
std::vector<std::pair<EClassId, Subst>>
referenceSearch(const Pattern &P, const EGraph &G) {
  std::vector<std::pair<EClassId, Subst>> Out;
  for (EClassId Id : G.classIds())
    for (Subst &S : P.matchClassReference(G, Id))
      Out.emplace_back(Id, std::move(S));
  return Out;
}

/// A small but rule-rich workload: partially saturated union chain.
void buildChainGraph(EGraph &G, int N, size_t Iters) {
  std::vector<TermPtr> Cubes;
  for (int I = 1; I <= N; ++I)
    Cubes.push_back(tTranslate(2.0 * I, 0, 0, tUnit()));
  G.addTerm(tUnionAll(Cubes));
  Runner R(RunnerLimits{.IterLimit = Iters});
  R.run(G, pipelineRules());
}

//===----------------------------------------------------------------------===//
// Operator-head index
//===----------------------------------------------------------------------===//

TEST(OpIndexTest, FreshGraphIndexesHeads) {
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tTranslate(1, 2, 3, tUnit()), tSphere()));
  G.rebuild();
  ASSERT_EQ(G.checkInvariants(), "");

  const std::vector<EClassId> &Unions = G.classesWithOp(Op(OpKind::Union));
  ASSERT_EQ(Unions.size(), 1u);
  EXPECT_EQ(G.find(Unions[0]), G.find(Root));
  EXPECT_EQ(G.classesWithOp(Op(OpKind::Translate)).size(), 1u);
  EXPECT_EQ(G.classesWithOp(Op(OpKind::Diff)).size(), 0u);
}

TEST(OpIndexTest, MergedClassesCompactToOneEntry) {
  EGraph G;
  EClassId A = G.addTerm(tUnion(tUnit(), tSphere()));
  EClassId B = G.addTerm(tUnion(tSphere(), tCylinder()));
  G.merge(A, B);
  G.rebuild();
  ASSERT_EQ(G.checkInvariants(), "");
  const std::vector<EClassId> &Unions = G.classesWithOp(Op(OpKind::Union));
  ASSERT_EQ(Unions.size(), 1u);
  EXPECT_EQ(Unions[0], G.find(A));
  // Deterministic: ascending canonical ids, no duplicates.
  EXPECT_TRUE(std::is_sorted(Unions.begin(), Unions.end()));
}

TEST(OpIndexTest, AnalysisMaterializedLeavesAreIndexed) {
  // Constant folding inserts literal leaves into existing classes without
  // going through add(); the index must still see them.
  EGraph G;
  EClassId Sum = G.addTerm(tAdd(tFloat(2.0), tFloat(3.0)));
  G.rebuild();
  ASSERT_EQ(G.checkInvariants(), "");
  const std::vector<EClassId> &Fives = G.classesWithOp(Op::makeInt(5));
  ASSERT_EQ(Fives.size(), 1u);
  EXPECT_EQ(G.find(Fives[0]), G.find(Sum));
}

TEST(OpIndexTest, SelfReferentialNodeSurvivesRepair) {
  // Merging a class with its own child creates a self-referential node,
  // which exercises the re-fetch path in repair(). The index and the rest
  // of the invariants must hold afterwards.
  EGraph G;
  EClassId Root = G.addTerm(tUnion(tUnit(), tEmpty()));
  EClassId Unit = G.addTerm(tUnit());
  G.merge(Root, Unit);
  G.rebuild();
  ASSERT_EQ(G.checkInvariants(), "");
  const std::vector<EClassId> &Unions = G.classesWithOp(Op(OpKind::Union));
  ASSERT_EQ(Unions.size(), 1u);
  EXPECT_EQ(Unions[0], G.find(Root));
  // The self-loop still matches patterns rooted at the class.
  Pattern P = Pattern::parse("(Union ?x Empty)");
  auto Matches = P.matchClass(G, Root);
  ASSERT_EQ(Matches.size(), 1u);
  EXPECT_EQ(G.find(Matches[0][Symbol("x")]), G.find(Root));
}

class AdversarialMergeIndex : public ::testing::TestWithParam<int> {};

TEST_P(AdversarialMergeIndex, IndexMatchesRescanAfterRandomMerges) {
  // checkInvariants() cross-validates the op-index against a full rescan;
  // drive it through random merge/rebuild sequences, including merges of a
  // class into its own subterm (self-referential repair).
  Rng R(static_cast<uint64_t>(GetParam()) * 977 + 13);
  EGraph G;
  std::vector<EClassId> Pool;
  for (int I = 0; I < 20; ++I) {
    TermPtr Leaf = I % 2 ? tUnit() : tSphere();
    TermPtr T = tTranslate(static_cast<double>(I % 5), 0, 0, Leaf);
    if (I % 3 == 0)
      T = tUnion(T, tEmpty());
    if (I % 4 == 0)
      T = tScale(2, 2, 2, T);
    Pool.push_back(G.addTerm(T));
  }
  G.rebuild();
  ASSERT_EQ(G.checkInvariants(), "");

  for (int Step = 0; Step < 15; ++Step) {
    EClassId A = Pool[R.nextBelow(Pool.size())];
    EClassId B = Pool[R.nextBelow(Pool.size())];
    G.merge(A, B);
    if (Step % 3 == 0) // batch some merges before rebuilding
      G.rebuild();
    if (!G.isDirty()) {
      ASSERT_EQ(G.checkInvariants(), "") << "after step " << Step;
    }
  }
  G.rebuild();
  ASSERT_EQ(G.checkInvariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversarialMergeIndex,
                         ::testing::Range(0, 8));

TEST(OpIndexTest, HoldsAcrossSaturation) {
  EGraph G;
  buildChainGraph(G, 6, 20);
  ASSERT_EQ(G.checkInvariants(), "");
}

//===----------------------------------------------------------------------===//
// Compiled VM vs reference matcher
//===----------------------------------------------------------------------===//

TEST(MatchVmTest, EquivalentToReferenceOnEveryPipelineRule) {
  EGraph G;
  buildChainGraph(G, 5, 12);

  for (const Rewrite &R : pipelineRules()) {
    const Pattern &P = R.lhs();
    for (EClassId Id : G.classIds()) {
      std::vector<Subst> Vm = P.matchClass(G, Id);
      std::vector<Subst> Ref = P.matchClassReference(G, Id);
      ASSERT_EQ(Vm.size(), Ref.size())
          << R.name() << " differs at class " << Id;
      // The VM visits nodes in the same depth-first order as the
      // reference matcher, so the match sequences agree element-wise.
      for (size_t I = 0; I < Vm.size(); ++I)
        EXPECT_EQ(matchKey(G, P.vars(), Id, Vm[I]),
                  matchKey(G, P.vars(), Id, Ref[I]))
            << R.name() << " match " << I << " at class " << Id;
    }
  }
}

TEST(MatchVmTest, IndexedSearchEqualsUnindexedReferenceSearch) {
  // The acceptance property: indexed search (op-index candidates + VM)
  // returns exactly the (class, substitution) sets of an unindexed
  // reference search, for every pipeline rule's left-hand side.
  EGraph G;
  buildChainGraph(G, 5, 12);

  for (const Rewrite &R : pipelineRules()) {
    const Pattern &P = R.lhs();
    std::multiset<std::string> Indexed, Reference;
    for (const auto &[Root, S] : P.search(G))
      Indexed.insert(matchKey(G, P.vars(), Root, S));
    for (const auto &[Root, S] : referenceSearch(P, G))
      Reference.insert(matchKey(G, P.vars(), Root, S));
    EXPECT_EQ(Indexed, Reference) << R.name();
  }
}

TEST(MatchVmTest, GuardedSearchEqualsFullScanSearch) {
  // Rewrite-level: search() (indexed) vs searchIn over every class, both
  // after guard filtering.
  EGraph G;
  buildChainGraph(G, 5, 12);

  for (const Rewrite &R : pipelineRules()) {
    const std::vector<Symbol> &Vars = R.lhs().vars();
    std::multiset<std::string> Indexed, FullScan;
    for (const auto &[Root, S] : R.search(G))
      Indexed.insert(matchKey(G, Vars, Root, S));
    for (const auto &[Root, S] : R.searchIn(G, G.classIds()))
      FullScan.insert(matchKey(G, Vars, Root, S));
    EXPECT_EQ(Indexed, FullScan) << R.name();
  }
}

TEST(MatchVmTest, VarRootedPatternBindsRoot) {
  EGraph G;
  EClassId Root = G.addTerm(tUnit());
  G.rebuild();
  Pattern P = Pattern::parse("?x");
  auto Matches = P.matchClass(G, Root);
  ASSERT_EQ(Matches.size(), 1u);
  EXPECT_EQ(Matches[0][Symbol("x")], G.find(Root));
}

//===----------------------------------------------------------------------===//
// Dirty-set completeness
//===----------------------------------------------------------------------===//

TEST(DirtySetTest, TouchedClassesIncludeAncestors) {
  EGraph G;
  TermPtr Shared = tUnit();
  EClassId Root = G.addTerm(tUnion(tTranslate(1, 2, 3, Shared), tSphere()));
  EClassId Leaf = G.addTerm(Shared);
  EClassId Other = G.addTerm(tCylinder());
  G.rebuild();
  uint64_t Before = G.generation();

  G.merge(Leaf, Other);
  G.rebuild();
  std::vector<EClassId> Dirty = G.takeDirtySince(Before);
  auto contains = [&](EClassId Id) {
    return std::binary_search(Dirty.begin(), Dirty.end(), G.find(Id));
  };
  // The merged leaf, the Translate above it, and the Union root can all
  // host new matches; none may be missed.
  EXPECT_TRUE(contains(Leaf));
  EXPECT_TRUE(contains(Root));
  // Untouched siblings stay clean.
  EXPECT_FALSE(contains(G.addTerm(tSphere())));
}

TEST(DirtySetTest, QuiescentGraphReportsNothing) {
  EGraph G;
  G.addTerm(tUnion(tUnit(), tSphere()));
  G.rebuild();
  EXPECT_TRUE(G.takeDirtySince(G.generation()).empty());
}

/// Runs the Runner's incremental protocol by hand next to full searches
/// and asserts no rule ever misses a match: every match a full search
/// finds is either in the incremental result or was found (and applied)
/// by a previous iteration's search.
void checkDirtyCompleteness(const TermPtr &Input, size_t Iters) {
  EGraph G;
  G.addTerm(Input);
  G.rebuild();
  const std::vector<Rewrite> Rules = pipelineRules();

  std::vector<uint64_t> LastGen(Rules.size(), 0);
  std::vector<char> Ever(Rules.size(), 0);
  // Raw matches from prior iterations, re-canonicalized each round.
  std::vector<std::vector<std::pair<EClassId, Subst>>> Prev(Rules.size());

  for (size_t Iter = 0; Iter < Iters; ++Iter) {
    std::vector<std::vector<std::pair<EClassId, Subst>>> Full(Rules.size());
    for (size_t R = 0; R < Rules.size(); ++R) {
      const std::vector<Symbol> &Vars = Rules[R].lhs().vars();
      const std::vector<EClassId> &Cands =
          G.classesWithOp(Rules[R].lhs().rootOp());
      Full[R] = Rules[R].searchIn(G, Cands);

      if (Ever[R]) {
        std::vector<EClassId> Dirty = G.takeDirtySince(LastGen[R]);
        std::vector<EClassId> Filtered;
        std::set_intersection(Cands.begin(), Cands.end(), Dirty.begin(),
                              Dirty.end(), std::back_inserter(Filtered));
        std::set<std::string> IncOrOld;
        for (const auto &[Root, S] : Rules[R].searchIn(G, Filtered))
          IncOrOld.insert(matchKey(G, Vars, Root, S));
        for (const auto &[Root, S] : Prev[R])
          IncOrOld.insert(matchKey(G, Vars, Root, S));
        for (const auto &[Root, S] : Full[R])
          ASSERT_TRUE(IncOrOld.count(matchKey(G, Vars, Root, S)))
              << Rules[R].name() << " missed a match at iteration " << Iter;
      }
      LastGen[R] = G.generation();
      Ever[R] = 1;
    }

    size_t Applied = 0;
    for (size_t R = 0; R < Rules.size(); ++R) {
      for (const auto &[Root, S] : Full[R])
        Applied += Rules[R].apply(G, Root, S);
      for (auto &M : Full[R])
        Prev[R].push_back(std::move(M));
    }
    G.rebuild();
    ASSERT_EQ(G.checkInvariants(), "") << "iteration " << Iter;
    if (Applied == 0)
      break;
  }
}

TEST(DirtySetTest, CompletenessOnUnionChain) {
  std::vector<TermPtr> Cubes;
  for (int I = 1; I <= 6; ++I)
    Cubes.push_back(tTranslate(2.0 * I, 0, 0, tUnit()));
  checkDirtyCompleteness(tUnionAll(Cubes), 16);
}

TEST(DirtySetTest, CompletenessOnGear) {
  checkDirtyCompleteness(models::gearModel(6), 12);
}

//===----------------------------------------------------------------------===//
// Counters and memoized representsTerm
//===----------------------------------------------------------------------===//

TEST(CounterTest, MatchFullRescanAcrossSaturation) {
  EGraph G;
  buildChainGraph(G, 6, 20);
  size_t Classes = 0, Nodes = 0;
  for (EClassId Id : G.classIds()) {
    ++Classes;
    Nodes += G.eclass(Id).Nodes.size();
  }
  EXPECT_EQ(G.numClasses(), Classes);
  EXPECT_EQ(G.numNodes(), Nodes);
}

TEST(CounterTest, TrackAddsAndMerges) {
  EGraph G;
  EXPECT_EQ(G.numClasses(), 0u);
  EClassId A = G.addTerm(tUnit());
  EClassId B = G.addTerm(tSphere());
  EXPECT_EQ(G.numClasses(), 2u);
  EXPECT_EQ(G.numNodes(), 2u);
  G.merge(A, B);
  G.rebuild();
  EXPECT_EQ(G.numClasses(), 1u);
  EXPECT_EQ(G.numNodes(), 2u); // Unit and Sphere nodes coexist in the class
}

TEST(RepresentsTermTest, SharedSubtermsStayLinear) {
  // A doubling DAG: depth d, 2^d paths, but only d distinct subterms.
  // Without (class, term)-memoization this recursion is exponential and
  // the test would hang; with it, it is linear.
  TermPtr T = tUnit();
  for (int I = 0; I < 26; ++I)
    T = tUnion(T, T);
  EGraph G;
  EClassId Root = G.addTerm(T);
  G.rebuild();
  EXPECT_TRUE(G.representsTerm(Root, T));
  EXPECT_FALSE(G.representsTerm(Root, tSphere()));

  TermPtr T2 = tSphere();
  for (int I = 0; I < 26; ++I)
    T2 = tUnion(T2, T2);
  EXPECT_FALSE(G.representsTerm(Root, T2));
}

TEST(RepresentsTermTest, ApproxSharedSubtermsStayLinear) {
  TermPtr T = tTranslate(1.0, 0, 0, tUnit());
  for (int I = 0; I < 24; ++I)
    T = tUnion(T, T);
  EGraph G;
  EClassId Root = G.addTerm(T);
  G.rebuild();
  EXPECT_TRUE(G.representsTermApprox(Root, T, 1e-9));
}

//===----------------------------------------------------------------------===//
// Runner per-rule statistics
//===----------------------------------------------------------------------===//

TEST(RunnerStatsTest, PerRuleStatsArePopulated) {
  std::vector<TermPtr> Cubes;
  for (int I = 1; I <= 6; ++I)
    Cubes.push_back(tTranslate(2.0 * I, 0, 0, tUnit()));
  EGraph G;
  G.addTerm(tUnionAll(Cubes));
  const std::vector<Rewrite> Rules = pipelineRules();
  Runner R(RunnerLimits{.IterLimit = 20});
  RunnerReport Report = R.run(G, Rules);

  ASSERT_EQ(Report.Rules.size(), Rules.size());
  size_t Matches = 0, Applied = 0, Incremental = 0, FullSearches = 0;
  for (size_t I = 0; I < Rules.size(); ++I) {
    EXPECT_EQ(Report.Rules[I].Name, Rules[I].name());
    Matches += Report.Rules[I].Matches;
    Applied += Report.Rules[I].Applied;
    Incremental += Report.Rules[I].IncrementalSearches;
    FullSearches += Report.Rules[I].FullSearches;
  }
  EXPECT_GT(Matches, 0u);
  EXPECT_GT(Applied, 0u);
  // Iteration 1 is always full; later iterations go incremental.
  EXPECT_GT(FullSearches, 0u);
  EXPECT_GT(Incremental, 0u);
  // Per-rule totals agree with the per-iteration totals.
  size_t IterApplied = 0;
  for (const IterationStats &S : Report.Iterations) {
    IterApplied += S.Applied;
    EXPECT_GE(S.Seconds, 0.0);
  }
  EXPECT_EQ(Applied, IterApplied);
}

} // namespace
