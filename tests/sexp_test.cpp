//===-- tests/sexp_test.cpp - S-expression reader/printer tests -----------===//

#include "cad/Sexp.h"

#include <gtest/gtest.h>

using namespace shrinkray;

namespace {

/// Parses, asserting success.
TermPtr parseOk(std::string_view Text) {
  ParseResult R = parseSexp(Text);
  EXPECT_TRUE(R) << R.Error;
  return R.Value;
}

} // namespace

TEST(SexpParseTest, Primitives) {
  EXPECT_EQ(parseOk("Unit")->kind(), OpKind::Unit);
  EXPECT_EQ(parseOk("Empty")->kind(), OpKind::Empty);
  EXPECT_EQ(parseOk("Sphere")->kind(), OpKind::Sphere);
  EXPECT_EQ(parseOk("Nil")->kind(), OpKind::Nil);
}

TEST(SexpParseTest, NumberLiterals) {
  EXPECT_EQ(parseOk("42")->op().intValue(), 42);
  EXPECT_EQ(parseOk("-7")->op().intValue(), -7);
  EXPECT_DOUBLE_EQ(parseOk("2.5")->op().floatValue(), 2.5);
  EXPECT_DOUBLE_EQ(parseOk("-0.125")->op().floatValue(), -0.125);
  EXPECT_DOUBLE_EQ(parseOk("1e3")->op().floatValue(), 1000.0);
}

TEST(SexpParseTest, AffineAndBoolean) {
  TermPtr T = parseOk("(Union (Translate (Vec3 1.0 2.0 3.0) Unit) Sphere)");
  ASSERT_EQ(T->kind(), OpKind::Union);
  ASSERT_EQ(T->child(0)->kind(), OpKind::Translate);
  EXPECT_DOUBLE_EQ(
      T->child(0)->child(0)->child(1)->op().floatValue(), 2.0);
}

TEST(SexpParseTest, BareBoolOpIsOpRef) {
  TermPtr T = parseOk("(Fold Union Empty Nil)");
  ASSERT_EQ(T->kind(), OpKind::Fold);
  ASSERT_EQ(T->child(0)->kind(), OpKind::OpRef);
  EXPECT_EQ(T->child(0)->op().referencedOp(), OpKind::Union);
}

TEST(SexpParseTest, VarAndExternal) {
  TermPtr V = parseOk("(Var i)");
  ASSERT_EQ(V->kind(), OpKind::Var);
  EXPECT_EQ(V->op().symbol().str(), "i");
  TermPtr E = parseOk("(External tooth)");
  ASSERT_EQ(E->kind(), OpKind::External);
  EXPECT_EQ(E->op().symbol().str(), "tooth");
}

TEST(SexpParseTest, PatternVariables) {
  TermPtr T = parseOk("(Union ?a ?a)");
  EXPECT_EQ(T->child(0)->kind(), OpKind::PatVar);
  EXPECT_EQ(T->child(0)->op().symbol().str(), "a");
}

TEST(SexpParseTest, FunAndApp) {
  TermPtr T = parseOk("(Fun (Var i) (Var c) (Translate (Vec3 (Var i) 0.0 "
                      "0.0) (Var c)))");
  ASSERT_EQ(T->kind(), OpKind::Fun);
  EXPECT_EQ(T->numChildren(), 3u);
}

TEST(SexpParseTest, Comments) {
  TermPtr T = parseOk("; a gear model\n(Union Unit Sphere) ; trailing");
  EXPECT_EQ(T->kind(), OpKind::Union);
}

TEST(SexpParseTest, Errors) {
  EXPECT_FALSE(parseSexp(""));
  EXPECT_FALSE(parseSexp("(Union Unit)"));          // arity
  EXPECT_FALSE(parseSexp("(Unknown 1 2)"));         // unknown op
  EXPECT_FALSE(parseSexp("(Union Unit Sphere"));    // unterminated
  EXPECT_FALSE(parseSexp("(Union Unit Sphere) x")); // trailing
  EXPECT_FALSE(parseSexp("frobnicate"));            // unknown atom
  EXPECT_FALSE(parseSexp("(Fun (Var i))"));         // Fun needs body
  EXPECT_FALSE(parseSexp("?"));                     // empty patvar
}

TEST(SexpParseTest, ErrorMessagesCarryOffset) {
  ParseResult R = parseSexp("(Union Unit Schmid)");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("offset"), std::string::npos);
  EXPECT_NE(R.Error.find("Schmid"), std::string::npos);
}

TEST(SexpPrintTest, RoundTripSimple) {
  const char *Cases[] = {
      "Unit",
      "(Union Unit Sphere)",
      "(Translate (Vec3 1.0 2.0 3.0) Unit)",
      "(Fold Union Empty (Cons Unit (Cons Sphere Nil)))",
      "(Mapi (Fun (Var i) (Var c) (Rotate (Vec3 0.0 0.0 (Mul 6.0 (Var i))) "
      "(Var c))) (Repeat Unit 5))",
      "(External hull-part)",
      "(Diff (Scale (Vec3 2.0 2.0 1.0) Cylinder) Hexagon)",
      "(Arctan 1.0 2.0)",
  };
  for (const char *Text : Cases) {
    TermPtr T = parseOk(Text);
    TermPtr Back = parseOk(printSexp(T));
    EXPECT_TRUE(termEquals(T, Back)) << Text;
  }
}

TEST(SexpPrintTest, FloatFormatDistinguishesFromInt) {
  EXPECT_EQ(printSexp(tFloat(2.0)), "2.0");
  EXPECT_EQ(printSexp(tInt(2)), "2");
}

TEST(SexpPrintTest, FloatRoundTripsExactly) {
  double Values[] = {0.1,    1.0 / 3.0,          2.5e-10, 1234567.891,
                     -0.001, 3.141592653589793,  1e20};
  for (double V : Values) {
    TermPtr Back = parseOk(printSexp(tFloat(V)));
    EXPECT_EQ(Back->op().floatValue(), V) << V;
  }
}

TEST(SexpPrintTest, RoundTripPatternVars) {
  TermPtr T = parseOk("(Union ?x ?y)");
  EXPECT_TRUE(termEquals(T, parseOk(printSexp(T))));
}

TEST(PrettyPrintTest, AffineFlattensVector) {
  std::string S = prettyPrint(tTranslate(1, 2, 3, tUnit()));
  EXPECT_EQ(S, "Translate (1, 2, 3, Unit)");
}

TEST(PrettyPrintTest, ArithmeticInfix) {
  std::string S =
      prettyPrint(tAdd(tMul(tInt(2), tVar("i")), tInt(1)));
  EXPECT_EQ(S, "((2 * i) + 1)");
}

TEST(PrettyPrintTest, FunArrowSyntax) {
  TermPtr F = tFun({tVar("i"), tVar("c"), tVar("c")});
  EXPECT_EQ(prettyPrint(F), "Fun (i, c) -> c");
}

TEST(PrettyPrintTest, LargeTermsIndent) {
  TermPtr T = tUnion(tTranslate(1, 2, 3, tUnit()),
                     tTranslate(4, 5, 6, tSphere()));
  std::string S = prettyPrint(T);
  EXPECT_NE(S.find('\n'), std::string::npos);
  EXPECT_NE(S.find("Translate (1, 2, 3, Unit)"), std::string::npos);
}
