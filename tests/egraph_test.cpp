//===-- tests/egraph_test.cpp - E-graph engine tests ----------------------===//

#include "egraph/EGraph.h"
#include "egraph/UnionFind.h"

#include <gtest/gtest.h>

using namespace shrinkray;

TEST(UnionFindTest, SingletonsAreTheirOwnRoots) {
  UnionFind UF;
  EClassId A = UF.makeSet(), B = UF.makeSet();
  EXPECT_EQ(UF.find(A), A);
  EXPECT_EQ(UF.find(B), B);
  EXPECT_NE(A, B);
}

TEST(UnionFindTest, UniteRedirectsChild) {
  UnionFind UF;
  EClassId A = UF.makeSet(), B = UF.makeSet(), C = UF.makeSet();
  UF.unite(A, B);
  UF.unite(A, C);
  EXPECT_EQ(UF.find(B), A);
  EXPECT_EQ(UF.find(C), A);
}

TEST(UnionFindTest, PathHalvingPreservesRoots) {
  UnionFind UF;
  std::vector<EClassId> Ids;
  for (int I = 0; I < 64; ++I)
    Ids.push_back(UF.makeSet());
  for (int I = 1; I < 64; ++I)
    UF.unite(UF.find(Ids[0]), UF.find(Ids[I]));
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(UF.find(Ids[I]), Ids[0]);
}

TEST(EGraphTest, HashConsingDeduplicates) {
  EGraph G;
  EClassId A = G.addTerm(tTranslate(1, 2, 3, tUnit()));
  EClassId B = G.addTerm(tTranslate(1, 2, 3, tUnit()));
  EXPECT_EQ(A, B);
}

TEST(EGraphTest, DistinctTermsGetDistinctClasses) {
  EGraph G;
  EClassId A = G.addTerm(tUnit());
  EClassId B = G.addTerm(tSphere());
  EXPECT_NE(G.find(A), G.find(B));
}

TEST(EGraphTest, SharedSubtermsShareClasses) {
  EGraph G;
  G.addTerm(tUnion(tUnit(), tUnit()));
  // Unit, Union: 2 classes only.
  EXPECT_EQ(G.numClasses(), 2u);
}

TEST(EGraphTest, MergeUnifiesFind) {
  EGraph G;
  EClassId A = G.addTerm(tUnit());
  EClassId B = G.addTerm(tSphere());
  auto [Root, Changed] = G.merge(A, B);
  EXPECT_TRUE(Changed);
  G.rebuild();
  EXPECT_EQ(G.find(A), G.find(B));
  EXPECT_EQ(G.find(Root), G.find(A));
  // Merging again is a no-op.
  EXPECT_FALSE(G.merge(A, B).second);
}

TEST(EGraphTest, CongruenceClosure) {
  // f(a) and f(b) become equal when a = b. Use Translate(v, .) as `f`.
  EGraph G;
  TermPtr Va = tVec3(1, 2, 3);
  EClassId A = G.addTerm(tUnit());
  EClassId B = G.addTerm(tSphere());
  EClassId Fa = G.addTerm(tTranslate(Va, tUnit()));
  EClassId Fb = G.addTerm(tTranslate(Va, tSphere()));
  EXPECT_NE(G.find(Fa), G.find(Fb));
  G.merge(A, B);
  G.rebuild();
  EXPECT_EQ(G.find(Fa), G.find(Fb));
}

TEST(EGraphTest, CongruenceClosureCascades) {
  // g(f(a)) == g(f(b)) after a = b: two levels of upward propagation.
  EGraph G;
  EClassId A = G.addTerm(tUnit());
  EClassId B = G.addTerm(tSphere());
  EClassId Gfa = G.addTerm(tScale(2, 2, 2, tTranslate(1, 0, 0, tUnit())));
  EClassId Gfb = G.addTerm(tScale(2, 2, 2, tTranslate(1, 0, 0, tSphere())));
  G.merge(A, B);
  G.rebuild();
  EXPECT_EQ(G.find(Gfa), G.find(Gfb));
}

TEST(EGraphTest, RepresentsTermAfterMerge) {
  EGraph G;
  EClassId A = G.addTerm(tUnion(tUnit(), tSphere()));
  EClassId B = G.addTerm(tUnion(tSphere(), tUnit()));
  G.merge(A, B);
  G.rebuild();
  EXPECT_TRUE(G.representsTerm(A, tUnion(tUnit(), tSphere())));
  EXPECT_TRUE(G.representsTerm(A, tUnion(tSphere(), tUnit())));
  EXPECT_FALSE(G.representsTerm(A, tUnion(tUnit(), tUnit())));
}

TEST(EGraphTest, LookupFindsCanonicalNode) {
  EGraph G;
  EClassId U = G.addTerm(tUnit());
  EClassId S = G.addTerm(tSphere());
  ENode Node(Op(OpKind::Union), {U, S});
  EXPECT_FALSE(G.lookup(Node).has_value());
  EClassId Added = G.add(Node);
  ASSERT_TRUE(G.lookup(Node).has_value());
  EXPECT_EQ(*G.lookup(Node), Added);
}

TEST(EGraphTest, NodeCountsAfterMergeAndRebuild) {
  EGraph G;
  EClassId A = G.addTerm(tUnit());
  EClassId B = G.addTerm(tSphere());
  size_t Before = G.numClasses();
  G.merge(A, B);
  G.rebuild();
  EXPECT_EQ(G.numClasses(), Before - 1);
}

TEST(EGraphAnalysisTest, LiteralsAreConstants) {
  EGraph G;
  EClassId F = G.addTerm(tFloat(2.5));
  EClassId I = G.addTerm(tInt(7));
  EXPECT_EQ(G.data(F).NumConst, 2.5);
  EXPECT_FALSE(G.data(F).NumIsInt);
  EXPECT_EQ(G.data(I).NumConst, 7.0);
  EXPECT_TRUE(G.data(I).NumIsInt);
}

TEST(EGraphAnalysisTest, ArithmeticFolds) {
  EGraph G;
  EClassId Sum = G.addTerm(tAdd(tFloat(2.0), tFloat(3.0)));
  ASSERT_TRUE(G.data(Sum).NumConst.has_value());
  EXPECT_DOUBLE_EQ(*G.data(Sum).NumConst, 5.0);
  EClassId Prod = G.addTerm(tMul(tInt(4), tInt(5)));
  EXPECT_DOUBLE_EQ(*G.data(Prod).NumConst, 20.0);
  EXPECT_TRUE(G.data(Prod).NumIsInt);
}

TEST(EGraphAnalysisTest, FoldedConstantMaterializesLiteral) {
  EGraph G;
  EClassId Sum = G.addTerm(tAdd(tFloat(2.0), tFloat(3.0)));
  G.rebuild();
  // The class should also contain the literal 5 node.
  EXPECT_TRUE(G.representsTerm(Sum, tFloat(5.0)) ||
              G.representsTerm(Sum, tInt(5)));
}

TEST(EGraphAnalysisTest, IntegralFloatMergesWithInt) {
  EGraph G;
  EClassId F = G.addTerm(tFloat(3.0));
  EClassId I = G.addTerm(tInt(3));
  G.rebuild();
  // modify() materializes Int(3) into the Float(3.0) class, unifying them.
  EXPECT_EQ(G.find(F), G.find(I));
}

TEST(EGraphAnalysisTest, ConstantPropagatesThroughMerge) {
  EGraph G;
  // x (non-const Var) merged with 4.0: the class becomes constant.
  EClassId X = G.addTerm(tVar("x"));
  EClassId C = G.addTerm(tFloat(4.0));
  EXPECT_FALSE(G.data(X).NumConst.has_value());
  G.merge(X, C);
  G.rebuild();
  EXPECT_TRUE(G.data(X).NumConst.has_value());
  EXPECT_DOUBLE_EQ(*G.data(X).NumConst, 4.0);
}

TEST(EGraphAnalysisTest, UpwardPropagationAfterMerge) {
  EGraph G;
  // Add(x, 1.0) becomes constant once x = 2.0.
  EClassId Sum = G.addTerm(tAdd(tVar("x"), tFloat(1.0)));
  EXPECT_FALSE(G.data(Sum).NumConst.has_value());
  G.merge(G.addTerm(tVar("x")), G.addTerm(tFloat(2.0)));
  G.rebuild();
  ASSERT_TRUE(G.data(Sum).NumConst.has_value());
  EXPECT_DOUBLE_EQ(*G.data(Sum).NumConst, 3.0);
}

TEST(EGraphAnalysisTest, DivByZeroDoesNotFold) {
  EGraph G;
  EClassId D = G.addTerm(tDiv(tFloat(1.0), tFloat(0.0)));
  EXPECT_FALSE(G.data(D).NumConst.has_value());
}

TEST(EGraphAnalysisTest, TrigFolds) {
  EGraph G;
  EClassId S = G.addTerm(tSin(tFloat(90.0)));
  ASSERT_TRUE(G.data(S).NumConst.has_value());
  EXPECT_NEAR(*G.data(S).NumConst, 1.0, 1e-12);
}

TEST(EGraphTest, DumpMentionsClassesAndConstants) {
  EGraph G;
  G.addTerm(tAdd(tFloat(1.0), tFloat(2.0)));
  G.rebuild();
  std::string D = G.dump();
  EXPECT_NE(D.find("class"), std::string::npos);
  EXPECT_NE(D.find("const 3"), std::string::npos);
}

TEST(EGraphTest, StressManyMergesStaysConsistent) {
  // Chain of Translates; merge leaves pairwise and verify congruence
  // collapses the towers.
  EGraph G;
  std::vector<EClassId> Leaves;
  std::vector<EClassId> Towers;
  for (int I = 0; I < 20; ++I) {
    TermPtr Leaf = tTranslate(I, 0, 0, tUnit());
    Leaves.push_back(G.addTerm(Leaf));
    Towers.push_back(G.addTerm(tScale(2, 2, 2, Leaf)));
  }
  for (int I = 1; I < 20; ++I)
    G.merge(Leaves[0], Leaves[I]);
  G.rebuild();
  for (int I = 1; I < 20; ++I)
    EXPECT_EQ(G.find(Towers[0]), G.find(Towers[I]));
}
