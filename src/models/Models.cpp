//===-- models/Models.cpp - The Table 1 benchmark corpus ------------------===//

#include "models/Models.h"

#include "cad/Eval.h"
#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace shrinkray;
using namespace shrinkray::models;

//===----------------------------------------------------------------------===//
// Construction helpers
//===----------------------------------------------------------------------===//

namespace {

/// A box of the given dimensions at the given corner position. Boxes at
/// the origin elide the no-op Translate (matching how a designer writes
/// them, and how the human-written counterparts flatten).
TermPtr box(double X, double Y, double Z, double W, double D, double H) {
  TermPtr Sized = tScale(W, D, H, tUnit());
  if (X == 0.0 && Y == 0.0 && Z == 0.0)
    return Sized;
  return tTranslate(X, Y, Z, Sized);
}

/// A z-axis cylinder with radius R and height H based at (X, Y, Z).
TermPtr cyl(double X, double Y, double Z, double R, double H) {
  TermPtr Sized = tScale(R, R, H, tCylinder());
  if (X == 0.0 && Y == 0.0 && Z == 0.0)
    return Sized;
  return tTranslate(X, Y, Z, Sized);
}

} // namespace

//===----------------------------------------------------------------------===//
// Individual models
//===----------------------------------------------------------------------===//

TermPtr models::gearModel(int Teeth) {
  assert(Teeth >= 3 && "a gear needs teeth");
  // Figure 3: Diff(Diff(Union(body, rim-base), shaft-bore), teeth-ring).
  TermPtr Body = tUnion(tScale(80, 80, 100, tCylinder()),
                        tScale(120, 120, 50, tCylinder()));
  TermPtr Base =
      tDiff(Body, tTranslate(0, 0, -1, tScale(25, 25, 102, tCylinder())));

  TermPtr Tooth = tScale(12, 6, 50, tUnit()); // the repeated tooth solid
  std::vector<TermPtr> Ring;
  double Step = 360.0 / Teeth;
  for (int I = 1; I <= Teeth; ++I)
    Ring.push_back(
        tRotate(0, 0, Step * I, tTranslate(125, 0, 0, Tooth)));
  // The teeth ring is a separate part union-ed with the base (the paper's
  // flat CSG diffs the ring's negative; a union keeps the same repetitive
  // structure while staying positive geometry).
  return tUnion(Base, tUnionAll(Ring));
}

TermPtr models::noisyHexagonsModel() {
  // Verbatim from Figure 16 (left).
  return tUnion(
      tTranslate(9.5, 1.5, 0.25,
                 tScale(1.0, 0.866, 0.5, tRotate(0, 0, 0, tHexagon()))),
      tUnion(tTranslate(6.0, 1.4999996667, 0.25,
                        tScale(1.6, 1.386, 0.5,
                               tRotate(0, 0, 0, tHexagon()))),
             tTranslate(2.0, 1.4999994660, 0.25,
                        tScale(2.0, 1.732, 0.5,
                               tRotate(0, 0, 0, tHexagon())))));
}

TermPtr models::injectNoise(const TermPtr &Flat, double Magnitude,
                            uint64_t Seed) {
  Rng R(Seed);
  std::function<TermPtr(const TermPtr &)> Rec =
      [&](const TermPtr &T) -> TermPtr {
    if (T->kind() == OpKind::Float)
      return tFloat(T->op().floatValue() +
                    R.nextDouble(-Magnitude, Magnitude));
    std::vector<TermPtr> Kids;
    Kids.reserve(T->numChildren());
    for (const TermPtr &Kid : T->children())
      Kids.push_back(Rec(Kid));
    return makeTerm(T->op(), std::move(Kids));
  };
  return Rec(Flat);
}

namespace {

/// 3244600:cnc-end-mill — a bit-holder block with a 4 x 4 grid of sockets.
TermPtr cncEndMill() {
  TermPtr Base = box(0, 0, 0, 58, 58, 22);
  std::vector<TermPtr> Sockets;
  for (int I = 0; I < 4; ++I)
    for (int J = 0; J < 4; ++J)
      Sockets.push_back(cyl(8.0 + 14.0 * I, 8.0 + 14.0 * J, 6.0, 4.0, 18.0));
  TermPtr Label = box(4, 52, 18, 50, 4, 5); // engraving groove
  return tDiff(Base, tUnion(tUnionAll(Sockets), Label));
}

/// 3432939:nintendo-slot — a storage unit with 11 slot dividers.
TermPtr nintendoSlot() {
  TermPtr Shell = tDiff(box(0, 0, 0, 120, 64, 40),
                        box(3, 3, 3, 114, 58, 40));
  std::vector<TermPtr> Dividers;
  for (int I = 0; I < 11; ++I)
    Dividers.push_back(tTranslate(
        10.0 + 9.0 * I, 4.0, 3.0,
        tRotate(0, 0, 12, tScale(2.0, 56.0, 34.0, tUnit()))));
  return tUnion(Shell, tUnionAll(Dividers));
}

/// 3171605:card-org — a card organizer with 8 slots.
TermPtr cardOrganizer() {
  TermPtr Base = box(0, 0, 0, 70, 40, 30);
  std::vector<TermPtr> Slots;
  for (int I = 0; I < 8; ++I)
    Slots.push_back(box(5.0 + 8.0 * I, 3.0, 4.0, 4.0, 34.0, 30.0));
  return tDiff(Base, tUnionAll(Slots));
}

/// 3044766:sander — a sanding block: a Hull-built grip (External) plus 6
/// clamp teeth (the paper replaced the Hull subexpression with External).
TermPtr sander() {
  std::vector<TermPtr> Teeth;
  for (int I = 0; I < 6; ++I)
    Teeth.push_back(box(4.0 + 12.0 * I, 0.0, 0.0, 6.0, 8.0, 10.0));
  return tUnion(tExternal("hull_grip"), tUnionAll(Teeth));
}

/// 3097951:rasp-pie — a GPIO pin cover: 2 x 20 grid of pin sockets.
TermPtr raspPie() {
  TermPtr Base = box(0, 0, 0, 104, 12, 8);
  std::vector<TermPtr> Pins;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 20; ++J)
      Pins.push_back(
          box(3.0 + 5.0 * J, 2.0 + 5.0 * I, 2.0, 3.0, 3.0, 8.0));
  return tDiff(Base, tUnionAll(Pins));
}

/// 3148599:box-tray — a tray with 3 x 5 compartments.
TermPtr boxTray() {
  TermPtr Base = box(0, 0, 0, 130, 80, 20);
  std::vector<TermPtr> Pockets;
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 5; ++J)
      Pockets.push_back(
          box(5.0 + 25.0 * J, 5.0 + 26.0 * I, 3.0, 21.0, 22.0, 20.0));
  return tDiff(Base, tUnionAll(Pockets));
}

/// 3331008:med-slide — a pill sorter: 7 slots around a tube-shaped base.
TermPtr medSlide() {
  TermPtr Tube = tDiff(cyl(0, 0, 0, 30, 60), cyl(0, 0, -1, 26, 62));
  std::vector<TermPtr> SlotRing;
  TermPtr Slot = tScale(6, 10, 50, tUnit());
  for (int I = 0; I < 7; ++I)
    SlotRing.push_back(tRotate(0, 0, 360.0 * I / 7.0,
                               tTranslate(24, -5, 5, Slot)));
  return tDiff(Tube, tUnionAll(SlotRing));
}

/// 2921167:hc-bits — the hex-cell bit holder (Figures 15/18/19): a plate
/// with a 2 x 2 pattern of hexagonal sockets, equivalently describable by a
/// trigonometric radius-7.07 layout around the center.
TermPtr hcBits() {
  TermPtr Plate = tScale(20, 20, 3, tUnit());
  std::vector<TermPtr> Cells;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      Cells.push_back(tTranslate(5.0 + 10.0 * I, 5.0 + 10.0 * J, -0.5,
                                 tScale(4.0, 4.0, 4.0, tHexagon())));
  return tDiff(Plate, tUnionAll(Cells));
}

/// 3094201:dice — a die: a cube with pip grids on its faces. The "6" face
/// is the Figure 17 2 x 3 sphere grid; the "4" face a 2 x 2 grid; the "1"
/// face a single pip.
TermPtr dice() {
  TermPtr Body = box(-10, -10, -10, 20, 20, 20);
  TermPtr Pip = tScale(2, 2, 2, tSphere());
  std::vector<TermPtr> Pips;
  // "6" face at x = -10: 2 x 3 grid.
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 3; ++J)
      Pips.push_back(
          tTranslate(-10, 4.0 - 8.0 * I, 5.0 - 5.0 * J, Pip));
  // "4" face at x = +10: 2 x 2 grid.
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J)
      Pips.push_back(
          tTranslate(10, 4.0 - 8.0 * I, 4.0 - 8.0 * J, Pip));
  // "1" face at z = +10.
  Pips.push_back(tTranslate(0, 0, 10, Pip));
  return tDiff(Body, tUnionAll(Pips));
}

/// 3072857:tape-store — a tape-spool organizer with 10 slots.
TermPtr tapeStore() {
  TermPtr Base = box(0, 0, 0, 160, 60, 40);
  std::vector<TermPtr> Slots;
  for (int I = 0; I < 10; ++I)
    Slots.push_back(box(6.0 + 15.5 * I, 5.0, 8.0, 11.0, 50.0, 40.0));
  return tDiff(Base, tUnionAll(Slots));
}

/// 1725308:soldering — a soldering-iron stand: a mirrored arm (External)
/// plus 5 repeated wire clips.
TermPtr soldering() {
  std::vector<TermPtr> Clips;
  for (int I = 0; I < 5; ++I)
    Clips.push_back(cyl(10.0 + 14.0 * I, 0.0, 0.0, 4.0, 12.0));
  return tUnion(tExternal("mirrored_arm"), tUnionAll(Clips));
}

/// 3452260:relay-box — a small relay enclosure with 2 mounting holes.
TermPtr relayBox() {
  TermPtr Shell = tDiff(box(0, 0, 0, 40, 30, 20), box(2, 2, 2, 36, 26, 20));
  std::vector<TermPtr> Holes;
  for (int I = 0; I < 2; ++I)
    Holes.push_back(cyl(8.0 + 24.0 * I, 15.0, -1.0, 2.0, 5.0));
  return tDiff(Shell, tUnionAll(Holes));
}

/// 64847:sd-rack — an SD-card rack whose 20 primitives are all distinct
/// (no repetitive structure; the paper's output equals the input).
TermPtr sdRack() {
  std::vector<TermPtr> Parts;
  double Xs[] = {0,  7,  15, 24, 34, 45, 57, 70,  84,  99,
                 83, 68, 54, 41, 29, 18, 8,  -1., -9., -16.};
  for (int I = 0; I < 20; ++I) {
    double W = 3.0 + (I * 7) % 11;
    double D = 4.0 + (I * 5) % 13;
    double H = 6.0 + (I * 3) % 7;
    TermPtr P = I % 3 == 0 ? cyl(Xs[I], 2.0 * I, 0.0, W / 2.0, H)
                           : box(Xs[I], 1.7 * I, 0.0, W, D, H);
    Parts.push_back(P);
  }
  return tUnionAll(Parts);
}

/// 3333935:compose — a one-off composition with no repetition.
TermPtr compose() {
  return tUnion(
      tDiff(box(0, 0, 0, 30, 30, 6), cyl(15, 15, -1, 9, 8)),
      tUnion(tTranslate(15, 15, 6, tScale(8, 8, 8, tSphere())),
             tUnion(tRotate(0, 0, 30, box(-20, 0, 0, 14, 5, 3)),
                    tUnion(cyl(35, 5, 0, 3, 14),
                           tRotate(0, 45, 0,
                                   box(5, -12, 2, 10, 6, 4))))));
}

/// 510849:wardrobe — a wardrobe organizer: 3 shelves and 3 rails at
/// *quadratically* spaced heights (so only degree-2 forms explain them).
TermPtr wardrobe() {
  TermPtr Frame = tDiff(box(0, 0, 0, 100, 50, 120),
                        box(4, 4, 4, 92, 42, 116));
  std::vector<TermPtr> Shelves;
  for (int I = 0; I < 3; ++I) {
    double Z = 2.5 * I * I + 12.5 * I + 10.0; // 10, 25, 45
    Shelves.push_back(box(4.0, 4.0, Z, 92.0, 42.0, 3.0));
  }
  std::vector<TermPtr> Rails;
  for (int I = 0; I < 3; ++I) {
    double Z = 5.0 * I * I + 10.0 * I + 60.0; // 60, 75, 100
    Rails.push_back(tTranslate(4.0, 25.0, Z,
                               tRotate(0, 90, 0, tScale(1.5, 1.5, 92,
                                                        tCylinder()))));
  }
  return tUnion(Frame, tUnion(tUnionAll(Shelves), tUnionAll(Rails)));
}

BenchmarkModel make(std::string Name, char Prov, std::string Desc,
                    TermPtr Flat, bool ExpectStructure, PaperRow Row) {
  BenchmarkModel M;
  M.Name = std::move(Name);
  M.Provenance = Prov;
  M.Description = std::move(Desc);
  M.FlatCsg = std::move(Flat);
  M.ExpectStructure = ExpectStructure;
  M.Paper = std::move(Row);
  assert(isFlatCsg(M.FlatCsg) && "benchmark model must be flat CSG");
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// The corpus
//===----------------------------------------------------------------------===//

std::vector<BenchmarkModel> models::allModels() {
  std::vector<BenchmarkModel> Out;
  Out.push_back(make(
      "3244600:cnc-end-mill", 'T', "CNC bit holder, 4x4 socket grid",
      cncEndMill(), true,
      {237, 64, 17, 3, 19, 10, "n2,4,4", "d1,d1", 17.29, 1}));
  Out.push_back(make(
      "3432939:nintendo-slot", 'T', "game-cartridge unit, 11 dividers",
      nintendoSlot(), true,
      {403, 73, 36, 7, 17, 9, "n1,11", "d1", 13.54, 2}));
  Out.push_back(make("3171605:card-org", 'T', "card organizer, 8 slots",
                     cardOrganizer(), true,
                     {47, 15, 8, 2, 8, 5, "n1,8", "d1", 2.02, 1}));
  Out.push_back(make("3044766:sander", 'T',
                     "sanding block (Hull kept as External), 6 teeth",
                     sander(), true,
                     {35, 15, 6, 2, 6, 5, "n1,6", "d1", 1.15, 1}));
  Out.push_back(make("3097951:rasp-pie", 'T',
                     "Raspberry Pi pin cover, 2x20 grid", raspPie(), true,
                     {405, 80, 41, 3, 42, 24, "n2,2,20", "d1,d1", 130.0, 1}));
  Out.push_back(make("3148599:box-tray", 'T', "tray with 3x5 compartments",
                     boxTray(), true,
                     {155, 52, 16, 3, 17, 9, "n2,3,5", "d1,d1", 12.35, 1}));
  Out.push_back(make("3331008:med-slide", 'T',
                     "pill sorter, 7 slots on a tube", medSlide(), true,
                     {207, 83, 20, 8, 14, 10, "n1,7", "d1", 2.56, 1}));
  Out.push_back(make("2921167:hc-bits", 'I',
                     "hex-cell bit holder (loop AND trig variants)",
                     hcBits(), true,
                     {45, 31, 5, 3, 6, 9, "n1,4; n2,2,2", "theta; d1,d1",
                      2.97, 1}));
  Out.push_back(make("3094201:dice", 'T', "die with pip grids", dice(),
                     true, {219, 200, 22, 18, 23, 24, "n2,3,3", "d1,d1",
                            102.63, 2}));
  Out.push_back(make("3072857:tape-store", 'T', "tape organizer, 10 slots",
                     tapeStore(), true,
                     {241, 21, 11, 3, 15, 6, "n1,10", "d1", 7.81, 1}));
  Out.push_back(make("1725308:soldering", 'I',
                     "soldering stand (Mirror kept as External), 5 clips",
                     soldering(), true,
                     {31, 17, 6, 3, 6, 6, "n1,5", "d1", 0.77, 2}));
  Out.push_back(make("3362402:gear", 'I', "60-tooth gear (Figure 1)",
                     gearModel(60), true,
                     {621, 43, 63, 5, 62, 6, "n1,60", "d1", 285.36, 2}));
  Out.push_back(make("3452260:relay-box", 'T', "relay box, 2 holes",
                     relayBox(), true,
                     {39, 29, 4, 2, 6, 5, "n1,2", "d1", 0.36, 4}));
  Out.push_back(make("64847:sd-rack", 'I',
                     "SD rack, 20 distinct parts (no structure)", sdRack(),
                     false, {195, 195, 20, 20, 21, 21, "-", "-", 40.25, 1}));
  Out.push_back(make("3333935:compose", 'T',
                     "one-off composition (no structure)", compose(), false,
                     {55, 55, 6, 6, 6, 6, "-", "-", 1.86, 1}));
  Out.push_back(make("510849:wardrobe", 'I',
                     "wardrobe, quadratically spaced shelves/rails "
                     "(needs reward-loops)",
                     wardrobe(), false,
                     {149, 145, 15, 15, 11, 11, "-", "-", 10.06, 1}));
  return Out;
}

BenchmarkModel models::modelByName(const std::string &Name) {
  for (BenchmarkModel &M : allModels())
    if (M.Name == Name)
      return M;
  assert(false && "unknown benchmark model");
  return {};
}
