//===-- models/HumanModels.h - Human-written structured models -*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-written LambdaCAD counterparts of the benchmark corpus (paper
/// Sec. 6.2): for the Thingiverse models the authors had OpenSCAD sources
/// with loops; flattening those sources produced the synthesizer inputs,
/// and the paper compares ShrinkRay's output loops against the human ones.
/// Here each structured model is written the way its designer would have —
/// Mapi/Fold over the repeated feature — and flattens (via evalToFlatCsg)
/// to exactly the corresponding models::allModels() entry.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_MODELS_HUMANMODELS_H
#define SHRINKRAY_MODELS_HUMANMODELS_H

#include "cad/Term.h"

#include <string>
#include <vector>

namespace shrinkray {
namespace models {

/// A human-written structured model paired with its flat benchmark.
struct HumanModel {
  std::string Name;       ///< matches a models::allModels() entry
  TermPtr Structured;     ///< LambdaCAD with explicit loops
  std::string LoopShape;  ///< the loop the human wrote, e.g. "n1,8"
};

/// The human-written versions of every corpus model that has loops in its
/// Thingiverse source (the paper's 70% "T" models plus the authors' own).
std::vector<HumanModel> humanModels();

} // namespace models
} // namespace shrinkray

#endif // SHRINKRAY_MODELS_HUMANMODELS_H
