//===-- models/Models.h - The Table 1 benchmark corpus ---------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 16 Thingiverse benchmarks of the paper's evaluation (Table 1), plus
/// the Figure 1/3/4 gear and the Figure 16 noisy decompiled input.
///
/// Substitution note (DESIGN.md): the original STL/SCAD sources are not
/// redistributable offline, so every model is reconstructed synthetically
/// from the paper's description — same repetitive structure, same loop
/// shape and bounds, comparable node counts. Models tagged T in the paper
/// came from Thingiverse OpenSCAD sources (flattened); models tagged I were
/// implemented by the authors. Both kinds are generated here and flattened
/// through the LambdaCAD evaluator where a structured source is natural.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_MODELS_MODELS_H
#define SHRINKRAY_MODELS_MODELS_H

#include "cad/Term.h"

#include <string>
#include <vector>

namespace shrinkray {
namespace models {

/// Paper-reported Table 1 row (for EXPERIMENTS.md comparisons).
struct PaperRow {
  int InputNodes = 0;        ///< #i-ns
  int OutputNodes = 0;       ///< #o-ns (first result if several)
  int InputPrims = 0;        ///< #i-p
  int OutputPrims = 0;       ///< #o-p
  int InputDepth = 0;        ///< #i-d
  int OutputDepth = 0;       ///< #o-d
  std::string Loops;         ///< n-l column ("-" when none)
  std::string Forms;         ///< f column ("-" when none)
  double TimeSec = 0.0;      ///< #t(s)
  int Rank = 0;              ///< r (first result if several)
};

/// One benchmark model.
struct BenchmarkModel {
  std::string Name;        ///< e.g. "3362402:gear"
  char Provenance = 'T';   ///< 'T' (Thingiverse) or 'I' (author-implemented)
  std::string Description; ///< what the object is
  TermPtr FlatCsg;         ///< synthesizer input (flat)
  bool ExpectStructure = true; ///< paper found loops for this model
  PaperRow Paper;          ///< the paper's reported numbers
};

/// All 16 models of Table 1, in the paper's row order.
std::vector<BenchmarkModel> allModels();

/// Looks up a model by name; asserts it exists.
BenchmarkModel modelByName(const std::string &Name);

/// The full gear of Figures 1/3/4 with a configurable tooth count
/// (Table 1 row 3362402:gear uses 60).
TermPtr gearModel(int Teeth = 60);

/// The Figure 16 noisy decompiled input (three hexagonal prisms with
/// floating-point noise from mesh decompilation), verbatim from the figure.
TermPtr noisyHexagonsModel();

/// Simulates mesh-decompiler roundoff: perturbs every Float literal in
/// \p Flat by a uniform offset in [-Magnitude, +Magnitude], deterministically
/// from \p Seed.
TermPtr injectNoise(const TermPtr &Flat, double Magnitude, uint64_t Seed);

} // namespace models
} // namespace shrinkray

#endif // SHRINKRAY_MODELS_MODELS_H
