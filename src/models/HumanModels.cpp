//===-- models/HumanModels.cpp - Human-written structured models ----------===//

#include "models/HumanModels.h"

using namespace shrinkray;
using namespace shrinkray::models;

namespace {

/// Mapi (Fun (i, c) -> Translate(exprs, c), Repeat(Elem, N)) under a
/// unioning Fold — the idiom a designer writes for a repeated feature.
TermPtr mapiLoop(TermPtr BodyVec, TermPtr Elem, int64_t N) {
  TermPtr Body = tTranslate(std::move(BodyVec), tVar("c"));
  return tFold(tOpRef(OpKind::Union), tEmpty(),
               tMapi(tFun({tVar("i"), tVar("c"), Body}),
                     tRepeat(std::move(Elem), tInt(N))));
}

/// i-linear scalar expression a*i + b.
TermPtr lin(double A, double B, const char *Var = "i") {
  TermPtr Scaled = A == 1.0 ? tVar(Var) : tMul(tFloat(A), tVar(Var));
  if (B == 0.0)
    return Scaled;
  return tAdd(std::move(Scaled), tFloat(B));
}

/// Doubly nested designer loop: Fold(Union, Empty, Fold(Fun i -> Fold(Fun
/// j -> Translate((fx, fy, fz), Elem), Nil, 0..Q-1), Nil, 0..P-1)).
TermPtr gridLoop(TermPtr Fx, TermPtr Fy, TermPtr Fz, TermPtr Elem,
                 int64_t P, int64_t Q) {
  TermPtr Body =
      tTranslate(tVec3(std::move(Fx), std::move(Fy), std::move(Fz)),
                 std::move(Elem));
  TermPtr Inner = tFold(tFun({tVar("j"), std::move(Body)}), tNil(),
                        tIndexList(Q));
  TermPtr Outer =
      tFold(tFun({tVar("i"), std::move(Inner)}), tNil(), tIndexList(P));
  return tFold(tOpRef(OpKind::Union), tEmpty(), std::move(Outer));
}

TermPtr sizedBox(double W, double D, double H) {
  return tScale(W, D, H, tUnit());
}

TermPtr sizedCyl(double R, double H) { return tScale(R, R, H, tCylinder()); }

} // namespace

std::vector<HumanModel> models::humanModels() {
  std::vector<HumanModel> Out;

  // 3244600:cnc-end-mill — for i, j in 4 x 4: socket at (8+14i, 8+14j).
  {
    TermPtr Base = sizedBox(58, 58, 22);
    TermPtr Grid = gridLoop(lin(14, 8), lin(14, 8, "j"), tFloat(6),
                            sizedCyl(4, 18), 4, 4);
    TermPtr Label = tTranslate(4, 52, 18, sizedBox(50, 4, 5));
    Out.push_back({"3244600:cnc-end-mill",
                   tDiff(Base, tUnion(Grid, Label)), "n2,4,4"});
  }

  // 3432939:nintendo-slot — 11 rotated dividers at x = 10 + 9i.
  {
    TermPtr Shell = tDiff(sizedBox(120, 64, 40),
                          tTranslate(3, 3, 3, sizedBox(114, 58, 40)));
    TermPtr Divider = tRotate(0, 0, 12, sizedBox(2, 56, 34));
    TermPtr Loop = mapiLoop(tVec3(lin(9, 10), tFloat(4), tFloat(3)),
                            Divider, 11);
    Out.push_back({"3432939:nintendo-slot", tUnion(Shell, Loop), "n1,11"});
  }

  // 3171605:card-org — 8 slots at x = 5 + 8i.
  {
    TermPtr Loop = mapiLoop(tVec3(lin(8, 5), tFloat(3), tFloat(4)),
                            sizedBox(4, 34, 30), 8);
    Out.push_back({"3171605:card-org", tDiff(sizedBox(70, 40, 30), Loop),
                   "n1,8"});
  }

  // 3044766:sander — grip (External) + 6 teeth at x = 4 + 12i.
  {
    TermPtr Loop = mapiLoop(tVec3(lin(12, 4), tFloat(0), tFloat(0)),
                            sizedBox(6, 8, 10), 6);
    Out.push_back({"3044766:sander", tUnion(tExternal("hull_grip"), Loop),
                   "n1,6"});
  }

  // 3097951:rasp-pie — 2 x 20 pin sockets at (3+5j, 2+5i).
  {
    TermPtr Grid = gridLoop(lin(5, 3, "j"), lin(5, 2, "i"), tFloat(2),
                            sizedBox(3, 3, 8), 2, 20);
    Out.push_back({"3097951:rasp-pie", tDiff(sizedBox(104, 12, 8), Grid),
                   "n2,2,20"});
  }

  // 3148599:box-tray — 3 x 5 pockets at (5+25j, 5+26i).
  {
    TermPtr Grid = gridLoop(lin(25, 5, "j"), lin(26, 5, "i"), tFloat(3),
                            sizedBox(21, 22, 20), 3, 5);
    Out.push_back({"3148599:box-tray", tDiff(sizedBox(130, 80, 20), Grid),
                   "n2,3,5"});
  }

  // 3331008:med-slide — 7 slots rotated around the tube.
  {
    TermPtr Tube = tDiff(sizedCyl(30, 60),
                         tTranslate(0, 0, -1, sizedCyl(26, 62)));
    TermPtr Slot = tTranslate(24, -5, 5, tScale(6, 10, 50, tUnit()));
    TermPtr Body = tRotate(
        tVec3(tFloat(0), tFloat(0),
              tDiv(tMul(tFloat(360), tVar("i")), tFloat(7))),
        tVar("c"));
    TermPtr Loop = tFold(tOpRef(OpKind::Union), tEmpty(),
                         tMapi(tFun({tVar("i"), tVar("c"), Body}),
                               tRepeat(Slot, tInt(7))));
    Out.push_back({"3331008:med-slide", tDiff(Tube, Loop), "n1,7"});
  }

  // 2921167:hc-bits — 2 x 2 hexagonal cells at (5+10i, 5+10j).
  {
    TermPtr Cell = tTranslate(
        tVec3(lin(10, 5, "i"), lin(10, 5, "j"), tFloat(-0.5)),
        tScale(4, 4, 4, tHexagon()));
    TermPtr Inner =
        tFold(tFun({tVar("j"), Cell}), tNil(), tIndexList(2));
    TermPtr Outer =
        tFold(tFun({tVar("i"), Inner}), tNil(), tIndexList(2));
    TermPtr Grid = tFold(tOpRef(OpKind::Union), tEmpty(), Outer);
    Out.push_back({"2921167:hc-bits",
                   tDiff(tScale(20, 20, 3, tUnit()), Grid), "n2,2,2"});
  }

  // 3072857:tape-store — 10 slots at x = 6 + 15.5i.
  {
    TermPtr Loop = mapiLoop(tVec3(lin(15.5, 6), tFloat(5), tFloat(8)),
                            sizedBox(11, 50, 40), 10);
    Out.push_back({"3072857:tape-store",
                   tDiff(sizedBox(160, 60, 40), Loop), "n1,10"});
  }

  // 1725308:soldering — arm (External) + 5 clips at x = 10 + 14i.
  {
    TermPtr Loop = mapiLoop(tVec3(lin(14, 10), tFloat(0), tFloat(0)),
                            sizedCyl(4, 12), 5);
    Out.push_back({"1725308:soldering",
                   tUnion(tExternal("mirrored_arm"), Loop), "n1,5"});
  }

  // 3362402:gear — the Figure 4 program.
  {
    TermPtr Base = tDiff(
        tUnion(tScale(80, 80, 100, tCylinder()),
               tScale(120, 120, 50, tCylinder())),
        tTranslate(0, 0, -1, tScale(25, 25, 102, tCylinder())));
    TermPtr Body = tRotate(
        tVec3(tFloat(0), tFloat(0),
              tMul(tFloat(6), tAdd(tVar("i"), tInt(1)))),
        tTranslate(125, 0, 0, tVar("c")));
    TermPtr Ring = tFold(tOpRef(OpKind::Union), tEmpty(),
                         tMapi(tFun({tVar("i"), tVar("c"), Body}),
                               tRepeat(tScale(12, 6, 50, tUnit()),
                                       tInt(60))));
    Out.push_back({"3362402:gear", tUnion(Base, Ring), "n1,60"});
  }

  // 3452260:relay-box — 2 mounting holes at x = 8 + 24i.
  {
    TermPtr Shell = tDiff(sizedBox(40, 30, 20),
                          tTranslate(2, 2, 2, sizedBox(36, 26, 20)));
    TermPtr Loop = mapiLoop(tVec3(lin(24, 8), tFloat(15), tFloat(-1)),
                            sizedCyl(2, 5), 2);
    Out.push_back({"3452260:relay-box", tDiff(Shell, Loop), "n1,2"});
  }

  // 510849:wardrobe — shelves and rails at quadratic heights.
  {
    TermPtr Frame = tDiff(sizedBox(100, 50, 120),
                          tTranslate(4, 4, 4, sizedBox(92, 42, 116)));
    TermPtr ShelfZ = tAdd(
        tAdd(tMul(tFloat(2.5), tMul(tVar("i"), tVar("i"))),
             tMul(tFloat(12.5), tVar("i"))),
        tFloat(10));
    TermPtr ShelfBody = tTranslate(
        tVec3(tFloat(4), tFloat(4), ShelfZ), tVar("c"));
    TermPtr Shelves = tFold(tOpRef(OpKind::Union), tEmpty(),
                            tMapi(tFun({tVar("i"), tVar("c"), ShelfBody}),
                                  tRepeat(sizedBox(92, 42, 3), tInt(3))));
    TermPtr RailZ = tAdd(
        tAdd(tMul(tFloat(5), tMul(tVar("i"), tVar("i"))),
             tMul(tFloat(10), tVar("i"))),
        tFloat(60));
    TermPtr RailBody = tTranslate(
        tVec3(tFloat(4), tFloat(25), RailZ), tVar("c"));
    TermPtr Rails = tFold(
        tOpRef(OpKind::Union), tEmpty(),
        tMapi(tFun({tVar("i"), tVar("c"), RailBody}),
              tRepeat(tRotate(0, 90, 0, tScale(1.5, 1.5, 92, tCylinder())),
                      tInt(3))));
    Out.push_back({"510849:wardrobe",
                   tUnion(Frame, tUnion(Shelves, Rails)), "n1,3; n1,3"});
  }

  return Out;
}
