//===-- synth/Determinize.cpp - List determinization ----------------------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the determinizer (paper Sec. 4.2). Walks each fold
/// list's Cons spine, enumerates candidate affine decompositions per
/// element, and intersects them into whole-list ChainDecompositions: one
/// transform-kind sequence and one base class shared by every element, the
/// shape the function solvers require.
///
//===----------------------------------------------------------------------===//

#include "synth/Determinize.h"

#include <algorithm>
#include <map>
#include <set>

using namespace shrinkray;

std::optional<std::vector<EClassId>>
shrinkray::spineElements(const EGraph &G, EClassId ListClass) {
  std::vector<EClassId> Out;
  std::set<EClassId> Visited;
  EClassId Cur = G.find(ListClass);
  while (true) {
    if (!Visited.insert(Cur).second)
      return std::nullopt; // cyclic spine
    const EClass &C = G.eclass(Cur);
    const ENode *ConsNode = nullptr;
    bool HasNil = false;
    for (const ENode &N : C.Nodes) {
      if (N.kind() == OpKind::Cons)
        ConsNode = &N;
      if (N.kind() == OpKind::Nil)
        HasNil = true;
    }
    if (ConsNode) {
      Out.push_back(G.find(ConsNode->Children[0]));
      Cur = G.find(ConsNode->Children[1]);
      continue;
    }
    if (HasNil)
      return Out;
    return std::nullopt; // not a pure spine
  }
}

/// Reads the literal Vec3 of an affine e-node's vector class, if all three
/// components are analysis constants.
static std::optional<Vec3> literalVecOfClass(const EGraph &G,
                                             EClassId VecClass) {
  for (const ENode &N : G.eclass(VecClass).Nodes) {
    if (N.kind() != OpKind::Vec3Ctor)
      continue;
    const AnalysisData &X = G.data(N.Children[0]);
    const AnalysisData &Y = G.data(N.Children[1]);
    const AnalysisData &Z = G.data(N.Children[2]);
    if (X.NumConst && Y.NumConst && Z.NumConst)
      return Vec3{*X.NumConst, *Y.NumConst, *Z.NumConst};
  }
  return std::nullopt;
}

static void chainsRec(const EGraph &G, EClassId Element, size_t MaxDepth,
                      size_t MaxChains, std::vector<AffineLayer> &Prefix,
                      std::set<EClassId> &OnPath,
                      std::vector<AffineChain> &Out) {
  if (Out.size() >= MaxChains)
    return;
  Element = G.find(Element);

  // Every class is a valid stopping point (zero further layers).
  Out.push_back(AffineChain{Prefix, Element});

  if (Prefix.size() >= MaxDepth || !OnPath.insert(Element).second)
    return;
  for (const ENode &N : G.eclass(Element).Nodes) {
    if (!isAffineOp(N.kind()))
      continue;
    std::optional<Vec3> V = literalVecOfClass(G, N.Children[0]);
    if (!V)
      continue;
    Prefix.push_back(AffineLayer{N.kind(), *V});
    chainsRec(G, N.Children[1], MaxDepth, MaxChains, Prefix, OnPath, Out);
    Prefix.pop_back();
    if (Out.size() >= MaxChains)
      break;
  }
  OnPath.erase(Element);
}

std::vector<AffineChain> shrinkray::enumerateChains(const EGraph &G,
                                                    EClassId Element,
                                                    size_t MaxDepth,
                                                    size_t MaxChains) {
  std::vector<AffineChain> Out;
  std::vector<AffineLayer> Prefix;
  std::set<EClassId> OnPath;
  chainsRec(G, Element, MaxDepth, MaxChains, Prefix, OnPath, Out);
  // Deepest decompositions first; ties broken by kind sequence for
  // determinism.
  std::stable_sort(Out.begin(), Out.end(),
                   [](const AffineChain &A, const AffineChain &B) {
                     if (A.Layers.size() != B.Layers.size())
                       return A.Layers.size() > B.Layers.size();
                     for (size_t I = 0; I < A.Layers.size(); ++I)
                       if (A.Layers[I].Kind != B.Layers[I].Kind)
                         return A.Layers[I].Kind < B.Layers[I].Kind;
                     return false;
                   });
  return Out;
}

std::vector<ChainDecomposition>
shrinkray::determinize(const EGraph &G, EClassId ListClass,
                       size_t MaxResults) {
  std::vector<ChainDecomposition> Results;
  std::optional<std::vector<EClassId>> Elements = spineElements(G, ListClass);
  if (!Elements || Elements->empty())
    return Results;

  // Dedup-aware chain enumeration: chains are a pure function of the
  // canonical element class, and duplicate-heavy lists (the recorded
  // pathology: n identical elements) would otherwise redo the exponential
  // enumeration n times per template. Memoize per distinct class.
  std::map<EClassId, std::vector<AffineChain>> ChainCache;
  auto chainsOf = [&](EClassId Elem) -> const std::vector<AffineChain> & {
    auto [It, Inserted] = ChainCache.try_emplace(G.find(Elem));
    if (Inserted)
      It->second = enumerateChains(G, It->first);
    return It->second;
  };
  std::set<EClassId> DistinctElements;
  for (EClassId Elem : *Elements)
    DistinctElements.insert(G.find(Elem));

  // Candidate (kind-sequence, base) templates come from the first element;
  // the heuristic then checks every other element for a matching chain
  // (paper: "first picking an element and respecting the same order of
  // affine transformations for all other elements").
  const std::vector<AffineChain> &FirstChains = chainsOf((*Elements)[0]);

  for (const AffineChain &Template : FirstChains) {
    if (Results.size() >= MaxResults)
      break;
    if (Template.Layers.empty())
      continue; // no structure to expose

    ChainDecomposition D;
    D.Base = G.find(Template.Base);
    D.Elements = *Elements;
    D.UniqueElements = DistinctElements.size();
    D.Vectors.assign(Template.Layers.size(), {});
    for (size_t L = 0; L < Template.Layers.size(); ++L)
      D.LayerKinds.push_back(Template.Layers[L].Kind);

    bool AllMatch = true;
    for (EClassId Elem : *Elements) {
      const std::vector<AffineChain> &Chains = chainsOf(Elem);
      const AffineChain *Match = nullptr;
      for (const AffineChain &C : Chains) {
        if (C.Layers.size() != Template.Layers.size() ||
            G.find(C.Base) != D.Base)
          continue;
        bool KindsMatch = true;
        for (size_t L = 0; L < C.Layers.size(); ++L)
          if (C.Layers[L].Kind != D.LayerKinds[L]) {
            KindsMatch = false;
            break;
          }
        if (KindsMatch) {
          Match = &C;
          break;
        }
      }
      if (!Match) {
        AllMatch = false;
        break;
      }
      for (size_t L = 0; L < Match->Layers.size(); ++L)
        D.Vectors[L].push_back(Match->Layers[L].V);
    }
    if (!AllMatch)
      continue;

    // Dedupe decompositions with identical kind sequences (a shorter chain
    // of an already-accepted deeper one adds nothing).
    bool Duplicate = false;
    for (const ChainDecomposition &Existing : Results)
      if (Existing.LayerKinds == D.LayerKinds &&
          Existing.Base == D.Base) {
        Duplicate = true;
        break;
      }
    if (!Duplicate)
      Results.push_back(std::move(D));
  }
  return Results;
}
