//===-- synth/Inference.h - Function and loop inference ---------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arithmetic component of the pipeline (paper Sec. 4 and 5): given a
/// determinized fold list, query the function solvers for closed forms over
/// the transform vectors and insert the equivalent Mapi / nested-Fold
/// programs back into the e-graph, merged into the list's e-class.
///
/// Function inference (Sec. 4) produces
///     Mapi (Fun (i, c) -> T(f(i), c), ... Repeat(base, n))
/// with one Mapi per affine layer (Figure 10). Loop inference (Sec. 5)
/// m-factorizes the list length and finds multi-index closed forms,
/// producing nested Folds over index lists (Figures 14 and 17); an
/// irregular-grid fallback groups elements by a shared coordinate.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SYNTH_INFERENCE_H
#define SHRINKRAY_SYNTH_INFERENCE_H

#include "solvers/FunctionSolver.h"
#include "synth/Determinize.h"

#include <string>

namespace shrinkray {

/// What one inference insertion produced (for reporting; Table 1 columns).
struct InferenceRecord {
  enum class Kind { Mapi, NestedFold, IrregularFold } K = Kind::Mapi;
  std::vector<int64_t> Bounds;       ///< loop bounds, outermost first
  std::vector<FormKind> Forms;       ///< closed-form classes used
  /// The solver-pipeline modules whose fits drove this insertion ("poly",
  /// "trig", "linear"), unique in first-use order (ClosedForm::Module).
  std::vector<std::string> Modules;
  std::string Description;           ///< human-readable summary

  /// Table 1 "n-l" notation, e.g. "n1,60" or "n2,3,5".
  std::string loopNotation() const;
  /// Table 1 "f" notation, e.g. "d1" / "d2" / "theta" (joined unique).
  std::string formNotation() const;
};

/// Function inference (Sec. 4): solves every affine layer of \p D and, on
/// success, merges the nested-Mapi program into \p ListClass. When layers
/// admit both polynomial and trigonometric forms, one variant per family is
/// inserted (diversity, Sec. 6.3). Returns the records of inserted programs.
std::vector<InferenceRecord> inferFunctions(EGraph &G, EClassId ListClass,
                                            const ChainDecomposition &D,
                                            const FunctionSolver &Solver);

/// Loop inference (Sec. 5): m-factorizes the list length (m = 2, 3) and
/// searches multi-index closed forms for the outermost layer; on success
/// merges the nested-Fold program into \p ListClass. Requires all inner
/// layers to be element-invariant (the nested solid must be shared).
std::vector<InferenceRecord> inferLoops(EGraph &G, EClassId ListClass,
                                        const ChainDecomposition &D,
                                        const FunctionSolver &Solver);

/// Irregular-loop inference (Sec. 5 "Irregular loops"): groups elements by
/// their leading coordinate and finds a per-group closed form for the rest,
/// producing a Concat of per-group Mapi lists. \p D must already be sorted
/// (list manipulation runs first). Returns the inserted records.
std::vector<InferenceRecord> inferIrregular(EGraph &G, EClassId ListClass,
                                            const ChainDecomposition &D,
                                            const FunctionSolver &Solver);

} // namespace shrinkray

#endif // SHRINKRAY_SYNTH_INFERENCE_H
