//===-- synth/Inference.cpp - Function and loop inference -----------------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of function and loop inference (paper Sec. 4 and 5).
/// Queries the solvers for closed forms over a determinized list's
/// transform vectors, builds the equivalent Mapi / nested-Fold / irregular
/// programs, and merges them into the list's e-class so extraction can
/// choose them.
///
//===----------------------------------------------------------------------===//

#include "synth/Inference.h"

#include "egraph/Pattern.h"

#include <algorithm>
#include <array>
#include <set>
#include <sstream>

using namespace shrinkray;

//===----------------------------------------------------------------------===//
// Records
//===----------------------------------------------------------------------===//

std::string InferenceRecord::loopNotation() const {
  std::ostringstream Os;
  switch (K) {
  case Kind::Mapi:
    Os << "n1";
    break;
  case Kind::NestedFold:
    Os << "n" << Bounds.size();
    break;
  case Kind::IrregularFold:
    Os << "irr";
    break;
  }
  for (int64_t B : Bounds)
    Os << "," << B;
  return Os.str();
}

std::string InferenceRecord::formNotation() const {
  // Unique classes in order of sophistication; constants degrade to d1.
  bool HasD1 = false, HasD2 = false, HasTheta = false;
  for (FormKind F : Forms) {
    HasD1 |= F == FormKind::Poly1 || F == FormKind::Constant;
    HasD2 |= F == FormKind::Poly2;
    HasTheta |= F == FormKind::Trig;
  }
  std::ostringstream Os;
  bool First = true;
  auto piece = [&](const char *Name) {
    if (!First)
      Os << ",";
    Os << Name;
    First = false;
  };
  if (HasD2)
    piece("d2");
  if (HasTheta)
    piece("theta");
  if (HasD1 && !HasD2 && !HasTheta)
    piece("d1");
  if (First)
    piece("d1");
  return Os.str();
}

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

namespace {

const char *BaseHole = "base";
const char *ChildHole = "child";

/// Instantiates a term containing `?base` / `?child` holes into the graph.
EClassId addWithHole(EGraph &G, const TermPtr &T, const char *Hole,
                     EClassId Filling) {
  Pattern P(T);
  Subst S;
  S.bind(Symbol(Hole), Filling);
  return P.instantiate(G, S);
}

TermPtr holeVar(const char *Hole) {
  return makeTerm(Op::makePatVar(Symbol(Hole)));
}

/// Per-layer solved component forms.
struct LayerForms {
  std::array<std::vector<ClosedForm>, 3> Comp;
};

/// Appends \p Module to \p Modules unless already present (records stay
/// small; first-use order is the reporting order).
void recordModule(const char *Module, std::vector<std::string> &Modules) {
  if (!Module || !*Module)
    return;
  for (const std::string &Existing : Modules)
    if (Existing == Module)
      return;
  Modules.emplace_back(Module);
}

/// Collects the used (non-constant when possible) form kinds of a layer,
/// plus the pipeline modules that produced them.
void recordForms(const std::array<const ClosedForm *, 3> &Picked,
                 InferenceRecord &Rec) {
  for (const ClosedForm *F : Picked) {
    if (F->Kind != FormKind::Constant)
      Rec.Forms.push_back(F->Kind);
    recordModule(F->Module, Rec.Modules);
  }
}

/// Builds the Vec3 expression term of one layer under index variable `i`,
/// applying the rotation heuristic to Rotate layers.
TermPtr layerVecTerm(OpKind LayerKind,
                     const std::array<const ClosedForm *, 3> &Picked) {
  std::array<TermPtr, 3> Exprs;
  for (int C = 0; C < 3; ++C) {
    int64_t Period = 0;
    if (LayerKind == OpKind::Rotate)
      Period = rotationPeriod(*Picked[C]);
    Exprs[C] = Picked[C]->toTerm(tVar("i"), Period);
  }
  return tVec3(Exprs[0], Exprs[1], Exprs[2]);
}

/// True iff every element has (within tolerance) the same vector in the
/// given layer.
bool layerIsInvariant(const std::vector<Vec3> &Vectors) {
  for (const Vec3 &V : Vectors)
    if (!V.approxEquals(Vectors[0], 1e-9))
      return false;
  return true;
}

/// Finds the class of the solid under the outermost affine layer, shared by
/// all elements; nullopt when elements disagree.
std::optional<EClassId> sharedOuterChild(const EGraph &G,
                                         const ChainDecomposition &D) {
  std::optional<EClassId> Shared;
  for (size_t I = 0; I < D.numElements(); ++I) {
    bool Found = false;
    for (const ENode &N : G.eclass(D.Elements[I]).Nodes) {
      if (N.kind() != D.LayerKinds[0])
        continue;
      // Match the vector recorded by the determinizer.
      bool VecMatches = false;
      for (const ENode &VN : G.eclass(N.Children[0]).Nodes) {
        if (VN.kind() != OpKind::Vec3Ctor)
          continue;
        Vec3 V{G.data(VN.Children[0]).NumConst.value_or(1e300),
               G.data(VN.Children[1]).NumConst.value_or(1e300),
               G.data(VN.Children[2]).NumConst.value_or(1e300)};
        if (V.approxEquals(D.Vectors[0][I], 1e-9)) {
          VecMatches = true;
          break;
        }
      }
      if (!VecMatches)
        continue;
      EClassId Child = G.find(N.Children[1]);
      if (!Shared)
        Shared = Child;
      if (*Shared != Child)
        return std::nullopt;
      Found = true;
      break;
    }
    if (!Found)
      return std::nullopt;
  }
  return Shared;
}

} // namespace

//===----------------------------------------------------------------------===//
// Function inference (nested Mapi)
//===----------------------------------------------------------------------===//

std::vector<InferenceRecord>
shrinkray::inferFunctions(EGraph &G, EClassId ListClass,
                          const ChainDecomposition &D,
                          const FunctionSolver &Solver) {
  std::vector<InferenceRecord> Records;
  const size_t N = D.numElements();
  if (N < 2 || D.numLayers() == 0)
    return Records;

  // Solve every layer component; bail if any has no closed form (the list
  // as a whole must be covered for the rewrite to be semantics-preserving).
  std::vector<LayerForms> Layers(D.numLayers());
  for (size_t L = 0; L < D.numLayers(); ++L) {
    for (int C = 0; C < 3; ++C) {
      std::vector<double> Vals(N);
      for (size_t I = 0; I < N; ++I)
        Vals[I] = D.Vectors[L][I][C];
      Layers[L].Comp[C] = Solver.solveAll(Vals);
      if (Layers[L].Comp[C].empty())
        return Records;
    }
  }

  // Variant selectors: primary (simplest form per component) and
  // trig-preferred (diversity; paper Sec. 6.3).
  auto pick = [&](const std::vector<ClosedForm> &Forms,
                  bool PreferTrig) -> const ClosedForm * {
    if (PreferTrig)
      for (const ClosedForm &F : Forms)
        if (F.Kind == FormKind::Trig)
          return &F;
    return &Forms.front();
  };

  std::set<std::string> SeenVariants;
  for (bool PreferTrig : {false, true}) {
    InferenceRecord Rec;
    Rec.K = InferenceRecord::Kind::Mapi;
    Rec.Bounds = {static_cast<int64_t>(N)};

    TermPtr Inner =
        tRepeat(holeVar(BaseHole), tInt(static_cast<int64_t>(N)));
    std::ostringstream Signature;
    for (size_t LPlus1 = D.numLayers(); LPlus1 > 0; --LPlus1) {
      const size_t L = LPlus1 - 1;
      std::array<const ClosedForm *, 3> Picked;
      for (int C = 0; C < 3; ++C) {
        Picked[C] = pick(Layers[L].Comp[C], PreferTrig);
        Signature << static_cast<int>(Picked[C]->Kind) << ",";
      }
      recordForms(Picked, Rec);
      TermPtr Body = makeTerm(Op(D.LayerKinds[L]),
                              {layerVecTerm(D.LayerKinds[L], Picked),
                               tVar("c")});
      Inner = tMapi(tFun({tVar("i"), tVar("c"), Body}), Inner);
    }

    // Skip the trig variant when it selects exactly the same forms.
    if (!SeenVariants.insert(Signature.str()).second)
      continue;

    EClassId NewList = addWithHole(G, Inner, BaseHole, D.Base);
    G.merge(ListClass, NewList);
    Rec.Description = "Mapi over " + std::to_string(N) + " elements, " +
                      std::to_string(D.numLayers()) + " layer(s)";
    Records.push_back(std::move(Rec));
  }
  return Records;
}

//===----------------------------------------------------------------------===//
// Regular nested-loop inference (m-factorization)
//===----------------------------------------------------------------------===//

namespace {

/// Enumerates the non-trivial m-factorizations of n (paper Fig. 13),
/// e.g. 2-factorizations of 4 = [(2,2)]; 3-factorizations of 8 = [(2,2,2)].
std::vector<std::vector<int64_t>> factorizations(int64_t N, int M) {
  std::vector<std::vector<int64_t>> Out;
  if (M == 2) {
    for (int64_t P = 2; P * 2 <= N; ++P)
      if (N % P == 0 && N / P >= 2)
        Out.push_back({P, N / P});
  } else if (M == 3) {
    for (int64_t P = 2; P * 4 <= N; ++P) {
      if (N % P != 0)
        continue;
      for (int64_t Q = 2; Q * 2 <= N / P; ++Q)
        if ((N / P) % Q == 0 && N / (P * Q) >= 2)
          Out.push_back({P, Q, N / (P * Q)});
    }
  }
  return Out;
}

/// The m-index-set of element t under a factorization (row-major order).
std::vector<int64_t> indexTuple(int64_t T,
                                const std::vector<int64_t> &Factors) {
  std::vector<int64_t> Idx(Factors.size());
  for (size_t D = Factors.size(); D > 0; --D) {
    Idx[D - 1] = T % Factors[D - 1];
    T /= Factors[D - 1];
  }
  return Idx;
}

/// Builds sum_k a_k * Var(names[k]) + c from a coefficient vector.
TermPtr linearTerm(const std::vector<double> &Coef,
                   const std::vector<const char *> &Names) {
  TermPtr Acc;
  for (size_t K = 0; K < Names.size(); ++K) {
    if (Coef[K + 1] == 0.0)
      continue;
    TermPtr Piece = scaledIndexTerm(Coef[K + 1], tVar(Names[K]));
    Acc = Acc ? tAdd(std::move(Acc), std::move(Piece)) : std::move(Piece);
  }
  double C = Coef[0];
  if (!Acc)
    return numericLiteral(C);
  if (C == 0.0)
    return Acc;
  if (C < 0.0)
    return tSub(std::move(Acc), numericLiteral(-C));
  return tAdd(std::move(Acc), numericLiteral(C));
}

} // namespace

std::vector<InferenceRecord>
shrinkray::inferLoops(EGraph &G, EClassId ListClass,
                      const ChainDecomposition &D,
                      const FunctionSolver &Solver) {
  std::vector<InferenceRecord> Records;
  const size_t N = D.numElements();
  if (N < 4 || D.numLayers() == 0)
    return Records;

  // Loop inference addresses only the outermost transformations; everything
  // underneath must be shared across elements (paper Sec. 5).
  for (size_t L = 1; L < D.numLayers(); ++L)
    if (!layerIsInvariant(D.Vectors[L]))
      return Records;
  std::optional<EClassId> Child = sharedOuterChild(G, D);
  if (!Child)
    return Records;

  static const std::vector<const char *> VarNames = {"i", "j", "k"};
  for (int M : {2, 3}) {
    for (const std::vector<int64_t> &Factors :
         factorizations(static_cast<int64_t>(N), M)) {
      // Fit each vector component as a linear form of the index tuple.
      std::vector<std::vector<double>> Indices(N);
      for (size_t T = 0; T < N; ++T) {
        std::vector<int64_t> Idx =
            indexTuple(static_cast<int64_t>(T), Factors);
        for (int64_t V : Idx)
          Indices[T].push_back(static_cast<double>(V));
      }
      std::array<std::vector<double>, 3> Coef;
      bool AllFit = true;
      for (int C = 0; C < 3 && AllFit; ++C) {
        std::vector<double> Vals(N);
        for (size_t T = 0; T < N; ++T)
          Vals[T] = D.Vectors[0][T][C];
        std::optional<std::vector<double>> Fit =
            Solver.fitLinearN(Indices, Vals);
        if (!Fit) {
          AllFit = false;
          break;
        }
        Coef[C] = *Fit;
      }
      if (!AllFit)
        continue;

      // Build: Fold (Fun i -> ... Fold (Fun k -> T(expr, ?child),
      //        Nil, idx) ..., Nil, idx) — a list-producing flat-map nest.
      std::vector<const char *> Names(VarNames.begin(),
                                      VarNames.begin() + M);
      TermPtr Body = makeTerm(
          Op(D.LayerKinds[0]),
          {tVec3(linearTerm(Coef[0], Names), linearTerm(Coef[1], Names),
                 linearTerm(Coef[2], Names)),
           holeVar(ChildHole)});
      TermPtr ListTerm = Body;
      for (int Level = M; Level > 0; --Level)
        ListTerm = tFold(tFun({tVar(VarNames[Level - 1]), ListTerm}), tNil(),
                         tIndexList(Factors[Level - 1]));

      EClassId NewList = addWithHole(G, ListTerm, ChildHole, *Child);
      G.merge(ListClass, NewList);

      InferenceRecord Rec;
      Rec.K = InferenceRecord::Kind::NestedFold;
      Rec.Bounds = Factors;
      Rec.Forms.assign(1, FormKind::Poly1);
      // Multi-index linear fits come from the facade, not a module.
      recordModule("linear", Rec.Modules);
      std::ostringstream Os;
      Os << M << "-nested loop over";
      for (int64_t F : Factors)
        Os << " " << F;
      Rec.Description = Os.str();
      Records.push_back(std::move(Rec));
    }
  }
  return Records;
}

//===----------------------------------------------------------------------===//
// Irregular-loop inference
//===----------------------------------------------------------------------===//

std::vector<InferenceRecord>
shrinkray::inferIrregular(EGraph &G, EClassId ListClass,
                          const ChainDecomposition &D,
                          const FunctionSolver &Solver) {
  std::vector<InferenceRecord> Records;
  const size_t N = D.numElements();
  if (N < 3 || D.numLayers() == 0)
    return Records;
  for (size_t L = 1; L < D.numLayers(); ++L)
    if (!layerIsInvariant(D.Vectors[L]))
      return Records;
  std::optional<EClassId> Child = sharedOuterChild(G, D);
  if (!Child)
    return Records;

  // Group contiguous runs sharing the x coordinate (the list was sorted by
  // the list-manipulation stage).
  struct Group {
    double X;
    size_t Begin, End; // [Begin, End)
  };
  std::vector<Group> Groups;
  for (size_t I = 0; I < N; ++I) {
    if (!Groups.empty() &&
        std::fabs(Groups.back().X - D.Vectors[0][I].X) <= 1e-9) {
      Groups.back().End = I + 1;
      continue;
    }
    Groups.push_back({D.Vectors[0][I].X, I, I + 1});
  }
  // Irregularity means: several groups, not all the same size (otherwise
  // the regular m-factorization already covers it), each nontrivial.
  if (Groups.size() < 2 || Groups.size() == N)
    return Records;
  bool SameSize = true;
  for (const Group &Gr : Groups)
    SameSize &= (Gr.End - Gr.Begin) == (Groups[0].End - Groups[0].Begin);
  if (SameSize)
    return Records;

  // Per group: closed forms for y and z over the in-group index.
  std::vector<TermPtr> GroupLists;
  InferenceRecord Rec;
  Rec.K = InferenceRecord::Kind::IrregularFold;
  for (const Group &Gr : Groups) {
    size_t Size = Gr.End - Gr.Begin;
    std::vector<double> Ys(Size), Zs(Size);
    for (size_t I = 0; I < Size; ++I) {
      Ys[I] = D.Vectors[0][Gr.Begin + I].Y;
      Zs[I] = D.Vectors[0][Gr.Begin + I].Z;
    }
    std::optional<ClosedForm> FormY = Solver.solveSequence(Ys);
    std::optional<ClosedForm> FormZ = Solver.solveSequence(Zs);
    if (!FormY || !FormZ)
      return Records;
    Rec.Forms.push_back(FormY->Kind);
    recordModule(FormY->Module, Rec.Modules);
    recordModule(FormZ->Module, Rec.Modules);
    Rec.Bounds.push_back(static_cast<int64_t>(Size));

    TermPtr Vec = tVec3(numericLiteral(Gr.X), FormY->toTerm(tVar("i")),
                        FormZ->toTerm(tVar("i")));
    if (Size == 1) {
      // A lone element: reference the shared child class directly.
      TermPtr Elem =
          makeTerm(Op(D.LayerKinds[0]), {Vec, holeVar(ChildHole)});
      GroupLists.push_back(tCons(Elem, tNil()));
    } else {
      // Inside the Mapi the transformed solid is the bound parameter c.
      TermPtr Elem = makeTerm(Op(D.LayerKinds[0]), {Vec, tVar("c")});
      GroupLists.push_back(
          tMapi(tFun({tVar("i"), tVar("c"), Elem}),
                tRepeat(holeVar(ChildHole),
                        tInt(static_cast<int64_t>(Size)))));
    }
  }

  // Concat the per-group lists: the "fold over the folds" of Sec. 5.
  TermPtr ListTerm = GroupLists.back();
  for (size_t I = GroupLists.size() - 1; I > 0; --I)
    ListTerm = tConcat(GroupLists[I - 1], ListTerm);

  EClassId NewList = addWithHole(G, ListTerm, ChildHole, *Child);
  G.merge(ListClass, NewList);
  Rec.Description =
      "irregular grouping into " + std::to_string(Groups.size()) + " runs";
  Records.push_back(std::move(Rec));
  return Records;
}
