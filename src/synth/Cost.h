//===-- synth/Cost.h - Cost functions for extraction ------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two cost functions of the evaluation (paper Sec. 6.1 "Cost function
/// robustness"): the default AST-size cost, and the `reward-loops` variant
/// that assigns lower cost to looping constructs so that structure-exposing
/// programs win even when they are not smaller (the 510849:wardrobe case).
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SYNTH_COST_H
#define SHRINKRAY_SYNTH_COST_H

#include "egraph/Extract.h"

namespace shrinkray {

/// Which cost function to extract with.
enum class CostKind {
  AstSize,     ///< node count (paper default)
  RewardLoops, ///< discounts Mapi/Fold/Repeat, penalizes raw list spines
};

/// The `reward-loops` cost: looping combinators are discounted and literal
/// list spines penalized, so a Mapi-based program outranks an equivalent
/// flat spine even when it has more AST nodes.
class RewardLoopsCost : public CostFn {
public:
  double cost(const Op &O, const std::vector<double> &ChildCosts) const final {
    double Weight = 1.0;
    switch (O.kind()) {
    case OpKind::Mapi:
    case OpKind::Map:
    case OpKind::Fold:
    case OpKind::Repeat:
    case OpKind::Fun:
      Weight = 0.25;
      break;
    case OpKind::Cons:
      // Mild: spines are worse than Repeat/Mapi, but the index lists
      // inside nested Folds must stay affordable.
      Weight = 1.5;
      break;
    case OpKind::Union:
    case OpKind::Diff:
    case OpKind::Inter:
      // Raw boolean glue is exactly what loops replace; pricing it high is
      // what lets a *larger* looping program win (the paper's wardrobe@).
      Weight = 8.0;
      break;
    case OpKind::Float: // prefer integer spellings on ties
      Weight = 1.0 + 1e-9;
      break;
    default:
      break;
    }
    double Sum = Weight;
    for (double C : ChildCosts)
      Sum += C;
    return Sum;
  }
};

/// Returns a reference to a statically-allocated cost function of the given
/// kind (cost functions are stateless).
const CostFn &costFn(CostKind Kind);

} // namespace shrinkray

#endif // SHRINKRAY_SYNTH_COST_H
