//===-- synth/Synthesizer.h - The ShrinkRay pipeline ------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end ShrinkRay pipeline (paper Figure 5): build an e-graph from
/// the flat CSG, saturate it with the syntactic rewrites, determinize and
/// sort fold lists, invoke the arithmetic solvers to insert Mapi/nested-Fold
/// programs, and extract the top-k LambdaCAD programs under a cost function.
///
/// Typical use:
/// \code
///   SynthesisResult R = Synthesizer().synthesize(flatCsg);
///   for (const RankedTerm &P : R.Programs)
///     std::cout << prettyPrint(P.T) << "\n";
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SYNTH_SYNTHESIZER_H
#define SHRINKRAY_SYNTH_SYNTHESIZER_H

#include "egraph/Runner.h"
#include "synth/Cost.h"
#include "synth/Inference.h"
#include "synth/ListManip.h"

namespace shrinkray {

/// Pipeline configuration.
struct SynthesisOptions {
  RunnerLimits Limits;         ///< rewriting fuel (paper's `fuel`)
  SolverOptions Solver;        ///< epsilon band etc.
  size_t TopK = 5;             ///< programs to return (paper uses 5)
  CostKind Cost = CostKind::AstSize;
  unsigned MainLoopIters = 1;  ///< paper: one iteration suffices in practice
  bool EnableLoopInference = true;
  bool EnableIrregular = true;
  bool EnableListSorting = true;
  size_t MaxFoldSites = 256;   ///< guard against pathological inputs
  /// Export a warm-start snapshot (SynthesisResult::Snapshot) capturing
  /// the post-saturation, pre-solve pipeline state. Captured only when
  /// MainLoopIters == 1 and the saturation round stopped on a
  /// deterministic reason (never TimeLimit or a cancellation). Pure
  /// bookkeeping: the synthesis itself is byte-identical either way.
  bool CaptureSnapshot = false;
  /// Export the final e-graph's debug dump (SynthesisResult::GraphDump).
  /// Differential tests byte-compare warm and cold dumps with this; it is
  /// far too expensive for production runs.
  bool KeepGraphDump = false;
};

/// A warm-start seed for Synthesizer::synthesizeWarm: the blobs a previous
/// run captured (SynthesisResult::Snapshot), plus what the caller — the
/// service snapshot tier — already validated about the pairing.
struct WarmStart {
  std::string Graph;   ///< e-graph snapshot (EGraph::serialize bytes)
  std::string Cursors; ///< saturation continuation (serializeRunnerCursors)
  std::string Extract; ///< extraction-engine state (KBestExtractor)
  /// True when Extract was captured under the same cost function and k as
  /// this request; otherwise the engine is re-derived from the restored
  /// graph (refresh-equals-scratch makes that sound, just slower).
  bool ExtractUsable = false;
  /// True when the request's input is byte-identical to the captured
  /// run's input (the caller compares exact input hashes); false for the
  /// localized-edit path, which re-seeds the changed term and resumes
  /// saturation until the graph closes over it.
  bool SameInput = false;
};

/// Statistics of one synthesis run.
struct SynthesisStats {
  /// True when the run's cancellation token (SynthesisOptions::Limits.
  /// Cancel — a deadline or an explicit service-side cancel) fired before
  /// the pipeline finished. The result is then *partial*: programs come
  /// from whatever the e-graph held at the cancellation point (always
  /// well-formed, equivalent terms — just not necessarily the ones a full
  /// run would rank first).
  bool Cancelled = false;
  /// True when *any* main-loop saturation round stopped on the runner's
  /// wall-clock safety valve (RunnerLimits::TimeLimitSec). Unlike the
  /// iteration/node fuel limits this is machine- and load-dependent, so
  /// such results must not enter the shared result cache (Rewriting only
  /// retains the last round's report — this flag covers them all).
  bool WallClockTruncated = false;
  RunnerReport Rewriting;      ///< saturation report (last main iteration)
  /// Primitives removed by stage-0 input canonicalization (duplicate Union
  /// operands; union is idempotent). 0 for duplicate-free inputs, where
  /// canonicalization is the identity.
  size_t DedupedPrimitives = 0;
  size_t FoldSites = 0;        ///< fold contexts examined
  size_t Decompositions = 0;   ///< determinized lists solved
  std::vector<InferenceRecord> Records; ///< programs the solvers inserted
  size_t ENodes = 0;           ///< final graph size
  size_t EClasses = 0;
  double Seconds = 0.0;        ///< end-to-end wall clock
  // Per-phase wall clock, summed across main-loop iterations. The three
  // phases cover nearly all of Seconds; the remainder is graph setup.
  double RewriteSeconds = 0.0; ///< equality saturation (Runner)
  double SolveSeconds = 0.0;   ///< determinize + solver inference + sorting
  double ExtractSeconds = 0.0; ///< extraction engine derive/refresh+extract
  // Saturation sub-phases (RunnerReport totals summed across main-loop
  // iterations): compiled-group search, memo-filtered apply, and
  // rebuild + dirty-log compaction.
  double RewriteSearchSeconds = 0.0;
  double RewriteApplySeconds = 0.0;
  double RewriteRebuildSeconds = 0.0;
  // Solver-pipeline stages of SolveSeconds (SolveBreakdown totals): stage-0
  // sequence profiling, stage-1 family pruning, stage-2 module fitting.
  // The remainder of SolveSeconds is determinization, graph insertion, and
  // the multi-index loop fits.
  double SolvePreprocessSeconds = 0.0;
  double SolvePruneSeconds = 0.0;
  double SolveFitSeconds = 0.0;
  // Warm-start accounting (synthesizeWarm). A warm run that aborts falls
  // back to the cold pipeline; its result is then exactly the cold result
  // with WarmStartAborted set.
  bool WarmStart = false;        ///< run started from a restored snapshot
  bool WarmStartEdit = false;    ///< warm run re-seeded an edited input
  bool WarmStartAborted = false; ///< warm attempt failed; result is cold
  size_t WarmResumedIters = 0;   ///< saturation iterations run on resume
  size_t WarmSkippedIters = 0;   ///< captured iterations the resume skipped
  double WarmRestoreSeconds = 0.0; ///< graph + cursor + engine restore time
};

/// The warm-start state a run exports when SynthesisOptions::
/// CaptureSnapshot is set: everything a later near-miss request needs to
/// restore the pipeline at its post-saturation, pre-solve point.
struct SynthesisSnapshot {
  bool Present = false; ///< false when capture was skipped (see options doc)
  std::string Graph;    ///< e-graph at the capture point
  std::string Cursors;  ///< saturation continuation state
  std::string Extract;  ///< extraction-engine state at the same generation
  StopReason Stop = StopReason::Saturated; ///< why saturation stopped
  uint64_t IterationsDone = 0;             ///< absolute iterations consumed
};

/// The top-k programs plus run statistics.
struct SynthesisResult {
  std::vector<RankedTerm> Programs; ///< cheapest first; never empty on
                                    ///< success (index 0 == best)
  SynthesisStats Stats;
  SynthesisSnapshot Snapshot; ///< warm-start capture (CaptureSnapshot)
  std::string GraphDump;      ///< final-graph dump (KeepGraphDump)

  const TermPtr &best() const {
    assert(!Programs.empty() && "synthesis produced no programs");
    return Programs.front().T;
  }

  /// Rank (1-based) of the first program exposing loop structure, or 0
  /// when none does (Table 1 column `r`).
  size_t structureRank() const;
};

/// The ShrinkRay synthesizer.
class Synthesizer {
public:
  explicit Synthesizer(SynthesisOptions Opts = {}) : Opts(Opts) {}

  /// Lifts a flat CSG model into parameterized LambdaCAD programs.
  /// \p FlatCsg must satisfy isFlatCsg().
  SynthesisResult synthesize(const TermPtr &FlatCsg) const;

  /// Like synthesize(), but restores \p W instead of saturating from
  /// scratch: the captured graph and extraction engine come back up, the
  /// (possibly edited) input is re-seeded, and saturation resumes from the
  /// stored cursors only as far as the request needs. The warm result is
  /// identical to the cold one — same programs, same ranks, and for
  /// same-input requests the same final graph byte-for-byte — because
  /// restore-then-continue replays the exact mutation sequence the cold
  /// run would have performed past the capture point. Any validation
  /// failure, or a resumed edit that fails to re-saturate, falls back to
  /// the cold pipeline (Stats.WarmStartAborted).
  SynthesisResult synthesizeWarm(const TermPtr &FlatCsg,
                                 const WarmStart &W) const;

  const SynthesisOptions &options() const { return Opts; }

private:
  SynthesisResult synthesizeImpl(const TermPtr &FlatCsg, const WarmStart *W,
                                 bool &Aborted) const;

  SynthesisOptions Opts;
};

/// Syntactic loop summary of a synthesized program (Table 1 columns n-l/f).
struct LoopSummary {
  bool HasLoops = false;
  std::string Notation; ///< e.g. "n1,60" or "n2,2,3"; ";"-joined if several
  std::string Forms;    ///< e.g. "d1", "d2", "theta"; ","-joined unique
};

/// Summarizes the loops and closed-form classes appearing in \p Program.
LoopSummary describeLoops(const TermPtr &Program);

} // namespace shrinkray

#endif // SHRINKRAY_SYNTH_SYNTHESIZER_H
