//===-- synth/Synthesizer.cpp - The ShrinkRay pipeline --------------------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the end-to-end pipeline (paper Figure 5) and the
/// loop-shape reporting behind Table 1's n-l/f columns. The main loop
/// owns one incremental KBestExtractor across iterations and attributes
/// wall clock to the rewrite/solve/extract phases (SynthesisStats).
///
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "rewrites/Rules.h"
#include "solvers/Preprocess.h"

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <sstream>

using namespace shrinkray;

const CostFn &shrinkray::costFn(CostKind Kind) {
  static const AstSizeCost Size;
  static const RewardLoopsCost Loops;
  return Kind == CostKind::AstSize ? static_cast<const CostFn &>(Size)
                                   : static_cast<const CostFn &>(Loops);
}

size_t SynthesisResult::structureRank() const {
  // "Structure" means a real counted loop (Mapi over a Repeat, or a Fold
  // over an index list) — a bare Fold over an explicit Cons spine is just
  // a respelling of the flat model.
  for (size_t I = 0; I < Programs.size(); ++I)
    if (describeLoops(Programs[I].T).HasLoops)
      return I + 1;
  return 0;
}

SynthesisResult Synthesizer::synthesize(const TermPtr &FlatCsg) const {
  bool Aborted = false;
  return synthesizeImpl(FlatCsg, nullptr, Aborted);
}

SynthesisResult Synthesizer::synthesizeWarm(const TermPtr &FlatCsg,
                                            const WarmStart &W) const {
  bool Aborted = false;
  SynthesisResult Warm = synthesizeImpl(FlatCsg, &W, Aborted);
  if (!Aborted)
    return Warm;
  // The warm attempt failed validation (or an edit resume did not close);
  // the cold pipeline is always available and always right.
  SynthesisResult Cold = synthesizeImpl(FlatCsg, nullptr, Aborted);
  Cold.Stats.WarmStartAborted = true;
  return Cold;
}

SynthesisResult Synthesizer::synthesizeImpl(const TermPtr &FlatCsg,
                                            const WarmStart *W,
                                            bool &Aborted) const {
  assert(isFlatCsg(FlatCsg) && "synthesizer input must be flat CSG");
  using Clock = std::chrono::steady_clock;
  const auto Start = Clock::now();

  SynthesisResult Result;

  // Solver-pipeline stage 0 begins at the input: duplicate Union operands
  // are dropped before the e-graph ever sees them (union is idempotent).
  // Duplicate elements are the recorded saturation pathology — `union-idem`
  // merges Union(x, x) into x's own class and the fold-list rules then grow
  // list classes without bound — so canonicalizing here turns a multi-GB
  // blowup into a no-op. Duplicate-free inputs pass through untouched
  // (pointer-identical), keeping their runs byte-for-byte unchanged.
  const TermPtr Input = dedupeUnionOperands(FlatCsg);
  if (Input != FlatCsg)
    Result.Stats.DedupedPrimitives =
        termPrimitives(FlatCsg) - termPrimitives(Input);

  EGraph G;

  const std::vector<Rewrite> Rules = pipelineRules();
  // One compiled database for every saturation round: the shared-prefix
  // tries are a pure function of the rules, so recompiling per round
  // would only burn time.
  const RuleSet CompiledRules(Rules);

  // The extraction engine lives across main-loop iterations: the first
  // round derives costs for the whole graph, every later round refreshes
  // incrementally from the generation-stamped dirty log, so re-extraction
  // costs time proportional to what the round changed. A warm start may
  // hand the engine back fully derived (restored below).
  std::unique_ptr<KBestExtractor> Extraction;

  // --- Warm-start restore ------------------------------------------------
  // Bring the captured pipeline state back up *before* seeding the input:
  // the engine restore validates its generation against the graph's, and
  // its dirty-log lease must be registered before any further mutation so
  // refresh() later sees the re-seeding delta. Every validation failure
  // aborts to the cold pipeline (synthesizeWarm retries with W == null).
  RunnerCursors Cursors;
  const bool WarmEdited = W && !W->SameInput;
  if (W) {
    const auto RestoreStart = Clock::now();
    Result.Stats.WarmStart = true;
    Result.Stats.WarmStartEdit = WarmEdited;
    // The capture point is specific to single-round pipelines; the service
    // never offers snapshots to multi-round requests, but validate anyway.
    if (Opts.MainLoopIters != 1) {
      Aborted = true;
      return Result;
    }
    std::istringstream GraphBytes(W->Graph);
    if (!G.deserialize(GraphBytes).empty() ||
        !deserializeRunnerCursors(W->Cursors, Cursors).empty()) {
      Aborted = true;
      return Result;
    }
    // The cursors must continue *this* graph under *this* rule database,
    // the captured run must have stopped deterministically, and the
    // request must not ask for less fuel than the capture consumed (the
    // cold run would then have stopped earlier — unreproducible).
    if (Cursors.Rules.size() != CompiledRules.numRules() ||
        Cursors.Generation != G.generation() ||
        Cursors.Stop == StopReason::TimeLimit ||
        Cursors.Stop == StopReason::Cancelled ||
        Opts.Limits.IterLimit < Cursors.IterationsDone ||
        // An edit re-seeds new nodes into the graph. A *saturated* capture
        // closes over them by resuming (provably cold-identical: the
        // resumed run replays the mutations cold would perform past the
        // fixpoint). An *iteration-limited* capture is accepted only with
        // fuel to spare — the resume spends it closing over the edit, and
        // the post-resume quiescence check below aborts unless the graph
        // demonstrably stopped changing inside the budget. A node-limited
        // capture never qualifies: cold would stop at the same node count
        // but along a different mutation prefix.
        (WarmEdited && Cursors.Stop != StopReason::Saturated &&
         !(Cursors.Stop == StopReason::IterLimit &&
           Opts.Limits.IterLimit > Cursors.IterationsDone))) {
      Aborted = true;
      return Result;
    }
    if (W->ExtractUsable) {
      // A failed engine restore is not fatal: the engine is re-derived
      // from the restored graph at the usual point (refresh-equals-scratch
      // makes the result identical, the derivation just costs more).
      std::string Err;
      Extraction =
          KBestExtractor::restore(G, costFn(Opts.Cost), Opts.TopK,
                                  Opts.Limits.NumThreads, W->Extract, Err);
    }
    Result.Stats.WarmSkippedIters = Cursors.IterationsDone;
    Result.Stats.WarmRestoreSeconds =
        std::chrono::duration<double>(Clock::now() - RestoreStart).count();
  }

  EClassId Root = G.addTerm(Input);
  G.rebuild();

  // Whether re-seeding the input actually changed the restored graph. A
  // same-input re-seed replays hash-cons hits end to end (no new nodes, no
  // merges), so any change contradicts the caller's input-hash match.
  const bool WarmChanged = W && G.generation() != Cursors.Generation;
  if (W && !WarmEdited && WarmChanged) {
    Aborted = true;
    return Result;
  }
  // Resume saturation only when there is something left to do: an edit
  // whose new nodes un-saturated the graph, or a deeper-fuel request on a
  // capture that stopped on the iteration limit. (A saturated same-input
  // capture stays saturated; a node-limit capture stops again immediately
  // in a cold run, so resuming would overshoot it.)
  const bool WarmResume =
      W && (WarmChanged || (Cursors.Stop == StopReason::IterLimit &&
                            Opts.Limits.IterLimit > Cursors.IterationsDone));
  // The job's cancellation token is shared with the solver pipeline so a
  // deadline firing mid-solve stops fitting work between stages and inside
  // the trig frequency scan (previously the one uncancellable span).
  SolverOptions SolverOpts = Opts.Solver;
  SolverOpts.Cancel = Opts.Limits.Cancel;
  const FunctionSolver Solver(SolverOpts);
  const Pattern FoldPattern = Pattern::parse("(Fold Union Empty ?l)");
  const Symbol ListVar("l");

  // Cooperative cancellation: the job's token rides in on the runner
  // limits and is checked between phases and between fold sites. Once it
  // fires, remaining work is skipped and extraction returns whatever the
  // graph holds — a partial but well-formed result (Stats.Cancelled).
  auto cancelled = [&] {
    if (!Opts.Limits.Cancel.cancelled())
      return false;
    Result.Stats.Cancelled = true;
    return true;
  };

  Runner SaturationRunner(Opts.Limits);
  for (unsigned Iter = 0; Iter < Opts.MainLoopIters && !cancelled(); ++Iter) {
    // --- Syntactic rewrites (Fig. 5 line 4) -----------------------------
    const auto RewriteStart = Clock::now();
    if (W && Iter == 0) {
      if (WarmResume) {
        Result.Stats.Rewriting =
            SaturationRunner.resume(G, CompiledRules, Cursors);
        Result.Stats.WarmResumedIters =
            Result.Stats.Rewriting.numIterations();
        // An edit resume must demonstrably close over the re-seeded
        // nodes: a saturation stop proves it outright; an iteration-limit
        // stop qualifies only when the final resumed iteration applied
        // nothing (a quiescent tail — the graph stopped changing with
        // fuel left on the wall, the fuel-bounded analogue of a fixpoint,
        // which is what non-saturating models like nintendo-slot reach
        // once their explosive rules are perpetually banned). Anything
        // else — fuel wall mid-closure, node limit — cannot be matched
        // against a cold run; hand the job back to the cold pipeline. A
        // cancellation is the one exception: partial results are partial
        // either way.
        const RunnerReport &Resumed = Result.Stats.Rewriting;
        const bool QuiescentTail =
            Resumed.Stop == StopReason::IterLimit &&
            !Resumed.Iterations.empty() &&
            Resumed.Iterations.back().Applied == 0;
        if (WarmEdited && Resumed.Stop != StopReason::Saturated &&
            Resumed.Stop != StopReason::Cancelled && !QuiescentTail) {
          Aborted = true;
          return Result;
        }
      } else {
        // The captured run already finished this round's saturation; its
        // stop reason stands in for the report.
        Result.Stats.Rewriting.Stop = Cursors.Stop;
      }
    } else {
      // Exporting cursors is pure bookkeeping (the run is unchanged); they
      // feed the pre-solve snapshot capture below.
      Result.Stats.Rewriting = SaturationRunner.run(G, CompiledRules, Cursors);
    }
    if (Result.Stats.Rewriting.Stop == StopReason::TimeLimit)
      Result.Stats.WallClockTruncated = true;
    Result.Stats.RewriteSeconds +=
        std::chrono::duration<double>(Clock::now() - RewriteStart).count();
    Result.Stats.RewriteSearchSeconds += Result.Stats.Rewriting.SearchSec;
    Result.Stats.RewriteApplySeconds += Result.Stats.Rewriting.ApplySec;
    Result.Stats.RewriteRebuildSeconds += Result.Stats.Rewriting.RebuildSec;
    if (cancelled())
      break;

    // The engine comes up (or re-syncs) right after saturation, *before*
    // the solve phase, so each fold site's insertions can be folded in
    // incrementally as they happen (see refreshAfterSite below).
    {
      const auto ExtractStart = Clock::now();
      G.rebuild();
      if (!Extraction)
        Extraction = std::make_unique<KBestExtractor>(
            G, costFn(Opts.Cost), Opts.TopK, Opts.Limits.NumThreads);
      else
        Extraction->refresh();
      Result.Stats.ExtractSeconds +=
          std::chrono::duration<double>(Clock::now() - ExtractStart).count();
    }

    // --- Warm-start capture (pre-solve) ---------------------------------
    // The snapshot freezes the pipeline right here: saturated graph,
    // saturation cursors, derived extraction engine — all at one graph
    // generation. Post-solve state is *not* reusable (solver insertions
    // depend on the request), which is why capture precedes the solve.
    // Skipped when the round stopped non-deterministically, and when a
    // warm run didn't resume (its state equals the snapshot it restored).
    if (Opts.CaptureSnapshot && Iter == 0 && Opts.MainLoopIters == 1 &&
        Result.Stats.Rewriting.Stop != StopReason::TimeLimit &&
        Result.Stats.Rewriting.Stop != StopReason::Cancelled &&
        !(W && !WarmResume)) {
      std::ostringstream GraphBytes;
      G.serialize(GraphBytes);
      Result.Snapshot.Graph = std::move(GraphBytes).str();
      Result.Snapshot.Cursors = serializeRunnerCursors(Cursors);
      Result.Snapshot.Extract = Extraction->saveState();
      Result.Snapshot.Stop = Cursors.Stop;
      Result.Snapshot.IterationsDone = Cursors.IterationsDone;
      Result.Snapshot.Present = true;
    }

    // A warm-edit graph also holds the *captured* input's classes. Only
    // classes the edited root reaches can contribute to its programs, so
    // the fold-site scan below is restricted to them — solving an
    // unreachable site would insert nodes a cold run never would.
    std::vector<char> Reachable;
    if (WarmEdited) {
      Reachable.assign(G.numIds(), 0);
      std::vector<EClassId> Work{G.find(Root)};
      Reachable[Work.front()] = 1;
      while (!Work.empty()) {
        const EClassId Id = Work.back();
        Work.pop_back();
        for (const ENode &N : G.eclass(Id).Nodes)
          for (EClassId Kid : N.Children) {
            const EClassId C = G.find(Kid);
            if (!Reachable[C]) {
              Reachable[C] = 1;
              Work.push_back(C);
            }
          }
      }
    }

    const auto SolveStart = Clock::now();
    // Extraction work performed inside the solve phase: refreshing after
    // every fold site keeps the candidate tables warm (each refresh walks
    // only that site's dirty log) and is billed to ExtractSeconds, not
    // SolveSeconds.
    double RefreshInSolveSec = 0.0;
    auto refreshAfterSite = [&] {
      const auto RefreshStart = Clock::now();
      Extraction->refresh();
      RefreshInSolveSec +=
          std::chrono::duration<double>(Clock::now() - RefreshStart).count();
    };

    // --- Locate fold contexts -------------------------------------------
    // A fold class accumulates one Fold node per extension step, so it can
    // reference many list variants (length 2, 3, ..., n). Only the longest
    // spine is worth solving: the shorter ones are strict sub-lists whose
    // structure the full solution subsumes, while genuinely partial
    // repetition (e.g. Figure 16) lives in *different* fold classes.
    // search() seeds its candidates from the operator-head index, so this
    // scan is proportional to fold sites rather than graph size.
    std::map<EClassId, std::pair<EClassId, size_t>> BestPerFold;
    for (const auto &[FoldClass, S] : FoldPattern.search(G)) {
      if (WarmEdited && !Reachable[G.find(FoldClass)])
        continue;
      EClassId ListClass = G.find(S[ListVar]);
      std::optional<std::vector<EClassId>> Spine =
          spineElements(G, ListClass);
      if (!Spine)
        continue;
      auto [It, Inserted] = BestPerFold.emplace(
          G.find(FoldClass), std::make_pair(ListClass, Spine->size()));
      if (!Inserted && Spine->size() > It->second.second)
        It->second = {ListClass, Spine->size()};
    }
    std::vector<std::pair<EClassId, EClassId>> Sites; // (fold, list)
    std::set<EClassId> SeenLists;
    for (const auto &[FoldClass, Best] : BestPerFold) {
      if (Sites.size() >= Opts.MaxFoldSites)
        break;
      if (SeenLists.insert(Best.first).second)
        Sites.emplace_back(FoldClass, Best.first);
    }
    Result.Stats.FoldSites += Sites.size();

    // --- Determinize, sort, and solve each context (Fig. 5 lines 5-7) ---
    for (const auto &[FoldClass, ListClass] : Sites) {
      if (cancelled())
        break;
      std::vector<ChainDecomposition> Ds = determinize(G, ListClass);
      Result.Stats.Decompositions += Ds.size();
      for (const ChainDecomposition &D : Ds) {
        for (InferenceRecord &R : inferFunctions(G, ListClass, D, Solver))
          Result.Stats.Records.push_back(std::move(R));
        if (Opts.EnableLoopInference)
          for (InferenceRecord &R : inferLoops(G, ListClass, D, Solver))
            Result.Stats.Records.push_back(std::move(R));
      }

      if (!Ds.empty() && Opts.EnableListSorting) {
        if (std::optional<SortedList> Sorted =
                sortFoldList(G, FoldClass, Ds.front())) {
          G.rebuild();
          const ChainDecomposition &D = Sorted->Decomposition;
          for (InferenceRecord &R :
               inferFunctions(G, Sorted->ListClass, D, Solver))
            Result.Stats.Records.push_back(std::move(R));
          if (Opts.EnableLoopInference)
            for (InferenceRecord &R :
                 inferLoops(G, Sorted->ListClass, D, Solver))
              Result.Stats.Records.push_back(std::move(R));
          if (Opts.EnableIrregular)
            for (InferenceRecord &R :
                 inferIrregular(G, Sorted->ListClass, D, Solver))
              Result.Stats.Records.push_back(std::move(R));
        } else if (Opts.EnableIrregular) {
          // Already sorted: run the irregular search on the original.
          for (InferenceRecord &R :
               inferIrregular(G, ListClass, Ds.front(), Solver))
            Result.Stats.Records.push_back(std::move(R));
        }
      }
      G.rebuild();
      refreshAfterSite();
    }
    Result.Stats.SolveSeconds +=
        std::chrono::duration<double>(Clock::now() - SolveStart).count() -
        RefreshInSolveSec;
    Result.Stats.ExtractSeconds += RefreshInSolveSec;
    if (cancelled())
      break;

    // --- Top-k extraction (Fig. 5 lines 8-9), kept fresh per round ------
    // Every site already refreshed the engine; this re-sync only covers a
    // round with zero sites (and is then O(1) on the clean graph).
    G.rebuild();
    const auto ExtractStart = Clock::now();
    Extraction->refresh();
    Result.Stats.ExtractSeconds +=
        std::chrono::duration<double>(Clock::now() - ExtractStart).count();
  }
  G.rebuild();

  const auto ExtractStart = Clock::now();
  if (!Extraction) // MainLoopIters == 0: extract the input graph as-is
    Extraction = std::make_unique<KBestExtractor>(
        G, costFn(Opts.Cost), Opts.TopK, Opts.Limits.NumThreads);
  else if (Result.Stats.Cancelled)
    // A cancelled run broke out before the per-round refresh: re-sync so
    // the candidate table keys on the current canonical ids (a stale
    // table can miss the root outright after merges re-rooted its class)
    // — this is what makes the partial-result contract hold.
    Extraction->refresh();
  Result.Programs = Extraction->extract(Root);
  Result.Stats.ExtractSeconds +=
      std::chrono::duration<double>(Clock::now() - ExtractStart).count();
  const SolveBreakdown &Solve = Solver.breakdown();
  Result.Stats.SolvePreprocessSeconds = Solve.PreprocessSec;
  Result.Stats.SolvePruneSeconds = Solve.PruneSec;
  Result.Stats.SolveFitSeconds = Solve.FitSec;
  Result.Stats.ENodes = G.numNodes();
  Result.Stats.EClasses = G.numClasses();
  if (Opts.KeepGraphDump)
    Result.GraphDump = G.dump();
  Result.Stats.Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  return Result;
}

//===----------------------------------------------------------------------===//
// Loop reporting (Table 1 columns)
//===----------------------------------------------------------------------===//

namespace {

struct LoopWalk {
  std::vector<std::string> Loops;
  bool SawTheta = false, SawD2 = false, SawD1 = false;

  /// Scans an arithmetic subterm for the closed-form class it realizes.
  void scanForms(const TermPtr &T) {
    switch (T->kind()) {
    case OpKind::Sin:
    case OpKind::Cos:
      SawTheta = true;
      break;
    case OpKind::Mul:
      // i * i (or expressions containing it) signal a quadratic.
      if (termEquals(T->child(0), T->child(1)) &&
          T->child(0)->kind() == OpKind::Var)
        SawD2 = true;
      break;
    case OpKind::Var:
      SawD1 = true;
      break;
    default:
      break;
    }
    for (const TermPtr &Kid : T->children())
      scanForms(Kid);
  }

  /// Spine length of a literal index list, or -1.
  static int64_t spineLength(const TermPtr &T) {
    int64_t N = 0;
    const Term *Cur = T.get();
    while (Cur->kind() == OpKind::Cons) {
      ++N;
      Cur = Cur->child(1).get();
    }
    return Cur->kind() == OpKind::Nil ? N : -1;
  }

  void walk(const TermPtr &T) {
    // Mapi tower over a Repeat: one loop; its bound is the Repeat count.
    if (T->kind() == OpKind::Mapi) {
      const Term *Cur = T.get();
      while (Cur->kind() == OpKind::Mapi) {
        scanForms(Cur->child(0));
        Cur = Cur->child(1).get();
      }
      if (Cur->kind() == OpKind::Repeat &&
          Cur->child(1)->kind() == OpKind::Int) {
        Loops.push_back("n1," +
                        std::to_string(Cur->child(1)->op().intValue()));
        walk(Cur->child(0)); // the repeated element
        return;
      }
      // Mapi over something else: fall through to generic recursion.
    }
    // Fold (Fun i -> ...) over an index list: a counted loop level; nested
    // flat-map folds merge into one n<m> entry.
    if (T->kind() == OpKind::Fold && T->child(0)->kind() == OpKind::Fun &&
        T->child(0)->numChildren() == 2) {
      std::vector<int64_t> Bounds;
      const Term *Cur = T.get();
      while (Cur->kind() == OpKind::Fold &&
             Cur->child(0)->kind() == OpKind::Fun &&
             Cur->child(0)->numChildren() == 2) {
        int64_t Len = spineLength(Cur->child(2));
        if (Len < 0)
          break;
        Bounds.push_back(Len);
        Cur = Cur->child(0)->child(1).get(); // the Fun body
      }
      if (!Bounds.empty()) {
        std::ostringstream Os;
        Os << "n" << Bounds.size();
        for (int64_t B : Bounds)
          Os << "," << B;
        Loops.push_back(Os.str());
        // Continue under the innermost body.
        scanForms(T->child(0)->child(1));
        return;
      }
    }
    for (const TermPtr &Kid : T->children())
      walk(Kid);
  }
};

} // namespace

LoopSummary shrinkray::describeLoops(const TermPtr &Program) {
  LoopWalk W;
  W.walk(Program);
  LoopSummary Out;
  Out.HasLoops = !W.Loops.empty();
  std::ostringstream Os;
  for (size_t I = 0; I < W.Loops.size(); ++I) {
    if (I)
      Os << "; ";
    Os << W.Loops[I];
  }
  Out.Notation = Os.str();
  std::ostringstream Fs;
  bool First = true;
  auto piece = [&](const char *Name) {
    if (!First)
      Fs << ",";
    Fs << Name;
    First = false;
  };
  if (W.SawD2)
    piece("d2");
  if (W.SawTheta)
    piece("theta");
  if ((W.SawD1 || Out.HasLoops) && !W.SawD2 && !W.SawTheta)
    piece("d1");
  Out.Forms = Fs.str();
  return Out;
}
