//===-- synth/Synthesizer.cpp - The ShrinkRay pipeline --------------------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the end-to-end pipeline (paper Figure 5) and the
/// loop-shape reporting behind Table 1's n-l/f columns. The main loop
/// owns one incremental KBestExtractor across iterations and attributes
/// wall clock to the rewrite/solve/extract phases (SynthesisStats).
///
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "rewrites/Rules.h"
#include "solvers/Preprocess.h"

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <sstream>

using namespace shrinkray;

const CostFn &shrinkray::costFn(CostKind Kind) {
  static const AstSizeCost Size;
  static const RewardLoopsCost Loops;
  return Kind == CostKind::AstSize ? static_cast<const CostFn &>(Size)
                                   : static_cast<const CostFn &>(Loops);
}

size_t SynthesisResult::structureRank() const {
  // "Structure" means a real counted loop (Mapi over a Repeat, or a Fold
  // over an index list) — a bare Fold over an explicit Cons spine is just
  // a respelling of the flat model.
  for (size_t I = 0; I < Programs.size(); ++I)
    if (describeLoops(Programs[I].T).HasLoops)
      return I + 1;
  return 0;
}

SynthesisResult Synthesizer::synthesize(const TermPtr &FlatCsg) const {
  assert(isFlatCsg(FlatCsg) && "synthesizer input must be flat CSG");
  using Clock = std::chrono::steady_clock;
  const auto Start = Clock::now();

  SynthesisResult Result;

  // Solver-pipeline stage 0 begins at the input: duplicate Union operands
  // are dropped before the e-graph ever sees them (union is idempotent).
  // Duplicate elements are the recorded saturation pathology — `union-idem`
  // merges Union(x, x) into x's own class and the fold-list rules then grow
  // list classes without bound — so canonicalizing here turns a multi-GB
  // blowup into a no-op. Duplicate-free inputs pass through untouched
  // (pointer-identical), keeping their runs byte-for-byte unchanged.
  const TermPtr Input = dedupeUnionOperands(FlatCsg);
  if (Input != FlatCsg)
    Result.Stats.DedupedPrimitives =
        termPrimitives(FlatCsg) - termPrimitives(Input);

  EGraph G;
  EClassId Root = G.addTerm(Input);
  G.rebuild();

  const std::vector<Rewrite> Rules = pipelineRules();
  // One compiled database for every saturation round: the shared-prefix
  // tries are a pure function of the rules, so recompiling per round
  // would only burn time.
  const RuleSet CompiledRules(Rules);
  // The job's cancellation token is shared with the solver pipeline so a
  // deadline firing mid-solve stops fitting work between stages and inside
  // the trig frequency scan (previously the one uncancellable span).
  SolverOptions SolverOpts = Opts.Solver;
  SolverOpts.Cancel = Opts.Limits.Cancel;
  const FunctionSolver Solver(SolverOpts);
  const Pattern FoldPattern = Pattern::parse("(Fold Union Empty ?l)");
  const Symbol ListVar("l");

  // The extraction engine lives across main-loop iterations: the first
  // round derives costs for the whole graph, every later round refreshes
  // incrementally from the generation-stamped dirty log, so re-extraction
  // costs time proportional to what the round changed.
  std::unique_ptr<KBestExtractor> Extraction;

  // Cooperative cancellation: the job's token rides in on the runner
  // limits and is checked between phases and between fold sites. Once it
  // fires, remaining work is skipped and extraction returns whatever the
  // graph holds — a partial but well-formed result (Stats.Cancelled).
  auto cancelled = [&] {
    if (!Opts.Limits.Cancel.cancelled())
      return false;
    Result.Stats.Cancelled = true;
    return true;
  };

  Runner SaturationRunner(Opts.Limits);
  for (unsigned Iter = 0; Iter < Opts.MainLoopIters && !cancelled(); ++Iter) {
    // --- Syntactic rewrites (Fig. 5 line 4) -----------------------------
    const auto RewriteStart = Clock::now();
    Result.Stats.Rewriting = SaturationRunner.run(G, CompiledRules);
    if (Result.Stats.Rewriting.Stop == StopReason::TimeLimit)
      Result.Stats.WallClockTruncated = true;
    Result.Stats.RewriteSeconds +=
        std::chrono::duration<double>(Clock::now() - RewriteStart).count();
    Result.Stats.RewriteSearchSeconds += Result.Stats.Rewriting.SearchSec;
    Result.Stats.RewriteApplySeconds += Result.Stats.Rewriting.ApplySec;
    Result.Stats.RewriteRebuildSeconds += Result.Stats.Rewriting.RebuildSec;
    if (cancelled())
      break;

    // The engine comes up (or re-syncs) right after saturation, *before*
    // the solve phase, so each fold site's insertions can be folded in
    // incrementally as they happen (see refreshAfterSite below).
    {
      const auto ExtractStart = Clock::now();
      G.rebuild();
      if (!Extraction)
        Extraction = std::make_unique<KBestExtractor>(
            G, costFn(Opts.Cost), Opts.TopK, Opts.Limits.NumThreads);
      else
        Extraction->refresh();
      Result.Stats.ExtractSeconds +=
          std::chrono::duration<double>(Clock::now() - ExtractStart).count();
    }

    const auto SolveStart = Clock::now();
    // Extraction work performed inside the solve phase: refreshing after
    // every fold site keeps the candidate tables warm (each refresh walks
    // only that site's dirty log) and is billed to ExtractSeconds, not
    // SolveSeconds.
    double RefreshInSolveSec = 0.0;
    auto refreshAfterSite = [&] {
      const auto RefreshStart = Clock::now();
      Extraction->refresh();
      RefreshInSolveSec +=
          std::chrono::duration<double>(Clock::now() - RefreshStart).count();
    };

    // --- Locate fold contexts -------------------------------------------
    // A fold class accumulates one Fold node per extension step, so it can
    // reference many list variants (length 2, 3, ..., n). Only the longest
    // spine is worth solving: the shorter ones are strict sub-lists whose
    // structure the full solution subsumes, while genuinely partial
    // repetition (e.g. Figure 16) lives in *different* fold classes.
    // search() seeds its candidates from the operator-head index, so this
    // scan is proportional to fold sites rather than graph size.
    std::map<EClassId, std::pair<EClassId, size_t>> BestPerFold;
    for (const auto &[FoldClass, S] : FoldPattern.search(G)) {
      EClassId ListClass = G.find(S[ListVar]);
      std::optional<std::vector<EClassId>> Spine =
          spineElements(G, ListClass);
      if (!Spine)
        continue;
      auto [It, Inserted] = BestPerFold.emplace(
          G.find(FoldClass), std::make_pair(ListClass, Spine->size()));
      if (!Inserted && Spine->size() > It->second.second)
        It->second = {ListClass, Spine->size()};
    }
    std::vector<std::pair<EClassId, EClassId>> Sites; // (fold, list)
    std::set<EClassId> SeenLists;
    for (const auto &[FoldClass, Best] : BestPerFold) {
      if (Sites.size() >= Opts.MaxFoldSites)
        break;
      if (SeenLists.insert(Best.first).second)
        Sites.emplace_back(FoldClass, Best.first);
    }
    Result.Stats.FoldSites += Sites.size();

    // --- Determinize, sort, and solve each context (Fig. 5 lines 5-7) ---
    for (const auto &[FoldClass, ListClass] : Sites) {
      if (cancelled())
        break;
      std::vector<ChainDecomposition> Ds = determinize(G, ListClass);
      Result.Stats.Decompositions += Ds.size();
      for (const ChainDecomposition &D : Ds) {
        for (InferenceRecord &R : inferFunctions(G, ListClass, D, Solver))
          Result.Stats.Records.push_back(std::move(R));
        if (Opts.EnableLoopInference)
          for (InferenceRecord &R : inferLoops(G, ListClass, D, Solver))
            Result.Stats.Records.push_back(std::move(R));
      }

      if (!Ds.empty() && Opts.EnableListSorting) {
        if (std::optional<SortedList> Sorted =
                sortFoldList(G, FoldClass, Ds.front())) {
          G.rebuild();
          const ChainDecomposition &D = Sorted->Decomposition;
          for (InferenceRecord &R :
               inferFunctions(G, Sorted->ListClass, D, Solver))
            Result.Stats.Records.push_back(std::move(R));
          if (Opts.EnableLoopInference)
            for (InferenceRecord &R :
                 inferLoops(G, Sorted->ListClass, D, Solver))
              Result.Stats.Records.push_back(std::move(R));
          if (Opts.EnableIrregular)
            for (InferenceRecord &R :
                 inferIrregular(G, Sorted->ListClass, D, Solver))
              Result.Stats.Records.push_back(std::move(R));
        } else if (Opts.EnableIrregular) {
          // Already sorted: run the irregular search on the original.
          for (InferenceRecord &R :
               inferIrregular(G, ListClass, Ds.front(), Solver))
            Result.Stats.Records.push_back(std::move(R));
        }
      }
      G.rebuild();
      refreshAfterSite();
    }
    Result.Stats.SolveSeconds +=
        std::chrono::duration<double>(Clock::now() - SolveStart).count() -
        RefreshInSolveSec;
    Result.Stats.ExtractSeconds += RefreshInSolveSec;
    if (cancelled())
      break;

    // --- Top-k extraction (Fig. 5 lines 8-9), kept fresh per round ------
    // Every site already refreshed the engine; this re-sync only covers a
    // round with zero sites (and is then O(1) on the clean graph).
    G.rebuild();
    const auto ExtractStart = Clock::now();
    Extraction->refresh();
    Result.Stats.ExtractSeconds +=
        std::chrono::duration<double>(Clock::now() - ExtractStart).count();
  }
  G.rebuild();

  const auto ExtractStart = Clock::now();
  if (!Extraction) // MainLoopIters == 0: extract the input graph as-is
    Extraction = std::make_unique<KBestExtractor>(
        G, costFn(Opts.Cost), Opts.TopK, Opts.Limits.NumThreads);
  else if (Result.Stats.Cancelled)
    // A cancelled run broke out before the per-round refresh: re-sync so
    // the candidate table keys on the current canonical ids (a stale
    // table can miss the root outright after merges re-rooted its class)
    // — this is what makes the partial-result contract hold.
    Extraction->refresh();
  Result.Programs = Extraction->extract(Root);
  Result.Stats.ExtractSeconds +=
      std::chrono::duration<double>(Clock::now() - ExtractStart).count();
  const SolveBreakdown &Solve = Solver.breakdown();
  Result.Stats.SolvePreprocessSeconds = Solve.PreprocessSec;
  Result.Stats.SolvePruneSeconds = Solve.PruneSec;
  Result.Stats.SolveFitSeconds = Solve.FitSec;
  Result.Stats.ENodes = G.numNodes();
  Result.Stats.EClasses = G.numClasses();
  Result.Stats.Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  return Result;
}

//===----------------------------------------------------------------------===//
// Loop reporting (Table 1 columns)
//===----------------------------------------------------------------------===//

namespace {

struct LoopWalk {
  std::vector<std::string> Loops;
  bool SawTheta = false, SawD2 = false, SawD1 = false;

  /// Scans an arithmetic subterm for the closed-form class it realizes.
  void scanForms(const TermPtr &T) {
    switch (T->kind()) {
    case OpKind::Sin:
    case OpKind::Cos:
      SawTheta = true;
      break;
    case OpKind::Mul:
      // i * i (or expressions containing it) signal a quadratic.
      if (termEquals(T->child(0), T->child(1)) &&
          T->child(0)->kind() == OpKind::Var)
        SawD2 = true;
      break;
    case OpKind::Var:
      SawD1 = true;
      break;
    default:
      break;
    }
    for (const TermPtr &Kid : T->children())
      scanForms(Kid);
  }

  /// Spine length of a literal index list, or -1.
  static int64_t spineLength(const TermPtr &T) {
    int64_t N = 0;
    const Term *Cur = T.get();
    while (Cur->kind() == OpKind::Cons) {
      ++N;
      Cur = Cur->child(1).get();
    }
    return Cur->kind() == OpKind::Nil ? N : -1;
  }

  void walk(const TermPtr &T) {
    // Mapi tower over a Repeat: one loop; its bound is the Repeat count.
    if (T->kind() == OpKind::Mapi) {
      const Term *Cur = T.get();
      while (Cur->kind() == OpKind::Mapi) {
        scanForms(Cur->child(0));
        Cur = Cur->child(1).get();
      }
      if (Cur->kind() == OpKind::Repeat &&
          Cur->child(1)->kind() == OpKind::Int) {
        Loops.push_back("n1," +
                        std::to_string(Cur->child(1)->op().intValue()));
        walk(Cur->child(0)); // the repeated element
        return;
      }
      // Mapi over something else: fall through to generic recursion.
    }
    // Fold (Fun i -> ...) over an index list: a counted loop level; nested
    // flat-map folds merge into one n<m> entry.
    if (T->kind() == OpKind::Fold && T->child(0)->kind() == OpKind::Fun &&
        T->child(0)->numChildren() == 2) {
      std::vector<int64_t> Bounds;
      const Term *Cur = T.get();
      while (Cur->kind() == OpKind::Fold &&
             Cur->child(0)->kind() == OpKind::Fun &&
             Cur->child(0)->numChildren() == 2) {
        int64_t Len = spineLength(Cur->child(2));
        if (Len < 0)
          break;
        Bounds.push_back(Len);
        Cur = Cur->child(0)->child(1).get(); // the Fun body
      }
      if (!Bounds.empty()) {
        std::ostringstream Os;
        Os << "n" << Bounds.size();
        for (int64_t B : Bounds)
          Os << "," << B;
        Loops.push_back(Os.str());
        // Continue under the innermost body.
        scanForms(T->child(0)->child(1));
        return;
      }
    }
    for (const TermPtr &Kid : T->children())
      walk(Kid);
  }
};

} // namespace

LoopSummary shrinkray::describeLoops(const TermPtr &Program) {
  LoopWalk W;
  W.walk(Program);
  LoopSummary Out;
  Out.HasLoops = !W.Loops.empty();
  std::ostringstream Os;
  for (size_t I = 0; I < W.Loops.size(); ++I) {
    if (I)
      Os << "; ";
    Os << W.Loops[I];
  }
  Out.Notation = Os.str();
  std::ostringstream Fs;
  bool First = true;
  auto piece = [&](const char *Name) {
    if (!First)
      Fs << ",";
    Fs << Name;
    First = false;
  };
  if (W.SawD2)
    piece("d2");
  if (W.SawTheta)
    piece("theta");
  if ((W.SawD1 || Out.HasLoops) && !W.SawD2 && !W.SawTheta)
    piece("d1");
  Out.Forms = Fs.str();
  return Out;
}
