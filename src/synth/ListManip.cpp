//===-- synth/ListManip.cpp - List manipulation in Fold context -----------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of fold-list sorting (paper Sec. 4.3). Computes the
/// lexicographic element permutation, rebuilds the sorted Cons spine in
/// the e-graph, and merges the new Fold into the original Fold's class —
/// sound because union is associative/commutative, and never merged into
/// the list's own class.
///
//===----------------------------------------------------------------------===//

#include "synth/ListManip.h"

#include <algorithm>
#include <numeric>

using namespace shrinkray;

std::vector<size_t> shrinkray::sortedOrder(const ChainDecomposition &D) {
  std::vector<size_t> Order(D.numElements());
  std::iota(Order.begin(), Order.end(), 0);
  auto key = [&](size_t I, size_t L, int C) { return D.Vectors[L][I][C]; };
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    for (size_t L = 0; L < D.numLayers(); ++L)
      for (int C = 0; C < 3; ++C) {
        if (key(A, L, C) < key(B, L, C))
          return true;
        if (key(A, L, C) > key(B, L, C))
          return false;
      }
    return false;
  });
  return Order;
}

std::optional<SortedList> shrinkray::sortFoldList(EGraph &G,
                                                  EClassId FoldClass,
                                                  const ChainDecomposition &D) {
  std::vector<size_t> Order = sortedOrder(D);
  bool Identity = true;
  for (size_t I = 0; I < Order.size(); ++I)
    Identity &= Order[I] == I;
  if (Identity)
    return std::nullopt;

  // Build the sorted Cons spine over the existing element classes.
  EClassId Spine = G.add(ENode(Op(OpKind::Nil), {}));
  for (size_t I = Order.size(); I > 0; --I) {
    EClassId Elem = D.Elements[Order[I - 1]];
    Spine = G.add(ENode(Op(OpKind::Cons), {Elem, Spine}));
  }

  // Fold(Union, Empty, sorted) == Fold(Union, Empty, original): merge into
  // the fold's class (paper Fig. 11 — the new Fold e-node goes to the
  // e-class of the original Fold).
  EClassId UnionRef = G.add(ENode(Op::makeOpRef(OpKind::Union), {}));
  EClassId Empty = G.add(ENode(Op(OpKind::Empty), {}));
  EClassId NewFold =
      G.add(ENode(Op(OpKind::Fold), {UnionRef, Empty, Spine}));
  G.merge(FoldClass, NewFold);

  SortedList Out;
  Out.ListClass = Spine;
  Out.Decomposition.LayerKinds = D.LayerKinds;
  Out.Decomposition.Base = D.Base;
  Out.Decomposition.Vectors.assign(D.numLayers(), {});
  for (size_t L = 0; L < D.numLayers(); ++L)
    for (size_t I : Order)
      Out.Decomposition.Vectors[L].push_back(D.Vectors[L][I]);
  for (size_t I : Order)
    Out.Decomposition.Elements.push_back(D.Elements[I]);
  return Out;
}
