//===-- synth/Determinize.h - List determinization --------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinizer (paper Sec. 4.2): fold lists in the e-graph are
/// non-deterministic — the affine reordering rewrites give each element many
/// equivalent representations. The function solvers need one concrete list
/// of vectors, so the determinizer picks, for the whole list, a single
/// consistent affine decomposition: the same sequence of transform kinds and
/// the same base solid for every element.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SYNTH_DETERMINIZE_H
#define SHRINKRAY_SYNTH_DETERMINIZE_H

#include "egraph/EGraph.h"
#include "linalg/Vec3.h"

#include <optional>
#include <vector>

namespace shrinkray {

/// One affine layer of a decomposed list element.
struct AffineLayer {
  OpKind Kind = OpKind::Translate; ///< Translate, Scale, or Rotate
  Vec3 V;                          ///< the literal transform vector
};

/// One list element decomposed into affine layers over a base class.
struct AffineChain {
  std::vector<AffineLayer> Layers; ///< outermost first
  EClassId Base = 0;               ///< class of the transformed solid
};

/// A consistent decomposition of a whole fold list: every element has the
/// same layer-kind sequence and the same base class.
struct ChainDecomposition {
  std::vector<OpKind> LayerKinds;  ///< outermost first
  EClassId Base = 0;               ///< shared base class
  /// Vectors[L][I]: the layer-L vector of element I.
  std::vector<std::vector<Vec3>> Vectors;
  /// The element classes, in list order (needed for re-sorting).
  std::vector<EClassId> Elements;
  /// Number of distinct element classes (canonical ids). Duplicate-heavy
  /// lists have UniqueElements << numElements(); the determinizer
  /// enumerates chains once per distinct class, so this is also the
  /// enumeration count behind the decomposition (solver-pipeline stage 0's
  /// dedup awareness).
  size_t UniqueElements = 0;

  size_t numElements() const { return Elements.size(); }
  size_t numLayers() const { return LayerKinds.size(); }
};

/// Walks a Cons spine starting at \p ListClass, returning the element
/// classes, or nullopt if the class does not contain a pure spine (e.g. an
/// unexpanded Concat). Spines are followed through canonical ids; the walk
/// is cycle-guarded.
std::optional<std::vector<EClassId>> spineElements(const EGraph &G,
                                                   EClassId ListClass);

/// Enumerates affine decompositions of one element class, deepest first,
/// up to \p MaxDepth layers and \p MaxChains candidates.
std::vector<AffineChain> enumerateChains(const EGraph &G, EClassId Element,
                                         size_t MaxDepth = 3,
                                         size_t MaxChains = 24);

/// The determinizer: finds consistent decompositions of the list rooted at
/// \p ListClass. Returns up to \p MaxResults decompositions, preferring
/// deeper ones (more exposable structure). Returns an empty vector when the
/// elements share no common decomposition.
std::vector<ChainDecomposition> determinize(const EGraph &G,
                                            EClassId ListClass,
                                            size_t MaxResults = 3);

} // namespace shrinkray

#endif // SHRINKRAY_SYNTH_DETERMINIZE_H
