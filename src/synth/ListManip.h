//===-- synth/ListManip.h - List manipulation in Fold context ---*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// List manipulation (paper Sec. 4.3, Figures 11/12): reorders the elements
/// of a fold list to help the function solvers. Sorting is applied only in
/// the context of a Fold over Union — element order is then semantically
/// irrelevant (union is associative/commutative), so the new Fold over the
/// sorted list is merged into the *Fold's* e-class, never the list's.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SYNTH_LISTMANIP_H
#define SHRINKRAY_SYNTH_LISTMANIP_H

#include "synth/Determinize.h"

#include <optional>

namespace shrinkray {

/// Result of a sort: the new list class and the permuted decomposition.
struct SortedList {
  EClassId ListClass = 0;
  ChainDecomposition Decomposition;
};

/// Returns the permutation that sorts \p D's elements lexicographically by
/// their layer vectors (outermost layer first, then deeper layers; within a
/// vector by x, y, z). Identity permutation means already sorted.
std::vector<size_t> sortedOrder(const ChainDecomposition &D);

/// Applies sortedOrder to \p D: builds the sorted Cons spine in the graph,
/// wraps it in `Fold(Union, Empty, sorted)` and merges that fold with
/// \p FoldClass. Returns the sorted list's class and decomposition, or
/// nullopt when the list was already sorted (no change made).
///
/// The caller must rebuild() before further matching.
std::optional<SortedList> sortFoldList(EGraph &G, EClassId FoldClass,
                                       const ChainDecomposition &D);

} // namespace shrinkray

#endif // SHRINKRAY_SYNTH_LISTMANIP_H
