//===-- rewrites/Rules.h - The CAD rewrite rule database --------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantics-preserving syntactic rewrites of paper Sec. 3.2 (Figure 8),
/// grouped into the paper's four categories plus the standard boolean-
/// operator laws. Rules are exported in groups so callers can assemble the
/// exact set they need; `pipelineRules()` is the set the synthesizer runs.
///
/// Two deliberate strengthenings over the paper's presentation (documented
/// in DESIGN.md):
///  * Rotate/Translate reordering is implemented for arbitrary Euler angles
///    by computing the rotated offset numerically (the paper's per-axis
///    closed forms are special cases; the identity
///    Rotate(r, Translate(v, c)) == Translate(R_r v, Rotate(r, c)) is exact
///    for every rotation). The printed per-axis forms in the arXiv draft
///    contain typographical `atan` artifacts; we use the underlying matrix
///    identity that the authors state the rules were derived from.
///  * Fold extension handles union trees of any association via
///    Concat-normalization rules rather than relying on associativity
///    saturation, which keeps the e-graph small on long union chains.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_REWRITES_RULES_H
#define SHRINKRAY_REWRITES_RULES_H

#include "egraph/Rewrite.h"

#include <vector>

namespace shrinkray {

/// Figure 8a: T(c) o T(c') ~> T(c o c') for every boolean operator o and
/// affine transformation T (9 rules).
std::vector<Rewrite> liftingRules();

/// Figure 8b: reordering nested affine transformations of different types
/// (uniform-scale/rotate, scale/translate both ways, rotate/translate both
/// ways for arbitrary constant angles).
std::vector<Rewrite> reorderRules();

/// Figure 8c: collapsing nested same-type affine transformations
/// (translate/translate, scale/scale, same-axis rotate/rotate).
std::vector<Rewrite> collapseRules();

/// Figure 8d: introducing and extending Folds over Union, plus the
/// Concat-normalization rules that keep fold lists as pure Cons spines.
std::vector<Rewrite> foldRules();

/// Standard boolean-operator properties: identity under Empty, idempotence,
/// Diff-of-Diff, and (separately flagged) commutativity and associativity.
/// The pipeline omits both flags: fold-cons-left covers left-nested unions
/// and Concat normalization covers mixed nests, while commutativity floods
/// top-k extraction with permutation variants of equal cost.
std::vector<Rewrite> booleanRules(bool IncludeAssociativity = false,
                                  bool IncludeCommutativity = true);

/// Affine identity elimination: Translate(0,0,0,c) ~> c, Scale(1,1,1,c) ~> c,
/// Rotate(0,0,0,c) ~> c.
std::vector<Rewrite> identityRules();

/// LambdaCAD list/combinator algebra: Fold over Nil or singleton lists,
/// Repeat(x, 0), Cons(x, Repeat(x, n)) == Repeat(x, n+1), Concat with Nil.
/// These clean up solver-inserted structure and enable Repeat growth.
std::vector<Rewrite> listAlgebraRules();

/// The rule set the synthesizer runs (everything except associativity,
/// which the Concat normalization makes redundant for fold discovery and
/// which explodes the graph on long chains).
std::vector<Rewrite> pipelineRules();

/// Every rule, including associativity. Used by the soundness test suite.
std::vector<Rewrite> allRewrites();

} // namespace shrinkray

#endif // SHRINKRAY_REWRITES_RULES_H
