//===-- rewrites/Rules.cpp - The CAD rewrite rule database ----------------===//

#include "rewrites/Rules.h"

#include "linalg/Vec3.h"

#include <cmath>

using namespace shrinkray;

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

/// Adds a literal Vec3 e-node for \p V, returning its class.
static EClassId addVecConst(EGraph &G, Vec3 V) {
  EClassId X = G.add(ENode(Op::makeFloat(V.X), {}));
  EClassId Y = G.add(ENode(Op::makeFloat(V.Y), {}));
  EClassId Z = G.add(ENode(Op::makeFloat(V.Z), {}));
  return G.add(ENode(Op(OpKind::Vec3Ctor), {X, Y, Z}));
}

/// Reads the three bound scalar components of a matched vector as a Vec3.
static Vec3 boundVec(const EGraph &G, const Subst &S, const char *X,
                     const char *Y, const char *Z) {
  return {constValue(G, S, X), constValue(G, S, Y), constValue(G, S, Z)};
}

//===----------------------------------------------------------------------===//
// Figure 8a: lifting affine transformations out of boolean operations
//===----------------------------------------------------------------------===//

std::vector<Rewrite> shrinkray::liftingRules() {
  std::vector<Rewrite> Rules;
  const char *Bools[] = {"Union", "Diff", "Inter"};
  const char *Affines[] = {"Translate", "Scale", "Rotate"};
  for (const char *B : Bools)
    for (const char *A : Affines) {
      std::string Name =
          std::string("lift-") + A + "-over-" + B; // e.g. lift-Translate-over-Union
      std::string Lhs = std::string("(") + B + " (" + A + " ?v ?a) (" + A +
                        " ?v ?b))";
      std::string Rhs =
          std::string("(") + A + " ?v (" + B + " ?a ?b))";
      Rules.emplace_back(Name, Lhs, Rhs);
    }
  return Rules;
}

//===----------------------------------------------------------------------===//
// Figure 8b: reordering nested affine transformations
//===----------------------------------------------------------------------===//

std::vector<Rewrite> shrinkray::reorderRules() {
  std::vector<Rewrite> Rules;

  // Uniform scaling commutes with rotation (non-uniform would need shear).
  Rules.emplace_back("reorder-uniform-scale-rotate",
                     "(Scale (Vec3 ?x ?x ?x) (Rotate ?r ?c))",
                     "(Rotate ?r (Scale (Vec3 ?x ?x ?x) ?c))");
  Rules.emplace_back("reorder-rotate-uniform-scale",
                     "(Rotate ?r (Scale (Vec3 ?x ?x ?x) ?c))",
                     "(Scale (Vec3 ?x ?x ?x) (Rotate ?r ?c))");

  // Scale(s, Translate(t, c)) == Translate(s*t, Scale(s, c)).
  Rules.emplace_back(
      "reorder-scale-translate",
      "(Scale (Vec3 ?sx ?sy ?sz) (Translate (Vec3 ?tx ?ty ?tz) ?c))",
      "(Translate (Vec3 (Mul ?tx ?sx) (Mul ?ty ?sy) (Mul ?tz ?sz)) "
      "(Scale (Vec3 ?sx ?sy ?sz) ?c))");

  // Translate(t, Scale(s, c)) == Scale(s, Translate(t/s, c)), s nonzero.
  Rules.emplace_back(
      "reorder-translate-scale",
      "(Translate (Vec3 ?tx ?ty ?tz) (Scale (Vec3 ?sx ?sy ?sz) ?c))",
      "(Scale (Vec3 ?sx ?sy ?sz) "
      "(Translate (Vec3 (Div ?tx ?sx) (Div ?ty ?sy) (Div ?tz ?sz)) ?c))",
      guardAnd(isNonzeroConst("sx"),
               guardAnd(isNonzeroConst("sy"), isNonzeroConst("sz"))));

  // Rotate(r, Translate(v, c)) == Translate(R_r v, Rotate(r, c)); exact for
  // any Euler rotation, computed numerically on constant vectors.
  Rules.emplace_back(
      "reorder-rotate-translate",
      "(Rotate (Vec3 ?rx ?ry ?rz) (Translate (Vec3 ?tx ?ty ?tz) ?c))",
      [](EGraph &G, EClassId, const Subst &S) -> std::optional<EClassId> {
        for (const char *V : {"rx", "ry", "rz", "tx", "ty", "tz"})
          if (!G.data(S[Symbol(V)]).NumConst)
            return std::nullopt;
        Vec3 R = boundVec(G, S, "rx", "ry", "rz");
        Vec3 T = boundVec(G, S, "tx", "ty", "tz");
        Vec3 Moved = Mat3::rotXyz(R) * T;
        EClassId Rot = G.add(
            ENode(Op(OpKind::Rotate), {addVecConst(G, R), S[Symbol("c")]}));
        return G.add(
            ENode(Op(OpKind::Translate), {addVecConst(G, Moved), Rot}));
      });

  // Translate(v, Rotate(r, c)) == Rotate(r, Translate(R_r^-1 v, c)).
  Rules.emplace_back(
      "reorder-translate-rotate",
      "(Translate (Vec3 ?tx ?ty ?tz) (Rotate (Vec3 ?rx ?ry ?rz) ?c))",
      [](EGraph &G, EClassId, const Subst &S) -> std::optional<EClassId> {
        for (const char *V : {"rx", "ry", "rz", "tx", "ty", "tz"})
          if (!G.data(S[Symbol(V)]).NumConst)
            return std::nullopt;
        Vec3 R = boundVec(G, S, "rx", "ry", "rz");
        Vec3 T = boundVec(G, S, "tx", "ty", "tz");
        Vec3 Moved = Mat3::rotXyz(R).transpose() * T;
        EClassId Tr = G.add(ENode(Op(OpKind::Translate),
                                  {addVecConst(G, Moved), S[Symbol("c")]}));
        return G.add(ENode(Op(OpKind::Rotate), {addVecConst(G, R), Tr}));
      });

  return Rules;
}

//===----------------------------------------------------------------------===//
// Figure 8c: collapsing nested same-type affine transformations
//===----------------------------------------------------------------------===//

std::vector<Rewrite> shrinkray::collapseRules() {
  std::vector<Rewrite> Rules;

  Rules.emplace_back(
      "collapse-translate-translate",
      "(Translate (Vec3 ?ax ?ay ?az) (Translate (Vec3 ?bx ?by ?bz) ?c))",
      "(Translate (Vec3 (Add ?ax ?bx) (Add ?ay ?by) (Add ?az ?bz)) ?c)");

  Rules.emplace_back(
      "collapse-scale-scale",
      "(Scale (Vec3 ?ax ?ay ?az) (Scale (Vec3 ?bx ?by ?bz) ?c))",
      "(Scale (Vec3 (Mul ?ax ?bx) (Mul ?ay ?by) (Mul ?az ?bz)) ?c)");

  // Same-axis rotations add (axis-aligned cases, as in the paper).
  auto sameAxis = [](const EGraph &G, const Subst &S) {
    for (const char *V : {"ax", "ay", "az", "bx", "by", "bz"})
      if (!G.data(S[Symbol(V)]).NumConst)
        return false;
    Vec3 A = boundVec(G, S, "ax", "ay", "az");
    Vec3 B = boundVec(G, S, "bx", "by", "bz");
    // Each rotation must live on one axis, and on the same one (a zero
    // rotation is compatible with any axis).
    for (int Axis = 0; Axis < 3; ++Axis) {
      bool AOk = true, BOk = true;
      for (int I = 0; I < 3; ++I) {
        if (I != Axis && A[I] != 0.0)
          AOk = false;
        if (I != Axis && B[I] != 0.0)
          BOk = false;
      }
      if (AOk && BOk)
        return true;
    }
    return false;
  };
  Rules.emplace_back(
      "collapse-rotate-rotate-axis",
      "(Rotate (Vec3 ?ax ?ay ?az) (Rotate (Vec3 ?bx ?by ?bz) ?c))",
      "(Rotate (Vec3 (Add ?ax ?bx) (Add ?ay ?by) (Add ?az ?bz)) ?c)",
      sameAxis);

  return Rules;
}

//===----------------------------------------------------------------------===//
// Figure 8d: folds and list normalization
//===----------------------------------------------------------------------===//

std::vector<Rewrite> shrinkray::foldRules() {
  std::vector<Rewrite> Rules;

  // union(x, y) ~> fold(union, empty, x :: y :: nil)
  Rules.emplace_back("fold-intro", "(Union ?x ?y)",
                     "(Fold Union Empty (Cons ?x (Cons ?y Nil)))");

  // union(x, fold(union, y, zs)) ~> fold(union, y, x :: zs)
  Rules.emplace_back("fold-cons-right", "(Union ?x (Fold Union ?y ?zs))",
                     "(Fold Union ?y (Cons ?x ?zs))");

  // union(fold(union, y, zs), x) ~> fold(union, y, x :: zs)
  // (the paper appends zs @ [x]; union's commutativity lets us cons, which
  // keeps lists as pure spines)
  Rules.emplace_back("fold-cons-left", "(Union (Fold Union ?y ?zs) ?x)",
                     "(Fold Union ?y (Cons ?x ?zs))");

  // union of two folds ~> one fold over the concatenated lists
  Rules.emplace_back(
      "fold-fold-concat",
      "(Union (Fold Union Empty ?xs) (Fold Union Empty ?ys))",
      "(Fold Union Empty (Concat ?xs ?ys))");

  // Concat normalization: keeps fold lists as Cons spines.
  Rules.emplace_back("concat-cons", "(Concat (Cons ?x ?xs) ?ys)",
                     "(Cons ?x (Concat ?xs ?ys))");
  Rules.emplace_back("concat-nil", "(Concat Nil ?ys)", "?ys");

  return Rules;
}

//===----------------------------------------------------------------------===//
// Boolean-operator properties
//===----------------------------------------------------------------------===//

std::vector<Rewrite>
shrinkray::booleanRules(bool IncludeAssociativity,
                        bool IncludeCommutativity) {
  std::vector<Rewrite> Rules;

  Rules.emplace_back("union-empty-right", "(Union ?a Empty)", "?a");
  Rules.emplace_back("union-empty-left", "(Union Empty ?a)", "?a");
  Rules.emplace_back("diff-empty-right", "(Diff ?a Empty)", "?a");
  Rules.emplace_back("diff-empty-left", "(Diff Empty ?a)", "Empty");
  Rules.emplace_back("inter-empty-right", "(Inter ?a Empty)", "Empty");
  Rules.emplace_back("inter-empty-left", "(Inter Empty ?a)", "Empty");
  Rules.emplace_back("union-idem", "(Union ?a ?a)", "?a");
  Rules.emplace_back("inter-idem", "(Inter ?a ?a)", "?a");
  Rules.emplace_back("diff-self", "(Diff ?a ?a)", "Empty");
  if (IncludeCommutativity) {
    Rules.emplace_back("union-comm", "(Union ?a ?b)", "(Union ?b ?a)");
    Rules.emplace_back("inter-comm", "(Inter ?a ?b)", "(Inter ?b ?a)");
  }
  // diff(diff(a, b), c) == diff(a, union(b, c))
  Rules.emplace_back("diff-diff", "(Diff (Diff ?a ?b) ?c)",
                     "(Diff ?a (Union ?b ?c))");

  if (IncludeAssociativity) {
    Rules.emplace_back("union-assoc-l", "(Union (Union ?a ?b) ?c)",
                       "(Union ?a (Union ?b ?c))");
    Rules.emplace_back("union-assoc-r", "(Union ?a (Union ?b ?c))",
                       "(Union (Union ?a ?b) ?c)");
    Rules.emplace_back("inter-assoc-l", "(Inter (Inter ?a ?b) ?c)",
                       "(Inter ?a (Inter ?b ?c))");
  }
  return Rules;
}

//===----------------------------------------------------------------------===//
// Affine identities
//===----------------------------------------------------------------------===//

std::vector<Rewrite> shrinkray::identityRules() {
  std::vector<Rewrite> Rules;

  auto allEqual = [](const char *X, const char *Y, const char *Z,
                     double Value) {
    return [=](const EGraph &G, const Subst &S) {
      for (const char *V : {X, Y, Z}) {
        const AnalysisData &D = G.data(S[Symbol(V)]);
        if (!D.NumConst || *D.NumConst != Value)
          return false;
      }
      return true;
    };
  };

  Rules.emplace_back("translate-identity",
                     "(Translate (Vec3 ?x ?y ?z) ?c)", "?c",
                     allEqual("x", "y", "z", 0.0));
  Rules.emplace_back("scale-identity", "(Scale (Vec3 ?x ?y ?z) ?c)", "?c",
                     allEqual("x", "y", "z", 1.0));
  Rules.emplace_back("rotate-identity", "(Rotate (Vec3 ?x ?y ?z) ?c)", "?c",
                     allEqual("x", "y", "z", 0.0));
  return Rules;
}

//===----------------------------------------------------------------------===//
// List / combinator algebra
//===----------------------------------------------------------------------===//

std::vector<Rewrite> shrinkray::listAlgebraRules() {
  std::vector<Rewrite> Rules;

  // fold(op, e, nil) == e, for any initial solid.
  Rules.emplace_back("fold-nil", "(Fold Union ?e Nil)", "?e");
  // fold(union, empty, [x]) == x.
  Rules.emplace_back("fold-singleton",
                     "(Fold Union Empty (Cons ?x Nil))", "?x");
  // concat(xs, nil) == xs (the mirror of concat-nil in foldRules()).
  Rules.emplace_back("concat-nil-right", "(Concat ?xs Nil)", "?xs");
  // repeat(x, 0) == nil.
  Rules.emplace_back("repeat-zero", "(Repeat ?x 0)", "Nil");
  // cons(x, repeat(x, n)) == repeat(x, n+1) for a constant count: grows
  // Repeat runs out of literal spines.
  Rules.emplace_back(
      "cons-repeat-grow", "(Cons ?x (Repeat ?x ?n))",
      [](EGraph &G, EClassId, const Subst &S) -> std::optional<EClassId> {
        const AnalysisData &D = G.data(S[Symbol("n")]);
        if (!D.NumConst || !D.NumIsInt)
          return std::nullopt;
        EClassId Count = G.add(
            ENode(Op::makeInt(static_cast<int64_t>(*D.NumConst) + 1), {}));
        return G.add(
            ENode(Op(OpKind::Repeat), {S[Symbol("x")], Count}));
      });
  // cons(x, cons(x, nil)) == repeat(x, 2): seeds Repeat discovery.
  Rules.emplace_back(
      "cons-pair-to-repeat", "(Cons ?x (Cons ?x Nil))",
      [](EGraph &G, EClassId, const Subst &S) -> std::optional<EClassId> {
        EClassId Two = G.add(ENode(Op::makeInt(2), {}));
        return G.add(ENode(Op(OpKind::Repeat), {S[Symbol("x")], Two}));
      });
  return Rules;
}

//===----------------------------------------------------------------------===//
// Assembled sets
//===----------------------------------------------------------------------===//

static void appendRules(std::vector<Rewrite> &Into,
                        std::vector<Rewrite> From) {
  for (Rewrite &R : From)
    Into.push_back(std::move(R));
}

std::vector<Rewrite> shrinkray::pipelineRules() {
  std::vector<Rewrite> Rules;
  appendRules(Rules, liftingRules());
  appendRules(Rules, reorderRules());
  appendRules(Rules, collapseRules());
  appendRules(Rules, foldRules());
  appendRules(Rules, booleanRules(/*IncludeAssociativity=*/false,
                                  /*IncludeCommutativity=*/false));
  appendRules(Rules, identityRules());
  appendRules(Rules, listAlgebraRules());
  return Rules;
}

std::vector<Rewrite> shrinkray::allRewrites() {
  std::vector<Rewrite> Rules;
  appendRules(Rules, liftingRules());
  appendRules(Rules, reorderRules());
  appendRules(Rules, collapseRules());
  appendRules(Rules, foldRules());
  appendRules(Rules, booleanRules(/*IncludeAssociativity=*/true));
  appendRules(Rules, identityRules());
  appendRules(Rules, listAlgebraRules());
  return Rules;
}
