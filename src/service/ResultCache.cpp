//===-- service/ResultCache.cpp - Content-addressed result cache ----------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fingerprinting and the disk format behind ResultCache. One entry is a
/// small text file:
///
///   shrinkray-result-cache v1
///   key <48 hex>
///   programs <N>
///   <cost as 16 raw IEEE hex digits> <canonical s-expression>   (N lines)
///
/// Writes go to `<path>.tmp.<pid>` and are renamed into place, so
/// concurrent processes sharing a cache directory see either the old file
/// or the complete new one. Any parse failure on read — wrong header,
/// key mismatch (a hash collision or a renamed file), bad cost bits, an
/// s-expression that no longer parses — degrades to a cache miss.
///
//===----------------------------------------------------------------------===//

#include "service/ResultCache.h"

#include "cad/Sexp.h"
#include "egraph/SnapshotCodec.h"
#include "support/Hashing.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#ifndef _WIN32
#include <unistd.h>
#endif

using namespace shrinkray;
using namespace shrinkray::service;

namespace {

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof Buf, "%016" PRIx64, V);
  return Buf;
}

} // namespace

std::string CacheKey::hex() const {
  return hex16(InputHash) + hex16(RulesFp) + hex16(OptionsFp);
}

namespace {

/// Accumulates a value-level fingerprint of \p T with numeric leaf
/// *values* erased (each hashes as the bare shared tag): the
/// structureTermFingerprint variant. Symbols contribute their spellings
/// and the stream is length-/count-prefixed, mirroring the per-field
/// scheme behind termValueHash (which exactTermFingerprint reuses
/// directly — it is precomputed per node and already process-stable).
void structureFingerprintRec(const Term &T, Fnv1a &F) {
  const Op &O = T.op();
  switch (O.kind()) {
  case OpKind::Int:
  case OpKind::Float:
    F.u64(uint64_t(1) << 32); // shared numeric tag; value erased
    break;
  case OpKind::Var:
  case OpKind::External:
  case OpKind::PatVar:
    F.u64(static_cast<uint64_t>(O.kind()));
    F.str(O.symbol().str());
    break;
  case OpKind::OpRef:
    F.u64(static_cast<uint64_t>(O.kind()));
    F.u64(static_cast<uint64_t>(O.referencedOp()));
    break;
  default:
    F.u64(static_cast<uint64_t>(O.kind()));
    break;
  }
  F.u64(T.numChildren());
  for (const TermPtr &Kid : T.children())
    structureFingerprintRec(*Kid, F);
}

} // namespace

uint64_t service::exactTermFingerprint(const TermPtr &T) {
  return T->valueHash();
}

uint64_t service::structureTermFingerprint(const TermPtr &T) {
  Fnv1a F;
  structureFingerprintRec(*T, F);
  return F.hash();
}

uint64_t service::ruleDatabaseFingerprint(const std::vector<Rewrite> &Rules) {
  Fnv1a F;
  F.u64(Rules.size());
  for (const Rewrite &R : Rules) {
    F.str(R.name());
    F.str(printSexp(R.lhs().term()));
  }
  return F.hash();
}

uint64_t service::optionsFingerprint(const SynthesisOptions &Opts) {
  Fnv1a F;
  F.u64(1); // options-fingerprint schema version
  F.u64(Opts.Limits.IterLimit)
      .u64(Opts.Limits.NodeLimit)
      .f64(Opts.Limits.TimeLimitSec)
      .u64(Opts.Limits.MatchLimit)
      .u64(Opts.Limits.BanLengthIters);
  F.f64(Opts.Solver.Epsilon)
      .f64(Opts.Solver.TrigR2Floor)
      .u64(static_cast<uint64_t>(Opts.Solver.MaxNiceDenominator));
  F.u64(Opts.TopK)
      .u64(static_cast<uint64_t>(Opts.Cost))
      .u64(Opts.MainLoopIters)
      .u64(Opts.EnableLoopInference)
      .u64(Opts.EnableIrregular)
      .u64(Opts.EnableListSorting)
      .u64(Opts.MaxFoldSites);
  return F.hash();
}

CacheKey service::makeCacheKey(const TermPtr &FlatInput, uint64_t RulesFp,
                               const SynthesisOptions &Opts) {
  CacheKey Key;
  Key.InputHash = exactTermFingerprint(FlatInput);
  Key.RulesFp = RulesFp;
  Key.OptionsFp = optionsFingerprint(Opts);
  return Key;
}

uint64_t service::snapshotOptionsFingerprint(const SynthesisOptions &Opts) {
  Fnv1a F;
  F.u64(1); // snapshot-options-fingerprint schema version
  F.u64(Opts.Limits.NodeLimit)
      .u64(Opts.Limits.MatchLimit)
      .u64(Opts.Limits.BanLengthIters);
  return F.hash();
}

CacheKey service::makeSnapshotKey(const TermPtr &FlatInput, uint64_t RulesFp,
                                  const SynthesisOptions &Opts) {
  CacheKey Key;
  Key.InputHash = structureTermFingerprint(FlatInput);
  Key.RulesFp = RulesFp;
  Key.OptionsFp = snapshotOptionsFingerprint(Opts);
  return Key;
}

//===----------------------------------------------------------------------===//
// Snapshot entry envelope
//===----------------------------------------------------------------------===//

namespace {

/// Magic of an encoded snapshot entry; the trailing digit is the envelope
/// format version (a mismatch is "unsupported", not "corrupt").
constexpr char SnapshotEntryMagic[8] = {'S', 'R', 'A', 'Y', 'S', 'N', 'E', '1'};
constexpr uint32_t SnapshotEntryVersion = 1;

} // namespace

std::string service::encodeSnapshotEntry(const SnapshotEntry &E) {
  snapcodec::Writer W;
  W.u32(SnapshotEntryVersion);
  W.u64(E.InputHash);
  W.u8(static_cast<uint8_t>(E.Cost));
  W.u64(E.TopK);
  W.u8(static_cast<uint8_t>(E.Stop));
  W.u64(E.IterationsDone);
  W.str(E.InputSexp);
  W.str(E.Cursors);
  W.str(E.Extract);
  W.str(E.Graph);
  const std::string Payload = W.take();

  std::string Out(SnapshotEntryMagic, sizeof SnapshotEntryMagic);
  snapcodec::Writer Header;
  Header.u64(Payload.size());
  Header.u64(snapcodec::fnv1a(Payload));
  Out += Header.bytes();
  Out += Payload;
  return Out;
}

std::string service::decodeSnapshotEntry(std::string_view Bytes,
                                         SnapshotEntry &Out) {
  constexpr size_t HeaderSize = sizeof SnapshotEntryMagic + 16;
  if (Bytes.size() < HeaderSize)
    return "snapshot entry truncated before the header";
  if (std::memcmp(Bytes.data(), SnapshotEntryMagic,
                  sizeof SnapshotEntryMagic - 1) != 0)
    return "not a snapshot entry (bad magic)";
  if (Bytes[sizeof SnapshotEntryMagic - 1] !=
      SnapshotEntryMagic[sizeof SnapshotEntryMagic - 1])
    return "unsupported snapshot entry format version";
  snapcodec::Reader Header(
      std::string(Bytes.substr(sizeof SnapshotEntryMagic, 16)));
  const uint64_t Len = Header.u64();
  const uint64_t Sum = Header.u64();
  std::string_view Payload = Bytes.substr(HeaderSize);
  if (Len != Payload.size())
    return "snapshot entry length mismatch";
  // One checksum over the whole payload: any bit flip anywhere — the
  // envelope fields, the inner blobs, their own checksums — fails here,
  // before any inner decoder sees the bytes.
  if (snapcodec::fnv1a(Payload) != Sum)
    return "snapshot entry checksum mismatch";

  snapcodec::Reader R{std::string(Payload)};
  if (R.u32() != SnapshotEntryVersion || !R.ok())
    return "unsupported snapshot entry payload version";
  Out.InputHash = R.u64();
  const uint8_t Cost = R.u8();
  Out.TopK = R.u64();
  const uint8_t Stop = R.u8();
  Out.IterationsDone = R.u64();
  Out.InputSexp = R.str();
  Out.Cursors = R.str();
  Out.Extract = R.str();
  Out.Graph = R.str();
  if (!R.ok() || !R.atEnd())
    return "snapshot entry payload truncated";
  if (Cost > static_cast<uint8_t>(CostKind::RewardLoops))
    return "snapshot entry cost kind out of range";
  if (Stop > static_cast<uint8_t>(StopReason::Cancelled))
    return "snapshot entry stop reason out of range";
  Out.Cost = static_cast<CostKind>(Cost);
  Out.Stop = static_cast<StopReason>(Stop);
  return "";
}

ResultCache::ResultCache(std::string Dir)
    : ResultCache(std::move(Dir), Limits()) {}

ResultCache::ResultCache(std::string Dir, Limits Lim)
    : Dir(std::move(Dir)), Lim(Lim) {}

void ResultCache::insertMemLocked(const std::string &Hex,
                                  const std::vector<RankedTerm> &Programs) {
  auto It = Mem.find(Hex);
  if (It != Mem.end()) {
    It->second->second = Programs;
    MemList.splice(MemList.begin(), MemList, It->second);
    return;
  }
  MemList.emplace_front(Hex, Programs);
  Mem[Hex] = MemList.begin();
  while (Lim.MaxMemEntries != 0 && Mem.size() > Lim.MaxMemEntries) {
    Mem.erase(MemList.back().first);
    MemList.pop_back();
    ++St.MemEvictions;
  }
}

void ResultCache::insertSnapMemLocked(const std::string &Hex,
                                      const std::string &Blob) {
  auto It = SnapMem.find(Hex);
  if (It != SnapMem.end()) {
    It->second->second = Blob;
    SnapMemList.splice(SnapMemList.begin(), SnapMemList, It->second);
    return;
  }
  SnapMemList.emplace_front(Hex, Blob);
  SnapMem[Hex] = SnapMemList.begin();
  while (Lim.MaxMemSnapshots != 0 && SnapMem.size() > Lim.MaxMemSnapshots) {
    SnapMem.erase(SnapMemList.back().first);
    SnapMemList.pop_back();
    ++St.SnapshotMemEvictions;
  }
}

std::string ResultCache::pathFor(const CacheKey &Key) const {
  return Dir + "/" + Key.hex() + ".srres";
}

std::string ResultCache::snapshotPathFor(const CacheKey &Key) const {
  return Dir + "/" + Key.hex() + ".srsnap";
}

namespace {

/// Parses one disk entry into \p Programs; any malformed line is a
/// refusal (the caller treats it as a miss). Pure: no cache state.
bool readEntryFile(const std::string &Path, const std::string &Hex,
                   std::vector<RankedTerm> &Programs) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::string Line;
  if (!std::getline(In, Line) || Line != "shrinkray-result-cache v1" ||
      !std::getline(In, Line) || Line != "key " + Hex ||
      !std::getline(In, Line) || Line.rfind("programs ", 0) != 0)
    return false;
  size_t N = 0;
  {
    std::istringstream Count(Line.substr(strlen("programs ")));
    if (!(Count >> N) || N > 10000)
      return false;
  }
  Programs.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    if (!std::getline(In, Line) || Line.size() < 18 || Line[16] != ' ')
      return false;
    const std::string CostHex = Line.substr(0, 16);
    char *End = nullptr;
    uint64_t CostBits = std::strtoull(CostHex.c_str(), &End, 16);
    if (End != CostHex.c_str() + 16)
      return false; // bad cost bits: the whole field must be hex
    RankedTerm P;
    std::memcpy(&P.Cost, &CostBits, sizeof P.Cost);
    if (std::isnan(P.Cost))
      return false;
    ParseResult R = parseSexp(std::string_view(Line).substr(17));
    if (!R)
      return false;
    P.T = R.Value;
    Programs.push_back(std::move(P));
  }
  return true;
}

} // namespace

std::optional<std::vector<RankedTerm>>
ResultCache::lookup(const CacheKey &Key) {
  const std::string Hex = Key.hex();
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Mem.find(Hex);
    if (It != Mem.end()) {
      ++St.Hits;
      MemList.splice(MemList.begin(), MemList, It->second);
      return It->second->second;
    }
    if (Dir.empty()) {
      ++St.Misses;
      return std::nullopt;
    }
  }

  // Disk probe outside the lock: a slow filesystem must not serialize
  // other workers' in-memory hits. Two threads racing the same cold key
  // both read the file — benign, last insert wins with equal content.
  std::vector<RankedTerm> Programs;
  const bool Read = readEntryFile(pathFor(Key), Hex, Programs);
  std::lock_guard<std::mutex> Lock(M);
  if (!Read) {
    ++St.Misses;
    return std::nullopt;
  }
  ++St.Hits;
  ++St.DiskHits;
  insertMemLocked(Hex, Programs);
  return Programs;
}

void ResultCache::store(const CacheKey &Key,
                        const std::vector<RankedTerm> &Programs) {
  const std::string Hex = Key.hex();
  bool Sweep = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    ++St.Stores;
    insertMemLocked(Hex, Programs);
    // Budget enforcement is amortized: every 16th store sweeps, so a
    // steady stream of stores keeps the directory near its budget
    // without paying a directory scan per store.
    if (!Dir.empty() && (Lim.MaxDiskBytes != 0 || Lim.MaxAgeSec != 0.0))
      Sweep = ++StoresSinceSweep >= 16;
    if (Sweep)
      StoresSinceSweep = 0;
  }
  if (Dir.empty())
    return;

  std::ostringstream Os;
  Os << "shrinkray-result-cache v1\n"
     << "key " << Hex << "\n"
     << "programs " << Programs.size() << "\n";
  for (const RankedTerm &P : Programs) {
    uint64_t CostBits;
    std::memcpy(&CostBits, &P.Cost, sizeof CostBits);
    Os << hex16(CostBits) << " " << printSexp(P.T) << "\n";
  }
  writeFile(pathFor(Key), Os.str(), Sweep);
}

void ResultCache::writeFile(const std::string &Path, const std::string &Bytes,
                            bool Sweep) {
  // File write outside the lock (see lookup): the tmp-name + rename
  // protocol already tolerates concurrent writers of the same key.
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return; // cache degrades to memory-only; synthesis already succeeded

  // Unique per process *and* thread: with the lock no longer covering
  // the write, two workers storing the same key must not share a tmp.
  const std::string Tmp =
      Path + ".tmp." +
      std::to_string(static_cast<unsigned long>(
#ifdef _WIN32
          0
#else
          ::getpid()
#endif
          )) +
      "." +
      std::to_string(std::hash<std::thread::id>()(std::this_thread::get_id()));
  bool Written = false;
  {
    std::ofstream Out(Tmp, std::ios::trunc | std::ios::binary);
    if (Out) {
      Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
      Written = Out.good();
    }
  }
  if (Written)
    std::filesystem::rename(Tmp, Path, Ec);
  // Failed writes and failed renames both clean up the tmp: a long-lived
  // service on a flaky disk must not accumulate orphans.
  if (!Written || Ec)
    std::filesystem::remove(Tmp, Ec);
  if (Sweep)
    sweepDisk();
}

std::optional<SnapshotEntry> ResultCache::lookupSnapshot(const CacheKey &Key) {
  const std::string Hex = Key.hex();
  std::string Blob;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = SnapMem.find(Hex);
    if (It != SnapMem.end()) {
      SnapMemList.splice(SnapMemList.begin(), SnapMemList, It->second);
      Blob = It->second->second;
    } else if (Dir.empty()) {
      ++St.SnapshotMisses;
      return std::nullopt;
    }
  }

  bool FromDisk = false;
  if (Blob.empty()) {
    // Disk probe outside the lock, as in lookup().
    std::ifstream In(snapshotPathFor(Key), std::ios::binary);
    if (In) {
      std::ostringstream Os;
      Os << In.rdbuf();
      Blob = std::move(Os).str();
      FromDisk = In.good() || In.eof();
    }
    if (!FromDisk || Blob.empty()) {
      std::lock_guard<std::mutex> Lock(M);
      ++St.SnapshotMisses;
      return std::nullopt;
    }
  }

  // Decode outside the lock too — entries are megabytes. Memory-tier
  // blobs re-decode on every hit, which keeps one validation path for
  // both tiers (and is cheap next to the synthesis it saves).
  SnapshotEntry E;
  const std::string Err = decodeSnapshotEntry(Blob, E);
  std::lock_guard<std::mutex> Lock(M);
  if (!Err.empty()) {
    // A corrupt blob is a miss, not an error: warm starts are an
    // optimization, and the cold pipeline is always available.
    ++St.SnapshotMisses;
    return std::nullopt;
  }
  ++St.SnapshotHits;
  if (FromDisk)
    insertSnapMemLocked(Hex, Blob);
  return E;
}

void ResultCache::storeSnapshot(const CacheKey &Key, const SnapshotEntry &E) {
  const std::string Hex = Key.hex();
  const std::string Blob = encodeSnapshotEntry(E);
  bool Sweep = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    ++St.SnapshotStores;
    insertSnapMemLocked(Hex, Blob);
    // Snapshot stores advance the same amortized sweep counter as result
    // stores: a snapshot-only workload must still hit its disk budgets.
    if (!Dir.empty() && (Lim.MaxDiskBytes != 0 || Lim.MaxAgeSec != 0.0))
      Sweep = ++StoresSinceSweep >= 16;
    if (Sweep)
      StoresSinceSweep = 0;
  }
  if (Dir.empty())
    return;
  writeFile(snapshotPathFor(Key), Blob, Sweep);
}

void ResultCache::sweepDisk() {
  if (Dir.empty() || (Lim.MaxDiskBytes == 0 && Lim.MaxAgeSec == 0.0))
    return;
  namespace fs = std::filesystem;

  struct DiskEntry {
    fs::path Path;
    fs::file_time_type Written;
    uintmax_t Bytes = 0;
    bool IsTmp = false;
    bool IsSnapshot = false;
  };
  std::vector<DiskEntry> Entries;
  uintmax_t TotalBytes = 0;
  std::error_code Ec;
  for (fs::directory_iterator It(Dir, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    const fs::path P = It->path();
    const std::string Name = P.filename().string();
    DiskEntry E;
    E.Path = P;
    // Both tiers share the budgets: a megabyte-scale snapshot tier that
    // escaped the sweep would render MaxDiskBytes meaningless, and its
    // crashed writers would leak tmp orphans forever.
    E.IsSnapshot = Name.find(".srsnap") != std::string::npos;
    E.IsTmp = Name.find(".srres.tmp.") != std::string::npos ||
              Name.find(".srsnap.tmp.") != std::string::npos;
    if (!E.IsTmp && P.extension() != ".srres" && P.extension() != ".srsnap")
      continue; // never touch files the cache did not write
    std::error_code St1, St2;
    E.Written = fs::last_write_time(P, St1);
    E.Bytes = fs::file_size(P, St2);
    if (St1 || St2)
      continue; // raced a concurrent delete/rename; skip this file
    if (!E.IsTmp)
      TotalBytes += E.Bytes;
    Entries.push_back(std::move(E));
  }

  const auto Now = fs::file_time_type::clock::now();
  auto ageSec = [&](const DiskEntry &E) {
    return std::chrono::duration<double>(Now - E.Written).count();
  };
  // Oldest first, so the byte budget trims in LRU-by-mtime order.
  std::sort(Entries.begin(), Entries.end(),
            [](const DiskEntry &A, const DiskEntry &B) {
              return A.Written < B.Written;
            });

  size_t Removed = 0, SnapRemoved = 0;
  for (const DiskEntry &E : Entries) {
    const bool Expired = Lim.MaxAgeSec != 0.0 && ageSec(E) > Lim.MaxAgeSec;
    const bool OverBudget =
        !E.IsTmp && Lim.MaxDiskBytes != 0 && TotalBytes > Lim.MaxDiskBytes;
    // Tmp files are only ever age-swept: a fresh one may belong to a
    // writer that is about to rename it into place.
    if (!(Expired || OverBudget))
      continue;
    std::error_code Rm;
    if (!fs::remove(E.Path, Rm) || Rm)
      continue; // concurrent writer won the race; its entry is current
    if (!E.IsTmp) {
      TotalBytes -= E.Bytes;
      ++(E.IsSnapshot ? SnapRemoved : Removed);
    }
  }
  if (Removed != 0 || SnapRemoved != 0) {
    std::lock_guard<std::mutex> Lock(M);
    St.DiskEvictions += Removed;
    St.SnapshotDiskEvictions += SnapRemoved;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return St;
}
