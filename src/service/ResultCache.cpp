//===-- service/ResultCache.cpp - Content-addressed result cache ----------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fingerprinting and the disk format behind ResultCache. One entry is a
/// small text file:
///
///   shrinkray-result-cache v1
///   key <48 hex>
///   programs <N>
///   <cost as 16 raw IEEE hex digits> <canonical s-expression>   (N lines)
///
/// Writes go to `<path>.tmp.<pid>` and are renamed into place, so
/// concurrent processes sharing a cache directory see either the old file
/// or the complete new one. Any parse failure on read — wrong header,
/// key mismatch (a hash collision or a renamed file), bad cost bits, an
/// s-expression that no longer parses — degrades to a cache miss.
///
//===----------------------------------------------------------------------===//

#include "service/ResultCache.h"

#include "cad/Sexp.h"
#include "support/Hashing.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#ifndef _WIN32
#include <unistd.h>
#endif

using namespace shrinkray;
using namespace shrinkray::service;

namespace {

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof Buf, "%016" PRIx64, V);
  return Buf;
}

} // namespace

std::string CacheKey::hex() const {
  return hex16(InputHash) + hex16(RulesFp) + hex16(OptionsFp);
}

namespace {

/// Accumulates a process-stable, value-level fingerprint of \p T:
/// symbols contribute their *spellings* (termValueHash hashes Symbol
/// interning ids, which depend on interning order and so differ between
/// processes sharing a disk cache), and numeric literals contribute
/// their value across the Int/Float divide (Int 5 == Float 5.0, the
/// same aliasing termValueHash guarantees in-process). Injective up to
/// that equivalence: every field is length- or count-prefixed.
void stableTermFingerprintRec(const Term &T, Fnv1a &F) {
  const Op &O = T.op();
  switch (O.kind()) {
  case OpKind::Int:
  case OpKind::Float: {
    F.u64(uint64_t(1) << 32); // shared numeric tag
    double V = O.numericValue();
    F.f64(V == 0.0 ? 0.0 : V); // canonicalize -0.0
    break;
  }
  case OpKind::Var:
  case OpKind::External:
  case OpKind::PatVar:
    F.u64(static_cast<uint64_t>(O.kind()));
    F.str(O.symbol().str());
    break;
  case OpKind::OpRef:
    F.u64(static_cast<uint64_t>(O.kind()));
    F.u64(static_cast<uint64_t>(O.referencedOp()));
    break;
  default:
    F.u64(static_cast<uint64_t>(O.kind()));
    break;
  }
  F.u64(T.numChildren());
  for (const TermPtr &Kid : T.children())
    stableTermFingerprintRec(*Kid, F);
}

uint64_t stableTermFingerprint(const TermPtr &T) {
  Fnv1a F;
  stableTermFingerprintRec(*T, F);
  return F.hash();
}

} // namespace

uint64_t service::ruleDatabaseFingerprint(const std::vector<Rewrite> &Rules) {
  Fnv1a F;
  F.u64(Rules.size());
  for (const Rewrite &R : Rules) {
    F.str(R.name());
    F.str(printSexp(R.lhs().term()));
  }
  return F.hash();
}

uint64_t service::optionsFingerprint(const SynthesisOptions &Opts) {
  Fnv1a F;
  F.u64(1); // options-fingerprint schema version
  F.u64(Opts.Limits.IterLimit)
      .u64(Opts.Limits.NodeLimit)
      .f64(Opts.Limits.TimeLimitSec)
      .u64(Opts.Limits.MatchLimit)
      .u64(Opts.Limits.BanLengthIters);
  F.f64(Opts.Solver.Epsilon)
      .f64(Opts.Solver.TrigR2Floor)
      .u64(static_cast<uint64_t>(Opts.Solver.MaxNiceDenominator));
  F.u64(Opts.TopK)
      .u64(static_cast<uint64_t>(Opts.Cost))
      .u64(Opts.MainLoopIters)
      .u64(Opts.EnableLoopInference)
      .u64(Opts.EnableIrregular)
      .u64(Opts.EnableListSorting)
      .u64(Opts.MaxFoldSites);
  return F.hash();
}

CacheKey service::makeCacheKey(const TermPtr &FlatInput, uint64_t RulesFp,
                               const SynthesisOptions &Opts) {
  CacheKey Key;
  Key.InputHash = stableTermFingerprint(FlatInput);
  Key.RulesFp = RulesFp;
  Key.OptionsFp = optionsFingerprint(Opts);
  return Key;
}

ResultCache::ResultCache(std::string Dir)
    : ResultCache(std::move(Dir), Limits()) {}

ResultCache::ResultCache(std::string Dir, Limits Lim)
    : Dir(std::move(Dir)), Lim(Lim) {}

void ResultCache::insertMemLocked(const std::string &Hex,
                                  const std::vector<RankedTerm> &Programs) {
  auto It = Mem.find(Hex);
  if (It != Mem.end()) {
    It->second->second = Programs;
    MemList.splice(MemList.begin(), MemList, It->second);
    return;
  }
  MemList.emplace_front(Hex, Programs);
  Mem[Hex] = MemList.begin();
  while (Lim.MaxMemEntries != 0 && Mem.size() > Lim.MaxMemEntries) {
    Mem.erase(MemList.back().first);
    MemList.pop_back();
    ++St.MemEvictions;
  }
}

std::string ResultCache::pathFor(const CacheKey &Key) const {
  return Dir + "/" + Key.hex() + ".srres";
}

namespace {

/// Parses one disk entry into \p Programs; any malformed line is a
/// refusal (the caller treats it as a miss). Pure: no cache state.
bool readEntryFile(const std::string &Path, const std::string &Hex,
                   std::vector<RankedTerm> &Programs) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::string Line;
  if (!std::getline(In, Line) || Line != "shrinkray-result-cache v1" ||
      !std::getline(In, Line) || Line != "key " + Hex ||
      !std::getline(In, Line) || Line.rfind("programs ", 0) != 0)
    return false;
  size_t N = 0;
  {
    std::istringstream Count(Line.substr(strlen("programs ")));
    if (!(Count >> N) || N > 10000)
      return false;
  }
  Programs.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    if (!std::getline(In, Line) || Line.size() < 18 || Line[16] != ' ')
      return false;
    const std::string CostHex = Line.substr(0, 16);
    char *End = nullptr;
    uint64_t CostBits = std::strtoull(CostHex.c_str(), &End, 16);
    if (End != CostHex.c_str() + 16)
      return false; // bad cost bits: the whole field must be hex
    RankedTerm P;
    std::memcpy(&P.Cost, &CostBits, sizeof P.Cost);
    if (std::isnan(P.Cost))
      return false;
    ParseResult R = parseSexp(std::string_view(Line).substr(17));
    if (!R)
      return false;
    P.T = R.Value;
    Programs.push_back(std::move(P));
  }
  return true;
}

} // namespace

std::optional<std::vector<RankedTerm>>
ResultCache::lookup(const CacheKey &Key) {
  const std::string Hex = Key.hex();
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Mem.find(Hex);
    if (It != Mem.end()) {
      ++St.Hits;
      MemList.splice(MemList.begin(), MemList, It->second);
      return It->second->second;
    }
    if (Dir.empty()) {
      ++St.Misses;
      return std::nullopt;
    }
  }

  // Disk probe outside the lock: a slow filesystem must not serialize
  // other workers' in-memory hits. Two threads racing the same cold key
  // both read the file — benign, last insert wins with equal content.
  std::vector<RankedTerm> Programs;
  const bool Read = readEntryFile(pathFor(Key), Hex, Programs);
  std::lock_guard<std::mutex> Lock(M);
  if (!Read) {
    ++St.Misses;
    return std::nullopt;
  }
  ++St.Hits;
  ++St.DiskHits;
  insertMemLocked(Hex, Programs);
  return Programs;
}

void ResultCache::store(const CacheKey &Key,
                        const std::vector<RankedTerm> &Programs) {
  const std::string Hex = Key.hex();
  bool Sweep = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    ++St.Stores;
    insertMemLocked(Hex, Programs);
    // Budget enforcement is amortized: every 16th store sweeps, so a
    // steady stream of stores keeps the directory near its budget
    // without paying a directory scan per store.
    if (!Dir.empty() && (Lim.MaxDiskBytes != 0 || Lim.MaxAgeSec != 0.0))
      Sweep = ++StoresSinceSweep >= 16;
    if (Sweep)
      StoresSinceSweep = 0;
  }
  if (Dir.empty())
    return;

  // File write outside the lock (see lookup): the tmp-name + rename
  // protocol already tolerates concurrent writers of the same key.
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return; // cache degrades to memory-only; synthesis already succeeded

  std::ostringstream Os;
  Os << "shrinkray-result-cache v1\n"
     << "key " << Hex << "\n"
     << "programs " << Programs.size() << "\n";
  for (const RankedTerm &P : Programs) {
    uint64_t CostBits;
    std::memcpy(&CostBits, &P.Cost, sizeof CostBits);
    Os << hex16(CostBits) << " " << printSexp(P.T) << "\n";
  }

  const std::string Path = pathFor(Key);
  // Unique per process *and* thread: with the lock no longer covering
  // the write, two workers storing the same key must not share a tmp.
  const std::string Tmp =
      Path + ".tmp." +
      std::to_string(static_cast<unsigned long>(
#ifdef _WIN32
          0
#else
          ::getpid()
#endif
          )) +
      "." +
      std::to_string(std::hash<std::thread::id>()(std::this_thread::get_id()));
  bool Written = false;
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (Out) {
      Out << Os.str();
      Written = Out.good();
    }
  }
  if (Written)
    std::filesystem::rename(Tmp, Path, Ec);
  // Failed writes and failed renames both clean up the tmp: a long-lived
  // service on a flaky disk must not accumulate orphans.
  if (!Written || Ec)
    std::filesystem::remove(Tmp, Ec);
  if (Sweep)
    sweepDisk();
}

void ResultCache::sweepDisk() {
  if (Dir.empty() || (Lim.MaxDiskBytes == 0 && Lim.MaxAgeSec == 0.0))
    return;
  namespace fs = std::filesystem;

  struct DiskEntry {
    fs::path Path;
    fs::file_time_type Written;
    uintmax_t Bytes = 0;
    bool IsTmp = false;
  };
  std::vector<DiskEntry> Entries;
  uintmax_t TotalBytes = 0;
  std::error_code Ec;
  for (fs::directory_iterator It(Dir, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    const fs::path P = It->path();
    const std::string Name = P.filename().string();
    DiskEntry E;
    E.Path = P;
    E.IsTmp = Name.find(".srres.tmp.") != std::string::npos;
    if (!E.IsTmp && P.extension() != ".srres")
      continue; // never touch files the cache did not write
    std::error_code St1, St2;
    E.Written = fs::last_write_time(P, St1);
    E.Bytes = fs::file_size(P, St2);
    if (St1 || St2)
      continue; // raced a concurrent delete/rename; skip this file
    if (!E.IsTmp)
      TotalBytes += E.Bytes;
    Entries.push_back(std::move(E));
  }

  const auto Now = fs::file_time_type::clock::now();
  auto ageSec = [&](const DiskEntry &E) {
    return std::chrono::duration<double>(Now - E.Written).count();
  };
  // Oldest first, so the byte budget trims in LRU-by-mtime order.
  std::sort(Entries.begin(), Entries.end(),
            [](const DiskEntry &A, const DiskEntry &B) {
              return A.Written < B.Written;
            });

  size_t Removed = 0;
  for (const DiskEntry &E : Entries) {
    const bool Expired = Lim.MaxAgeSec != 0.0 && ageSec(E) > Lim.MaxAgeSec;
    const bool OverBudget =
        !E.IsTmp && Lim.MaxDiskBytes != 0 && TotalBytes > Lim.MaxDiskBytes;
    // Tmp files are only ever age-swept: a fresh one may belong to a
    // writer that is about to rename it into place.
    if (!(Expired || OverBudget))
      continue;
    std::error_code Rm;
    if (!fs::remove(E.Path, Rm) || Rm)
      continue; // concurrent writer won the race; its entry is current
    if (!E.IsTmp) {
      TotalBytes -= E.Bytes;
      ++Removed;
    }
  }
  if (Removed != 0) {
    std::lock_guard<std::mutex> Lock(M);
    St.DiskEvictions += Removed;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return St;
}
