//===-- service/SynthesisService.cpp - Concurrent job scheduler -----------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Worker-pool implementation of the synthesis service. One mutex guards
/// the queue and the job table; synthesis itself runs outside the lock,
/// so the lock is only ever held for queue surgery. Cancellation is
/// token-based: cancel() (and the per-job deadline) flips the token the
/// Runner and Synthesizer poll, so no thread is ever interrupted — a
/// cancelled job parks its partial result like any other completion.
///
//===----------------------------------------------------------------------===//

#include "service/SynthesisService.h"

#include "cad/Eval.h"
#include "cad/Sexp.h"
#include "rewrites/Rules.h"
#include "scad/ScadParser.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace shrinkray;
using namespace shrinkray::service;

namespace {

using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point A, Clock::time_point B) {
  return std::chrono::duration<double>(B - A).count();
}

/// Lockstep walk counting numeric-leaf value differences between the
/// captured input \p A and the request input \p B. Returns false on any
/// structural mismatch — everything except numeric leaf values (operator
/// kinds, symbol spellings, arities) must agree. Int/Float respellings of
/// one value are not an edit, matching the value-level input hash.
bool countNumericEdits(const Term &A, const Term &B, size_t &Edits) {
  const Op &OA = A.op();
  const Op &OB = B.op();
  const bool NumA = OA.kind() == OpKind::Int || OA.kind() == OpKind::Float;
  const bool NumB = OB.kind() == OpKind::Int || OB.kind() == OpKind::Float;
  if (NumA != NumB)
    return false;
  if (NumA) {
    if (OA.numericValue() != OB.numericValue())
      ++Edits;
  } else {
    if (OA.kind() != OB.kind())
      return false;
    switch (OA.kind()) {
    case OpKind::Var:
    case OpKind::External:
    case OpKind::PatVar:
      if (OA.symbol() != OB.symbol())
        return false;
      break;
    case OpKind::OpRef:
      if (OA.referencedOp() != OB.referencedOp())
        return false;
      break;
    default:
      break;
    }
  }
  if (A.numChildren() != B.numChildren())
    return false;
  for (size_t I = 0; I < A.numChildren(); ++I)
    if (!countNumericEdits(*A.child(I), *B.child(I), Edits))
      return false;
  return true;
}

} // namespace

SynthesisService::SynthesisService(ServiceConfig Cfg)
    : Cfg(Cfg), Cache(Cfg.CacheDir, Cfg.CacheLimits),
      RulesFp(ruleDatabaseFingerprint(pipelineRules())) {
  unsigned HW = std::thread::hardware_concurrency();
  HardwareThreads = HW ? HW : 1;
  size_t N = Cfg.NumWorkers;
  if (N == 0)
    N = HardwareThreads;
  Workers.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

SynthesisService::~SynthesisService() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
    // Ask running jobs to wind down...
    for (auto &[Id, J] : Jobs)
      if (J->State != JobState::Done)
        J->Token.cancel();
    // ...and complete still-queued jobs as Cancelled right here: the
    // workers exit on Stopping without draining the queue, and a thread
    // blocked in wait() on an abandoned Pending job would otherwise
    // sleep through teardown and then race the condvar's destruction.
    for (JobId Id : Queue) {
      Job &J = *Jobs.find(Id)->second;
      if (J.State == JobState::Pending) {
        J.Outcome.St = JobOutcome::Status::Cancelled;
        J.State = JobState::Done;
        noteDoneLocked(J.Outcome);
      }
    }
    Queue.clear();
  }
  WorkCV.notify_all();
  DoneCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

SynthesisService::JobId SynthesisService::enqueueLocked(JobSpec Spec) {
  JobId Id = NextId++;
  auto J = std::make_unique<Job>();
  J->Spec = std::move(Spec);
  J->Submitted = Clock::now();
  Jobs.emplace(Id, std::move(J));
  Queue.push_back(Id);
  ++Counters.Submitted;
  return Id;
}

SynthesisService::JobId SynthesisService::submit(JobSpec Spec) {
  JobId Id;
  {
    std::lock_guard<std::mutex> Lock(M);
    Id = enqueueLocked(std::move(Spec));
  }
  WorkCV.notify_one();
  return Id;
}

std::optional<SynthesisService::JobId>
SynthesisService::trySubmit(JobSpec Spec) {
  JobId Id;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Draining ||
        (Cfg.MaxQueueDepth != 0 && Queue.size() >= Cfg.MaxQueueDepth)) {
      ++Counters.Rejected;
      return std::nullopt;
    }
    Id = enqueueLocked(std::move(Spec));
  }
  WorkCV.notify_one();
  return Id;
}

void SynthesisService::noteDoneLocked(const JobOutcome &Out) {
  ++Counters.Completed;
  switch (Out.St) {
  case JobOutcome::Status::CacheHit:
    ++Counters.CacheHits;
    break;
  case JobOutcome::Status::Succeeded:
    ++Counters.Succeeded;
    break;
  case JobOutcome::Status::Cancelled:
    ++Counters.Cancelled;
    break;
  case JobOutcome::Status::Failed:
    ++Counters.Failed;
    break;
  }
}

WaitResult SynthesisService::tryWait(JobId Id) {
  std::unique_lock<std::mutex> Lock(M);
  auto It = Jobs.find(Id);
  if (It == Jobs.end())
    return WaitResult{WaitResult::Status::Unknown, nullptr};
  Job &J = *It->second;
  DoneCV.wait(Lock, [&] { return J.State == JobState::Done; });
  return WaitResult{WaitResult::Status::Done, &J.Outcome};
}

WaitResult SynthesisService::waitFor(JobId Id, double Seconds) {
  std::unique_lock<std::mutex> Lock(M);
  auto It = Jobs.find(Id);
  if (It == Jobs.end())
    return WaitResult{WaitResult::Status::Unknown, nullptr};
  Job &J = *It->second;
  // wait_for re-evaluates the predicate after every wakeup (spurious or
  // not) and once more at the deadline, so a completion racing the
  // timeout is always reported as Done.
  bool Done = DoneCV.wait_for(Lock, std::chrono::duration<double>(Seconds),
                              [&] { return J.State == JobState::Done; });
  if (!Done)
    return WaitResult{WaitResult::Status::Timeout, nullptr};
  return WaitResult{WaitResult::Status::Done, &J.Outcome};
}

JobPhase SynthesisService::poll(JobId Id) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Jobs.find(Id);
  if (It == Jobs.end())
    return JobPhase::Unknown;
  switch (It->second->State) {
  case JobState::Pending:
    return JobPhase::Pending;
  case JobState::Running:
    return JobPhase::Running;
  case JobState::Done:
    break;
  }
  return JobPhase::Done;
}

void SynthesisService::beginDrain() {
  std::lock_guard<std::mutex> Lock(M);
  Draining = true;
}

bool SynthesisService::awaitIdle(double TimeoutSec) {
  std::unique_lock<std::mutex> Lock(M);
  // Every transition that can complete the predicate (a job finishing,
  // including the cancelled-while-queued path) notifies DoneCV, so
  // waiting on it observes idleness without polling.
  return DoneCV.wait_for(Lock, std::chrono::duration<double>(TimeoutSec),
                         [&] { return Queue.empty() && RunningJobs == 0; });
}

ServiceStats SynthesisService::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  ServiceStats S = Counters;
  S.QueueDepth = Queue.size();
  S.Running = RunningJobs;
  S.Draining = Draining;
  return S;
}

const JobOutcome &SynthesisService::wait(JobId Id) {
  std::unique_lock<std::mutex> Lock(M);
  auto It = Jobs.find(Id);
  if (It == Jobs.end()) {
    // A stale or foreign id is a caller bug, but this is a public API:
    // fail loudly in every build mode rather than dereferencing end().
    std::fprintf(stderr, "SynthesisService::wait: unknown job id %llu\n",
                 static_cast<unsigned long long>(Id));
    std::abort();
  }
  Job &J = *It->second;
  DoneCV.wait(Lock, [&] { return J.State == JobState::Done; });
  return J.Outcome;
}

bool SynthesisService::cancel(JobId Id) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Jobs.find(Id);
  if (It == Jobs.end() || It->second->State == JobState::Done)
    return false;
  It->second->Token.cancel();
  return true;
}

void SynthesisService::workerLoop() {
  for (;;) {
    Job *J = nullptr;
    size_t ThreadBudget = 1;
    {
      std::unique_lock<std::mutex> Lock(M);
      // Admission control: never run more jobs at once than the machine
      // has hardware threads — a pool sized past the machine would
      // otherwise oversubscribe it and run slower than one worker.
      WorkCV.wait(Lock, [&] {
        return Stopping || (!Queue.empty() && RunningJobs < HardwareThreads);
      });
      if (Stopping)
        return;
      JobId Id = Queue.front();
      Queue.pop_front();
      J = Jobs.find(Id)->second.get();
      J->State = JobState::Running;
      J->Outcome.QueueSec = secondsBetween(J->Submitted, Clock::now());
      if (J->Token.cancelled()) {
        // Cancelled while still queued: complete without running.
        J->Outcome.St = JobOutcome::Status::Cancelled;
        J->State = JobState::Done;
        noteDoneLocked(J->Outcome);
        DoneCV.notify_all();
        continue;
      }
      ++RunningJobs;
      ThreadBudget = std::max<size_t>(1, HardwareThreads / RunningJobs);
    }
    const auto RunStart = Clock::now();
    runJob(*J, ThreadBudget);
    {
      std::lock_guard<std::mutex> Lock(M);
      --RunningJobs;
      J->Outcome.RunSec = secondsBetween(RunStart, Clock::now());
      J->State = JobState::Done;
      noteDoneLocked(J->Outcome);
    }
    WorkCV.notify_one(); // a slot freed up: admit the next queued job
    DoneCV.notify_all();
  }
}

void SynthesisService::runJob(Job &J, size_t ThreadBudget) {
  JobOutcome &Out = J.Outcome;

  // --- Resolve the input to flat CSG ----------------------------------
  TermPtr Flat = J.Spec.Input;
  if (!Flat) {
    if (J.Spec.SourceIsScad) {
      scad::ScadResult R = scad::parseScad(J.Spec.Source);
      if (!R) {
        Out.St = JobOutcome::Status::Failed;
        Out.Error = "scad: " + R.Error;
        return;
      }
      Flat = R.Value;
    } else {
      ParseResult R = parseSexp(J.Spec.Source);
      if (!R) {
        Out.St = JobOutcome::Status::Failed;
        Out.Error = R.Error;
        return;
      }
      if (isFlatCsg(R.Value)) {
        Flat = R.Value;
      } else {
        EvalResult E = evalToFlatCsg(R.Value);
        if (!E) {
          Out.St = JobOutcome::Status::Failed;
          Out.Error = "input does not flatten: " + E.Error;
          return;
        }
        Flat = E.Value;
      }
    }
  }
  if (!isFlatCsg(Flat)) {
    Out.St = JobOutcome::Status::Failed;
    Out.Error = "input is not flat CSG";
    return;
  }

  // --- Options: thread budget, cancellation token ----------------------
  // A forced ServiceConfig count wins; otherwise a job that pinned its
  // own NumThreads keeps it and everything else gets the admission-time
  // budget. NumThreads never changes results, only wall clock.
  SynthesisOptions Opts = J.Spec.Options;
  if (Cfg.JobNumThreads != 0)
    Opts.Limits.NumThreads = Cfg.JobNumThreads;
  else if (Opts.Limits.NumThreads == 0)
    Opts.Limits.NumThreads = ThreadBudget;

  // --- Result cache ----------------------------------------------------
  // The key is computed before the token is attached: cancellation state
  // is per-request, not part of the result's identity.
  CacheKey Key = makeCacheKey(Flat, RulesFp, Opts);
  if (Cfg.EnableCache) {
    if (std::optional<std::vector<RankedTerm>> Hit = Cache.lookup(Key)) {
      Out.St = JobOutcome::Status::CacheHit;
      Out.Result.Programs = std::move(*Hit);
      return;
    }
  }

  // --- Warm-start planning (snapshot tier) -----------------------------
  // A near-miss request — same saturation-shaping key, but deeper fuel, a
  // different cost function, or a small numeric edit — restores the
  // captured pipeline state instead of saturating from scratch. The
  // Synthesizer validates everything again and falls back to cold on any
  // mismatch, so planning here is best-effort.
  const bool SnapshotTier = Cfg.EnableWarmStart && Opts.MainLoopIters == 1;
  CacheKey SnapKey;
  uint64_t ExactHash = 0;
  WarmStart WS;
  bool WarmPlanned = false;
  if (SnapshotTier) {
    SnapKey = makeSnapshotKey(Flat, RulesFp, Opts);
    ExactHash = exactTermFingerprint(Flat);
    if (std::optional<SnapshotEntry> Entry = Cache.lookupSnapshot(SnapKey)) {
      const bool SameInput = Entry->InputHash == ExactHash;
      // The request must not ask for less fuel than the capture consumed,
      // and the capture must have stopped deterministically.
      bool Usable = Opts.Limits.IterLimit >= Entry->IterationsDone &&
                    (Entry->Stop == StopReason::Saturated ||
                     Entry->Stop == StopReason::IterLimit ||
                     Entry->Stop == StopReason::NodeLimit);
      if (Usable && !SameInput) {
        // An edit re-seeds new nodes into the restored graph; a
        // *saturated* capture closes over them by resuming, and an
        // iteration-limited one qualifies only with fuel to spare (the
        // Synthesizer then demands a quiescent resumed tail). The edit
        // must also be small and purely numeric — the structure key says
        // it is, but keys hash and the walk is the proof.
        size_t Edits = 0;
        ParseResult Stored = parseSexp(Entry->InputSexp);
        Usable = (Entry->Stop == StopReason::Saturated ||
                  (Entry->Stop == StopReason::IterLimit &&
                   Opts.Limits.IterLimit > Entry->IterationsDone)) &&
                 Stored && countNumericEdits(*Stored.Value, *Flat, Edits) &&
                 Edits >= 1 && Edits <= Cfg.WarmMaxEditedLeaves;
      }
      if (Usable) {
        WS.Graph = std::move(Entry->Graph);
        WS.Cursors = std::move(Entry->Cursors);
        WS.Extract = std::move(Entry->Extract);
        // The extraction engine only transfers when it was derived under
        // this request's cost function and k; otherwise it is re-derived
        // from the restored graph (identical result, just slower).
        WS.ExtractUsable = Entry->Cost == Opts.Cost &&
                           Entry->TopK == Opts.TopK && !WS.Extract.empty();
        WS.SameInput = SameInput;
        WarmPlanned = true;
      }
    }
  }

  // --- Run the pipeline -------------------------------------------------
  if (J.Spec.DeadlineSec > 0.0)
    J.Token.armDeadline(J.Spec.DeadlineSec);
  Opts.Limits.Cancel = J.Token;
  Opts.CaptureSnapshot = SnapshotTier;

  Out.Result = WarmPlanned ? Synthesizer(Opts).synthesizeWarm(Flat, WS)
                           : Synthesizer(Opts).synthesize(Flat);
  if (Out.Result.Stats.Cancelled) {
    Out.St = JobOutcome::Status::Cancelled;
    return; // partial results are never cached
  }
  Out.St = JobOutcome::Status::Succeeded;
  // A run truncated by the runner's wall-clock safety valve — in any
  // main-loop round, not just the last one the report retains — is as
  // machine- and load-dependent as a deadline cancellation: caching it
  // would permanently serve this machine's partial result to every
  // process sharing the cache. Iteration/node limits are deterministic
  // in (input, options) and stay cacheable.
  if (Cfg.EnableCache && !Out.Result.Stats.WallClockTruncated)
    Cache.store(Key, Out.Result.Programs);
  // Park the warm-start capture in the snapshot tier. The Synthesizer
  // skips capture for non-deterministic stops and for warm runs whose
  // state equals the snapshot they restored, so Present already implies
  // "new, deterministic state worth keeping".
  if (SnapshotTier && Out.Result.Snapshot.Present &&
      !Out.Result.Stats.WallClockTruncated) {
    SnapshotEntry E;
    E.InputHash = ExactHash;
    E.InputSexp = printSexp(Flat);
    E.Cost = Opts.Cost;
    E.TopK = Opts.TopK;
    E.Stop = Out.Result.Snapshot.Stop;
    E.IterationsDone = Out.Result.Snapshot.IterationsDone;
    E.Cursors = std::move(Out.Result.Snapshot.Cursors);
    E.Extract = std::move(Out.Result.Snapshot.Extract);
    E.Graph = std::move(Out.Result.Snapshot.Graph);
    Out.Result.Snapshot.Present = false; // blobs moved out
    Cache.storeSnapshot(SnapKey, E);
  }
}
