//===-- service/SynthesisService.cpp - Concurrent job scheduler -----------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Worker-pool implementation of the synthesis service. One mutex guards
/// the queue and the job table; synthesis itself runs outside the lock,
/// so the lock is only ever held for queue surgery. Cancellation is
/// token-based: cancel() (and the per-job deadline) flips the token the
/// Runner and Synthesizer poll, so no thread is ever interrupted — a
/// cancelled job parks its partial result like any other completion.
///
//===----------------------------------------------------------------------===//

#include "service/SynthesisService.h"

#include "cad/Eval.h"
#include "cad/Sexp.h"
#include "rewrites/Rules.h"
#include "scad/ScadParser.h"

#include <cstdio>
#include <cstdlib>

using namespace shrinkray;
using namespace shrinkray::service;

namespace {

using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point A, Clock::time_point B) {
  return std::chrono::duration<double>(B - A).count();
}

} // namespace

SynthesisService::SynthesisService(ServiceConfig Cfg)
    : Cfg(Cfg), Cache(Cfg.CacheDir, Cfg.CacheLimits),
      RulesFp(ruleDatabaseFingerprint(pipelineRules())) {
  size_t N = Cfg.NumWorkers;
  if (N == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    N = HW ? HW : 1;
  }
  Workers.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

SynthesisService::~SynthesisService() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
    // Ask running jobs to wind down...
    for (auto &[Id, J] : Jobs)
      if (J->State != JobState::Done)
        J->Token.cancel();
    // ...and complete still-queued jobs as Cancelled right here: the
    // workers exit on Stopping without draining the queue, and a thread
    // blocked in wait() on an abandoned Pending job would otherwise
    // sleep through teardown and then race the condvar's destruction.
    for (JobId Id : Queue) {
      Job &J = *Jobs.find(Id)->second;
      if (J.State == JobState::Pending) {
        J.Outcome.St = JobOutcome::Status::Cancelled;
        J.State = JobState::Done;
      }
    }
    Queue.clear();
  }
  WorkCV.notify_all();
  DoneCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

SynthesisService::JobId SynthesisService::submit(JobSpec Spec) {
  JobId Id;
  {
    std::lock_guard<std::mutex> Lock(M);
    Id = NextId++;
    auto J = std::make_unique<Job>();
    J->Spec = std::move(Spec);
    J->Submitted = Clock::now();
    Jobs.emplace(Id, std::move(J));
    Queue.push_back(Id);
  }
  WorkCV.notify_one();
  return Id;
}

const JobOutcome &SynthesisService::wait(JobId Id) {
  std::unique_lock<std::mutex> Lock(M);
  auto It = Jobs.find(Id);
  if (It == Jobs.end()) {
    // A stale or foreign id is a caller bug, but this is a public API:
    // fail loudly in every build mode rather than dereferencing end().
    std::fprintf(stderr, "SynthesisService::wait: unknown job id %llu\n",
                 static_cast<unsigned long long>(Id));
    std::abort();
  }
  Job &J = *It->second;
  DoneCV.wait(Lock, [&] { return J.State == JobState::Done; });
  return J.Outcome;
}

bool SynthesisService::cancel(JobId Id) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Jobs.find(Id);
  if (It == Jobs.end() || It->second->State == JobState::Done)
    return false;
  It->second->Token.cancel();
  return true;
}

void SynthesisService::workerLoop() {
  for (;;) {
    Job *J = nullptr;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkCV.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Stopping)
        return;
      JobId Id = Queue.front();
      Queue.pop_front();
      J = Jobs.find(Id)->second.get();
      J->State = JobState::Running;
      J->Outcome.QueueSec = secondsBetween(J->Submitted, Clock::now());
      if (J->Token.cancelled()) {
        // Cancelled while still queued: complete without running.
        J->Outcome.St = JobOutcome::Status::Cancelled;
        J->State = JobState::Done;
        DoneCV.notify_all();
        continue;
      }
    }
    const auto RunStart = Clock::now();
    runJob(*J);
    {
      std::lock_guard<std::mutex> Lock(M);
      J->Outcome.RunSec = secondsBetween(RunStart, Clock::now());
      J->State = JobState::Done;
    }
    DoneCV.notify_all();
  }
}

void SynthesisService::runJob(Job &J) {
  JobOutcome &Out = J.Outcome;

  // --- Resolve the input to flat CSG ----------------------------------
  TermPtr Flat = J.Spec.Input;
  if (!Flat) {
    if (J.Spec.SourceIsScad) {
      scad::ScadResult R = scad::parseScad(J.Spec.Source);
      if (!R) {
        Out.St = JobOutcome::Status::Failed;
        Out.Error = "scad: " + R.Error;
        return;
      }
      Flat = R.Value;
    } else {
      ParseResult R = parseSexp(J.Spec.Source);
      if (!R) {
        Out.St = JobOutcome::Status::Failed;
        Out.Error = R.Error;
        return;
      }
      if (isFlatCsg(R.Value)) {
        Flat = R.Value;
      } else {
        EvalResult E = evalToFlatCsg(R.Value);
        if (!E) {
          Out.St = JobOutcome::Status::Failed;
          Out.Error = "input does not flatten: " + E.Error;
          return;
        }
        Flat = E.Value;
      }
    }
  }
  if (!isFlatCsg(Flat)) {
    Out.St = JobOutcome::Status::Failed;
    Out.Error = "input is not flat CSG";
    return;
  }

  // --- Options: thread override, cancellation token -------------------
  SynthesisOptions Opts = J.Spec.Options;
  if (Cfg.JobNumThreads != 0)
    Opts.Limits.NumThreads = Cfg.JobNumThreads;

  // --- Result cache ----------------------------------------------------
  // The key is computed before the token is attached: cancellation state
  // is per-request, not part of the result's identity.
  CacheKey Key = makeCacheKey(Flat, RulesFp, Opts);
  if (Cfg.EnableCache) {
    if (std::optional<std::vector<RankedTerm>> Hit = Cache.lookup(Key)) {
      Out.St = JobOutcome::Status::CacheHit;
      Out.Result.Programs = std::move(*Hit);
      return;
    }
  }

  // --- Run the pipeline -------------------------------------------------
  if (J.Spec.DeadlineSec > 0.0)
    J.Token.armDeadline(J.Spec.DeadlineSec);
  Opts.Limits.Cancel = J.Token;

  Out.Result = Synthesizer(Opts).synthesize(Flat);
  if (Out.Result.Stats.Cancelled) {
    Out.St = JobOutcome::Status::Cancelled;
    return; // partial results are never cached
  }
  Out.St = JobOutcome::Status::Succeeded;
  // A run truncated by the runner's wall-clock safety valve — in any
  // main-loop round, not just the last one the report retains — is as
  // machine- and load-dependent as a deadline cancellation: caching it
  // would permanently serve this machine's partial result to every
  // process sharing the cache. Iteration/node limits are deterministic
  // in (input, options) and stay cacheable.
  if (Cfg.EnableCache && !Out.Result.Stats.WallClockTruncated)
    Cache.store(Key, Out.Result.Programs);
}
