//===-- service/SynthesisService.h - Concurrent job scheduler ---*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesis service: a fixed pool of worker threads draining a FIFO
/// job queue, with per-job deadlines, cooperative cancellation, and the
/// content-addressed result cache in front of the pipeline. This is the
/// layer a batch driver (tools/shrinkray_batch), a throughput harness
/// (bench_throughput), or a future RPC front end submits work to.
///
/// Job lifecycle:
///
///   submit(JobSpec)  ->  Pending (queued)
///                    ->  Running (a worker picked it up; the deadline is
///                        armed from this moment, so queue time never
///                        counts against a job's budget)
///                    ->  Done, with one of four outcomes:
///                          CacheHit   — served from the result cache
///                          Succeeded  — full pipeline run (stored in the
///                                       cache for the next request)
///                          Cancelled  — deadline or cancel() fired; the
///                                       result is partial but well-formed
///                          Failed     — unparseable/invalid input
///
/// Concurrency contract: each job's synthesis is a pure function of its
/// input and options (the engines share no mutable state across jobs, and
/// the symbol and term interners are thread-safe), so N jobs on K workers
/// produce outputs byte-identical to the same jobs run one at a time — the
/// scheduler only changes wall-clock, never results. The scheduler never
/// oversubscribes the machine: at most hardware_concurrency jobs run at
/// once (extra workers idle), and each admitted job that has not pinned
/// its own RunnerLimits::NumThreads gets a thread budget of
/// max(1, hardware threads / jobs currently running).
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SERVICE_SYNTHESISSERVICE_H
#define SHRINKRAY_SERVICE_SYNTHESISSERVICE_H

#include "service/ResultCache.h"
#include "support/Cancel.h"

#include <condition_variable>
#include <deque>
#include <memory>
#include <optional>
#include <thread>

namespace shrinkray {
namespace service {

/// Service-wide configuration.
struct ServiceConfig {
  /// Worker threads. 0 = one per hardware thread.
  size_t NumWorkers = 4;
  /// Result-cache directory; empty = in-memory cache only.
  std::string CacheDir;
  /// Master switch for the result cache (lookups and stores).
  bool EnableCache = true;
  /// Result-cache retention budgets (ResultCache::Limits); all zero by
  /// default, i.e. unbounded, matching the pre-budget behavior.
  ResultCache::Limits CacheLimits;
  /// Override for each job's RunnerLimits::NumThreads. The default of 0
  /// budgets automatically: a job that pinned its own NumThreads keeps
  /// it, and every other job gets max(1, hardware threads / jobs
  /// currently running) when a worker picks it up. Any nonzero value
  /// forces that thread count on every job. Results are bit-identical at
  /// any setting, so this is purely a scheduling choice.
  size_t JobNumThreads = 0;
  /// Master switch for the snapshot tier: successful single-round jobs
  /// capture their post-saturation pipeline state, and near-miss requests
  /// (same input with deeper fuel, a different cost function, or a small
  /// numeric edit) restore it instead of saturating from scratch. Warm
  /// results are identical to cold ones — this only changes wall clock.
  bool EnableWarmStart = true;
  /// Edit ceiling for the warm path: a request whose input differs from a
  /// captured one in more than this many numeric leaf values runs cold (a
  /// large edit invalidates most of the captured saturation anyway).
  size_t WarmMaxEditedLeaves = 4;
  /// Admission bound on the FIFO queue, enforced by trySubmit() only:
  /// once this many jobs are queued (not yet picked up by a worker),
  /// trySubmit rejects instead of growing the queue. 0 = unbounded.
  /// submit() deliberately ignores the bound — in-process batch callers
  /// own their own backlog; the bound exists for network front ends that
  /// must push backpressure to clients instead of buffering the internet.
  size_t MaxQueueDepth = 0;
};

/// One synthesis request.
struct JobSpec {
  std::string Name;        ///< label for logs/results (e.g. file name)
  /// The input, one of:
  ///  * Input     — an in-memory flat-CSG term (takes precedence), or
  ///  * Source    — program text: OpenSCAD when SourceIsScad, else a
  ///                LambdaCAD s-expression (flattened first when it
  ///                contains loops).
  TermPtr Input;
  std::string Source;
  bool SourceIsScad = false;
  SynthesisOptions Options;
  /// Wall-clock budget measured from the moment a worker starts the job;
  /// 0 = no deadline. Enforced cooperatively (see support/Cancel.h).
  double DeadlineSec = 0.0;
};

/// Terminal state of a job.
struct JobOutcome {
  enum class Status { CacheHit, Succeeded, Cancelled, Failed };
  Status St = Status::Failed;
  /// Synthesis output. On CacheHit only Programs is populated; on
  /// Cancelled it holds the partial result; on Failed it is empty.
  SynthesisResult Result;
  std::string Error;       ///< diagnostic when Failed
  double QueueSec = 0.0;   ///< submit -> worker pickup
  double RunSec = 0.0;     ///< worker pickup -> done

  bool ok() const { return St != Status::Failed; }
};

/// Non-blocking view of where a job is in its lifecycle. Unknown is an
/// error value — the id was never issued by this service (or the caller
/// corrupted it); unlike wait(), the query APIs report it instead of
/// aborting, because a network front end forwards ids from untrusted
/// peers.
enum class JobPhase { Unknown, Pending, Running, Done };

/// Result of a non-aborting wait (tryWait/waitFor).
struct WaitResult {
  enum class Status { Done, Timeout, Unknown };
  Status St = Status::Unknown;
  /// Set only when St == Done; the reference stays valid for the
  /// service's lifetime, like wait()'s return.
  const JobOutcome *Outcome = nullptr;
};

/// Service-wide counters (a consistent snapshot under the service lock).
struct ServiceStats {
  size_t Submitted = 0;   ///< jobs accepted (submit + successful trySubmit)
  size_t Rejected = 0;    ///< trySubmit refusals (queue full or draining)
  size_t Completed = 0;   ///< jobs that reached Done, any outcome
  size_t CacheHits = 0;
  size_t Succeeded = 0;
  size_t Cancelled = 0;
  size_t Failed = 0;
  size_t QueueDepth = 0;  ///< queued, not yet picked up
  size_t Running = 0;     ///< currently executing on a worker
  bool Draining = false;
};

/// Fixed-pool synthesis job scheduler. All public methods are
/// thread-safe; JobIds are process-local and never reused.
class SynthesisService {
public:
  using JobId = uint64_t;

  explicit SynthesisService(ServiceConfig Cfg = {});

  /// Requests cancellation of the running jobs, completes still-queued
  /// jobs as Cancelled (so a concurrent wait() on any job returns rather
  /// than sleeping through teardown), then joins the workers. Outcomes
  /// of unwaited jobs are discarded with the service; waiters must
  /// return before the service is destroyed, as the outcomes they
  /// reference live in it.
  ~SynthesisService();

  SynthesisService(const SynthesisService &) = delete;
  SynthesisService &operator=(const SynthesisService &) = delete;

  /// Enqueues a job; returns immediately.
  JobId submit(JobSpec Spec);

  /// Admission-controlled submit: rejects (returns nullopt) instead of
  /// enqueueing when the service is draining or the queue already holds
  /// Cfg.MaxQueueDepth jobs. This is the entry point for callers that
  /// must bound their backlog — the RPC server turns a nullopt into an
  /// explicit `rejected: queue_full` response.
  std::optional<JobId> trySubmit(JobSpec Spec);

  /// Blocks until \p Id is done; the reference stays valid for the
  /// service's lifetime. Calling this with an id the service never
  /// issued is a caller bug and aborts loudly — embedders handling
  /// untrusted ids use tryWait/waitFor instead.
  const JobOutcome &wait(JobId Id);

  /// Non-aborting wait(): blocks until \p Id is done, or returns
  /// WaitResult{Unknown} immediately for an id this service never
  /// issued. Never aborts.
  WaitResult tryWait(JobId Id);

  /// Timed tryWait: additionally returns WaitResult{Timeout} when the
  /// job is still Pending/Running after \p Seconds (>= 0; 0 polls). The
  /// completion check re-runs after every wakeup, so a completion racing
  /// the deadline reports Done, and spurious wakeups never return early.
  WaitResult waitFor(JobId Id, double Seconds);

  /// Non-blocking phase query; JobPhase::Unknown for foreign ids.
  JobPhase poll(JobId Id) const;

  /// Stops admission: every later trySubmit is rejected (submit still
  /// works — in-process callers draining their own backlog keep their
  /// contract). Queued and running jobs are unaffected; pair with
  /// awaitIdle() to let them finish, or cancel them for a fast drain.
  void beginDrain();

  /// Blocks until no job is queued or running, or \p TimeoutSec passed;
  /// returns true when idle. With admission stopped (beginDrain), idle
  /// is terminal — this is the server's graceful-shutdown barrier.
  bool awaitIdle(double TimeoutSec);

  /// Consistent snapshot of the service counters.
  ServiceStats stats() const;

  /// Requests cooperative cancellation of \p Id. A still-queued job
  /// completes immediately as Cancelled without running; a running job
  /// winds down at its next cancellation check with a partial result.
  /// Returns false for unknown or already-finished jobs.
  bool cancel(JobId Id);

  size_t numWorkers() const { return Workers.size(); }

  ResultCache &cache() { return Cache; }

private:
  enum class JobState { Pending, Running, Done };

  struct Job {
    JobSpec Spec;
    CancelToken Token = CancelToken::make();
    JobState State = JobState::Pending;
    JobOutcome Outcome;
    std::chrono::steady_clock::time_point Submitted;
  };

  ServiceConfig Cfg;
  ResultCache Cache;
  uint64_t RulesFp; ///< pipeline rule-database fingerprint, computed once

  mutable std::mutex M;
  std::condition_variable WorkCV; ///< workers: queue non-empty or stopping
  std::condition_variable DoneCV; ///< waiters: some job finished
  std::deque<JobId> Queue;
  std::unordered_map<JobId, std::unique_ptr<Job>> Jobs;
  JobId NextId = 1;
  bool Stopping = false;
  bool Draining = false;      ///< beginDrain(): trySubmit rejects
  size_t HardwareThreads = 1; ///< hardware_concurrency, floored at 1
  size_t RunningJobs = 0;     ///< jobs a worker is executing right now
  ServiceStats Counters;      ///< cumulative totals (queue/run fields unused)
  std::vector<std::thread> Workers;

  JobId enqueueLocked(JobSpec Spec);
  /// Counter bookkeeping for a job entering Done; call with M held,
  /// after Outcome.St is final and before notifying DoneCV.
  void noteDoneLocked(const JobOutcome &Out);
  void workerLoop();
  /// Runs \p J outside the lock; fills J.Outcome. \p ThreadBudget is the
  /// admission-time value of max(1, hardware threads / running jobs),
  /// applied unless the job pinned NumThreads (or Cfg forces a count).
  void runJob(Job &J, size_t ThreadBudget);
};

} // namespace service
} // namespace shrinkray

#endif // SHRINKRAY_SERVICE_SYNTHESISSERVICE_H
