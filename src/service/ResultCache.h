//===-- service/ResultCache.h - Content-addressed result cache --*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache of synthesis results, so the service layer
/// never repeats work it has already done. A cached entry is addressed by
/// three fingerprints:
///
///  * the *value fingerprint* of the input term — Int/Float respellings
///    of the same model hit the same entry, and symbols contribute their
///    spellings rather than process-local interning ids, so the key is
///    stable across the processes a disk cache is shared between,
///  * the *rule-database fingerprint* (rule names + left-hand-side
///    patterns + order), so a rule change invalidates every entry rather
///    than serving programs a different database produced (rules with
///    programmatic right-hand sides must be renamed when their appliers
///    change semantics — the applier itself is not hashable), and
///  * the *options fingerprint* over every result-relevant knob of
///    SynthesisOptions (fuel, solver band, cost, top-k, ...). Knobs that
///    cannot change results are deliberately excluded: NumThreads
///    (saturation is bit-identical at any thread count) and the
///    cancellation token (cancelled runs are never stored).
///
/// The cached value is the ranked program list; terms round-trip through
/// the canonical s-expression syntax (bit-exact) and costs through raw
/// IEEE bits, so a hit reproduces the miss's output byte for byte.
/// Entries live in memory and, when a directory is configured, as one
/// file per key — so the cache persists across processes and can be
/// shared by concurrent ones (files are written to a temporary name and
/// atomically renamed into place). All methods are thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SERVICE_RESULTCACHE_H
#define SHRINKRAY_SERVICE_RESULTCACHE_H

#include "egraph/Rewrite.h"
#include "synth/Synthesizer.h"

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace shrinkray {
namespace service {

/// Address of one cached synthesis result.
struct CacheKey {
  uint64_t InputHash = 0;   ///< stable value fingerprint of the flat input
  uint64_t RulesFp = 0;     ///< ruleDatabaseFingerprint
  uint64_t OptionsFp = 0;   ///< optionsFingerprint

  /// 48-hex-character spelling; doubles as the on-disk file stem.
  std::string hex() const;

  friend bool operator==(const CacheKey &A, const CacheKey &B) {
    return A.InputHash == B.InputHash && A.RulesFp == B.RulesFp &&
           A.OptionsFp == B.OptionsFp;
  }
};

/// Fingerprint of a rewrite-rule database: rule count, names, and
/// left-hand-side patterns, order-sensitive.
uint64_t ruleDatabaseFingerprint(const std::vector<Rewrite> &Rules);

/// Fingerprint of every SynthesisOptions field that can influence the
/// synthesized programs (see the file comment for what is excluded).
uint64_t optionsFingerprint(const SynthesisOptions &Opts);

/// Assembles the cache key for synthesizing \p FlatInput under \p Opts
/// with a rule database whose fingerprint is \p RulesFp.
CacheKey makeCacheKey(const TermPtr &FlatInput, uint64_t RulesFp,
                      const SynthesisOptions &Opts);

/// Thread-safe memory + optional-disk result cache.
class ResultCache {
public:
  struct Stats {
    size_t Hits = 0;     ///< lookups answered (memory or disk)
    size_t DiskHits = 0; ///< subset of Hits answered by reading a file
    size_t Misses = 0;
    size_t Stores = 0;
    size_t MemEvictions = 0;  ///< memory entries dropped by the LRU cap
    size_t DiskEvictions = 0; ///< entry files deleted by the disk sweep
  };

  /// Retention budgets. Zero means unbounded — the cache then behaves
  /// exactly as it did before budgets existed.
  struct Limits {
    /// Memory tier: max resident entries; least-recently-used beyond the
    /// cap are dropped (their disk twin, if any, stays readable).
    size_t MaxMemEntries = 0;
    /// Disk tier: total `.srres` bytes the sweep trims towards,
    /// oldest-first by modification time.
    uintmax_t MaxDiskBytes = 0;
    /// Disk tier: entries (and orphaned `.tmp.` files from crashed
    /// writers) older than this many seconds are swept regardless of the
    /// byte budget.
    double MaxAgeSec = 0.0;
  };

  /// \p Dir empty = memory-only; otherwise entries also persist as
  /// `<Dir>/<key>.srres` files (the directory is created on first store).
  /// (Two overloads, not one defaulted parameter: GCC rejects a `= {}`
  /// default argument of a nested aggregate with member initializers.)
  explicit ResultCache(std::string Dir = std::string());
  ResultCache(std::string Dir, Limits Lim);

  /// Enforces the disk budgets now (store() calls this on an amortized
  /// schedule; exposed so maintenance and tests can run it on demand).
  /// Deletion races benignly with concurrent writers: rename-into-place
  /// either lands before the sweep's directory scan (and is subject to
  /// it) or recreates the entry after it — never a torn file either way.
  void sweepDisk();

  /// The cached ranked programs for \p Key, or nullopt. A disk hit is
  /// promoted into memory; an unreadable or corrupt file is a miss.
  std::optional<std::vector<RankedTerm>> lookup(const CacheKey &Key);

  /// Caches \p Programs under \p Key (memory, and disk when configured).
  void store(const CacheKey &Key, const std::vector<RankedTerm> &Programs);

  Stats stats() const;

  const std::string &dir() const { return Dir; }

private:
  using MemEntry = std::pair<std::string, std::vector<RankedTerm>>;

  std::string Dir;
  Limits Lim;
  mutable std::mutex M;
  /// Memory tier: recency list (front = most recent) + key index into it.
  std::list<MemEntry> MemList;
  std::unordered_map<std::string, std::list<MemEntry>::iterator> Mem;
  Stats St;
  size_t StoresSinceSweep = 0;

  std::string pathFor(const CacheKey &Key) const;

  /// Inserts/refreshes \p Hex at the front of the recency list and
  /// applies the memory cap. Caller holds M.
  void insertMemLocked(const std::string &Hex,
                       const std::vector<RankedTerm> &Programs);
};

} // namespace service
} // namespace shrinkray

#endif // SHRINKRAY_SERVICE_RESULTCACHE_H
