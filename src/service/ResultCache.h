//===-- service/ResultCache.h - Content-addressed result cache --*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache of synthesis results, so the service layer
/// never repeats work it has already done. A cached entry is addressed by
/// three fingerprints:
///
///  * the *value fingerprint* of the input term — Int/Float respellings
///    of the same model hit the same entry, and symbols contribute their
///    spellings rather than process-local interning ids, so the key is
///    stable across the processes a disk cache is shared between,
///  * the *rule-database fingerprint* (rule names + left-hand-side
///    patterns + order), so a rule change invalidates every entry rather
///    than serving programs a different database produced (rules with
///    programmatic right-hand sides must be renamed when their appliers
///    change semantics — the applier itself is not hashable), and
///  * the *options fingerprint* over every result-relevant knob of
///    SynthesisOptions (fuel, solver band, cost, top-k, ...). Knobs that
///    cannot change results are deliberately excluded: NumThreads
///    (saturation is bit-identical at any thread count) and the
///    cancellation token (cancelled runs are never stored).
///
/// The cached value is the ranked program list; terms round-trip through
/// the canonical s-expression syntax (bit-exact) and costs through raw
/// IEEE bits, so a hit reproduces the miss's output byte for byte.
/// Entries live in memory and, when a directory is configured, as one
/// file per key — so the cache persists across processes and can be
/// shared by concurrent ones (files are written to a temporary name and
/// atomically renamed into place). All methods are thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SERVICE_RESULTCACHE_H
#define SHRINKRAY_SERVICE_RESULTCACHE_H

#include "egraph/Rewrite.h"
#include "synth/Synthesizer.h"

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace shrinkray {
namespace service {

/// Address of one cached synthesis result.
struct CacheKey {
  uint64_t InputHash = 0;   ///< stable value fingerprint of the flat input
  uint64_t RulesFp = 0;     ///< ruleDatabaseFingerprint
  uint64_t OptionsFp = 0;   ///< optionsFingerprint

  /// 48-hex-character spelling; doubles as the on-disk file stem.
  std::string hex() const;

  friend bool operator==(const CacheKey &A, const CacheKey &B) {
    return A.InputHash == B.InputHash && A.RulesFp == B.RulesFp &&
           A.OptionsFp == B.OptionsFp;
  }
};

/// Fingerprint of a rewrite-rule database: rule count, names, and
/// left-hand-side patterns, order-sensitive.
uint64_t ruleDatabaseFingerprint(const std::vector<Rewrite> &Rules);

/// Fingerprint of every SynthesisOptions field that can influence the
/// synthesized programs (see the file comment for what is excluded).
uint64_t optionsFingerprint(const SynthesisOptions &Opts);

/// Assembles the cache key for synthesizing \p FlatInput under \p Opts
/// with a rule database whose fingerprint is \p RulesFp.
CacheKey makeCacheKey(const TermPtr &FlatInput, uint64_t RulesFp,
                      const SynthesisOptions &Opts);

/// Process-stable, value-level fingerprint of \p T (the InputHash of
/// makeCacheKey, exposed for the snapshot tier's exact-input comparison).
uint64_t exactTermFingerprint(const TermPtr &T);

/// Like exactTermFingerprint, but every numeric literal hashes as one
/// generic "number here" token: two models that differ only in numeric
/// leaf *values* collide on purpose. This is the snapshot tier's input
/// dimension — a localized parameter edit lands on the captured model's
/// snapshot, which is exactly the near-miss warm starts accelerate.
uint64_t structureTermFingerprint(const TermPtr &T);

/// Fingerprint of the SynthesisOptions knobs that shape the *saturation
/// mutation sequence* — NodeLimit, MatchLimit, BanLengthIters — and
/// nothing else. Deliberately narrower than optionsFingerprint: fuel
/// (IterLimit) is resumable, and the cost function / top-k / solver knobs
/// only affect phases a warm start re-runs anyway. That split is what
/// lets a deeper-fuel or different-cost request hit a snapshot its exact
/// result key would miss.
uint64_t snapshotOptionsFingerprint(const SynthesisOptions &Opts);

/// Assembles the snapshot-tier key for \p FlatInput under \p Opts:
/// structure fingerprint + rule fingerprint + saturation-shaping options
/// fingerprint, reusing CacheKey's layout and hex spelling (snapshot
/// files use the `.srsnap` extension, so the namespaces cannot collide).
CacheKey makeSnapshotKey(const TermPtr &FlatInput, uint64_t RulesFp,
                         const SynthesisOptions &Opts);

/// One snapshot-tier entry: the pipeline state a successful run captured
/// (SynthesisResult::Snapshot) plus what a later request needs to decide
/// whether — and how — it can warm-start from it.
struct SnapshotEntry {
  uint64_t InputHash = 0;  ///< exactTermFingerprint of the captured input
  std::string InputSexp;   ///< the captured input itself (edit diffing)
  CostKind Cost = CostKind::AstSize; ///< cost fn the engine was derived under
  uint64_t TopK = 0;                 ///< k the engine was derived with
  StopReason Stop = StopReason::Saturated; ///< capture-time stop reason
  uint64_t IterationsDone = 0;             ///< saturation fuel consumed
  std::string Cursors; ///< serializeRunnerCursors bytes
  std::string Extract; ///< KBestExtractor::saveState bytes
  std::string Graph;   ///< EGraph::serialize bytes
};

/// Encodes \p E behind a magic + length + checksum envelope. One checksum
/// covers the whole payload, so any bit flip or truncation anywhere in a
/// stored entry degrades to a diagnostic decode failure — a cache miss —
/// rather than reaching the (individually validated) inner decoders.
std::string encodeSnapshotEntry(const SnapshotEntry &E);

/// Decodes encodeSnapshotEntry bytes into \p Out. Returns "" on success,
/// a diagnostic on any malformation (bad magic, unsupported version,
/// checksum mismatch, truncation, out-of-range enums). Never asserts.
std::string decodeSnapshotEntry(std::string_view Bytes, SnapshotEntry &Out);

/// Thread-safe memory + optional-disk result cache.
class ResultCache {
public:
  struct Stats {
    size_t Hits = 0;     ///< lookups answered (memory or disk)
    size_t DiskHits = 0; ///< subset of Hits answered by reading a file
    size_t Misses = 0;
    size_t Stores = 0;
    size_t MemEvictions = 0;  ///< memory entries dropped by the LRU cap
    size_t DiskEvictions = 0; ///< entry files deleted by the disk sweep
    // Snapshot tier (lookupSnapshot/storeSnapshot); counted separately so
    // the result tier's counters mean exactly what they always did.
    size_t SnapshotHits = 0;
    size_t SnapshotMisses = 0; ///< includes corrupt entries (diagnosed)
    size_t SnapshotStores = 0;
    size_t SnapshotMemEvictions = 0;
    size_t SnapshotDiskEvictions = 0; ///< `.srsnap` files swept from disk
  };

  /// Retention budgets. Zero means unbounded — the cache then behaves
  /// exactly as it did before budgets existed.
  struct Limits {
    /// Memory tier: max resident entries; least-recently-used beyond the
    /// cap are dropped (their disk twin, if any, stays readable).
    size_t MaxMemEntries = 0;
    /// Disk tier: total `.srres` bytes the sweep trims towards,
    /// oldest-first by modification time.
    uintmax_t MaxDiskBytes = 0;
    /// Disk tier: entries (and orphaned `.tmp.` files from crashed
    /// writers) older than this many seconds are swept regardless of the
    /// byte budget. Snapshot entry files (`.srsnap`) count against both
    /// disk budgets exactly like result files — a snapshot blob is
    /// megabytes where a result file is bytes, so a tier that escaped the
    /// budgets would dwarf them.
    double MaxAgeSec = 0.0;
    /// Memory tier: max resident *snapshot* entries. Unlike the other
    /// budgets this one defaults bounded — snapshot blobs are megabytes,
    /// so an unbounded default would leak the working set of every model
    /// a long-lived service touches. 0 = unbounded, as elsewhere.
    size_t MaxMemSnapshots = 4;
  };

  /// \p Dir empty = memory-only; otherwise entries also persist as
  /// `<Dir>/<key>.srres` files (the directory is created on first store).
  /// (Two overloads, not one defaulted parameter: GCC rejects a `= {}`
  /// default argument of a nested aggregate with member initializers.)
  explicit ResultCache(std::string Dir = std::string());
  ResultCache(std::string Dir, Limits Lim);

  /// Enforces the disk budgets now (store() calls this on an amortized
  /// schedule; exposed so maintenance and tests can run it on demand).
  /// Deletion races benignly with concurrent writers: rename-into-place
  /// either lands before the sweep's directory scan (and is subject to
  /// it) or recreates the entry after it — never a torn file either way.
  void sweepDisk();

  /// The cached ranked programs for \p Key, or nullopt. A disk hit is
  /// promoted into memory; an unreadable or corrupt file is a miss.
  std::optional<std::vector<RankedTerm>> lookup(const CacheKey &Key);

  /// Caches \p Programs under \p Key (memory, and disk when configured).
  void store(const CacheKey &Key, const std::vector<RankedTerm> &Programs);

  /// The decoded snapshot entry for \p Key, or nullopt. Mirrors lookup():
  /// memory tier first, then `<Dir>/<key>.srsnap`; a disk hit is promoted
  /// into memory; any decode failure — including a corrupt or truncated
  /// blob — is a miss.
  std::optional<SnapshotEntry> lookupSnapshot(const CacheKey &Key);

  /// Caches the encoded form of \p E under \p Key (memory, and disk when
  /// configured). Counts toward the same amortized sweep schedule as
  /// result stores.
  void storeSnapshot(const CacheKey &Key, const SnapshotEntry &E);

  Stats stats() const;

  const std::string &dir() const { return Dir; }

private:
  using MemEntry = std::pair<std::string, std::vector<RankedTerm>>;
  /// Snapshot memory tier holds the *encoded* blob: lookups re-decode, so
  /// memory and disk hits share one validation path.
  using SnapMemEntry = std::pair<std::string, std::string>;

  std::string Dir;
  Limits Lim;
  mutable std::mutex M;
  /// Memory tier: recency list (front = most recent) + key index into it.
  std::list<MemEntry> MemList;
  std::unordered_map<std::string, std::list<MemEntry>::iterator> Mem;
  /// Snapshot memory tier, same recency scheme, separate budget.
  std::list<SnapMemEntry> SnapMemList;
  std::unordered_map<std::string, std::list<SnapMemEntry>::iterator> SnapMem;
  Stats St;
  size_t StoresSinceSweep = 0;

  std::string pathFor(const CacheKey &Key) const;
  std::string snapshotPathFor(const CacheKey &Key) const;

  /// Inserts/refreshes \p Hex at the front of the recency list and
  /// applies the memory cap. Caller holds M.
  void insertMemLocked(const std::string &Hex,
                       const std::vector<RankedTerm> &Programs);
  void insertSnapMemLocked(const std::string &Hex, const std::string &Blob);

  /// Shared write-side of the disk tiers: tmp-name + atomic rename, then
  /// the amortized sweep when \p Sweep is set.
  void writeFile(const std::string &Path, const std::string &Bytes,
                 bool Sweep);
};

} // namespace service
} // namespace shrinkray

#endif // SHRINKRAY_SERVICE_RESULTCACHE_H
