//===-- cad/Sexp.cpp - S-expression serialization -------------------------===//

#include "cad/Sexp.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

using namespace shrinkray;

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string shrinkray::formatFloat(double Value) {
  // Try increasing precision until the representation round-trips.
  char Buf[64];
  for (int Precision = 1; Precision <= 17; ++Precision) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, Value);
    double Back = 0.0;
    std::sscanf(Buf, "%lf", &Back);
    if (Back == Value)
      break;
  }
  std::string S(Buf);
  // Ensure the token is lexed back as a Float, not an Int.
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  return S;
}

static void printRec(const TermPtr &T, std::ostringstream &Os) {
  const Op &O = T->op();
  switch (O.kind()) {
  case OpKind::Int:
    Os << O.intValue();
    return;
  case OpKind::Float:
    Os << formatFloat(O.floatValue());
    return;
  case OpKind::OpRef:
    Os << O.symbol().str();
    return;
  case OpKind::PatVar:
    Os << '?' << O.symbol().str();
    return;
  case OpKind::Var:
    Os << "(Var " << O.symbol().str() << ')';
    return;
  case OpKind::External:
    Os << "(External " << O.symbol().str() << ')';
    return;
  default:
    break;
  }
  if (T->numChildren() == 0) {
    Os << opName(O.kind());
    return;
  }
  Os << '(' << opName(O.kind());
  for (const TermPtr &Kid : T->children()) {
    Os << ' ';
    printRec(Kid, Os);
  }
  Os << ')';
}

std::string shrinkray::printSexp(const TermPtr &T) {
  std::ostringstream Os;
  printRec(T, Os);
  return Os.str();
}

//===----------------------------------------------------------------------===//
// Pretty printing (paper style)
//===----------------------------------------------------------------------===//

namespace {

/// Prints terms in the OCaml-flavored surface syntax the paper's figures use.
class PrettyPrinter {
public:
  std::string print(const TermPtr &T) {
    Os.str("");
    rec(T, 0);
    return Os.str();
  }

private:
  std::ostringstream Os;

  static bool isSmall(const TermPtr &T) { return termSize(T) <= 8; }

  void indent(int Depth) {
    Os << '\n';
    for (int I = 0; I < Depth; ++I)
      Os << "  ";
  }

  /// Prints an affine op's vector components inline: "1, 2, 3".
  void vecComponents(const TermPtr &Vec, int Depth) {
    assert(Vec->kind() == OpKind::Vec3Ctor && "expected a Vec3");
    for (size_t I = 0; I < 3; ++I) {
      if (I > 0)
        Os << ", ";
      rec(Vec->child(I), Depth);
    }
  }

  void rec(const TermPtr &T, int Depth) {
    const Op &O = T->op();
    switch (O.kind()) {
    case OpKind::Int:
      Os << O.intValue();
      return;
    case OpKind::Float: {
      // Figures print e.g. "125" for 125.0; keep that readable style.
      double V = O.floatValue();
      if (V == std::floor(V) && std::fabs(V) < 1e15)
        Os << static_cast<long long>(V);
      else
        Os << formatFloat(V);
      return;
    }
    case OpKind::Var:
      Os << O.symbol().str();
      return;
    case OpKind::External:
      Os << O.symbol().str();
      return;
    case OpKind::OpRef:
      Os << O.symbol().str();
      return;
    case OpKind::PatVar:
      Os << '?' << O.symbol().str();
      return;
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Mul:
    case OpKind::Div: {
      const char *Sym = O.kind() == OpKind::Add   ? " + "
                        : O.kind() == OpKind::Sub ? " - "
                        : O.kind() == OpKind::Mul ? " * "
                                                  : " / ";
      Os << '(';
      rec(T->child(0), Depth);
      Os << Sym;
      rec(T->child(1), Depth);
      Os << ')';
      return;
    }
    case OpKind::Fun: {
      Os << "Fun (";
      for (size_t I = 0; I + 1 < T->numChildren(); ++I) {
        if (I > 0)
          Os << ", ";
        rec(T->child(I), Depth);
      }
      Os << ") -> ";
      rec(T->child(T->numChildren() - 1), Depth + 1);
      return;
    }
    default:
      break;
    }

    if (T->numChildren() == 0) {
      Os << opName(O.kind());
      return;
    }

    Os << opName(O.kind()) << " (";
    bool Multiline = !isSmall(T);
    bool FirstArg = true;
    auto arg = [&](auto Emit) {
      if (!FirstArg)
        Os << ',';
      if (Multiline && !FirstArg)
        indent(Depth + 1);
      else if (!FirstArg)
        Os << ' ';
      FirstArg = false;
      Emit();
    };

    if (isAffineOp(O.kind()) && T->child(0)->kind() == OpKind::Vec3Ctor) {
      // Affine ops flatten their vector: Translate (1, 2, 3, child).
      arg([&] { vecComponents(T->child(0), Depth + 1); });
      arg([&] { rec(T->child(1), Depth + 1); });
    } else {
      for (const TermPtr &Kid : T->children())
        arg([&] { rec(Kid, Depth + 1); });
    }
    Os << ')';
  }
};

} // namespace

std::string shrinkray::prettyPrint(const TermPtr &T) {
  PrettyPrinter Printer;
  return Printer.print(T);
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  ParseResult run() {
    TermPtr T = parseTerm();
    if (!T)
      return {nullptr, Diag};
    skipWs();
    if (Pos != Text.size())
      return {nullptr, errorAt("trailing characters after term")};
    return {T, ""};
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  std::string Diag;

  std::string errorAt(std::string_view Message) {
    std::ostringstream Os;
    Os << "offset " << Pos << ": " << Message;
    return Os.str();
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == ';') { // comment to end of line
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }

  bool atEnd() {
    skipWs();
    return Pos == Text.size();
  }

  std::string_view lexAtom() {
    size_t Start = Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isspace(static_cast<unsigned char>(C)) || C == '(' ||
          C == ')' || C == ';')
        break;
      ++Pos;
    }
    return Text.substr(Start, Pos - Start);
  }

  static bool looksNumeric(std::string_view S) {
    if (S.empty())
      return false;
    char C = S[0];
    if (std::isdigit(static_cast<unsigned char>(C)))
      return true;
    return (C == '-' || C == '+' || C == '.') && S.size() > 1 &&
           (std::isdigit(static_cast<unsigned char>(S[1])) || S[1] == '.');
  }

  TermPtr parseNumber(std::string_view Atom) {
    bool IsFloat = Atom.find('.') != std::string_view::npos ||
                   Atom.find('e') != std::string_view::npos ||
                   Atom.find('E') != std::string_view::npos;
    if (IsFloat) {
      double Value = 0.0;
      auto [End, Ec] =
          std::from_chars(Atom.data(), Atom.data() + Atom.size(), Value);
      if (Ec != std::errc() || End != Atom.data() + Atom.size()) {
        Diag = errorAt("malformed float literal");
        return nullptr;
      }
      return tFloat(Value);
    }
    int64_t Value = 0;
    auto [End, Ec] =
        std::from_chars(Atom.data(), Atom.data() + Atom.size(), Value);
    if (Ec != std::errc() || End != Atom.data() + Atom.size()) {
      Diag = errorAt("malformed integer literal");
      return nullptr;
    }
    return tInt(Value);
  }

  TermPtr parseAtom() {
    std::string_view Atom = lexAtom();
    if (Atom.empty()) {
      Diag = errorAt("expected an atom");
      return nullptr;
    }
    if (looksNumeric(Atom))
      return parseNumber(Atom);
    if (Atom[0] == '?') {
      if (Atom.size() == 1) {
        Diag = errorAt("empty pattern-variable name");
        return nullptr;
      }
      return makeTerm(Op::makePatVar(Symbol(Atom.substr(1))));
    }
    OpKind Kind;
    if (!opKindFromName(Atom, Kind)) {
      Diag = errorAt("unknown atom '" + std::string(Atom) + "'");
      return nullptr;
    }
    if (isBoolOp(Kind)) // bare Union/Diff/Inter is an operator value
      return tOpRef(Kind);
    if (opArity(Kind) != 0) {
      Diag = errorAt("operator '" + std::string(Atom) + "' needs arguments");
      return nullptr;
    }
    return makeTerm(Op(Kind));
  }

  TermPtr parseTerm() {
    skipWs();
    if (Pos == Text.size()) {
      Diag = errorAt("unexpected end of input");
      return nullptr;
    }
    if (Text[Pos] != '(')
      return parseAtom();
    ++Pos; // consume '('
    skipWs();
    std::string_view Head = lexAtom();
    if (Head.empty()) {
      Diag = errorAt("expected an operator after '('");
      return nullptr;
    }

    OpKind Kind;
    if (!opKindFromName(Head, Kind)) {
      Diag = errorAt("unknown operator '" + std::string(Head) + "'");
      return nullptr;
    }

    // Var and External take a raw identifier, not a term.
    if (Kind == OpKind::Var || Kind == OpKind::External) {
      skipWs();
      std::string_view Name = lexAtom();
      if (Name.empty()) {
        Diag = errorAt("expected a name");
        return nullptr;
      }
      if (!expectClose())
        return nullptr;
      return Kind == OpKind::Var ? tVar(Name) : tExternal(Name);
    }

    std::vector<TermPtr> Children;
    while (true) {
      skipWs();
      if (Pos == Text.size()) {
        Diag = errorAt("unterminated '('");
        return nullptr;
      }
      if (Text[Pos] == ')') {
        ++Pos;
        break;
      }
      TermPtr Kid = parseTerm();
      if (!Kid)
        return nullptr;
      Children.push_back(std::move(Kid));
    }

    int Arity = opArity(Kind);
    if (Arity >= 0 && static_cast<size_t>(Arity) != Children.size()) {
      std::ostringstream Os;
      Os << "operator '" << Head << "' expects " << Arity << " children, got "
         << Children.size();
      Diag = errorAt(Os.str());
      return nullptr;
    }
    if (Kind == OpKind::Fun && Children.size() < 2) {
      Diag = errorAt("Fun needs at least one parameter and a body");
      return nullptr;
    }
    if (Kind == OpKind::App && Children.size() < 2) {
      Diag = errorAt("App needs a function and at least one argument");
      return nullptr;
    }
    return makeTerm(Op(Kind), std::move(Children));
  }

  bool expectClose() {
    skipWs();
    if (Pos == Text.size() || Text[Pos] != ')') {
      Diag = errorAt("expected ')'");
      return false;
    }
    ++Pos;
    return true;
  }
};

} // namespace

ParseResult shrinkray::parseSexp(std::string_view Text) {
  Parser P(Text);
  return P.run();
}
