//===-- cad/Sexp.h - S-expression serialization -----------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// S-expression serialization of CAD terms. The paper serializes models as
/// s-expressions (via Janestreet `@deriving`); this module provides the
/// equivalent reader/printer pair, plus the paper-style pretty printer used
/// in figures ("Translate (1, 2, 3, Unit)").
///
/// Syntax:
///   term  ::= atom | '(' head term* ')'
///   atom  ::= number            -- Float if it contains '.' 'e' 'E', else Int
///           | opname            -- a zero-arity operator (Unit, Nil, ...)
///           | boolop            -- Union/Diff/Inter as an OpRef value
///           | '?'ident          -- a pattern variable (rewrite patterns only)
///   head  ::= opname | 'Var' | 'External'
///
/// Examples:
///   (Union (Translate (Vec3 1.0 2.0 3.0) Unit) (Sphere))
///   (Fold Union Empty (Mapi (Fun (Var i) (Var c) ...) (Repeat Unit 5)))
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_CAD_SEXP_H
#define SHRINKRAY_CAD_SEXP_H

#include "cad/Term.h"

#include <optional>
#include <string>
#include <string_view>

namespace shrinkray {

/// Result of parsing: a term or a diagnostic.
struct ParseResult {
  TermPtr Value;      ///< non-null on success
  std::string Error;  ///< diagnostic on failure ("line:col: message" style)

  explicit operator bool() const { return Value != nullptr; }
};

/// Parses a single term from \p Text. Trailing whitespace is allowed;
/// trailing non-whitespace is an error.
ParseResult parseSexp(std::string_view Text);

/// Prints \p T as a canonical single-line s-expression. Round-trips through
/// parseSexp (bit-exact for Int; shortest round-trip form for Float).
std::string printSexp(const TermPtr &T);

/// Pretty-prints \p T in the paper's OCaml-like style with indentation:
///   Translate (1, 2, 3, Unit)
///   Fold (Union, Empty, Mapi (Fun (i, c) -> ..., Repeat (Tooth, 60)))
std::string prettyPrint(const TermPtr &T);

/// Formats a double in its shortest form that round-trips, with a trailing
/// ".0" added to distinguish Float literals from Int in the s-expr syntax.
std::string formatFloat(double Value);

} // namespace shrinkray

#endif // SHRINKRAY_CAD_SEXP_H
