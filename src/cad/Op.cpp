//===-- cad/Op.cpp - Operators of CSG and LambdaCAD -----------------------===//

#include "cad/Op.h"

#include <sstream>

using namespace shrinkray;

int shrinkray::opArity(OpKind Kind) {
  switch (Kind) {
  case OpKind::Empty:
  case OpKind::Unit:
  case OpKind::Cylinder:
  case OpKind::Sphere:
  case OpKind::Hexagon:
  case OpKind::Int:
  case OpKind::Float:
  case OpKind::Nil:
  case OpKind::Var:
  case OpKind::External:
  case OpKind::OpRef:
  case OpKind::PatVar:
    return 0;
  case OpKind::Sin:
  case OpKind::Cos:
    return 1;
  case OpKind::Translate:
  case OpKind::Scale:
  case OpKind::Rotate:
  case OpKind::Union:
  case OpKind::Diff:
  case OpKind::Inter:
  case OpKind::Cons:
  case OpKind::Concat:
  case OpKind::Repeat:
  case OpKind::Map:
  case OpKind::Mapi:
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Arctan:
    return 2;
  case OpKind::Vec3Ctor:
  case OpKind::Fold:
    return 3;
  case OpKind::Fun:
  case OpKind::App:
    return -1; // variadic
  }
  assert(false && "unknown OpKind");
  return -1;
}

std::string_view shrinkray::opName(OpKind Kind) {
  switch (Kind) {
  case OpKind::Empty:
    return "Empty";
  case OpKind::Unit:
    return "Unit";
  case OpKind::Cylinder:
    return "Cylinder";
  case OpKind::Sphere:
    return "Sphere";
  case OpKind::Hexagon:
    return "Hexagon";
  case OpKind::Translate:
    return "Translate";
  case OpKind::Scale:
    return "Scale";
  case OpKind::Rotate:
    return "Rotate";
  case OpKind::Union:
    return "Union";
  case OpKind::Diff:
    return "Diff";
  case OpKind::Inter:
    return "Inter";
  case OpKind::Vec3Ctor:
    return "Vec3";
  case OpKind::Int:
    return "Int";
  case OpKind::Float:
    return "Float";
  case OpKind::Nil:
    return "Nil";
  case OpKind::Cons:
    return "Cons";
  case OpKind::Concat:
    return "Concat";
  case OpKind::Repeat:
    return "Repeat";
  case OpKind::Fold:
    return "Fold";
  case OpKind::Map:
    return "Map";
  case OpKind::Mapi:
    return "Mapi";
  case OpKind::Fun:
    return "Fun";
  case OpKind::App:
    return "App";
  case OpKind::Var:
    return "Var";
  case OpKind::Add:
    return "Add";
  case OpKind::Sub:
    return "Sub";
  case OpKind::Mul:
    return "Mul";
  case OpKind::Div:
    return "Div";
  case OpKind::Sin:
    return "Sin";
  case OpKind::Cos:
    return "Cos";
  case OpKind::Arctan:
    return "Arctan";
  case OpKind::External:
    return "External";
  case OpKind::OpRef:
    return "OpRef";
  case OpKind::PatVar:
    return "PatVar";
  }
  assert(false && "unknown OpKind");
  return "";
}

bool shrinkray::opKindFromName(std::string_view Name, OpKind &Out) {
  for (unsigned I = 0; I < NumOpKinds; ++I) {
    OpKind K = static_cast<OpKind>(I);
    if (opName(K) == Name) {
      Out = K;
      return true;
    }
  }
  return false;
}

OpKind Op::referencedOp() const {
  assert(Kind == OpKind::OpRef && "not an OpRef");
  OpKind Out;
  [[maybe_unused]] bool Known = opKindFromName(SymValue.str(), Out);
  assert(Known && "OpRef names an unknown operator");
  return Out;
}

std::string Op::str() const {
  std::ostringstream Os;
  switch (Kind) {
  case OpKind::Int:
    Os << IntValue;
    break;
  case OpKind::Float:
    Os << FloatValue;
    break;
  case OpKind::Var:
    Os << "Var:" << SymValue.str();
    break;
  case OpKind::External:
    Os << "External:" << SymValue.str();
    break;
  case OpKind::OpRef:
    Os << SymValue.str();
    break;
  case OpKind::PatVar:
    Os << "?" << SymValue.str();
    break;
  default:
    Os << opName(Kind);
    break;
  }
  return Os.str();
}
