//===-- cad/Term.cpp - Immutable, hashconsed CAD term trees ---------------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The term interner. makeTerm keys a sharded, mutex-guarded table by the
/// structural hash and resolves collisions with an exact (operator,
/// child-pointer) comparison — children are already interned, so pointer
/// equality of children *is* structural equality of subtrees. Entries hold
/// weak references; ~Term removes its own slot when the last strong
/// reference drops, so the table never pins dead terms and never grows
/// beyond the live working set.
///
/// Lifetime details that keep this correct under concurrency:
///  - A slot whose weak_ptr no longer locks belongs to a term whose
///    destructor is mid-flight on another thread; lookups skip it and a
///    fresh node with the same shape may be inserted alongside. ~Term
///    erases only the slot whose raw pointer is its own, so it can never
///    remove the replacement.
///  - The table itself is leaked on purpose: terms held by static-
///    duration objects run their destructors during static destruction,
///    after a function-local static table would already be gone.
///  - No shard mutex is ever held while a TermPtr is released (releasing
///    the last reference to a child would re-enter the same shard).
///
//===----------------------------------------------------------------------===//

#include "cad/Term.h"

#include "support/Hashing.h"

#include <atomic>
#include <cmath>
#include <mutex>

using namespace shrinkray;

namespace {

/// The operator's contribution to the value-level hash: numeric literals
/// seed from their value alone under a shared kind-agnostic tag (so Int 5
/// and Float 5.0 hash identically, mirroring termApproxEquals at Eps 0),
/// symbol-carrying ops from their *spelling* (stable across processes
/// sharing a disk cache, unlike interning ids), and everything else from
/// its kind. Matches the equivalence the result cache's fingerprints
/// need: value-equal operators always seed equal. Word-wise arithmetic
/// throughout — this runs once per interned node, and the byte-wise
/// Fnv1a was a measurable fraction of makeTerm on term-churn paths
/// (symbols still pay Fnv1a over the spelling; they are rare).
uint64_t valueHashOpSeed(const Op &O) {
  switch (O.kind()) {
  case OpKind::Int:
  case OpKind::Float: {
    double V = O.numericValue();
    uint64_t Bits;
    V = V == 0.0 ? 0.0 : V; // canonicalize -0.0
    std::memcpy(&Bits, &V, sizeof Bits);
    return mix64(Bits + (uint64_t(1) << 32)); // shared numeric tag
  }
  case OpKind::Var:
  case OpKind::External:
  case OpKind::PatVar:
    return mix64(static_cast<uint64_t>(O.kind()) +
                 Fnv1a().str(O.symbol().str()).hash());
  case OpKind::OpRef:
    return mix64(static_cast<uint64_t>(O.kind()) +
                 (static_cast<uint64_t>(O.referencedOp()) << 8));
  default:
    return mix64(static_cast<uint64_t>(O.kind()));
  }
}

/// Order-sensitive polynomial accumulation of one already-mixed word
/// (child hashes and the seed are mix64 outputs, so a cheap combine per
/// step suffices); termValueHashNode applies a final mix64 avalanche.
constexpr uint64_t ValueHashMul = 6364136223846793005ull;
inline uint64_t valueHashFold(uint64_t H, uint64_t V) {
  return H * ValueHashMul + V;
}

/// One interner slot: the stored structural hash (probe prefilter), the
/// raw node (for exact comparison and destructor self-identification),
/// and a weak reference to hand out on hits. Raw doubles as the slot
/// state: null = never used, tombstone() = erased.
struct InternSlot {
  size_t Hash = 0;
  const Term *Raw = nullptr;
  std::weak_ptr<const Term> Weak;
};

/// Open-addressing slot table: linear probing over a contiguous
/// power-of-two array, erase via tombstones, growth at 3/4 occupancy
/// (live + tombstones), so a probe always terminates at an empty slot.
/// The node-based unordered_multimap this replaces made equal_range the
/// single hottest symbol in the extraction-oracle profile — every probe
/// chased list nodes allocated one malloc at a time; here a probe walks
/// adjacent memory and inserts allocate nothing (amortized).
struct InternShard {
  std::mutex M;
  std::vector<InternSlot> Slots; // size always zero or a power of two
  size_t Live = 0;               // occupied, excluding tombstones
  size_t Used = 0;               // occupied, including tombstones

  static const Term *tombstone() {
    static const char Sentinel = 0;
    return reinterpret_cast<const Term *>(&Sentinel);
  }

  /// First live slot matching \p H whose weak reference still locks;
  /// expired matches (destructor mid-flight elsewhere) are skipped.
  /// \p SameShape is called on candidate raw nodes only. Caller holds M.
  template <typename SameShapeFn>
  TermPtr findLive(size_t H, SameShapeFn &&SameShape) {
    if (Slots.empty())
      return nullptr;
    const size_t Mask = Slots.size() - 1;
    for (size_t I = H & Mask;; I = (I + 1) & Mask) {
      InternSlot &Sl = Slots[I];
      if (!Sl.Raw)
        return nullptr;
      if (Sl.Raw == tombstone() || Sl.Hash != H || !SameShape(Sl.Raw))
        continue;
      if (TermPtr P = Sl.Weak.lock())
        return P;
    }
  }

  /// Inserts without an existence check (makeTerm probes first, under
  /// the same lock). Caller holds M.
  void insert(size_t H, const Term *Raw, std::weak_ptr<const Term> Weak) {
    if (Slots.empty())
      rehash(256);
    else if ((Used + 1) * 4 > Slots.size() * 3)
      // Doubling also flushes tombstones; keep the size when live
      // entries alone would leave the doubled table mostly empty.
      rehash(Live * 4 > Slots.size() ? Slots.size() * 2 : Slots.size());
    const size_t Mask = Slots.size() - 1;
    for (size_t I = H & Mask;; I = (I + 1) & Mask) {
      InternSlot &Sl = Slots[I];
      if (Sl.Raw && Sl.Raw != tombstone())
        continue;
      if (!Sl.Raw)
        ++Used;
      Sl = {H, Raw, std::move(Weak)};
      ++Live;
      return;
    }
  }

  /// Tombstones the slot owned by \p Raw, if present. Caller holds M.
  void erase(size_t H, const Term *Raw) {
    if (Slots.empty())
      return;
    const size_t Mask = Slots.size() - 1;
    for (size_t I = H & Mask;; I = (I + 1) & Mask) {
      InternSlot &Sl = Slots[I];
      if (!Sl.Raw)
        return;
      if (Sl.Raw == Raw) {
        Sl.Raw = tombstone();
        Sl.Weak.reset();
        --Live;
        return;
      }
    }
  }

  void rehash(size_t NewCap) {
    std::vector<InternSlot> Old(NewCap);
    Old.swap(Slots);
    Used = Live = 0;
    const size_t Mask = Slots.size() - 1;
    for (InternSlot &Sl : Old) {
      if (!Sl.Raw || Sl.Raw == tombstone())
        continue;
      for (size_t I = Sl.Hash & Mask;; I = (I + 1) & Mask) {
        if (Slots[I].Raw)
          continue;
        Slots[I] = std::move(Sl);
        ++Used;
        ++Live;
        break;
      }
    }
  }
};

constexpr size_t NumInternShards = 16;

struct InternTable {
  InternShard Shards[NumInternShards];
  std::atomic<uint64_t> Unique{0};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Live{0};
};

InternTable &internTable() {
  static InternTable *T = new InternTable; // leaked, see file comment
  return *T;
}

InternShard &shardFor(size_t H) {
  // The low bits feed the bucket index inside the shard; mix higher bits
  // into the shard choice so the two partitions are independent.
  return internTable().Shards[(H >> 48) % NumInternShards];
}

} // namespace

Term::Term(InternKey, Op O, std::vector<TermPtr> Children,
           size_t StructuralHash)
    : Operator(std::move(O)), Kids(std::move(Children)),
      HashV(StructuralHash) {
  assert((opArity(Operator.kind()) < 0 ||
          static_cast<size_t>(opArity(Operator.kind())) == Kids.size()) &&
         "child count does not match operator arity");
  OpKind K = Operator.kind();
  uint64_t VH = valueHashFold(valueHashOpSeed(Operator), Kids.size());
  SizeV = 1;
  PrimsV = ((isPrimitiveOp(K) && K != OpKind::Empty) || K == OpKind::External)
               ? 1
               : 0;
  LoopV = K == OpKind::Fold || K == OpKind::Map || K == OpKind::Mapi ||
          K == OpKind::Repeat || K == OpKind::Fun;
  uint64_t MaxKidDepth = 0;
  for (const TermPtr &Kid : Kids) {
    assert(Kid && "null child term");
    SizeV += Kid->SizeV;
    PrimsV += Kid->PrimsV;
    MaxKidDepth = std::max(MaxKidDepth, Kid->DepthV);
    LoopV = LoopV || Kid->LoopV;
    VH = valueHashFold(VH, Kid->ValueHashV);
  }
  DepthV = MaxKidDepth + 1;
  ValueHashV = mix64(VH);
}

/// Runs when the last strong reference drops: unlinks this node's own
/// slot, then lets the member destructors release the children — *after*
/// the shard lock is dropped, so nested destructors never see a held
/// mutex. (The node and its control block are one make_shared allocation;
/// the slot's weak_ptr — destroyed here — was the last weak reference, so
/// the allocation is freed as soon as this destructor returns.)
Term::~Term() {
  InternShard &S = shardFor(HashV);
  {
    std::lock_guard<std::mutex> Lock(S.M);
    S.erase(HashV, this);
  }
  internTable().Live.fetch_sub(1, std::memory_order_relaxed);
}

TermPtr shrinkray::makeTerm(Op O, std::vector<TermPtr> Children) {
  size_t H = O.hash();
  for (const TermPtr &Kid : Children) {
    assert(Kid && "null child term");
    hashCombine(H, Kid->hash());
  }
  // Avalanche: leaf operators hash to near-sequential small values
  // (Int payloads hash by identity), which would cluster the shards'
  // linear-probe tables and starve all but shard 0 (the shard index is
  // the hash's top bits).
  H = static_cast<size_t>(mix64(H));
  InternTable &Tab = internTable();
  InternShard &S = shardFor(H);
  TermPtr Result;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    Result = S.findLive(H, [&](const Term *C) {
      if (C->op() != O || C->numChildren() != Children.size())
        return false;
      for (size_t I = 0; I < Children.size(); ++I)
        if (C->child(I).get() != Children[I].get())
          return false;
      return true;
    });
    if (Result) {
      Tab.Hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      // One allocation: make_shared co-locates the node and its control
      // block. ~Term unlinks the slot, so no custom deleter is needed.
      std::shared_ptr<Term> T = std::make_shared<Term>(
          Term::InternKey{}, std::move(O), std::move(Children), H);
      S.insert(H, T.get(), T);
      Result = std::move(T);
      Tab.Unique.fetch_add(1, std::memory_order_relaxed);
      Tab.Live.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // The shard lock is released before `Children` goes out of scope (hit
  // path): dropping the last reference to a child runs ~Term, which
  // locks — possibly — this same shard.
  return Result;
}

TermPtr shrinkray::lookupTerm(const Op &O, const Term *const *Children,
                              size_t N) {
  size_t H = O.hash();
  for (size_t I = 0; I < N; ++I)
    hashCombine(H, Children[I]->hash());
  H = static_cast<size_t>(mix64(H)); // must mirror makeTerm exactly
  InternShard &S = shardFor(H);
  std::lock_guard<std::mutex> Lock(S.M);
  TermPtr P = S.findLive(H, [&](const Term *C) {
    if (C->op() != O || C->numChildren() != N)
      return false;
    for (size_t I = 0; I < N; ++I)
      if (C->child(I).get() != Children[I])
        return false;
    return true;
  });
  if (P)
    internTable().Hits.fetch_add(1, std::memory_order_relaxed);
  return P; // only TermPtr acquisitions here — nothing released while
            // the shard lock is held
}

TermInternStats shrinkray::termInternStats() {
  InternTable &Tab = internTable();
  TermInternStats S;
  S.Unique = Tab.Unique.load(std::memory_order_relaxed);
  S.Hits = Tab.Hits.load(std::memory_order_relaxed);
  S.Live = Tab.Live.load(std::memory_order_relaxed);
  return S;
}

bool shrinkray::termApproxEquals(const TermPtr &A, const TermPtr &B,
                                 double Eps) {
  if (A.get() == B.get())
    return true; // reflexive: |x - x| = 0 <= Eps for any Eps >= 0
  // At Eps 0, value-equal terms have equal value hashes (the hash respects
  // the Int/Float aliasing below), so differing hashes decide negatively
  // without a walk. Equal hashes still walk: collisions are possible.
  if (Eps == 0.0 && A->valueHash() != B->valueHash())
    return false;
  // Numeric literals compare by value, across the Int/Float divide.
  bool ANum = A->kind() == OpKind::Float || A->kind() == OpKind::Int;
  bool BNum = B->kind() == OpKind::Float || B->kind() == OpKind::Int;
  if (ANum || BNum) {
    if (!ANum || !BNum)
      return false;
    return std::fabs(A->op().numericValue() - B->op().numericValue()) <= Eps;
  }
  if (A->kind() != B->kind() || A->numChildren() != B->numChildren())
    return false;
  if (A->op() != B->op())
    return false;
  for (size_t I = 0; I < A->numChildren(); ++I)
    if (!termApproxEquals(A->child(I), B->child(I), Eps))
      return false;
  return true;
}

size_t shrinkray::termValueHashNode(const Op &O,
                                    const std::vector<size_t> &ChildHashes) {
  uint64_t H = valueHashFold(valueHashOpSeed(O), ChildHashes.size());
  for (size_t KidHash : ChildHashes)
    H = valueHashFold(H, KidHash);
  return mix64(H);
}

bool shrinkray::isFlatCsg(const TermPtr &T) {
  OpKind K = T->kind();
  if (isPrimitiveOp(K) || K == OpKind::External)
    return true;
  if (isAffineOp(K)) {
    // The vector argument must be all-literal.
    const TermPtr &Vec = T->child(0);
    if (Vec->kind() != OpKind::Vec3Ctor)
      return false;
    for (const TermPtr &Comp : Vec->children())
      if (Comp->kind() != OpKind::Float && Comp->kind() != OpKind::Int)
        return false;
    return isFlatCsg(T->child(1));
  }
  if (isBoolOp(K))
    return isFlatCsg(T->child(0)) && isFlatCsg(T->child(1));
  return false;
}

// --- Convenience constructors ----------------------------------------------

TermPtr shrinkray::tEmpty() { return makeTerm(Op(OpKind::Empty)); }
TermPtr shrinkray::tUnit() { return makeTerm(Op(OpKind::Unit)); }
TermPtr shrinkray::tCylinder() { return makeTerm(Op(OpKind::Cylinder)); }
TermPtr shrinkray::tSphere() { return makeTerm(Op(OpKind::Sphere)); }
TermPtr shrinkray::tHexagon() { return makeTerm(Op(OpKind::Hexagon)); }

TermPtr shrinkray::tFloat(double Value) {
  return makeTerm(Op::makeFloat(Value));
}
TermPtr shrinkray::tInt(int64_t Value) { return makeTerm(Op::makeInt(Value)); }
TermPtr shrinkray::tVar(std::string_view Name) {
  return makeTerm(Op::makeVar(Symbol(Name)));
}
TermPtr shrinkray::tExternal(std::string_view Name) {
  return makeTerm(Op::makeExternal(Symbol(Name)));
}

TermPtr shrinkray::tVec3(TermPtr X, TermPtr Y, TermPtr Z) {
  return makeTerm(Op(OpKind::Vec3Ctor),
                  {std::move(X), std::move(Y), std::move(Z)});
}
TermPtr shrinkray::tVec3(double X, double Y, double Z) {
  return tVec3(tFloat(X), tFloat(Y), tFloat(Z));
}

TermPtr shrinkray::tTranslate(TermPtr Vec, TermPtr Child) {
  return makeTerm(Op(OpKind::Translate), {std::move(Vec), std::move(Child)});
}
TermPtr shrinkray::tTranslate(double X, double Y, double Z, TermPtr Child) {
  return tTranslate(tVec3(X, Y, Z), std::move(Child));
}
TermPtr shrinkray::tScale(TermPtr Vec, TermPtr Child) {
  return makeTerm(Op(OpKind::Scale), {std::move(Vec), std::move(Child)});
}
TermPtr shrinkray::tScale(double X, double Y, double Z, TermPtr Child) {
  return tScale(tVec3(X, Y, Z), std::move(Child));
}
TermPtr shrinkray::tRotate(TermPtr Vec, TermPtr Child) {
  return makeTerm(Op(OpKind::Rotate), {std::move(Vec), std::move(Child)});
}
TermPtr shrinkray::tRotate(double X, double Y, double Z, TermPtr Child) {
  return tRotate(tVec3(X, Y, Z), std::move(Child));
}

TermPtr shrinkray::tUnion(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Union), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tDiff(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Diff), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tInter(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Inter), {std::move(A), std::move(B)});
}

TermPtr shrinkray::tNil() { return makeTerm(Op(OpKind::Nil)); }
TermPtr shrinkray::tCons(TermPtr Head, TermPtr Tail) {
  return makeTerm(Op(OpKind::Cons), {std::move(Head), std::move(Tail)});
}
TermPtr shrinkray::tConcat(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Concat), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tRepeat(TermPtr Elem, TermPtr Count) {
  return makeTerm(Op(OpKind::Repeat), {std::move(Elem), std::move(Count)});
}

TermPtr shrinkray::tFold(TermPtr F, TermPtr Init, TermPtr List) {
  return makeTerm(Op(OpKind::Fold),
                  {std::move(F), std::move(Init), std::move(List)});
}
TermPtr shrinkray::tMap(TermPtr F, TermPtr List) {
  return makeTerm(Op(OpKind::Map), {std::move(F), std::move(List)});
}
TermPtr shrinkray::tMapi(TermPtr F, TermPtr List) {
  return makeTerm(Op(OpKind::Mapi), {std::move(F), std::move(List)});
}

TermPtr shrinkray::tFun(std::vector<TermPtr> ParamsThenBody) {
  assert(ParamsThenBody.size() >= 2 && "Fun needs >= 1 param and a body");
#ifndef NDEBUG
  for (size_t I = 0; I + 1 < ParamsThenBody.size(); ++I)
    assert(ParamsThenBody[I]->kind() == OpKind::Var &&
           "Fun parameters must be Vars");
#endif
  return makeTerm(Op(OpKind::Fun), std::move(ParamsThenBody));
}

TermPtr shrinkray::tApp(std::vector<TermPtr> FnThenArgs) {
  assert(FnThenArgs.size() >= 2 && "App needs a function and >= 1 argument");
  return makeTerm(Op(OpKind::App), std::move(FnThenArgs));
}

TermPtr shrinkray::tAdd(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Add), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tSub(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Sub), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tMul(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Mul), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tDiv(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Div), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tSin(TermPtr A) {
  return makeTerm(Op(OpKind::Sin), {std::move(A)});
}
TermPtr shrinkray::tCos(TermPtr A) {
  return makeTerm(Op(OpKind::Cos), {std::move(A)});
}
TermPtr shrinkray::tArctan(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Arctan), {std::move(A), std::move(B)});
}

TermPtr shrinkray::tOpRef(OpKind BoolOp) {
  return makeTerm(Op::makeOpRef(BoolOp));
}

TermPtr shrinkray::tUnionAll(const std::vector<TermPtr> &Items) {
  if (Items.empty())
    return tEmpty();
  TermPtr Acc = Items.back();
  for (size_t I = Items.size() - 1; I > 0; --I)
    Acc = tUnion(Items[I - 1], Acc);
  return Acc;
}

TermPtr shrinkray::tList(const std::vector<TermPtr> &Items) {
  TermPtr Acc = tNil();
  for (size_t I = Items.size(); I > 0; --I)
    Acc = tCons(Items[I - 1], Acc);
  return Acc;
}

TermPtr shrinkray::tIndexList(int64_t N) {
  assert(N >= 0 && "negative index-list length");
  TermPtr Acc = tNil();
  for (int64_t I = N; I > 0; --I)
    Acc = tCons(tInt(I - 1), Acc);
  return Acc;
}
