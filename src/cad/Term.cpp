//===-- cad/Term.cpp - Immutable CAD term trees ---------------------------===//

#include "cad/Term.h"

#include <cmath>

using namespace shrinkray;

TermPtr shrinkray::makeTerm(Op O, std::vector<TermPtr> Children) {
  return std::make_shared<const Term>(std::move(O), std::move(Children));
}

uint64_t shrinkray::termSize(const TermPtr &T) {
  uint64_t N = 1;
  for (const TermPtr &Kid : T->children())
    N += termSize(Kid);
  return N;
}

uint64_t shrinkray::termDepth(const TermPtr &T) {
  uint64_t Max = 0;
  for (const TermPtr &Kid : T->children())
    Max = std::max(Max, termDepth(Kid));
  return Max + 1;
}

uint64_t shrinkray::termPrimitives(const TermPtr &T) {
  OpKind K = T->kind();
  uint64_t N = 0;
  if ((isPrimitiveOp(K) && K != OpKind::Empty) || K == OpKind::External)
    N = 1;
  for (const TermPtr &Kid : T->children())
    N += termPrimitives(Kid);
  return N;
}

bool shrinkray::termEquals(const TermPtr &A, const TermPtr &B) {
  if (A.get() == B.get())
    return true;
  if (A->op() != B->op() || A->numChildren() != B->numChildren())
    return false;
  for (size_t I = 0; I < A->numChildren(); ++I)
    if (!termEquals(A->child(I), B->child(I)))
      return false;
  return true;
}

bool shrinkray::termApproxEquals(const TermPtr &A, const TermPtr &B,
                                 double Eps) {
  if (A.get() == B.get())
    return true; // reflexive: |x - x| = 0 <= Eps for any Eps >= 0
  // Numeric literals compare by value, across the Int/Float divide.
  bool ANum = A->kind() == OpKind::Float || A->kind() == OpKind::Int;
  bool BNum = B->kind() == OpKind::Float || B->kind() == OpKind::Int;
  if (ANum || BNum) {
    if (!ANum || !BNum)
      return false;
    return std::fabs(A->op().numericValue() - B->op().numericValue()) <= Eps;
  }
  if (A->kind() != B->kind() || A->numChildren() != B->numChildren())
    return false;
  if (A->op() != B->op())
    return false;
  for (size_t I = 0; I < A->numChildren(); ++I)
    if (!termApproxEquals(A->child(I), B->child(I), Eps))
      return false;
  return true;
}

size_t shrinkray::termHash(const TermPtr &T) {
  size_t Seed = T->op().hash();
  for (const TermPtr &Kid : T->children())
    hashCombine(Seed, termHash(Kid));
  return Seed;
}

size_t shrinkray::termValueHashNode(const Op &O,
                                    const std::vector<size_t> &ChildHashes) {
  OpKind K = O.kind();
  if (K == OpKind::Int || K == OpKind::Float) {
    // One spelling-independent hash for both literal kinds, mirroring the
    // numeric-leaf case of termApproxEquals.
    size_t Seed = std::hash<uint8_t>()(0xD1); // literal tag, kind-agnostic
    hashCombine(Seed, hashDouble(O.numericValue()));
    return Seed;
  }
  size_t Seed = O.hash();
  for (size_t H : ChildHashes)
    hashCombine(Seed, H);
  return Seed;
}

size_t shrinkray::termValueHash(const TermPtr &T) {
  std::vector<size_t> Kids;
  Kids.reserve(T->numChildren());
  for (const TermPtr &Kid : T->children())
    Kids.push_back(termValueHash(Kid));
  return termValueHashNode(T->op(), Kids);
}

bool shrinkray::isFlatCsg(const TermPtr &T) {
  OpKind K = T->kind();
  if (isPrimitiveOp(K) || K == OpKind::External)
    return true;
  if (isAffineOp(K)) {
    // The vector argument must be all-literal.
    const TermPtr &Vec = T->child(0);
    if (Vec->kind() != OpKind::Vec3Ctor)
      return false;
    for (const TermPtr &Comp : Vec->children())
      if (Comp->kind() != OpKind::Float && Comp->kind() != OpKind::Int)
        return false;
    return isFlatCsg(T->child(1));
  }
  if (isBoolOp(K))
    return isFlatCsg(T->child(0)) && isFlatCsg(T->child(1));
  return false;
}

bool shrinkray::containsLoop(const TermPtr &T) {
  OpKind K = T->kind();
  if (K == OpKind::Fold || K == OpKind::Map || K == OpKind::Mapi ||
      K == OpKind::Repeat || K == OpKind::Fun)
    return true;
  for (const TermPtr &Kid : T->children())
    if (containsLoop(Kid))
      return true;
  return false;
}

// --- Convenience constructors ----------------------------------------------

TermPtr shrinkray::tEmpty() { return makeTerm(Op(OpKind::Empty)); }
TermPtr shrinkray::tUnit() { return makeTerm(Op(OpKind::Unit)); }
TermPtr shrinkray::tCylinder() { return makeTerm(Op(OpKind::Cylinder)); }
TermPtr shrinkray::tSphere() { return makeTerm(Op(OpKind::Sphere)); }
TermPtr shrinkray::tHexagon() { return makeTerm(Op(OpKind::Hexagon)); }

TermPtr shrinkray::tFloat(double Value) {
  return makeTerm(Op::makeFloat(Value));
}
TermPtr shrinkray::tInt(int64_t Value) { return makeTerm(Op::makeInt(Value)); }
TermPtr shrinkray::tVar(std::string_view Name) {
  return makeTerm(Op::makeVar(Symbol(Name)));
}
TermPtr shrinkray::tExternal(std::string_view Name) {
  return makeTerm(Op::makeExternal(Symbol(Name)));
}

TermPtr shrinkray::tVec3(TermPtr X, TermPtr Y, TermPtr Z) {
  return makeTerm(Op(OpKind::Vec3Ctor),
                  {std::move(X), std::move(Y), std::move(Z)});
}
TermPtr shrinkray::tVec3(double X, double Y, double Z) {
  return tVec3(tFloat(X), tFloat(Y), tFloat(Z));
}

TermPtr shrinkray::tTranslate(TermPtr Vec, TermPtr Child) {
  return makeTerm(Op(OpKind::Translate), {std::move(Vec), std::move(Child)});
}
TermPtr shrinkray::tTranslate(double X, double Y, double Z, TermPtr Child) {
  return tTranslate(tVec3(X, Y, Z), std::move(Child));
}
TermPtr shrinkray::tScale(TermPtr Vec, TermPtr Child) {
  return makeTerm(Op(OpKind::Scale), {std::move(Vec), std::move(Child)});
}
TermPtr shrinkray::tScale(double X, double Y, double Z, TermPtr Child) {
  return tScale(tVec3(X, Y, Z), std::move(Child));
}
TermPtr shrinkray::tRotate(TermPtr Vec, TermPtr Child) {
  return makeTerm(Op(OpKind::Rotate), {std::move(Vec), std::move(Child)});
}
TermPtr shrinkray::tRotate(double X, double Y, double Z, TermPtr Child) {
  return tRotate(tVec3(X, Y, Z), std::move(Child));
}

TermPtr shrinkray::tUnion(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Union), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tDiff(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Diff), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tInter(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Inter), {std::move(A), std::move(B)});
}

TermPtr shrinkray::tNil() { return makeTerm(Op(OpKind::Nil)); }
TermPtr shrinkray::tCons(TermPtr Head, TermPtr Tail) {
  return makeTerm(Op(OpKind::Cons), {std::move(Head), std::move(Tail)});
}
TermPtr shrinkray::tConcat(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Concat), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tRepeat(TermPtr Elem, TermPtr Count) {
  return makeTerm(Op(OpKind::Repeat), {std::move(Elem), std::move(Count)});
}

TermPtr shrinkray::tFold(TermPtr F, TermPtr Init, TermPtr List) {
  return makeTerm(Op(OpKind::Fold),
                  {std::move(F), std::move(Init), std::move(List)});
}
TermPtr shrinkray::tMap(TermPtr F, TermPtr List) {
  return makeTerm(Op(OpKind::Map), {std::move(F), std::move(List)});
}
TermPtr shrinkray::tMapi(TermPtr F, TermPtr List) {
  return makeTerm(Op(OpKind::Mapi), {std::move(F), std::move(List)});
}

TermPtr shrinkray::tFun(std::vector<TermPtr> ParamsThenBody) {
  assert(ParamsThenBody.size() >= 2 && "Fun needs >= 1 param and a body");
#ifndef NDEBUG
  for (size_t I = 0; I + 1 < ParamsThenBody.size(); ++I)
    assert(ParamsThenBody[I]->kind() == OpKind::Var &&
           "Fun parameters must be Vars");
#endif
  return makeTerm(Op(OpKind::Fun), std::move(ParamsThenBody));
}

TermPtr shrinkray::tApp(std::vector<TermPtr> FnThenArgs) {
  assert(FnThenArgs.size() >= 2 && "App needs a function and >= 1 argument");
  return makeTerm(Op(OpKind::App), std::move(FnThenArgs));
}

TermPtr shrinkray::tAdd(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Add), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tSub(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Sub), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tMul(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Mul), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tDiv(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Div), {std::move(A), std::move(B)});
}
TermPtr shrinkray::tSin(TermPtr A) {
  return makeTerm(Op(OpKind::Sin), {std::move(A)});
}
TermPtr shrinkray::tCos(TermPtr A) {
  return makeTerm(Op(OpKind::Cos), {std::move(A)});
}
TermPtr shrinkray::tArctan(TermPtr A, TermPtr B) {
  return makeTerm(Op(OpKind::Arctan), {std::move(A), std::move(B)});
}

TermPtr shrinkray::tOpRef(OpKind BoolOp) {
  return makeTerm(Op::makeOpRef(BoolOp));
}

TermPtr shrinkray::tUnionAll(const std::vector<TermPtr> &Items) {
  if (Items.empty())
    return tEmpty();
  TermPtr Acc = Items.back();
  for (size_t I = Items.size() - 1; I > 0; --I)
    Acc = tUnion(Items[I - 1], Acc);
  return Acc;
}

TermPtr shrinkray::tList(const std::vector<TermPtr> &Items) {
  TermPtr Acc = tNil();
  for (size_t I = Items.size(); I > 0; --I)
    Acc = tCons(Items[I - 1], Acc);
  return Acc;
}

TermPtr shrinkray::tIndexList(int64_t N) {
  assert(N >= 0 && "negative index-list length");
  TermPtr Acc = tNil();
  for (int64_t I = N; I > 0; --I)
    Acc = tCons(tInt(I - 1), Acc);
  return Acc;
}
