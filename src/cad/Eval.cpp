//===-- cad/Eval.cpp - LambdaCAD evaluator / flattener --------------------===//

#include "cad/Eval.h"

#include "linalg/Vec3.h"

#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

using namespace shrinkray;

namespace {

struct Value;
using ValuePtr = std::shared_ptr<const Value>;

/// Lexical environment: a persistent chain of bindings.
struct Env {
  Symbol Name;
  ValuePtr Bound;
  std::shared_ptr<const Env> Next;

  static std::shared_ptr<const Env> bind(std::shared_ptr<const Env> Outer,
                                         Symbol Name, ValuePtr V) {
    auto E = std::make_shared<Env>();
    E->Name = Name;
    E->Bound = std::move(V);
    E->Next = std::move(Outer);
    return E;
  }

  static const Value *lookup(const Env *E, Symbol Name) {
    for (; E; E = E->Next.get())
      if (E->Name == Name)
        return E->Bound.get();
    return nullptr;
  }
};

using EnvPtr = std::shared_ptr<const Env>;

/// Runtime values of the LambdaCAD interpreter.
struct Value {
  enum class Kind { Num, Cad, List, Closure, OpRefVal } K;

  // Num
  double Num = 0.0;
  bool NumIsInt = false;

  // Cad
  TermPtr Cad;

  // List
  std::vector<ValuePtr> Elems;

  // Closure
  std::vector<Symbol> Params;
  TermPtr Body;
  EnvPtr Captured;

  // OpRefVal
  OpKind RefOp = OpKind::Union;

  static ValuePtr num(double D, bool IsInt) {
    auto V = std::make_shared<Value>();
    V->K = Kind::Num;
    V->Num = D;
    V->NumIsInt = IsInt;
    return V;
  }
  static ValuePtr cad(TermPtr T) {
    auto V = std::make_shared<Value>();
    V->K = Kind::Cad;
    V->Cad = std::move(T);
    return V;
  }
  static ValuePtr list(std::vector<ValuePtr> Elems) {
    auto V = std::make_shared<Value>();
    V->K = Kind::List;
    V->Elems = std::move(Elems);
    return V;
  }
  static ValuePtr closure(std::vector<Symbol> Params, TermPtr Body,
                          EnvPtr Captured) {
    auto V = std::make_shared<Value>();
    V->K = Kind::Closure;
    V->Params = std::move(Params);
    V->Body = std::move(Body);
    V->Captured = std::move(Captured);
    return V;
  }
  static ValuePtr opRef(OpKind Op) {
    auto V = std::make_shared<Value>();
    V->K = Kind::OpRefVal;
    V->RefOp = Op;
    return V;
  }
};

class Evaluator {
public:
  explicit Evaluator(uint64_t FuelLimit) : Fuel(FuelLimit) {}

  EvalResult run(const TermPtr &Program) {
    ValuePtr V = eval(Program, nullptr);
    if (!V)
      return {nullptr, Diag};
    if (V->K != Value::Kind::Cad)
      return {nullptr, "program did not evaluate to a CAD solid"};
    return {V->Cad, ""};
  }

private:
  uint64_t Fuel;
  std::string Diag;

  ValuePtr fail(const std::string &Message) {
    if (Diag.empty())
      Diag = Message;
    return nullptr;
  }

  ValuePtr failKind(const char *What, const char *Expected) {
    std::ostringstream Os;
    Os << What << ": expected " << Expected;
    return fail(Os.str());
  }

  bool burnFuel() {
    if (Fuel == 0) {
      fail("evaluation fuel exhausted (diverging program?)");
      return false;
    }
    --Fuel;
    return true;
  }

  ValuePtr evalNum(const TermPtr &T, const Env *E, double &Out) {
    ValuePtr V = eval(T, E);
    if (!V)
      return nullptr;
    if (V->K != Value::Kind::Num)
      return failKind("arithmetic operand", "a number");
    Out = V->Num;
    return V;
  }

  ValuePtr evalCad(const TermPtr &T, const Env *E, TermPtr &Out) {
    ValuePtr V = eval(T, E);
    if (!V)
      return nullptr;
    if (V->K != Value::Kind::Cad)
      return failKind("solid operand", "a CAD solid");
    Out = V->Cad;
    return V;
  }

  /// Applies a closure to already-evaluated arguments.
  ValuePtr apply(const Value &Fn, const std::vector<ValuePtr> &Args) {
    if (Fn.K != Value::Kind::Closure)
      return failKind("application", "a function");
    if (Fn.Params.size() != Args.size())
      return fail("arity mismatch in function application");
    EnvPtr E = Fn.Captured;
    for (size_t I = 0; I < Args.size(); ++I)
      E = Env::bind(E, Fn.Params[I], Args[I]);
    return eval(Fn.Body, E.get());
  }

  /// Coerces a value to a list: lists stay, everything else becomes a
  /// singleton. Needed for the Fold-as-flat-map semantics (Figure 17).
  static std::vector<ValuePtr> asList(const ValuePtr &V) {
    if (V->K == Value::Kind::List)
      return V->Elems;
    return {V};
  }

  ValuePtr evalFold(const TermPtr &T, const Env *E) {
    ValuePtr Fn = eval(T->child(0), E);
    if (!Fn)
      return nullptr;
    ValuePtr Init = eval(T->child(1), E);
    if (!Init)
      return nullptr;
    ValuePtr ListV = eval(T->child(2), E);
    if (!ListV)
      return nullptr;
    if (ListV->K != Value::Kind::List)
      return failKind("Fold", "a list");

    if (Fn->K == Value::Kind::OpRefVal) {
      // Classic right fold of a boolean operator over CAD solids.
      if (Init->K != Value::Kind::Cad)
        return failKind("Fold initial value", "a CAD solid");
      TermPtr Acc = Init->Cad;
      for (size_t I = ListV->Elems.size(); I > 0; --I) {
        if (!burnFuel())
          return nullptr;
        const ValuePtr &Elem = ListV->Elems[I - 1];
        if (Elem->K != Value::Kind::Cad)
          return failKind("Fold element", "a CAD solid");
        // Union(x, Empty) == x: fold over Empty keeps terms tidy.
        if (Fn->RefOp == OpKind::Union && Acc->kind() == OpKind::Empty) {
          Acc = Elem->Cad;
          continue;
        }
        Acc = makeTerm(Op(Fn->RefOp), {Elem->Cad, Acc});
      }
      return Value::cad(Acc);
    }

    if (Fn->K == Value::Kind::Closure && Fn->Params.size() == 1) {
      // Flat-map: apply f to each element, concatenating list results.
      std::vector<ValuePtr> Out;
      for (const ValuePtr &Elem : ListV->Elems) {
        ValuePtr R = apply(*Fn, {Elem});
        if (!R)
          return nullptr;
        for (ValuePtr &Item : asList(R))
          Out.push_back(std::move(Item));
      }
      // Append the initial list (Nil in all paper examples).
      if (Init->K == Value::Kind::List)
        for (const ValuePtr &Item : Init->Elems)
          Out.push_back(Item);
      return Value::list(std::move(Out));
    }

    return fail("Fold expects a boolean operator or a unary function");
  }

  ValuePtr evalMap(const TermPtr &T, const Env *E, bool WithIndex) {
    ValuePtr Fn = eval(T->child(0), E);
    if (!Fn)
      return nullptr;
    ValuePtr ListV = eval(T->child(1), E);
    if (!ListV)
      return nullptr;
    if (ListV->K != Value::Kind::List)
      return failKind(WithIndex ? "Mapi" : "Map", "a list");

    std::vector<ValuePtr> Out;
    Out.reserve(ListV->Elems.size());
    for (size_t I = 0; I < ListV->Elems.size(); ++I) {
      std::vector<ValuePtr> Args;
      if (WithIndex)
        Args.push_back(Value::num(static_cast<double>(I), /*IsInt=*/true));
      Args.push_back(ListV->Elems[I]);
      ValuePtr R = apply(*Fn, Args);
      if (!R)
        return nullptr;
      Out.push_back(std::move(R));
    }
    return Value::list(std::move(Out));
  }

  ValuePtr eval(const TermPtr &T, const Env *E) {
    if (!burnFuel())
      return nullptr;

    const Op &O = T->op();
    switch (O.kind()) {
    // --- literals and leaves -------------------------------------------
    case OpKind::Int:
      return Value::num(static_cast<double>(O.intValue()), /*IsInt=*/true);
    case OpKind::Float:
      return Value::num(O.floatValue(), /*IsInt=*/false);
    case OpKind::Empty:
    case OpKind::Unit:
    case OpKind::Cylinder:
    case OpKind::Sphere:
    case OpKind::Hexagon:
      return Value::cad(makeTerm(Op(O.kind())));
    case OpKind::External:
      return Value::cad(T);
    case OpKind::Var: {
      const Value *Bound = Env::lookup(E, O.symbol());
      if (!Bound)
        return fail("unbound variable '" + std::string(O.symbol().str()) +
                    "'");
      return std::make_shared<Value>(*Bound);
    }
    case OpKind::OpRef:
      return Value::opRef(O.referencedOp());

    // --- affine transformations ----------------------------------------
    case OpKind::Translate:
    case OpKind::Scale:
    case OpKind::Rotate: {
      const TermPtr &Vec = T->child(0);
      if (Vec->kind() != OpKind::Vec3Ctor)
        return failKind("affine transform", "a Vec3 argument");
      double X, Y, Z;
      if (!evalNum(Vec->child(0), E, X) || !evalNum(Vec->child(1), E, Y) ||
          !evalNum(Vec->child(2), E, Z))
        return nullptr;
      TermPtr Child;
      if (!evalCad(T->child(1), E, Child))
        return nullptr;
      return Value::cad(makeTerm(O, {tVec3(X, Y, Z), Child}));
    }

    // --- booleans ---------------------------------------------------------
    case OpKind::Union:
    case OpKind::Diff:
    case OpKind::Inter: {
      TermPtr A, B;
      if (!evalCad(T->child(0), E, A) || !evalCad(T->child(1), E, B))
        return nullptr;
      return Value::cad(makeTerm(O, {A, B}));
    }

    // --- arithmetic -----------------------------------------------------
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Mul:
    case OpKind::Div: {
      double A, B;
      ValuePtr Va = evalNum(T->child(0), E, A);
      if (!Va)
        return nullptr;
      ValuePtr Vb = evalNum(T->child(1), E, B);
      if (!Vb)
        return nullptr;
      bool IsInt = Va->NumIsInt && Vb->NumIsInt;
      switch (O.kind()) {
      case OpKind::Add:
        return Value::num(A + B, IsInt);
      case OpKind::Sub:
        return Value::num(A - B, IsInt);
      case OpKind::Mul:
        return Value::num(A * B, IsInt);
      default:
        if (B == 0.0)
          return fail("division by zero");
        return Value::num(A / B, /*IsInt=*/false);
      }
    }
    case OpKind::Sin: {
      double A;
      if (!evalNum(T->child(0), E, A))
        return nullptr;
      return Value::num(std::sin(degToRad(A)), /*IsInt=*/false);
    }
    case OpKind::Cos: {
      double A;
      if (!evalNum(T->child(0), E, A))
        return nullptr;
      return Value::num(std::cos(degToRad(A)), /*IsInt=*/false);
    }
    case OpKind::Arctan: {
      double A, B;
      if (!evalNum(T->child(0), E, A) || !evalNum(T->child(1), E, B))
        return nullptr;
      return Value::num(std::atan2(A, B) * 180.0 / 3.14159265358979323846,
                        /*IsInt=*/false);
    }

    // --- lists -------------------------------------------------------------
    case OpKind::Nil:
      return Value::list({});
    case OpKind::Cons: {
      ValuePtr Head = eval(T->child(0), E);
      if (!Head)
        return nullptr;
      ValuePtr Tail = eval(T->child(1), E);
      if (!Tail)
        return nullptr;
      if (Tail->K != Value::Kind::List)
        return failKind("Cons tail", "a list");
      std::vector<ValuePtr> Elems;
      Elems.reserve(Tail->Elems.size() + 1);
      Elems.push_back(std::move(Head));
      for (const ValuePtr &Item : Tail->Elems)
        Elems.push_back(Item);
      return Value::list(std::move(Elems));
    }
    case OpKind::Concat: {
      ValuePtr A = eval(T->child(0), E);
      if (!A)
        return nullptr;
      ValuePtr B = eval(T->child(1), E);
      if (!B)
        return nullptr;
      if (A->K != Value::Kind::List || B->K != Value::Kind::List)
        return failKind("Concat", "two lists");
      std::vector<ValuePtr> Elems = A->Elems;
      for (const ValuePtr &Item : B->Elems)
        Elems.push_back(Item);
      return Value::list(std::move(Elems));
    }
    case OpKind::Repeat: {
      ValuePtr Elem = eval(T->child(0), E);
      if (!Elem)
        return nullptr;
      double N;
      ValuePtr Count = evalNum(T->child(1), E, N);
      if (!Count)
        return nullptr;
      if (N < 0 || N != std::floor(N) || N > 1e7)
        return fail("Repeat count must be a small non-negative integer");
      if (static_cast<uint64_t>(N) > Fuel)
        return fail("evaluation fuel exhausted (Repeat too large)");
      Fuel -= static_cast<uint64_t>(N);
      std::vector<ValuePtr> Elems(static_cast<size_t>(N), Elem);
      return Value::list(std::move(Elems));
    }

    // --- combinators ----------------------------------------------------------
    case OpKind::Fold:
      return evalFold(T, E);
    case OpKind::Map:
      return evalMap(T, E, /*WithIndex=*/false);
    case OpKind::Mapi:
      return evalMap(T, E, /*WithIndex=*/true);
    case OpKind::Fun: {
      std::vector<Symbol> Params;
      for (size_t I = 0; I + 1 < T->numChildren(); ++I) {
        if (T->child(I)->kind() != OpKind::Var)
          return failKind("Fun parameter", "a variable");
        Params.push_back(T->child(I)->op().symbol());
      }
      EnvPtr Captured;
      if (E) {
        // Copy the live chain head; chains are immutable so sharing is safe.
        // Rebuild a shared_ptr alias: environments are only created through
        // Env::bind which returns shared_ptr, so E is always owned by one.
        // We capture by walking: cheapest correct approach is to rebuild.
        std::vector<const Env *> Chain;
        for (const Env *Cur = E; Cur; Cur = Cur->Next.get())
          Chain.push_back(Cur);
        for (size_t I = Chain.size(); I > 0; --I)
          Captured = Env::bind(Captured, Chain[I - 1]->Name,
                               Chain[I - 1]->Bound);
      }
      return Value::closure(std::move(Params),
                            T->child(T->numChildren() - 1), Captured);
    }
    case OpKind::App: {
      ValuePtr Fn = eval(T->child(0), E);
      if (!Fn)
        return nullptr;
      std::vector<ValuePtr> Args;
      for (size_t I = 1; I < T->numChildren(); ++I) {
        ValuePtr A = eval(T->child(I), E);
        if (!A)
          return nullptr;
        Args.push_back(std::move(A));
      }
      return apply(*Fn, Args);
    }

    case OpKind::Vec3Ctor:
      return fail("Vec3 is only valid as an affine-transform argument");
    case OpKind::PatVar:
      return fail("pattern variable in an evaluated term");
    }
    return fail("unhandled operator in eval");
  }
};

} // namespace

EvalResult shrinkray::evalToFlatCsg(const TermPtr &Program,
                                    uint64_t FuelLimit) {
  Evaluator Ev(FuelLimit);
  EvalResult R = Ev.run(Program);
  assert((!R.Value || isFlatCsg(R.Value)) &&
         "evaluator produced a non-flat result");
  return R;
}
