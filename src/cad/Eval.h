//===-- cad/Eval.h - LambdaCAD evaluator / flattener ------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates LambdaCAD programs down to flat CSG. This is the "translator
/// that flattens" from the paper's evaluation (Sec. 6.1): structured models
/// with Fold/Mapi/Repeat are unrolled into loop-free CSG. It is also the
/// verification half of the pipeline (Sec. 7 translation validation): a
/// synthesized program is correct iff flattening it reproduces the input's
/// geometry.
///
/// Semantics notes (matching the paper's figures):
///  * `Fold(op, init, list)` with a boolean OpRef right-folds the operator.
///  * `Fold(f, init, list)` with a unary Fun flat-maps: each element is
///    passed to f and the resulting lists/values are concatenated onto init
///    (this is how Figures 14/17 build lists of CADs from index lists).
///  * `Mapi(f, list)` passes (index, element) to a two-parameter Fun.
///  * Trigonometric functions take degrees.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_CAD_EVAL_H
#define SHRINKRAY_CAD_EVAL_H

#include "cad/Term.h"

#include <string>

namespace shrinkray {

/// Result of evaluation: a flat CSG term or a diagnostic.
struct EvalResult {
  TermPtr Value;     ///< non-null on success; guaranteed isFlatCsg()
  std::string Error; ///< diagnostic on failure

  explicit operator bool() const { return Value != nullptr; }
};

/// Evaluates \p Program to flat CSG.
///
/// \p FuelLimit bounds the number of evaluation steps so malformed inputs
/// (e.g. unbounded recursion through App) terminate with an error.
EvalResult evalToFlatCsg(const TermPtr &Program, uint64_t FuelLimit = 1u << 22);

} // namespace shrinkray

#endif // SHRINKRAY_CAD_EVAL_H
