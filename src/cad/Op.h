//===-- cad/Op.h - Operators of CSG and LambdaCAD ---------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operator vocabulary shared by the flat CSG input language and the
/// LambdaCAD output language (paper, Figure 6). An Op is an operator kind
/// plus an optional literal payload (integer, float, or symbol). Both the
/// concrete `Term` tree and the e-graph's `ENode`s are built from Ops.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_CAD_OP_H
#define SHRINKRAY_CAD_OP_H

#include "support/Hashing.h"
#include "support/Symbol.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

namespace shrinkray {

/// Every operator of CSG and LambdaCAD.
enum class OpKind : uint8_t {
  // --- CSG solid primitives (canonical: unit size, at the origin) ---------
  Empty,    ///< The empty solid.
  Unit,     ///< Unit cube [0,1]^3.
  Cylinder, ///< Unit cylinder: radius 1, 0 <= z <= 1.
  Sphere,   ///< Unit sphere: radius 1, centered at the origin.
  Hexagon,  ///< Unit hexagonal prism: circumradius 1, 0 <= z <= 1.

  // --- Affine transformations (Vec3 argument, then child) -----------------
  Translate, ///< Translate(Vec3, C)
  Scale,     ///< Scale(Vec3, C)
  Rotate,    ///< Rotate(Vec3, C), Euler degrees, OpenSCAD Rz*Ry*Rx order.

  // --- Boolean operations --------------------------------------------------
  Union, ///< Union(C, C)
  Diff,  ///< Diff(C, C)
  Inter, ///< Inter(C, C)

  // --- Vectors and scalar literals -----------------------------------------
  Vec3Ctor, ///< Vec3(e, e, e): the 3-vector argument of affine ops.
  Int,      ///< Integer literal (payload).
  Float,    ///< Float literal (payload).

  // --- Lists ----------------------------------------------------------------
  Nil,    ///< Empty list.
  Cons,   ///< Cons(e, list)
  Concat, ///< Concat(list, list): list append (the paper's `@`).
  Repeat, ///< Repeat(e, n): list of n copies of e.

  // --- Functional combinators ------------------------------------------------
  Fold, ///< Fold(f, init, list). f may be an OpRef (binary fold) or a Fun.
  Map,  ///< Map(f, list)
  Mapi, ///< Mapi(f, list): f receives the element index and the element.
  Fun,  ///< Fun(params..., body): last child is the body, preceding are Vars.
  App,  ///< App(f, args...)
  Var,  ///< Variable reference (symbol payload).

  // --- Arithmetic -------------------------------------------------------------
  Add,
  Sub,
  Mul,
  Div,
  Sin,    ///< Sin(e), degrees.
  Cos,    ///< Cos(e), degrees.
  Arctan, ///< Arctan(e, e) = atan2, degrees.

  // --- Escape hatches -----------------------------------------------------------
  External, ///< Opaque named sub-design (paper Sec. 6.1: Hull/Mirror).
  OpRef,    ///< A boolean operator used as a value, e.g. Fold(Union, ...).

  // --- Pattern-matching only ------------------------------------------------------
  PatVar, ///< Pattern variable; only valid inside rewrite patterns.
};

/// Number of distinct OpKind values (for tables indexed by kind).
constexpr unsigned NumOpKinds = static_cast<unsigned>(OpKind::PatVar) + 1;

/// Returns the fixed child arity of \p Kind, or -1 if variadic (Fun, App).
int opArity(OpKind Kind);

/// The canonical spelling used by the s-expression syntax.
std::string_view opName(OpKind Kind);

/// Parses \p Name back to an OpKind; returns false if unknown.
bool opKindFromName(std::string_view Name, OpKind &Out);

/// True for the three affine transformation operators.
inline bool isAffineOp(OpKind K) {
  return K == OpKind::Translate || K == OpKind::Scale || K == OpKind::Rotate;
}

/// True for the three boolean (set) operators.
inline bool isBoolOp(OpKind K) {
  return K == OpKind::Union || K == OpKind::Diff || K == OpKind::Inter;
}

/// True for the CSG solid primitives.
inline bool isPrimitiveOp(OpKind K) {
  return K == OpKind::Empty || K == OpKind::Unit || K == OpKind::Cylinder ||
         K == OpKind::Sphere || K == OpKind::Hexagon;
}

/// An operator instance: kind plus literal payload. Equality and hashing are
/// structural (kind + payload); children live in the containing Term/ENode.
class Op {
public:
  /// Payload-free operator. Asserts that \p Kind takes no payload.
  explicit Op(OpKind Kind) : Kind(Kind) {
    assert(Kind != OpKind::Int && Kind != OpKind::Float &&
           Kind != OpKind::Var && Kind != OpKind::External &&
           Kind != OpKind::OpRef && Kind != OpKind::PatVar &&
           "operator kind requires a payload");
  }

  static Op makeInt(int64_t Value) {
    Op O(OpKind::Int, PayloadTag{});
    O.IntValue = Value;
    return O;
  }

  static Op makeFloat(double Value) {
    assert(!std::isnan(Value) && "NaN literal in CAD term");
    Op O(OpKind::Float, PayloadTag{});
    O.FloatValue = Value == 0.0 ? 0.0 : Value; // canonicalize -0.0
    return O;
  }

  static Op makeVar(Symbol Name) {
    Op O(OpKind::Var, PayloadTag{});
    O.SymValue = Name;
    return O;
  }

  static Op makeExternal(Symbol Name) {
    Op O(OpKind::External, PayloadTag{});
    O.SymValue = Name;
    return O;
  }

  /// A boolean operator used as a first-class value (e.g. Fold(Union, ...)).
  static Op makeOpRef(OpKind Referenced) {
    assert(isBoolOp(Referenced) && "OpRef must name a boolean operator");
    Op O(OpKind::OpRef, PayloadTag{});
    O.SymValue = Symbol(opName(Referenced));
    return O;
  }

  static Op makePatVar(Symbol Name) {
    Op O(OpKind::PatVar, PayloadTag{});
    O.SymValue = Name;
    return O;
  }

  OpKind kind() const { return Kind; }

  bool is(OpKind K) const { return Kind == K; }

  int64_t intValue() const {
    assert(Kind == OpKind::Int && "not an Int");
    return IntValue;
  }

  double floatValue() const {
    assert(Kind == OpKind::Float && "not a Float");
    return FloatValue;
  }

  /// The numeric value of an Int or Float literal.
  double numericValue() const {
    assert((Kind == OpKind::Int || Kind == OpKind::Float) && "not a number");
    return Kind == OpKind::Int ? static_cast<double>(IntValue) : FloatValue;
  }

  Symbol symbol() const {
    assert((Kind == OpKind::Var || Kind == OpKind::External ||
            Kind == OpKind::OpRef || Kind == OpKind::PatVar) &&
           "operator has no symbol payload");
    return SymValue;
  }

  /// For an OpRef, the boolean operator it references.
  OpKind referencedOp() const;

  /// Display string, e.g. "Translate", "2.5", "Var:i".
  std::string str() const;

  friend bool operator==(const Op &A, const Op &B) {
    if (A.Kind != B.Kind)
      return false;
    switch (A.Kind) {
    case OpKind::Int:
      return A.IntValue == B.IntValue;
    case OpKind::Float:
      return A.FloatValue == B.FloatValue;
    case OpKind::Var:
    case OpKind::External:
    case OpKind::OpRef:
    case OpKind::PatVar:
      return A.SymValue == B.SymValue;
    default:
      return true;
    }
  }
  friend bool operator!=(const Op &A, const Op &B) { return !(A == B); }

  size_t hash() const {
    size_t Seed = std::hash<uint8_t>()(static_cast<uint8_t>(Kind));
    switch (Kind) {
    case OpKind::Int:
      hashCombine(Seed, std::hash<int64_t>()(IntValue));
      break;
    case OpKind::Float:
      hashCombine(Seed, hashDouble(FloatValue));
      break;
    case OpKind::Var:
    case OpKind::External:
    case OpKind::OpRef:
    case OpKind::PatVar:
      hashCombine(Seed, std::hash<Symbol>()(SymValue));
      break;
    default:
      break;
    }
    return Seed;
  }

private:
  struct PayloadTag {};
  Op(OpKind Kind, PayloadTag) : Kind(Kind) {}

  OpKind Kind;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  Symbol SymValue;
};

} // namespace shrinkray

template <> struct std::hash<shrinkray::Op> {
  size_t operator()(const shrinkray::Op &O) const noexcept { return O.hash(); }
};

#endif // SHRINKRAY_CAD_OP_H
