//===-- cad/Term.h - Immutable, hashconsed CAD term trees -------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, shareable term trees over the Op vocabulary. Terms represent
/// both flat CSG inputs and synthesized LambdaCAD outputs. Subtrees are
/// shared via shared_ptr, so "trees" are really DAGs; size/depth metrics
/// count the unrolled tree (matching how the paper counts AST nodes).
///
/// Terms are *hashconsed*: every construction routes through makeTerm,
/// which interns the (operator, children) shape in a process-wide sharded
/// table, so structurally equal terms are pointer-equal for their entire
/// lifetime. Each node carries metadata (structural hash, value-level
/// hash, size, depth, primitive count, loop flag) computed once at
/// construction in O(arity) from its children's metadata — which makes
/// termEquals/termHash/termValueHash/termSize/termDepth O(1) instead of
/// O(tree).
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_CAD_TERM_H
#define SHRINKRAY_CAD_TERM_H

#include "cad/Op.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace shrinkray {

class Term;
/// Shared immutable term handle.
using TermPtr = std::shared_ptr<const Term>;

/// Creates a term node. Interned: returns the existing node when an
/// identical (operator, children) shape is live, so the result is
/// pointer-equal to every structurally equal term. Thread-safe.
TermPtr makeTerm(Op O, std::vector<TermPtr> Children = {});

/// Interner probe that never constructs: returns the live node for
/// (\p O, \p Children) or null. This is makeTerm's hit path without
/// building a child vector — callers on hit-heavy paths (the fixed-point
/// k-best oracle re-derives the same candidates every pass) probe with
/// raw child pointers and fall back to makeTerm only on a miss.
/// Thread-safe.
TermPtr lookupTerm(const Op &O, const Term *const *Children, size_t N);

/// An operator applied to child terms. Construction is private — all
/// terms come from makeTerm (or the convenience constructors below),
/// which is what upholds the interning invariant.
class Term {
  /// Private construction token: only makeTerm (a friend) can name it, so
  /// the constructor can be public for make_shared — which co-allocates
  /// the node with its control block, one allocation per interned term —
  /// without opening construction to anyone else.
  struct InternKey {
    explicit InternKey() = default;
  };

public:
  Term(InternKey, Op O, std::vector<TermPtr> Children, size_t StructuralHash);
  /// Unlinks this node's slot from the intern table. Public so the
  /// shared_ptr control block can invoke it; never called directly.
  ~Term();
  Term(const Term &) = delete;
  Term &operator=(const Term &) = delete;

  const Op &op() const { return Operator; }
  OpKind kind() const { return Operator.kind(); }
  const std::vector<TermPtr> &children() const { return Kids; }
  size_t numChildren() const { return Kids.size(); }
  const TermPtr &child(size_t I) const {
    assert(I < Kids.size() && "child index out of range");
    return Kids[I];
  }

  // Metadata precomputed at construction; all O(1).

  /// Structural hash consistent with termEquals.
  size_t hash() const { return HashV; }
  /// Process-stable value-level hash: numeric literals hash by value
  /// across the Int/Float divide, symbols by spelling. See termValueHash.
  uint64_t valueHash() const { return ValueHashV; }
  /// Unrolled AST node count (paper's #ns metric).
  uint64_t size() const { return SizeV; }
  /// AST depth; a leaf has depth 1 (paper's #d metric).
  uint64_t depth() const { return DepthV; }
  /// Unrolled solid-primitive leaf count (paper's #p metric).
  uint64_t primitives() const { return PrimsV; }
  /// True if any node is a Fold/Map/Mapi/Repeat/Fun combinator.
  bool containsLoop() const { return LoopV; }

private:
  friend TermPtr makeTerm(Op O, std::vector<TermPtr> Children);

  Op Operator;
  std::vector<TermPtr> Kids;
  size_t HashV;
  uint64_t ValueHashV;
  uint64_t SizeV;
  uint64_t DepthV;
  uint64_t PrimsV;
  bool LoopV;
};

/// Counters for the term interner (process-wide, monotonic except Live).
struct TermInternStats {
  uint64_t Unique; ///< Distinct terms ever constructed (intern misses).
  uint64_t Hits;   ///< makeTerm calls answered by an existing node.
  uint64_t Live;   ///< Currently live interned nodes.
  /// Fraction of makeTerm calls that reused an existing node.
  double hitRate() const {
    uint64_t Total = Unique + Hits;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total) : 0.0;
  }
};

/// Snapshot of the interner counters. Thread-safe.
TermInternStats termInternStats();

/// Number of AST nodes, unrolling shared subtrees (paper's #ns metric).
inline uint64_t termSize(const TermPtr &T) { return T->size(); }

/// AST depth; a leaf has depth 1 (paper's #d metric).
inline uint64_t termDepth(const TermPtr &T) { return T->depth(); }

/// Number of solid-primitive leaves, unrolled (paper's #p metric). Counts
/// Unit/Cylinder/Sphere/Hexagon/External occurrences; Repeat(prim, n) in an
/// *unevaluated* term counts once (metrics are over the program text).
inline uint64_t termPrimitives(const TermPtr &T) { return T->primitives(); }

/// Structural equality (exact float comparison). O(1): the interner
/// guarantees structurally equal terms are pointer-equal.
inline bool termEquals(const TermPtr &A, const TermPtr &B) {
  return A.get() == B.get();
}

/// Structural equality with numeric literals compared within \p Eps.
bool termApproxEquals(const TermPtr &A, const TermPtr &B, double Eps);

/// Structural hash consistent with termEquals.
inline size_t termHash(const TermPtr &T) { return T->hash(); }

/// Hash consistent with termApproxEquals(A, B, 0.0): numeric literals hash
/// by value across the Int/Float divide, so Int(5) and Float(5.0) collide.
/// Used to bucket candidate programs for value-level deduplication (k-best
/// extraction must not report Int/Float respellings as program diversity).
/// Process-stable (symbols hash by spelling, not interning id), so it
/// doubles as the result cache's exact-input fingerprint.
inline size_t termValueHash(const TermPtr &T) { return T->valueHash(); }

/// Incremental form of termValueHash: the hash of a node with operator \p O
/// whose children hash to \p ChildHashes. termValueHash(makeTerm(O, Kids))
/// == termValueHashNode(O, map(termValueHash, Kids)), so callers that
/// already know child hashes can hash a combined term in O(arity) instead
/// of rewalking the tree.
size_t termValueHashNode(const Op &O, const std::vector<size_t> &ChildHashes);

/// True if the term is *flat CSG*: only primitives, affine transforms with
/// literal Vec3 arguments, booleans, and External leaves (no lists, loops,
/// functions, or variables). This is the expected input of the synthesizer.
bool isFlatCsg(const TermPtr &T);

/// True if the term contains a loop/function combinator (Fold/Map/Mapi/
/// Repeat/Fun). Used to report "structure exposed" in the evaluation.
inline bool containsLoop(const TermPtr &T) { return T->containsLoop(); }

// --- Convenience constructors (the public TermBuilder API) -----------------

TermPtr tEmpty();
TermPtr tUnit();
TermPtr tCylinder();
TermPtr tSphere();
TermPtr tHexagon();
TermPtr tFloat(double Value);
TermPtr tInt(int64_t Value);
TermPtr tVar(std::string_view Name);
TermPtr tExternal(std::string_view Name);
TermPtr tVec3(TermPtr X, TermPtr Y, TermPtr Z);
TermPtr tVec3(double X, double Y, double Z);
TermPtr tTranslate(TermPtr Vec, TermPtr Child);
TermPtr tTranslate(double X, double Y, double Z, TermPtr Child);
TermPtr tScale(TermPtr Vec, TermPtr Child);
TermPtr tScale(double X, double Y, double Z, TermPtr Child);
TermPtr tRotate(TermPtr Vec, TermPtr Child);
TermPtr tRotate(double X, double Y, double Z, TermPtr Child);
TermPtr tUnion(TermPtr A, TermPtr B);
TermPtr tDiff(TermPtr A, TermPtr B);
TermPtr tInter(TermPtr A, TermPtr B);
TermPtr tNil();
TermPtr tCons(TermPtr Head, TermPtr Tail);
TermPtr tConcat(TermPtr A, TermPtr B);
TermPtr tRepeat(TermPtr Elem, TermPtr Count);
TermPtr tFold(TermPtr F, TermPtr Init, TermPtr List);
TermPtr tMap(TermPtr F, TermPtr List);
TermPtr tMapi(TermPtr F, TermPtr List);
TermPtr tFun(std::vector<TermPtr> ParamsThenBody);
TermPtr tApp(std::vector<TermPtr> FnThenArgs);
TermPtr tAdd(TermPtr A, TermPtr B);
TermPtr tSub(TermPtr A, TermPtr B);
TermPtr tMul(TermPtr A, TermPtr B);
TermPtr tDiv(TermPtr A, TermPtr B);
TermPtr tSin(TermPtr A);
TermPtr tCos(TermPtr A);
TermPtr tArctan(TermPtr A, TermPtr B);
TermPtr tOpRef(OpKind BoolOp);

/// Right-nested union of all of \p Items; Empty when the list is empty.
TermPtr tUnionAll(const std::vector<TermPtr> &Items);

/// Builds the list Cons(Items[0], Cons(..., Nil)).
TermPtr tList(const std::vector<TermPtr> &Items);

/// Builds Cons(Int 0, Cons(Int 1, ..., Nil)) with \p N entries.
TermPtr tIndexList(int64_t N);

} // namespace shrinkray

#endif // SHRINKRAY_CAD_TERM_H
