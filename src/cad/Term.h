//===-- cad/Term.h - Immutable CAD term trees -------------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, shareable term trees over the Op vocabulary. Terms represent
/// both flat CSG inputs and synthesized LambdaCAD outputs. Subtrees are
/// shared via shared_ptr, so "trees" are really DAGs; size/depth metrics
/// count the unrolled tree (matching how the paper counts AST nodes).
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_CAD_TERM_H
#define SHRINKRAY_CAD_TERM_H

#include "cad/Op.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace shrinkray {

class Term;
/// Shared immutable term handle.
using TermPtr = std::shared_ptr<const Term>;

/// An operator applied to child terms.
class Term {
public:
  Term(Op O, std::vector<TermPtr> Children)
      : Operator(std::move(O)), Kids(std::move(Children)) {
    assert((opArity(Operator.kind()) < 0 ||
            static_cast<size_t>(opArity(Operator.kind())) == Kids.size()) &&
           "child count does not match operator arity");
#ifndef NDEBUG
    for (const TermPtr &Kid : Kids)
      assert(Kid && "null child term");
#endif
  }

  const Op &op() const { return Operator; }
  OpKind kind() const { return Operator.kind(); }
  const std::vector<TermPtr> &children() const { return Kids; }
  size_t numChildren() const { return Kids.size(); }
  const TermPtr &child(size_t I) const {
    assert(I < Kids.size() && "child index out of range");
    return Kids[I];
  }

private:
  Op Operator;
  std::vector<TermPtr> Kids;
};

/// Creates a term node.
TermPtr makeTerm(Op O, std::vector<TermPtr> Children = {});

/// Number of AST nodes, unrolling shared subtrees (paper's #ns metric).
uint64_t termSize(const TermPtr &T);

/// AST depth; a leaf has depth 1 (paper's #d metric).
uint64_t termDepth(const TermPtr &T);

/// Number of solid-primitive leaves, unrolled (paper's #p metric). Counts
/// Unit/Cylinder/Sphere/Hexagon/External occurrences; Repeat(prim, n) in an
/// *unevaluated* term counts once (metrics are over the program text).
uint64_t termPrimitives(const TermPtr &T);

/// Structural equality (exact float comparison).
bool termEquals(const TermPtr &A, const TermPtr &B);

/// Structural equality with numeric literals compared within \p Eps.
bool termApproxEquals(const TermPtr &A, const TermPtr &B, double Eps);

/// Structural hash consistent with termEquals.
size_t termHash(const TermPtr &T);

/// Hash consistent with termApproxEquals(A, B, 0.0): numeric literals hash
/// by value across the Int/Float divide, so Int(5) and Float(5.0) collide.
/// Used to bucket candidate programs for value-level deduplication (k-best
/// extraction must not report Int/Float respellings as program diversity).
size_t termValueHash(const TermPtr &T);

/// Incremental form of termValueHash: the hash of a node with operator \p O
/// whose children hash to \p ChildHashes. termValueHash(makeTerm(O, Kids))
/// == termValueHashNode(O, map(termValueHash, Kids)), so callers that
/// already know child hashes can hash a combined term in O(arity) instead
/// of rewalking the tree.
size_t termValueHashNode(const Op &O, const std::vector<size_t> &ChildHashes);

/// True if the term is *flat CSG*: only primitives, affine transforms with
/// literal Vec3 arguments, booleans, and External leaves (no lists, loops,
/// functions, or variables). This is the expected input of the synthesizer.
bool isFlatCsg(const TermPtr &T);

/// True if the term contains a loop/function combinator (Fold/Map/Mapi/
/// Repeat/Fun). Used to report "structure exposed" in the evaluation.
bool containsLoop(const TermPtr &T);

// --- Convenience constructors (the public TermBuilder API) -----------------

TermPtr tEmpty();
TermPtr tUnit();
TermPtr tCylinder();
TermPtr tSphere();
TermPtr tHexagon();
TermPtr tFloat(double Value);
TermPtr tInt(int64_t Value);
TermPtr tVar(std::string_view Name);
TermPtr tExternal(std::string_view Name);
TermPtr tVec3(TermPtr X, TermPtr Y, TermPtr Z);
TermPtr tVec3(double X, double Y, double Z);
TermPtr tTranslate(TermPtr Vec, TermPtr Child);
TermPtr tTranslate(double X, double Y, double Z, TermPtr Child);
TermPtr tScale(TermPtr Vec, TermPtr Child);
TermPtr tScale(double X, double Y, double Z, TermPtr Child);
TermPtr tRotate(TermPtr Vec, TermPtr Child);
TermPtr tRotate(double X, double Y, double Z, TermPtr Child);
TermPtr tUnion(TermPtr A, TermPtr B);
TermPtr tDiff(TermPtr A, TermPtr B);
TermPtr tInter(TermPtr A, TermPtr B);
TermPtr tNil();
TermPtr tCons(TermPtr Head, TermPtr Tail);
TermPtr tConcat(TermPtr A, TermPtr B);
TermPtr tRepeat(TermPtr Elem, TermPtr Count);
TermPtr tFold(TermPtr F, TermPtr Init, TermPtr List);
TermPtr tMap(TermPtr F, TermPtr List);
TermPtr tMapi(TermPtr F, TermPtr List);
TermPtr tFun(std::vector<TermPtr> ParamsThenBody);
TermPtr tApp(std::vector<TermPtr> FnThenArgs);
TermPtr tAdd(TermPtr A, TermPtr B);
TermPtr tSub(TermPtr A, TermPtr B);
TermPtr tMul(TermPtr A, TermPtr B);
TermPtr tDiv(TermPtr A, TermPtr B);
TermPtr tSin(TermPtr A);
TermPtr tCos(TermPtr A);
TermPtr tArctan(TermPtr A, TermPtr B);
TermPtr tOpRef(OpKind BoolOp);

/// Right-nested union of all of \p Items; Empty when the list is empty.
TermPtr tUnionAll(const std::vector<TermPtr> &Items);

/// Builds the list Cons(Items[0], Cons(..., Nil)).
TermPtr tList(const std::vector<TermPtr> &Items);

/// Builds Cons(Int 0, Cons(Int 1, ..., Nil)) with \p N entries.
TermPtr tIndexList(int64_t N);

} // namespace shrinkray

#endif // SHRINKRAY_CAD_TERM_H
