//===-- scad/ScadParser.cpp - Mini-OpenSCAD frontend ----------------------===//

#include "scad/ScadParser.h"

#include "linalg/Vec3.h"

#include <cctype>
#include <cmath>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

using namespace shrinkray;
using namespace shrinkray::scad;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokKind {
  Ident,
  Number,
  Punct, // single char: ( ) { } [ ] , ; = : + - * /
  End,
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  double Num = 0.0;
  size_t Offset = 0;
};

class Lexer {
public:
  explicit Lexer(std::string_view Src) : Src(Src) { advance(); }

  const Token &peek() const { return Cur; }

  Token take() {
    Token T = Cur;
    advance();
    return T;
  }

  bool atPunct(char C) const {
    return Cur.Kind == TokKind::Punct && Cur.Text[0] == C;
  }

  bool atIdent(std::string_view S) const {
    return Cur.Kind == TokKind::Ident && Cur.Text == S;
  }

private:
  std::string_view Src;
  size_t Pos = 0;
  Token Cur;

  void skipTrivia() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '*') {
        Pos += 2;
        while (Pos + 1 < Src.size() &&
               !(Src[Pos] == '*' && Src[Pos + 1] == '/'))
          ++Pos;
        Pos = std::min(Pos + 2, Src.size());
        continue;
      }
      break;
    }
  }

  void advance() {
    skipTrivia();
    Cur = Token();
    Cur.Offset = Pos;
    if (Pos >= Src.size())
      return;
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$') {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_' || Src[Pos] == '$'))
        ++Pos;
      Cur.Kind = TokKind::Ident;
      Cur.Text = std::string(Src.substr(Start, Pos - Start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && Pos + 1 < Src.size() &&
         std::isdigit(static_cast<unsigned char>(Src[Pos + 1])))) {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (std::isdigit(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '.' || Src[Pos] == 'e' || Src[Pos] == 'E' ||
              ((Src[Pos] == '+' || Src[Pos] == '-') &&
               (Src[Pos - 1] == 'e' || Src[Pos - 1] == 'E'))))
        ++Pos;
      Cur.Kind = TokKind::Number;
      Cur.Text = std::string(Src.substr(Start, Pos - Start));
      Cur.Num = std::strtod(Cur.Text.c_str(), nullptr);
      return;
    }
    Cur.Kind = TokKind::Punct;
    Cur.Text = std::string(1, C);
    ++Pos;
  }
};

//===----------------------------------------------------------------------===//
// Values and environments
//===----------------------------------------------------------------------===//

struct ScadValue {
  enum class Kind { Num, Vec, Bool } K = Kind::Num;
  double Num = 0.0;
  std::vector<double> Vec;
  bool Bool = false;

  static ScadValue number(double D) {
    ScadValue V;
    V.K = Kind::Num;
    V.Num = D;
    return V;
  }
  static ScadValue vec(std::vector<double> Elems) {
    ScadValue V;
    V.K = Kind::Vec;
    V.Vec = std::move(Elems);
    return V;
  }
  static ScadValue boolean(bool B) {
    ScadValue V;
    V.K = Kind::Bool;
    V.Bool = B;
    return V;
  }
};

//===----------------------------------------------------------------------===//
// Parser / evaluator
//===----------------------------------------------------------------------===//

class ScadParserImpl {
public:
  explicit ScadParserImpl(std::string_view Src) : Lex(Src) {}

  ScadResult run() {
    std::vector<TermPtr> Solids;
    while (Lex.peek().Kind != TokKind::End) {
      if (!parseStatement(Solids))
        return {nullptr, Diag};
    }
    return {tUnionAll(Solids), ""};
  }

private:
  Lexer Lex;
  std::string Diag;
  std::map<std::string, ScadValue> Vars;
  int ExternalCount = 0;

  bool fail(const std::string &Message) {
    if (Diag.empty()) {
      std::ostringstream Os;
      Os << "offset " << Lex.peek().Offset << ": " << Message;
      Diag = Os.str();
    }
    return false;
  }

  bool expectPunct(char C) {
    if (!Lex.atPunct(C))
      return fail(std::string("expected '") + C + "'");
    Lex.take();
    return true;
  }

  // --- expressions ------------------------------------------------------

  std::optional<ScadValue> parsePrimary() {
    const Token &T = Lex.peek();
    if (T.Kind == TokKind::Number) {
      double D = Lex.take().Num;
      return ScadValue::number(D);
    }
    if (T.Kind == TokKind::Ident) {
      std::string Name = Lex.take().Text;
      if (Name == "true")
        return ScadValue::boolean(true);
      if (Name == "false")
        return ScadValue::boolean(false);
      if (Name == "sin" || Name == "cos") {
        if (!expectPunct('('))
          return std::nullopt;
        std::optional<ScadValue> Arg = parseExpr();
        if (!Arg || !expectPunct(')'))
          return std::nullopt;
        if (Arg->K != ScadValue::Kind::Num) {
          fail("trig of a non-number");
          return std::nullopt;
        }
        double R = degToRad(Arg->Num);
        return ScadValue::number(Name == "sin" ? std::sin(R) : std::cos(R));
      }
      auto It = Vars.find(Name);
      if (It == Vars.end()) {
        fail("unknown variable '" + Name + "'");
        return std::nullopt;
      }
      return It->second;
    }
    if (Lex.atPunct('(')) {
      Lex.take();
      std::optional<ScadValue> V = parseExpr();
      if (!V || !expectPunct(')'))
        return std::nullopt;
      return V;
    }
    if (Lex.atPunct('-')) {
      Lex.take();
      std::optional<ScadValue> V = parsePrimary();
      if (!V)
        return std::nullopt;
      if (V->K == ScadValue::Kind::Num)
        return ScadValue::number(-V->Num);
      if (V->K == ScadValue::Kind::Vec) {
        for (double &D : V->Vec)
          D = -D;
        return V;
      }
      fail("cannot negate a boolean");
      return std::nullopt;
    }
    if (Lex.atPunct('[')) {
      Lex.take();
      std::vector<double> Elems;
      while (!Lex.atPunct(']')) {
        std::optional<ScadValue> V = parseExpr();
        if (!V)
          return std::nullopt;
        if (V->K != ScadValue::Kind::Num) {
          fail("vector elements must be numbers");
          return std::nullopt;
        }
        Elems.push_back(V->Num);
        if (Lex.atPunct(','))
          Lex.take();
        else if (Lex.atPunct(':')) {
          // A range literal [start : end] or [start : step : end].
          Lex.take();
          std::optional<ScadValue> B = parseExpr();
          if (!B || B->K != ScadValue::Kind::Num)
            return std::nullopt;
          double Step = 1.0, End;
          if (Lex.atPunct(':')) {
            Lex.take();
            std::optional<ScadValue> C = parseExpr();
            if (!C || C->K != ScadValue::Kind::Num)
              return std::nullopt;
            Step = B->Num;
            End = C->Num;
          } else {
            End = B->Num;
          }
          if (!expectPunct(']'))
            return std::nullopt;
          std::vector<double> Range;
          if (Step > 0)
            for (double X = Elems[0]; X <= End + 1e-9; X += Step)
              Range.push_back(X);
          return ScadValue::vec(std::move(Range));
        }
      }
      Lex.take(); // ']'
      return ScadValue::vec(std::move(Elems));
    }
    fail("expected an expression");
    return std::nullopt;
  }

  std::optional<ScadValue> parseTermExpr() {
    std::optional<ScadValue> Lhs = parsePrimary();
    if (!Lhs)
      return std::nullopt;
    while (Lex.atPunct('*') || Lex.atPunct('/')) {
      char Op = Lex.take().Text[0];
      std::optional<ScadValue> Rhs = parsePrimary();
      if (!Rhs)
        return std::nullopt;
      if (Lhs->K != ScadValue::Kind::Num || Rhs->K != ScadValue::Kind::Num) {
        fail("arithmetic on non-numbers");
        return std::nullopt;
      }
      if (Op == '/' && Rhs->Num == 0.0) {
        fail("division by zero");
        return std::nullopt;
      }
      Lhs = ScadValue::number(Op == '*' ? Lhs->Num * Rhs->Num
                                        : Lhs->Num / Rhs->Num);
    }
    return Lhs;
  }

  std::optional<ScadValue> parseExpr() {
    std::optional<ScadValue> Lhs = parseTermExpr();
    if (!Lhs)
      return std::nullopt;
    while (Lex.atPunct('+') || Lex.atPunct('-')) {
      char Op = Lex.take().Text[0];
      std::optional<ScadValue> Rhs = parseTermExpr();
      if (!Rhs)
        return std::nullopt;
      if (Lhs->K != ScadValue::Kind::Num || Rhs->K != ScadValue::Kind::Num) {
        fail("arithmetic on non-numbers");
        return std::nullopt;
      }
      Lhs = ScadValue::number(Op == '+' ? Lhs->Num + Rhs->Num
                                        : Lhs->Num - Rhs->Num);
    }
    return Lhs;
  }

  // --- module arguments ----------------------------------------------------

  struct Args {
    std::vector<ScadValue> Positional;
    std::map<std::string, ScadValue> Named;

    const ScadValue *named(const std::string &Name) const {
      auto It = Named.find(Name);
      return It == Named.end() ? nullptr : &It->second;
    }
  };

  std::optional<Args> parseArgs() {
    Args Out;
    if (!expectPunct('('))
      return std::nullopt;
    while (!Lex.atPunct(')')) {
      // Named argument: ident '=' expr (lookahead on '=').
      if (Lex.peek().Kind == TokKind::Ident) {
        Lexer Save = Lex; // cheap copy: lexer is a view + offsets
        std::string Name = Lex.take().Text;
        if (Lex.atPunct('=')) {
          Lex.take();
          std::optional<ScadValue> V = parseExpr();
          if (!V)
            return std::nullopt;
          Out.Named.emplace(Name, *V);
          if (Lex.atPunct(','))
            Lex.take();
          continue;
        }
        Lex = Save; // not named; reparse as expression
      }
      std::optional<ScadValue> V = parseExpr();
      if (!V)
        return std::nullopt;
      Out.Positional.push_back(*V);
      if (Lex.atPunct(','))
        Lex.take();
    }
    Lex.take(); // ')'
    return Out;
  }

  // --- statements -------------------------------------------------------

  /// Parses the child of a transform/boolean: `;`, one statement, or a
  /// block; children are implicitly unioned.
  bool parseChildren(std::vector<TermPtr> &Out) {
    if (Lex.atPunct(';')) {
      Lex.take();
      return true;
    }
    if (Lex.atPunct('{')) {
      Lex.take();
      while (!Lex.atPunct('}')) {
        if (Lex.peek().Kind == TokKind::End)
          return fail("unterminated '{'");
        if (!parseStatement(Out))
          return false;
      }
      Lex.take();
      return true;
    }
    return parseStatement(Out);
  }

  bool parseStatement(std::vector<TermPtr> &Out) {
    if (Lex.atPunct(';')) { // stray semicolon
      Lex.take();
      return true;
    }
    if (Lex.atPunct('{')) // bare block
      return parseChildren(Out);
    if (Lex.peek().Kind != TokKind::Ident)
      return fail("expected a statement");

    // Assignment lookahead.
    {
      Lexer Save = Lex;
      std::string Name = Lex.take().Text;
      if (Lex.atPunct('=')) {
        Lex.take();
        std::optional<ScadValue> V = parseExpr();
        if (!V)
          return false;
        if (!expectPunct(';'))
          return false;
        Vars[Name] = *V;
        return true;
      }
      Lex = Save;
    }

    std::string Name = Lex.take().Text;
    if (Name == "for")
      return parseFor(Out);

    std::optional<Args> A = parseArgs();
    if (!A)
      return false;

    if (Name == "cube")
      return makeCube(*A, Out);
    if (Name == "cylinder")
      return makeCylinder(*A, Out);
    if (Name == "sphere")
      return makeSphere(*A, Out);

    if (Name == "translate" || Name == "scale" || Name == "rotate") {
      std::vector<TermPtr> Kids;
      if (!parseChildren(Kids))
        return false;
      TermPtr Child = tUnionAll(Kids);
      Vec3 V;
      if (!vectorArg(*A, Name == "scale" ? 1.0 : 0.0, V))
        return false;
      OpKind K = Name == "translate" ? OpKind::Translate
                 : Name == "scale"   ? OpKind::Scale
                                     : OpKind::Rotate;
      Out.push_back(makeTerm(Op(K), {tVec3(V.X, V.Y, V.Z), Child}));
      return true;
    }

    if (Name == "hull" || Name == "mirror" || Name == "minkowski") {
      // Unsupported geometric features become opaque External leaves, the
      // paper's preprocessing for 3044766:sander and 1725308:soldering
      // ("we replaced the Hull subexpression with an External keyword").
      std::vector<TermPtr> Kids;
      if (!parseChildren(Kids))
        return false;
      Out.push_back(tExternal(Name + "_" + std::to_string(++ExternalCount)));
      return true;
    }

    if (Name == "union" || Name == "difference" || Name == "intersection") {
      std::vector<TermPtr> Kids;
      if (!parseChildren(Kids))
        return false;
      if (Name == "union") {
        Out.push_back(tUnionAll(Kids));
      } else if (Kids.empty()) {
        Out.push_back(tEmpty());
      } else if (Name == "difference") {
        std::vector<TermPtr> Rest(Kids.begin() + 1, Kids.end());
        Out.push_back(Rest.empty() ? Kids[0]
                                   : tDiff(Kids[0], tUnionAll(Rest)));
      } else {
        TermPtr Acc = Kids[0];
        for (size_t I = 1; I < Kids.size(); ++I)
          Acc = tInter(Acc, Kids[I]);
        Out.push_back(Acc);
      }
      return true;
    }

    return fail("unsupported module '" + Name + "'");
  }

  bool parseFor(std::vector<TermPtr> &Out) {
    if (!expectPunct('('))
      return false;
    if (Lex.peek().Kind != TokKind::Ident)
      return fail("expected a loop variable");
    std::string Var = Lex.take().Text;
    if (!expectPunct('='))
      return false;
    std::optional<ScadValue> Iter = parseExpr();
    if (!Iter)
      return false;
    if (!expectPunct(')'))
      return false;
    if (Iter->K != ScadValue::Kind::Vec)
      return fail("for expects a range or vector");

    // Snapshot the body once, replay it per iteration (loop unrolling —
    // this is the paper's flattening).
    Lexer BodyStart = Lex;
    bool SavedHadVar = Vars.count(Var) > 0;
    ScadValue SavedVal = SavedHadVar ? Vars[Var] : ScadValue::number(0);
    for (double X : Iter->Vec) {
      Lex = BodyStart;
      Vars[Var] = ScadValue::number(X);
      if (!parseChildren(Out))
        return false;
    }
    if (Iter->Vec.empty()) { // still must consume the body
      Lex = BodyStart;
      std::vector<TermPtr> Discard;
      Vars[Var] = ScadValue::number(0);
      if (!parseChildren(Discard))
        return false;
    }
    if (SavedHadVar)
      Vars[Var] = SavedVal;
    else
      Vars.erase(Var);
    return true;
  }

  // --- primitive construction ------------------------------------------------

  bool vectorArg(const Args &A, double Default, Vec3 &Out) {
    const ScadValue *V =
        A.Positional.empty() ? A.named("v") : &A.Positional[0];
    if (!V) {
      Out = {Default, Default, Default};
      return true;
    }
    if (V->K == ScadValue::Kind::Num) { // rotate(45) rotates about z
      Out = {Default, Default, V->Num};
      return true;
    }
    if (V->K != ScadValue::Kind::Vec || V->Vec.size() != 3)
      return fail("expected a 3-vector argument");
    Out = {V->Vec[0], V->Vec[1], V->Vec[2]};
    return true;
  }

  static bool centered(const Args &A) {
    const ScadValue *C = A.named("center");
    return C && ((C->K == ScadValue::Kind::Bool && C->Bool) ||
                 (C->K == ScadValue::Kind::Num && C->Num != 0.0));
  }

  bool makeCube(const Args &A, std::vector<TermPtr> &Out) {
    Vec3 Size{1, 1, 1};
    const ScadValue *S =
        A.Positional.empty() ? A.named("size") : &A.Positional[0];
    if (S) {
      if (S->K == ScadValue::Kind::Num)
        Size = {S->Num, S->Num, S->Num};
      else if (S->K == ScadValue::Kind::Vec && S->Vec.size() == 3)
        Size = {S->Vec[0], S->Vec[1], S->Vec[2]};
      else
        return fail("bad cube size");
    }
    TermPtr T = tScale(Size.X, Size.Y, Size.Z, tUnit());
    if (centered(A))
      T = tTranslate(-Size.X / 2, -Size.Y / 2, -Size.Z / 2, T);
    if (!expectPunct(';'))
      return false;
    Out.push_back(T);
    return true;
  }

  bool makeCylinder(const Args &A, std::vector<TermPtr> &Out) {
    double H = 1.0, R = 1.0;
    bool Hexagonal = false;
    if (const ScadValue *V = A.named("h"); V && V->K == ScadValue::Kind::Num)
      H = V->Num;
    else if (!A.Positional.empty() &&
             A.Positional[0].K == ScadValue::Kind::Num)
      H = A.Positional[0].Num;
    if (const ScadValue *V = A.named("r"); V && V->K == ScadValue::Kind::Num)
      R = V->Num;
    else if (A.Positional.size() > 1 &&
             A.Positional[1].K == ScadValue::Kind::Num)
      R = A.Positional[1].Num;
    if (const ScadValue *V = A.named("$fn");
        V && V->K == ScadValue::Kind::Num && V->Num == 6.0)
      Hexagonal = true; // the OpenSCAD idiom for hexagonal prisms
    TermPtr T = tScale(R, R, H, Hexagonal ? tHexagon() : tCylinder());
    if (centered(A))
      T = tTranslate(0, 0, -H / 2, T);
    if (!expectPunct(';'))
      return false;
    Out.push_back(T);
    return true;
  }

  bool makeSphere(const Args &A, std::vector<TermPtr> &Out) {
    double R = 1.0;
    if (const ScadValue *V = A.named("r"); V && V->K == ScadValue::Kind::Num)
      R = V->Num;
    else if (!A.Positional.empty() &&
             A.Positional[0].K == ScadValue::Kind::Num)
      R = A.Positional[0].Num;
    if (!expectPunct(';'))
      return false;
    Out.push_back(tScale(R, R, R, tSphere()));
    return true;
  }
};

} // namespace

ScadResult scad::parseScad(std::string_view Source) {
  ScadParserImpl P(Source);
  ScadResult R = P.run();
  assert((!R.Value || isFlatCsg(R.Value)) && "frontend must emit flat CSG");
  return R;
}
