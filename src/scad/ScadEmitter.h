//===-- scad/ScadEmitter.h - LambdaCAD -> OpenSCAD backend ------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits LambdaCAD programs as OpenSCAD source (paper Sec. 6: "We provide a
/// translation from LambdaCAD to OpenSCAD so that the results can be
/// validated by rendering"). Loop structure survives the translation:
/// `Fold(Union, Empty, Mapi(Fun (i, c) -> body, Repeat(base, n)))` becomes
/// an OpenSCAD `for (i = [0 : n-1])` loop.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SCAD_SCADEMITTER_H
#define SHRINKRAY_SCAD_SCADEMITTER_H

#include "cad/Term.h"

#include <optional>
#include <string>

namespace shrinkray {
namespace scad {

/// Emits \p Program as OpenSCAD source. Returns nullopt for programs using
/// constructs with no OpenSCAD counterpart (first-class App of a computed
/// function, raw list values at the top level); flatten first in that case.
std::optional<std::string> emitScad(const TermPtr &Program);

} // namespace scad
} // namespace shrinkray

#endif // SHRINKRAY_SCAD_SCADEMITTER_H
