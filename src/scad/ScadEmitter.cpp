//===-- scad/ScadEmitter.cpp - LambdaCAD -> OpenSCAD backend --------------===//

#include "scad/ScadEmitter.h"

#include "cad/Sexp.h"

#include <map>
#include <sstream>

using namespace shrinkray;
using namespace shrinkray::scad;

namespace {

/// Substitutes Var(\p Name) := \p Replacement in \p T (used to fuse nested
/// Mapi layers; the replacement itself may reference its own binders).
TermPtr substituteVar(const TermPtr &T, Symbol Name,
                      const TermPtr &Replacement) {
  if (T->kind() == OpKind::Var && T->op().symbol() == Name)
    return Replacement;
  if (T->numChildren() == 0)
    return T;
  std::vector<TermPtr> Kids;
  Kids.reserve(T->numChildren());
  bool Changed = false;
  for (const TermPtr &Kid : T->children()) {
    TermPtr NewKid = substituteVar(Kid, Name, Replacement);
    Changed |= NewKid.get() != Kid.get();
    Kids.push_back(std::move(NewKid));
  }
  return Changed ? makeTerm(T->op(), std::move(Kids)) : T;
}

/// Emits LambdaCAD solids as OpenSCAD statements. Loop combinators become
/// `for` loops; bodies reference loop variables symbolically.
class Emitter {
public:
  std::optional<std::string> run(const TermPtr &Program) {
    if (!emitSolid(Program, 0))
      return std::nullopt;
    return Os.str();
  }

private:
  std::ostringstream Os;
  bool Failed = false;

  bool fail() {
    Failed = true;
    return false;
  }

  void indent(int Depth) {
    for (int I = 0; I < Depth; ++I)
      Os << "  ";
  }

  /// Emits a scalar expression (numbers, loop variables, arithmetic).
  bool emitExpr(const TermPtr &T) {
    switch (T->kind()) {
    case OpKind::Int:
      Os << T->op().intValue();
      return true;
    case OpKind::Float:
      Os << formatFloat(T->op().floatValue());
      return true;
    case OpKind::Var:
      Os << T->op().symbol().str();
      return true;
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Mul:
    case OpKind::Div: {
      const char *Sym = T->kind() == OpKind::Add   ? " + "
                        : T->kind() == OpKind::Sub ? " - "
                        : T->kind() == OpKind::Mul ? " * "
                                                   : " / ";
      Os << '(';
      if (!emitExpr(T->child(0)))
        return false;
      Os << Sym;
      if (!emitExpr(T->child(1)))
        return false;
      Os << ')';
      return true;
    }
    case OpKind::Sin:
    case OpKind::Cos:
      Os << (T->kind() == OpKind::Sin ? "sin(" : "cos(");
      if (!emitExpr(T->child(0)))
        return false;
      Os << ')';
      return true;
    case OpKind::Arctan:
      Os << "atan2(";
      if (!emitExpr(T->child(0)))
        return false;
      Os << ", ";
      if (!emitExpr(T->child(1)))
        return false;
      Os << ')';
      return true;
    default:
      return fail();
    }
  }

  bool emitVec(const TermPtr &T) {
    if (T->kind() != OpKind::Vec3Ctor)
      return fail();
    Os << '[';
    for (int I = 0; I < 3; ++I) {
      if (I)
        Os << ", ";
      if (!emitExpr(T->child(I)))
        return false;
    }
    Os << ']';
    return true;
  }

  /// Emits the elements of a list term as statements (each a solid).
  bool emitListElements(const TermPtr &T, int Depth,
                        const std::map<Symbol, TermPtr> &Env) {
    switch (T->kind()) {
    case OpKind::Nil:
      return true;
    case OpKind::Cons:
      if (!emitSolidEnv(T->child(0), Depth, Env))
        return false;
      return emitListElements(T->child(1), Depth, Env);
    case OpKind::Concat:
      return emitListElements(T->child(0), Depth, Env) &&
             emitListElements(T->child(1), Depth, Env);
    case OpKind::Mapi: {
      // Mapi(Fun (i, c) -> body, inner): for (i = [0 : n-1]) body, with c
      // bound to the inner list's repeated element.
      const TermPtr &Fn = T->child(0);
      if (Fn->kind() != OpKind::Fun || Fn->numChildren() != 3)
        return fail();
      Symbol IndexVar = Fn->child(0)->op().symbol();
      Symbol ElemVar = Fn->child(1)->op().symbol();

      // The inner list must bottom out in Repeat(base, n) (possibly through
      // further Mapi layers, which compose transforms around the element).
      const TermPtr &Inner = T->child(1);
      if (Inner->kind() == OpKind::Repeat) {
        if (Inner->child(1)->kind() != OpKind::Int)
          return fail();
        int64_t N = Inner->child(1)->op().intValue();
        indent(Depth);
        Os << "for (" << IndexVar.str() << " = [0 : " << (N - 1) << "])\n";
        std::map<Symbol, TermPtr> BodyEnv = Env;
        BodyEnv[ElemVar] = Inner->child(0);
        return emitSolidEnv(Fn->child(2), Depth + 1, BodyEnv);
      }
      if (Inner->kind() == OpKind::Mapi) {
        // Fuse nested Mapi layers: Mapi(f, Mapi(g, L)) == Mapi(f . g, L)
        // when both functions use the same index (the synthesizer emits
        // both as "i"). Build the composed body by *substituting* the
        // outer element variable with the inner body — an environment
        // binding would be shadowed when both layers name their element
        // "c".
        const TermPtr &InnerFn = Inner->child(0);
        if (InnerFn->kind() != OpKind::Fun || InnerFn->numChildren() != 3)
          return fail();
        if (InnerFn->child(0)->op().symbol() != IndexVar)
          return fail();
        TermPtr FusedBody =
            substituteVar(Fn->child(2), ElemVar, InnerFn->child(2));
        TermPtr Rewrapped =
            tMapi(tFun({Fn->child(0), InnerFn->child(1), FusedBody}),
                  Inner->child(1));
        return emitListElements(Rewrapped, Depth, Env);
      }
      return fail();
    }
    case OpKind::Fold:
      // A counted Fold (for-loop) in list position: it emits statements,
      // which is exactly what a list element expansion needs.
      return emitSolidEnv(T, Depth, Env);
    default:
      return fail();
    }
  }

  bool emitSolid(const TermPtr &T, int Depth) {
    return emitSolidEnv(T, Depth, {});
  }

  bool emitSolidEnv(const TermPtr &T, int Depth,
                    const std::map<Symbol, TermPtr> &Env) {
    if (Failed)
      return false;
    switch (T->kind()) {
    case OpKind::Empty:
      indent(Depth);
      Os << "// empty\n";
      return true;
    case OpKind::Unit:
      indent(Depth);
      Os << "cube(1);\n";
      return true;
    case OpKind::Cylinder:
      indent(Depth);
      Os << "cylinder(h = 1, r = 1);\n";
      return true;
    case OpKind::Sphere:
      indent(Depth);
      Os << "sphere(1);\n";
      return true;
    case OpKind::Hexagon:
      indent(Depth);
      Os << "cylinder(h = 1, r = 1, $fn = 6);\n";
      return true;
    case OpKind::External:
      indent(Depth);
      Os << T->op().symbol().str() << "();\n";
      return true;
    case OpKind::Var: {
      auto It = Env.find(T->op().symbol());
      if (It == Env.end())
        return fail();
      return emitSolidEnv(It->second, Depth, Env);
    }
    case OpKind::Translate:
    case OpKind::Scale:
    case OpKind::Rotate: {
      indent(Depth);
      Os << (T->kind() == OpKind::Translate ? "translate("
             : T->kind() == OpKind::Scale   ? "scale("
                                            : "rotate(");
      if (!emitVec(T->child(0)))
        return false;
      Os << ")\n";
      return emitSolidEnv(T->child(1), Depth + 1, Env);
    }
    case OpKind::Union:
    case OpKind::Diff:
    case OpKind::Inter: {
      indent(Depth);
      Os << (T->kind() == OpKind::Union  ? "union() {\n"
             : T->kind() == OpKind::Diff ? "difference() {\n"
                                         : "intersection() {\n");
      if (!emitSolidEnv(T->child(0), Depth + 1, Env) ||
          !emitSolidEnv(T->child(1), Depth + 1, Env))
        return false;
      indent(Depth);
      Os << "}\n";
      return true;
    }
    case OpKind::Fold: {
      // Fold(Union, init, list): a union block over the list's statements.
      if (T->child(0)->kind() == OpKind::OpRef &&
          T->child(0)->op().referencedOp() == OpKind::Union) {
        indent(Depth);
        Os << "union() {\n";
        if (T->child(1)->kind() != OpKind::Empty)
          if (!emitSolidEnv(T->child(1), Depth + 1, Env))
            return false;
        if (!emitListElements(T->child(2), Depth + 1, Env))
          return false;
        indent(Depth);
        Os << "}\n";
        return true;
      }
      // Fold(Fun i -> body, Nil, indexList): a counted for-loop whose body
      // is itself a list; valid directly under a unioning context, which is
      // how the synthesizer nests them. Emit as a for over the spine.
      if (T->child(0)->kind() == OpKind::Fun &&
          T->child(0)->numChildren() == 2 &&
          T->child(1)->kind() == OpKind::Nil) {
        int64_t Len = 0;
        const Term *Cur = T->child(2).get();
        while (Cur->kind() == OpKind::Cons) {
          ++Len;
          Cur = Cur->child(1).get();
        }
        if (Cur->kind() != OpKind::Nil)
          return fail();
        Symbol IndexVar = T->child(0)->child(0)->op().symbol();
        indent(Depth);
        Os << "for (" << IndexVar.str() << " = [0 : " << (Len - 1)
           << "])\n";
        return emitSolidEnv(T->child(0)->child(1), Depth + 1, Env);
      }
      return fail();
    }
    case OpKind::Mapi:
    case OpKind::Cons:
    case OpKind::Concat:
      // A bare list in solid position: emit its elements as statements
      // (OpenSCAD implicitly unions sibling statements).
      return emitListElements(T, Depth, Env);
    default:
      return fail();
    }
  }
};

} // namespace

std::optional<std::string> scad::emitScad(const TermPtr &Program) {
  Emitter E;
  return E.run(Program);
}
