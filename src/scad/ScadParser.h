//===-- scad/ScadParser.h - Mini-OpenSCAD frontend --------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A frontend for the OpenSCAD subset the paper's benchmarks use (Sec. 6:
/// "we implemented a serializer from OpenSCAD's language to s-expressions"
/// and "a translator that can flatten these programs into loop-free CSG").
/// Parsing evaluates directly to flat CSG: `for` loops are unrolled and
/// arithmetic is folded, exactly the paper's flattening translator.
///
/// Supported subset:
///   cube(size|[x,y,z], center=bool)   cylinder(h=, r=, center=bool)
///   sphere(r)                          translate([x,y,z]) / scale / rotate
///   union() / difference() / intersection() with { } blocks
///   for (i = [start : end]) / [start : step : end] / [v1, v2, ...]
///   name = expr;  assignments, arithmetic with + - * / and sin/cos
///   // and /* */ comments
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SCAD_SCADPARSER_H
#define SHRINKRAY_SCAD_SCADPARSER_H

#include "cad/Term.h"

#include <string>
#include <string_view>

namespace shrinkray {
namespace scad {

/// Result of parsing OpenSCAD source: a flat CSG term or a diagnostic.
struct ScadResult {
  TermPtr Value;     ///< non-null on success; satisfies isFlatCsg()
  std::string Error; ///< diagnostic on failure

  explicit operator bool() const { return Value != nullptr; }
};

/// Parses and flattens OpenSCAD \p Source into flat CSG. Top-level
/// statements are implicitly unioned (OpenSCAD semantics).
ScadResult parseScad(std::string_view Source);

} // namespace scad
} // namespace shrinkray

#endif // SHRINKRAY_SCAD_SCADPARSER_H
