//===-- server/Json.cpp - Minimal non-throwing JSON codec -----------------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent JSON parser with an explicit depth budget and a
/// single-line canonical writer. Error handling is value-based
/// throughout: fail() records the first diagnostic (with byte offset)
/// and every production unwinds on it, so no input — truncated, deep,
/// or garbage — can throw or crash.
///
//===----------------------------------------------------------------------===//

#include "server/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace shrinkray;
using namespace shrinkray::server;

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  JsonParseResult run() {
    JsonParseResult R;
    skipWs();
    if (!parseValue(R.Value, 0)) {
      R.Error = Error;
      return R;
    }
    skipWs();
    if (Pos != Text.size()) {
      R.Error = diag("trailing bytes after value");
      return R;
    }
    return R;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  std::string Error;

  std::string diag(const std::string &Msg) const {
    return "json: " + Msg + " at byte " + std::to_string(Pos);
  }

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = diag(Msg);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  bool literal(const char *Lit) {
    size_t Len = std::strlen(Lit);
    if (Text.size() - Pos < Len || Text.compare(Pos, Len, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out, size_t Depth) {
    if (Depth > kMaxJsonDepth)
      return fail("nesting deeper than " + std::to_string(kMaxJsonDepth));
    if (atEnd())
      return fail("unexpected end of input");
    switch (peek()) {
    case 'n':
      if (!literal("null"))
        return false;
      Out = JsonValue::null();
      return true;
    case 't':
      if (!literal("true"))
        return false;
      Out = JsonValue::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = JsonValue::boolean(false);
      return true;
    case '"':
      return parseString(Out);
    case '[':
      return parseArray(Out, Depth);
    case '{':
      return parseObject(Out, Depth);
    default:
      return parseNumber(Out);
    }
  }

  bool parseNumber(JsonValue &Out) {
    // Validate the JSON number grammar explicitly, then hand the span to
    // strtod: strtod alone accepts spellings JSON forbids (hex, inf,
    // leading '+', bare '.5').
    const size_t Start = Pos;
    if (!atEnd() && peek() == '-')
      ++Pos;
    if (atEnd() || peek() < '0' || peek() > '9')
      return fail("malformed number");
    if (peek() == '0') {
      ++Pos;
    } else {
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    if (!atEnd() && peek() == '.') {
      ++Pos;
      if (atEnd() || peek() < '0' || peek() > '9')
        return fail("malformed number: digit required after '.'");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!atEnd() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (atEnd() || peek() < '0' || peek() > '9')
        return fail("malformed number: digit required in exponent");
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    std::string Span(Text.substr(Start, Pos - Start));
    double V = std::strtod(Span.c_str(), nullptr);
    if (!std::isfinite(V))
      return fail("number out of double range");
    Out = JsonValue::number(V);
    return true;
  }

  bool hexDigit(char C, unsigned &D) {
    if (C >= '0' && C <= '9')
      D = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = static_cast<unsigned>(C - 'a' + 10);
    else if (C >= 'A' && C <= 'F')
      D = static_cast<unsigned>(C - 'A' + 10);
    else
      return false;
    return true;
  }

  bool parseHex4(unsigned &Out) {
    if (Text.size() - Pos < 4)
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      unsigned D;
      if (!hexDigit(Text[Pos + static_cast<size_t>(I)], D))
        return fail("bad hex digit in \\u escape");
      Out = Out * 16 + D;
    }
    Pos += 4;
    return true;
  }

  void appendUtf8(std::string &S, unsigned CP) {
    if (CP < 0x80) {
      S += static_cast<char>(CP);
    } else if (CP < 0x800) {
      S += static_cast<char>(0xC0 | (CP >> 6));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    } else if (CP < 0x10000) {
      S += static_cast<char>(0xE0 | (CP >> 12));
      S += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    } else {
      S += static_cast<char>(0xF0 | (CP >> 18));
      S += static_cast<char>(0x80 | ((CP >> 12) & 0x3F));
      S += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    }
  }

  bool parseString(JsonValue &Out) {
    std::string S;
    if (!parseRawString(S))
      return false;
    Out = JsonValue::string(std::move(S));
    return true;
  }

  bool parseRawString(std::string &S) {
    ++Pos; // opening quote
    for (;;) {
      if (atEnd())
        return fail("unterminated string");
      char C = peek();
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        S += C;
        ++Pos;
        continue;
      }
      ++Pos;
      if (atEnd())
        return fail("truncated escape");
      char E = peek();
      ++Pos;
      switch (E) {
      case '"':
        S += '"';
        break;
      case '\\':
        S += '\\';
        break;
      case '/':
        S += '/';
        break;
      case 'b':
        S += '\b';
        break;
      case 'f':
        S += '\f';
        break;
      case 'n':
        S += '\n';
        break;
      case 'r':
        S += '\r';
        break;
      case 't':
        S += '\t';
        break;
      case 'u': {
        unsigned CP;
        if (!parseHex4(CP))
          return false;
        if (CP >= 0xD800 && CP <= 0xDBFF) {
          // High surrogate: a low surrogate must follow.
          if (Text.size() - Pos < 2 || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("lone high surrogate");
          Pos += 2;
          unsigned Low;
          if (!parseHex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("invalid low surrogate");
          CP = 0x10000 + ((CP - 0xD800) << 10) + (Low - 0xDC00);
        } else if (CP >= 0xDC00 && CP <= 0xDFFF) {
          return fail("lone low surrogate");
        }
        appendUtf8(S, CP);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  bool parseArray(JsonValue &Out, size_t Depth) {
    ++Pos; // '['
    Out = JsonValue::array();
    skipWs();
    if (!atEnd() && peek() == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue Elem;
      skipWs();
      if (!parseValue(Elem, Depth + 1))
        return false;
      Out.push(std::move(Elem));
      skipWs();
      if (atEnd())
        return fail("unterminated array");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseObject(JsonValue &Out, size_t Depth) {
    ++Pos; // '{'
    Out = JsonValue::object();
    skipWs();
    if (!atEnd() && peek() == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (atEnd() || peek() != '"')
        return fail("expected string key in object");
      std::string Key;
      if (!parseRawString(Key))
        return false;
      skipWs();
      if (atEnd() || peek() != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      JsonValue Val;
      if (!parseValue(Val, Depth + 1))
        return false;
      Out.set(std::move(Key), std::move(Val));
      skipWs();
      if (atEnd())
        return fail("unterminated object");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }
};

void writeString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void writeNumber(std::string &Out, double N) {
  // JSON has no spelling for non-finite numbers; emit null (the parser
  // rejects them on the way in, so this only guards programmatic values).
  if (!std::isfinite(N)) {
    Out += "null";
    return;
  }
  // Integral values within the double-exact range print without an
  // exponent or fraction — job ids and counters stay grep-able.
  if (N == static_cast<double>(static_cast<long long>(N)) &&
      std::fabs(N) < 9.007199254740992e15) {
    Out += std::to_string(static_cast<long long>(N));
    return;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.17g", N);
  Out += Buf;
}

void writeValue(std::string &Out, const JsonValue &V) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    return;
  case JsonValue::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    return;
  case JsonValue::Kind::Number:
    writeNumber(Out, V.asNumber());
    return;
  case JsonValue::Kind::String:
    writeString(Out, V.asString());
    return;
  case JsonValue::Kind::Array:
    Out += '[';
    for (size_t I = 0; I < V.size(); ++I) {
      if (I)
        Out += ',';
      writeValue(Out, V.at(I));
    }
    Out += ']';
    return;
  case JsonValue::Kind::Object:
    Out += '{';
    for (size_t I = 0; I < V.size(); ++I) {
      if (I)
        Out += ',';
      writeString(Out, V.member(I).first);
      Out += ':';
      writeValue(Out, V.member(I).second);
    }
    Out += '}';
    return;
  }
}

} // namespace

JsonParseResult shrinkray::server::parseJson(std::string_view Text) {
  return Parser(Text).run();
}

std::string shrinkray::server::writeJson(const JsonValue &V) {
  std::string Out;
  writeValue(Out, V);
  return Out;
}
