//===-- server/Protocol.h - JSONL RPC request/response codec ----*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the synthesis server: newline-delimited JSON
/// (JSONL), one request object in, one response object out, over stdio
/// or TCP. The grammar (see docs/ARCHITECTURE.md for the full table):
///
///   request  := { "op": "hello" | "submit" | "wait" | "poll"
///                     | "cancel" | "stats", ...op fields }
///   response := { "ok": true,  "op": <echo>, ...result fields }
///            |  { "ok": false, "op": <echo>, "error": <diagnostic>
///                 [, "rejected": "queue_full" | "quota" | "draining"
///                  , "retry_after_sec": <sec>] }
///
/// parseRequest is the trust boundary: every field is type- and
/// range-checked, unknown ops and malformed frames come back as error
/// values, and nothing in this layer throws or aborts — a network peer
/// must never be able to take the process down. Unknown *fields* are
/// ignored (forward compatibility); unknown *ops* are errors.
///
/// encodeRequest is the client half: parseRequest(encodeRequest(R))
/// reproduces R field-for-field, which the codec tests round-trip for
/// every request kind.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SERVER_PROTOCOL_H
#define SHRINKRAY_SERVER_PROTOCOL_H

#include "server/Json.h"
#include "service/SynthesisService.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace shrinkray {
namespace server {

/// Protocol revision; hello negotiates it (a mismatched client is told
/// the server's version in the error response and can bail cleanly).
constexpr int kProtocolVersion = 1;

/// Frame cap, applied to requests before parsing and enforced by the
/// transport reader: a longer line is consumed and answered with an
/// error instead of buffering without bound. 4 MiB comfortably holds the
/// largest corpus model (~20 KiB) with two orders of margin.
constexpr size_t kMaxFrameBytes = 4u << 20;

/// Ceiling for submit's top_k — extraction cost is linear in k, so an
/// attacker-supplied k must not pick the server's working-set size.
constexpr size_t kMaxTopK = 64;

/// One parsed request. Fields beyond Kind are meaningful per-op (the
/// unused remainder keeps its default).
struct Request {
  enum class Kind { Hello, Submit, Wait, Poll, Cancel, Stats };
  Kind K = Kind::Stats;

  // hello
  std::string Client; ///< quota/stats identity; empty = "anon"
  int Proto = kProtocolVersion;

  // submit
  std::string Name;          ///< label echoed in results (optional)
  std::string Source;        ///< program text (required)
  bool SourceIsScad = false; ///< "scad": true => OpenSCAD subset
  size_t TopK = 5;
  CostKind Cost = CostKind::AstSize;
  double DeadlineSec = 0.0; ///< 0 = no per-job deadline

  // wait / poll / cancel
  uint64_t Job = 0;
  double TimeoutSec = -1.0; ///< wait only; < 0 = server default
};

/// parseRequest outcome: Ok distinguishes a usable Request from a
/// diagnostic. Op carries the echoed op string when one was recoverable
/// (so even error responses name the op they answer).
struct ParsedRequest {
  bool Ok = false;
  Request Req;
  std::string Op;    ///< echoed op ("" when the frame had none)
  std::string Error; ///< diagnostic when !Ok
};

/// Parses and validates one request frame (no trailing newline). Never
/// throws; any malformed input yields Ok = false with a diagnostic.
ParsedRequest parseRequest(std::string_view Line);

/// Client-side encoder; emits the canonical frame (no newline).
std::string encodeRequest(const Request &R);

/// Response builders. Each returns one canonical JSON line (no trailing
/// newline); the transport appends '\n'.
std::string errorResponse(std::string_view Op, std::string_view Error);
/// Backpressure refusal: Reason is "queue_full", "quota" or "draining";
/// RetryAfterSec > 0 tells the client when capacity is expected back.
std::string rejectedResponse(std::string_view Op, std::string_view Reason,
                             double RetryAfterSec);
std::string helloResponse(std::string_view Client, int Proto);
std::string submittedResponse(uint64_t Job);
/// wait/poll answer for a finished job, programs included.
std::string outcomeResponse(std::string_view Op, uint64_t Job,
                            const service::JobOutcome &Out);
/// wait answer when the job is still in flight at the timeout.
std::string waitTimeoutResponse(uint64_t Job);
std::string pollResponse(uint64_t Job, service::JobPhase Phase);
std::string cancelResponse(uint64_t Job, bool Cancelled);
/// stats carries a caller-assembled JSON object (server + service +
/// cache counters) so the protocol layer stays counter-agnostic.
std::string statsResponse(const JsonValue &Stats);

/// Spelling helpers shared by server and client.
const char *jobStatusName(service::JobOutcome::Status St);
const char *jobPhaseName(service::JobPhase Phase);

} // namespace server
} // namespace shrinkray

#endif // SHRINKRAY_SERVER_PROTOCOL_H
