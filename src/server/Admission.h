//===-- server/Admission.h - Quotas and per-client accounting ---*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-client token-bucket quotas and the per-client counters the stats
/// op reports. Time is passed in by the caller as monotonic seconds
/// (the server uses steady_clock; tests drive a synthetic clock), so the
/// bucket math is deterministic and unit-testable.
///
/// Admission of a submit is a two-gate decision:
///
///   1. quota   — the client's token bucket (this module). Over-quota
///                requests are rejected with "quota" and a retry_after
///                derived from the refill rate; they never reach the
///                service.
///   2. backlog — SynthesisService::trySubmit's bounded queue. A full
///                queue rejects with "queue_full"; in-flight jobs are
///                unaffected (backpressure, not load shedding).
///
/// The registry is bounded: at most MaxClients buckets live at once,
/// evicted least-recently-seen — a peer cycling through fresh client ids
/// can churn the table but never grow the process.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SERVER_ADMISSION_H
#define SHRINKRAY_SERVER_ADMISSION_H

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace shrinkray {
namespace server {

/// Token-bucket parameters shared by every client of a server. Capacity
/// 0 disables quotas entirely (every admit passes).
struct QuotaConfig {
  double Capacity = 0.0;     ///< burst size, in requests
  double RefillPerSec = 0.0; ///< sustained requests/sec
};

/// One client's bucket. Starts full; tryTake spends one token, refilling
/// first from the elapsed time. All methods take "now" in seconds on any
/// monotonic scale (only differences matter).
class TokenBucket {
public:
  TokenBucket(const QuotaConfig &Cfg, double NowSec)
      : Cfg(Cfg), Tokens(Cfg.Capacity), LastSec(NowSec) {}

  /// Spends one token if available. Capacity 0 = unlimited.
  bool tryTake(double NowSec) {
    if (Cfg.Capacity <= 0.0)
      return true;
    refill(NowSec);
    if (Tokens < 1.0)
      return false;
    Tokens -= 1.0;
    return true;
  }

  /// Seconds until one full token is back at the configured refill rate
  /// (0 when a token is already available or refill is disabled).
  double retryAfterSec(double NowSec) {
    if (Cfg.Capacity <= 0.0)
      return 0.0;
    refill(NowSec);
    if (Tokens >= 1.0 || Cfg.RefillPerSec <= 0.0)
      return 0.0;
    return (1.0 - Tokens) / Cfg.RefillPerSec;
  }

  double tokens(double NowSec) {
    refill(NowSec);
    return Tokens;
  }

private:
  void refill(double NowSec) {
    if (NowSec > LastSec && Cfg.RefillPerSec > 0.0) {
      Tokens += (NowSec - LastSec) * Cfg.RefillPerSec;
      if (Tokens > Cfg.Capacity)
        Tokens = Cfg.Capacity;
    }
    LastSec = NowSec;
  }

  QuotaConfig Cfg;
  double Tokens;
  double LastSec;
};

/// Per-client counters surfaced by the stats op.
struct ClientStats {
  std::string Client;
  uint64_t Submitted = 0;
  uint64_t RejectedQuota = 0;
  uint64_t RejectedQueueFull = 0;
};

/// The admission gate's quota half plus per-client accounting. All
/// methods are thread-safe (one mutex; every operation is O(1) expected
/// plus an O(1) LRU splice).
class AdmissionController {
public:
  struct Decision {
    bool Admitted = false;
    double RetryAfterSec = 0.0;
  };

  explicit AdmissionController(QuotaConfig Quota, size_t MaxClients = 4096)
      : Quota(Quota), MaxClients(MaxClients ? MaxClients : 1) {}

  /// Quota gate for one submit from \p Client. Counts the attempt either
  /// way; a refusal carries the bucket's retry-after hint.
  Decision admitSubmit(const std::string &Client, double NowSec);

  /// Records that the service's bounded queue refused \p Client's
  /// admitted submit (the token is deliberately *not* refunded — a
  /// client hammering a full queue still drains its quota).
  void noteQueueFull(const std::string &Client, double NowSec);

  /// Snapshot of every live client's counters, most recently seen first.
  std::vector<ClientStats> clientStats() const;

  size_t numClients() const;

private:
  struct Entry {
    TokenBucket Bucket;
    ClientStats Stats;
  };
  using LruList = std::list<std::pair<std::string, Entry>>;

  /// Finds or creates \p Client's entry, moves it to the LRU front, and
  /// evicts the tail past MaxClients. Call with the lock held.
  Entry &touchLocked(const std::string &Client, double NowSec);

  QuotaConfig Quota;
  size_t MaxClients;
  mutable std::mutex M;
  LruList Lru; ///< front = most recently seen
  std::unordered_map<std::string, LruList::iterator> Index;
};

} // namespace server
} // namespace shrinkray

#endif // SHRINKRAY_SERVER_ADMISSION_H
