//===-- server/Server.cpp - JSONL RPC front end over the service ----------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request semantics (handleFrame and the per-op handlers) plus the two
/// byte-moving transports. The transports share FdLineReader: a buffered,
/// poll-driven line reader that enforces the frame cap and wakes every
/// 200 ms to observe the stop flag, so neither EOF-less stdin nor an
/// idle socket can pin a thread through a drain.
///
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace shrinkray;
using namespace shrinkray::server;

namespace {

/// Slice length for stop-aware blocking (reads and waits).
constexpr double kTickSec = 0.2;

/// Fully writes \p Data to \p Fd (MSG_NOSIGNAL on sockets so a peer
/// hanging up surfaces as EPIPE, not a process-killing SIGPIPE).
bool writeAll(int Fd, std::string_view Data, bool IsSocket) {
  while (!Data.empty()) {
    ssize_t N = IsSocket ? ::send(Fd, Data.data(), Data.size(), MSG_NOSIGNAL)
                         : ::write(Fd, Data.data(), Data.size());
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

/// Buffered line reader over a file descriptor. readLine blocks in
/// kTickSec poll slices, re-checking \p StopNow between slices.
class FdLineReader {
public:
  FdLineReader(int Fd, size_t MaxFrame) : Fd(Fd), MaxFrame(MaxFrame) {}

  enum class Status { Line, Eof, Oversize, Stopped, Error };

  template <typename StopFn> Status readLine(std::string &Line, StopFn StopNow) {
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        Line.assign(Buf, 0, Nl);
        Buf.erase(0, Nl + 1);
        if (Line.size() > MaxFrame)
          return Status::Oversize;
        return Status::Line;
      }
      if (Buf.size() > MaxFrame)
        return Status::Oversize;
      if (StopNow())
        return Status::Stopped;
      struct pollfd P;
      P.fd = Fd;
      P.events = POLLIN;
      int R = ::poll(&P, 1, static_cast<int>(kTickSec * 1000));
      if (R < 0) {
        if (errno == EINTR)
          continue;
        return Status::Error;
      }
      if (R == 0)
        continue; // tick: loop re-checks StopNow
      char Chunk[4096];
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return Status::Error;
      }
      if (N == 0) {
        // EOF. A final unterminated frame still gets served — stdio
        // clients that forget the last newline should not lose their
        // last request.
        if (!Buf.empty()) {
          Line = std::move(Buf);
          Buf.clear();
          if (Line.size() > MaxFrame)
            return Status::Oversize;
          return Status::Line;
        }
        return Status::Eof;
      }
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

private:
  int Fd;
  size_t MaxFrame;
  std::string Buf;
};

} // namespace

Server::Server(ServerConfig C)
    : Cfg(C), Epoch(std::chrono::steady_clock::now()), Svc(C.Service),
      Admission(C.Quota, C.MaxClients) {}

std::string Server::handleFrame(Session &S, std::string_view Line) {
  Frames.fetch_add(1, std::memory_order_relaxed);
  // Exception-proof boundary: nothing below is expected to throw (the
  // parsers are value-based), but a bad_alloc on a hostile frame must
  // still come back as a response, not a terminate.
  try {
    if (Line.size() > Cfg.MaxFrameBytes) {
      BadFrames.fetch_add(1, std::memory_order_relaxed);
      return errorResponse("", "frame exceeds " +
                                   std::to_string(Cfg.MaxFrameBytes) +
                                   " bytes");
    }
    ParsedRequest P = parseRequest(Line);
    if (!P.Ok) {
      BadFrames.fetch_add(1, std::memory_order_relaxed);
      return errorResponse(P.Op, P.Error);
    }
    return handleParsed(S, P);
  } catch (const std::exception &E) {
    BadFrames.fetch_add(1, std::memory_order_relaxed);
    return errorResponse("", std::string("internal error: ") + E.what());
  } catch (...) {
    BadFrames.fetch_add(1, std::memory_order_relaxed);
    return errorResponse("", "internal error");
  }
}

std::string Server::handleParsed(Session &S, const ParsedRequest &P) {
  const Request &R = P.Req;
  switch (R.K) {
  case Request::Kind::Hello: {
    if (R.Proto != kProtocolVersion)
      return errorResponse("hello",
                           "unsupported proto " + std::to_string(R.Proto) +
                               " (server speaks " +
                               std::to_string(kProtocolVersion) + ")");
    S.Client = R.Client.empty() ? "anon" : R.Client;
    S.SaidHello = true;
    return helloResponse(S.Client, kProtocolVersion);
  }
  case Request::Kind::Submit:
    return handleSubmit(S, R);
  case Request::Kind::Wait:
    return handleWait(R);
  case Request::Kind::Poll: {
    service::JobPhase Phase = Svc.poll(R.Job);
    if (Phase == service::JobPhase::Unknown)
      return errorResponse("poll", "unknown job id");
    if (Phase == service::JobPhase::Done) {
      // Done: the outcome is available immediately (waitFor(0) cannot
      // time out on a Done job).
      service::WaitResult W = Svc.waitFor(R.Job, 0.0);
      if (W.St == service::WaitResult::Status::Done)
        return outcomeResponse("poll", R.Job, *W.Outcome);
    }
    return pollResponse(R.Job, Phase);
  }
  case Request::Kind::Cancel:
    return cancelResponse(R.Job, Svc.cancel(R.Job));
  case Request::Kind::Stats:
    return statsResponse(statsJson());
  }
  return errorResponse("", "unhandled request kind");
}

std::string Server::handleSubmit(Session &S, const Request &R) {
  if (stopping())
    return rejectedResponse("submit", "draining", 0.0);
  AdmissionController::Decision D = Admission.admitSubmit(S.Client, nowSec());
  if (!D.Admitted)
    return rejectedResponse("submit", "quota", D.RetryAfterSec);
  service::JobSpec Spec;
  Spec.Name = R.Name.empty() ? ("client:" + S.Client) : R.Name;
  Spec.Source = R.Source;
  Spec.SourceIsScad = R.SourceIsScad;
  Spec.Options.TopK = R.TopK;
  Spec.Options.Cost = R.Cost;
  Spec.DeadlineSec = R.DeadlineSec;
  std::optional<service::SynthesisService::JobId> Id =
      Svc.trySubmit(std::move(Spec));
  if (!Id) {
    Admission.noteQueueFull(S.Client, nowSec());
    // Retry hint: a slot opens when the next running job finishes; the
    // median corpus job is sub-second, so 0.5 s is a sane poll cadence.
    return rejectedResponse("submit", stopping() ? "draining" : "queue_full",
                            0.5);
  }
  return submittedResponse(*Id);
}

std::string Server::handleWait(const Request &R) {
  double Timeout =
      R.TimeoutSec < 0.0 ? Cfg.DefaultWaitTimeoutSec : R.TimeoutSec;
  Timeout = std::min(Timeout, Cfg.MaxWaitTimeoutSec);
  // Served in stop-aware slices: a drain must not leave this thread
  // parked for the full client timeout when the job pool is already
  // being torn down.
  double Remaining = Timeout;
  for (;;) {
    double Slice = std::min(Remaining, kTickSec);
    service::WaitResult W = Svc.waitFor(R.Job, Slice);
    switch (W.St) {
    case service::WaitResult::Status::Unknown:
      return errorResponse("wait", "unknown job id");
    case service::WaitResult::Status::Done:
      return outcomeResponse("wait", R.Job, *W.Outcome);
    case service::WaitResult::Status::Timeout:
      break;
    }
    Remaining -= Slice;
    if (Remaining <= 0.0 || HardStop.load(std::memory_order_acquire))
      return waitTimeoutResponse(R.Job);
  }
}

JsonValue Server::statsJson() {
  JsonValue O = JsonValue::object();
  O.set("uptime_sec", JsonValue::number(nowSec()));
  O.set("frames", JsonValue::number(static_cast<double>(
                      Frames.load(std::memory_order_relaxed))));
  O.set("bad_frames", JsonValue::number(static_cast<double>(
                          BadFrames.load(std::memory_order_relaxed))));
  O.set("connections", JsonValue::number(static_cast<double>(
                           Connections.load(std::memory_order_relaxed))));

  service::ServiceStats S = Svc.stats();
  JsonValue Service = JsonValue::object();
  Service.set("submitted", JsonValue::number(static_cast<double>(S.Submitted)));
  Service.set("rejected", JsonValue::number(static_cast<double>(S.Rejected)));
  Service.set("completed", JsonValue::number(static_cast<double>(S.Completed)));
  Service.set("cache_hits",
              JsonValue::number(static_cast<double>(S.CacheHits)));
  Service.set("succeeded", JsonValue::number(static_cast<double>(S.Succeeded)));
  Service.set("cancelled", JsonValue::number(static_cast<double>(S.Cancelled)));
  Service.set("failed", JsonValue::number(static_cast<double>(S.Failed)));
  Service.set("queue_depth",
              JsonValue::number(static_cast<double>(S.QueueDepth)));
  Service.set("running", JsonValue::number(static_cast<double>(S.Running)));
  Service.set("draining", JsonValue::boolean(S.Draining));
  O.set("service", std::move(Service));

  service::ResultCache::Stats CS = Svc.cache().stats();
  JsonValue Cache = JsonValue::object();
  Cache.set("hits", JsonValue::number(static_cast<double>(CS.Hits)));
  Cache.set("disk_hits", JsonValue::number(static_cast<double>(CS.DiskHits)));
  Cache.set("misses", JsonValue::number(static_cast<double>(CS.Misses)));
  Cache.set("stores", JsonValue::number(static_cast<double>(CS.Stores)));
  Cache.set("snapshot_hits",
            JsonValue::number(static_cast<double>(CS.SnapshotHits)));
  Cache.set("snapshot_misses",
            JsonValue::number(static_cast<double>(CS.SnapshotMisses)));
  Cache.set("snapshot_stores",
            JsonValue::number(static_cast<double>(CS.SnapshotStores)));
  O.set("cache", std::move(Cache));

  JsonValue Clients = JsonValue::array();
  for (const ClientStats &C : Admission.clientStats()) {
    JsonValue E = JsonValue::object();
    E.set("client", JsonValue::string(C.Client));
    E.set("submitted", JsonValue::number(static_cast<double>(C.Submitted)));
    E.set("rejected_quota",
          JsonValue::number(static_cast<double>(C.RejectedQuota)));
    E.set("rejected_queue_full",
          JsonValue::number(static_cast<double>(C.RejectedQueueFull)));
    Clients.push(std::move(E));
  }
  O.set("clients", std::move(Clients));
  return O;
}

void Server::flushStats() {
  service::ServiceStats S = Svc.stats();
  service::ResultCache::Stats CS = Svc.cache().stats();
  std::fprintf(stderr,
               "[shrinkray_serve] served %llu frames (%llu bad) on %llu "
               "connections; jobs: %zu submitted, %zu completed (%zu ok, %zu "
               "cache-hit, %zu cancelled, %zu failed), %zu rejected; cache: "
               "%zu hits (%zu disk), %zu misses\n",
               static_cast<unsigned long long>(
                   Frames.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   BadFrames.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   Connections.load(std::memory_order_relaxed)),
               S.Submitted, S.Completed, S.Succeeded, S.CacheHits, S.Cancelled,
               S.Failed, S.Rejected, CS.Hits, CS.DiskHits, CS.Misses);
}

void Server::drain() {
  Svc.beginDrain();
  if (Cfg.Verbose)
    std::fprintf(stderr, "[shrinkray_serve] draining (grace %.1fs)...\n",
                 Cfg.DrainGraceSec);
  // Let in-flight and queued jobs finish; whatever outlives the grace is
  // cancelled by the service destructor (cooperative, partial results).
  Svc.awaitIdle(Cfg.DrainGraceSec);
  HardStop.store(true, std::memory_order_release);
  flushStats();
}

int Server::runStdio() {
  // A peer closing its read end must surface as a failed write, not a
  // fatal signal.
  std::signal(SIGPIPE, SIG_IGN);
  Connections.fetch_add(1, std::memory_order_relaxed);
  Session S;
  FdLineReader Reader(STDIN_FILENO, Cfg.MaxFrameBytes);
  std::string Line;
  for (;;) {
    FdLineReader::Status St =
        Reader.readLine(Line, [this] { return stopping(); });
    if (St == FdLineReader::Status::Oversize) {
      std::string Resp = errorResponse("", "frame exceeds " +
                                               std::to_string(
                                                   Cfg.MaxFrameBytes) +
                                               " bytes");
      writeAll(STDOUT_FILENO, Resp + "\n", /*IsSocket=*/false);
      break; // framing lost: the session cannot continue
    }
    if (St != FdLineReader::Status::Line)
      break; // EOF, stop, or read error
    std::string Resp = handleFrame(S, Line);
    if (!writeAll(STDOUT_FILENO, Resp + "\n", /*IsSocket=*/false))
      break;
  }
  drain();
  return 0;
}

int Server::runTcp(uint16_t Port, uint16_t *BoundPort) {
  std::signal(SIGPIPE, SIG_IGN);
  int ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::fprintf(stderr, "[shrinkray_serve] socket: %s\n",
                 std::strerror(errno));
    return 1;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(ListenFd, 64) < 0) {
    std::fprintf(stderr, "[shrinkray_serve] bind/listen 127.0.0.1:%u: %s\n",
                 Port, std::strerror(errno));
    ::close(ListenFd);
    return 1;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
                    &Len) == 0)
    Port = ntohs(Addr.sin_port);
  if (BoundPort)
    *BoundPort = Port;
  // Announced on stderr (and flushed) so launchers can scrape the port.
  std::fprintf(stderr, "[shrinkray_serve] listening on 127.0.0.1:%u\n", Port);
  std::fflush(stderr);

  std::vector<std::thread> Threads;
  for (;;) {
    if (stopping())
      break;
    struct pollfd P;
    P.fd = ListenFd;
    P.events = POLLIN;
    int R = ::poll(&P, 1, static_cast<int>(kTickSec * 1000));
    if (R < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "[shrinkray_serve] poll: %s\n",
                   std::strerror(errno));
      break;
    }
    if (R == 0)
      continue;
    int ConnFd = ::accept(ListenFd, nullptr, nullptr);
    if (ConnFd < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    Connections.fetch_add(1, std::memory_order_relaxed);
    if (Cfg.Verbose)
      std::fprintf(stderr, "[shrinkray_serve] connection %llu\n",
                   static_cast<unsigned long long>(
                       Connections.load(std::memory_order_relaxed)));
    Threads.emplace_back([this, ConnFd] {
      Session S;
      FdLineReader Reader(ConnFd, Cfg.MaxFrameBytes);
      std::string Line;
      for (;;) {
        FdLineReader::Status St = Reader.readLine(Line, [this] {
          return HardStop.load(std::memory_order_acquire);
        });
        if (St == FdLineReader::Status::Oversize) {
          std::string Resp =
              errorResponse("", "frame exceeds " +
                                    std::to_string(Cfg.MaxFrameBytes) +
                                    " bytes");
          writeAll(ConnFd, Resp + "\n", /*IsSocket=*/true);
          break;
        }
        if (St != FdLineReader::Status::Line)
          break;
        std::string Resp = handleFrame(S, Line);
        if (!writeAll(ConnFd, Resp + "\n", /*IsSocket=*/true))
          break;
      }
      ::close(ConnFd);
    });
  }
  ::close(ListenFd);
  // Drain before joining: connection threads keep serving waits on
  // in-flight jobs until the grace expires (HardStop), then exit at
  // their next read tick.
  drain();
  for (std::thread &T : Threads)
    T.join();
  return 0;
}
