//===-- server/Admission.cpp - Quotas and per-client accounting -----------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "server/Admission.h"

using namespace shrinkray;
using namespace shrinkray::server;

AdmissionController::Entry &
AdmissionController::touchLocked(const std::string &Client, double NowSec) {
  auto It = Index.find(Client);
  if (It != Index.end()) {
    Lru.splice(Lru.begin(), Lru, It->second);
    return Lru.front().second;
  }
  Entry E{TokenBucket(Quota, NowSec), ClientStats{Client, 0, 0, 0}};
  Lru.emplace_front(Client, std::move(E));
  Index[Client] = Lru.begin();
  while (Lru.size() > MaxClients) {
    Index.erase(Lru.back().first);
    Lru.pop_back();
  }
  return Lru.front().second;
}

AdmissionController::Decision
AdmissionController::admitSubmit(const std::string &Client, double NowSec) {
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = touchLocked(Client, NowSec);
  Decision D;
  if (E.Bucket.tryTake(NowSec)) {
    D.Admitted = true;
    ++E.Stats.Submitted;
  } else {
    D.Admitted = false;
    D.RetryAfterSec = E.Bucket.retryAfterSec(NowSec);
    ++E.Stats.RejectedQuota;
  }
  return D;
}

void AdmissionController::noteQueueFull(const std::string &Client,
                                        double NowSec) {
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = touchLocked(Client, NowSec);
  // The submit was counted as admitted; reclassify it as a queue-full
  // refusal so per-client totals stay truthful.
  if (E.Stats.Submitted > 0)
    --E.Stats.Submitted;
  ++E.Stats.RejectedQueueFull;
}

std::vector<ClientStats> AdmissionController::clientStats() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<ClientStats> Out;
  Out.reserve(Lru.size());
  for (const auto &P : Lru)
    Out.push_back(P.second.Stats);
  return Out;
}

size_t AdmissionController::numClients() const {
  std::lock_guard<std::mutex> Lock(M);
  return Lru.size();
}
