//===-- server/Client.h - JSONL RPC client connection -----------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client half of the JSONL RPC protocol: a blocking TCP connection that
/// sends one request line and reads one response line per call(). Shared
/// by tools/shrinkray_client, shrinkray_batch's -connect mode, and
/// bench_service's load-generator threads.
///
/// submitAndWait() is the convenience most callers want: it submits with
/// retry-on-backpressure (sleeping out `rejected: quota` retry hints,
/// backing off on `rejected: queue_full`) and then re-issues bounded
/// waits until the job lands — exactly the client behavior the server's
/// admission control is designed against.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SERVER_CLIENT_H
#define SHRINKRAY_SERVER_CLIENT_H

#include "server/Protocol.h"

#include <cstdint>
#include <optional>
#include <string>

namespace shrinkray {
namespace server {

/// One job's result as seen over the wire.
struct RemoteOutcome {
  std::string Status; ///< "ok", "cache-hit", "cancelled", "failed"
  struct Program {
    std::string Sexp;
    double Cost = 0.0;
  };
  std::vector<Program> Programs;
  double QueueSec = 0.0;
  double RunSec = 0.0;
  std::string Error; ///< diagnostic when Status == "failed"

  bool ok() const { return Status != "failed"; }
};

/// A blocking JSONL RPC connection. Not thread-safe — one connection per
/// client thread (connections are cheap; the server is one thread per
/// connection anyway).
class ClientConnection {
public:
  ClientConnection() = default;
  ~ClientConnection();
  ClientConnection(ClientConnection &&O) noexcept;
  ClientConnection &operator=(ClientConnection &&O) noexcept;
  ClientConnection(const ClientConnection &) = delete;
  ClientConnection &operator=(const ClientConnection &) = delete;

  /// Connects to 127.0.0.1-ish \p Host : \p Port . Returns false (with
  /// diagnostic) on failure.
  bool connect(const std::string &Host, uint16_t Port, std::string &Error);
  bool connected() const { return Fd >= 0; }
  void close();

  /// Sends the hello handshake establishing \p Client as the quota
  /// identity.
  bool hello(const std::string &Client, std::string &Error);

  /// One round trip: encodes \p R, sends it, reads one response line,
  /// parses it. nullopt (with diagnostic) on transport or parse failure.
  std::optional<JsonValue> call(const Request &R, std::string &Error);

  /// Submits with backpressure retries, then waits (re-issuing bounded
  /// waits on server-side timeouts). \p Deadline fields ride on \p R.
  /// nullopt on transport failure or when \p MaxAttempts backpressure
  /// refusals pass without an admit.
  std::optional<RemoteOutcome> submitAndWait(const Request &Submit,
                                             std::string &Error,
                                             size_t MaxAttempts = 100);

  /// Parses a wait/poll done-response into a RemoteOutcome.
  static std::optional<RemoteOutcome> outcomeFrom(const JsonValue &Resp);

private:
  bool sendLine(const std::string &Line, std::string &Error);
  bool recvLine(std::string &Line, std::string &Error);

  int Fd = -1;
  std::string Buf;
};

} // namespace server
} // namespace shrinkray

#endif // SHRINKRAY_SERVER_CLIENT_H
