//===-- server/Server.h - JSONL RPC front end over the service --*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front end of the synthesis service: a framed JSONL RPC
/// server speaking the Protocol.h grammar over stdio (one session on
/// stdin/stdout) or TCP (127.0.0.1, one thread per connection).
///
/// Layering: handleFrame() is the entire request semantics — one request
/// line in, one response line out, given a per-connection Session — and
/// is transport-free, so the protocol tests and the fuzz sweep drive it
/// directly without sockets. The transports (runStdio/runTcp) only move
/// bytes and enforce the frame cap.
///
/// Traffic management (the part the in-process scheduler never needed):
///
///  * admission — submits pass the per-client token bucket
///    (AdmissionController) and then SynthesisService::trySubmit's
///    bounded queue; refusals are explicit `rejected: quota` /
///    `rejected: queue_full` responses, never unbounded buffering.
///  * bounded waits — wait requests are served in stop-aware slices and
///    clamped to MaxWaitTimeoutSec, so no connection thread can be
///    parked forever.
///  * graceful drain — requestStop() (the SIGTERM handler sets it) stops
///    admission (`rejected: draining`), lets in-flight jobs finish for
///    up to DrainGraceSec, cancels the rest via service teardown, and
///    flushes a stats line to stderr.
///
/// Nothing a peer sends can crash the process: every malformed frame
/// degrades to an error response (see Protocol.h), and handleFrame is
/// exception-proof at its boundary.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SERVER_SERVER_H
#define SHRINKRAY_SERVER_SERVER_H

#include "server/Admission.h"
#include "server/Protocol.h"
#include "service/SynthesisService.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace shrinkray {
namespace server {

struct ServerConfig {
  /// The wrapped scheduler's configuration. MaxQueueDepth is the
  /// admission bound (0 would disable backpressure; the serve tool
  /// defaults it to 64).
  service::ServiceConfig Service;
  /// Per-client token-bucket quota; Capacity 0 = no quotas.
  QuotaConfig Quota;
  /// Bound on distinct client-id buckets kept at once (LRU-evicted).
  size_t MaxClients = 4096;
  /// Wait timeout applied when a wait request names none.
  double DefaultWaitTimeoutSec = 30.0;
  /// Hard ceiling on any single wait request's blocking time.
  double MaxWaitTimeoutSec = 600.0;
  /// Frame cap; longer request lines are answered with an error and the
  /// connection is closed (framing is lost past an oversized line).
  size_t MaxFrameBytes = kMaxFrameBytes;
  /// How long a drain waits for in-flight jobs before cancelling them.
  double DrainGraceSec = 20.0;
  /// Log connections and drain progress to stderr.
  bool Verbose = false;
};

/// One server instance: the scheduler, the admission gate, and the two
/// transports. Thread-safe throughout (transports call handleFrame from
/// many connection threads).
class Server {
public:
  /// Per-connection state: the quota identity the handshake established.
  struct Session {
    std::string Client = "anon";
    bool SaidHello = false;
  };

  explicit Server(ServerConfig Cfg);

  /// One request frame (no trailing newline) -> one response line (no
  /// trailing newline). Never throws, never aborts, for any input.
  std::string handleFrame(Session &S, std::string_view Line);

  /// Serves one session over stdin/stdout until EOF or requestStop().
  /// Returns a process exit code.
  int runStdio();

  /// Serves TCP connections on 127.0.0.1:\p Port (0 = ephemeral) until
  /// requestStop(). The bound port is reported through \p BoundPort and
  /// announced on stderr as "listening on 127.0.0.1:<port>".
  int runTcp(uint16_t Port, uint16_t *BoundPort = nullptr);

  /// Initiates drain-and-exit; callable from any thread and from a
  /// signal handler's flag-forwarding thread. Idempotent.
  void requestStop() { Stop.store(true, std::memory_order_release); }
  bool stopping() const { return Stop.load(std::memory_order_acquire); }

  service::SynthesisService &service() { return Svc; }

  /// The stats-op payload: server counters, service counters, cache
  /// counters, and the per-client table.
  JsonValue statsJson();

  /// Writes the human-readable drain/stats summary to stderr.
  void flushStats();

private:
  /// Monotonic seconds since server construction (token-bucket clock).
  double nowSec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Epoch)
        .count();
  }

  std::string handleParsed(Session &S, const ParsedRequest &P);
  std::string handleSubmit(Session &S, const Request &R);
  std::string handleWait(const Request &R);

  /// Runs the drain sequence after the serve loop exits.
  void drain();

  ServerConfig Cfg;
  std::chrono::steady_clock::time_point Epoch;
  service::SynthesisService Svc;
  AdmissionController Admission;
  std::atomic<bool> Stop{false};
  /// Set once drain completed: connection threads exit unconditionally.
  std::atomic<bool> HardStop{false};
  std::atomic<uint64_t> Frames{0};
  std::atomic<uint64_t> BadFrames{0};
  std::atomic<uint64_t> Connections{0};
};

} // namespace server
} // namespace shrinkray

#endif // SHRINKRAY_SERVER_SERVER_H
