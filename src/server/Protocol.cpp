//===-- server/Protocol.cpp - JSONL RPC request/response codec ------------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request validation and response serialization. The request side is
/// deliberately strict about *types and ranges* (a number where a string
/// belongs is an error, job ids must be exact non-negative integers,
/// top_k is clamped to its documented ceiling) and deliberately lax
/// about *unknown fields* (ignored, so older servers tolerate newer
/// clients).
///
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "cad/Sexp.h"

#include <cmath>

using namespace shrinkray;
using namespace shrinkray::server;

namespace {

/// Reads an optional string field; false (with diagnostic) when present
/// but not a string.
bool readString(const JsonValue &Obj, const char *Key, std::string &Out,
                std::string &Error) {
  const JsonValue *V = Obj.get(Key);
  if (!V)
    return true;
  if (!V->isString()) {
    Error = std::string("field '") + Key + "' must be a string";
    return false;
  }
  Out = V->asString();
  return true;
}

bool readBool(const JsonValue &Obj, const char *Key, bool &Out,
              std::string &Error) {
  const JsonValue *V = Obj.get(Key);
  if (!V)
    return true;
  if (!V->isBool()) {
    Error = std::string("field '") + Key + "' must be a boolean";
    return false;
  }
  Out = V->asBool();
  return true;
}

/// Reads an optional finite number >= 0.
bool readNonNegNumber(const JsonValue &Obj, const char *Key, double &Out,
                      std::string &Error) {
  const JsonValue *V = Obj.get(Key);
  if (!V)
    return true;
  if (!V->isNumber() || !(V->asNumber() >= 0.0)) {
    Error = std::string("field '") + Key + "' must be a number >= 0";
    return false;
  }
  Out = V->asNumber();
  return true;
}

/// Reads an optional exact non-negative integer (job ids, counts). A
/// fractional or out-of-exact-range number is an error, not a rounding.
bool readUint(const JsonValue &Obj, const char *Key, uint64_t &Out,
              std::string &Error) {
  const JsonValue *V = Obj.get(Key);
  if (!V)
    return true;
  double N = V->isNumber() ? V->asNumber() : -1.0;
  if (!V->isNumber() || N < 0.0 || N > 9.007199254740992e15 ||
      N != std::floor(N)) {
    Error = std::string("field '") + Key + "' must be a non-negative integer";
    return false;
  }
  Out = static_cast<uint64_t>(N);
  return true;
}

/// job is required on wait/poll/cancel.
bool readRequiredJob(const JsonValue &Obj, Request &Req, std::string &Error) {
  if (!Obj.get("job")) {
    Error = "field 'job' is required";
    return false;
  }
  return readUint(Obj, "job", Req.Job, Error);
}

} // namespace

ParsedRequest shrinkray::server::parseRequest(std::string_view Line) {
  ParsedRequest P;
  if (Line.size() > kMaxFrameBytes) {
    P.Error = "frame exceeds " + std::to_string(kMaxFrameBytes) + " bytes";
    return P;
  }
  JsonParseResult J = parseJson(Line);
  if (!J) {
    P.Error = J.Error;
    return P;
  }
  if (!J.Value.isObject()) {
    P.Error = "request must be a JSON object";
    return P;
  }
  const JsonValue *OpV = J.Value.get("op");
  if (!OpV || !OpV->isString()) {
    P.Error = "field 'op' (string) is required";
    return P;
  }
  const std::string &Op = OpV->asString();
  P.Op = Op;
  Request &R = P.Req;
  std::string &E = P.Error;

  if (Op == "hello") {
    R.K = Request::Kind::Hello;
    if (!readString(J.Value, "client", R.Client, E))
      return P;
    uint64_t Proto = static_cast<uint64_t>(kProtocolVersion);
    if (!readUint(J.Value, "proto", Proto, E))
      return P;
    R.Proto = static_cast<int>(Proto);
  } else if (Op == "submit") {
    R.K = Request::Kind::Submit;
    if (!readString(J.Value, "name", R.Name, E) ||
        !readString(J.Value, "source", R.Source, E) ||
        !readBool(J.Value, "scad", R.SourceIsScad, E) ||
        !readNonNegNumber(J.Value, "deadline_sec", R.DeadlineSec, E))
      return P;
    if (!J.Value.get("source") || R.Source.empty()) {
      E = "field 'source' (non-empty string) is required";
      return P;
    }
    uint64_t TopK = R.TopK;
    if (!readUint(J.Value, "top_k", TopK, E))
      return P;
    if (TopK < 1 || TopK > kMaxTopK) {
      E = "field 'top_k' must be in [1, " + std::to_string(kMaxTopK) + "]";
      return P;
    }
    R.TopK = static_cast<size_t>(TopK);
    std::string Cost;
    if (!readString(J.Value, "cost", Cost, E))
      return P;
    if (Cost.empty() || Cost == "size") {
      R.Cost = CostKind::AstSize;
    } else if (Cost == "loops") {
      R.Cost = CostKind::RewardLoops;
    } else {
      E = "field 'cost' must be \"size\" or \"loops\"";
      return P;
    }
  } else if (Op == "wait") {
    R.K = Request::Kind::Wait;
    if (!readRequiredJob(J.Value, R, E))
      return P;
    if (J.Value.get("timeout_sec")) {
      R.TimeoutSec = 0.0;
      if (!readNonNegNumber(J.Value, "timeout_sec", R.TimeoutSec, E))
        return P;
    }
  } else if (Op == "poll") {
    R.K = Request::Kind::Poll;
    if (!readRequiredJob(J.Value, R, E))
      return P;
  } else if (Op == "cancel") {
    R.K = Request::Kind::Cancel;
    if (!readRequiredJob(J.Value, R, E))
      return P;
  } else if (Op == "stats") {
    R.K = Request::Kind::Stats;
  } else {
    E = "unknown op '" + Op + "'";
    return P;
  }
  P.Ok = true;
  return P;
}

std::string shrinkray::server::encodeRequest(const Request &R) {
  JsonValue O = JsonValue::object();
  switch (R.K) {
  case Request::Kind::Hello:
    O.set("op", JsonValue::string("hello"));
    if (!R.Client.empty())
      O.set("client", JsonValue::string(R.Client));
    O.set("proto", JsonValue::number(R.Proto));
    break;
  case Request::Kind::Submit:
    O.set("op", JsonValue::string("submit"));
    if (!R.Name.empty())
      O.set("name", JsonValue::string(R.Name));
    O.set("source", JsonValue::string(R.Source));
    if (R.SourceIsScad)
      O.set("scad", JsonValue::boolean(true));
    if (R.TopK != 5)
      O.set("top_k", JsonValue::number(static_cast<double>(R.TopK)));
    if (R.Cost == CostKind::RewardLoops)
      O.set("cost", JsonValue::string("loops"));
    if (R.DeadlineSec > 0.0)
      O.set("deadline_sec", JsonValue::number(R.DeadlineSec));
    break;
  case Request::Kind::Wait:
    O.set("op", JsonValue::string("wait"));
    O.set("job", JsonValue::number(static_cast<double>(R.Job)));
    if (R.TimeoutSec >= 0.0)
      O.set("timeout_sec", JsonValue::number(R.TimeoutSec));
    break;
  case Request::Kind::Poll:
    O.set("op", JsonValue::string("poll"));
    O.set("job", JsonValue::number(static_cast<double>(R.Job)));
    break;
  case Request::Kind::Cancel:
    O.set("op", JsonValue::string("cancel"));
    O.set("job", JsonValue::number(static_cast<double>(R.Job)));
    break;
  case Request::Kind::Stats:
    O.set("op", JsonValue::string("stats"));
    break;
  }
  return writeJson(O);
}

namespace {

JsonValue responseHead(std::string_view Op, bool Ok) {
  JsonValue O = JsonValue::object();
  O.set("ok", JsonValue::boolean(Ok));
  if (!Op.empty())
    O.set("op", JsonValue::string(std::string(Op)));
  return O;
}

} // namespace

std::string shrinkray::server::errorResponse(std::string_view Op,
                                             std::string_view Error) {
  JsonValue O = responseHead(Op, false);
  O.set("error", JsonValue::string(std::string(Error)));
  return writeJson(O);
}

std::string shrinkray::server::rejectedResponse(std::string_view Op,
                                                std::string_view Reason,
                                                double RetryAfterSec) {
  JsonValue O = responseHead(Op, false);
  O.set("error", JsonValue::string("rejected: " + std::string(Reason)));
  O.set("rejected", JsonValue::string(std::string(Reason)));
  if (RetryAfterSec > 0.0)
    O.set("retry_after_sec", JsonValue::number(RetryAfterSec));
  return writeJson(O);
}

std::string shrinkray::server::helloResponse(std::string_view Client,
                                             int Proto) {
  JsonValue O = responseHead("hello", true);
  O.set("client", JsonValue::string(std::string(Client)));
  O.set("proto", JsonValue::number(Proto));
  return writeJson(O);
}

std::string shrinkray::server::submittedResponse(uint64_t Job) {
  JsonValue O = responseHead("submit", true);
  O.set("job", JsonValue::number(static_cast<double>(Job)));
  return writeJson(O);
}

const char *shrinkray::server::jobStatusName(service::JobOutcome::Status St) {
  switch (St) {
  case service::JobOutcome::Status::CacheHit:
    return "cache-hit";
  case service::JobOutcome::Status::Succeeded:
    return "ok";
  case service::JobOutcome::Status::Cancelled:
    return "cancelled";
  case service::JobOutcome::Status::Failed:
    return "failed";
  }
  return "?";
}

const char *shrinkray::server::jobPhaseName(service::JobPhase Phase) {
  switch (Phase) {
  case service::JobPhase::Unknown:
    return "unknown";
  case service::JobPhase::Pending:
    return "pending";
  case service::JobPhase::Running:
    return "running";
  case service::JobPhase::Done:
    return "done";
  }
  return "?";
}

std::string
shrinkray::server::outcomeResponse(std::string_view Op, uint64_t Job,
                                   const service::JobOutcome &Out) {
  JsonValue O = responseHead(Op, true);
  O.set("job", JsonValue::number(static_cast<double>(Job)));
  O.set("done", JsonValue::boolean(true));
  O.set("status", JsonValue::string(jobStatusName(Out.St)));
  if (!Out.Error.empty())
    O.set("error", JsonValue::string(Out.Error));
  JsonValue Programs = JsonValue::array();
  for (const RankedTerm &P : Out.Result.Programs) {
    JsonValue Entry = JsonValue::object();
    Entry.set("sexp", JsonValue::string(printSexp(P.T)));
    Entry.set("cost", JsonValue::number(P.Cost));
    Programs.push(std::move(Entry));
  }
  O.set("programs", std::move(Programs));
  O.set("queue_sec", JsonValue::number(Out.QueueSec));
  O.set("run_sec", JsonValue::number(Out.RunSec));
  return writeJson(O);
}

std::string shrinkray::server::waitTimeoutResponse(uint64_t Job) {
  JsonValue O = responseHead("wait", true);
  O.set("job", JsonValue::number(static_cast<double>(Job)));
  O.set("done", JsonValue::boolean(false));
  O.set("timeout", JsonValue::boolean(true));
  return writeJson(O);
}

std::string shrinkray::server::pollResponse(uint64_t Job,
                                            service::JobPhase Phase) {
  JsonValue O = responseHead("poll", true);
  O.set("job", JsonValue::number(static_cast<double>(Job)));
  O.set("phase", JsonValue::string(jobPhaseName(Phase)));
  O.set("done", JsonValue::boolean(Phase == service::JobPhase::Done));
  return writeJson(O);
}

std::string shrinkray::server::cancelResponse(uint64_t Job, bool Cancelled) {
  JsonValue O = responseHead("cancel", true);
  O.set("job", JsonValue::number(static_cast<double>(Job)));
  O.set("cancelled", JsonValue::boolean(Cancelled));
  return writeJson(O);
}

std::string shrinkray::server::statsResponse(const JsonValue &Stats) {
  JsonValue O = responseHead("stats", true);
  O.set("stats", Stats);
  return writeJson(O);
}
