//===-- server/Json.h - Minimal non-throwing JSON codec ---------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON value model and codec behind the JSONL RPC protocol. Network
/// bytes are hostile input, so the parser is written to a hard contract:
/// it never throws, never aborts, and never reads past its input — every
/// malformed byte sequence degrades to a JsonParseResult carrying a
/// diagnostic. Depth is bounded (kMaxJsonDepth) so a nest bomb cannot
/// overflow the stack; callers bound input size (the server's frame cap)
/// before parsing.
///
/// The writer emits the one canonical spelling the tests round-trip:
/// insertion-ordered objects, %.17g numbers (shortest form that
/// round-trips a double), and \uXXXX escapes only where JSON requires
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SERVER_JSON_H
#define SHRINKRAY_SERVER_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shrinkray {
namespace server {

/// Parser recursion limit. Frames deeper than this are rejected with a
/// diagnostic — the protocol itself never nests past 3.
constexpr size_t kMaxJsonDepth = 32;

/// One JSON value. Objects preserve insertion order (writer output is
/// deterministic); lookup is a linear scan, sized for protocol frames,
/// not documents.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool B) {
    JsonValue V;
    V.K = Kind::Bool;
    V.B = B;
    return V;
  }
  static JsonValue number(double N) {
    JsonValue V;
    V.K = Kind::Number;
    V.N = N;
    return V;
  }
  static JsonValue string(std::string S) {
    JsonValue V;
    V.K = Kind::String;
    V.S = std::move(S);
    return V;
  }
  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Typed accessors; calling one against the wrong kind returns the
  /// type's zero value (never asserts — the server reads attacker-shaped
  /// values and validates kinds explicitly first).
  bool asBool() const { return K == Kind::Bool ? B : false; }
  double asNumber() const { return K == Kind::Number ? N : 0.0; }
  const std::string &asString() const {
    static const std::string Empty;
    return K == Kind::String ? S : Empty;
  }

  /// Array elements / object members, in insertion order.
  size_t size() const {
    return K == Kind::Array ? Elems.size()
                            : (K == Kind::Object ? Members.size() : 0);
  }
  const JsonValue &at(size_t I) const { return Elems[I]; }
  const std::pair<std::string, JsonValue> &member(size_t I) const {
    return Members[I];
  }

  /// Object field lookup; nullptr when absent or not an object.
  const JsonValue *get(std::string_view Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &M : Members)
      if (M.first == Key)
        return &M.second;
    return nullptr;
  }

  JsonValue &push(JsonValue V) {
    Elems.push_back(std::move(V));
    return Elems.back();
  }
  JsonValue &set(std::string Key, JsonValue V) {
    Members.emplace_back(std::move(Key), std::move(V));
    return Members.back().second;
  }

private:
  Kind K;
  bool B = false;
  double N = 0.0;
  std::string S;
  std::vector<JsonValue> Elems;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Outcome of parseJson: Value is meaningful only when Error is empty.
struct JsonParseResult {
  JsonValue Value;
  std::string Error;
  explicit operator bool() const { return Error.empty(); }
};

/// Parses exactly one JSON value spanning all of \p Text (trailing
/// non-whitespace is an error — a frame is one value). Never throws.
JsonParseResult parseJson(std::string_view Text);

/// Serializes \p V to the canonical single-line spelling (no trailing
/// newline). parseJson(writeJson(V)) reproduces V exactly; numbers
/// round-trip bit-for-bit through %.17g.
std::string writeJson(const JsonValue &V);

} // namespace server
} // namespace shrinkray

#endif // SHRINKRAY_SERVER_JSON_H
