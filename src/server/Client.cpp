//===-- server/Client.cpp - JSONL RPC client connection -------------------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace shrinkray;
using namespace shrinkray::server;

ClientConnection::~ClientConnection() { close(); }

ClientConnection::ClientConnection(ClientConnection &&O) noexcept
    : Fd(O.Fd), Buf(std::move(O.Buf)) {
  O.Fd = -1;
}

ClientConnection &ClientConnection::operator=(ClientConnection &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    Buf = std::move(O.Buf);
    O.Fd = -1;
  }
  return *this;
}

void ClientConnection::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buf.clear();
}

bool ClientConnection::connect(const std::string &Host, uint16_t Port,
                               std::string &Error) {
  close();
  struct addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  struct addrinfo *Res = nullptr;
  int GE = ::getaddrinfo(Host.c_str(), std::to_string(Port).c_str(), &Hints,
                         &Res);
  if (GE != 0 || !Res) {
    Error = "resolve " + Host + ": " + ::gai_strerror(GE);
    return false;
  }
  int NewFd = -1;
  for (struct addrinfo *A = Res; A; A = A->ai_next) {
    NewFd = ::socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (NewFd < 0)
      continue;
    if (::connect(NewFd, A->ai_addr, A->ai_addrlen) == 0)
      break;
    ::close(NewFd);
    NewFd = -1;
  }
  ::freeaddrinfo(Res);
  if (NewFd < 0) {
    Error = "connect " + Host + ":" + std::to_string(Port) + ": " +
            std::strerror(errno);
    return false;
  }
  Fd = NewFd;
  return true;
}

bool ClientConnection::sendLine(const std::string &Line, std::string &Error) {
  std::string Frame = Line + "\n";
  const char *P = Frame.data();
  size_t Left = Frame.size();
  while (Left > 0) {
    ssize_t N = ::send(Fd, P, Left, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    P += N;
    Left -= static_cast<size_t>(N);
  }
  return true;
}

bool ClientConnection::recvLine(std::string &Line, std::string &Error) {
  for (;;) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      Line.assign(Buf, 0, Nl);
      Buf.erase(0, Nl + 1);
      return true;
    }
    if (Buf.size() > kMaxFrameBytes) {
      Error = "response frame exceeds " + std::to_string(kMaxFrameBytes) +
              " bytes";
      return false;
    }
    char Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Error = "connection closed by server";
      return false;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

std::optional<JsonValue> ClientConnection::call(const Request &R,
                                                std::string &Error) {
  if (Fd < 0) {
    Error = "not connected";
    return std::nullopt;
  }
  if (!sendLine(encodeRequest(R), Error))
    return std::nullopt;
  std::string Line;
  if (!recvLine(Line, Error))
    return std::nullopt;
  JsonParseResult J = parseJson(Line);
  if (!J) {
    Error = "bad response: " + J.Error;
    return std::nullopt;
  }
  if (!J.Value.isObject()) {
    Error = "bad response: not an object";
    return std::nullopt;
  }
  return std::move(J.Value);
}

bool ClientConnection::hello(const std::string &Client, std::string &Error) {
  Request R;
  R.K = Request::Kind::Hello;
  R.Client = Client;
  std::optional<JsonValue> Resp = call(R, Error);
  if (!Resp)
    return false;
  const JsonValue *Ok = Resp->get("ok");
  if (!Ok || !Ok->asBool()) {
    const JsonValue *E = Resp->get("error");
    Error = "hello rejected: " + (E ? E->asString() : std::string("?"));
    return false;
  }
  return true;
}

std::optional<RemoteOutcome>
ClientConnection::outcomeFrom(const JsonValue &Resp) {
  const JsonValue *Done = Resp.get("done");
  if (!Done || !Done->asBool())
    return std::nullopt;
  RemoteOutcome Out;
  const JsonValue *Status = Resp.get("status");
  Out.Status = Status ? Status->asString() : "?";
  const JsonValue *Err = Resp.get("error");
  if (Err)
    Out.Error = Err->asString();
  const JsonValue *QS = Resp.get("queue_sec");
  if (QS && QS->isNumber())
    Out.QueueSec = QS->asNumber();
  const JsonValue *RS = Resp.get("run_sec");
  if (RS && RS->isNumber())
    Out.RunSec = RS->asNumber();
  const JsonValue *Programs = Resp.get("programs");
  if (Programs && Programs->isArray()) {
    for (size_t I = 0; I < Programs->size(); ++I) {
      const JsonValue &P = Programs->at(I);
      RemoteOutcome::Program Prog;
      const JsonValue *Sexp = P.get("sexp");
      const JsonValue *Cost = P.get("cost");
      if (Sexp)
        Prog.Sexp = Sexp->asString();
      if (Cost && Cost->isNumber())
        Prog.Cost = Cost->asNumber();
      Out.Programs.push_back(std::move(Prog));
    }
  }
  return Out;
}

std::optional<RemoteOutcome>
ClientConnection::submitAndWait(const Request &Submit, std::string &Error,
                                size_t MaxAttempts) {
  uint64_t Job = 0;
  bool Submitted = false;
  for (size_t Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    std::optional<JsonValue> Resp = call(Submit, Error);
    if (!Resp)
      return std::nullopt;
    const JsonValue *Ok = Resp->get("ok");
    if (Ok && Ok->asBool()) {
      const JsonValue *J = Resp->get("job");
      if (!J || !J->isNumber()) {
        Error = "submit response carries no job id";
        return std::nullopt;
      }
      Job = static_cast<uint64_t>(J->asNumber());
      Submitted = true;
      break;
    }
    const JsonValue *Rejected = Resp->get("rejected");
    if (!Rejected) {
      const JsonValue *E = Resp->get("error");
      Error = "submit failed: " + (E ? E->asString() : std::string("?"));
      return std::nullopt;
    }
    if (Rejected->asString() == "draining") {
      Error = "submit rejected: server draining";
      return std::nullopt;
    }
    // Backpressure ("quota" / "queue_full"): honor the server's retry
    // hint, floored so a zero hint cannot spin.
    double RetrySec = 0.1;
    const JsonValue *RA = Resp->get("retry_after_sec");
    if (RA && RA->isNumber() && RA->asNumber() > RetrySec)
      RetrySec = RA->asNumber();
    std::this_thread::sleep_for(std::chrono::duration<double>(RetrySec));
  }
  if (!Submitted) {
    Error = "submit still rejected after " + std::to_string(MaxAttempts) +
            " attempts";
    return std::nullopt;
  }

  Request Wait;
  Wait.K = Request::Kind::Wait;
  Wait.Job = Job;
  for (;;) {
    std::optional<JsonValue> Resp = call(Wait, Error);
    if (!Resp)
      return std::nullopt;
    const JsonValue *Ok = Resp->get("ok");
    if (!Ok || !Ok->asBool()) {
      const JsonValue *E = Resp->get("error");
      Error = "wait failed: " + (E ? E->asString() : std::string("?"));
      return std::nullopt;
    }
    if (std::optional<RemoteOutcome> Out = outcomeFrom(*Resp))
      return Out;
    // done:false => server-side wait timeout; re-issue.
  }
}
