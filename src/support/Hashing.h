//===-- support/Hashing.h - Hash combinators --------------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combination helpers used by the hash-consing tables in the
/// e-graph and by term structural hashing.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SUPPORT_HASHING_H
#define SHRINKRAY_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>

namespace shrinkray {

/// Mixes \p Value into \p Seed (boost::hash_combine-style, 64-bit constants).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes each argument and folds it into a single seed.
template <typename... Ts> size_t hashAll(const Ts &...Values) {
  size_t Seed = 0;
  (hashCombine(Seed, std::hash<Ts>()(Values)), ...);
  return Seed;
}

/// Bit-exact hash of a double. Canonicalizes -0.0 to +0.0 so that values that
/// compare equal hash equal; NaN payloads are hashed as-is (NaNs never enter
/// the e-graph, enforced by assertions at construction).
inline size_t hashDouble(double D) {
  if (D == 0.0)
    D = 0.0; // fold -0.0 into +0.0
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return std::hash<uint64_t>()(Bits);
}

} // namespace shrinkray

#endif // SHRINKRAY_SUPPORT_HASHING_H
