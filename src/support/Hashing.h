//===-- support/Hashing.h - Hash combinators --------------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combination helpers used by the hash-consing tables in the
/// e-graph and by term structural hashing.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SUPPORT_HASHING_H
#define SHRINKRAY_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>

namespace shrinkray {

/// Mixes \p Value into \p Seed (boost::hash_combine-style, 64-bit constants).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes each argument and folds it into a single seed.
template <typename... Ts> size_t hashAll(const Ts &...Values) {
  size_t Seed = 0;
  (hashCombine(Seed, std::hash<Ts>()(Values)), ...);
  return Seed;
}

/// Finalizing 64-bit avalanche (splitmix64's mixer): every input bit
/// affects every output bit. Pure arithmetic — stable across processes
/// and platforms, unlike std::hash — so it is safe in hashes that feed
/// on-disk cache keys. Used word-wise where the byte-wise Fnv1a below
/// would be too slow (per-node value hashing in the term interner).
inline uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X;
}

/// Bit-exact hash of a double. Canonicalizes -0.0 to +0.0 so that values that
/// compare equal hash equal; NaN payloads are hashed as-is (NaNs never enter
/// the e-graph, enforced by assertions at construction).
inline size_t hashDouble(double D) {
  if (D == 0.0)
    D = 0.0; // fold -0.0 into +0.0
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return std::hash<uint64_t>()(Bits);
}

/// Incremental byte-wise FNV-1a accumulator over heterogeneous input —
/// the one implementation behind snapshot checksums and the result
/// cache's fingerprints. Stable across processes and platforms of the
/// same endianness (the snapshot/cache formats are little-endian
/// by construction). Not for hot per-node hashing: the e-graph tables
/// use the word-wise combinators above.
class Fnv1a {
public:
  Fnv1a &bytes(const void *P, size_t N) {
    const unsigned char *B = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 1099511628211ull;
    }
    return *this;
  }
  Fnv1a &u64(uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
    return *this;
  }
  Fnv1a &f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof Bits);
    return u64(Bits);
  }
  /// Length-prefixed, so adjacent strings cannot alias ("ab","c" vs
  /// "a","bc").
  template <typename StringLike> Fnv1a &str(const StringLike &S) {
    u64(S.size());
    return bytes(S.data(), S.size());
  }
  uint64_t hash() const { return H; }

private:
  uint64_t H = 1469598103934665603ull;
};

} // namespace shrinkray

#endif // SHRINKRAY_SUPPORT_HASHING_H
