//===-- support/Symbol.h - Interned identifier strings ----------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned, cheaply-copyable identifier strings. Symbols are used for
/// variable names, pattern variables, operator references and `External`
/// labels throughout the system. Two Symbols compare equal iff their spellings
/// are identical, and comparison is a single integer compare.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SUPPORT_SYMBOL_H
#define SHRINKRAY_SUPPORT_SYMBOL_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace shrinkray {

/// An interned string. Default-constructed Symbols are the empty symbol.
class Symbol {
public:
  Symbol() : Id(0) {}

  /// Interns \p Spelling (allocating an id on first use).
  explicit Symbol(std::string_view Spelling);

  /// The spelling this symbol was interned from. Lives as long as the
  /// process; never invalidated.
  std::string_view str() const;

  /// True for the default-constructed (empty) symbol.
  bool empty() const { return Id == 0; }

  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  /// Orders by interning id; stable within a process run, not alphabetical.
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  uint32_t Id;
};

} // namespace shrinkray

template <> struct std::hash<shrinkray::Symbol> {
  size_t operator()(shrinkray::Symbol S) const noexcept {
    return std::hash<uint32_t>()(S.id());
  }
};

#endif // SHRINKRAY_SUPPORT_SYMBOL_H
