//===-- support/Symbol.cpp - Interned identifier strings ------------------===//

#include "support/Symbol.h"

#include <deque>
#include <mutex>
#include <unordered_map>

using namespace shrinkray;

namespace {

/// Process-wide intern table. Wrapped in a function-local static so that no
/// static constructor runs at load time. Guarded by a mutex: the service
/// layer runs synthesis jobs on concurrent worker threads, each of which
/// interns symbols (pattern parsing, scad variables, solver-inserted
/// programs). The deque gives pointer stability, so string_views handed
/// out before a lock was ever contended never dangle — the lock only
/// protects the table's internal growth.
struct InternTable {
  std::mutex M;
  // deque gives pointer stability so string_views handed out never dangle.
  std::deque<std::string> Spellings;
  std::unordered_map<std::string_view, uint32_t> Ids;

  InternTable() {
    Spellings.emplace_back(""); // id 0 == empty symbol
    Ids.emplace(Spellings.back(), 0);
  }

  uint32_t intern(std::string_view S) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Ids.find(S);
    if (It != Ids.end())
      return It->second;
    Spellings.emplace_back(S);
    uint32_t Id = static_cast<uint32_t>(Spellings.size() - 1);
    Ids.emplace(Spellings.back(), Id);
    return Id;
  }

  std::string_view spelling(uint32_t Id) {
    std::lock_guard<std::mutex> Lock(M);
    return Spellings[Id];
  }
};

} // namespace

static InternTable &table() {
  static InternTable Table;
  return Table;
}

Symbol::Symbol(std::string_view Spelling) : Id(table().intern(Spelling)) {}

std::string_view Symbol::str() const { return table().spelling(Id); }
