//===-- support/Symbol.cpp - Interned identifier strings ------------------===//

#include "support/Symbol.h"

#include <deque>
#include <unordered_map>

using namespace shrinkray;

namespace {

/// Process-wide intern table. Wrapped in a function-local static so that no
/// static constructor runs at load time.
struct InternTable {
  // deque gives pointer stability so string_views handed out never dangle.
  std::deque<std::string> Spellings;
  std::unordered_map<std::string_view, uint32_t> Ids;

  InternTable() {
    Spellings.emplace_back(""); // id 0 == empty symbol
    Ids.emplace(Spellings.back(), 0);
  }

  uint32_t intern(std::string_view S) {
    auto It = Ids.find(S);
    if (It != Ids.end())
      return It->second;
    Spellings.emplace_back(S);
    uint32_t Id = static_cast<uint32_t>(Spellings.size() - 1);
    Ids.emplace(Spellings.back(), Id);
    return Id;
  }
};

} // namespace

static InternTable &table() {
  static InternTable Table;
  return Table;
}

Symbol::Symbol(std::string_view Spelling) : Id(table().intern(Spelling)) {}

std::string_view Symbol::str() const { return table().Spellings[Id]; }
