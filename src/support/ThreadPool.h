//===-- support/ThreadPool.h - Ticket-drained worker pool -------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed worker pool shared by every parallel phase of the pipeline:
/// the Runner's group searches and conflict-partitioned applies, and the
/// k-best extractor's wave-sharded refresh. It began life as the Runner's
/// private SearchPool (PR 4) and was hoisted here unchanged when the apply
/// and extract phases gained parallel schedulers of their own.
///
/// Determinism contract: run() hands out task indices through one atomic
/// cursor, so whichever thread is free takes the next index — but tasks
/// must write disjoint output slots, and callers must consume the slots in
/// a stable order afterwards. Under that discipline results are
/// bit-identical at every thread count (including 1, where the caller
/// drains every ticket itself).
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SUPPORT_THREADPOOL_H
#define SHRINKRAY_SUPPORT_THREADPOOL_H

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shrinkray {

/// Number of engine threads (including the calling thread) for a
/// configured limit. 0 = auto: small and fixed, capped at 4 — the parallel
/// units (root-op groups, apply partitions, extraction waves) are coarse,
/// and more threads than units only adds wake-up latency.
inline size_t resolveThreads(size_t Configured) {
  if (Configured != 0)
    return Configured;
  unsigned HW = std::thread::hardware_concurrency();
  return std::min<size_t>(4, HW ? HW : 1);
}

/// A fixed pool of N-1 workers plus the calling thread, reused across all
/// invocations. run() publishes one epoch; workers and the caller race on
/// an atomic ticket counter until the task range is drained.
class WorkerPool {
public:
  explicit WorkerPool(size_t NumWorkers) {
    Workers.reserve(NumWorkers);
    for (size_t I = 0; I < NumWorkers; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> L(M);
      Stop = true;
    }
    WorkCV.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  size_t numWorkers() const { return Workers.size(); }

  /// Runs Fn(0..NumTasks-1), caller participating. Returns once all tasks
  /// finished. A worker can linger in the old epoch's drain loop for one
  /// more (losing) ticket probe after that — so publishing the *next*
  /// epoch waits for Draining == 0 before resetting the ticket counter:
  /// a stale worker can then never claim a fresh ticket against its dead
  /// function pointer, and a worker that wakes late adopts an exhausted
  /// counter and exits without invoking anything.
  void run(size_t NumTasks, const std::function<void(size_t)> &Fn) {
    if (NumTasks == 0)
      return;
    if (Workers.empty()) {
      for (size_t I = 0; I < NumTasks; ++I)
        Fn(I);
      return;
    }
    {
      std::unique_lock<std::mutex> L(M);
      DoneCV.wait(L, [&] { return Draining == 0; }); // quiesce stragglers
      Task = &Fn;
      Tasks = NumTasks;
      Next.store(0, std::memory_order_relaxed);
      Done.store(0, std::memory_order_relaxed);
      ++Epoch;
    }
    WorkCV.notify_all();
    drain(&Fn, NumTasks);
    std::unique_lock<std::mutex> L(M);
    DoneCV.wait(L,
                [&] { return Done.load(std::memory_order_acquire) == Tasks; });
  }

private:
  void drain(const std::function<void(size_t)> *Fn, size_t NumTasks) {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= NumTasks)
        return;
      (*Fn)(I); // a claimed ticket implies this epoch is still published
      if (Done.fetch_add(1, std::memory_order_acq_rel) + 1 == NumTasks) {
        std::lock_guard<std::mutex> L(M);
        DoneCV.notify_all();
      }
    }
  }

  void workerLoop() {
    uint64_t Seen = 0;
    for (;;) {
      const std::function<void(size_t)> *Fn;
      size_t NumTasks;
      {
        std::unique_lock<std::mutex> L(M);
        WorkCV.wait(L, [&] { return Stop || Epoch != Seen; });
        if (Stop)
          return;
        Seen = Epoch;
        Fn = Task;
        NumTasks = Tasks;
        ++Draining;
      }
      drain(Fn, NumTasks);
      {
        std::lock_guard<std::mutex> L(M);
        --Draining;
      }
      DoneCV.notify_all();
    }
  }

  std::vector<std::thread> Workers;
  std::mutex M;
  std::condition_variable WorkCV, DoneCV;
  const std::function<void(size_t)> *Task = nullptr;
  size_t Tasks = 0;
  uint64_t Epoch = 0;
  size_t Draining = 0; ///< workers currently inside an epoch's drain()
  bool Stop = false;
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Done{0};
};

} // namespace shrinkray

#endif // SHRINKRAY_SUPPORT_THREADPOOL_H
