//===-- support/Rng.h - Deterministic random numbers ------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic PRNG (xorshift128+) used by the sampling-based
/// geometric equivalence oracle, the noise injector, and the property-test
/// generators. We avoid std::mt19937 so that sampled sequences are identical
/// across standard libraries, keeping test expectations portable.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SUPPORT_RNG_H
#define SHRINKRAY_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace shrinkray {

/// Deterministic xorshift128+ generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // splitmix64 seeding, as recommended by the xorshift authors.
    State[0] = splitmix(Seed);
    State[1] = splitmix(Seed);
    if (State[0] == 0 && State[1] == 0)
      State[0] = 1;
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t X = State[0];
    const uint64_t Y = State[1];
    State[0] = Y;
    X ^= X << 23;
    State[1] = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return State[1] + Y;
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [Lo, Hi).
  double nextDouble(double Lo, double Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0)");
    // Modulo bias is irrelevant for our use (Bound << 2^64).
    return next() % Bound;
  }

private:
  uint64_t State[2];

  static uint64_t splitmix(uint64_t &X) {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }
};

} // namespace shrinkray

#endif // SHRINKRAY_SUPPORT_RNG_H
