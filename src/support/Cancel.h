//===-- support/Cancel.h - Cooperative cancellation -------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative cancellation token shared between a job's owner and the
/// engine loops doing its work. The service layer hands one token per
/// synthesis job to the Runner (checked at saturation-iteration
/// boundaries) and the Synthesizer (checked between pipeline phases and
/// between fold sites); cancel() — called from any thread — or an armed
/// deadline makes the next check wind the job down with whatever partial
/// result it has. Default-constructed tokens are *inert*: they can never
/// be cancelled and cost one null-pointer test per check, so the
/// single-job CLI path pays nothing.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_SUPPORT_CANCEL_H
#define SHRINKRAY_SUPPORT_CANCEL_H

#include <atomic>
#include <chrono>
#include <memory>

namespace shrinkray {

/// Shared-state cancellation handle. Copies observe (and can trigger) the
/// same cancellation; all members are safe to call from any thread.
class CancelToken {
public:
  /// Inert token: cancelled() is always false, cancel() is a no-op.
  CancelToken() = default;

  /// A fresh, live token (not yet cancelled, no deadline).
  static CancelToken make() {
    CancelToken T;
    T.S = std::make_shared<State>();
    return T;
  }

  /// A live token that auto-cancels \p Seconds from now.
  static CancelToken withDeadline(double Seconds) {
    CancelToken T = make();
    T.armDeadline(Seconds);
    return T;
  }

  /// True when this token can ever report cancellation (non-inert).
  bool valid() const { return S != nullptr; }

  /// Requests cancellation. No-op on an inert token.
  void cancel() const {
    if (S)
      S->Flag.store(true, std::memory_order_release);
  }

  /// Arms (or re-arms) the deadline \p Seconds from now. The deadline is
  /// evaluated lazily inside cancelled(); no timer thread exists. Must not
  /// race with concurrent cancelled() callers — arm before handing the
  /// token to the engines (the service arms it when the job starts).
  void armDeadline(double Seconds) const {
    if (!S)
      return;
    S->Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(Seconds));
    S->HasDeadline.store(true, std::memory_order_release);
  }

  /// True once cancel() ran or an armed deadline passed. The deadline
  /// check latches into the flag so later calls are one atomic load.
  bool cancelled() const {
    if (!S)
      return false;
    if (S->Flag.load(std::memory_order_acquire))
      return true;
    if (S->HasDeadline.load(std::memory_order_acquire) &&
        std::chrono::steady_clock::now() >= S->Deadline) {
      S->Flag.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

private:
  struct State {
    std::atomic<bool> Flag{false};
    std::atomic<bool> HasDeadline{false};
    std::chrono::steady_clock::time_point Deadline{};
  };
  std::shared_ptr<State> S;
};

} // namespace shrinkray

#endif // SHRINKRAY_SUPPORT_CANCEL_H
