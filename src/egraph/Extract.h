//===-- egraph/Extract.h - Cost-based extraction ----------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extraction of the best (and top-k best) programs from a saturated e-graph
/// under a user-supplied cost function (paper Sec. 5.1). Costs may depend
/// recursively on argument costs; both the default AST-size cost and the
/// `reward-loops` variant from the evaluation live in synth/Cost.h.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_EGRAPH_EXTRACT_H
#define SHRINKRAY_EGRAPH_EXTRACT_H

#include "egraph/EGraph.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace shrinkray {

/// A cost function over operators and already-computed child costs.
class CostFn {
public:
  virtual ~CostFn() = default;

  /// Cost of a node with operator \p O whose children cost \p ChildCosts.
  /// Must be monotone: not smaller than any child cost (this guarantees
  /// extraction terminates on cyclic e-graphs).
  virtual double cost(const Op &O,
                      const std::vector<double> &ChildCosts) const = 0;
};

/// The paper's default cost: number of AST nodes. Float literals carry an
/// infinitesimal surcharge so that, among value-equal programs, extraction
/// deterministically prefers integer spellings (as the paper's figures do).
class AstSizeCost : public CostFn {
public:
  double cost(const Op &O, const std::vector<double> &ChildCosts) const final {
    double Sum = O.kind() == OpKind::Float ? 1.0 + 1e-9 : 1.0;
    for (double C : ChildCosts)
      Sum += C;
    return Sum;
  }
};

/// AST-depth cost: extracts the shallowest program (a secondary metric the
/// evaluation reports; max of child costs plus one).
class AstDepthCost : public CostFn {
public:
  double cost(const Op &, const std::vector<double> &ChildCosts) const final {
    double Max = 0.0;
    for (double C : ChildCosts)
      Max = std::max(Max, C);
    return Max + 1.0;
  }
};

/// One-best extraction: computes, per class, the cheapest representable term.
class Extractor {
public:
  Extractor(const EGraph &G, const CostFn &Fn);

  /// Cheapest cost of any term in the class, if one is extractable.
  std::optional<double> bestCost(EClassId Id) const;

  /// The cheapest term of the class. Asserts that one exists.
  TermPtr extract(EClassId Id) const;

private:
  const EGraph &G;
  // Indexed by canonical class id.
  std::unordered_map<EClassId, double> Costs;
  std::unordered_map<EClassId, ENode> Choices;
  mutable std::unordered_map<EClassId, TermPtr> BuildMemo;

  TermPtr build(EClassId Id) const;
};

/// A term together with its extraction cost.
struct RankedTerm {
  TermPtr T;
  double Cost;
};

/// Top-k extraction: per class, the k cheapest *distinct* terms (paper
/// Sec. 5.1: ShrinkRay returns the top-k programs so the user can pick the
/// parameterization that suits the edit they want to make).
class KBestExtractor {
public:
  KBestExtractor(const EGraph &G, const CostFn &Fn, size_t K);

  /// Up to k cheapest distinct terms of the class, cheapest first.
  std::vector<RankedTerm> extract(EClassId Id) const;

private:
  struct Candidate {
    double Cost = std::numeric_limits<double>::infinity();
    TermPtr T;
    size_t Hash = 0;
  };

  const EGraph &G;
  const CostFn &Fn;
  size_t K;
  std::vector<EClassId> ClassOrder; ///< ascending one-best cost
  std::unordered_map<EClassId, std::vector<Candidate>> Table;

  std::vector<Candidate> combineNode(const ENode &Node) const;
  bool pass();
};

} // namespace shrinkray

#endif // SHRINKRAY_EGRAPH_EXTRACT_H
