//===-- egraph/Extract.h - Cost-based extraction ----------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extraction of the best (and top-k best) programs from a saturated e-graph
/// under a user-supplied cost function (paper Sec. 5.1). Costs may depend
/// recursively on argument costs; both the default AST-size cost and the
/// `reward-loops` variant from the evaluation live in synth/Cost.h.
///
/// The engines are *worklist-driven* rather than whole-graph fixed points
/// (egg treats extraction as a one-pass analysis propagated along parent
/// edges; E-morphic bounds k-best state per class):
///
///  * `Extractor` seeds per-class one-best costs from leaf e-nodes and
///    relaxes parent e-nodes through EGraph::canonicalParents until no
///    (cost, choice) pair improves — work proportional to the number of
///    cost improvements, not to (classes x passes).
///  * `KBestExtractor` keeps, per class, a bounded list of up to k distinct
///    candidate programs and recomputes a class only when a child's list
///    changed, enumerating child-candidate combinations lazily through a
///    best-first frontier heap (k-shortest-paths style "cube pruning").
///  * Both engines are incremental across graph mutations: refresh() keys
///    cached costs on the e-graph's generation-stamped dirty log
///    (EGraph::takeDirtySince) and re-derives only classes whose best
///    programs could have changed, so re-extraction after a saturation
///    round costs time proportional to what the round changed.
///
/// Cost ties are broken deterministically (smallest e-node under a fixed
/// total order wins), which makes extraction a pure function of the graph:
/// the worklist engines are bit-identical to the `ReferenceExtractor` /
/// `ReferenceKBestExtractor` fixed-point oracles kept below for
/// differential testing (the `matchClassReference` pattern from the
/// e-matching engine).
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_EGRAPH_EXTRACT_H
#define SHRINKRAY_EGRAPH_EXTRACT_H

#include "egraph/EGraph.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

namespace shrinkray {

/// A cost function over operators and already-computed child costs.
class CostFn {
public:
  virtual ~CostFn() = default;

  /// Cost of a node with operator \p O whose children cost \p ChildCosts.
  /// Must be monotone: not smaller than any child cost (this guarantees
  /// extraction terminates on cyclic e-graphs).
  virtual double cost(const Op &O,
                      const std::vector<double> &ChildCosts) const = 0;
};

/// The paper's default cost: number of AST nodes. Float literals carry an
/// infinitesimal surcharge so that, among value-equal programs, extraction
/// deterministically prefers integer spellings (as the paper's figures do).
class AstSizeCost : public CostFn {
public:
  double cost(const Op &O, const std::vector<double> &ChildCosts) const final {
    double Sum = O.kind() == OpKind::Float ? 1.0 + 1e-9 : 1.0;
    for (double C : ChildCosts)
      Sum += C;
    return Sum;
  }
};

/// AST-depth cost: extracts the shallowest program (a secondary metric the
/// evaluation reports; max of child costs plus one).
class AstDepthCost : public CostFn {
public:
  double cost(const Op &, const std::vector<double> &ChildCosts) const final {
    double Max = 0.0;
    for (double C : ChildCosts)
      Max = std::max(Max, C);
    return Max + 1.0;
  }
};

/// One-best extraction: computes, per class, the cheapest representable
/// term by worklist relaxation along the parent index. Construction runs a
/// full derivation; refresh() incrementally re-derives after mutations.
class Extractor {
public:
  Extractor(const EGraph &G, const CostFn &Fn);

  /// Restore-construction for the snapshot tier: binds an *empty* engine
  /// to \p G without running a derivation. The engine is unusable until a
  /// successful restoreState(); on restore failure it must be discarded.
  struct RestoreTag {};
  Extractor(RestoreTag, const EGraph &G, const CostFn &Fn);

  /// Serializes the derived state (synced generation, per-class costs and
  /// choice e-nodes) for the service snapshot tier. The blob is only
  /// meaningful alongside the e-graph snapshot serialized at the same
  /// generation — restoreState() enforces the pairing.
  std::string saveState() const;

  /// Loads state saved by saveState() into a RestoreTag-constructed
  /// engine. Returns "" on success, a diagnostic otherwise (wrong
  /// generation, malformed bytes, ids outside the bound graph) — never
  /// asserts, so corrupt snapshot-tier blobs degrade to cache misses.
  /// After success the engine behaves exactly like the one that was
  /// saved: refresh() resumes incrementally from the stored generation.
  std::string restoreState(std::string_view Bytes);

  /// Releases the engine's dirty-log lease (see below). The engine must
  /// not outlive the graph.
  ~Extractor();

  // The engine registers a dirty-log lease with the graph (so the
  // Runner's log compaction preserves the suffix refresh() will read);
  // copying would double-release it.
  Extractor(const Extractor &) = delete;
  Extractor &operator=(const Extractor &) = delete;

  /// Re-derives costs after graph mutations (merges, added nodes, analysis
  /// changes) at cost proportional to the dirty closure since the last
  /// derivation. Requires a clean graph. Equivalent to rebuilding the
  /// extractor from scratch, but incremental. Also compacts the cost
  /// tables when merges have left them dominated by superseded
  /// (non-canonical) keys — long-lived sessions would otherwise grow them
  /// without bound.
  void refresh();

  /// Rows currently held by the cost table, stale keys included (tests
  /// assert bounded growth across long sessions).
  size_t tableEntries() const { return CostsLive; }

  /// Cheapest cost of any term in the class, if one is extractable.
  std::optional<double> bestCost(EClassId Id) const;

  /// The cheapest term of the class. Asserts that one exists.
  TermPtr extract(EClassId Id) const;

  /// The e-node the class extracts through, or nullptr when the class has
  /// no finite cost. The stored form may be stale; canonicalize it before
  /// comparing. Exposed for differential tests.
  const ENode *choiceNode(EClassId Id) const;

private:
  const EGraph &G;
  const CostFn &Fn;
  /// Graph generation the cached costs are synchronized with.
  uint64_t SyncedGen = 0;
  /// Dirty-log lease pinned at SyncedGen (EGraph::acquireDirtyLease).
  uint64_t DirtyLease = 0;
  // Dense cost table indexed by class id (+inf = no finite-cost term
  // derived). nodeCost probes it once per (node, child), which made the
  // hashed map's find() a measurable slice of extraction profiles.
  // Entries keyed by superseded ids are unreachable through find() and
  // simply go stale; CostsLive counts the finite entries (stale
  // included) so refresh() can tell when a compaction sweep pays.
  std::vector<double> Costs;
  size_t CostsLive = 0;
  std::unordered_map<EClassId, ENode> Choices;
  mutable std::unordered_map<EClassId, TermPtr> BuildMemo;
  /// Child-cost scratch reused across relax() calls (one allocation per
  /// derivation instead of one per node visit).
  std::vector<double> KidCostScratch;

  /// Re-derives (cost, choice) for \p Seeds and propagates improvements
  /// upward along canonicalParents to the unique fixpoint.
  void deriveFrom(const std::vector<EClassId> &Seeds);

  /// Evaluates \p Node as a candidate for \p Id; returns true and updates
  /// the tables when it improves the stored (cost, choice) pair.
  bool relax(EClassId Id, const ENode &Node);

  TermPtr build(EClassId Id) const;
};

/// One-best extraction oracle: the naive whole-graph fixed point (sweep all
/// classes until nothing changes), kept verbatim as a differential-test
/// oracle for Extractor. Applies the same deterministic tie-break, so its
/// results are bit-identical to the worklist engine's.
class ReferenceExtractor {
public:
  ReferenceExtractor(const EGraph &G, const CostFn &Fn);

  std::optional<double> bestCost(EClassId Id) const;
  TermPtr extract(EClassId Id) const;
  const ENode *choiceNode(EClassId Id) const;

private:
  const EGraph &G;
  std::unordered_map<EClassId, double> Costs;
  std::unordered_map<EClassId, ENode> Choices;
  mutable std::unordered_map<EClassId, TermPtr> BuildMemo;

  TermPtr build(EClassId Id) const;
};

/// A term together with its extraction cost.
struct RankedTerm {
  TermPtr T;
  double Cost;
};

/// A candidate program of one e-class: cost, term, and the term's
/// value-level hash (termValueHash) used for O(1)-expected deduplication.
struct ExtractCandidate {
  double Cost = std::numeric_limits<double>::infinity();
  TermPtr T;
  size_t ValueHash = 0;
};

/// Top-k extraction: per class, the k cheapest *distinct* terms (paper
/// Sec. 5.1: ShrinkRay returns the top-k programs so the user can pick the
/// parameterization that suits the edit they want to make). Distinctness is
/// value-level: Int(5) and Float(5.0) respellings do not count as program
/// diversity.
///
/// Worklist-driven: classes are (re)combined in ascending one-best-cost
/// order, and a class is revisited only when a child's candidate list
/// changed. Each recombination enumerates candidates lazily through one
/// bounded best-first heap over all the class's e-nodes, stopping at the
/// k-th distinct program. refresh() makes the table incremental across
/// graph mutations, like Extractor.
///
/// Candidates live in a *flat row store*, not as materialized terms: a row
/// is (operator, child row ids), hashconsed per engine, so a candidate in
/// the table is just (cost, row id) and row-id equality is structural
/// equality of candidate programs. Recombination reads and produces row
/// ids; rows are interned only at the serial commit of each wave (worker
/// threads never touch the store), and real TermPtrs materialize only in
/// extract()/saveState(). Row ids are allocated in wave-commit order — a
/// pure function of the graph — so the table stays bit-identical at every
/// thread count.
class KBestExtractor {
public:
  /// \p NumThreads: engine threads for the wave-scheduled recombination
  /// (see deriveFrom). 1 = serial; 0 = auto (resolveThreads). The wave
  /// schedule is a pure function of the graph, so any value produces
  /// bit-identical candidate tables.
  KBestExtractor(const EGraph &G, const CostFn &Fn, size_t K,
                 size_t NumThreads = 1);

  /// Serializes the engine (one-best section plus the candidate table,
  /// terms encoded once through a shared structure pool) for the service
  /// snapshot tier. Restoring on the graph snapshot serialized at the
  /// same generation reproduces the engine bit-for-bit — including
  /// refresh() behavior, which is what lets a warm start refresh
  /// incrementally instead of re-deriving the whole table.
  std::string saveState() const;

  /// Rebuilds an engine from saveState() bytes. \p K and \p NumThreads
  /// must match the request (the stored K is validated; thread count is
  /// free — the table is thread-invariant). Returns nullptr and sets
  /// \p Err on any validation failure.
  static std::unique_ptr<KBestExtractor>
  restore(const EGraph &G, const CostFn &Fn, size_t K, size_t NumThreads,
          std::string_view Bytes, std::string &Err);

  /// Releases the engine's dirty-log lease; see Extractor.
  ~KBestExtractor();

  KBestExtractor(const KBestExtractor &) = delete;
  KBestExtractor &operator=(const KBestExtractor &) = delete;

  /// Incrementally re-derives candidate lists after graph mutations; see
  /// Extractor::refresh(). Like Extractor, compacts superseded candidate
  /// rows once they dominate the table.
  void refresh();

  /// Up to k cheapest distinct terms of the class, cheapest first.
  std::vector<RankedTerm> extract(EClassId Id) const;

  /// Rows currently held by the candidate table, stale keys included
  /// (tests assert bounded growth across long sessions).
  size_t tableEntries() const { return Table.size(); }

private:
  /// One hashconsed candidate shape: an operator applied to child rows
  /// (a span into RowKids). ValueHash caches termValueHash of the term
  /// the row denotes, for O(arity) dedup hashing during recombination.
  struct CandRow {
    Op Operator;
    uint32_t KidsBegin;
    uint32_t KidsEnd;
    size_t ValueHash;
  };
  /// A candidate program of one class: its cost and interned row.
  struct CandRef {
    double Cost;
    uint32_t Row;
  };
  /// A recombination result before its row is interned: produced on
  /// worker threads (which must not mutate the row store), interned at
  /// the serial wave commit.
  struct PendingCand {
    double Cost;
    size_t ValueHash;
    Op Operator;
    std::vector<uint32_t> Kids;
  };

  const EGraph &G;
  const CostFn &Fn;
  size_t K;
  size_t Threads;    ///< resolved engine thread count (1 = serial)
  Extractor OneBest; ///< processing priority + refresh seed costs
  uint64_t SyncedGen = 0;
  uint64_t DirtyLease = 0; ///< see Extractor::DirtyLease
  std::unordered_map<EClassId, std::vector<CandRef>> Table;
  /// The row store: append-only, immutable once written (worker threads
  /// read committed rows lock-free during a wave), deduplicated through
  /// RowIndex so structurally equal candidates share one row id.
  std::vector<CandRow> Rows;
  std::vector<uint32_t> RowKids;
  /// Open-addressed dedup index over Rows: a slot holds (structural hash,
  /// row id + 1), with 0 meaning empty. The store is append-only — rows
  /// are never erased — so linear probing needs no tombstones; the table
  /// doubles at 3/4 occupancy (Rows.size() is exactly the occupancy,
  /// since every row is inserted here once). Replaces a node-based
  /// unordered_map whose bucket chases dominated the commit path.
  struct RowSlot {
    size_t Hash = 0;
    uint32_t RowPlus1 = 0;
  };
  std::vector<RowSlot> RowIndex;
  /// Lazy row -> term materializations (extract()/saveState() only).
  /// Never invalidated: rows are immutable.
  mutable std::unordered_map<uint32_t, TermPtr> RowTerms;
  /// Created lazily by the first wave large enough to dispatch; graphs
  /// that never produce such a wave never start a thread.
  std::unique_ptr<WorkerPool> Pool;

  KBestExtractor(Extractor::RestoreTag, const EGraph &G, const CostFn &Fn,
                 size_t K, size_t NumThreads);
  std::string restoreState(std::string_view Bytes);

  void deriveFrom(const std::vector<EClassId> &Seeds);

  /// Interns (O, Kids[0..N)) in the row store; \p ValueHash must equal
  /// termValueHashNode(O, kid value hashes). Serial-only (commit path).
  uint32_t internRow(const Op &O, const uint32_t *Kids, size_t N,
                     size_t ValueHash);
  /// Value-level equality of two rows (the row analogue of
  /// termApproxEquals at Eps 0). Read-only; safe on worker threads.
  bool rowValueEq(uint32_t A, uint32_t B) const;
  /// Recomputes the up-to-k cheapest distinct candidates of \p Id from
  /// the frozen table. Pure reader of engine state; safe on workers.
  std::vector<PendingCand> combineClass(EClassId Id) const;
  /// Builds the term a row denotes (iterative, memoized in RowTerms).
  TermPtr materializeRow(uint32_t Row) const;
};

/// Top-k extraction oracle: whole-graph sweeps to a fixed point (the
/// original pass() structure), sharing the per-class lazy combination and
/// hashed deduplication with the worklist engine so the two differ only in
/// scheduling — the part differential tests need to pin down.
class ReferenceKBestExtractor {
public:
  ReferenceKBestExtractor(const EGraph &G, const CostFn &Fn, size_t K);

  std::vector<RankedTerm> extract(EClassId Id) const;

private:
  const EGraph &G;
  const CostFn &Fn;
  size_t K;
  std::vector<EClassId> ClassOrder; ///< ascending one-best cost
  std::unordered_map<EClassId, std::vector<ExtractCandidate>> Table;

  bool pass();
};

} // namespace shrinkray

#endif // SHRINKRAY_EGRAPH_EXTRACT_H
