//===-- egraph/Runner.cpp - Equality saturation driver --------------------===//

#include "egraph/Runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

using namespace shrinkray;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// Number of search workers (including the calling thread) for the
/// configured limit. 0 = auto: small and fixed, capped at 4 — phase-1
/// sharding is by root-op group, and the database has ~10 groups.
size_t resolveThreads(size_t Configured) {
  if (Configured != 0)
    return Configured;
  unsigned HW = std::thread::hardware_concurrency();
  return std::min<size_t>(4, HW ? HW : 1);
}

/// A fixed pool of N-1 workers plus the calling thread, reused across all
/// iterations of one saturation run. run() hands out task indices through
/// one atomic cursor, so whichever thread is free takes the next group;
/// results are deterministic regardless because tasks write disjoint
/// output slots and are consumed in stable order afterwards.
class SearchPool {
public:
  explicit SearchPool(size_t NumWorkers) {
    Workers.reserve(NumWorkers);
    for (size_t I = 0; I < NumWorkers; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  SearchPool(const SearchPool &) = delete;
  SearchPool &operator=(const SearchPool &) = delete;

  ~SearchPool() {
    {
      std::lock_guard<std::mutex> L(M);
      Stop = true;
    }
    WorkCV.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  /// Runs Fn(0..NumTasks-1), caller participating. Returns once all tasks
  /// finished. A worker can linger in the old epoch's drain loop for one
  /// more (losing) ticket probe after that — so publishing the *next*
  /// epoch waits for Draining == 0 before resetting the ticket counter:
  /// a stale worker can then never claim a fresh ticket against its dead
  /// function pointer, and a worker that wakes late adopts an exhausted
  /// counter and exits without invoking anything.
  void run(size_t NumTasks, const std::function<void(size_t)> &Fn) {
    if (NumTasks == 0)
      return;
    if (Workers.empty()) {
      for (size_t I = 0; I < NumTasks; ++I)
        Fn(I);
      return;
    }
    {
      std::unique_lock<std::mutex> L(M);
      DoneCV.wait(L, [&] { return Draining == 0; }); // quiesce stragglers
      Task = &Fn;
      Tasks = NumTasks;
      Next.store(0, std::memory_order_relaxed);
      Done.store(0, std::memory_order_relaxed);
      ++Epoch;
    }
    WorkCV.notify_all();
    drain(&Fn, NumTasks);
    std::unique_lock<std::mutex> L(M);
    DoneCV.wait(L,
                [&] { return Done.load(std::memory_order_acquire) == Tasks; });
  }

private:
  void drain(const std::function<void(size_t)> *Fn, size_t NumTasks) {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= NumTasks)
        return;
      (*Fn)(I); // a claimed ticket implies this epoch is still published
      if (Done.fetch_add(1, std::memory_order_acq_rel) + 1 == NumTasks) {
        std::lock_guard<std::mutex> L(M);
        DoneCV.notify_all();
      }
    }
  }

  void workerLoop() {
    uint64_t Seen = 0;
    for (;;) {
      const std::function<void(size_t)> *Fn;
      size_t NumTasks;
      {
        std::unique_lock<std::mutex> L(M);
        WorkCV.wait(L, [&] { return Stop || Epoch != Seen; });
        if (Stop)
          return;
        Seen = Epoch;
        Fn = Task;
        NumTasks = Tasks;
        ++Draining;
      }
      drain(Fn, NumTasks);
      {
        std::lock_guard<std::mutex> L(M);
        --Draining;
      }
      DoneCV.notify_all();
    }
  }

  std::vector<std::thread> Workers;
  std::mutex M;
  std::condition_variable WorkCV, DoneCV;
  const std::function<void(size_t)> *Task = nullptr;
  size_t Tasks = 0;
  uint64_t Epoch = 0;
  size_t Draining = 0; ///< workers currently inside an epoch's drain()
  bool Stop = false;
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Done{0};
};

/// Applied-match memo key: canonical ids of the match root and every bound
/// variable, in Pattern::vars() order. FNV-1a over the words.
struct MatchKeyHash {
  size_t operator()(const std::vector<EClassId> &K) const {
    uint64_t H = 1469598103934665603ull;
    for (EClassId V : K) {
      H ^= V;
      H *= 1099511628211ull;
    }
    return static_cast<size_t>(H);
  }
};

using AppliedMemo = std::unordered_set<std::vector<EClassId>, MatchKeyHash>;

} // namespace

RunnerReport Runner::run(EGraph &G, const std::vector<Rewrite> &Rules) const {
  RuleSet Compiled(Rules);
  return run(G, Compiled);
}

RunnerReport Runner::run(EGraph &G, const RuleSet &DB) const {
  const auto Start = Clock::now();
  auto elapsed = [&] { return secondsSince(Start); };

  const std::vector<Rewrite> &Rules = DB.rules();
  const size_t NumRules = Rules.size();
  const size_t NumGroups = DB.numGroups();

  RunnerReport Report;
  Report.Rules.resize(NumRules);
  for (size_t R = 0; R < NumRules; ++R)
    Report.Rules[R].Name = Rules[R].name();

  // Backoff state per rule: banned-until iteration and current ban length.
  std::vector<size_t> BannedUntil(NumRules, 0);
  std::vector<size_t> BanLength(NumRules, Limits.BanLengthIters);

  // Incremental-search state per rule: the graph generation as of the
  // rule's last search whose matches were applied. Matches found before
  // that generation have been applied already (applying is idempotent), so
  // later searches only need classes dirtied since. A search discarded by
  // the match-limit backoff does NOT advance the cursor: dirtiness is
  // monotone, so the discarded matches are re-found when the ban expires.
  std::vector<uint64_t> LastSearchGen(NumRules, 0);
  std::vector<char> EverSearched(NumRules, 0);

  // Applied-match memo per rule (all iterations): canonicalized
  // (root, bindings) tuples whose merge already happened. Entries go
  // stale when a later merge re-canonicalizes their ids; the re-found
  // match then misses, re-applies as a cheap no-op, and re-inserts under
  // the fresh ids — correctness never depends on a hit.
  std::vector<AppliedMemo> Applied(NumRules);

  // Match-limit window per rule: distinct graph-changing merges
  // accumulated across the current incremental streak. Reset by full
  // searches (which re-baseline against the whole graph) and by bans.
  std::vector<size_t> WindowMerged(NumRules, 0);

  const size_t Threads = resolveThreads(Limits.NumThreads);
  SearchPool Pool(Threads > 1 ? Threads - 1 : 0);

  // Pre-search cursor snapshots for the mid-apply ban's rollback; hoisted
  // out of the iteration loop so the common no-ban iteration pays one
  // assign() into existing capacity, not fresh allocations.
  std::vector<uint64_t> CursorBefore;
  std::vector<char> EverBefore;

  G.rebuild();
  for (size_t Iter = 0; Iter < Limits.IterLimit; ++Iter) {
    // Cooperative cancellation, iteration-granular: stopping here leaves
    // the graph clean and every cursor sound, so a cancelled run's graph
    // can be resumed (or snapshotted) with no special cases.
    if (Limits.Cancel.cancelled()) {
      Report.Stop = StopReason::Cancelled;
      Report.Seconds = elapsed();
      return Report;
    }
    const auto IterStart = Clock::now();
    IterationStats Stats;
    size_t NodesBefore = G.numNodes();

    // Dirty closures are identical for every rule sharing a search cursor
    // (the common case: all non-banned rules advanced together last
    // iteration), so compute each distinct closure once per iteration.
    std::unordered_map<uint64_t, std::vector<EClassId>> DirtyByGen;
    auto dirtySince = [&](uint64_t Gen) -> const std::vector<EClassId> & {
      auto It = DirtyByGen.find(Gen);
      if (It == DirtyByGen.end())
        It = DirtyByGen.emplace(Gen, G.takeDirtySince(Gen)).first;
      return It->second;
    };

    // (The windowed backoff trigger fires mid-apply in phase 2 below, the
    // moment a rule's incremental streak crosses MatchLimit — so between
    // iterations every rule's WindowMerged is already <= the limit.)

    // Phase 1a (serial): schedule every non-banned rule — full indexed
    // search or dirty-restricted incremental — and assemble one candidate
    // list per root-op group, each candidate tagged with the mask of
    // group-local rules that must search it. Rules sharing a cursor (the
    // common case) share one list and one full mask.
    const auto SearchStart = Clock::now();
    std::vector<char> RuleActive(NumRules, 0), RuleFull(NumRules, 0);
    std::vector<std::vector<RuleSet::Candidate>> GroupCands(NumGroups);
    std::vector<size_t> GroupActive(NumGroups, 0);
    for (size_t GI = 0; GI < NumGroups; ++GI) {
      const std::vector<uint32_t> &Members = DB.groupRules(GI);
      const std::vector<EClassId> &Bucket = G.classesWithOp(DB.groupOp(GI));
      // Per-cursor filtered candidate lists, shared by same-cursor rules.
      std::unordered_map<uint64_t, std::vector<EClassId>> FilteredByGen;
      const std::vector<EClassId> *FirstList = nullptr;
      bool AllSame = true;
      std::vector<const std::vector<EClassId> *> MemberList(Members.size(),
                                                            nullptr);
      for (size_t B = 0; B < Members.size(); ++B) {
        const size_t R = Members[B];
        if (BannedUntil[R] > Iter)
          continue;
        RuleActive[R] = 1;
        ++GroupActive[GI];
        RuleStats &RS = Report.Rules[R];
        if (!EverSearched[R]) {
          MemberList[B] = &Bucket;
          RuleFull[R] = 1;
          ++RS.FullSearches;
        } else {
          const std::vector<EClassId> &Dirty = dirtySince(LastSearchGen[R]);
          if (Dirty.size() * 2 >= G.numClasses()) {
            // Most of the graph changed; the set intersection would not
            // prune enough to pay for itself.
            MemberList[B] = &Bucket;
            RuleFull[R] = 1;
            ++RS.FullSearches;
          } else {
            auto It = FilteredByGen.find(LastSearchGen[R]);
            if (It == FilteredByGen.end()) {
              // Both lists are sorted ascending; keep dirty candidates.
              std::vector<EClassId> Filtered;
              std::set_intersection(Bucket.begin(), Bucket.end(),
                                    Dirty.begin(), Dirty.end(),
                                    std::back_inserter(Filtered));
              It = FilteredByGen.emplace(LastSearchGen[R],
                                         std::move(Filtered))
                       .first;
            }
            MemberList[B] = &It->second;
            ++RS.IncrementalSearches;
          }
        }
        if (!FirstList)
          FirstList = MemberList[B];
        else if (FirstList != MemberList[B])
          AllSame = false;
      }
      if (!FirstList)
        continue; // whole group banned
      std::vector<RuleSet::Candidate> &Cands = GroupCands[GI];
      if (AllSame) {
        RuleSet::RuleMask Mask;
        for (size_t B = 0; B < Members.size(); ++B)
          if (MemberList[B])
            Mask.set(B);
        Cands.reserve(FirstList->size());
        for (EClassId Id : *FirstList)
          Cands.push_back({Id, Mask});
      } else {
        // Cursors diverged (bans): merge the sorted per-rule lists into
        // one ascending list of (class, rule mask).
        std::unordered_map<EClassId, RuleSet::RuleMask> Merged;
        for (size_t B = 0; B < Members.size(); ++B)
          if (MemberList[B])
            for (EClassId Id : *MemberList[B])
              Merged[Id].set(B);
        Cands.reserve(Merged.size());
        for (const auto &[Id, Mask] : Merged)
          Cands.push_back({Id, Mask});
        std::sort(Cands.begin(), Cands.end(),
                  [](const RuleSet::Candidate &A, const RuleSet::Candidate &B) {
                    return A.Class < B.Class;
                  });
      }
    }

    // Phase 1b: run the group searches against the unmodified snapshot.
    // Heaviest groups first so the pool drains evenly.
    std::vector<size_t> Order;
    Order.reserve(NumGroups);
    for (size_t GI = 0; GI < NumGroups; ++GI)
      if (!GroupCands[GI].empty())
        Order.push_back(GI);
    std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      if (GroupCands[A].size() != GroupCands[B].size())
        return GroupCands[A].size() > GroupCands[B].size();
      return A < B;
    });
    std::vector<std::vector<std::pair<EClassId, Subst>>> AllMatches(NumRules);
    std::vector<double> GroupSec(NumGroups, 0.0);
    auto searchOne = [&](size_t TaskIdx) {
      const size_t GI = Order[TaskIdx];
      const auto T0 = Clock::now();
      DB.searchGroup(GI, G, GroupCands[GI], AllMatches);
      GroupSec[GI] = secondsSince(T0);
    };
    if (Threads > 1 && Order.size() > 1) {
      // Quiesce the lazy indexes (union-find halving, op-bucket
      // compaction) so every const query the workers make is write-free.
      G.prepareForConcurrentReads();
      Pool.run(Order.size(), searchOne);
    } else {
      for (size_t T = 0; T < Order.size(); ++T)
        searchOne(T);
    }

    // Group search time is shared work: attribute it evenly across the
    // group's active rules (exact per-rule attribution does not exist
    // once the Bind spine is shared).
    for (size_t GI = 0; GI < NumGroups; ++GI) {
      if (!GroupActive[GI])
        continue;
      double Share = GroupSec[GI] / static_cast<double>(GroupActive[GI]);
      for (uint32_t R : DB.groupRules(GI))
        if (RuleActive[R])
          Report.Rules[R].SearchSec += Share;
    }

    // Phase 1c: per-rule match accounting and the per-search ban trigger.
    std::vector<char> SearchedNow(NumRules, 0);
    for (size_t R = 0; R < NumRules; ++R) {
      if (!RuleActive[R])
        continue;
      RuleStats &RS = Report.Rules[R];
      RS.Matches += AllMatches[R].size();
      Stats.Matches += AllMatches[R].size();
      SearchedNow[R] = 1;
      if (AllMatches[R].size() > Limits.MatchLimit) {
        // Explosive rule: skip it this iteration and ban it for a while,
        // doubling the ban each time (exponential backoff). Like the
        // mid-apply trigger below, the ban covers the *next* BanLength
        // iterations — `Iter + BanLength` would make a BanLength of 1 a
        // no-op (the `> Iter` check at the next iteration already
        // passes) and re-run the same over-limit search immediately.
        BannedUntil[R] = Iter + 1 + BanLength[R];
        BanLength[R] *= 2;
        ++RS.Bans;
        AllMatches[R].clear();
        SearchedNow[R] = 0; // discarded: keep the cursor where it was
        WindowMerged[R] = 0;
      }
    }

    // Searches ran against an unmodified graph, so one generation stamp
    // covers them all; everything the applies below touch is newer. The
    // pre-search cursor values are kept so a mid-apply ban can roll a
    // rule back (its unapplied matches must be re-findable later).
    const uint64_t GenAfterSearch = G.generation();
    CursorBefore.assign(LastSearchGen.begin(), LastSearchGen.end());
    EverBefore.assign(EverSearched.begin(), EverSearched.end());
    for (size_t R = 0; R < NumRules; ++R)
      if (SearchedNow[R]) {
        LastSearchGen[R] = GenAfterSearch;
        EverSearched[R] = 1;
        if (RuleFull[R])
          WindowMerged[R] = 0; // full search re-baselines the window
      }
    Stats.SearchSec = secondsSince(SearchStart);

    // Phase 2: apply everything not yet in the applied memo, then restore
    // invariants once. The windowed backoff trigger is enforced here,
    // per merge: the moment a rule's incremental streak crosses
    // MatchLimit it is banned, its remaining matches are discarded, and
    // its cursor rolls back to the pre-search value — so the discarded
    // matches are re-found after the ban (dirtiness is monotone) instead
    // of being lost, and the streak is capped near the limit even when a
    // single iteration would have merged many times it.
    const auto ApplyStart = Clock::now();
    std::vector<EClassId> Key;
    for (size_t R = 0; R < NumRules; ++R) {
      if (AllMatches[R].empty())
        continue;
      RuleStats &RS = Report.Rules[R];
      const auto RuleApplyStart = Clock::now();
      const std::vector<Symbol> &Vars = Rules[R].lhs().vars();
      bool WindowBan = false;
      for (const auto &[Root, S] : AllMatches[R]) {
        Key.clear();
        Key.push_back(G.find(Root));
        for (Symbol V : Vars)
          Key.push_back(G.find(S[V]));
        if (Applied[R].find(Key) != Applied[R].end())
          continue; // already merged: re-applying cannot change the graph
        Rewrite::ApplyOutcome Outcome = Rules[R].applyMatch(G, Root, S);
        if (Outcome == Rewrite::ApplyOutcome::Skipped)
          continue; // applier declined (e.g. not yet constant): retry later
        Applied[R].insert(Key);
        if (Outcome == Rewrite::ApplyOutcome::Changed) {
          ++Stats.Applied;
          ++RS.Applied;
          if (++WindowMerged[R] > Limits.MatchLimit) {
            WindowBan = true;
            break;
          }
        }
      }
      if (WindowBan) {
        // Ban starts next iteration and doubles like the search trigger.
        BannedUntil[R] = Iter + 1 + BanLength[R];
        BanLength[R] *= 2;
        WindowMerged[R] = 0;
        ++RS.Bans;
        LastSearchGen[R] = CursorBefore[R];
        EverSearched[R] = EverBefore[R];
      }
      RS.ApplySec += secondsSince(RuleApplyStart);
    }
    Stats.ApplySec = secondsSince(ApplyStart);

    const auto RebuildStart = Clock::now();
    G.rebuild();

    // Every live cursor has passed the log prefix at generations <= the
    // minimum rule cursor; rules never searched do not read the log (their
    // next search is full). External readers are protected by leases.
    uint64_t MinCursor = UINT64_MAX;
    bool AnyCursor = false;
    for (size_t R = 0; R < NumRules; ++R)
      if (EverSearched[R]) {
        MinCursor = std::min(MinCursor, LastSearchGen[R]);
        AnyCursor = true;
      }
    if (AnyCursor)
      G.compactDirtyLog(MinCursor);
    Stats.RebuildSec = secondsSince(RebuildStart);

    Stats.Nodes = G.numNodes();
    Stats.Classes = G.numClasses();
    Stats.Seconds = secondsSince(IterStart);
    Report.SearchSec += Stats.SearchSec;
    Report.ApplySec += Stats.ApplySec;
    Report.RebuildSec += Stats.RebuildSec;
    Report.Iterations.push_back(Stats);

    bool Changed = Stats.Applied > 0 || Stats.Nodes != NodesBefore;
    if (!Changed) {
      // A quiet iteration proves saturation only if every rule actually
      // participated: a rule banned this iteration may still have pending
      // matches (the windowed trigger discards matches and rolls cursors
      // back). Idle through the remaining ban iterations instead — they
      // cost one empty search round each — and re-test once the banned
      // rule has had its say.
      bool AnyBanned = false;
      for (size_t R = 0; R < NumRules; ++R)
        if (BannedUntil[R] > Iter) {
          AnyBanned = true;
          break;
        }
      if (!AnyBanned) {
        Report.Stop = StopReason::Saturated;
        Report.Seconds = elapsed();
        return Report;
      }
    }
    if (Stats.Nodes > Limits.NodeLimit) {
      Report.Stop = StopReason::NodeLimit;
      Report.Seconds = elapsed();
      return Report;
    }
    if (elapsed() > Limits.TimeLimitSec) {
      Report.Stop = StopReason::TimeLimit;
      Report.Seconds = elapsed();
      return Report;
    }
  }
  Report.Stop = StopReason::IterLimit;
  Report.Seconds = elapsed();
  return Report;
}
