//===-- egraph/Runner.cpp - Equality saturation driver --------------------===//

#include "egraph/Runner.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

using namespace shrinkray;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

} // namespace

RunnerReport Runner::run(EGraph &G, const std::vector<Rewrite> &Rules) const {
  const auto Start = Clock::now();
  auto elapsed = [&] { return secondsSince(Start); };

  RunnerReport Report;
  Report.Rules.resize(Rules.size());
  for (size_t R = 0; R < Rules.size(); ++R)
    Report.Rules[R].Name = Rules[R].name();

  // Backoff state per rule: banned-until iteration and current ban length.
  std::vector<size_t> BannedUntil(Rules.size(), 0);
  std::vector<size_t> BanLength(Rules.size(), Limits.BanLengthIters);

  // Incremental-search state per rule: the graph generation as of the
  // rule's last search whose matches were applied. Matches found before
  // that generation have been applied already (applying is idempotent), so
  // later searches only need classes dirtied since. A search discarded by
  // the match-limit backoff does NOT advance the cursor: dirtiness is
  // monotone, so the discarded matches are re-found when the ban expires.
  std::vector<uint64_t> LastSearchGen(Rules.size(), 0);
  std::vector<char> EverSearched(Rules.size(), 0);

  G.rebuild();
  for (size_t Iter = 0; Iter < Limits.IterLimit; ++Iter) {
    const auto IterStart = Clock::now();
    IterationStats Stats;
    size_t NodesBefore = G.numNodes();

    // Dirty closures are identical for every rule sharing a search cursor
    // (the common case: all non-banned rules advanced together last
    // iteration), so compute each distinct closure once per iteration.
    std::unordered_map<uint64_t, std::vector<EClassId>> DirtyByGen;
    auto dirtySince = [&](uint64_t Gen) -> const std::vector<EClassId> & {
      auto It = DirtyByGen.find(Gen);
      if (It == DirtyByGen.end())
        It = DirtyByGen.emplace(Gen, G.takeDirtySince(Gen)).first;
      return It->second;
    };

    // Phase 1: search all rules against a consistent graph snapshot.
    std::vector<std::vector<std::pair<EClassId, Subst>>> AllMatches(
        Rules.size());
    std::vector<char> SearchedNow(Rules.size(), 0);
    for (size_t R = 0; R < Rules.size(); ++R) {
      if (BannedUntil[R] > Iter)
        continue;
      RuleStats &RS = Report.Rules[R];
      const auto SearchStart = Clock::now();
      const std::vector<EClassId> &Cands =
          G.classesWithOp(Rules[R].lhs().rootOp());
      if (!EverSearched[R]) {
        AllMatches[R] = Rules[R].searchIn(G, Cands);
        ++RS.FullSearches;
      } else {
        const std::vector<EClassId> &Dirty = dirtySince(LastSearchGen[R]);
        if (Dirty.size() * 2 >= G.numClasses()) {
          // Most of the graph changed; the set intersection would not
          // prune enough to pay for itself.
          AllMatches[R] = Rules[R].searchIn(G, Cands);
          ++RS.FullSearches;
        } else {
          // Both lists are sorted ascending; scan only dirty candidates.
          std::vector<EClassId> Filtered;
          std::set_intersection(Cands.begin(), Cands.end(), Dirty.begin(),
                                Dirty.end(), std::back_inserter(Filtered));
          AllMatches[R] = Rules[R].searchIn(G, Filtered);
          ++RS.IncrementalSearches;
        }
      }
      RS.SearchSec += secondsSince(SearchStart);
      RS.Matches += AllMatches[R].size();
      Stats.Matches += AllMatches[R].size();
      SearchedNow[R] = 1;
      if (AllMatches[R].size() > Limits.MatchLimit) {
        // Explosive rule: skip it this iteration and ban it for a while,
        // doubling the ban each time (exponential backoff).
        BannedUntil[R] = Iter + BanLength[R];
        BanLength[R] *= 2;
        AllMatches[R].clear();
        SearchedNow[R] = 0; // discarded: keep the cursor where it was
      }
    }

    // Searches ran against an unmodified graph, so one generation stamp
    // covers them all; everything the applies below touch is newer.
    const uint64_t GenAfterSearch = G.generation();
    for (size_t R = 0; R < Rules.size(); ++R)
      if (SearchedNow[R]) {
        LastSearchGen[R] = GenAfterSearch;
        EverSearched[R] = 1;
      }

    // Phase 2: apply everything, then restore invariants once.
    for (size_t R = 0; R < Rules.size(); ++R) {
      if (AllMatches[R].empty())
        continue;
      RuleStats &RS = Report.Rules[R];
      const auto ApplyStart = Clock::now();
      for (const auto &[Root, S] : AllMatches[R])
        if (Rules[R].apply(G, Root, S)) {
          ++Stats.Applied;
          ++RS.Applied;
        }
      RS.ApplySec += secondsSince(ApplyStart);
    }
    G.rebuild();

    Stats.Nodes = G.numNodes();
    Stats.Classes = G.numClasses();
    Stats.Seconds = secondsSince(IterStart);
    Report.Iterations.push_back(Stats);

    bool Changed = Stats.Applied > 0 || Stats.Nodes != NodesBefore;
    if (!Changed) {
      Report.Stop = StopReason::Saturated;
      Report.Seconds = elapsed();
      return Report;
    }
    if (Stats.Nodes > Limits.NodeLimit) {
      Report.Stop = StopReason::NodeLimit;
      Report.Seconds = elapsed();
      return Report;
    }
    if (elapsed() > Limits.TimeLimitSec) {
      Report.Stop = StopReason::TimeLimit;
      Report.Seconds = elapsed();
      return Report;
    }
  }
  Report.Stop = StopReason::IterLimit;
  Report.Seconds = elapsed();
  return Report;
}
