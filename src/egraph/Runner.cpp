//===-- egraph/Runner.cpp - Equality saturation driver --------------------===//

#include "egraph/Runner.h"

#include "egraph/ApplyPlan.h"
#include "egraph/SnapshotCodec.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

using namespace shrinkray;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// Applied-match memo key: canonical ids of the match root and every bound
/// variable, in Pattern::vars() order. FNV-1a over the words.
struct MatchKeyHash {
  size_t operator()(const std::vector<EClassId> &K) const {
    uint64_t H = 1469598103934665603ull;
    for (EClassId V : K) {
      H ^= V;
      H *= 1099511628211ull;
    }
    return static_cast<size_t>(H);
  }
};

using AppliedMemo = std::unordered_set<std::vector<EClassId>, MatchKeyHash>;

/// One post-memo match surviving the apply planner: its position in the
/// rule's match list, what applying it would do, and its frozen
/// applied-memo key (canonical as of the plan snapshot).
struct PlannedMatch {
  uint32_t Idx = 0;
  Rewrite::MatchPlan Plan;
  std::vector<EClassId> Key;
};

} // namespace

RunnerReport Runner::run(EGraph &G, const std::vector<Rewrite> &Rules) const {
  RuleSet Compiled(Rules);
  return run(G, Compiled);
}

RunnerReport Runner::run(EGraph &G, const RuleSet &DB) const {
  return runImpl(G, DB, nullptr, nullptr);
}

RunnerReport Runner::run(EGraph &G, const RuleSet &DB,
                         RunnerCursors &CursorsOut) const {
  return runImpl(G, DB, nullptr, &CursorsOut);
}

RunnerReport Runner::resume(EGraph &G, const RuleSet &DB,
                            RunnerCursors &Cursors) const {
  assert(Cursors.Rules.size() == DB.rules().size() &&
         "resume cursors do not match the rule database");
  return runImpl(G, DB, &Cursors, &Cursors);
}

RunnerReport Runner::runImpl(EGraph &G, const RuleSet &DB,
                             const RunnerCursors *In,
                             RunnerCursors *Out) const {
  const auto Start = Clock::now();
  auto elapsed = [&] { return secondsSince(Start); };

  const std::vector<Rewrite> &Rules = DB.rules();
  const size_t NumRules = Rules.size();
  const size_t NumGroups = DB.numGroups();

  RunnerReport Report;
  Report.Rules.resize(NumRules);
  for (size_t R = 0; R < NumRules; ++R)
    Report.Rules[R].Name = Rules[R].name();

  // Backoff state per rule: banned-until iteration and current ban length.
  std::vector<size_t> BannedUntil(NumRules, 0);
  std::vector<size_t> BanLength(NumRules, Limits.BanLengthIters);

  // Incremental-search state per rule: the graph generation as of the
  // rule's last search whose matches were applied. Matches found before
  // that generation have been applied already (applying is idempotent), so
  // later searches only need classes dirtied since. A search discarded by
  // the match-limit backoff does NOT advance the cursor: dirtiness is
  // monotone, so the discarded matches are re-found when the ban expires.
  std::vector<uint64_t> LastSearchGen(NumRules, 0);
  std::vector<char> EverSearched(NumRules, 0);

  // Applied-match memo per rule (all iterations): canonicalized
  // (root, bindings) tuples whose merge already happened. Entries go
  // stale when a later merge re-canonicalizes their ids; the re-found
  // match then misses, re-applies as a cheap no-op, and re-inserts under
  // the fresh ids — correctness never depends on a hit.
  std::vector<AppliedMemo> Applied(NumRules);

  // Match-limit window per rule: distinct graph-changing merges
  // accumulated across the current incremental streak. Reset by full
  // searches (which re-baseline against the whole graph) and by bans.
  std::vector<size_t> WindowMerged(NumRules, 0);

  // Resume: adopt the captured continuation state and continue the
  // absolute iteration counter (bans store absolute indices; the applied
  // memo is intentionally absent — see RunnerCursors). StartIter can reach
  // or exceed IterLimit, in which case the loop body never runs and the
  // run reports IterLimit with the graph untouched.
  const size_t StartIter = In ? static_cast<size_t>(In->IterationsDone) : 0;
  if (In)
    for (size_t R = 0; R < NumRules; ++R) {
      const RunnerCursors::RuleCursor &C = In->Rules[R];
      BannedUntil[R] = static_cast<size_t>(C.BannedUntil);
      BanLength[R] = static_cast<size_t>(C.BanLength);
      LastSearchGen[R] = C.LastSearchGen;
      EverSearched[R] = C.EverSearched ? 1 : 0;
      WindowMerged[R] = static_cast<size_t>(C.WindowMerged);
    }

  // Every exit funnels through here so the final continuation state is
  // captured exactly once, on the clean post-rebuild graph.
  auto finish = [&](StopReason Stop, size_t IterationsDone) -> RunnerReport & {
    Report.Stop = Stop;
    if (Out) {
      Out->Generation = G.generation();
      Out->IterationsDone = IterationsDone;
      Out->Stop = Stop;
      Out->Rules.resize(NumRules);
      for (size_t R = 0; R < NumRules; ++R)
        Out->Rules[R] = {BannedUntil[R], BanLength[R], LastSearchGen[R],
                         WindowMerged[R], EverSearched[R] != 0};
    }
    return Report;
  };

  const size_t Threads = resolveThreads(Limits.NumThreads);
  WorkerPool Pool(Threads > 1 ? Threads - 1 : 0);

  // Pre-search cursor snapshots for the mid-apply ban's rollback; hoisted
  // out of the iteration loop so the common no-ban iteration pays one
  // assign() into existing capacity, not fresh allocations.
  std::vector<uint64_t> CursorBefore;
  std::vector<char> EverBefore;

  // Apply-scheduler scratch, likewise hoisted: per-rule plan output,
  // plan-local dedup set, conflict closures, serial-tail indices, and the
  // per-partition merge logs / per-match change flags.
  std::vector<EClassId> Key;
  std::vector<PlannedMatch> Surviving;
  AppliedMemo PlanSeen;
  std::vector<MatchClosure> Closures;
  std::vector<uint32_t> SerialTail;
  std::vector<MergeBatchLog> Logs;
  std::vector<char> MergeChanged;

  G.rebuild();
  for (size_t Iter = StartIter; Iter < Limits.IterLimit; ++Iter) {
    // Cooperative cancellation, iteration-granular: stopping here leaves
    // the graph clean and every cursor sound, so a cancelled run's graph
    // can be resumed (or snapshotted) with no special cases.
    if (Limits.Cancel.cancelled()) {
      Report.Seconds = elapsed();
      return finish(StopReason::Cancelled, Iter);
    }
    const auto IterStart = Clock::now();
    IterationStats Stats;
    size_t NodesBefore = G.numNodes();

    // Dirty closures are identical for every rule sharing a search cursor
    // (the common case: all non-banned rules advanced together last
    // iteration), so compute each distinct closure once per iteration.
    std::unordered_map<uint64_t, std::vector<EClassId>> DirtyByGen;
    auto dirtySince = [&](uint64_t Gen) -> const std::vector<EClassId> & {
      auto It = DirtyByGen.find(Gen);
      if (It == DirtyByGen.end())
        It = DirtyByGen.emplace(Gen, G.takeDirtySince(Gen)).first;
      return It->second;
    };

    // (The windowed backoff trigger fires mid-apply in phase 2 below, the
    // moment a rule's incremental streak crosses MatchLimit — so between
    // iterations every rule's WindowMerged is already <= the limit.)

    // Phase 1a (serial): schedule every non-banned rule — full indexed
    // search or dirty-restricted incremental — and assemble one candidate
    // list per root-op group, each candidate tagged with the mask of
    // group-local rules that must search it. Rules sharing a cursor (the
    // common case) share one list and one full mask.
    const auto SearchStart = Clock::now();
    std::vector<char> RuleActive(NumRules, 0), RuleFull(NumRules, 0);
    std::vector<std::vector<RuleSet::Candidate>> GroupCands(NumGroups);
    std::vector<size_t> GroupActive(NumGroups, 0);
    for (size_t GI = 0; GI < NumGroups; ++GI) {
      const std::vector<uint32_t> &Members = DB.groupRules(GI);
      const std::vector<EClassId> &Bucket = G.classesWithOp(DB.groupOp(GI));
      // Per-cursor filtered candidate lists, shared by same-cursor rules.
      std::unordered_map<uint64_t, std::vector<EClassId>> FilteredByGen;
      const std::vector<EClassId> *FirstList = nullptr;
      bool AllSame = true;
      std::vector<const std::vector<EClassId> *> MemberList(Members.size(),
                                                            nullptr);
      for (size_t B = 0; B < Members.size(); ++B) {
        const size_t R = Members[B];
        if (BannedUntil[R] > Iter)
          continue;
        RuleActive[R] = 1;
        ++GroupActive[GI];
        RuleStats &RS = Report.Rules[R];
        if (!EverSearched[R]) {
          MemberList[B] = &Bucket;
          RuleFull[R] = 1;
          ++RS.FullSearches;
        } else {
          const std::vector<EClassId> &Dirty = dirtySince(LastSearchGen[R]);
          if (Dirty.size() * 2 >= G.numClasses()) {
            // Most of the graph changed; the set intersection would not
            // prune enough to pay for itself.
            MemberList[B] = &Bucket;
            RuleFull[R] = 1;
            ++RS.FullSearches;
          } else {
            auto It = FilteredByGen.find(LastSearchGen[R]);
            if (It == FilteredByGen.end()) {
              // Both lists are sorted ascending; keep dirty candidates.
              std::vector<EClassId> Filtered;
              std::set_intersection(Bucket.begin(), Bucket.end(),
                                    Dirty.begin(), Dirty.end(),
                                    std::back_inserter(Filtered));
              It = FilteredByGen.emplace(LastSearchGen[R],
                                         std::move(Filtered))
                       .first;
            }
            MemberList[B] = &It->second;
            ++RS.IncrementalSearches;
          }
        }
        if (!FirstList)
          FirstList = MemberList[B];
        else if (FirstList != MemberList[B])
          AllSame = false;
      }
      if (!FirstList)
        continue; // whole group banned
      std::vector<RuleSet::Candidate> &Cands = GroupCands[GI];
      if (AllSame) {
        RuleSet::RuleMask Mask;
        for (size_t B = 0; B < Members.size(); ++B)
          if (MemberList[B])
            Mask.set(B);
        Cands.reserve(FirstList->size());
        for (EClassId Id : *FirstList)
          Cands.push_back({Id, Mask});
      } else {
        // Cursors diverged (bans): merge the sorted per-rule lists into
        // one ascending list of (class, rule mask).
        std::unordered_map<EClassId, RuleSet::RuleMask> Merged;
        for (size_t B = 0; B < Members.size(); ++B)
          if (MemberList[B])
            for (EClassId Id : *MemberList[B])
              Merged[Id].set(B);
        Cands.reserve(Merged.size());
        for (const auto &[Id, Mask] : Merged)
          Cands.push_back({Id, Mask});
        std::sort(Cands.begin(), Cands.end(),
                  [](const RuleSet::Candidate &A, const RuleSet::Candidate &B) {
                    return A.Class < B.Class;
                  });
      }
    }

    // Phase 1b: run the group searches against the unmodified snapshot.
    // Heaviest groups first so the pool drains evenly.
    std::vector<size_t> Order;
    Order.reserve(NumGroups);
    for (size_t GI = 0; GI < NumGroups; ++GI)
      if (!GroupCands[GI].empty())
        Order.push_back(GI);
    std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      if (GroupCands[A].size() != GroupCands[B].size())
        return GroupCands[A].size() > GroupCands[B].size();
      return A < B;
    });
    std::vector<std::vector<std::pair<EClassId, Subst>>> AllMatches(NumRules);
    std::vector<double> GroupSec(NumGroups, 0.0);
    auto searchOne = [&](size_t TaskIdx) {
      const size_t GI = Order[TaskIdx];
      const auto T0 = Clock::now();
      DB.searchGroup(GI, G, GroupCands[GI], AllMatches);
      GroupSec[GI] = secondsSince(T0);
    };
    if (Threads > 1 && Order.size() > 1) {
      // Quiesce the lazy indexes (union-find halving, op-bucket
      // compaction) so every const query the workers make is write-free.
      G.prepareForConcurrentReads();
      Pool.run(Order.size(), searchOne);
    } else {
      for (size_t T = 0; T < Order.size(); ++T)
        searchOne(T);
    }

    // Group search time is shared work: attribute it evenly across the
    // group's active rules (exact per-rule attribution does not exist
    // once the Bind spine is shared).
    for (size_t GI = 0; GI < NumGroups; ++GI) {
      if (!GroupActive[GI])
        continue;
      double Share = GroupSec[GI] / static_cast<double>(GroupActive[GI]);
      for (uint32_t R : DB.groupRules(GI))
        if (RuleActive[R])
          Report.Rules[R].SearchSec += Share;
    }

    // Phase 1c: per-rule match accounting and the per-search ban trigger.
    std::vector<char> SearchedNow(NumRules, 0);
    for (size_t R = 0; R < NumRules; ++R) {
      if (!RuleActive[R])
        continue;
      RuleStats &RS = Report.Rules[R];
      RS.Matches += AllMatches[R].size();
      Stats.Matches += AllMatches[R].size();
      SearchedNow[R] = 1;
      if (AllMatches[R].size() > Limits.MatchLimit) {
        // Explosive rule: skip it this iteration and ban it for a while,
        // doubling the ban each time (exponential backoff). Like the
        // mid-apply trigger below, the ban covers the *next* BanLength
        // iterations — `Iter + BanLength` would make a BanLength of 1 a
        // no-op (the `> Iter` check at the next iteration already
        // passes) and re-run the same over-limit search immediately.
        BannedUntil[R] = Iter + 1 + BanLength[R];
        BanLength[R] *= 2;
        ++RS.Bans;
        AllMatches[R].clear();
        SearchedNow[R] = 0; // discarded: keep the cursor where it was
        WindowMerged[R] = 0;
      }
    }

    // Searches ran against an unmodified graph, so one generation stamp
    // covers them all; everything the applies below touch is newer. The
    // pre-search cursor values are kept so a mid-apply ban can roll a
    // rule back (its unapplied matches must be re-findable later).
    const uint64_t GenAfterSearch = G.generation();
    CursorBefore.assign(LastSearchGen.begin(), LastSearchGen.end());
    EverBefore.assign(EverSearched.begin(), EverSearched.end());
    for (size_t R = 0; R < NumRules; ++R)
      if (SearchedNow[R]) {
        LastSearchGen[R] = GenAfterSearch;
        EverSearched[R] = 1;
        if (RuleFull[R])
          WindowMerged[R] = 0; // full search re-baselines the window
      }
    Stats.SearchSec = secondsSince(SearchStart);

    // Phase 2: apply everything not yet in the applied memo, then restore
    // invariants once. Each rule runs a plan -> partition -> execute ->
    // commit schedule (docs/ARCHITECTURE.md, "Conflict-partitioned
    // apply"): a serial plan pass over the frozen graph canonicalizes
    // applied-memo keys and classifies every match by pure const reads;
    // matches that reduce to merges of existing constant-free classes are
    // partitioned by conflict-closure overlap and executed concurrently
    // (deferred merges, global side effects committed in deterministic
    // partition order); node-creating and programmatic matches run
    // serially afterwards, in match order. The whole schedule is a pure
    // function of the frozen graph, so the resulting e-graph — dirty log,
    // worklist, and all — is bit-identical at every thread count.
    //
    // The windowed backoff trigger survives by demotion: when a rule's
    // surviving matches could cross MatchLimit mid-apply, the whole rule
    // runs through the original serial loop, which bans it at the
    // crossing merge, discards its remaining matches, and rolls its
    // cursor back to the pre-search value — so the discarded matches are
    // re-found after the ban (dirtiness is monotone) instead of being
    // lost. When demotion does not fire, the window provably cannot
    // cross the limit and the partitioned path never needs to ban.
    const auto ApplyStart = Clock::now();
    for (size_t R = 0; R < NumRules; ++R) {
      if (AllMatches[R].empty())
        continue;
      RuleStats &RS = Report.Rules[R];
      const auto RuleApplyStart = Clock::now();
      const std::vector<Symbol> &Vars = Rules[R].lhs().vars();

      // Plan (serial, frozen snapshot). Earlier rules' merges have
      // dirtied the graph, but the reads planning performs — find(),
      // lookup(), data() — are exact on a dirty graph;
      // quiesceForReads() compresses the union-find so the execute
      // phase's concurrent reads below are write-free. A key already in
      // the applied memo, or seen earlier in this plan, names merge
      // endpoints that are (or are about to be) equal, so dropping the
      // match is exact, not just an optimization heuristic.
      G.quiesceForReads();
      Surviving.clear();
      PlanSeen.clear();
      for (uint32_t MI = 0; MI < AllMatches[R].size(); ++MI) {
        const auto &[Root, S] = AllMatches[R][MI];
        Key.clear();
        Key.push_back(G.find(Root));
        for (Symbol V : Vars)
          Key.push_back(G.find(S[V]));
        if (Applied[R].find(Key) != Applied[R].end())
          continue; // already merged: re-applying cannot change the graph
        if (!PlanSeen.insert(Key).second)
          continue; // duplicate frozen key: identical merge endpoints
        Surviving.push_back({MI, Rules[R].planMatch(G, Root, S), Key});
      }

      if (WindowMerged[R] + Surviving.size() > Limits.MatchLimit) {
        // Demoted: the original serial loop with live keys and the
        // mid-apply ban. (Phase 1c already capped raw match counts at
        // MatchLimit, so demotion fires only mid-streak, when the window
        // is already part-consumed.)
        bool WindowBan = false;
        for (const auto &[Root, S] : AllMatches[R]) {
          Key.clear();
          Key.push_back(G.find(Root));
          for (Symbol V : Vars)
            Key.push_back(G.find(S[V]));
          if (Applied[R].find(Key) != Applied[R].end())
            continue;
          Rewrite::ApplyOutcome Outcome = Rules[R].applyMatch(G, Root, S);
          if (Outcome == Rewrite::ApplyOutcome::Skipped)
            continue; // applier declined: retry later
          Applied[R].insert(Key);
          ++Stats.SerialMatches;
          if (Outcome == Rewrite::ApplyOutcome::Changed) {
            ++Stats.Applied;
            ++RS.Applied;
            if (++WindowMerged[R] > Limits.MatchLimit) {
              WindowBan = true;
              break;
            }
          }
        }
        if (WindowBan) {
          // Ban starts next iteration and doubles like the search
          // trigger.
          BannedUntil[R] = Iter + 1 + BanLength[R];
          BanLength[R] *= 2;
          WindowMerged[R] = 0;
          ++RS.Bans;
          LastSearchGen[R] = CursorBefore[R];
          EverSearched[R] = EverBefore[R];
        }
        RS.ApplySec += secondsSince(RuleApplyStart);
        continue;
      }

      // Classify survivors. Pure merges of constant-free classes go to
      // the partitioner (closure: frozen root + bound classes + resolved
      // RHS class); plan-level memo hits are recorded without touching
      // the graph; everything else — node-creating instantiations,
      // programmatic appliers, constant-carrying merges (whose analysis
      // join runs the modify() hook, a global mutation) — joins the
      // serial tail.
      Closures.clear();
      SerialTail.clear();
      size_t RuleChanged = 0;
      for (uint32_t SI = 0; SI < Surviving.size(); ++SI) {
        PlannedMatch &PM = Surviving[SI];
        switch (PM.Plan.K) {
        case Rewrite::MatchPlan::Kind::MemoHit:
          Applied[R].insert(PM.Key);
          break;
        case Rewrite::MatchPlan::Kind::PureMerge: {
          EClassId RhsC = G.find(PM.Plan.RhsClass);
          if (G.data(PM.Key[0]).NumConst || G.data(RhsC).NumConst) {
            SerialTail.push_back(SI);
            break;
          }
          MatchClosure MC;
          MC.MatchIdx = SI;
          MC.Classes = PM.Key; // frozen root + bound classes (canonical)
          MC.Classes.push_back(RhsC);
          Closures.push_back(std::move(MC));
          break;
        }
        case Rewrite::MatchPlan::Kind::NeedsNodes:
        case Rewrite::MatchPlan::Kind::NeedsApplier:
          SerialTail.push_back(SI);
          break;
        }
      }

      // Execute: partitions run concurrently, each buffering its global
      // side effects in its own merge log and writing change flags to
      // disjoint slots; merges inside one partition run in match order.
      const std::vector<ApplyPartition> Parts = partitionMatches(Closures);
      Logs.assign(Parts.size(), MergeBatchLog{});
      MergeChanged.assign(Surviving.size(), 0);
      auto execPartition = [&](size_t PI) {
        MergeBatchLog &Log = Logs[PI];
        for (uint32_t SI : Parts[PI].Matches) {
          const PlannedMatch &PM = Surviving[SI];
          EClassId Root = AllMatches[R][PM.Idx].first;
          if (G.mergeDeferred(Root, PM.Plan.RhsClass, Log).second)
            MergeChanged[SI] = 1;
        }
      };
      if (Threads > 1 && Parts.size() > 1)
        Pool.run(Parts.size(), execPartition);
      else
        for (size_t PI = 0; PI < Parts.size(); ++PI)
          execPartition(PI);

      // Commit (serial): replay each partition's buffered side effects
      // in partition order — generation stamps, worklist entries, and
      // the live-class counter land identically at every thread count.
      for (MergeBatchLog &Log : Logs)
        G.commitMergeLog(Log);
      for (const MatchClosure &MC : Closures) {
        Applied[R].insert(Surviving[MC.MatchIdx].Key);
        if (MergeChanged[MC.MatchIdx])
          ++RuleChanged;
      }
      Stats.ApplyPartitions += Parts.size();
      Stats.ParallelMatches += Closures.size();

      // Serial tail, in match order, after the partitions committed.
      for (uint32_t SI : SerialTail) {
        const PlannedMatch &PM = Surviving[SI];
        const auto &M = AllMatches[R][PM.Idx];
        Rewrite::ApplyOutcome Outcome =
            Rules[R].applyMatch(G, M.first, M.second);
        if (Outcome == Rewrite::ApplyOutcome::Skipped)
          continue; // applier declined: retry later
        ++Stats.SerialMatches;
        Applied[R].insert(PM.Key);
        if (Outcome == Rewrite::ApplyOutcome::Changed)
          ++RuleChanged;
      }

      // No ban can fire here: WindowMerged + |Surviving| <= MatchLimit.
      WindowMerged[R] += RuleChanged;
      Stats.Applied += RuleChanged;
      RS.Applied += RuleChanged;
      RS.ApplySec += secondsSince(RuleApplyStart);
    }
    Stats.ApplySec = secondsSince(ApplyStart);

    const auto RebuildStart = Clock::now();
    G.rebuild();

    // Every live cursor has passed the log prefix at generations <= the
    // minimum rule cursor; rules never searched do not read the log (their
    // next search is full). External readers are protected by leases.
    uint64_t MinCursor = UINT64_MAX;
    bool AnyCursor = false;
    for (size_t R = 0; R < NumRules; ++R)
      if (EverSearched[R]) {
        MinCursor = std::min(MinCursor, LastSearchGen[R]);
        AnyCursor = true;
      }
    if (AnyCursor)
      G.compactDirtyLog(MinCursor);
    Stats.RebuildSec = secondsSince(RebuildStart);

    Stats.Nodes = G.numNodes();
    Stats.Classes = G.numClasses();
    Stats.Seconds = secondsSince(IterStart);
    Report.SearchSec += Stats.SearchSec;
    Report.ApplySec += Stats.ApplySec;
    Report.RebuildSec += Stats.RebuildSec;
    Report.Iterations.push_back(Stats);

    bool Changed = Stats.Applied > 0 || Stats.Nodes != NodesBefore;
    if (!Changed) {
      // A quiet iteration proves saturation only if every rule actually
      // participated: a rule banned this iteration may still have pending
      // matches (the windowed trigger discards matches and rolls cursors
      // back). Idle through the remaining ban iterations instead — they
      // cost one empty search round each — and re-test once the banned
      // rule has had its say.
      bool AnyBanned = false;
      for (size_t R = 0; R < NumRules; ++R)
        if (BannedUntil[R] > Iter) {
          AnyBanned = true;
          break;
        }
      if (!AnyBanned) {
        Report.Seconds = elapsed();
        return finish(StopReason::Saturated, Iter + 1);
      }
    }
    if (Stats.Nodes > Limits.NodeLimit) {
      Report.Seconds = elapsed();
      return finish(StopReason::NodeLimit, Iter + 1);
    }
    if (elapsed() > Limits.TimeLimitSec) {
      Report.Seconds = elapsed();
      return finish(StopReason::TimeLimit, Iter + 1);
    }
  }
  Report.Seconds = elapsed();
  return finish(StopReason::IterLimit, std::max(StartIter, Limits.IterLimit));
}

//===----------------------------------------------------------------------===//
// Cursor serialization (snapshot tier)
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t CursorFormatVersion = 1;

} // namespace

std::string shrinkray::serializeRunnerCursors(const RunnerCursors &C) {
  snapcodec::Writer W;
  W.u32(CursorFormatVersion);
  W.u8(static_cast<uint8_t>(C.Stop));
  W.u64(C.Generation);
  W.u64(C.IterationsDone);
  W.u32(static_cast<uint32_t>(C.Rules.size()));
  for (const RunnerCursors::RuleCursor &R : C.Rules) {
    W.u64(R.BannedUntil);
    W.u64(R.BanLength);
    W.u64(R.LastSearchGen);
    W.u64(R.WindowMerged);
    W.u8(R.EverSearched ? 1 : 0);
  }
  return W.take();
}

std::string shrinkray::deserializeRunnerCursors(std::string_view Bytes,
                                                RunnerCursors &Out) {
  std::string Copy(Bytes);
  snapcodec::Reader R(std::move(Copy));
  if (R.u32() != CursorFormatVersion || !R.ok())
    return "unsupported runner-cursor format version";
  const uint8_t Stop = R.u8();
  if (!R.ok() || Stop > static_cast<uint8_t>(StopReason::Cancelled))
    return "invalid stop reason in runner cursors";
  Out.Stop = static_cast<StopReason>(Stop);
  Out.Generation = R.u64();
  Out.IterationsDone = R.u64();
  const uint32_t NumRules = R.u32();
  // Each rule cursor is 4 u64s + 1 u8.
  if (!R.ok() || !R.fits(NumRules, 33))
    return "truncated runner cursors";
  Out.Rules.clear();
  Out.Rules.reserve(NumRules);
  for (uint32_t I = 0; I < NumRules; ++I) {
    RunnerCursors::RuleCursor C;
    C.BannedUntil = R.u64();
    C.BanLength = R.u64();
    C.LastSearchGen = R.u64();
    C.WindowMerged = R.u64();
    C.EverSearched = R.u8() != 0;
    if (C.LastSearchGen > Out.Generation)
      return "runner cursor beyond captured generation";
    Out.Rules.push_back(C);
  }
  if (!R.ok() || !R.atEnd())
    return "trailing bytes after runner cursors";
  return "";
}
