//===-- egraph/Runner.cpp - Equality saturation driver --------------------===//

#include "egraph/Runner.h"

#include <array>
#include <chrono>

using namespace shrinkray;

RunnerReport Runner::run(EGraph &G, const std::vector<Rewrite> &Rules) const {
  using Clock = std::chrono::steady_clock;
  const auto Start = Clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  };

  RunnerReport Report;
  // Backoff state per rule: banned-until iteration and current ban length.
  std::vector<size_t> BannedUntil(Rules.size(), 0);
  std::vector<size_t> BanLength(Rules.size(), Limits.BanLengthIters);

  G.rebuild();
  for (size_t Iter = 0; Iter < Limits.IterLimit; ++Iter) {
    IterationStats Stats;
    size_t NodesBefore = G.numNodes();

    // Index classes by the operator kinds they contain so each rule only
    // scans classes that can possibly match its root.
    std::array<std::vector<EClassId>, NumOpKinds> KindIndex;
    for (EClassId Id : G.classIds()) {
      uint64_t SeenMask = 0;
      for (const ENode &N : G.eclass(Id).Nodes) {
        uint64_t Bit = uint64_t(1) << static_cast<unsigned>(N.kind());
        if (SeenMask & Bit)
          continue;
        SeenMask |= Bit;
        KindIndex[static_cast<unsigned>(N.kind())].push_back(Id);
      }
    }

    // Phase 1: search all rules against a consistent graph snapshot.
    std::vector<std::vector<std::pair<EClassId, Subst>>> AllMatches(
        Rules.size());
    for (size_t R = 0; R < Rules.size(); ++R) {
      if (BannedUntil[R] > Iter)
        continue;
      unsigned RootKind =
          static_cast<unsigned>(Rules[R].lhs().rootKind());
      AllMatches[R] = Rules[R].searchIn(G, KindIndex[RootKind]);
      Stats.Matches += AllMatches[R].size();
      if (AllMatches[R].size() > Limits.MatchLimit) {
        // Explosive rule: skip it this iteration and ban it for a while,
        // doubling the ban each time (exponential backoff).
        BannedUntil[R] = Iter + BanLength[R];
        BanLength[R] *= 2;
        AllMatches[R].clear();
      }
    }

    // Phase 2: apply everything, then restore invariants once.
    for (size_t R = 0; R < Rules.size(); ++R)
      for (const auto &[Root, S] : AllMatches[R])
        if (Rules[R].apply(G, Root, S))
          ++Stats.Applied;
    G.rebuild();

    Stats.Nodes = G.numNodes();
    Stats.Classes = G.numClasses();
    Report.Iterations.push_back(Stats);

    bool Changed = Stats.Applied > 0 || Stats.Nodes != NodesBefore;
    if (!Changed) {
      Report.Stop = StopReason::Saturated;
      Report.Seconds = elapsed();
      return Report;
    }
    if (Stats.Nodes > Limits.NodeLimit) {
      Report.Stop = StopReason::NodeLimit;
      Report.Seconds = elapsed();
      return Report;
    }
    if (elapsed() > Limits.TimeLimitSec) {
      Report.Stop = StopReason::TimeLimit;
      Report.Seconds = elapsed();
      return Report;
    }
  }
  Report.Stop = StopReason::IterLimit;
  Report.Seconds = elapsed();
  return Report;
}
