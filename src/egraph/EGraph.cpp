//===-- egraph/EGraph.cpp - E-graph with congruence closure ---------------===//

#include "egraph/EGraph.h"

#include "linalg/Vec3.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

using namespace shrinkray;

ENode EGraph::canonicalize(const ENode &Node) const {
  ENode Out = Node;
  for (EClassId &Kid : Out.Children)
    Kid = UF.find(Kid);
  return Out;
}

EClassId EGraph::add(ENode Node) {
  Node = canonicalize(Node);
  auto It = Memo.find(Node);
  if (It != Memo.end())
    return UF.find(It->second);

  EClassId Id = UF.makeSet();
  auto C = std::make_unique<EClass>();
  C->Id = Id;
  C->Nodes.push_back(Node);
  C->Data = makeData(Node);
  for (EClassId Kid : Node.Children)
    eclassMut(Kid).Parents.emplace_back(Node, Id);
  Classes.push_back(std::move(C));
  assert(Classes.size() == UF.size() && "class table out of sync");
  ++LiveClasses;
  ++LiveNodes;
  OpIndex[Node.Operator].push_back(Id);
  touch(Id);
  Memo.emplace(std::move(Node), Id);
  modify(Id);
  return UF.find(Id);
}

namespace {

EClassId addTermRec(EGraph &G, const TermPtr &T,
                    std::unordered_map<const Term *, EClassId> &Memo) {
  auto Hit = Memo.find(T.get());
  if (Hit != Memo.end())
    return Hit->second;
  std::vector<EClassId> Kids;
  Kids.reserve(T->numChildren());
  for (const TermPtr &Kid : T->children())
    Kids.push_back(addTermRec(G, Kid, Memo));
  EClassId Id = G.add(ENode(T->op(), std::move(Kids)));
  // Constant folding in add()/modify() may merge classes mid-call, leaving
  // memoized ids stale. That is safe: a memoized id is only ever reused as a
  // child of a later ENode, and add() canonicalizes child ids through find().
  Memo.emplace(T.get(), Id);
  return Id;
}

} // namespace

EClassId EGraph::addTerm(const TermPtr &T) {
  std::unordered_map<const Term *, EClassId> Memo;
  return addTermRec(*this, T, Memo);
}

std::pair<EClassId, bool> EGraph::merge(EClassId A, EClassId B) {
  A = UF.find(A);
  B = UF.find(B);
  if (A == B)
    return {A, false};

  // Keep the class with more parents as the root: repair() revisits the
  // loser's parents, so this minimizes work.
  if (Classes[A]->Parents.size() < Classes[B]->Parents.size())
    std::swap(A, B);

  UF.unite(A, B);
  EClass &Root = *Classes[A];
  std::unique_ptr<EClass> Loser = std::move(Classes[B]);

  for (ENode &N : Loser->Nodes)
    Root.Nodes.push_back(std::move(N));
  for (auto &P : Loser->Parents)
    Root.Parents.push_back(std::move(P));
  bool DataChanged = joinData(Root.Data, Loser->Data);

  // The loser's op-index entries stay put: B now find()s to A, which owns
  // the loser's nodes, so each entry still names a class containing its
  // head. Stamp the winner so incremental searches revisit the union.
  --LiveClasses;
  touch(A);

  Worklist.push_back(A);
  if (DataChanged)
    modify(A);
  return {A, true};
}

std::pair<EClassId, bool> EGraph::mergeDeferred(EClassId A, EClassId B,
                                                MergeBatchLog &Log) {
  A = UF.find(A);
  B = UF.find(B);
  if (A == B)
    return {A, false};
  // The planner only routes constant-free merges here: joining a folded
  // constant runs the modify() hook (memo probe, op-index push, touch),
  // all of which mutate state shared across partitions.
  assert(!Classes[A]->Data.NumConst && !Classes[B]->Data.NumConst &&
         "deferred merge of a constant-carrying class");

  // Same orientation rule as merge(): keep the parent-heavier class as
  // the root so repair revisits fewer entries.
  if (Classes[A]->Parents.size() < Classes[B]->Parents.size())
    std::swap(A, B);

  UF.unite(A, B);
  EClass &Root = *Classes[A];
  std::unique_ptr<EClass> Loser = std::move(Classes[B]);

  for (ENode &N : Loser->Nodes)
    Root.Nodes.push_back(std::move(N));
  for (auto &P : Loser->Parents)
    Root.Parents.push_back(std::move(P));
  bool DataChanged = joinData(Root.Data, Loser->Data);
  assert(!DataChanged && "constant-free join changed analysis data");
  (void)DataChanged;

  // touch / Worklist / LiveClasses are the coordinator's job at commit.
  Log.Merged.push_back(A);
  return {A, true};
}

void EGraph::commitMergeLog(MergeBatchLog &Log) {
  for (EClassId Id : Log.Merged) {
    EClassId Canon = UF.find(Id);
    touch(Canon);
    Worklist.push_back(Canon);
  }
  assert(LiveClasses >= Log.Merged.size() && "merge log outruns live classes");
  LiveClasses -= Log.Merged.size();
  Log.clear();
}

void EGraph::rebuild() {
  while (!Worklist.empty()) {
    std::vector<EClassId> Todo;
    Todo.swap(Worklist);
    // Canonicalize and dedupe the batch.
    for (EClassId &Id : Todo)
      Id = UF.find(Id);
    std::sort(Todo.begin(), Todo.end());
    Todo.erase(std::unique(Todo.begin(), Todo.end()), Todo.end());
    for (EClassId Id : Todo)
      repair(UF.find(Id));
  }
}

void EGraph::repair(EClassId Id) {
  EClass &C = *Classes[UF.find(Id)];

  // Re-canonicalize parent e-nodes, restoring the hash-consing invariant and
  // discovering congruent parents to merge.
  std::vector<std::pair<ENode, EClassId>> OldParents;
  OldParents.swap(C.Parents);
  for (auto &[PNode, PClass] : OldParents) {
    Memo.erase(PNode);
    ENode Canon = canonicalize(PNode);
    auto It = Memo.find(Canon);
    if (It != Memo.end()) {
      // Congruence: two parents became identical.
      merge(PClass, It->second);
      It->second = UF.find(PClass);
    } else {
      Memo.emplace(Canon, UF.find(PClass));
    }
    PNode = std::move(Canon);
    PClass = UF.find(PClass);
  }

  // Dedupe parents; duplicates that became congruent are merged.
  std::unordered_map<ENode, EClassId, ENodeHash> Seen;
  for (auto &[PNode, PClass] : OldParents) {
    ENode Canon = canonicalize(PNode);
    EClassId PCanon = UF.find(PClass);
    auto [It, Inserted] = Seen.emplace(std::move(Canon), PCanon);
    if (!Inserted) {
      merge(It->second, PCanon);
      It->second = UF.find(It->second);
    }
  }

  // Push analysis data upward: a parent may now fold to a constant.
  for (auto &[PNode, PClass] : Seen) {
    EClassId PCanon = UF.find(PClass);
    AnalysisData New = makeData(PNode);
    EClass &Parent = *Classes[PCanon];
    if (joinData(Parent.Data, New)) {
      // Data changes can flip rule guards (isConst etc.), so they must
      // make the class visible to incremental searches.
      touch(PCanon);
      modify(PCanon);
      Worklist.push_back(PCanon);
    }
  }

  // Re-fetch: the merges above may have merged this class with another
  // (self-referential nodes make that possible), invalidating references and
  // possibly appending new parent entries that must be kept. Those appended
  // entries are deduped by a later repair (the merge queued one).
  EClass &C2 = *Classes[UF.find(Id)];
  for (auto &[PNode, PClass] : Seen)
    C2.Parents.emplace_back(PNode, UF.find(PClass));

  // Canonicalize and dedupe this class's own nodes.
  std::unordered_set<ENode, ENodeHash> NodeSet;
  std::vector<ENode> NewNodes;
  NewNodes.reserve(C2.Nodes.size());
  for (const ENode &N : C2.Nodes) {
    ENode Canon = canonicalize(N);
    if (NodeSet.insert(Canon).second)
      NewNodes.push_back(std::move(Canon));
  }
  assert(LiveNodes >= C2.Nodes.size() - NewNodes.size());
  LiveNodes -= C2.Nodes.size() - NewNodes.size();
  C2.Nodes = std::move(NewNodes);
}

std::vector<EClassId> EGraph::classIds() const {
  std::vector<EClassId> Ids;
  for (size_t I = 0; I < Classes.size(); ++I)
    if (Classes[I])
      Ids.push_back(static_cast<EClassId>(I));
  return Ids;
}

const std::vector<EClassId> &EGraph::classesWithOp(const Op &O) const {
  static const std::vector<EClassId> Empty;
  auto It = OpIndex.find(O);
  if (It == OpIndex.end())
    return Empty;
  // Compact in place: canonicalize, sort, dedupe. Entries never need to be
  // filtered out — a class only ever gains heads (merge unions node sets;
  // repair dedup keeps one copy of each node) — so after canonicalization
  // every id names a class containing the head.
  std::vector<EClassId> &Ids = It->second;
  for (EClassId &Id : Ids)
    Id = UF.find(Id);
  std::sort(Ids.begin(), Ids.end());
  Ids.erase(std::unique(Ids.begin(), Ids.end()), Ids.end());
  return Ids;
}

const std::vector<std::pair<ENode, EClassId>> &
EGraph::canonicalParents(EClassId Id) const {
  assert(!isDirty() && "parent query on an unrebuilt graph");
  // Compact in place: canonicalize each entry and drop duplicates, keeping
  // first-occurrence order (deterministic given the append order). On a
  // clean graph the memo holds canonical forms, so rewriting an entry to
  // its canonical form is exactly what the next repair() would do anyway.
  // A generation stamp skips recompaction while the graph is unchanged
  // (extraction queries each class's parents once per cost improvement).
  EClass &C = *Classes[UF.find(Id)];
  std::vector<std::pair<ENode, EClassId>> &Ps = C.Parents;
  if (C.ParentsCompactedGen == Gen)
    return Ps;
  C.ParentsCompactedGen = Gen;
  std::unordered_map<ENode, EClassId, ENodeHash> Seen;
  size_t Keep = 0;
  for (auto &[PNode, PClass] : Ps) {
    ENode Canon = canonicalize(PNode);
    EClassId PCanon = UF.find(PClass);
    auto [It, Inserted] = Seen.emplace(Canon, PCanon);
    if (!Inserted) {
      assert(It->second == PCanon &&
             "congruent parents in distinct classes on a clean graph");
      continue;
    }
    Ps[Keep++] = {std::move(Canon), PCanon};
  }
  Ps.erase(Ps.begin() + static_cast<std::ptrdiff_t>(Keep), Ps.end());
  return Ps;
}

std::vector<EClassId> EGraph::takeDirtySince(uint64_t Since) const {
  assert(!isDirty() && "dirty query on an unrebuilt graph");
  // A cursor behind the compaction floor can no longer be answered from
  // the log; every class is a sound (if maximal) answer. Leased cursors
  // never land here — compactDirtyLog keeps their suffixes alive.
  if (Since < DirtyFloor)
    return classIds();
  // Seed with the touch-log suffix after Since (gens are strictly
  // increasing, so the boundary is a binary search), then close upward
  // through parent pointers: any ancestor can root a match consuming the
  // change.
  std::vector<EClassId> Stack;
  std::unordered_set<EClassId> InSet;
  auto First = std::upper_bound(
      DirtyLog.begin(), DirtyLog.end(), Since,
      [](uint64_t S, const std::pair<uint64_t, EClassId> &E) {
        return S < E.first;
      });
  for (auto It = First; It != DirtyLog.end(); ++It) {
    EClassId Canon = UF.find(It->second);
    if (InSet.insert(Canon).second)
      Stack.push_back(Canon);
  }
  while (!Stack.empty()) {
    EClassId Id = Stack.back();
    Stack.pop_back();
    for (const auto &[PNode, PClass] : eclass(Id).Parents) {
      (void)PNode;
      EClassId PCanon = UF.find(PClass);
      if (InSet.insert(PCanon).second)
        Stack.push_back(PCanon);
    }
  }
  std::vector<EClassId> Out(InSet.begin(), InSet.end());
  std::sort(Out.begin(), Out.end());
  return Out;
}

void EGraph::compactDirtyLog(uint64_t MinLiveGen) {
  for (const auto &[Lease, Gen_] : DirtyLeases)
    MinLiveGen = std::min(MinLiveGen, Gen_);
  if (MinLiveGen <= DirtyFloor)
    return; // nothing new to drop
  auto End = std::upper_bound(
      DirtyLog.begin(), DirtyLog.end(), MinLiveGen,
      [](uint64_t G_, const std::pair<uint64_t, EClassId> &E) {
        return G_ < E.first;
      });
  DirtyLog.erase(DirtyLog.begin(), End);
  DirtyFloor = MinLiveGen;
}

uint64_t EGraph::acquireDirtyLease(uint64_t Gen_) const {
  uint64_t Lease = NextDirtyLease++;
  DirtyLeases.emplace(Lease, Gen_);
  return Lease;
}

void EGraph::updateDirtyLease(uint64_t Lease, uint64_t Gen_) const {
  auto It = DirtyLeases.find(Lease);
  assert(It != DirtyLeases.end() && "unknown dirty lease");
  assert(It->second <= Gen_ && "dirty lease must advance monotonically");
  It->second = Gen_;
}

void EGraph::releaseDirtyLease(uint64_t Lease) const {
  size_t Erased = DirtyLeases.erase(Lease);
  (void)Erased;
  assert(Erased == 1 && "releasing an unknown dirty lease");
}

void EGraph::prepareForConcurrentReads() const {
  assert(!isDirty() && "prepare on an unrebuilt graph");
  quiesceForReads();
}

void EGraph::quiesceForReads() const {
  if (PreparedGen == Gen)
    return;
  // Only the union-find needs quiescing: every write-capable const query
  // the concurrent readers use bottoms out in find()'s path halving,
  // which compressAll leaves nothing to do. The op-index and parent-index
  // compactions stay coordinator-only (see the header contract).
  //
  // The stamp invalidates correctly across deferred merges too: every
  // graph-changing mergeDeferred is followed by a commitMergeLog touch,
  // which bumps Gen before the next quiesce can observe a stale match.
  UF.compressAll();
  PreparedGen = Gen;
}

std::optional<EClassId> EGraph::lookup(const ENode &Node) const {
  auto It = Memo.find(canonicalize(Node));
  if (It == Memo.end())
    return std::nullopt;
  return UF.find(It->second);
}

bool EGraph::representsTerm(EClassId Id, const TermPtr &T) const {
  TermMemo Cache;
  return representsTermRec(Id, T, Cache);
}

bool EGraph::representsTermRec(EClassId Id, const TermPtr &T,
                               TermMemo &Cache) const {
  Id = UF.find(Id);
  auto &PerClass = Cache[Id];
  auto Hit = PerClass.find(T.get());
  if (Hit != PerClass.end())
    return Hit->second;
  bool Result = false;
  const EClass &C = eclass(Id);
  for (const ENode &N : C.Nodes) {
    if (N.Operator != T->op() || N.Children.size() != T->numChildren())
      continue;
    bool AllMatch = true;
    for (size_t I = 0; I < N.Children.size(); ++I) {
      if (!representsTermRec(N.Children[I], T->child(I), Cache)) {
        AllMatch = false;
        break;
      }
    }
    if (AllMatch) {
      Result = true;
      break;
    }
  }
  Cache[Id].emplace(T.get(), Result);
  return Result;
}

bool EGraph::representsTermApprox(EClassId Id, const TermPtr &T,
                                  double Eps) const {
  TermMemo Cache;
  return representsTermApproxRec(Id, T, Eps, Cache);
}

bool EGraph::representsTermApproxRec(EClassId Id, const TermPtr &T,
                                     double Eps, TermMemo &Cache) const {
  Id = UF.find(Id);
  if (T->kind() == OpKind::Float || T->kind() == OpKind::Int) {
    const AnalysisData &D = data(Id);
    return D.NumConst &&
           std::fabs(*D.NumConst - T->op().numericValue()) <= Eps;
  }
  auto &PerClass = Cache[Id];
  auto Hit = PerClass.find(T.get());
  if (Hit != PerClass.end())
    return Hit->second;
  bool Result = false;
  const EClass &C = eclass(Id);
  for (const ENode &N : C.Nodes) {
    if (N.Operator != T->op() || N.Children.size() != T->numChildren())
      continue;
    bool AllMatch = true;
    for (size_t I = 0; I < N.Children.size(); ++I) {
      if (!representsTermApproxRec(N.Children[I], T->child(I), Eps, Cache)) {
        AllMatch = false;
        break;
      }
    }
    if (AllMatch) {
      Result = true;
      break;
    }
  }
  Cache[Id].emplace(T.get(), Result);
  return Result;
}

AnalysisData EGraph::makeData(const ENode &Node) const {
  AnalysisData Out;
  const Op &O = Node.Operator;
  switch (O.kind()) {
  case OpKind::Int:
    Out.NumConst = static_cast<double>(O.intValue());
    Out.NumIsInt = true;
    return Out;
  case OpKind::Float:
    Out.NumConst = O.floatValue();
    Out.NumIsInt = false;
    return Out;
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div: {
    const AnalysisData &A = data(Node.Children[0]);
    const AnalysisData &B = data(Node.Children[1]);
    if (!A.NumConst || !B.NumConst)
      return Out;
    double X = *A.NumConst, Y = *B.NumConst;
    switch (O.kind()) {
    case OpKind::Add:
      Out.NumConst = X + Y;
      break;
    case OpKind::Sub:
      Out.NumConst = X - Y;
      break;
    case OpKind::Mul:
      Out.NumConst = X * Y;
      break;
    default:
      if (Y == 0.0)
        return Out;
      Out.NumConst = X / Y;
      break;
    }
    Out.NumIsInt = A.NumIsInt && B.NumIsInt && O.kind() != OpKind::Div &&
                   *Out.NumConst == std::floor(*Out.NumConst);
    return Out;
  }
  case OpKind::Sin:
  case OpKind::Cos: {
    const AnalysisData &A = data(Node.Children[0]);
    if (!A.NumConst)
      return Out;
    Out.NumConst = O.kind() == OpKind::Sin ? std::sin(degToRad(*A.NumConst))
                                           : std::cos(degToRad(*A.NumConst));
    return Out;
  }
  default:
    return Out;
  }
}

bool EGraph::joinData(AnalysisData &Into, const AnalysisData &From) {
  if (!From.NumConst)
    return false;
  if (!Into.NumConst) {
    Into = From;
    return true;
  }
  // Two constants merged into one class must agree (up to roundoff noise
  // introduced by rewrites; tolerance mirrors the solver epsilon).
  assert(std::fabs(*Into.NumConst - *From.NumConst) <= 1e-6 &&
         "merged classes with distinct constants");
  if (!Into.NumIsInt && From.NumIsInt) {
    Into.NumIsInt = true; // prefer the integer-typed witness
    return true;
  }
  return false;
}

void EGraph::modify(EClassId Id) {
  Id = UF.find(Id);
  const AnalysisData D = Classes[Id]->Data; // copy: add() may reallocate
  if (!D.NumConst)
    return;
  // Materialize the constant as a literal leaf in this class so that
  // extraction can always choose the folded form. Integral values get an
  // Int leaf regardless of provenance, which also unifies Float(k) with
  // Int(k) classes (numeric classes are keyed by value).
  bool Integral = *D.NumConst == std::floor(*D.NumConst) &&
                  std::fabs(*D.NumConst) < 9e15;
  Op Literal = Integral ? Op::makeInt(static_cast<int64_t>(*D.NumConst))
                        : Op::makeFloat(*D.NumConst);
  // The class now holds an integer-typed witness.
  if (Integral && !Classes[Id]->Data.NumIsInt)
    Classes[Id]->Data.NumIsInt = true;
  ENode Leaf(Literal, {});
  auto It = Memo.find(Leaf);
  if (It != Memo.end()) {
    if (UF.find(It->second) != Id)
      merge(Id, It->second);
    return;
  }
  // Insert the leaf directly into this class (bypassing add(), which would
  // create a fresh class).
  Classes[Id]->Nodes.push_back(Leaf);
  ++LiveNodes;
  OpIndex[Leaf.Operator].push_back(Id);
  touch(Id);
  Memo.emplace(std::move(Leaf), Id);
}

std::string EGraph::checkInvariants() const {
  if (isDirty())
    return "graph is dirty: call rebuild() before checking invariants";
  std::ostringstream Os;

  // 1. Every canonical node of every class maps to that class in the memo
  //    (hash-consing), and no two classes contain congruent nodes.
  std::unordered_map<ENode, EClassId, ENodeHash> Seen;
  for (EClassId Id : classIds()) {
    for (const ENode &N : eclass(Id).Nodes) {
      ENode Canon = canonicalize(N);
      auto MemoIt = Memo.find(Canon);
      if (MemoIt == Memo.end()) {
        Os << "node " << Canon.Operator.str() << " of class " << Id
           << " missing from memo";
        return Os.str();
      }
      if (UF.find(MemoIt->second) != Id) {
        Os << "memo maps a node of class " << Id << " to class "
           << UF.find(MemoIt->second);
        return Os.str();
      }
      auto [It, Inserted] = Seen.emplace(Canon, Id);
      if (!Inserted && It->second != Id) {
        Os << "congruence violation: identical node in classes "
           << It->second << " and " << Id;
        return Os.str();
      }
    }
  }

  // 2 + 3. Parent links, both directions. One pass over the stored parent
  // entries canonicalizes each entry once, validates its truthfulness
  // (check 3: its canonical form is a live e-node of the recorded parent
  // class that still references the child it is stored under — entries
  // may be stale forms, but canonicalization must repair them; this is
  // what canonicalParents() and the extraction engine's cost propagation
  // rely on), and indexes it per child class. Check 2 — every child of
  // every node has a matching parent entry — is then a hash lookup per
  // edge. (The naive form rescanned the child's whole parent list per
  // edge, which is quadratic on parent-heavy classes: a restored
  // nintendo-slot graph spent ~18 seconds here.)
  struct ParentKey {
    ENode N;
    EClassId C;
    bool operator==(const ParentKey &O) const { return C == O.C && N == O.N; }
  };
  struct ParentKeyHash {
    size_t operator()(const ParentKey &K) const {
      return ENodeHash()(K.N) * size_t(1000003) + K.C;
    }
  };
  std::vector<std::unordered_set<ParentKey, ParentKeyHash>> ParentIndex(
      Classes.size());
  for (EClassId Id : classIds()) {
    ParentIndex[Id].reserve(eclass(Id).Parents.size());
    for (const auto &[PNode, PClass] : eclass(Id).Parents) {
      ENode Canon = canonicalize(PNode);
      auto MemoIt = Memo.find(Canon);
      if (MemoIt == Memo.end() || UF.find(MemoIt->second) != UF.find(PClass)) {
        Os << "class " << Id << " holds a parent entry whose node is not "
           << "hash-consed to class " << UF.find(PClass);
        return Os.str();
      }
      bool RefersBack = false;
      for (EClassId Kid : Canon.Children)
        if (UF.find(Kid) == Id) {
          RefersBack = true;
          break;
        }
      if (!RefersBack) {
        Os << "class " << Id << " holds a parent entry for a node of class "
           << UF.find(PClass) << " that no longer references it";
        return Os.str();
      }
      ParentIndex[Id].insert({std::move(Canon), UF.find(PClass)});
    }
  }
  for (EClassId Id : classIds()) {
    for (const ENode &N : eclass(Id).Nodes) {
      ENode Canon = canonicalize(N);
      for (EClassId Kid : Canon.Children) {
        if (ParentIndex[Kid].find({Canon, Id}) == ParentIndex[Kid].end()) {
          Os << "class " << Kid
             << " missing parent entry for a node of class " << Id;
          return Os.str();
        }
      }
    }
  }

  // 4. The operator-head index agrees with a full rescan: for every Op,
  //    the canonicalized index bucket is exactly the set of classes
  //    containing a node with that head. (Read-only: buckets are
  //    canonicalized into scratch sets, not compacted in place.)
  std::unordered_map<Op, std::unordered_set<EClassId>> Rescan;
  size_t RescanClasses = 0, RescanNodes = 0;
  for (EClassId Id : classIds()) {
    ++RescanClasses;
    RescanNodes += eclass(Id).Nodes.size();
    for (const ENode &N : eclass(Id).Nodes)
      Rescan[N.Operator].insert(Id);
  }
  for (const auto &[O, Ids] : OpIndex) {
    std::unordered_set<EClassId> Canon;
    for (EClassId Id : Ids)
      Canon.insert(UF.find(Id));
    auto RescanIt = Rescan.find(O);
    const std::unordered_set<EClassId> Want =
        RescanIt == Rescan.end() ? std::unordered_set<EClassId>{}
                                 : RescanIt->second;
    if (Canon != Want) {
      Os << "op-index for " << O.str() << " holds " << Canon.size()
         << " classes but a rescan finds " << Want.size();
      return Os.str();
    }
  }
  for (const auto &[O, Want] : Rescan)
    if (OpIndex.find(O) == OpIndex.end() && !Want.empty()) {
      Os << "op-index missing bucket for " << O.str();
      return Os.str();
    }

  // 5. The O(1) counters agree with a rescan.
  if (LiveClasses != RescanClasses) {
    Os << "class counter " << LiveClasses << " != rescan " << RescanClasses;
    return Os.str();
  }
  if (LiveNodes != RescanNodes) {
    Os << "node counter " << LiveNodes << " != rescan " << RescanNodes;
    return Os.str();
  }
  return "";
}

std::string EGraph::dump() const {
  std::ostringstream Os;
  for (EClassId Id : classIds()) {
    const EClass &C = *Classes[Id];
    Os << "class " << Id;
    if (C.Data.NumConst)
      Os << " [const " << *C.Data.NumConst << (C.Data.NumIsInt ? "i" : "f")
         << "]";
    Os << ":\n";
    for (const ENode &N : C.Nodes) {
      Os << "  " << N.Operator.str() << "(";
      for (size_t I = 0; I < N.Children.size(); ++I) {
        if (I)
          Os << ", ";
        Os << UF.find(N.Children[I]);
      }
      Os << ")\n";
    }
  }
  return Os.str();
}
