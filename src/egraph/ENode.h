//===-- egraph/ENode.h - E-nodes ---------------------------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An e-node is an operator applied to e-class ids (paper Sec. 3.1: "each
/// enode represents an operator applied to some eclasses"). E-nodes are the
/// keys of the e-graph's hash-consing table once their children are
/// canonicalized.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_EGRAPH_ENODE_H
#define SHRINKRAY_EGRAPH_ENODE_H

#include "cad/Op.h"
#include "egraph/UnionFind.h"
#include "support/Hashing.h"

#include <vector>

namespace shrinkray {

/// An operator applied to argument e-classes.
struct ENode {
  Op Operator;
  std::vector<EClassId> Children;

  ENode(Op O, std::vector<EClassId> Children)
      : Operator(std::move(O)), Children(std::move(Children)) {}

  OpKind kind() const { return Operator.kind(); }

  friend bool operator==(const ENode &A, const ENode &B) {
    return A.Operator == B.Operator && A.Children == B.Children;
  }

  size_t hash() const {
    size_t Seed = Operator.hash();
    for (EClassId Kid : Children)
      hashCombine(Seed, std::hash<EClassId>()(Kid));
    return Seed;
  }
};

struct ENodeHash {
  size_t operator()(const ENode &N) const noexcept { return N.hash(); }
};

} // namespace shrinkray

#endif // SHRINKRAY_EGRAPH_ENODE_H
