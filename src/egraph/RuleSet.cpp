//===-- egraph/RuleSet.cpp - Compiled rule database -----------------------===//

#include "egraph/RuleSet.h"

#include <algorithm>
#include <cstdlib>

using namespace shrinkray;

//===----------------------------------------------------------------------===//
// Compilation: merge per-rule programs into shared-prefix tries
//===----------------------------------------------------------------------===//

RuleSet::RuleSet(const std::vector<Rewrite> &Rules) : Rules(Rules) {
  RuleGroup.resize(Rules.size());
  for (size_t R = 0; R < Rules.size(); ++R) {
    const Op &Root = Rules[R].lhs().rootOp(); // asserts op-rooted
    size_t GI = 0;
    for (; GI < Groups.size(); ++GI)
      if (Groups[GI].RootOp == Root)
        break;
    if (GI == Groups.size()) {
      Groups.emplace_back();
      Groups.back().RootOp = Root;
    }
    Group &Grp = Groups[GI];
    // A silently truncated group would drop rules from saturation, so the
    // cap is enforced in release builds too.
    if (Grp.RuleIds.size() >= MaxGroupRules) {
      assert(false && "root-op group overflow: raise RuleSet::MaxGroupRules");
      std::abort();
    }
    RuleGroup[R] = static_cast<uint32_t>(GI);
    uint32_t Local = static_cast<uint32_t>(Grp.RuleIds.size());
    Grp.RuleIds.push_back(static_cast<uint32_t>(R));
    const MatchProgram &Prog = Rules[R].lhs().program();
    Grp.VarRegs.push_back(Prog.varRegs());
    Grp.NumRegs = std::max(Grp.NumRegs, static_cast<uint16_t>(Prog.numRegs()));
    Grp.UnmergedInstrs += Prog.numInstrs();
    insertRule(Grp, Local, Prog);
  }
}

void RuleSet::insertRule(Group &Grp, uint32_t LocalIdx,
                         const MatchProgram &Prog) {
  // Walk/extend the trie one instruction at a time. Merging is by full
  // structural equality (operator, arity, and registers); since register
  // allocation is a pure function of the instruction prefix, two programs
  // that diverge structurally also diverge here, and never before.
  const std::vector<MatchInstr> &Instrs = Prog.instrs();
  assert(!Instrs.empty() && "op-rooted pattern compiles to >= 1 Bind");
  // Parent is addressed by index, not pointer: appending a node may
  // reallocate Grp.Nodes.
  const uint32_t NoParent = UINT32_MAX;
  uint32_t Parent = NoParent;
  for (const MatchInstr &I : Instrs) {
    std::vector<uint32_t> &Edges =
        Parent == NoParent ? Grp.Roots : Grp.Nodes[Parent].Kids;
    uint32_t Next = UINT32_MAX;
    for (uint32_t Kid : Edges)
      if (Grp.Nodes[Kid].Instr == I) {
        Next = Kid;
        break;
      }
    if (Next == UINT32_MAX) {
      Next = static_cast<uint32_t>(Grp.Nodes.size());
      Grp.Nodes.emplace_back(I); // may invalidate Edges...
      (Parent == NoParent ? Grp.Roots : Grp.Nodes[Parent].Kids)
          .push_back(Next);      // ...so re-resolve before writing
    }
    Parent = Next;
  }
  Grp.Nodes[Parent].Leaves.push_back(LocalIdx);
}

//===----------------------------------------------------------------------===//
// Execution: one trie traversal matches every rule of a group
//===----------------------------------------------------------------------===//

void RuleSet::searchGroup(
    size_t GI, const EGraph &G, const std::vector<Candidate> &Cands,
    std::vector<std::vector<std::pair<EClassId, Subst>>> &Out) const {
  const Group &Grp = Groups[GI];
  assert(Out.size() >= Rules.size() && "output not sized to the database");

  // Registers are statically allocated exactly as in MatchProgram::run;
  // the group file is the max over members (shared prefixes allocate
  // identically, so no member disagrees below its divergence point).
  EClassId RegBuf[64];
  std::vector<EClassId> RegHeap;
  EClassId *Regs = RegBuf;
  if (Grp.NumRegs > 64) {
    RegHeap.resize(Grp.NumRegs);
    Regs = RegHeap.data();
  }

  EClassId Root = 0;
  RuleMask Mask;

  // Completes one substitution for every Mask-selected rule tagged on N
  // (guards run here, at the leaf, so a rejection never prunes siblings).
  auto emitLeaves = [&](const TrieNode &N) {
    for (uint32_t Leaf : N.Leaves) {
      if (!Mask.test(Leaf))
        continue;
      const Rewrite &RW = Rules[Grp.RuleIds[Leaf]];
      Subst S;
      for (const auto &[Var, Reg] : Grp.VarRegs[Leaf])
        S.bind(Var, G.find(Regs[Reg]));
      if (!RW.guard() || RW.guard()(G, S))
        Out[Grp.RuleIds[Leaf]].emplace_back(Root, std::move(S));
    }
  };

  // Recursive over trie nodes: depth is bounded by the longest member
  // program (pattern size, ~10); Bind fan-out over e-nodes stays
  // iterative. For any fixed rule this enumerates its Bind choice points
  // lexicographically in program order — the linear VM's order — because
  // the rule's instructions lie on one root-to-leaf path and sibling
  // branches only interleave, never reorder.
  auto visit = [&](auto &&Self, uint32_t NodeIdx) -> void {
    const TrieNode &N = Grp.Nodes[NodeIdx];
    const MatchInstr &I = N.Instr;
    if (I.K == MatchInstr::Kind::Compare) {
      if (G.find(Regs[I.In]) != G.find(Regs[I.Out]))
        return;
      emitLeaves(N);
      for (uint32_t Kid : N.Kids)
        Self(Self, Kid);
      return;
    }
    // Bind: each matching e-node is one choice; leaves and children run
    // under each choice in turn. Sibling subtrees may reuse the same
    // output registers — safe, each subtree is fully explored before the
    // next choice or sibling overwrites them.
    const std::vector<ENode> &Nodes = G.eclass(Regs[I.In]).Nodes;
    for (const ENode &Node : Nodes) {
      if (Node.Operator != I.Operator || Node.Children.size() != I.Arity)
        continue;
      for (uint16_t C = 0; C < I.Arity; ++C)
        Regs[I.Out + C] = Node.Children[C];
      emitLeaves(N);
      for (uint32_t Kid : N.Kids)
        Self(Self, Kid);
    }
  };

  for (const Candidate &Cand : Cands) {
    if (!Cand.Mask.any())
      continue;
    Root = Cand.Class;
    Mask = Cand.Mask;
    Regs[0] = G.find(Root);
    for (uint32_t R : Grp.Roots)
      visit(visit, R);
  }
}
