//===-- egraph/Runner.h - Equality saturation driver ------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives equality saturation: repeatedly matches every rewrite against the
/// e-graph and applies all matches, until the graph saturates (no rule can
/// change it) or a fuel limit is hit (paper Fig. 5: the `fuel` argument
/// bounding iterative search). A backoff scheduler keeps explosive rules
/// (e.g. associativity) from starving the rest.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_EGRAPH_RUNNER_H
#define SHRINKRAY_EGRAPH_RUNNER_H

#include "egraph/Rewrite.h"

#include <vector>

namespace shrinkray {

/// Fuel limits for a saturation run.
struct RunnerLimits {
  size_t IterLimit = 128;       ///< max saturation iterations (fold
                                ///< extension linearizes one element per
                                ///< iteration, so chains need ~n of fuel)
  size_t NodeLimit = 200000;    ///< stop when the graph exceeds this size
  double TimeLimitSec = 60.0;   ///< wall-clock budget
  size_t MatchLimit = 20000;    ///< per-rule matches/iteration before backoff
  size_t BanLengthIters = 3;    ///< initial ban length when a rule overflows
};

/// Why a run stopped.
enum class StopReason { Saturated, IterLimit, NodeLimit, TimeLimit };

/// Per-iteration statistics.
struct IterationStats {
  size_t Applied = 0; ///< matches that changed the graph
  size_t Matches = 0; ///< total matches found
  size_t Nodes = 0;   ///< e-nodes after the iteration
  size_t Classes = 0; ///< e-classes after the iteration
};

/// Result of a saturation run.
struct RunnerReport {
  StopReason Stop = StopReason::Saturated;
  std::vector<IterationStats> Iterations;
  double Seconds = 0.0;

  size_t numIterations() const { return Iterations.size(); }
};

/// Equality-saturation driver with backoff scheduling.
class Runner {
public:
  explicit Runner(RunnerLimits Limits = {}) : Limits(Limits) {}

  /// Runs \p Rules on \p G to saturation or until fuel runs out.
  RunnerReport run(EGraph &G, const std::vector<Rewrite> &Rules) const;

private:
  RunnerLimits Limits;
};

} // namespace shrinkray

#endif // SHRINKRAY_EGRAPH_RUNNER_H
