//===-- egraph/Runner.h - Equality saturation driver ------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives equality saturation: repeatedly matches every rewrite against the
/// e-graph and applies all matches, until the graph saturates (no rule can
/// change it) or a fuel limit is hit (paper Fig. 5: the `fuel` argument
/// bounding iterative search). A backoff scheduler keeps explosive rules
/// (e.g. associativity) from starving the rest.
///
/// Search runs against the compiled rule database (RuleSet): rules sharing
/// a left-hand-side root operator are matched by one shared-prefix trie
/// per candidate class, instead of one program per rule. Search is also
/// incremental after the first iteration: each rule records the graph
/// generation of its last applied search, and subsequent searches scan
/// only the classes the e-graph reports dirty since then (touched classes
/// plus their ancestor closure — see EGraph::takeDirtySince), intersected
/// with the operator-head index for the rule's root. When the dirty
/// closure covers most of the graph the Runner falls back to a plain
/// indexed search, which costs the same and skips the set bookkeeping.
/// Saturation cost is therefore proportional to change, not graph size.
///
/// Because phase 1 only reads the graph (one generation stamp covers every
/// search), the root-op groups can be searched concurrently: with
/// NumThreads > 1 a small fixed thread pool shards the groups, each worker
/// writing its own rules' match buffers, and the results are consumed in
/// stable rule order — so parallel runs are bit-identical to serial ones.
/// EGraph::prepareForConcurrentReads() is called first so the lazy indexes
/// (union-find path compression, op-index buckets) are quiescent.
///
/// Phase 2 keeps an applied-match memo per rule: a (root, substitution)
/// pair that already merged is never re-instantiated, so re-found matches
/// (full-search fallbacks, overlapping dirty closures) cost one hash probe
/// instead of rebuilding their right-hand sides. The memo also feeds the
/// match-limit window — see RunnerLimits::MatchLimit.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_EGRAPH_RUNNER_H
#define SHRINKRAY_EGRAPH_RUNNER_H

#include "egraph/RuleSet.h"
#include "support/Cancel.h"

#include <string_view>
#include <vector>

namespace shrinkray {

/// Fuel limits for a saturation run.
struct RunnerLimits {
  size_t IterLimit = 128;       ///< max saturation iterations (fold
                                ///< extension linearizes one element per
                                ///< iteration, so chains need ~n of fuel)
  size_t NodeLimit = 200000;    ///< stop when the graph exceeds this size
  double TimeLimitSec = 60.0;   ///< wall-clock budget
  /// Backoff threshold, enforced two ways: a single search that *finds*
  /// more than this many matches is discarded and the rule banned (search
  /// cost control, as before), and a rule whose distinct merged matches
  /// accumulated across one incremental streak (between full searches)
  /// cross this limit is banned *at that moment, mid-apply* (growth-rate
  /// control — incremental searches shrink per-search counts, so without
  /// the windowed trigger explosive rules dodge their bans). The mid-apply
  /// trigger caps the streak near the limit even when a single iteration
  /// would merge many times it: the rule's remaining matches this
  /// iteration are discarded and its search cursor rolled back, so the
  /// discarded work is re-found when the ban expires (dirtiness is
  /// monotone) and saturation still converges to the identical graph.
  size_t MatchLimit = 20000;
  size_t BanLengthIters = 3;    ///< initial ban length when a rule overflows
  /// Worker threads for the search phase. 0 = auto (min(4, hardware
  /// concurrency)); 1 = serial. Any value produces bit-identical results.
  size_t NumThreads = 0;
  /// Cooperative cancellation (service jobs, deadlines). Checked at
  /// saturation-iteration boundaries — never mid-iteration, so a run that
  /// observes cancellation stops on a clean, rebuilt graph with all rule
  /// cursors sound, and continuing the same graph later stays
  /// bit-identical to an uninterrupted run. Default-constructed tokens
  /// are inert (one null check per iteration). The explicit {} keeps
  /// designated-initializer users (RunnerLimits{.IterLimit = ...})
  /// clean under -Wmissing-field-initializers.
  CancelToken Cancel{};
};

/// Why a run stopped.
enum class StopReason { Saturated, IterLimit, NodeLimit, TimeLimit, Cancelled };

/// Per-iteration statistics.
struct IterationStats {
  size_t Applied = 0;   ///< matches that changed the graph
  size_t Matches = 0;   ///< total matches found
  size_t Nodes = 0;     ///< e-nodes after the iteration
  size_t Classes = 0;   ///< e-classes after the iteration
  double Seconds = 0.0; ///< wall time of this iteration (search+apply+rebuild)
  double SearchSec = 0.0;  ///< phase 1: candidate prep + group searches
  double ApplySec = 0.0;   ///< phase 2: plan + partitioned merges + serial tail
  double RebuildSec = 0.0; ///< invariant restoration + log compaction
  // Apply-scheduler breakdown (see docs/ARCHITECTURE.md, "Conflict-
  // partitioned apply"): how the iteration's post-memo matches were
  // executed. All three are pure functions of the graph — identical at
  // every thread count. Serial matches cover node-creating
  // instantiations, programmatic appliers, constant-carrying merges, and
  // demoted rules.
  size_t ApplyPartitions = 0; ///< conflict groups emitted by the partitioner
  size_t ParallelMatches = 0; ///< matches executed on the partitioned path
  size_t SerialMatches = 0;   ///< matches executed on the serial path
};

/// Per-rule statistics accumulated across the whole run, so regressions in
/// a single rule's search or apply cost are visible in bench JSON.
struct RuleStats {
  std::string Name;
  /// Search time attributed to this rule. Group searches are shared work:
  /// each group's wall time is split evenly across the member rules active
  /// in that search (exact per-rule attribution does not exist once the
  /// Bind spine is shared).
  double SearchSec = 0.0;
  double ApplySec = 0.0;          ///< total time applying its matches
  size_t Matches = 0;             ///< matches found (incl. re-found)
  size_t Applied = 0;             ///< matches that changed the graph
  size_t FullSearches = 0;        ///< searches over all indexed candidates
  size_t IncrementalSearches = 0; ///< searches restricted to dirty classes
  size_t Bans = 0;                ///< backoff bans (either trigger)
};

/// The continuation state of a saturation run: everything `run` keeps
/// outside the e-graph itself. A run captured at an iteration boundary can
/// be resumed later — on the same (restored) graph, against the same rule
/// database, under the same saturation-shaping limits — and the resumed
/// run is bit-identical to the uninterrupted one: the graph evolves through
/// the same mutation sequence, so class ids, node orders, dirty log, and
/// therefore extraction all agree. The applied-match memo is deliberately
/// *not* part of the state: a re-found match whose merge already happened
/// plans to a memo hit or re-applies as a no-change merge, neither of which
/// perturbs the graph — the memo is a cost optimization, not semantics.
///
/// `BannedUntil` values are absolute iteration indices, which is why
/// `IterationsDone` is part of the state: resume continues the iteration
/// counter rather than restarting it, so pending bans expire exactly when
/// they would have.
struct RunnerCursors {
  struct RuleCursor {
    uint64_t BannedUntil = 0;   ///< absolute iteration the ban ends before
    uint64_t BanLength = 0;     ///< current (doubling) ban length
    uint64_t LastSearchGen = 0; ///< cursor of the last applied search
    uint64_t WindowMerged = 0;  ///< merges in the current incremental streak
    bool EverSearched = false;  ///< false => next search is full
  };
  uint64_t Generation = 0;     ///< graph generation at capture
  uint64_t IterationsDone = 0; ///< absolute iterations consumed so far
  StopReason Stop = StopReason::Saturated; ///< why the captured run stopped
  std::vector<RuleCursor> Rules; ///< one per rule, in database order
};

/// Serializes \p C to the snapshot-tier wire format (SnapshotCodec).
std::string serializeRunnerCursors(const RunnerCursors &C);

/// Decodes \p Bytes into \p Out. Returns "" on success, a diagnostic on
/// malformed input — never asserts, so corrupt snapshot-tier blobs degrade
/// to cache misses.
std::string deserializeRunnerCursors(std::string_view Bytes,
                                     RunnerCursors &Out);

/// Result of a saturation run.
struct RunnerReport {
  StopReason Stop = StopReason::Saturated;
  std::vector<IterationStats> Iterations;
  std::vector<RuleStats> Rules;
  double Seconds = 0.0;
  // Phase totals across all iterations (documented in docs/BENCHMARKS.md;
  // bench rows surface them as rewrite_search_sec etc.).
  double SearchSec = 0.0;
  double ApplySec = 0.0;
  double RebuildSec = 0.0;

  size_t numIterations() const { return Iterations.size(); }
};

/// Equality-saturation driver with backoff scheduling.
class Runner {
public:
  explicit Runner(RunnerLimits Limits = {}) : Limits(Limits) {}

  /// Runs the compiled database \p Rules on \p G to saturation or until
  /// fuel runs out.
  RunnerReport run(EGraph &G, const RuleSet &Rules) const;

  /// Convenience overload: compiles \p Rules for this run. Callers running
  /// many saturation rounds over one database (the Synthesizer main loop)
  /// should compile a RuleSet once and use the overload above.
  RunnerReport run(EGraph &G, const std::vector<Rewrite> &Rules) const;

  /// Like run(), but also exports the final continuation state into
  /// \p CursorsOut (the warm-start capture path). Exporting is pure
  /// bookkeeping: the run itself is unchanged.
  RunnerReport run(EGraph &G, const RuleSet &Rules,
                   RunnerCursors &CursorsOut) const;

  /// Resumes a previously captured run: per-rule backoff and search-cursor
  /// state come from \p Cursors and the iteration counter continues at
  /// Cursors.IterationsDone (so IterLimit is an *absolute* budget across
  /// the original run plus the resume, and pending bans expire on
  /// schedule). \p Cursors is updated in place to the new final state.
  /// Requires Cursors.Rules.size() == Rules.rules().size(); the caller
  /// validates blob-derived cursors against the database before calling.
  /// The report covers only the resumed segment.
  RunnerReport resume(EGraph &G, const RuleSet &Rules,
                      RunnerCursors &Cursors) const;

private:
  RunnerReport runImpl(EGraph &G, const RuleSet &Rules,
                       const RunnerCursors *In, RunnerCursors *Out) const;

  RunnerLimits Limits;
};

} // namespace shrinkray

#endif // SHRINKRAY_EGRAPH_RUNNER_H
