//===-- egraph/Runner.h - Equality saturation driver ------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives equality saturation: repeatedly matches every rewrite against the
/// e-graph and applies all matches, until the graph saturates (no rule can
/// change it) or a fuel limit is hit (paper Fig. 5: the `fuel` argument
/// bounding iterative search). A backoff scheduler keeps explosive rules
/// (e.g. associativity) from starving the rest.
///
/// Search is incremental after the first iteration: each rule records the
/// graph generation of its last applied search, and subsequent searches
/// scan only the classes the e-graph reports dirty since then (touched
/// classes plus their ancestor closure — see EGraph::takeDirtySince),
/// intersected with the operator-head index for the rule's root. When the
/// dirty closure covers most of the graph the Runner falls back to a plain
/// indexed search, which costs the same and skips the set bookkeeping.
/// Saturation cost is therefore proportional to change, not graph size.
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_EGRAPH_RUNNER_H
#define SHRINKRAY_EGRAPH_RUNNER_H

#include "egraph/Rewrite.h"

#include <vector>

namespace shrinkray {

/// Fuel limits for a saturation run.
struct RunnerLimits {
  size_t IterLimit = 128;       ///< max saturation iterations (fold
                                ///< extension linearizes one element per
                                ///< iteration, so chains need ~n of fuel)
  size_t NodeLimit = 200000;    ///< stop when the graph exceeds this size
  double TimeLimitSec = 60.0;   ///< wall-clock budget
  size_t MatchLimit = 20000;    ///< per-rule matches/iteration before backoff
  size_t BanLengthIters = 3;    ///< initial ban length when a rule overflows
};

/// Why a run stopped.
enum class StopReason { Saturated, IterLimit, NodeLimit, TimeLimit };

/// Per-iteration statistics.
struct IterationStats {
  size_t Applied = 0;   ///< matches that changed the graph
  size_t Matches = 0;   ///< total matches found
  size_t Nodes = 0;     ///< e-nodes after the iteration
  size_t Classes = 0;   ///< e-classes after the iteration
  double Seconds = 0.0; ///< wall time of this iteration (search+apply+rebuild)
};

/// Per-rule statistics accumulated across the whole run, so regressions in
/// a single rule's search or apply cost are visible in bench JSON.
struct RuleStats {
  std::string Name;
  double SearchSec = 0.0;         ///< total time searching this rule
  double ApplySec = 0.0;          ///< total time applying its matches
  size_t Matches = 0;             ///< matches found (incl. re-found)
  size_t Applied = 0;             ///< matches that changed the graph
  size_t FullSearches = 0;        ///< searches over all indexed candidates
  size_t IncrementalSearches = 0; ///< searches restricted to dirty classes
};

/// Result of a saturation run.
struct RunnerReport {
  StopReason Stop = StopReason::Saturated;
  std::vector<IterationStats> Iterations;
  std::vector<RuleStats> Rules;
  double Seconds = 0.0;

  size_t numIterations() const { return Iterations.size(); }
};

/// Equality-saturation driver with backoff scheduling.
class Runner {
public:
  explicit Runner(RunnerLimits Limits = {}) : Limits(Limits) {}

  /// Runs \p Rules on \p G to saturation or until fuel runs out.
  RunnerReport run(EGraph &G, const std::vector<Rewrite> &Rules) const;

private:
  RunnerLimits Limits;
};

} // namespace shrinkray

#endif // SHRINKRAY_EGRAPH_RUNNER_H
