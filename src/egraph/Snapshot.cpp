//===-- egraph/Snapshot.cpp - E-graph snapshot serialization --------------===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EGraph::serialize / EGraph::deserialize: byte-exact snapshot and
/// warm-start restore of the whole logical e-graph state. The format is a
/// fixed header (magic, version, payload length, FNV-1a checksum) over one
/// flat payload:
///
///   u32 NumIds                     -- union-find size == class-table size
///   u32 RawParent[NumIds]          -- verbatim forest slots (compression
///                                     state included, so find() chains are
///                                     identical after restore)
///   u64 Gen, u64 DirtyFloor
///   u32 NumLiveClasses
///   per live class, ascending id:
///     u32 Id
///     analysis: u8 HasConst, f64 Const, u8 IsInt
///     u32 NumNodes,   each: Op, u32 Arity, u32 Child[Arity]
///     u32 NumParents, each: parent ENode (same encoding), u32 ParentClass
///   u64 DirtyLogLen, each entry: u64 Gen, u32 ClassId
///
/// E-nodes and parent entries are stored with their *raw* (possibly stale,
/// non-canonical) child ids: queries canonicalize through find() on the
/// fly, so preserving the raw forms — rather than re-canonicalizing during
/// serialization — is what makes restore + continue bit-identical to an
/// uninterrupted run. The hash-consing memo and the operator-head index
/// are not stored: both are pure functions of the class tables and are
/// rebuilt during restore (their query results are order-insensitive —
/// classesWithOp() sorts, memo values are find()'d on use).
///
/// Ops serialize by kind tag plus payload; Symbol payloads serialize as
/// their spellings because intern ids are process-local.
///
/// deserialize() never asserts on malformed bytes: every length, id, kind,
/// and cross-reference is validated and a diagnostic returned instead, so
/// a truncated or bit-flipped snapshot file degrades to a clean error.
///
//===----------------------------------------------------------------------===//

#include "egraph/EGraph.h"
#include "egraph/SnapshotCodec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

using namespace shrinkray;

namespace {

using snapcodec::Reader;
using snapcodec::Writer;
using snapcodec::fnv1a;

/// Header: a 7-byte format prefix followed by one format-version byte.
/// Bumping the version is how incompatible payload changes are shipped:
/// deserialize() rejects any other version with a distinct diagnostic, so
/// stale snapshot-tier blobs written by an older build degrade to clean
/// cache misses instead of misparses. Version history:
///   '1'  PR 5 original payload
///   '2'  identical payload; bumped with the warm-start tier so resume
///        consumers can trust that cursor/extraction blobs paired with the
///        graph were produced by a resume-aware writer
constexpr char SnapshotMagicPrefix[7] = {'S', 'R', 'A', 'Y', 'E', 'G', 'R'};
constexpr char SnapshotVersion = '2';

} // namespace

void EGraph::serialize(std::ostream &Os) const {
  assert(!isDirty() && "serialize on an unrebuilt graph");

  Writer W;
  const uint32_t NumIds = static_cast<uint32_t>(Classes.size());
  W.u32(NumIds);
  for (uint32_t Id = 0; Id < NumIds; ++Id)
    W.u32(UF.rawParent(Id));
  W.u64(Gen);
  W.u64(DirtyFloor);

  W.u32(static_cast<uint32_t>(LiveClasses));
  for (uint32_t Id = 0; Id < NumIds; ++Id) {
    const EClass *C = Classes[Id].get();
    if (!C)
      continue;
    W.u32(Id);
    W.u8(C->Data.NumConst.has_value() ? 1 : 0);
    W.f64(C->Data.NumConst.value_or(0.0));
    W.u8(C->Data.NumIsInt ? 1 : 0);
    W.u32(static_cast<uint32_t>(C->Nodes.size()));
    for (const ENode &N : C->Nodes)
      W.node(N);
    W.u32(static_cast<uint32_t>(C->Parents.size()));
    for (const auto &[PNode, PClass] : C->Parents) {
      W.node(PNode);
      W.u32(PClass);
    }
  }

  W.u64(DirtyLog.size());
  for (const auto &[G_, Id] : DirtyLog) {
    W.u64(G_);
    W.u32(Id);
  }

  const std::string &Payload = W.bytes();
  uint64_t Size = Payload.size();
  uint64_t Hash = fnv1a(Payload);
  Os.write(SnapshotMagicPrefix, sizeof SnapshotMagicPrefix);
  Os.write(&SnapshotVersion, 1);
  Os.write(reinterpret_cast<const char *>(&Size), sizeof Size);
  Os.write(reinterpret_cast<const char *>(&Hash), sizeof Hash);
  Os.write(Payload.data(), static_cast<std::streamsize>(Payload.size()));
}

std::string EGraph::deserialize(std::istream &Is) {
  if (!Classes.empty() || Gen != 0)
    return "deserialize target must be a fresh e-graph";

  // --- Header: magic, length, checksum --------------------------------
  char Magic[sizeof SnapshotMagicPrefix + 1];
  if (!Is.read(Magic, sizeof Magic) ||
      std::memcmp(Magic, SnapshotMagicPrefix, sizeof SnapshotMagicPrefix) != 0)
    return "not an e-graph snapshot (bad magic)";
  if (Magic[sizeof SnapshotMagicPrefix] != SnapshotVersion)
    return "unsupported e-graph snapshot format version";
  uint64_t Size = 0, Hash = 0;
  if (!Is.read(reinterpret_cast<char *>(&Size), sizeof Size) ||
      !Is.read(reinterpret_cast<char *>(&Hash), sizeof Hash))
    return "truncated snapshot header";
  if (Size > (uint64_t(1) << 36))
    return "snapshot payload length implausible";
  // Chunked read: memory grows only with bytes that actually arrive, so
  // a corrupted (but sub-cap) length field fails with a diagnostic at
  // the stream's real end instead of throwing bad_alloc up front.
  std::string Payload;
  for (uint64_t Left = Size; Left > 0;) {
    const size_t N =
        static_cast<size_t>(std::min<uint64_t>(Left, uint64_t(1) << 22));
    const size_t Old = Payload.size();
    Payload.resize(Old + N);
    if (!Is.read(Payload.data() + Old, static_cast<std::streamsize>(N)))
      return "truncated snapshot payload";
    Left -= N;
  }
  if (fnv1a(Payload) != Hash)
    return "snapshot checksum mismatch";

  // --- Payload --------------------------------------------------------
  Reader R(std::move(Payload));
  std::string Err;

  const uint32_t NumIds = R.u32();
  if (!R.fits(NumIds, sizeof(uint32_t)))
    return "id count exceeds payload";
  std::vector<EClassId> RawParents(NumIds);
  for (uint32_t Id = 0; Id < NumIds; ++Id) {
    RawParents[Id] = R.u32();
    if (RawParents[Id] >= NumIds && R.ok())
      return "union-find parent out of range";
  }
  // Every chain must reach a root (no cycles): resolve iteratively with a
  // visited-state array so validation is linear.
  {
    std::vector<uint8_t> State(NumIds, 0); // 0 new, 1 on stack, 2 done
    std::vector<uint32_t> Stack;
    for (uint32_t Id = 0; Id < NumIds && R.ok(); ++Id) {
      uint32_t Cur = Id;
      while (State[Cur] == 0 && RawParents[Cur] != Cur) {
        State[Cur] = 1;
        Stack.push_back(Cur);
        Cur = RawParents[Cur];
        if (State[Cur] == 1)
          return "union-find cycle";
      }
      State[Cur] = 2;
      for (uint32_t S : Stack)
        State[S] = 2;
      Stack.clear();
    }
  }

  const uint64_t SnapGen = R.u64();
  const uint64_t SnapFloor = R.u64();
  if (SnapFloor > SnapGen && R.ok())
    return "dirty floor beyond generation counter";

  const uint32_t NumLive = R.u32();
  if (!R.ok())
    return "truncated snapshot payload";
  if (NumLive > NumIds)
    return "live-class count exceeds id space";

  std::vector<std::unique_ptr<EClass>> NewClasses(NumIds);
  uint32_t PrevId = 0;
  bool FirstClass = true;
  size_t NewLiveNodes = 0;
  for (uint32_t I = 0; I < NumLive; ++I) {
    uint32_t Id = R.u32();
    if (!R.ok() || Id >= NumIds)
      return "class id out of range";
    if (!FirstClass && Id <= PrevId)
      return "class ids not strictly ascending";
    FirstClass = false;
    PrevId = Id;
    if (RawParents[Id] != Id)
      return "live class is not a union-find root";

    auto C = std::make_unique<EClass>();
    C->Id = Id;
    bool HasConst = R.u8() != 0;
    double Const = R.f64();
    bool IsInt = R.u8() != 0;
    if (HasConst) {
      if (std::isnan(Const))
        return "NaN class constant";
      C->Data.NumConst = Const;
    }
    C->Data.NumIsInt = IsInt;

    uint32_t NumNodes = R.u32();
    // Minimum e-node encoding: 1-byte op kind + 4-byte arity.
    if (!R.ok() || !R.fits(NumNodes, 5))
      return "truncated snapshot payload";
    C->Nodes.reserve(NumNodes);
    for (uint32_t N = 0; N < NumNodes; ++N) {
      std::optional<ENode> Node = R.node(NumIds, Err);
      if (!Node)
        return Err.empty() ? "truncated e-node" : Err;
      C->Nodes.push_back(std::move(*Node));
    }
    NewLiveNodes += C->Nodes.size();

    uint32_t NumParents = R.u32();
    // Minimum parent encoding: an e-node (5) + a 4-byte class id.
    if (!R.ok() || !R.fits(NumParents, 9))
      return "truncated snapshot payload";
    C->Parents.reserve(NumParents);
    for (uint32_t P = 0; P < NumParents; ++P) {
      std::optional<ENode> Node = R.node(NumIds, Err);
      if (!Node)
        return Err.empty() ? "truncated parent e-node" : Err;
      uint32_t PClass = R.u32();
      if (!R.ok() || PClass >= NumIds)
        return "parent class id out of range";
      C->Parents.emplace_back(std::move(*Node), PClass);
    }
    NewClasses[Id] = std::move(C);
  }

  const uint64_t LogLen = R.u64();
  // Each entry is a u64 generation + u32 class id.
  if (!R.ok() || !R.fits(LogLen, 12))
    return "truncated snapshot payload";
  std::vector<std::pair<uint64_t, EClassId>> NewLog;
  NewLog.reserve(LogLen);
  uint64_t PrevGen = 0;
  for (uint64_t I = 0; I < LogLen; ++I) {
    uint64_t G_ = R.u64();
    uint32_t Id = R.u32();
    if (!R.ok())
      return "truncated dirty log";
    if (G_ <= PrevGen || G_ > SnapGen)
      return "dirty-log generations not strictly ascending";
    if (Id >= NumIds)
      return "dirty-log class id out of range";
    PrevGen = G_;
    NewLog.emplace_back(G_, Id);
  }
  if (!R.ok() || !R.atEnd())
    return "trailing bytes after snapshot payload";

  // --- Cross-validate and rebuild the derived indexes -----------------
  // Install the forest first so canonicalize()/find() work below; all
  // remaining failures still leave *this empty (reset before returning).
  UnionFind NewUF;
  NewUF.restoreRaw(std::move(RawParents));
  for (uint32_t Id = 0; Id < NumIds; ++Id)
    if (!NewClasses[NewUF.find(Id)])
      return "id resolves to a dead class";

  std::unordered_map<ENode, EClassId, ENodeHash> NewMemo;
  std::unordered_map<Op, std::vector<EClassId>> NewOpIndex;
  for (uint32_t Id = 0; Id < NumIds; ++Id) {
    const EClass *C = NewClasses[Id].get();
    if (!C)
      continue;
    for (const ENode &N : C->Nodes) {
      ENode Canon = N;
      for (EClassId &Kid : Canon.Children)
        Kid = NewUF.find(Kid);
      auto [It, Inserted] = NewMemo.emplace(std::move(Canon), Id);
      if (!Inserted && It->second != Id)
        return "congruent e-nodes in distinct classes";
      NewOpIndex[N.Operator].push_back(Id);
    }
  }

  UF = std::move(NewUF);
  Classes = std::move(NewClasses);
  Memo = std::move(NewMemo);
  OpIndex = std::move(NewOpIndex);
  Worklist.clear();
  DirtyLog = std::move(NewLog);
  Gen = SnapGen;
  DirtyFloor = SnapFloor;
  PreparedGen = 0;
  LiveClasses = NumLive;
  LiveNodes = NewLiveNodes;

  // Full structural cross-validation. The checksum is integrity, not
  // authenticity: a decodable payload can still describe an inconsistent
  // graph (a parent list missing a real edge, congruent nodes the memo
  // rebuild happened not to collide, a parent entry naming the wrong
  // class). Those must be rejected here as the contract promises, not
  // discovered as silently-wrong saturation later. Same asymptotic cost
  // as the memo rebuild above, O(nodes * arity). (Analysis *values* are
  // trusted as stored — recomputing joined constants across cycles is
  // not reconstructible from the final state.)
  std::string Inv = checkInvariants();
  if (!Inv.empty()) {
    UF = UnionFind();
    Classes.clear();
    Memo.clear();
    OpIndex.clear();
    DirtyLog.clear();
    Gen = 0;
    DirtyFloor = 0;
    LiveClasses = 0;
    LiveNodes = 0;
    return "inconsistent snapshot graph: " + Inv;
  }
  return "";
}
