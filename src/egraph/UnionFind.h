//===-- egraph/UnionFind.h - Disjoint-set forest ----------------*- C++ -*-===//
//
// Part of the ShrinkRay reproduction. MIT licensed; see README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disjoint-set forest underlying e-class ids. Uses path halving on find;
/// union order is decided by the caller (the e-graph keeps the class with
/// more e-nodes as the root to minimize data movement).
///
//===----------------------------------------------------------------------===//

#ifndef SHRINKRAY_EGRAPH_UNIONFIND_H
#define SHRINKRAY_EGRAPH_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace shrinkray {

/// E-class id. Ids are dense and never reused; non-canonical ids remain
/// valid arguments to find() forever.
using EClassId = uint32_t;

/// Disjoint-set forest over EClassIds.
class UnionFind {
public:
  /// Creates a fresh singleton set and returns its id.
  EClassId makeSet() {
    EClassId Id = static_cast<EClassId>(Parents.size());
    Parents.push_back(Id);
    return Id;
  }

  size_t size() const { return Parents.size(); }

  /// Canonical representative of \p Id (with path halving). On a fully
  /// compressed forest (see compressAll) this performs no writes, which is
  /// what makes concurrent find() calls from the Runner's parallel search
  /// phase race-free: path halving only fires on chains of length >= 2,
  /// and compressAll leaves none.
  EClassId find(EClassId Id) const {
    assert(Id < Parents.size() && "id out of range");
    while (Parents[Id] != Id) {
      EClassId Grand = Parents[Parents[Id]];
      if (Parents[Id] != Grand)
        Parents[Id] = Grand;
      Id = Grand;
    }
    return Id;
  }

  /// Compresses every path so each id points directly at its root. After
  /// this, find() is write-free until the next unite() — required before
  /// handing the forest to concurrent readers.
  void compressAll() const {
    for (EClassId Id = 0; Id < Parents.size(); ++Id)
      Parents[Id] = find(Id);
  }

  /// Makes \p Root the representative of \p Child's set. Both must already
  /// be canonical and distinct; the caller chooses orientation.
  void unite(EClassId Root, EClassId Child) {
    assert(find(Root) == Root && "Root not canonical");
    assert(find(Child) == Child && "Child not canonical");
    assert(Root != Child && "uniting a set with itself");
    Parents[Child] = Root;
  }

  /// Raw parent slot of \p Id, possibly non-canonical and uncompressed.
  /// Snapshot serialization stores these verbatim so a restored forest is
  /// bit-identical, not merely equivalent up to path compression.
  EClassId rawParent(EClassId Id) const {
    assert(Id < Parents.size() && "id out of range");
    return Parents[Id];
  }

  /// Replaces the whole forest with \p Raw (snapshot restore). The caller
  /// has validated that every slot is in range and every chain reaches a
  /// root — see EGraph::deserialize.
  void restoreRaw(std::vector<EClassId> Raw) { Parents = std::move(Raw); }

private:
  // mutable: find() compresses paths but is logically const.
  mutable std::vector<EClassId> Parents;
};

} // namespace shrinkray

#endif // SHRINKRAY_EGRAPH_UNIONFIND_H
