//===-- egraph/Rewrite.cpp - Rewrite rules --------------------------------===//

#include "egraph/Rewrite.h"

using namespace shrinkray;

Rewrite::Rewrite(std::string Name, std::string_view Lhs, std::string_view Rhs)
    : Name(std::move(Name)), Lhs(Pattern::parse(Lhs)),
      Rhs(Pattern::parse(Rhs)) {}

Rewrite::Rewrite(std::string Name, std::string_view Lhs, std::string_view Rhs,
                 Guard Condition)
    : Name(std::move(Name)), Lhs(Pattern::parse(Lhs)),
      Rhs(Pattern::parse(Rhs)), Condition(std::move(Condition)) {}

Rewrite::Rewrite(std::string Name, std::string_view Lhs, Applier Apply)
    : Name(std::move(Name)), Lhs(Pattern::parse(Lhs)),
      Apply(std::move(Apply)) {}

static std::vector<std::pair<EClassId, Subst>>
filterByGuard(const Rewrite::Guard &Condition, const EGraph &G,
              std::vector<std::pair<EClassId, Subst>> Matches) {
  if (!Condition)
    return Matches;
  std::vector<std::pair<EClassId, Subst>> Kept;
  Kept.reserve(Matches.size());
  for (auto &M : Matches)
    if (Condition(G, M.second))
      Kept.push_back(std::move(M));
  return Kept;
}

std::vector<std::pair<EClassId, Subst>>
Rewrite::search(const EGraph &G) const {
  return filterByGuard(Condition, G, Lhs.search(G));
}

std::vector<std::pair<EClassId, Subst>>
Rewrite::searchIn(const EGraph &G,
                  const std::vector<EClassId> &Candidates) const {
  return filterByGuard(Condition, G, Lhs.searchIn(G, Candidates));
}

bool Rewrite::apply(EGraph &G, EClassId Root, const Subst &S) const {
  return applyMatch(G, Root, S) == ApplyOutcome::Changed;
}

Rewrite::ApplyOutcome Rewrite::applyMatch(EGraph &G, EClassId Root,
                                          const Subst &S) const {
  if (Apply) {
    std::optional<EClassId> New = Apply(G, Root, S);
    if (!New)
      return ApplyOutcome::Skipped;
    return G.merge(Root, *New).second ? ApplyOutcome::Changed
                                      : ApplyOutcome::Unchanged;
  }
  assert(Rhs && "rewrite has neither an RHS pattern nor an applier");
  EClassId New = Rhs->instantiate(G, S);
  return G.merge(Root, New).second ? ApplyOutcome::Changed
                                   : ApplyOutcome::Unchanged;
}

Rewrite::MatchPlan Rewrite::planMatch(const EGraph &G, EClassId Root,
                                      const Subst &S) const {
  MatchPlan Plan;
  if (Apply)
    return Plan; // NeedsApplier
  assert(Rhs && "rewrite has neither an RHS pattern nor an applier");
  std::optional<EClassId> Resolved = Rhs->resolve(G, S);
  if (!Resolved) {
    Plan.K = MatchPlan::Kind::NeedsNodes;
    return Plan;
  }
  Plan.RhsClass = *Resolved;
  Plan.K = *Resolved == G.find(Root) ? MatchPlan::Kind::MemoHit
                                     : MatchPlan::Kind::PureMerge;
  return Plan;
}

size_t Rewrite::run(EGraph &G) const {
  size_t Changed = 0;
  for (const auto &[Root, S] : search(G))
    if (apply(G, Root, S))
      ++Changed;
  G.rebuild();
  return Changed;
}

Rewrite::Guard shrinkray::isConst(std::string_view Var) {
  Symbol V{Var};
  return [V](const EGraph &G, const Subst &S) {
    return G.data(S[V]).NumConst.has_value();
  };
}

Rewrite::Guard
shrinkray::areConst(std::initializer_list<std::string_view> Vars) {
  std::vector<Symbol> Syms;
  for (std::string_view V : Vars)
    Syms.emplace_back(V);
  return [Syms](const EGraph &G, const Subst &S) {
    for (Symbol V : Syms)
      if (!G.data(S[V]).NumConst)
        return false;
    return true;
  };
}

Rewrite::Guard shrinkray::isNonzeroConst(std::string_view Var) {
  Symbol V{Var};
  return [V](const EGraph &G, const Subst &S) {
    const AnalysisData &D = G.data(S[V]);
    return D.NumConst.has_value() && *D.NumConst != 0.0;
  };
}

Rewrite::Guard shrinkray::guardAnd(Rewrite::Guard A, Rewrite::Guard B) {
  return [A = std::move(A), B = std::move(B)](const EGraph &G,
                                              const Subst &S) {
    return A(G, S) && B(G, S);
  };
}

double shrinkray::constValue(const EGraph &G, const Subst &S,
                             std::string_view Var) {
  const AnalysisData &D = G.data(S[Symbol{Var}]);
  assert(D.NumConst && "constValue on a non-constant class");
  return *D.NumConst;
}
