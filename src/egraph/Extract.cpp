//===-- egraph/Extract.cpp - Cost-based extraction ------------------------===//
//
// Two engines per problem (one-best, k-best): a worklist engine that
// propagates cost derivations upward along the e-graph's parent index, and
// a whole-graph fixed-point oracle used by the differential tests. The
// engines share the deterministic tie-break (and, for k-best, the per-class
// lazy combination), so on any graph they produce bit-identical results;
// they differ in *scheduling*, which is where incrementality bugs would
// live.
//
//===----------------------------------------------------------------------===//

#include "egraph/Extract.h"
#include "egraph/SnapshotCodec.h"

#include <cassert>
#include <queue>

using namespace shrinkray;

//===----------------------------------------------------------------------===//
// Shared helpers: deterministic orders, node costing, lazy k-best combine
//===----------------------------------------------------------------------===//

namespace {

/// Three-way total order on operators (kind, then payload). Symbol payloads
/// compare by spelling so the order does not depend on interning order.
int opCompare(const Op &A, const Op &B) {
  if (A.kind() != B.kind())
    return A.kind() < B.kind() ? -1 : 1;
  switch (A.kind()) {
  case OpKind::Int:
    if (A.intValue() != B.intValue())
      return A.intValue() < B.intValue() ? -1 : 1;
    return 0;
  case OpKind::Float:
    if (A.floatValue() != B.floatValue())
      return A.floatValue() < B.floatValue() ? -1 : 1;
    return 0;
  case OpKind::Var:
  case OpKind::External:
  case OpKind::OpRef:
  case OpKind::PatVar:
    return A.symbol().str().compare(B.symbol().str());
  default:
    return 0;
  }
}

/// Three-way total order on e-nodes under the current union-find: operator,
/// then arity, then canonical child ids left to right. Distinct canonical
/// nodes never compare equal, so using this to break cost ties makes the
/// extraction fixpoint unique — the property the differential tests pin.
int enodeCompare(const EGraph &G, const ENode &A, const ENode &B) {
  if (int C = opCompare(A.Operator, B.Operator))
    return C;
  if (A.Children.size() != B.Children.size())
    return A.Children.size() < B.Children.size() ? -1 : 1;
  for (size_t I = 0; I < A.Children.size(); ++I) {
    EClassId CA = G.find(A.Children[I]), CB = G.find(B.Children[I]);
    if (CA != CB)
      return CA < CB ? -1 : 1;
  }
  return 0;
}

/// Sentinel for "no finite-cost term derived yet" in the worklist
/// engine's dense cost table. Cost functions are finite by contract
/// (monotone sums/maxes of finite leaf costs), so infinity never denotes
/// a real cost.
constexpr double UnsetCost = std::numeric_limits<double>::infinity();

/// Cost-table lookup, overloaded so nodeCost serves both engines: the
/// worklist engine keys a dense vector by class id (the hashed map's
/// find() was a measurable slice of extraction profiles), the reference
/// oracle keeps the map.
inline const double *findCost(const std::vector<double> &Costs, EClassId Id) {
  return Id < Costs.size() && Costs[Id] < UnsetCost ? &Costs[Id] : nullptr;
}
inline const double *findCost(const std::unordered_map<EClassId, double> &Costs,
                              EClassId Id) {
  auto It = Costs.find(Id);
  return It == Costs.end() ? nullptr : &It->second;
}

/// Cost of \p Node given the per-class cost table, or nullopt while any
/// child is still unextractable. Children are resolved through find(), so
/// stale node forms cost correctly. \p Kids is caller-owned scratch —
/// relaxation calls this once per (class, node) visit, and a fresh
/// allocation per call dominated the one-best refresh profile.
template <typename CostTable>
std::optional<double> nodeCost(const EGraph &G, const CostFn &Fn,
                               const CostTable &Costs, const ENode &Node,
                               std::vector<double> &Kids) {
  Kids.clear();
  for (EClassId Kid : Node.Children) {
    const double *C = findCost(Costs, G.find(Kid));
    if (!C)
      return std::nullopt;
    Kids.push_back(*C);
  }
  return Fn.cost(Node.Operator, Kids);
}

using KTable = std::unordered_map<EClassId, std::vector<ExtractCandidate>>;

/// The candidate list of \p Id, or nullptr while the class has none.
const std::vector<ExtractCandidate> *candList(const KTable &Table,
                                              const EGraph &G, EClassId Id) {
  auto It = Table.find(G.find(Id));
  if (It == Table.end() || It->second.empty())
    return nullptr;
  return &It->second;
}

/// Recomputes the up-to-k cheapest distinct candidates of class \p Id from
/// its children's current candidate lists: one best-first frontier heap
/// over *all* the class's e-nodes ("cube pruning" / lazy k-shortest paths),
/// popping combinations in ascending (cost, node index, combination index)
/// order and deduplicating by value hash, so the k-th distinct program is
/// found after O(k) pops plus duplicates instead of materializing k
/// candidates per node and merging. Deterministic: the heap order is a
/// total order, so ties resolve identically regardless of caller.
///
/// This is the *oracle's* term-materializing combine; the worklist engine
/// runs the row-based KBestExtractor::combineClass, which shares the heap
/// order and dedup semantics but allocates no terms — the differential
/// tests pin the two against each other.
std::vector<ExtractCandidate> combineClass(const EGraph &G, const CostFn &Fn,
                                           size_t K, EClassId Id,
                                           const KTable &Table) {
  const std::vector<ENode> &Nodes = G.eclass(Id).Nodes;

  // Resolved child candidate lists, flattened across nodes; a node with a
  // candidate-less child stays unusable this round (Arity == NotUsable).
  constexpr size_t NotUsable = static_cast<size_t>(-1);
  std::vector<const std::vector<ExtractCandidate> *> ChildLists;
  std::vector<std::pair<size_t, size_t>> Span(Nodes.size()); // offset, arity
  for (size_t N = 0; N < Nodes.size(); ++N) {
    const ENode &Node = Nodes[N];
    Span[N] = {ChildLists.size(), Node.Children.size()};
    for (EClassId Kid : Node.Children) {
      const std::vector<ExtractCandidate> *L = candList(Table, G, Kid);
      if (!L) {
        ChildLists.resize(Span[N].first);
        Span[N].second = NotUsable;
        break;
      }
      ChildLists.push_back(L);
    }
  }
  auto kidCand = [&](size_t N, size_t I,
                     const std::vector<size_t> &Ix) -> const ExtractCandidate & {
    return (*ChildLists[Span[N].first + I])[Ix[I]];
  };

  std::vector<double> CostScratch;
  auto comboCost = [&](size_t N, const std::vector<size_t> &Ix) {
    CostScratch.resize(Ix.size());
    for (size_t I = 0; I < Ix.size(); ++I)
      CostScratch[I] = kidCand(N, I, Ix).Cost;
    return Fn.cost(Nodes[N].Operator, CostScratch);
  };

  // Frontier items carry the position they last bumped; successors only
  // bump positions >= Bump, which generates every combination exactly once
  // (canonical non-decreasing bump order) without a visited set.
  struct Item {
    double Cost;
    size_t NodeIdx;
    size_t Bump;
    std::vector<size_t> Ix;
  };
  auto Later = [](const Item &A, const Item &B) {
    if (A.Cost != B.Cost)
      return A.Cost > B.Cost;
    if (A.NodeIdx != B.NodeIdx)
      return A.NodeIdx > B.NodeIdx;
    return A.Ix > B.Ix;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(Later)> Frontier(
      Later);
  for (size_t N = 0; N < Nodes.size(); ++N) {
    if (Span[N].second == NotUsable)
      continue;
    std::vector<size_t> First(Span[N].second, 0);
    double Cost = comboCost(N, First);
    Frontier.push({Cost, N, 0, std::move(First)});
  }

  // A popped combination equals an accepted candidate iff the operator and
  // the child candidate terms match under value equality — checkable
  // without materializing the term, so duplicates cost no allocation. The
  // hash prefilter keeps the scan to (expected) zero term comparisons.
  auto isDupOf = [&](const ExtractCandidate &U, const Op &O, size_t N,
                     const std::vector<size_t> &Ix) {
    const Term &B = *U.T;
    bool ONum = O.kind() == OpKind::Int || O.kind() == OpKind::Float;
    bool BNum = B.kind() == OpKind::Int || B.kind() == OpKind::Float;
    if (ONum || BNum)
      return ONum && BNum && O.numericValue() == B.op().numericValue();
    if (O != B.op() || B.numChildren() != Ix.size())
      return false;
    for (size_t I = 0; I < Ix.size(); ++I)
      if (!termApproxEquals(kidCand(N, I, Ix).T, B.child(I), 0.0))
        return false;
    return true;
  };

  // The class's previous candidate list: in the fixed point's steady
  // state this pass re-derives exactly these candidates, so a 5-element
  // pointer-equality scan answers most term constructions without
  // touching the interner at all.
  const std::vector<ExtractCandidate> *Prev = nullptr;
  if (auto PrevIt = Table.find(Id); PrevIt != Table.end())
    Prev = &PrevIt->second;

  std::vector<ExtractCandidate> Out;
  std::vector<size_t> KidHashes;
  std::vector<const Term *> RawKids;
  while (!Frontier.empty() && Out.size() < K) {
    Item Top = Frontier.top();
    Frontier.pop();
    const ENode &Node = Nodes[Top.NodeIdx];
    const size_t Arity = Top.Ix.size();

    // O(arity): child candidates carry their value hashes already.
    KidHashes.resize(Arity);
    for (size_t I = 0; I < Arity; ++I)
      KidHashes[I] = kidCand(Top.NodeIdx, I, Top.Ix).ValueHash;
    size_t Hash = termValueHashNode(Node.Operator, KidHashes);
    bool Dup = false;
    for (const ExtractCandidate &U : Out)
      if (U.ValueHash == Hash &&
          isDupOf(U, Node.Operator, Top.NodeIdx, Top.Ix)) {
        Dup = true;
        break;
      }
    if (!Dup) {
      // Fixed-point passes re-derive the same candidates over and over;
      // resolve the term against last pass's list (structural identity:
      // same operator, pointer-equal children), then the interner's
      // lock-guarded probe, and only build a child vector when the term
      // really is new. The steady state allocates nothing.
      TermPtr T;
      if (Prev)
        for (const ExtractCandidate &P : *Prev) {
          const Term &PT = *P.T;
          if (P.ValueHash != Hash || PT.op() != Node.Operator ||
              PT.numChildren() != Arity)
            continue;
          bool Same = true;
          for (size_t I = 0; I < Arity; ++I)
            if (PT.child(I).get() != kidCand(Top.NodeIdx, I, Top.Ix).T.get()) {
              Same = false;
              break;
            }
          if (Same) {
            T = P.T;
            break;
          }
        }
      if (!T) {
        RawKids.resize(Arity);
        for (size_t I = 0; I < Arity; ++I)
          RawKids[I] = kidCand(Top.NodeIdx, I, Top.Ix).T.get();
        T = lookupTerm(Node.Operator, RawKids.data(), Arity);
      }
      if (!T) {
        std::vector<TermPtr> Kids(Arity);
        for (size_t I = 0; I < Arity; ++I)
          Kids[I] = kidCand(Top.NodeIdx, I, Top.Ix).T;
        T = makeTerm(Node.Operator, std::move(Kids));
      }
      Out.push_back({Top.Cost, std::move(T), Hash});
    }

    // Expand successors: bump one child index at a time, never before the
    // position this item bumped.
    for (size_t I = Top.Bump; I < Arity; ++I) {
      if (Top.Ix[I] + 1 >= ChildLists[Span[Top.NodeIdx].first + I]->size())
        continue;
      std::vector<size_t> Next = Top.Ix;
      ++Next[I];
      Frontier.push({comboCost(Top.NodeIdx, Next), Top.NodeIdx, I,
                     std::move(Next)});
    }
  }
  return Out;
}

/// Exact equality of candidate lists (cost, hash, then term structure).
bool listsEqual(const std::vector<ExtractCandidate> &A,
                const std::vector<ExtractCandidate> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].Cost != B[I].Cost || A[I].ValueHash != B[I].ValueHash ||
        !termEquals(A[I].T, B[I].T))
      return false;
  return true;
}

/// Shared build of the chosen-term tree from a choice table.
TermPtr buildFromChoices(
    const EGraph &G, const std::unordered_map<EClassId, ENode> &Choices,
    std::unordered_map<EClassId, TermPtr> &Memo, EClassId Id) {
  Id = G.find(Id);
  auto Hit = Memo.find(Id);
  if (Hit != Memo.end())
    return Hit->second;
  auto It = Choices.find(Id);
  assert(It != Choices.end() && "extracting from a class with no finite cost");
  const ENode &Node = It->second;
  std::vector<TermPtr> Kids;
  Kids.reserve(Node.Children.size());
  for (EClassId Kid : Node.Children)
    Kids.push_back(buildFromChoices(G, Choices, Memo, Kid));
  TermPtr T = makeTerm(Node.Operator, std::move(Kids));
  Memo.emplace(Id, T);
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// One-best extraction: worklist engine
//===----------------------------------------------------------------------===//

Extractor::Extractor(const EGraph &G, const CostFn &Fn) : G(G), Fn(Fn) {
  assert(!G.isDirty() && "extraction on a dirty e-graph");
  deriveFrom(G.classIds());
  SyncedGen = G.generation();
  // The lease keeps the Runner's dirty-log compaction from dropping the
  // suffix refresh() will request.
  DirtyLease = G.acquireDirtyLease(SyncedGen);
}

Extractor::~Extractor() { G.releaseDirtyLease(DirtyLease); }

namespace {

/// Erases every row of \p Table whose key is no longer canonical. Stale
/// rows are unreachable (lookups canonicalize through find() first), so
/// dropping them never changes results — but in long-lived sessions the
/// merge churn of many saturation rounds leaves tables dominated by
/// superseded keys. Callers sweep only when stale rows dominate
/// (amortized O(1) per refresh).
template <typename Map> void eraseStaleRows(const EGraph &G, Map &Table) {
  for (auto It = Table.begin(); It != Table.end();) {
    if (G.find(It->first) != It->first)
      It = Table.erase(It);
    else
      ++It;
  }
}

} // namespace

void Extractor::refresh() {
  assert(!G.isDirty() && "refresh on a dirty e-graph");
  if (G.generation() == SyncedGen) {
    G.updateDirtyLease(DirtyLease, SyncedGen);
    return;
  }
  // Only classes in the dirty closure can change their best term: a class
  // outside it gained no nodes, joined no merge, and every child of its
  // nodes kept its cost (else that child would be dirty and this class in
  // its ancestor closure).
  deriveFrom(G.takeDirtySince(SyncedGen));
  SyncedGen = G.generation();
  G.updateDirtyLease(DirtyLease, SyncedGen);
  BuildMemo.clear();
  if (CostsLive > 2 * G.numClasses()) {
    for (EClassId Id = 0; Id < Costs.size(); ++Id)
      if (Costs[Id] < UnsetCost && G.find(Id) != Id) {
        Costs[Id] = UnsetCost;
        --CostsLive;
      }
    eraseStaleRows(G, Choices);
  }
}

bool Extractor::relax(EClassId Id, const ENode &Node) {
  std::optional<double> C = nodeCost(G, Fn, Costs, Node, KidCostScratch);
  // A non-finite candidate cost (a degenerate cost function) cannot beat
  // or tie the UnsetCost sentinel meaningfully; treat it as unextractable.
  if (!C || !(*C < UnsetCost))
    return false;
  double &Slot = Costs[Id];
  bool Absent = !(Slot < UnsetCost);
  bool Better = Absent || *C < Slot;
  if (!Better && *C == Slot) {
    // Equal cost: adopt the candidate only if it is the smaller e-node, so
    // the final choice is the unique (cost, node) minimum. Stored forms may
    // be stale; enodeCompare resolves children through find().
    if (enodeCompare(G, Node, Choices.at(Id)) < 0) {
      Choices.insert_or_assign(Id, Node);
      return true;
    }
    return false;
  }
  if (!Better)
    return false;
  if (Absent)
    ++CostsLive;
  Slot = *C;
  Choices.insert_or_assign(Id, Node);
  return true;
}

void Extractor::deriveFrom(const std::vector<EClassId> &Seeds) {
  // The graph may have allocated ids since the last derivation; new slots
  // start unset. The id space never shrinks, so this never drops entries.
  if (Costs.size() < G.numIds())
    Costs.resize(G.numIds(), UnsetCost);
  std::vector<EClassId> WL;
  // Dense membership bytes (indexed by class id): the worklist churns
  // through every cost improvement, and a hashed set here showed up in
  // the refresh profile.
  std::vector<uint8_t> InWL(G.numIds(), 0);
  auto push = [&](EClassId Id) {
    if (!InWL[Id]) {
      InWL[Id] = 1;
      WL.push_back(Id);
    }
  };

  // Re-derive every seed from its full node set (a seed may have gained
  // nodes, absorbed a merge partner, or had a child's cost change), then
  // propagate improvements upward: a cost change at a class can only be
  // observed by the e-nodes that reference it, i.e. its parent index.
  for (EClassId S : Seeds) {
    EClassId Id = G.find(S);
    bool Improved = false;
    for (const ENode &Node : G.eclass(Id).Nodes)
      Improved = relax(Id, Node) || Improved;
    if (Improved)
      push(Id);
  }
  while (!WL.empty()) {
    EClassId Id = WL.back();
    WL.pop_back();
    InWL[Id] = 0;
    for (const auto &[PNode, PClass] : G.canonicalParents(Id))
      if (relax(PClass, PNode))
        push(PClass);
  }
}

std::optional<double> Extractor::bestCost(EClassId Id) const {
  const double *C = findCost(Costs, G.find(Id));
  if (!C)
    return std::nullopt;
  return *C;
}

TermPtr Extractor::extract(EClassId Id) const { return build(G.find(Id)); }

const ENode *Extractor::choiceNode(EClassId Id) const {
  auto It = Choices.find(G.find(Id));
  return It == Choices.end() ? nullptr : &It->second;
}

TermPtr Extractor::build(EClassId Id) const {
  return buildFromChoices(G, Choices, BuildMemo, Id);
}

//===----------------------------------------------------------------------===//
// One-best extraction: state save/restore (snapshot tier)
//===----------------------------------------------------------------------===//

Extractor::Extractor(RestoreTag, const EGraph &G, const CostFn &Fn)
    : G(G), Fn(Fn) {
  // Empty engine: no derivation. The lease is taken at the current
  // generation so the dirty-log suffix restoreState() will validate
  // against cannot be compacted away between construction and restore.
  SyncedGen = G.generation();
  DirtyLease = G.acquireDirtyLease(SyncedGen);
}

std::string Extractor::saveState() const {
  snapcodec::Writer W;
  W.u64(SyncedGen);
  // Rows in ascending class-id order (the dense table's natural order):
  // the blob must be a pure function of the logical state.
  W.u32(static_cast<uint32_t>(CostsLive));
  for (EClassId Id = 0; Id < Costs.size(); ++Id) {
    if (!(Costs[Id] < UnsetCost))
      continue;
    W.u32(Id);
    W.f64(Costs[Id]);
    W.node(Choices.at(Id));
  }
  return W.take();
}

std::string Extractor::restoreState(std::string_view Bytes) {
  snapcodec::Reader R{std::string(Bytes)};
  std::string Err;
  const uint64_t Gen = R.u64();
  if (!R.ok())
    return "truncated extraction state";
  // The blob only makes sense on the graph it was saved against, at the
  // exact generation it was saved at (the caller restores the graph
  // snapshot first, then this).
  if (Gen != G.generation())
    return "extraction state generation mismatch";
  const uint32_t NumRows = R.u32();
  // Minimum row: u32 id + f64 cost + 5-byte node.
  if (!R.ok() || !R.fits(NumRows, 17))
    return "truncated extraction state";
  const uint32_t NumIds = static_cast<uint32_t>(G.numIds());
  Costs.assign(NumIds, UnsetCost);
  CostsLive = 0;
  Choices.clear();
  uint32_t PrevId = 0;
  for (uint32_t I = 0; I < NumRows; ++I) {
    const uint32_t Id = R.u32();
    if (!R.ok() || Id >= NumIds)
      return "extraction state class id out of range";
    if (I != 0 && Id <= PrevId)
      return "extraction state rows not strictly ascending";
    PrevId = Id;
    if (G.find(Id) != Id)
      return "extraction state row keyed by a non-canonical class";
    const double Cost = R.f64();
    if (!R.ok() || !(Cost < UnsetCost))
      return "invalid extraction cost";
    std::optional<ENode> Choice = R.node(NumIds, Err);
    if (!Choice)
      return Err.empty() ? "truncated extraction choice" : Err;
    Costs[Id] = Cost;
    ++CostsLive;
    Choices.emplace(Id, std::move(*Choice));
  }
  if (!R.ok() || !R.atEnd())
    return "trailing bytes after extraction state";
  SyncedGen = Gen;
  G.updateDirtyLease(DirtyLease, SyncedGen);
  BuildMemo.clear();
  return "";
}

//===----------------------------------------------------------------------===//
// One-best extraction: fixed-point oracle
//===----------------------------------------------------------------------===//

ReferenceExtractor::ReferenceExtractor(const EGraph &G, const CostFn &Fn)
    : G(G) {
  assert(!G.isDirty() && "extraction on a dirty e-graph");
  // Fixpoint: (cost, choice) pairs only decrease and are bounded below, so
  // this terminates. Same tie-break as the worklist engine, so the unique
  // fixpoint — and therefore every extracted term — is bit-identical.
  bool Changed = true;
  std::vector<double> KidScratch;
  while (Changed) {
    Changed = false;
    for (EClassId Id : G.classIds()) {
      for (const ENode &Node : G.eclass(Id).Nodes) {
        std::optional<double> C = nodeCost(G, Fn, Costs, Node, KidScratch);
        if (!C)
          continue;
        auto It = Costs.find(Id);
        bool Better = It == Costs.end() || *C < It->second;
        if (!Better && *C == It->second) {
          ENode Canon = G.canonicalize(Node);
          if (enodeCompare(G, Canon, Choices.at(Id)) < 0) {
            Choices.insert_or_assign(Id, std::move(Canon));
            Changed = true;
          }
          continue;
        }
        if (!Better)
          continue;
        Costs[Id] = *C;
        Choices.insert_or_assign(Id, G.canonicalize(Node));
        Changed = true;
      }
    }
  }
}

std::optional<double> ReferenceExtractor::bestCost(EClassId Id) const {
  auto It = Costs.find(G.find(Id));
  if (It == Costs.end())
    return std::nullopt;
  return It->second;
}

TermPtr ReferenceExtractor::extract(EClassId Id) const {
  return build(G.find(Id));
}

const ENode *ReferenceExtractor::choiceNode(EClassId Id) const {
  auto It = Choices.find(G.find(Id));
  return It == Choices.end() ? nullptr : &It->second;
}

TermPtr ReferenceExtractor::build(EClassId Id) const {
  return buildFromChoices(G, Choices, BuildMemo, Id);
}

//===----------------------------------------------------------------------===//
// Top-k extraction: worklist engine
//===----------------------------------------------------------------------===//

KBestExtractor::KBestExtractor(const EGraph &G, const CostFn &Fn, size_t K,
                               size_t NumThreads)
    : G(G), Fn(Fn), K(K), Threads(resolveThreads(NumThreads)),
      OneBest(G, Fn) {
  assert(!G.isDirty() && "extraction on a dirty e-graph");
  assert(K >= 1 && "k must be positive");
  deriveFrom(G.classIds());
  SyncedGen = G.generation();
  DirtyLease = G.acquireDirtyLease(SyncedGen);
}

KBestExtractor::~KBestExtractor() { G.releaseDirtyLease(DirtyLease); }

void KBestExtractor::refresh() {
  assert(!G.isDirty() && "refresh on a dirty e-graph");
  if (G.generation() == SyncedGen) {
    G.updateDirtyLease(DirtyLease, SyncedGen);
    return;
  }
  OneBest.refresh(); // priorities and extractability must be current first
  deriveFrom(G.takeDirtySince(SyncedGen));
  SyncedGen = G.generation();
  G.updateDirtyLease(DirtyLease, SyncedGen);
  if (Table.size() > 2 * G.numClasses())
    eraseStaleRows(G, Table);
}

namespace {

/// Waves below this size run inline on the calling thread: dispatching a
/// handful of combines costs more in wake-ups than it saves. A property of
/// the wave (graph-dependent, not thread-count-dependent), so crossing it
/// never changes results.
constexpr size_t ParallelWaveThreshold = 64;

} // namespace

void KBestExtractor::deriveFrom(const std::vector<EClassId> &Seeds) {
  // Wave-scheduled worklist (docs/ARCHITECTURE.md, "Parallel k-best
  // extraction"). Each round selects the pending classes whose node
  // children are all settled (children first, so the common acyclic case
  // recombines every class exactly once), sorts them by (one-best cost,
  // id), and recombines them against the *frozen* candidate table —
  // combineClass is a pure function of (graph, table), so wave members
  // can run on worker threads, each writing its own result slot. Commits
  // then run serially in wave order, and parents of changed classes
  // rejoin the pending set. The schedule is a pure function of the
  // graph, so the table is bit-identical at every thread count; and
  // because candidate lists improve monotonically toward a unique least
  // fixpoint (the property the oracle differential tests pin), it agrees
  // with the serial priority-queue engine it replaced.
  //
  // Readiness is event-driven, not rescanned: a blocked class can only
  // become ready when a pending child commits (or when it is itself
  // re-enqueued), so each round rechecks exactly the classes one of those
  // events touched — the Recheck list. Chain-shaped graphs (flat CSG is
  // mostly chains) produce thousands of tiny waves, and a full
  // ready-scan of Pending per wave made the scheduler quadratic there:
  // ~1.8 s of a 2.4 s nintendo-slot derivation was the rescans alone.
  // Pending-set membership is a dense byte per class id, not a hashed
  // set: isReady probes it once per (node, child), which made the set
  // lookups themselves a measurable slice of the derivation profile.
  std::vector<uint8_t> Pending(G.numIds(), 0);
  size_t NumPending = 0;
  std::vector<EClassId> Recheck;
  // Fallback aid: min-heap of (one-best cost, id) with at least one live
  // entry per pending class (lazy deletion — entries of classes that left
  // the pending set are skipped on pop). One-best costs are fixed for the
  // whole derivation, so the heap's minimum over live entries is exactly
  // the deterministic (cost, id) minimum of Pending; without it every
  // cycle-fallback round rescans the full pending set, which on
  // cycle-heavy graphs (gear) costs more than the combines themselves.
  using PQItem = std::pair<double, EClassId>;
  std::priority_queue<PQItem, std::vector<PQItem>, std::greater<PQItem>>
      CheapestPending;
  auto enqueue = [&](EClassId Id) {
    Id = G.find(Id);
    // no finite cost => can never have candidates
    if (std::optional<double> C = OneBest.bestCost(Id)) {
      if (!Pending[Id]) {
        Pending[Id] = 1;
        ++NumPending;
        CheapestPending.emplace(*C, Id);
      }
      // Unconditional: a re-enqueue is a readiness event even when the
      // class never left the pending set (its children may have).
      Recheck.push_back(Id);
    }
  };
  for (EClassId Id : Seeds)
    enqueue(Id);
  if (NumPending == 0)
    return;

  // Concurrent combines only read the graph through find()/eclass();
  // compress the union-find once so those reads are write-free.
  // (deriveFrom never mutates the graph, so this covers every wave.)
  G.prepareForConcurrentReads();

  auto isReady = [&](EClassId Id) {
    for (const ENode &Node : G.eclass(Id).Nodes)
      for (EClassId Kid : Node.Children) {
        EClassId C = G.find(Kid);
        if (C != Id && Pending[C])
          return false;
      }
    return true;
  };

  // Wave members sort by (one-best cost, id); the cost is decorated in
  // rather than looked up per comparison.
  std::vector<std::pair<double, EClassId>> Wave;
  std::vector<std::vector<PendingCand>> Results;
  std::vector<CandRef> NewList;
  // Mirrors the serial engine's pop cap — sheer paranoia for graphs
  // where k-truncation feedback through cycles could oscillate.
  size_t CombinesLeft = (4 * G.numClasses() + 8) * (K + 2);
  while (NumPending != 0) {
    Wave.clear();
    std::sort(Recheck.begin(), Recheck.end());
    Recheck.erase(std::unique(Recheck.begin(), Recheck.end()), Recheck.end());
    for (EClassId Id : Recheck)
      if (Pending[Id] && isReady(Id))
        Wave.emplace_back(*OneBest.bestCost(Id), Id);
    Recheck.clear();
    if (Wave.empty()) {
      // Every pending class sits on a cycle (a blocked class always has a
      // pending child, so nothing outside Recheck can be ready): fall
      // back to the single cheapest member — exactly what the serial
      // queue would pop next. Its wave-mates stay blocked until it
      // commits, so they re-enter through the recheck of its parents.
      // The heap cannot run dry here: every pending class has a live
      // entry, and Pending is non-empty.
      while (!Pending[CheapestPending.top().second])
        CheapestPending.pop();
      Wave.push_back(CheapestPending.top());
      CheapestPending.pop();
      // The fallback pick consumed the round's recheck knowledge; rebuild
      // it for the next round from the classes its commit will unblock
      // (handled below via canonicalParents) — nothing extra needed here.
    } else {
      std::sort(Wave.begin(), Wave.end());
    }

    if (CombinesLeft < Wave.size()) {
      assert(false && "k-best wave scheduler hit its paranoia cap");
      break;
    }
    CombinesLeft -= Wave.size();

    Results.resize(Wave.size());
    auto combineOne = [&](size_t I) {
      Results[I] = combineClass(Wave[I].second);
    };
    if (Threads > 1 && Wave.size() >= ParallelWaveThreshold) {
      if (!Pool)
        Pool = std::make_unique<WorkerPool>(Threads - 1);
      Pool->run(Wave.size(), combineOne);
    } else {
      for (size_t I = 0; I < Wave.size(); ++I)
        combineOne(I);
    }

    // Commit in wave order. Members leave the pending set first so a
    // changed wave-mate that references them can re-enqueue them for the
    // next round; a changed list is observable only through referencing
    // e-nodes (the parent index, self-loops included). Every committed
    // class rechecks its still-pending parents — that, plus re-enqueues,
    // is the complete set of readiness transitions.
    for (const auto &[Cost, Id] : Wave) {
      (void)Cost;
      Pending[Id] = 0;
      --NumPending;
    }
    for (size_t I = 0; I < Wave.size(); ++I) {
      EClassId Id = Wave[I].second;
      std::vector<CandRef> &Slot = Table[Id];
      // Intern this member's rows now — the commit loop is the one serial
      // writer of the row store, and wave order is a pure function of the
      // graph, so row ids are identical at every thread count. Interning
      // an unchanged candidate is a dedup hit, not growth — and the
      // steady state of a refresh re-derives exactly the previous list,
      // so each pending row is first checked against the same position
      // of the previous list (operator + kid row ids is full structural
      // identity), skipping the hash probe entirely on a match.
      NewList.clear();
      NewList.reserve(Results[I].size());
      for (size_t C = 0; C < Results[I].size(); ++C) {
        const PendingCand &P = Results[I][C];
        uint32_t RowId;
        if (C < Slot.size() &&
            [&] {
              const CandRow &R = Rows[Slot[C].Row];
              if (R.ValueHash != P.ValueHash || R.Operator != P.Operator ||
                  R.KidsEnd - R.KidsBegin != P.Kids.size())
                return false;
              for (size_t KI = 0; KI < P.Kids.size(); ++KI)
                if (RowKids[R.KidsBegin + KI] != P.Kids[KI])
                  return false;
              return true;
            }())
          RowId = Slot[C].Row;
        else
          RowId = internRow(P.Operator, P.Kids.data(), P.Kids.size(),
                            P.ValueHash);
        NewList.push_back({P.Cost, RowId});
      }
      // Row-id equality is structural equality, so list comparison is O(k).
      bool Changed = false;
      bool Equal = Slot.size() == NewList.size();
      for (size_t C = 0; Equal && C < Slot.size(); ++C)
        Equal = Slot[C].Cost == NewList[C].Cost && Slot[C].Row == NewList[C].Row;
      if (!Equal) {
        Slot = NewList;
        Changed = true;
      }
      for (const auto &[PNode, PClass] : G.canonicalParents(Id)) {
        (void)PNode;
        EClassId P = G.find(PClass);
        if (Changed)
          enqueue(P);
        else if (Pending[P])
          Recheck.push_back(P);
      }
    }
  }
}

std::vector<RankedTerm> KBestExtractor::extract(EClassId Id) const {
  std::vector<RankedTerm> Out;
  auto It = Table.find(G.find(Id));
  if (It == Table.end())
    return Out;
  for (const CandRef &C : It->second)
    Out.push_back({materializeRow(C.Row), C.Cost});
  return Out;
}

uint32_t KBestExtractor::internRow(const Op &O, const uint32_t *Kids, size_t N,
                                   size_t ValueHash) {
  size_t H = O.hash();
  for (size_t I = 0; I < N; ++I)
    hashCombine(H, Kids[I]);
  // Avalanche before probing: payload-free operators hash to small
  // constants and kid row ids are small sequential integers, so the raw
  // combine is near-sequential — which a power-of-two linear-probe table
  // turns into one giant primary-clustering run (measured: ~640 probes
  // per insert on the nintendo graph without this).
  H = static_cast<size_t>(mix64(H));
  // Grow before probing so the insert position found below stays valid.
  if ((Rows.size() + 1) * 4 > RowIndex.size() * 3) {
    std::vector<RowSlot> Old(RowIndex.empty() ? 256 : RowIndex.size() * 2);
    Old.swap(RowIndex);
    const size_t Mask = RowIndex.size() - 1;
    for (const RowSlot &Sl : Old) {
      if (!Sl.RowPlus1)
        continue;
      size_t I = Sl.Hash & Mask;
      while (RowIndex[I].RowPlus1)
        I = (I + 1) & Mask;
      RowIndex[I] = Sl;
    }
  }
  const size_t Mask = RowIndex.size() - 1;
  size_t SlotI = H & Mask;
  for (; RowIndex[SlotI].RowPlus1; SlotI = (SlotI + 1) & Mask) {
    if (RowIndex[SlotI].Hash != H)
      continue;
    const uint32_t R = RowIndex[SlotI].RowPlus1 - 1;
    const CandRow &Row = Rows[R];
    if (Row.Operator != O || Row.KidsEnd - Row.KidsBegin != N)
      continue;
    bool Same = true;
    for (size_t I = 0; I < N; ++I) {
      if (RowKids[Row.KidsBegin + I] != Kids[I]) {
        Same = false;
        break;
      }
    }
    if (Same)
      return R;
  }
  const uint32_t Begin = static_cast<uint32_t>(RowKids.size());
  RowKids.insert(RowKids.end(), Kids, Kids + N);
  Rows.push_back(
      CandRow{O, Begin, static_cast<uint32_t>(RowKids.size()), ValueHash});
  const uint32_t Id = static_cast<uint32_t>(Rows.size() - 1);
  RowIndex[SlotI] = RowSlot{H, Id + 1};
  return Id;
}

bool KBestExtractor::rowValueEq(uint32_t A, uint32_t B) const {
  if (A == B)
    return true; // interned: structural equality is row-id equality
  const CandRow &RA = Rows[A];
  const CandRow &RB = Rows[B];
  // Value-equal rows always hash equal (the hash respects the Int/Float
  // aliasing below), so differing hashes decide without a walk.
  if (RA.ValueHash != RB.ValueHash)
    return false;
  bool ANum = RA.Operator.kind() == OpKind::Int ||
              RA.Operator.kind() == OpKind::Float;
  bool BNum = RB.Operator.kind() == OpKind::Int ||
              RB.Operator.kind() == OpKind::Float;
  if (ANum || BNum)
    return ANum && BNum &&
           RA.Operator.numericValue() == RB.Operator.numericValue();
  if (RA.Operator != RB.Operator)
    return false;
  const size_t NA = RA.KidsEnd - RA.KidsBegin;
  if (NA != RB.KidsEnd - RB.KidsBegin)
    return false;
  for (size_t I = 0; I < NA; ++I)
    if (!rowValueEq(RowKids[RA.KidsBegin + I], RowKids[RB.KidsBegin + I]))
      return false;
  return true;
}

TermPtr KBestExtractor::materializeRow(uint32_t Root) const {
  auto Hit = RowTerms.find(Root);
  if (Hit != RowTerms.end())
    return Hit->second;
  // Iterative, children-first: candidate programs are routinely deeper
  // than any safe recursion budget.
  std::vector<std::pair<uint32_t, uint32_t>> Stack;
  Stack.emplace_back(Root, 0);
  while (!Stack.empty()) {
    auto &[R, NextKid] = Stack.back();
    if (RowTerms.count(R)) {
      Stack.pop_back();
      continue;
    }
    const CandRow &Row = Rows[R];
    const uint32_t N = Row.KidsEnd - Row.KidsBegin;
    if (NextKid < N) {
      const uint32_t Kid = RowKids[Row.KidsBegin + NextKid];
      ++NextKid;
      if (!RowTerms.count(Kid))
        Stack.emplace_back(Kid, 0);
      continue;
    }
    std::vector<TermPtr> Kids;
    Kids.reserve(N);
    for (uint32_t I = 0; I < N; ++I)
      Kids.push_back(RowTerms.at(RowKids[Row.KidsBegin + I]));
    RowTerms.emplace(R, makeTerm(Row.Operator, std::move(Kids)));
    Stack.pop_back();
  }
  return RowTerms.at(Root);
}

std::vector<KBestExtractor::PendingCand>
KBestExtractor::combineClass(EClassId Id) const {
  const std::vector<ENode> &Nodes = G.eclass(Id).Nodes;

  // Resolved child candidate lists, flattened across nodes; a node with a
  // candidate-less child stays unusable this round (Arity == NotUsable).
  constexpr size_t NotUsable = static_cast<size_t>(-1);
  std::vector<const std::vector<CandRef> *> ChildLists;
  std::vector<std::pair<size_t, size_t>> Span(Nodes.size()); // offset, arity
  for (size_t N = 0; N < Nodes.size(); ++N) {
    const ENode &Node = Nodes[N];
    Span[N] = {ChildLists.size(), Node.Children.size()};
    for (EClassId Kid : Node.Children) {
      auto It = Table.find(G.find(Kid));
      if (It == Table.end() || It->second.empty()) {
        ChildLists.resize(Span[N].first);
        Span[N].second = NotUsable;
        break;
      }
      ChildLists.push_back(&It->second);
    }
  }
  auto kidRef = [&](size_t N, size_t I, uint32_t Choice) -> const CandRef & {
    return (*ChildLists[Span[N].first + I])[Choice];
  };

  // Index combinations live in one flat append-only pool; frontier items
  // reference spans of it, so the heap shuffles 24-byte rows instead of
  // one heap-allocated vector per item.
  std::vector<uint32_t> IxPool;
  struct Item {
    double Cost;
    uint32_t NodeIdx;
    uint32_t Bump;
    uint32_t IxBegin;
    uint32_t Arity;
  };
  auto Later = [&IxPool](const Item &A, const Item &B) {
    if (A.Cost != B.Cost)
      return A.Cost > B.Cost;
    if (A.NodeIdx != B.NodeIdx)
      return A.NodeIdx > B.NodeIdx;
    // Same node, same arity: the old engines' lexicographic Ix order.
    return std::lexicographical_compare(
        IxPool.begin() + B.IxBegin, IxPool.begin() + B.IxBegin + B.Arity,
        IxPool.begin() + A.IxBegin, IxPool.begin() + A.IxBegin + A.Arity);
  };

  std::vector<double> CostScratch;
  auto comboCost = [&](size_t N, uint32_t IxBegin, size_t Arity) {
    CostScratch.resize(Arity);
    for (size_t I = 0; I < Arity; ++I)
      CostScratch[I] = kidRef(N, I, IxPool[IxBegin + I]).Cost;
    return Fn.cost(Nodes[N].Operator, CostScratch);
  };

  std::priority_queue<Item, std::vector<Item>, decltype(Later)> Frontier(
      Later);
  for (size_t N = 0; N < Nodes.size(); ++N) {
    if (Span[N].second == NotUsable)
      continue;
    const uint32_t Begin = static_cast<uint32_t>(IxPool.size());
    IxPool.resize(IxPool.size() + Span[N].second, 0);
    Frontier.push({comboCost(N, Begin, Span[N].second),
                   static_cast<uint32_t>(N), 0, Begin,
                   static_cast<uint32_t>(Span[N].second)});
  }

  // A popped combination equals an accepted candidate iff the operator and
  // the child candidate rows match under value equality — no term is ever
  // materialized. The hash prefilter keeps the scan to (expected) zero
  // row comparisons.
  auto isDupOf = [&](const PendingCand &U, const Op &O, size_t N,
                     uint32_t IxBegin, size_t Arity) {
    bool ONum = O.kind() == OpKind::Int || O.kind() == OpKind::Float;
    bool UNum = U.Operator.kind() == OpKind::Int ||
                U.Operator.kind() == OpKind::Float;
    if (ONum || UNum)
      return ONum && UNum && O.numericValue() == U.Operator.numericValue();
    if (O != U.Operator || U.Kids.size() != Arity)
      return false;
    for (size_t I = 0; I < Arity; ++I)
      if (!rowValueEq(kidRef(N, I, IxPool[IxBegin + I]).Row, U.Kids[I]))
        return false;
    return true;
  };

  std::vector<PendingCand> Out;
  std::vector<size_t> KidHashes;
  while (!Frontier.empty() && Out.size() < K) {
    Item Top = Frontier.top();
    Frontier.pop();
    const ENode &Node = Nodes[Top.NodeIdx];
    const size_t Arity = Top.Arity;

    // O(arity): child rows carry their value hashes already.
    KidHashes.resize(Arity);
    for (size_t I = 0; I < Arity; ++I)
      KidHashes[I] =
          Rows[kidRef(Top.NodeIdx, I, IxPool[Top.IxBegin + I]).Row].ValueHash;
    size_t Hash = termValueHashNode(Node.Operator, KidHashes);
    bool Dup = false;
    for (const PendingCand &U : Out)
      if (U.ValueHash == Hash &&
          isDupOf(U, Node.Operator, Top.NodeIdx, Top.IxBegin, Arity)) {
        Dup = true;
        break;
      }
    if (!Dup) {
      std::vector<uint32_t> Kids(Arity);
      for (size_t I = 0; I < Arity; ++I)
        Kids[I] = kidRef(Top.NodeIdx, I, IxPool[Top.IxBegin + I]).Row;
      Out.push_back(PendingCand{Top.Cost, Hash, Node.Operator,
                                std::move(Kids)});
    }

    // Expand successors: bump one child index at a time, never before the
    // position this item bumped.
    for (size_t I = Top.Bump; I < Arity; ++I) {
      if (IxPool[Top.IxBegin + I] + 1 >=
          ChildLists[Span[Top.NodeIdx].first + I]->size())
        continue;
      const uint32_t Begin = static_cast<uint32_t>(IxPool.size());
      for (size_t J = 0; J < Arity; ++J)
        IxPool.push_back(IxPool[Top.IxBegin + J]);
      ++IxPool[Begin + I];
      Frontier.push({comboCost(Top.NodeIdx, Begin, Arity), Top.NodeIdx,
                     static_cast<uint32_t>(I), Begin,
                     static_cast<uint32_t>(Arity)});
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Top-k extraction: state save/restore (snapshot tier)
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t KBestFormatVersion = 1;

} // namespace

std::string KBestExtractor::saveState() const {
  snapcodec::Writer W;
  W.u32(KBestFormatVersion);
  W.u64(K);
  W.str(OneBest.saveState());
  W.u64(SyncedGen);

  // Candidate rows in ascending class-id order (the table iterates in
  // hash order; the blob must be canonical). Empty rows are dropped: a
  // missing row and an empty row are indistinguishable through lookups.
  std::vector<EClassId> Ids;
  Ids.reserve(Table.size());
  for (const auto &[Id, Cands] : Table)
    if (!Cands.empty())
      Ids.push_back(Id);
  std::sort(Ids.begin(), Ids.end());

  // Structure pool: every candidate emitted once as a back-referencing
  // DAG (children before parents). The flat row store *is* already that
  // DAG — deduplicated and immutable — so emission walks rows directly
  // and never materializes a term. The pool is written to a side buffer
  // first — pool size precedes pool bytes.
  snapcodec::Writer PoolW;
  std::unordered_map<uint32_t, uint32_t> PoolIdx; // row id -> pool index
  std::vector<std::pair<uint32_t, uint32_t>> Stack;
  auto poolEmit = [&](uint32_t Root) -> uint32_t {
    auto Hit = PoolIdx.find(Root);
    if (Hit != PoolIdx.end())
      return Hit->second;
    Stack.clear();
    Stack.emplace_back(Root, 0);
    while (!Stack.empty()) {
      auto &[R, NextKid] = Stack.back();
      if (PoolIdx.count(R)) {
        Stack.pop_back();
        continue;
      }
      const CandRow &Row = Rows[R];
      const uint32_t N = Row.KidsEnd - Row.KidsBegin;
      if (NextKid < N) {
        const uint32_t Kid = RowKids[Row.KidsBegin + NextKid];
        ++NextKid;
        if (!PoolIdx.count(Kid))
          Stack.emplace_back(Kid, 0);
        continue;
      }
      PoolW.op(Row.Operator);
      PoolW.u32(N);
      for (uint32_t I = 0; I < N; ++I)
        PoolW.u32(PoolIdx.at(RowKids[Row.KidsBegin + I]));
      PoolIdx.emplace(R, static_cast<uint32_t>(PoolIdx.size()));
      Stack.pop_back();
    }
    return PoolIdx.at(Root);
  };
  std::vector<std::vector<uint32_t>> RowRefs(Ids.size());
  for (size_t I = 0; I < Ids.size(); ++I)
    for (const CandRef &C : Table.at(Ids[I]))
      RowRefs[I].push_back(poolEmit(C.Row));

  W.u32(static_cast<uint32_t>(PoolIdx.size()));
  W.str(PoolW.bytes());
  W.u32(static_cast<uint32_t>(Ids.size()));
  for (size_t I = 0; I < Ids.size(); ++I) {
    const std::vector<CandRef> &Cands = Table.at(Ids[I]);
    W.u32(Ids[I]);
    W.u32(static_cast<uint32_t>(Cands.size()));
    for (size_t C = 0; C < Cands.size(); ++C) {
      W.f64(Cands[C].Cost);
      W.u32(RowRefs[I][C]);
    }
  }
  return W.take();
}

KBestExtractor::KBestExtractor(Extractor::RestoreTag Tag, const EGraph &G,
                               const CostFn &Fn, size_t K, size_t NumThreads)
    : G(G), Fn(Fn), K(K), Threads(resolveThreads(NumThreads)),
      OneBest(Tag, G, Fn) {
  SyncedGen = G.generation();
  DirtyLease = G.acquireDirtyLease(SyncedGen);
}

std::unique_ptr<KBestExtractor>
KBestExtractor::restore(const EGraph &G, const CostFn &Fn, size_t K,
                        size_t NumThreads, std::string_view Bytes,
                        std::string &Err) {
  assert(K >= 1 && "k must be positive");
  std::unique_ptr<KBestExtractor> E(
      new KBestExtractor(Extractor::RestoreTag{}, G, Fn, K, NumThreads));
  Err = E->restoreState(Bytes);
  if (!Err.empty())
    return nullptr;
  return E;
}

std::string KBestExtractor::restoreState(std::string_view Bytes) {
  snapcodec::Reader R{std::string(Bytes)};
  std::string Err;
  if (R.u32() != KBestFormatVersion || !R.ok())
    return "unsupported k-best state format version";
  if (R.u64() != K || !R.ok())
    return "k-best state saved with a different k";
  if (std::string E = OneBest.restoreState(R.str()); !E.empty())
    return E;
  const uint64_t Gen = R.u64();
  if (!R.ok())
    return "truncated k-best state";
  if (Gen != G.generation())
    return "k-best state generation mismatch";

  // Structure pool: decode straight into interned rows, children-first —
  // no term is materialized. Child references must point strictly
  // backwards, which both guarantees acyclicity and lets one forward
  // pass intern every row.
  const uint32_t NumPool = R.u32();
  std::string PoolBytes = R.str();
  if (!R.ok())
    return "truncated k-best pool";
  snapcodec::Reader PR{std::move(PoolBytes)};
  std::vector<uint32_t> PoolRow; // pool index -> row id
  PoolRow.reserve(NumPool);
  std::vector<uint32_t> KidRows;
  std::vector<size_t> KidHashes;
  for (uint32_t I = 0; I < NumPool; ++I) {
    std::optional<Op> O = PR.op(Err);
    if (!O)
      return Err.empty() ? "truncated k-best pool" : Err;
    const uint32_t Arity = PR.u32();
    const int Fixed = opArity(O->kind());
    if (!PR.ok() || (Fixed >= 0 && static_cast<uint32_t>(Fixed) != Arity) ||
        !PR.fits(Arity, 4))
      return "k-best pool arity out of range";
    KidRows.clear();
    KidHashes.clear();
    for (uint32_t A = 0; A < Arity; ++A) {
      const uint32_t Kid = PR.u32();
      if (!PR.ok() || Kid >= I)
        return "k-best pool child reference out of range";
      KidRows.push_back(PoolRow[Kid]);
      KidHashes.push_back(Rows[PoolRow[Kid]].ValueHash);
    }
    const size_t VH = termValueHashNode(*O, KidHashes);
    PoolRow.push_back(internRow(*O, KidRows.data(), KidRows.size(), VH));
  }
  if (!PR.atEnd())
    return "trailing bytes after k-best pool";

  const uint32_t NumRows = R.u32();
  // Minimum row: u32 id + u32 count + one (f64, u32) candidate.
  if (!R.ok() || !R.fits(NumRows, 20))
    return "truncated k-best table";
  const uint32_t NumIds = static_cast<uint32_t>(G.numIds());
  Table.clear();
  uint32_t PrevId = 0;
  for (uint32_t I = 0; I < NumRows; ++I) {
    const uint32_t Id = R.u32();
    if (!R.ok() || Id >= NumIds)
      return "k-best row class id out of range";
    if (I != 0 && Id <= PrevId)
      return "k-best rows not strictly ascending";
    PrevId = Id;
    if (G.find(Id) != Id)
      return "k-best row keyed by a non-canonical class";
    const uint32_t NumCands = R.u32();
    if (!R.ok() || NumCands == 0 || NumCands > K || !R.fits(NumCands, 12))
      return "k-best candidate count out of range";
    std::vector<CandRef> Cands;
    Cands.reserve(NumCands);
    for (uint32_t C = 0; C < NumCands; ++C) {
      const double Cost = R.f64();
      const uint32_t Ref = R.u32();
      if (!R.ok() || std::isnan(Cost) || Ref >= PoolRow.size())
        return "invalid k-best candidate";
      Cands.push_back({Cost, PoolRow[Ref]});
    }
    Table.emplace(Id, std::move(Cands));
  }
  if (!R.ok() || !R.atEnd())
    return "trailing bytes after k-best state";
  SyncedGen = Gen;
  G.updateDirtyLease(DirtyLease, SyncedGen);
  return "";
}

//===----------------------------------------------------------------------===//
// Top-k extraction: fixed-point oracle
//===----------------------------------------------------------------------===//

ReferenceKBestExtractor::ReferenceKBestExtractor(const EGraph &G,
                                                 const CostFn &Fn, size_t K)
    : G(G), Fn(Fn), K(K) {
  assert(!G.isDirty() && "extraction on a dirty e-graph");
  assert(K >= 1 && "k must be positive");
  // Process classes in ascending one-best-cost order: under a monotone cost
  // function a node's children are cheaper than the node, so a single
  // ordered pass almost always reaches the fixpoint and the loop below
  // exits after the confirming pass.
  ReferenceExtractor OneBest(G, Fn);
  ClassOrder = G.classIds();
  std::stable_sort(ClassOrder.begin(), ClassOrder.end(),
                   [&](EClassId A, EClassId B) {
                     double CA = OneBest.bestCost(A).value_or(1e308);
                     double CB = OneBest.bestCost(B).value_or(1e308);
                     return CA < CB;
                   });
  // Candidate sets only improve (costs shrink or new distinct cheap terms
  // appear) and are bounded, so this terminates; the pass cap is sheer
  // paranoia for pathological graphs.
  const size_t MaxPasses = 4 * G.numClasses() + 8;
  for (size_t Pass = 0; Pass < MaxPasses; ++Pass)
    if (!this->pass())
      break;
}

bool ReferenceKBestExtractor::pass() {
  bool Changed = false;
  for (EClassId Id : ClassOrder) {
    std::vector<ExtractCandidate> New = combineClass(G, Fn, K, Id, Table);
    std::vector<ExtractCandidate> &Slot = Table[Id];
    if (listsEqual(Slot, New))
      continue;
    Slot = std::move(New);
    Changed = true;
  }
  return Changed;
}

std::vector<RankedTerm> ReferenceKBestExtractor::extract(EClassId Id) const {
  std::vector<RankedTerm> Out;
  auto It = Table.find(G.find(Id));
  if (It == Table.end())
    return Out;
  for (const ExtractCandidate &C : It->second)
    Out.push_back({C.T, C.Cost});
  return Out;
}
