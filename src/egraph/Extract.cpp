//===-- egraph/Extract.cpp - Cost-based extraction ------------------------===//
//
// Two engines per problem (one-best, k-best): a worklist engine that
// propagates cost derivations upward along the e-graph's parent index, and
// a whole-graph fixed-point oracle used by the differential tests. The
// engines share the deterministic tie-break (and, for k-best, the per-class
// lazy combination), so on any graph they produce bit-identical results;
// they differ in *scheduling*, which is where incrementality bugs would
// live.
//
//===----------------------------------------------------------------------===//

#include "egraph/Extract.h"

#include <cassert>
#include <queue>
#include <unordered_set>

using namespace shrinkray;

//===----------------------------------------------------------------------===//
// Shared helpers: deterministic orders, node costing, lazy k-best combine
//===----------------------------------------------------------------------===//

namespace {

/// Three-way total order on operators (kind, then payload). Symbol payloads
/// compare by spelling so the order does not depend on interning order.
int opCompare(const Op &A, const Op &B) {
  if (A.kind() != B.kind())
    return A.kind() < B.kind() ? -1 : 1;
  switch (A.kind()) {
  case OpKind::Int:
    if (A.intValue() != B.intValue())
      return A.intValue() < B.intValue() ? -1 : 1;
    return 0;
  case OpKind::Float:
    if (A.floatValue() != B.floatValue())
      return A.floatValue() < B.floatValue() ? -1 : 1;
    return 0;
  case OpKind::Var:
  case OpKind::External:
  case OpKind::OpRef:
  case OpKind::PatVar:
    return A.symbol().str().compare(B.symbol().str());
  default:
    return 0;
  }
}

/// Three-way total order on e-nodes under the current union-find: operator,
/// then arity, then canonical child ids left to right. Distinct canonical
/// nodes never compare equal, so using this to break cost ties makes the
/// extraction fixpoint unique — the property the differential tests pin.
int enodeCompare(const EGraph &G, const ENode &A, const ENode &B) {
  if (int C = opCompare(A.Operator, B.Operator))
    return C;
  if (A.Children.size() != B.Children.size())
    return A.Children.size() < B.Children.size() ? -1 : 1;
  for (size_t I = 0; I < A.Children.size(); ++I) {
    EClassId CA = G.find(A.Children[I]), CB = G.find(B.Children[I]);
    if (CA != CB)
      return CA < CB ? -1 : 1;
  }
  return 0;
}

/// Cost of \p Node given the per-class cost table, or nullopt while any
/// child is still unextractable. Children are resolved through find(), so
/// stale node forms cost correctly.
std::optional<double> nodeCost(const EGraph &G, const CostFn &Fn,
                               const std::unordered_map<EClassId, double> &Costs,
                               const ENode &Node) {
  std::vector<double> Kids;
  Kids.reserve(Node.Children.size());
  for (EClassId Kid : Node.Children) {
    auto It = Costs.find(G.find(Kid));
    if (It == Costs.end())
      return std::nullopt;
    Kids.push_back(It->second);
  }
  return Fn.cost(Node.Operator, Kids);
}

using KTable = std::unordered_map<EClassId, std::vector<ExtractCandidate>>;

/// The candidate list of \p Id, or nullptr while the class has none.
const std::vector<ExtractCandidate> *candList(const KTable &Table,
                                              const EGraph &G, EClassId Id) {
  auto It = Table.find(G.find(Id));
  if (It == Table.end() || It->second.empty())
    return nullptr;
  return &It->second;
}

/// Recomputes the up-to-k cheapest distinct candidates of class \p Id from
/// its children's current candidate lists: one best-first frontier heap
/// over *all* the class's e-nodes ("cube pruning" / lazy k-shortest paths),
/// popping combinations in ascending (cost, node index, combination index)
/// order and deduplicating by value hash, so the k-th distinct program is
/// found after O(k) pops plus duplicates instead of materializing k
/// candidates per node and merging. Deterministic: the heap order is a
/// total order, so ties resolve identically regardless of caller.
std::vector<ExtractCandidate> combineClass(const EGraph &G, const CostFn &Fn,
                                           size_t K, EClassId Id,
                                           const KTable &Table) {
  const std::vector<ENode> &Nodes = G.eclass(Id).Nodes;

  // Resolved child candidate lists, flattened across nodes; a node with a
  // candidate-less child stays unusable this round (Arity == NotUsable).
  constexpr size_t NotUsable = static_cast<size_t>(-1);
  std::vector<const std::vector<ExtractCandidate> *> ChildLists;
  std::vector<std::pair<size_t, size_t>> Span(Nodes.size()); // offset, arity
  for (size_t N = 0; N < Nodes.size(); ++N) {
    const ENode &Node = Nodes[N];
    Span[N] = {ChildLists.size(), Node.Children.size()};
    for (EClassId Kid : Node.Children) {
      const std::vector<ExtractCandidate> *L = candList(Table, G, Kid);
      if (!L) {
        ChildLists.resize(Span[N].first);
        Span[N].second = NotUsable;
        break;
      }
      ChildLists.push_back(L);
    }
  }
  auto kidCand = [&](size_t N, size_t I,
                     const std::vector<size_t> &Ix) -> const ExtractCandidate & {
    return (*ChildLists[Span[N].first + I])[Ix[I]];
  };

  std::vector<double> CostScratch;
  auto comboCost = [&](size_t N, const std::vector<size_t> &Ix) {
    CostScratch.resize(Ix.size());
    for (size_t I = 0; I < Ix.size(); ++I)
      CostScratch[I] = kidCand(N, I, Ix).Cost;
    return Fn.cost(Nodes[N].Operator, CostScratch);
  };

  // Frontier items carry the position they last bumped; successors only
  // bump positions >= Bump, which generates every combination exactly once
  // (canonical non-decreasing bump order) without a visited set.
  struct Item {
    double Cost;
    size_t NodeIdx;
    size_t Bump;
    std::vector<size_t> Ix;
  };
  auto Later = [](const Item &A, const Item &B) {
    if (A.Cost != B.Cost)
      return A.Cost > B.Cost;
    if (A.NodeIdx != B.NodeIdx)
      return A.NodeIdx > B.NodeIdx;
    return A.Ix > B.Ix;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(Later)> Frontier(
      Later);
  for (size_t N = 0; N < Nodes.size(); ++N) {
    if (Span[N].second == NotUsable)
      continue;
    std::vector<size_t> First(Span[N].second, 0);
    double Cost = comboCost(N, First);
    Frontier.push({Cost, N, 0, std::move(First)});
  }

  // A popped combination equals an accepted candidate iff the operator and
  // the child candidate terms match under value equality — checkable
  // without materializing the term, so duplicates cost no allocation. The
  // hash prefilter keeps the scan to (expected) zero term comparisons.
  auto isDupOf = [&](const ExtractCandidate &U, const Op &O, size_t N,
                     const std::vector<size_t> &Ix) {
    const Term &B = *U.T;
    bool ONum = O.kind() == OpKind::Int || O.kind() == OpKind::Float;
    bool BNum = B.kind() == OpKind::Int || B.kind() == OpKind::Float;
    if (ONum || BNum)
      return ONum && BNum && O.numericValue() == B.op().numericValue();
    if (O != B.op() || B.numChildren() != Ix.size())
      return false;
    for (size_t I = 0; I < Ix.size(); ++I)
      if (!termApproxEquals(kidCand(N, I, Ix).T, B.child(I), 0.0))
        return false;
    return true;
  };

  std::vector<ExtractCandidate> Out;
  std::vector<size_t> KidHashes;
  while (!Frontier.empty() && Out.size() < K) {
    Item Top = Frontier.top();
    Frontier.pop();
    const ENode &Node = Nodes[Top.NodeIdx];
    const size_t Arity = Top.Ix.size();

    // O(arity): child candidates carry their value hashes already.
    KidHashes.resize(Arity);
    for (size_t I = 0; I < Arity; ++I)
      KidHashes[I] = kidCand(Top.NodeIdx, I, Top.Ix).ValueHash;
    size_t Hash = termValueHashNode(Node.Operator, KidHashes);
    bool Dup = false;
    for (const ExtractCandidate &U : Out)
      if (U.ValueHash == Hash &&
          isDupOf(U, Node.Operator, Top.NodeIdx, Top.Ix)) {
        Dup = true;
        break;
      }
    if (!Dup) {
      std::vector<TermPtr> Kids(Arity);
      for (size_t I = 0; I < Arity; ++I)
        Kids[I] = kidCand(Top.NodeIdx, I, Top.Ix).T;
      Out.push_back(
          {Top.Cost, makeTerm(Node.Operator, std::move(Kids)), Hash});
    }

    // Expand successors: bump one child index at a time, never before the
    // position this item bumped.
    for (size_t I = Top.Bump; I < Arity; ++I) {
      if (Top.Ix[I] + 1 >= ChildLists[Span[Top.NodeIdx].first + I]->size())
        continue;
      std::vector<size_t> Next = Top.Ix;
      ++Next[I];
      Frontier.push({comboCost(Top.NodeIdx, Next), Top.NodeIdx, I,
                     std::move(Next)});
    }
  }
  return Out;
}

/// Exact equality of candidate lists (cost, hash, then term structure).
bool listsEqual(const std::vector<ExtractCandidate> &A,
                const std::vector<ExtractCandidate> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].Cost != B[I].Cost || A[I].ValueHash != B[I].ValueHash ||
        !termEquals(A[I].T, B[I].T))
      return false;
  return true;
}

/// Shared build of the chosen-term tree from a choice table.
TermPtr buildFromChoices(
    const EGraph &G, const std::unordered_map<EClassId, ENode> &Choices,
    std::unordered_map<EClassId, TermPtr> &Memo, EClassId Id) {
  Id = G.find(Id);
  auto Hit = Memo.find(Id);
  if (Hit != Memo.end())
    return Hit->second;
  auto It = Choices.find(Id);
  assert(It != Choices.end() && "extracting from a class with no finite cost");
  const ENode &Node = It->second;
  std::vector<TermPtr> Kids;
  Kids.reserve(Node.Children.size());
  for (EClassId Kid : Node.Children)
    Kids.push_back(buildFromChoices(G, Choices, Memo, Kid));
  TermPtr T = makeTerm(Node.Operator, std::move(Kids));
  Memo.emplace(Id, T);
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// One-best extraction: worklist engine
//===----------------------------------------------------------------------===//

Extractor::Extractor(const EGraph &G, const CostFn &Fn) : G(G), Fn(Fn) {
  assert(!G.isDirty() && "extraction on a dirty e-graph");
  deriveFrom(G.classIds());
  SyncedGen = G.generation();
  // The lease keeps the Runner's dirty-log compaction from dropping the
  // suffix refresh() will request.
  DirtyLease = G.acquireDirtyLease(SyncedGen);
}

Extractor::~Extractor() { G.releaseDirtyLease(DirtyLease); }

void Extractor::refresh() {
  assert(!G.isDirty() && "refresh on a dirty e-graph");
  if (G.generation() == SyncedGen) {
    G.updateDirtyLease(DirtyLease, SyncedGen);
    return;
  }
  // Only classes in the dirty closure can change their best term: a class
  // outside it gained no nodes, joined no merge, and every child of its
  // nodes kept its cost (else that child would be dirty and this class in
  // its ancestor closure).
  deriveFrom(G.takeDirtySince(SyncedGen));
  SyncedGen = G.generation();
  G.updateDirtyLease(DirtyLease, SyncedGen);
  BuildMemo.clear();
}

bool Extractor::relax(EClassId Id, const ENode &Node) {
  std::optional<double> C = nodeCost(G, Fn, Costs, Node);
  if (!C)
    return false;
  auto It = Costs.find(Id);
  bool Better = It == Costs.end() || *C < It->second;
  if (!Better && *C == It->second) {
    // Equal cost: adopt the candidate only if it is the smaller e-node, so
    // the final choice is the unique (cost, node) minimum. Stored forms may
    // be stale; enodeCompare resolves children through find().
    if (enodeCompare(G, Node, Choices.at(Id)) < 0) {
      Choices.insert_or_assign(Id, Node);
      return true;
    }
    return false;
  }
  if (!Better)
    return false;
  Costs[Id] = *C;
  Choices.insert_or_assign(Id, Node);
  return true;
}

void Extractor::deriveFrom(const std::vector<EClassId> &Seeds) {
  std::vector<EClassId> WL;
  std::unordered_set<EClassId> InWL;
  auto push = [&](EClassId Id) {
    if (InWL.insert(Id).second)
      WL.push_back(Id);
  };

  // Re-derive every seed from its full node set (a seed may have gained
  // nodes, absorbed a merge partner, or had a child's cost change), then
  // propagate improvements upward: a cost change at a class can only be
  // observed by the e-nodes that reference it, i.e. its parent index.
  for (EClassId S : Seeds) {
    EClassId Id = G.find(S);
    bool Improved = false;
    for (const ENode &Node : G.eclass(Id).Nodes)
      Improved = relax(Id, Node) || Improved;
    if (Improved)
      push(Id);
  }
  while (!WL.empty()) {
    EClassId Id = WL.back();
    WL.pop_back();
    InWL.erase(Id);
    for (const auto &[PNode, PClass] : G.canonicalParents(Id))
      if (relax(PClass, PNode))
        push(PClass);
  }
}

std::optional<double> Extractor::bestCost(EClassId Id) const {
  auto It = Costs.find(G.find(Id));
  if (It == Costs.end())
    return std::nullopt;
  return It->second;
}

TermPtr Extractor::extract(EClassId Id) const { return build(G.find(Id)); }

const ENode *Extractor::choiceNode(EClassId Id) const {
  auto It = Choices.find(G.find(Id));
  return It == Choices.end() ? nullptr : &It->second;
}

TermPtr Extractor::build(EClassId Id) const {
  return buildFromChoices(G, Choices, BuildMemo, Id);
}

//===----------------------------------------------------------------------===//
// One-best extraction: fixed-point oracle
//===----------------------------------------------------------------------===//

ReferenceExtractor::ReferenceExtractor(const EGraph &G, const CostFn &Fn)
    : G(G) {
  assert(!G.isDirty() && "extraction on a dirty e-graph");
  // Fixpoint: (cost, choice) pairs only decrease and are bounded below, so
  // this terminates. Same tie-break as the worklist engine, so the unique
  // fixpoint — and therefore every extracted term — is bit-identical.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (EClassId Id : G.classIds()) {
      for (const ENode &Node : G.eclass(Id).Nodes) {
        std::optional<double> C = nodeCost(G, Fn, Costs, Node);
        if (!C)
          continue;
        auto It = Costs.find(Id);
        bool Better = It == Costs.end() || *C < It->second;
        if (!Better && *C == It->second) {
          ENode Canon = G.canonicalize(Node);
          if (enodeCompare(G, Canon, Choices.at(Id)) < 0) {
            Choices.insert_or_assign(Id, std::move(Canon));
            Changed = true;
          }
          continue;
        }
        if (!Better)
          continue;
        Costs[Id] = *C;
        Choices.insert_or_assign(Id, G.canonicalize(Node));
        Changed = true;
      }
    }
  }
}

std::optional<double> ReferenceExtractor::bestCost(EClassId Id) const {
  auto It = Costs.find(G.find(Id));
  if (It == Costs.end())
    return std::nullopt;
  return It->second;
}

TermPtr ReferenceExtractor::extract(EClassId Id) const {
  return build(G.find(Id));
}

const ENode *ReferenceExtractor::choiceNode(EClassId Id) const {
  auto It = Choices.find(G.find(Id));
  return It == Choices.end() ? nullptr : &It->second;
}

TermPtr ReferenceExtractor::build(EClassId Id) const {
  return buildFromChoices(G, Choices, BuildMemo, Id);
}

//===----------------------------------------------------------------------===//
// Top-k extraction: worklist engine
//===----------------------------------------------------------------------===//

KBestExtractor::KBestExtractor(const EGraph &G, const CostFn &Fn, size_t K)
    : G(G), Fn(Fn), K(K), OneBest(G, Fn) {
  assert(!G.isDirty() && "extraction on a dirty e-graph");
  assert(K >= 1 && "k must be positive");
  deriveFrom(G.classIds());
  SyncedGen = G.generation();
  DirtyLease = G.acquireDirtyLease(SyncedGen);
}

KBestExtractor::~KBestExtractor() { G.releaseDirtyLease(DirtyLease); }

void KBestExtractor::refresh() {
  assert(!G.isDirty() && "refresh on a dirty e-graph");
  if (G.generation() == SyncedGen) {
    G.updateDirtyLease(DirtyLease, SyncedGen);
    return;
  }
  OneBest.refresh(); // priorities and extractability must be current first
  deriveFrom(G.takeDirtySince(SyncedGen));
  SyncedGen = G.generation();
  G.updateDirtyLease(DirtyLease, SyncedGen);
}

void KBestExtractor::deriveFrom(const std::vector<EClassId> &Seeds) {
  // Priority worklist keyed by one-best cost: under a monotone cost
  // function children are (weakly) cheaper than parents, so in the common
  // acyclic case every class is combined exactly once, after its children.
  using PQItem = std::pair<double, EClassId>;
  std::priority_queue<PQItem, std::vector<PQItem>, std::greater<PQItem>> PQ;
  std::unordered_set<EClassId> Pending;
  auto enqueue = [&](EClassId Id) {
    Id = G.find(Id);
    std::optional<double> C = OneBest.bestCost(Id);
    if (!C)
      return; // no finite cost => can never have candidates
    if (Pending.insert(Id).second)
      PQ.emplace(*C, Id);
  };
  for (EClassId Id : Seeds)
    enqueue(Id);

  // Candidate lists only improve and are bounded, so this terminates; the
  // pop cap mirrors the oracle's pass cap — sheer paranoia for graphs
  // where k-truncation feedback through cycles could oscillate.
  size_t PopsLeft = (4 * G.numClasses() + 8) * (K + 2);
  while (!PQ.empty() && PopsLeft-- > 0) {
    EClassId Id = PQ.top().second;
    PQ.pop();
    if (!Pending.erase(Id))
      continue; // duplicate queue entry; already recombined
    std::vector<ExtractCandidate> New = combineClass(G, Fn, K, Id, Table);
    std::vector<ExtractCandidate> &Slot = Table[Id];
    if (listsEqual(Slot, New))
      continue;
    Slot = std::move(New);
    // A changed list is observable only through referencing e-nodes; the
    // parent index is exactly that edge set (self-loops included).
    for (const auto &[PNode, PClass] : G.canonicalParents(Id))
      enqueue(PClass);
  }
  assert(PQ.empty() && "k-best worklist hit its paranoia cap");
}

std::vector<RankedTerm> KBestExtractor::extract(EClassId Id) const {
  std::vector<RankedTerm> Out;
  auto It = Table.find(G.find(Id));
  if (It == Table.end())
    return Out;
  for (const ExtractCandidate &C : It->second)
    Out.push_back({C.T, C.Cost});
  return Out;
}

//===----------------------------------------------------------------------===//
// Top-k extraction: fixed-point oracle
//===----------------------------------------------------------------------===//

ReferenceKBestExtractor::ReferenceKBestExtractor(const EGraph &G,
                                                 const CostFn &Fn, size_t K)
    : G(G), Fn(Fn), K(K) {
  assert(!G.isDirty() && "extraction on a dirty e-graph");
  assert(K >= 1 && "k must be positive");
  // Process classes in ascending one-best-cost order: under a monotone cost
  // function a node's children are cheaper than the node, so a single
  // ordered pass almost always reaches the fixpoint and the loop below
  // exits after the confirming pass.
  ReferenceExtractor OneBest(G, Fn);
  ClassOrder = G.classIds();
  std::stable_sort(ClassOrder.begin(), ClassOrder.end(),
                   [&](EClassId A, EClassId B) {
                     double CA = OneBest.bestCost(A).value_or(1e308);
                     double CB = OneBest.bestCost(B).value_or(1e308);
                     return CA < CB;
                   });
  // Candidate sets only improve (costs shrink or new distinct cheap terms
  // appear) and are bounded, so this terminates; the pass cap is sheer
  // paranoia for pathological graphs.
  const size_t MaxPasses = 4 * G.numClasses() + 8;
  for (size_t Pass = 0; Pass < MaxPasses; ++Pass)
    if (!this->pass())
      break;
}

bool ReferenceKBestExtractor::pass() {
  bool Changed = false;
  for (EClassId Id : ClassOrder) {
    std::vector<ExtractCandidate> New = combineClass(G, Fn, K, Id, Table);
    std::vector<ExtractCandidate> &Slot = Table[Id];
    if (listsEqual(Slot, New))
      continue;
    Slot = std::move(New);
    Changed = true;
  }
  return Changed;
}

std::vector<RankedTerm> ReferenceKBestExtractor::extract(EClassId Id) const {
  std::vector<RankedTerm> Out;
  auto It = Table.find(G.find(Id));
  if (It == Table.end())
    return Out;
  for (const ExtractCandidate &C : It->second)
    Out.push_back({C.T, C.Cost});
  return Out;
}
