//===-- egraph/Extract.cpp - Cost-based extraction ------------------------===//

#include "egraph/Extract.h"

#include <algorithm>
#include <queue>
#include <set>

using namespace shrinkray;

//===----------------------------------------------------------------------===//
// One-best extraction
//===----------------------------------------------------------------------===//

Extractor::Extractor(const EGraph &G, const CostFn &Fn) : G(G) {
  assert(!G.isDirty() && "extraction on a dirty e-graph");
  // Fixpoint: costs only decrease and are bounded below, so this terminates.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (EClassId Id : G.classIds()) {
      for (const ENode &Node : G.eclass(Id).Nodes) {
        std::vector<double> Kids;
        Kids.reserve(Node.Children.size());
        bool AllKnown = true;
        for (EClassId Kid : Node.Children) {
          auto It = Costs.find(G.find(Kid));
          if (It == Costs.end()) {
            AllKnown = false;
            break;
          }
          Kids.push_back(It->second);
        }
        if (!AllKnown)
          continue;
        double C = Fn.cost(Node.Operator, Kids);
        auto It = Costs.find(Id);
        if (It == Costs.end() || C < It->second) {
          Costs[Id] = C;
          Choices.insert_or_assign(Id, Node);
          Changed = true;
        }
      }
    }
  }
}

std::optional<double> Extractor::bestCost(EClassId Id) const {
  auto It = Costs.find(G.find(Id));
  if (It == Costs.end())
    return std::nullopt;
  return It->second;
}

TermPtr Extractor::extract(EClassId Id) const { return build(G.find(Id)); }

TermPtr Extractor::build(EClassId Id) const {
  Id = G.find(Id);
  auto Memo = BuildMemo.find(Id);
  if (Memo != BuildMemo.end())
    return Memo->second;
  auto It = Choices.find(Id);
  assert(It != Choices.end() && "extracting from a class with no finite cost");
  const ENode &Node = It->second;
  std::vector<TermPtr> Kids;
  Kids.reserve(Node.Children.size());
  for (EClassId Kid : Node.Children)
    Kids.push_back(build(Kid));
  TermPtr T = makeTerm(Node.Operator, std::move(Kids));
  BuildMemo.emplace(Id, T);
  return T;
}

//===----------------------------------------------------------------------===//
// Top-k extraction
//===----------------------------------------------------------------------===//

KBestExtractor::KBestExtractor(const EGraph &G, const CostFn &Fn, size_t K)
    : G(G), Fn(Fn), K(K) {
  assert(!G.isDirty() && "extraction on a dirty e-graph");
  assert(K >= 1 && "k must be positive");
  // Process classes in ascending one-best-cost order: under a monotone cost
  // function a node's children are strictly cheaper than the node, so a
  // single ordered pass almost always reaches the fixpoint and the loop
  // below exits after the confirming pass.
  Extractor OneBest(G, Fn);
  ClassOrder = G.classIds();
  std::stable_sort(ClassOrder.begin(), ClassOrder.end(),
                   [&](EClassId A, EClassId B) {
                     double CA = OneBest.bestCost(A).value_or(1e308);
                     double CB = OneBest.bestCost(B).value_or(1e308);
                     return CA < CB;
                   });
  // Candidate sets only improve (costs shrink or new distinct cheap terms
  // appear) and are bounded, so this terminates; the pass cap is sheer
  // paranoia for pathological graphs.
  const size_t MaxPasses = 4 * G.numClasses() + 8;
  for (size_t Pass = 0; Pass < MaxPasses; ++Pass)
    if (!this->pass())
      break;
}

/// Best-first enumeration of child-candidate combinations for one e-node
/// ("cube pruning" / lazy k-best). Requires all children to have candidates.
std::vector<KBestExtractor::Candidate>
KBestExtractor::combineNode(const ENode &Node) const {
  const size_t Arity = Node.Children.size();
  std::vector<const std::vector<Candidate> *> Lists(Arity);
  for (size_t I = 0; I < Arity; ++I) {
    auto It = Table.find(G.find(Node.Children[I]));
    if (It == Table.end() || It->second.empty())
      return {};
    Lists[I] = &It->second;
  }

  auto comboCost = [&](const std::vector<size_t> &Ix) {
    std::vector<double> Kids(Arity);
    for (size_t I = 0; I < Arity; ++I)
      Kids[I] = (*Lists[I])[Ix[I]].Cost;
    return Fn.cost(Node.Operator, Kids);
  };

  using HeapItem = std::pair<double, std::vector<size_t>>;
  auto Greater = [](const HeapItem &A, const HeapItem &B) {
    return A.first > B.first;
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(Greater)>
      Frontier(Greater);
  std::set<std::vector<size_t>> Visited;

  std::vector<size_t> First(Arity, 0);
  Frontier.emplace(comboCost(First), First);
  Visited.insert(std::move(First));

  std::vector<Candidate> Out;
  while (!Frontier.empty() && Out.size() < K) {
    auto [Cost, Ix] = Frontier.top();
    Frontier.pop();

    std::vector<TermPtr> Kids(Arity);
    for (size_t I = 0; I < Arity; ++I)
      Kids[I] = (*Lists[I])[Ix[I]].T;
    Candidate C;
    C.Cost = Cost;
    C.T = makeTerm(Node.Operator, std::move(Kids));
    C.Hash = termHash(C.T);
    Out.push_back(std::move(C));

    // Expand successors: bump one child index at a time.
    for (size_t I = 0; I < Arity; ++I) {
      if (Ix[I] + 1 >= Lists[I]->size())
        continue;
      std::vector<size_t> Next = Ix;
      ++Next[I];
      if (Visited.insert(Next).second)
        Frontier.emplace(comboCost(Next), std::move(Next));
    }
  }
  return Out;
}

bool KBestExtractor::pass() {
  bool Changed = false;
  for (EClassId Id : ClassOrder) {
    std::vector<Candidate> Merged;
    for (const ENode &Node : G.eclass(Id).Nodes)
      for (Candidate &C : combineNode(Node))
        Merged.push_back(std::move(C));
    if (Merged.empty())
      continue;

    std::stable_sort(Merged.begin(), Merged.end(),
                     [](const Candidate &A, const Candidate &B) {
                       return A.Cost < B.Cost;
                     });
    // Dedupe, keeping the cheapest. Numeric literals compare by value so
    // that Int(5) vs Float(5.0) does not masquerade as program diversity.
    std::vector<Candidate> Unique;
    for (Candidate &C : Merged) {
      bool Dup = false;
      for (const Candidate &U : Unique)
        if (termApproxEquals(U.T, C.T, 0.0)) {
          Dup = true;
          break;
        }
      if (!Dup)
        Unique.push_back(std::move(C));
      if (Unique.size() == K)
        break;
    }

    std::vector<Candidate> &Slot = Table[Id];
    bool Same = Slot.size() == Unique.size();
    if (Same)
      for (size_t I = 0; I < Slot.size(); ++I)
        if (Slot[I].Cost != Unique[I].Cost || Slot[I].Hash != Unique[I].Hash ||
            !termEquals(Slot[I].T, Unique[I].T)) {
          Same = false;
          break;
        }
    if (!Same) {
      Slot = std::move(Unique);
      Changed = true;
    }
  }
  return Changed;
}

std::vector<RankedTerm> KBestExtractor::extract(EClassId Id) const {
  std::vector<RankedTerm> Out;
  auto It = Table.find(G.find(Id));
  if (It == Table.end())
    return Out;
  for (const Candidate &C : It->second)
    Out.push_back({C.T, C.Cost});
  return Out;
}
